// Layout exploration: the Section V study in miniature. Runs one
// workload across the four Figure 1 chip layouts with their paper
// routing policies and prints the GPU/CPU trade-off each one makes.
package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/stats"
)

func main() {
	t := stats.NewTable("Chip layouts (SRAD + fluidanimate)",
		"Layout", "Routing", "GPU IPC", "CPU req/cyc", "CPU lat")
	for _, l := range config.AllLayouts() {
		cfg := config.Default()
		cfg.WarmupCycles = 8_000
		cfg.MeasureCycles = 20_000
		cfg.Layout = l
		cfg.NoC.ReqOrder = l.ReqOrder
		cfg.NoC.RepOrder = l.RepOrder
		sys := core.NewSystem(cfg, "SRAD", "fluidanimate")
		r := sys.RunWorkload()
		t.AddRow(l.Name, l.ReqOrder.String()+"-"+l.RepOrder.String(),
			r.GPUIPC, r.CPUThroughput, r.CPULatAvg)
		fmt.Println(l)
	}
	fmt.Println(t)
	fmt.Println("The Baseline layout isolates CPU and GPU traffic (memory column")
	fmt.Println("between them) and is the only one good at both — Section V.")
}
