// Quickstart: build the Table I system, run a workload under the
// baseline and under Delegated Replies, and compare the headline
// metrics — a five-minute tour of the public API.
package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/core"
)

func main() {
	// 1. Start from the paper's Table I configuration: an 8x8 mesh with
	// 40 GPU cores, 16 CPU cores, and 8 memory nodes (Figure 1a layout).
	cfg := config.Default()
	cfg.WarmupCycles = 10_000
	cfg.MeasureCycles = 25_000

	// 2. Pick a workload pairing from Table II: the HS (hotspot) GPU
	// benchmark co-running with the vips CPU benchmark.
	run := func(scheme config.Scheme) core.Results {
		cfg.Scheme = scheme
		sys := core.NewSystem(cfg, "HS", "vips")
		return sys.RunWorkload()
	}

	base := run(config.SchemeBaseline)
	dr := run(config.SchemeDelegatedReplies)

	// 3. Compare: Delegated Replies deflects reply traffic away from the
	// clogged memory-node links, improving GPU bandwidth and IPC while
	// letting CPU requests through sooner.
	fmt.Println("metric                     baseline   delegated   change")
	row := func(name string, b, d float64, pct bool) {
		suffix := ""
		if pct {
			suffix = fmt.Sprintf("   %+.1f%%", 100*(d/b-1))
		}
		fmt.Printf("%-26s %9.3f  %9.3f%s\n", name, b, d, suffix)
	}
	row("GPU IPC", base.GPUIPC, dr.GPUIPC, true)
	row("GPU recv flits/cyc/core", base.GPURecvRate, dr.GPURecvRate, true)
	row("CPU network latency", base.CPULatAvg, dr.CPULatAvg, true)
	row("mem-node blocked rate", base.MemBlockedRate, dr.MemBlockedRate, false)
	fmt.Printf("\ndelegations: %d; miss breakdown: %.1f%% forwarded, %.1f%% of those hit remotely\n",
		dr.Delegations, 100*dr.Breakdown.ForwardedFrac(), 100*dr.Breakdown.RemoteHitFrac())
}
