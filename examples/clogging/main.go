// Clogging anatomy: reproduce the paper's Section II diagnosis on one
// workload. Sweeps the memory-node injection buffer and NoC channel
// width under the baseline to show that (i) blocking is insensitive to
// buffering — the bottleneck is the reply links' bandwidth — and
// (ii) only more bandwidth (or Delegated Replies) relieves it.
package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/stats"
)

func run(mutate func(*config.Config)) core.Results {
	cfg := config.Default()
	cfg.WarmupCycles = 8_000
	cfg.MeasureCycles = 20_000
	mutate(&cfg)
	sys := core.NewSystem(cfg, "2DCON", "canneal")
	return sys.RunWorkload()
}

func main() {
	t := stats.NewTable("Network clogging anatomy (2DCON + canneal)",
		"Config", "GPU IPC", "Blocked %", "CPU lat", "Recv rate")
	addRow := func(name string, r core.Results) {
		t.AddRow(name, r.GPUIPC, 100*r.MemBlockedRate, r.CPULatAvg, r.GPURecvRate)
	}

	// Bigger injection buffers do not unclog the reply links.
	for _, buf := range []int{4, 8, 32} {
		buf := buf
		addRow(fmt.Sprintf("baseline, injbuf=%d", buf), run(func(c *config.Config) {
			c.NoC.InjectionBuf = buf
		}))
	}
	// Doubling channel width does: the bottleneck is link bandwidth.
	addRow("baseline, 2x channels", run(func(c *config.Config) {
		c.NoC.ChannelBytes *= 2
	}))
	// Delegated Replies gets much of that benefit without the 2.5x area.
	addRow("delegated replies", run(func(c *config.Config) {
		c.Scheme = config.SchemeDelegatedReplies
	}))
	fmt.Println(t)
	fmt.Println("Compare: buffers shuffle the queue, bandwidth (or delegation) drains it.")
}
