// Package prof wires runtime/pprof into the command-line tools: a CPU
// profile collected for the lifetime of the process and a heap profile
// snapshotted on clean exit. Both are opt-in via flags; with empty
// file names Start is a no-op, so the simulation path never pays for
// profiling it did not ask for.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (when non-empty) and arranges
// for a heap profile to be written to memFile (when non-empty) by the
// returned stop function. Callers must invoke stop on clean exit;
// profiles are intentionally not written on fatal error paths.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			cpuOut.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: creating heap profile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the snapshot shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: writing heap profile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
