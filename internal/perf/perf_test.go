package perf

import (
	"testing"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/noc"
)

// meshHarness drives an 8x8 mesh at saturation with a fixed pool of
// packets: delivered packets are recycled into the injection side, so
// the steady state exercises the full router pipeline without any
// allocation attributable to the harness itself.
type meshHarness struct {
	net  *noc.Network
	free []*noc.Packet
}

const (
	meshNodes   = 64
	poolPackets = 256
	pktFlits    = 5
)

func newMeshHarness() *meshHarness {
	topo := noc.NewMesh(8, 8, noc.MeshPolicy{
		Alg: config.RoutingCDR, ReqOrder: config.OrderXY, RepOrder: config.OrderXY,
	})
	cfg := config.Default().NoC
	net := noc.NewNetwork("perf", topo, cfg, meshNodes, noc.Params{
		InjCapCore: 8, InjCapMem: 8, EjCap: 24, AsmCap: 4,
	})
	h := &meshHarness{net: net, free: make([]*noc.Packet, 0, poolPackets)}
	for n := 0; n < meshNodes; n++ {
		net.NI(n).Handler = func(p *noc.Packet) bool {
			h.free = append(h.free, p)
			return true
		}
	}
	for i := 0; i < poolPackets; i++ {
		h.free = append(h.free, &noc.Packet{
			ID: uint64(i + 1), Class: noc.ClassRequest, Prio: noc.PrioGPU, SizeFlits: pktFlits,
		})
	}
	return h
}

// cycle tops up every injection queue from the recycle pool and ticks
// the network once.
func (h *meshHarness) cycle() {
	for n := 0; n < meshNodes && len(h.free) > 0; n++ {
		ni := h.net.NI(n)
		if !ni.CanInject(noc.ClassRequest) {
			continue
		}
		p := h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		p.Src, p.Dst = n, (n+17)%meshNodes
		p.Injected, p.Ejected, p.ReadyAt, p.Hops = 0, 0, 0, 0
		ni.Inject(p)
	}
	h.net.Tick()
}

// warm runs the harness long enough for every queue, ring slot, and
// scratch buffer to reach its steady-state capacity.
func (h *meshHarness) warm() {
	for i := 0; i < 2000; i++ {
		h.cycle()
	}
}

// BenchmarkRouterTick measures one network cycle of an 8x8 mesh at
// saturation: every router has buffered flits, so the cost is
// dominated by the router pipeline (route, VC alloc, switch alloc,
// traversal).
func BenchmarkRouterTick(b *testing.B) {
	h := newMeshHarness()
	h.warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.cycle()
	}
}

// BenchmarkNetworkTickIdle measures one network cycle of a quiescent
// 8x8 mesh: no buffered flits, no injection or ejection work. This is
// the active-set scheduler's skip path; before activity gating it cost
// a full scan of 64 routers.
func BenchmarkNetworkTickIdle(b *testing.B) {
	topo := noc.NewMesh(8, 8, noc.MeshPolicy{
		Alg: config.RoutingCDR, ReqOrder: config.OrderXY, RepOrder: config.OrderXY,
	})
	net := noc.NewNetwork("perf", topo, config.Default().NoC, meshNodes, noc.Params{
		InjCapCore: 8, InjCapMem: 8, EjCap: 24, AsmCap: 4,
	})
	for n := 0; n < meshNodes; n++ {
		net.NI(n).Handler = func(p *noc.Packet) bool { return true }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Tick()
	}
}

// BenchmarkSystemCycle measures one full heterogeneous-system cycle
// (memory nodes, both networks, clusters, GPU and CPU cores) under the
// default Delegated Replies configuration.
func BenchmarkSystemCycle(b *testing.B) {
	cfg := config.Default()
	cfg.Scheme = config.SchemeDelegatedReplies
	sys := core.NewSystem(cfg, "NN", "vips")
	for i := 0; i < 1000; i++ {
		sys.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Tick()
	}
}

// TestNoCTickZeroAllocs is the allocation-regression gate: in steady
// state, a network cycle of the saturated mesh must not allocate. Ring
// buffers, persistent scratch arrays, and preallocated queues make the
// hot path allocation-free; any append-churn regression trips this.
func TestNoCTickZeroAllocs(t *testing.T) {
	h := newMeshHarness()
	h.warm()
	allocs := testing.AllocsPerRun(500, h.cycle)
	if allocs != 0 {
		t.Fatalf("NoC tick allocates in steady state: %.2f allocs/cycle, want 0", allocs)
	}
}
