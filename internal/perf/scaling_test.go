package perf

import (
	"runtime"
	"testing"
	"time"

	"delrep/internal/config"
	"delrep/internal/core"
)

// fig5MeshCfg is the Fig5/Mesh evaluation point (baseline scheme on
// the 8x8 mesh, HS×vips pairing) at benchmark-sized windows — the
// scaling reference named by the roadmap for intra-run parallelism.
func fig5MeshCfg() config.Config {
	cfg := config.Default()
	cfg.Scheme = config.SchemeBaseline
	cfg.NoC.Topology = config.TopoMesh
	cfg.WarmupCycles = 3_000
	cfg.MeasureCycles = 6_000
	return cfg
}

func runFig5Mesh(t testing.TB, workers int) core.AuditRun {
	a, err := core.RunAuditCtrl(core.RunControl{Parallel: workers}, fig5MeshCfg(), "HS", "vips")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestParallelScalingDigest is the acceptance gate for the two-phase
// tile tick: the Fig5/Mesh digest must be bit-identical at every
// worker count.
func TestParallelScalingDigest(t *testing.T) {
	base := runFig5Mesh(t, 1)
	for _, workers := range []int{2, 4, 8} {
		a := runFig5Mesh(t, workers)
		if a.Digest != base.Digest || a.Cycles != base.Cycles {
			t.Fatalf("N=%d diverged from serial: (%d, %#x) vs (%d, %#x)",
				workers, a.Cycles, a.Digest, base.Cycles, base.Digest)
		}
	}
}

// TestParallelScalingWallTime asserts the speedup side of the
// acceptance bar — N=4 wall time at most 0.6x serial on Fig5/Mesh. It
// needs real cores to mean anything, so it only runs where at least 4
// are available; the digest gate above runs unconditionally.
func TestParallelScalingWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure scaling, have %d", runtime.NumCPU())
	}
	best := func(workers int) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			runFig5Mesh(t, workers)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	serial := best(1)
	par := best(4)
	ratio := float64(par) / float64(serial)
	t.Logf("Fig5/Mesh wall time: N=1 %v, N=4 %v (ratio %.2f)", serial, par, ratio)
	if ratio > 0.6 {
		t.Fatalf("N=4 wall time is %.2fx serial, want <= 0.6x", ratio)
	}
}

// BenchmarkParallelFig5Mesh reports Fig5/Mesh simulation throughput at
// each worker count (the numbers the CI bench artifact publishes),
// asserting per iteration that the digest still matches serial.
func BenchmarkParallelFig5Mesh(b *testing.B) {
	base := runFig5Mesh(b, 1)
	cycles := fig5MeshCfg().WarmupCycles + fig5MeshCfg().MeasureCycles
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(map[int]string{1: "N=1", 2: "N=2", 4: "N=4", 8: "N=8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := runFig5Mesh(b, workers)
				if a.Digest != base.Digest {
					b.Fatalf("N=%d digest %#x diverged from serial %#x", workers, a.Digest, base.Digest)
				}
			}
			b.ReportMetric(float64(cycles*int64(b.N))/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
