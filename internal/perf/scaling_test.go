package perf

import (
	"runtime"
	"testing"
	"time"

	"delrep/internal/config"
	"delrep/internal/core"
)

// fig5MeshCfg is the Fig5/Mesh evaluation point (baseline scheme on
// the 8x8 mesh, HS×vips pairing) at benchmark-sized windows — the
// scaling reference named by the roadmap for intra-run parallelism.
func fig5MeshCfg() config.Config {
	cfg := config.Default()
	cfg.Scheme = config.SchemeBaseline
	cfg.NoC.Topology = config.TopoMesh
	cfg.WarmupCycles = 3_000
	cfg.MeasureCycles = 6_000
	return cfg
}

func runFig5Mesh(t testing.TB, workers int) core.AuditRun {
	a, err := core.RunAuditCtrl(core.RunControl{Parallel: workers}, fig5MeshCfg(), "HS", "vips")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestParallelScalingDigest is the acceptance gate for the two-phase
// tile tick: the Fig5/Mesh digest must be bit-identical at every
// worker count.
func TestParallelScalingDigest(t *testing.T) {
	base := runFig5Mesh(t, 1)
	for _, workers := range []int{2, 4, 8} {
		a := runFig5Mesh(t, workers)
		if a.Digest != base.Digest || a.Cycles != base.Cycles {
			t.Fatalf("N=%d diverged from serial: (%d, %#x) vs (%d, %#x)",
				workers, a.Cycles, a.Digest, base.Cycles, base.Digest)
		}
	}
}

// TestParallelScalingWallTime asserts the speedup side of the
// acceptance bar — N=4 wall time at most 0.45x serial on Fig5/Mesh
// (tightened from the tile-only 0.6x once the node phase went
// parallel too). It needs real cores to mean anything, so it only
// runs where at least 4 are available; the digest gate above runs
// unconditionally.
func TestParallelScalingWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure scaling, have %d", runtime.NumCPU())
	}
	best := func(workers int) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			runFig5Mesh(t, workers)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	serial := best(1)
	par := best(4)
	ratio := float64(par) / float64(serial)
	t.Logf("Fig5/Mesh wall time: N=1 %v, N=4 %v (ratio %.2f)", serial, par, ratio)
	if ratio > 0.45 {
		t.Fatalf("N=4 wall time is %.2fx serial, want <= 0.45x", ratio)
	}
}

// profiledFig5Mesh runs Fig5/Mesh with a phase profile attached and
// returns it. Profiling wraps the identical tick sequence, so the
// digest must still match the unprofiled serial run.
func profiledFig5Mesh(t testing.TB, workers int, wantDigest uint64) *core.PhaseProfile {
	cfg := fig5MeshCfg()
	sys := core.NewSystem(cfg, "HS", "vips")
	if workers > 1 {
		sys.SetParallel(workers)
		defer sys.Close()
	}
	prof := &core.PhaseProfile{}
	sys.SetPhaseProfile(prof)
	if _, err := sys.RunWorkloadCtx(core.RunControl{}); err != nil {
		t.Fatal(err)
	}
	if d := sys.StatsDigest(); d != wantDigest {
		t.Fatalf("profiled N=%d digest %#x diverged from serial %#x", workers, d, wantDigest)
	}
	return prof
}

// TestPhaseProfileNodeParallel pins the Amdahl shift this package's
// wall-time gate depends on: at N=4 the node phase executes on the
// fused shard dispatch, not the serial fallback. The structural signal
// is the NodeCommit bucket — the instrumented orchestrator only
// accrues it on the sharded path (shard-delta folds), never through
// nodeSerial.
func TestPhaseProfileNodeParallel(t *testing.T) {
	base := runFig5Mesh(t, 1)
	prof := profiledFig5Mesh(t, 4, base.Digest)
	if prof.Cycles == 0 || prof.NodeCompute == 0 {
		t.Fatalf("parallel profile recorded nothing: %+v", prof)
	}
	if prof.NodeCommit == 0 {
		t.Fatal("node phase ran through the serial fallback: no shard commits were profiled")
	}
	if prof.NetCommit == 0 {
		t.Fatal("network phase ran through the serial fallback: no tile commits were profiled")
	}
}

// BenchmarkPhaseBreakdown publishes the per-phase Amdahl breakdown of
// the Fig5/Mesh tick at serial and N=4 as benchmark metrics: the
// serial fraction bounds what further worker scaling can buy.
func BenchmarkPhaseBreakdown(b *testing.B) {
	base := runFig5Mesh(b, 1)
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "N=1", 4: "N=4"}[workers], func(b *testing.B) {
			total := &core.PhaseProfile{}
			for i := 0; i < b.N; i++ {
				p := profiledFig5Mesh(b, workers, base.Digest)
				total.Cycles += p.Cycles
				total.Begin += p.Begin
				total.NetCompute += p.NetCompute
				total.NetCommit += p.NetCommit
				total.NodeCompute += p.NodeCompute
				total.NodeCommit += p.NodeCommit
				total.Serial += p.Serial
			}
			if t := total.Total(); t > 0 {
				b.ReportMetric(100*total.SerialFraction(), "serial-%")
				b.ReportMetric(100*float64(total.NetCompute)/float64(t), "net-compute-%")
				b.ReportMetric(100*float64(total.NodeCompute)/float64(t), "node-compute-%")
			}
		})
	}
}

// BenchmarkParallelFig5Mesh reports Fig5/Mesh simulation throughput at
// each worker count (the numbers the CI bench artifact publishes),
// asserting per iteration that the digest still matches serial.
func BenchmarkParallelFig5Mesh(b *testing.B) {
	base := runFig5Mesh(b, 1)
	cycles := fig5MeshCfg().WarmupCycles + fig5MeshCfg().MeasureCycles
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(map[int]string{1: "N=1", 2: "N=2", 4: "N=4", 8: "N=8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := runFig5Mesh(b, workers)
				if a.Digest != base.Digest {
					b.Fatalf("N=%d digest %#x diverged from serial %#x", workers, a.Digest, base.Digest)
				}
			}
			b.ReportMetric(float64(cycles*int64(b.N))/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
