// Package perf holds the hot-path microbenchmarks and the
// allocation-regression tests for the simulator.
//
// The benchmarks pin the three levels the optimisation work targets:
// a saturated mesh (router allocation/traversal cost), a quiescent
// network (the active-set scheduler's skip path), and a full system
// cycle. The regression test asserts the NoC tick path performs zero
// steady-state allocations, so slice-churn regressions fail CI rather
// than silently eating throughput.
//
// Run with:
//
//	go test ./internal/perf -bench . -benchmem
package perf
