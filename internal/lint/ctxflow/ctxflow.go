// Package ctxflow keeps cancellation flowing. The daemon's shutdown
// path, the runner's futures, and every HTTP handler are built around
// context propagation; a context.Background() in the middle of that
// chain silently detaches everything below it from drain deadlines and
// client disconnects.
//
// Two rules:
//
// R1 — a function with a context in scope calls a context-less
// function even though a context-aware sibling exists: a package-local
// FCtx/FContext variant whose first parameter is a context, or a
// well-known stdlib pair (exec.Command vs exec.CommandContext,
// http.Get vs http.NewRequestWithContext, net.Dial vs
// net.Dialer.DialContext).
//
// R2 — context.Background() or context.TODO() is called while a
// usable context is already in scope: an earlier context parameter or
// local, or an *http.Request (whose r.Context() carries the client
// disconnect). The function's own root context creation — a Background
// with no earlier context in scope, as in main() — is the legitimate
// use and is not flagged. R2 carries a suggested fix substituting the
// in-scope context.
package ctxflow

import (
	"go/ast"
	"go/types"

	"delrep/internal/lint/analysis"
)

// Analyzer flags context-less calls and fresh Background contexts where
// a live context is available.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/TODO() and context-less call variants " +
		"where a context is already in scope",
	Run: run,
}

// stdlibPairs maps "pkgpath.Func" to the context-aware replacement.
var stdlibPairs = map[string]string{
	"os/exec.Command":   "exec.CommandContext",
	"net.Dial":          "(&net.Dialer{}).DialContext",
	"net.DialTimeout":   "(&net.Dialer{}).DialContext",
	"net/http.Get":      "http.NewRequestWithContext",
	"net/http.Head":     "http.NewRequestWithContext",
	"net/http.Post":     "http.NewRequestWithContext",
	"net/http.PostForm": "http.NewRequestWithContext",
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass}
			w.seed(fd.Type)
			w.block(fd.Body)
		}
	}
	return nil
}

// ctxVar is one in-scope context source.
type ctxVar struct {
	expr  string // what to write in the fix: "ctx" or "r.Context()"
	depth int
}

type walker struct {
	pass    *analysis.Pass
	inScope []ctxVar
	depth   int
}

// seed registers the function's parameters.
func (w *walker) seed(ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		t := w.pass.TypesInfo.TypeOf(field.Type)
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if isContext(t) {
				w.inScope = append(w.inScope, ctxVar{expr: name.Name})
			} else if isHTTPRequest(t) {
				w.inScope = append(w.inScope, ctxVar{expr: name.Name + ".Context()"})
			}
		}
	}
}

// current returns the most recently bound context, or "".
func (w *walker) current() string {
	if len(w.inScope) == 0 {
		return ""
	}
	return w.inScope[len(w.inScope)-1].expr
}

func (w *walker) block(b *ast.BlockStmt) {
	w.depth++
	mark := len(w.inScope)
	for _, s := range b.List {
		w.stmt(s)
	}
	w.inScope = w.inScope[:mark]
	w.depth--
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		// A context-typed binding comes into scope after its RHS is
		// checked, so the root `ctx := context.WithTimeout(
		// context.Background(), d)` stays legal.
		for _, e := range s.Lhs {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if isContext(w.pass.TypesInfo.TypeOf(id)) {
					w.inScope = append(w.inScope, ctxVar{expr: id.Name, depth: w.depth})
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v)
				}
				for _, name := range vs.Names {
					if name.Name != "_" && isContext(w.pass.TypesInfo.TypeOf(name)) {
						w.inScope = append(w.inScope, ctxVar{expr: name.Name, depth: w.depth})
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.block(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.block(s.Body)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.block(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.BlockStmt:
		w.block(s)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

func (w *walker) caseBodies(body *ast.BlockStmt) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, st := range cc.Body {
				w.stmt(st)
			}
		}
	}
}

func (w *walker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.FuncLit:
		// A literal sees the enclosing contexts (it closes over them)
		// but bindings inside it stay inside.
		mark := len(w.inScope)
		w.block(e.Body)
		w.inScope = w.inScope[:mark]
	}
}

func (w *walker) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a)
	}
	fn := calleeFunc(w.pass, call)
	if fn == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			w.expr(sel.X)
		}
		return
	}

	// R2: a fresh root context while a live one is in scope.
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO") {
		if cur := w.current(); cur != "" {
			w.pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "context." + fn.Name() + "() discards the in-scope context " + cur +
					": work started here outlives cancellation and drain deadlines",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "use " + cur,
					TextEdits: []analysis.TextEdit{{
						Pos:     call.Pos(),
						End:     call.End(),
						NewText: []byte(cur),
					}},
				}},
			})
		}
		return
	}

	// R1 applies only when the caller actually has a context to pass.
	if w.current() == "" {
		return
	}
	if takesContext(fn) {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && fn.Pkg() != nil {
		// Package-level functions only: http.Header.Get is not http.Get.
		key := fn.Pkg().Path() + "." + fn.Name()
		if repl, ok := stdlibPairs[key]; ok {
			w.pass.Reportf(call.Pos(),
				"%s ignores the in-scope context %s: use %s so the operation observes cancellation",
				key, w.current(), repl)
			return
		}
	}
	if sib := contextSibling(fn); sib != "" {
		w.pass.Reportf(call.Pos(),
			"%s has a context-aware variant %s: call it with %s instead of dropping cancellation",
			fn.Name(), sib, w.current())
	}
}

// contextSibling looks for FCtx/FContext next to fn — same package
// scope for functions, same method set for methods — whose first
// parameter is a context.
func contextSibling(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	for _, suffix := range []string{"Ctx", "Context"} {
		name := fn.Name() + suffix
		if sig.Recv() == nil {
			if fn.Pkg() == nil {
				continue
			}
			if alt, ok := fn.Pkg().Scope().Lookup(name).(*types.Func); ok && takesContext(alt) {
				return name
			}
			continue
		}
		t := sig.Recv().Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == name && takesContext(m) {
				return name
			}
		}
	}
	return ""
}

// takesContext reports whether fn's first parameter is context.Context.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContext(sig.Params().At(0).Type())
}

func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequest(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
