// Package cf exercises the ctxflow analyzer: discarded in-scope
// contexts and context-less call variants.
package cf

import (
	"context"
	"net/http"
	"time"
)

// fetch: Background discarded while the ctx parameter is in scope.
func fetch(ctx context.Context, d time.Duration) error {
	sub, cancel := context.WithTimeout(context.Background(), d) // want `context.Background\(\) discards the in-scope context ctx`
	defer cancel()
	return work(sub)
}

// root: no earlier context — the one sanctioned Background.
func root(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return work(ctx)
}

// laterLocal: the drain-deadline bug shape — a context created a few
// statements earlier, then ignored.
func laterLocal(d time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	_ = work(ctx)
	keep(context.Background()) // want `context.Background\(\) discards the in-scope context ctx`
}

// handler: r.Context() carries the client disconnect.
func handler(w http.ResponseWriter, r *http.Request) {
	_ = work(context.Background()) // want `context.Background\(\) discards the in-scope context r.Context\(\)`
}

// stdlibPair: the request should observe cancellation.
func stdlibPair(ctx context.Context, url string) {
	resp, _ := http.Get(url) // want `net/http.Get ignores the in-scope context ctx`
	if resp != nil {
		resp.Body.Close()
	}
}

// headerGet: http.Header.Get is a method — it must not be confused
// with the package-level http.Get stdlib pair.
func headerGet(ctx context.Context, h http.Header) string {
	return h.Get("X-Key")
}

// query has a context-aware sibling; with a context in scope the
// ctx-less form drops cancellation.
func query(id int) int { return id }

func queryCtx(ctx context.Context, id int) int {
	_ = ctx
	return id
}

func useSibling(ctx context.Context, id int) int {
	return query(id) // want `query has a context-aware variant queryCtx`
}

// noCtxCaller: without a context in scope there is nothing to pass.
func noCtxCaller(id int) int { return query(id) }

// alreadyCtx: calling the context variant is the fixed form.
func alreadyCtx(ctx context.Context, id int) int { return queryCtx(ctx, id) }

// Store has a method pair.
type Store struct{}

func (s *Store) Get(k string) string { return k }

func (s *Store) GetCtx(ctx context.Context, k string) string {
	_ = ctx
	return k
}

func method(ctx context.Context, s *Store) string {
	return s.Get("k") // want `Get has a context-aware variant GetCtx`
}

// suppressed: deliberate pinning, acknowledged in place.
func suppressed(ctx context.Context) context.Context {
	//simlint:ignore ctxflow fixture exception: the value must outlive the request
	return context.WithValue(context.Background(), ctxKey{}, 1)
}

type ctxKey struct{}

func work(ctx context.Context) error {
	_ = ctx
	return nil
}

func keep(ctx context.Context) { _ = ctx }
