package ctxflow_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.RunWithFixes(t, "testdata", ctxflow.Analyzer, "cf")
}
