// Package rngsource flags randomness that escapes the experiment seed:
// calls to math/rand's global, process-wide functions, wall-clock
// (time.Now-derived) RNG seeds, and any time.Now use inside the
// simulator's internal packages. Every random decision in the
// simulator must come from a *rand.Rand constructed from the
// configured seed (as internal/workload and internal/core already do),
// or two runs with the same config stop being comparable.
package rngsource

import (
	"go/ast"
	"go/types"
	"strings"

	"delrep/internal/lint/analysis"
)

// Analyzer flags unseeded or wall-clock-derived randomness.
var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc: "flag global math/rand functions, time.Now-derived RNG seeds, " +
		"and time.Now inside internal/ simulator packages; all " +
		"randomness must flow from an injected *rand.Rand seeded by config",
	Run: run,
}

// constructors are the math/rand package-level functions that do not
// touch the global generator and stay legal everywhere.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// seeders are the functions whose arguments must not carry wall-clock
// time: deriving a seed from time.Now makes runs unreproducible.
var seeders = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewPCG":    true,
	"Seed":      true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *analysis.Pass) error {
	internal := strings.Contains(pass.PkgPath+"/", "/internal/") ||
		strings.HasPrefix(pass.PkgPath, "internal/")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return true
			}
			pkg := fn.Pkg()
			if pkg == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			pkgLevel := sig != nil && sig.Recv() == nil
			switch {
			case isRandPkg(pkg.Path()) && pkgLevel && !constructors[fn.Name()]:
				pass.Reportf(call.Pos(),
					"call to global %s.%s uses the shared process-wide generator; inject a *rand.Rand seeded from the experiment config",
					pkg.Path(), fn.Name())
			case pkg.Path() == "time" && fn.Name() == "Now" && internal:
				pass.Reportf(call.Pos(),
					"time.Now in simulator package %s: simulated behaviour must depend only on the cycle counter and the configured seed",
					pass.PkgPath)
			}
			// Wall-clock seeds: a time.Now call anywhere in the argument
			// tree of a seeding function (rand.NewSource(time.Now()...)).
			if (isRandPkg(pkg.Path()) && seeders[fn.Name()]) ||
				(sig != nil && sig.Recv() != nil && fn.Name() == "Seed" && isRandPkg(pkg.Path())) {
				for _, arg := range call.Args {
					if now := findTimeNow(pass, arg); now != nil {
						pass.Reportf(call.Pos(),
							"RNG seeded from the wall clock (%s.%s argument calls time.Now); seed from the experiment config instead",
							pkg.Name(), fn.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// findTimeNow returns the first time.Now call in the expression tree.
func findTimeNow(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			found = call
			return false
		}
		return true
	})
	return found
}
