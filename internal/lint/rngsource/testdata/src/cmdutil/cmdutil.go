package cmdutil

import (
	"math/rand"
	"time"
)

// Elapsed uses wall-clock time outside internal/: allowed (drivers may
// time themselves).
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp reads the clock outside internal/: allowed.
func Stamp() int64 {
	return time.Now().Unix()
}

// ClockSeeded still derives an RNG seed from the wall clock: flagged
// everywhere, drivers included.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

// Global still uses the shared generator: flagged everywhere.
func Global() float64 {
	return rand.Float64() // want `global math/rand.Float64`
}
