package rng

import (
	"math/rand"
	"time"
)

// jitter draws from the global, process-wide generator: unseeded.
func jitter() int {
	return rand.Intn(4) // want `global math/rand.Intn`
}

// shuffle also hits the global generator.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle`
}

// clockSeed derives the seed from the wall clock; two runs can never
// be compared. Both the time.Now-in-internal rule and the wall-clock
// seed rule fire.
func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock` `time.Now in simulator package`
}

// now is wall-clock time in a simulator package: flagged on its own.
func now() int64 {
	return time.Now().Unix() // want `time.Now in simulator package`
}

// good injects a config-seeded generator: the sanctioned pattern.
func good(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// goodUse draws from an injected generator: fine anywhere.
func goodUse(r *rand.Rand) int {
	return r.Intn(4)
}
