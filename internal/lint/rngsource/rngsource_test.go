package rngsource_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/rngsource"
)

func TestRNGSource(t *testing.T) {
	analysistest.Run(t, "testdata", rngsource.Analyzer, "sim/internal/rng", "cmdutil")
}
