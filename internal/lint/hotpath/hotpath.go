// Package hotpath computes which functions of a package belong to the
// simulator's per-cycle hot path: everything reachable from a method
// or function whose name marks a per-cycle entry point (Tick, Step,
// Cycle, BeginCycle, HandlePacket). The mapiter and tickpurity
// analyzers restrict their checks to this set so that setup, reporting,
// and test helpers stay free to use maps and I/O.
package hotpath

import (
	"go/ast"
	"go/types"

	"delrep/internal/lint/analysis"
)

// RootNames are the method/function names treated as per-cycle entry
// points. HandlePacket is included because packet handlers are invoked
// through NI.Handler function values every cycle, an edge a static
// call graph cannot see.
var RootNames = map[string]bool{
	"Tick":         true,
	"Step":         true,
	"Cycle":        true,
	"BeginCycle":   true,
	"HandlePacket": true,
}

// Func is one hot-path function with the entry point that reaches it.
type Func struct {
	Decl *ast.FuncDecl
	// Root is the entry-point function this one is reachable from
	// (possibly itself).
	Root *types.Func
}

// Reachable returns the package's hot-path functions keyed by their
// types object.
//
// The call graph is intra-package and intentionally conservative in
// the flagging direction: calls through interface values add an edge
// to every same-named method in the package, and any reference to a
// package function (method values, handler registration, arguments)
// counts as a call. Cross-package edges are invisible — each package
// is kept honest by its own entry points.
func Reachable(pass *analysis.Pass) map[*types.Func]Func {
	decls := map[*types.Func]*ast.FuncDecl{}
	methodsByName := map[string][]*types.Func{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if fd.Recv != nil {
				methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
			}
		}
	}

	edges := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		if fd.Body == nil {
			continue
		}
		seen := map[*types.Func]bool{}
		add := func(callee *types.Func) {
			if _, local := decls[callee]; local && !seen[callee] {
				seen[callee] = true
				edges[fn] = append(edges[fn], callee)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if callee, ok := pass.TypesInfo.Uses[n].(*types.Func); ok {
					add(callee)
				}
			case *ast.SelectorExpr:
				callee, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok {
					return true
				}
				add(callee)
				// A call through an interface could land on any
				// same-named method in this package.
				if sel, ok := pass.TypesInfo.Selections[n]; ok && types.IsInterface(sel.Recv()) {
					for _, m := range methodsByName[callee.Name()] {
						add(m)
					}
				}
			}
			return true
		})
	}

	reach := map[*types.Func]Func{}
	var queue []*types.Func
	for fn, fd := range decls {
		if RootNames[fn.Name()] {
			reach[fn] = Func{Decl: fd, Root: fn}
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := reach[fn].Root
		for _, callee := range edges[fn] {
			if _, ok := reach[callee]; ok {
				continue
			}
			reach[callee] = Func{Decl: decls[callee], Root: root}
			queue = append(queue, callee)
		}
	}
	return reach
}

// Describe names fn for diagnostics: "(*T).Tick" or "run".
func Describe(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
}
