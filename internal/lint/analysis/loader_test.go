package analysis

import "testing"

func TestSmokeLoadModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		t.Logf("%s files=%d", p.Path, len(p.Syntax))
	}
}
