package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"sort"
)

// Conflict records a suggested fix that was skipped because one of its
// edits overlaps an edit from an earlier-applied fix.
type Conflict struct {
	Pos      token.Position // diagnostic position of the skipped fix
	Analyzer string
	Message  string // the skipped fix's message
}

// fileEdit is one edit resolved to byte offsets within a file.
type fileEdit struct {
	start, end int
	newText    []byte
}

// ApplyFixes applies every suggested fix attached to the diagnostics
// and returns the rewritten contents of each changed file, keyed by
// filename. Fixes are applied in diagnostic order; a fix whose edits
// overlap an already-accepted edit is skipped whole (all of its edits)
// and reported as a Conflict, so a second `simlint -fix` run can pick
// it up once the first round of rewrites has settled. The read
// function supplies file contents (os.ReadFile in the command,
// in-memory sources in tests).
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, read func(filename string) ([]byte, error)) (map[string][]byte, []Conflict, error) {
	if read == nil {
		read = os.ReadFile
	}
	accepted := map[string][]fileEdit{}
	var conflicts []Conflict

	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			edits, err := resolveFix(fset, fix)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: fix %q: %v", d.Analyzer, fix.Message, err)
			}
			if clashes(accepted, edits) {
				conflicts = append(conflicts, Conflict{
					Pos:      fset.Position(d.Pos),
					Analyzer: d.Analyzer,
					Message:  fix.Message,
				})
				continue
			}
			for file, es := range edits {
				accepted[file] = append(accepted[file], es...)
			}
		}
	}

	out := map[string][]byte{}
	for file, edits := range accepted {
		src, err := read(file)
		if err != nil {
			return nil, nil, err
		}
		out[file] = applyEdits(src, edits)
	}
	return out, conflicts, nil
}

// resolveFix converts one fix's token.Pos edits into per-file byte
// offsets, validating that each edit stays inside its file.
func resolveFix(fset *token.FileSet, fix SuggestedFix) (map[string][]fileEdit, error) {
	out := map[string][]fileEdit{}
	for _, e := range fix.TextEdits {
		start := fset.Position(e.Pos)
		endPos := e.End
		if endPos == token.NoPos {
			endPos = e.Pos
		}
		end := fset.Position(endPos)
		if start.Filename == "" || start.Filename != end.Filename {
			return nil, fmt.Errorf("edit spans files (%s .. %s)", start, end)
		}
		if end.Offset < start.Offset {
			return nil, fmt.Errorf("edit end %s precedes start %s", end, start)
		}
		out[start.Filename] = append(out[start.Filename], fileEdit{
			start:   start.Offset,
			end:     end.Offset,
			newText: e.newText(),
		})
	}
	return out, nil
}

func (e TextEdit) newText() []byte {
	return bytes.Clone(e.NewText)
}

// clashes reports whether any candidate edit overlaps an accepted one.
// Two insertions at the same point clash (their order would be
// ambiguous); an insertion inside a replaced range clashes too.
func clashes(accepted map[string][]fileEdit, candidate map[string][]fileEdit) bool {
	for file, edits := range candidate {
		for _, e := range edits {
			for _, a := range accepted[file] {
				if sameEdit(a, e) {
					continue // identical repair; applyEdits collapses it
				}
				if overlap(a, e) {
					return true
				}
			}
		}
	}
	return false
}

func sameEdit(a, b fileEdit) bool {
	return a.start == b.start && a.end == b.end && bytes.Equal(a.newText, b.newText)
}

func overlap(a, b fileEdit) bool {
	if a.start == b.start {
		return true
	}
	// Treat [start, end) ranges; pure insertions have start == end and
	// conflict only when they land inside (or at the start of) the
	// other edit's replaced span.
	if a.start < b.start {
		return a.end > b.start
	}
	return b.end > a.start
}

// applyEdits rewrites src by the edits, applied back-to-front so
// earlier offsets stay valid. Identical duplicate edits (two analyzers
// suggesting the same repair) collapse to one.
func applyEdits(src []byte, edits []fileEdit) []byte {
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start > edits[j].start
		}
		return edits[i].end > edits[j].end
	})
	var out []byte = bytes.Clone(src)
	var prev *fileEdit
	for i := range edits {
		e := edits[i]
		if prev != nil && e.start == prev.start && e.end == prev.end && bytes.Equal(e.newText, prev.newText) {
			continue // exact duplicate
		}
		tail := bytes.Clone(out[e.end:])
		out = append(out[:e.start], e.newText...)
		out = append(out, tail...)
		prev = &edits[i]
	}
	return out
}
