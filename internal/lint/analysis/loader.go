package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path   string
	Dir    string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
	Errors []error
}

// Loader parses and type-checks packages without golang.org/x/tools:
// package metadata comes from `go list -deps -json` (which resolves
// build constraints and returns dependencies before dependents), and
// type checking uses go/types with an importer backed by the loader's
// own cache. An optional testdata source root lets analyzer tests
// resolve fixture packages that live outside the module.
type Loader struct {
	Fset *token.FileSet
	// ModDir is the directory `go list` runs in (the module root).
	ModDir string
	// TestdataSrc, when set, resolves import path P from
	// TestdataSrc/P before falling back to the standard library.
	TestdataSrc string

	typeCache map[string]*types.Package
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:      token.NewFileSet(),
		ModDir:    root,
		typeCache: map[string]*types.Package{},
	}, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// listedPackage mirrors the subset of `go list -json` output we need.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// listCache memoizes decoded `go list -deps -json` output per
// (module dir, patterns) for the life of the process. Package metadata
// is immutable for a run, and the subprocess dominates loader start-up
// cost (~0.4s for ./... on this module), so the multichecker, the
// baseline pass, the -fix pass, and every analysistest loader in one
// test binary share a single invocation per pattern set. Measured on
// the lint test suites this shaves ~8%: the three dataflow-analyzer
// suites drop from 27.6s to 25.4s, the simlint integration tests from
// 12.0s to 11.0s.
// Entries are []*listedPackage values treated as read-only by all
// consumers. The cache assumes the tree is a snapshot for the life of
// the process; tests that add or remove files between loads must call
// FlushListCache.
var listCache sync.Map

// FlushListCache drops the memoized `go list` metadata. Only needed
// when the package file set changes mid-process (the ratchet tests
// write new files between runs).
func FlushListCache() {
	listCache.Range(func(k, _ any) bool {
		listCache.Delete(k)
		return true
	})
}

// goList runs `go list -deps -json` for the patterns and returns the
// packages in dependency order (dependencies before dependents).
// Results are memoized process-wide; see listCache.
func (l *Loader) goList(patterns ...string) ([]*listedPackage, error) {
	key := l.ModDir + "\x00" + strings.Join(patterns, "\x00")
	if cached, ok := listCache.Load(key); ok {
		return cached.([]*listedPackage), nil
	}
	listed, err := l.goListUncached(patterns...)
	if err != nil {
		return nil, err
	}
	listCache.Store(key, listed)
	return listed, nil
}

func (l *Loader) goListUncached(patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

// Load type-checks the packages matching the patterns (plus their
// dependencies) and returns the matched packages sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, meta := range listed {
		pkg, err := l.checkListed(meta)
		if err != nil {
			return nil, err
		}
		if !meta.DepOnly && pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// checkListed parses and type-checks one `go list` entry, memoizing the
// resulting *types.Package for later imports.
func (l *Loader) checkListed(meta *listedPackage) (*Package, error) {
	if meta.ImportPath == "unsafe" {
		l.typeCache["unsafe"] = types.Unsafe
		return nil, nil
	}
	if _, done := l.typeCache[meta.ImportPath]; done {
		return nil, nil
	}
	files := make([]string, len(meta.GoFiles))
	for i, f := range meta.GoFiles {
		files[i] = filepath.Join(meta.Dir, f)
	}
	pkg, err := l.check(meta.ImportPath, meta.Dir, files, meta.Standard)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// check parses the named files and type-checks them as import path.
// Type errors in standard-library packages are tolerated (go/types
// cannot fully check a handful of runtime internals from source); for
// any other package they are fatal.
func (l *Loader) check(path, dir string, filenames []string, standard bool) (*Package, error) {
	return l.checkSources(path, dir, filenames, nil, standard)
}

// CheckFiles type-checks in-memory sources (filename → content) as the
// package at the given import path, resolving imports the same way
// LoadDir does. The autofix tests use it to prove that rewritten
// sources still compile without touching the fixture tree on disk.
func (l *Loader) CheckFiles(path string, filenames []string, sources map[string][]byte) (*Package, error) {
	return l.checkSources(path, "", filenames, sources, false)
}

// checkSources is the core of check/CheckFiles; when sources is
// non-nil it supplies file contents, otherwise they come from disk.
func (l *Loader) checkSources(path, dir string, filenames []string, sources map[string][]byte, standard bool) (*Package, error) {
	var syntax []*ast.File
	for _, fn := range filenames {
		var src any
		if sources != nil {
			if content, ok := sources[fn]; ok {
				src = content
			}
		}
		f, err := parser.ParseFile(l.Fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", fn, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, syntax, info)
	if len(typeErrs) > 0 && !standard {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	l.typeCache[path] = tpkg
	return &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.Fset,
		Syntax: syntax,
		Types:  tpkg,
		Info:   info,
		Errors: typeErrs,
	}, nil
}

// Import implements types.Importer against the loader's cache, loading
// testdata fixture packages and standard-library packages on demand.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.typeCache[path]; ok {
		return pkg, nil
	}
	if l.TestdataSrc != "" {
		dir := filepath.Join(l.TestdataSrc, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			if _, err := l.LoadDir(dir, path); err != nil {
				return nil, err
			}
			return l.typeCache[path], nil
		}
	}
	if err := l.loadStd(path); err != nil {
		return nil, err
	}
	if pkg, ok := l.typeCache[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("lint: cannot resolve import %q", path)
}

// loadStd loads a standard-library package (and its dependencies) into
// the cache via go list; it relies on the toolchain's GOROOT sources,
// so it works offline.
func (l *Loader) loadStd(path string) error {
	listed, err := l.goList(path)
	if err != nil {
		return err
	}
	for _, meta := range listed {
		if _, err := l.checkListed(meta); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir parses and type-checks every .go file in dir as the package
// with the given import path. Used by the analysistest harness, whose
// fixture packages live under testdata (invisible to go list).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return l.check(path, dir, files, false)
}
