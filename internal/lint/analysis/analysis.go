// Package analysis is a minimal, stdlib-only re-implementation of the
// parts of the golang.org/x/tools/go/analysis API that simlint needs.
// The build environment for this repository is offline, so the real
// framework cannot be vendored; this package keeps the same shape
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to a
// stock multichecker by changing only import paths.
//
// Findings can be suppressed with a comment on the flagged line or the
// line directly above it:
//
//	//simlint:ignore mapiter reason for the exception
//	//simlint:ignore            (suppresses every analyzer)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:ignore comments.
	Name string
	// Doc is the analyzer's human-readable documentation.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// TextEdit is one replacement of the source range [Pos, End) by
// NewText. Pos == End inserts without deleting.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// SuggestedFix is one self-contained change that resolves a
// diagnostic. All edits of one fix are applied together or not at all.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// SuggestedFixes, when non-empty, carry machine-applicable repairs
	// (applied by `simlint -fix` and verified by analysistest's .fixed
	// goldens).
	SuggestedFixes []SuggestedFix
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diags    []Diagnostic
	suppress suppressIndex
}

// Reportf records a finding unless a //simlint:ignore comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (position, message, and any
// suggested fixes) unless a //simlint:ignore comment covers it. The
// Analyzer field is filled in by the pass.
func (p *Pass) Report(d Diagnostic) {
	position := p.Fset.Position(d.Pos)
	if p.suppress.covers(position, p.Analyzer.Name) {
		return
	}
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// suppressIndex maps file -> line -> analyzer names suppressed there.
// An empty name set suppresses every analyzer.
type suppressIndex map[string]map[int][]string

const ignoreDirective = "simlint:ignore"

func buildSuppressIndex(fset *token.FileSet, files []*ast.File) suppressIndex {
	idx := suppressIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				// The first token that looks like an analyzer name scopes
				// the suppression; everything after it is the reason.
				var names []string
				if fields := strings.Fields(rest); len(fields) > 0 {
					names = []string{fields[0]}
				}
				pos := fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = map[int][]string{}
				}
				if names == nil {
					idx[pos.Filename][pos.Line] = []string{}
				} else {
					idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line], names...)
				}
			}
		}
	}
	return idx
}

// covers reports whether a finding by the named analyzer at position is
// suppressed by a directive on the same line or the line above.
func (idx suppressIndex) covers(pos token.Position, analyzer string) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		names, ok := lines[line]
		if !ok {
			continue
		}
		if len(names) == 0 {
			return true
		}
		for _, n := range names {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to the package and returns the
// combined findings sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	suppress := buildSuppressIndex(pkg.Fset, pkg.Syntax)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			PkgPath:   pkg.Path,
			TypesInfo: pkg.Info,
			suppress:  suppress,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
