// Package analysistest runs an analyzer over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under testdata/src/<importpath>/, and expected findings
// are marked with trailing comments of the form
//
//	code() // want `regexp` `another regexp`
//
// Each diagnostic must match a want on its line, and each want must be
// matched by at least one diagnostic.
package analysistest

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"delrep/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, and compares diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader.TestdataSrc = filepath.Join(testdata, "src")
	for _, path := range paths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			key := lineKey{pos.Filename, pos.Line}
			if !matchWant(wants[key], d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for key, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.re)
				}
			}
		}
	}
}

// RunWithFixes runs like Run, then applies every suggested fix and
// compares the rewritten files against their `.fixed` goldens (a file
// named <fixture>.go.fixed next to the fixture source). Finally the
// fixed package is re-type-checked, proving that `simlint -fix` output
// compiles. Running the test with UPDATE_GOLDEN=1 rewrites the goldens
// from the current fix output.
func RunWithFixes(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	Run(t, testdata, a, paths...)

	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, path := range paths {
		loader, err := analysis.NewLoader(testdata)
		if err != nil {
			t.Fatalf("locating module root: %v", err)
		}
		loader.TestdataSrc = filepath.Join(testdata, "src")
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		fixed, conflicts, err := analysis.ApplyFixes(pkg.Fset, diags, nil)
		if err != nil {
			t.Fatalf("applying fixes for %s: %v", path, err)
		}
		for _, c := range conflicts {
			t.Errorf("%s: conflicting fix skipped: %s", c.Pos, c.Message)
		}

		// Collect the package's files from the syntax tree so goldens
		// stay in sync with what the analyzer actually saw.
		var filenames []string
		for _, f := range pkg.Syntax {
			filenames = append(filenames, pkg.Fset.Position(f.Pos()).Filename)
		}

		sources := map[string][]byte{}
		for _, fn := range filenames {
			golden := fn + ".fixed"
			got, changed := fixed[fn]
			if !changed {
				if _, err := os.Stat(golden); err == nil {
					t.Errorf("%s exists but no fix touched %s", golden, fn)
				}
				continue
			}
			sources[fn] = got
			if update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatalf("updating %s: %v", golden, err)
				}
				continue
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Errorf("fixes changed %s but golden is unreadable (%v); rerun with UPDATE_GOLDEN=1 to create it.\n--- fixed output ---\n%s", fn, err, got)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fixed %s differs from %s; rerun with UPDATE_GOLDEN=1 after reviewing.\n--- got ---\n%s", fn, golden, got)
			}
		}
		if len(sources) == 0 {
			continue
		}

		// The fixed package must still compile.
		checker, err := analysis.NewLoader(testdata)
		if err != nil {
			t.Fatalf("locating module root: %v", err)
		}
		checker.TestdataSrc = filepath.Join(testdata, "src")
		if _, err := checker.CheckFiles(path, filenames, sources); err != nil {
			t.Errorf("fixed package %s does not compile: %v", path, err)
		}
	}
}

type lineKey struct {
	file string
	line int
}

// collectWants parses // want comments out of the package's files.
func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]*expectation {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					pattern, err := unquoteWant(arg)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

func unquoteWant(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

// matchWant marks and returns whether some expectation matches msg.
func matchWant(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	// Allow several diagnostics to share one want (e.g. the same
	// message reported by two code paths on one line).
	for _, e := range exps {
		if e.re.MatchString(msg) {
			return true
		}
	}
	return false
}
