// Package analysistest runs an analyzer over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under testdata/src/<importpath>/, and expected findings
// are marked with trailing comments of the form
//
//	code() // want `regexp` `another regexp`
//
// Each diagnostic must match a want on its line, and each want must be
// matched by at least one diagnostic.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"delrep/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, and compares diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader.TestdataSrc = filepath.Join(testdata, "src")
	for _, path := range paths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			key := lineKey{pos.Filename, pos.Line}
			if !matchWant(wants[key], d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for key, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.re)
				}
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

// collectWants parses // want comments out of the package's files.
func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]*expectation {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					pattern, err := unquoteWant(arg)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

func unquoteWant(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

// matchWant marks and returns whether some expectation matches msg.
func matchWant(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	// Allow several diagnostics to share one want (e.g. the same
	// message reported by two code paths on one line).
	for _, e := range exps {
		if e.re.MatchString(msg) {
			return true
		}
	}
	return false
}
