// Package lint is the umbrella for the simulator's custom static
// analysis. Each subdirectory is one go/analysis pass enforcing a
// repo-specific invariant that ordinary vet cannot see:
//
//   - tickpurity: nothing reachable from a Tick method may perform
//     I/O, read the wall clock, or iterate a map — the determinism
//     contract that makes simulations reproducible per seed and lets
//     internal/runner execute them concurrently (see DESIGN.md §8).
//   - rngsource: all randomness must flow from the seeded per-system
//     source, never the global math/rand state.
//   - mapiter: map iteration in simulation code must be order-
//     normalized before it can influence results.
//   - statsdiscipline: counters and samplers must be folded into the
//     end-of-run digest so silent stat drift is caught.
//   - hotpath: allocation and interface-conversion hygiene for the
//     per-cycle hot path.
//
// The passes share the driver in internal/lint/analysis and are run
// together by cmd/simlint (wired into "make lint" and CI).
package lint
