// Package stats is a fixture owner package: it declares counters and
// the reset hook that makes them safe across the warm-up boundary.
package stats

// NetStats carries link-level counters.
type NetStats struct {
	Flits int64
	Hops  int64
}

// Inc is the sanctioned mutation path.
func (s *NetStats) Inc(hops int64) {
	s.Flits++
	s.Hops += hops
}

// ResetStats zeroes the counters at the measurement-window boundary.
func (s *NetStats) ResetStats() {
	s.Flits, s.Hops = 0, 0
}
