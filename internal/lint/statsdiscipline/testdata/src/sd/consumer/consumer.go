package consumer

import "sd/stats"

// Router embeds a foreign stats container.
type Router struct {
	NS stats.NetStats
}

// record writes the foreign counter directly, bypassing the owner's
// Inc/ResetStats discipline.
func (r *Router) record() {
	r.NS.Flits++ // want `direct write to stats counter NetStats.Flits from outside its owning package sd/stats`
	r.NS.Inc(3)  // ok: the owner's method
}

// reset also writes a foreign counter directly.
func (r *Router) reset() {
	r.NS.Hops = 0 // want `direct write to stats counter NetStats.Hops`
}

// LeakyStats has counters but no reset path at all.
type LeakyStats struct {
	Drops int64
}

// Port increments a counter whose type can never be cleared at the
// warm-up boundary.
type Port struct {
	S LeakyStats
}

func (p *Port) drop() {
	p.S.Drops++ // want `counter LeakyStats.Drops is incremented but never reset`
}

// GoodStats has a reset method: increments are fine.
type GoodStats struct {
	Hits int64
}

// ResetStats zeroes the counter.
func (g *GoodStats) ResetStats() { g.Hits = 0 }

type GoodPort struct {
	S GoodStats
}

func (p *GoodPort) hit() {
	p.S.Hits++ // ok: GoodStats has ResetStats
}

// WholesaleStats is cleared by assigning a fresh zero value, the
// pattern internal/core uses (g.Stats = GPUCoreStats{}).
type WholesaleStats struct {
	Evictions int64
}

type Bank struct {
	S WholesaleStats
}

func (b *Bank) evict() {
	b.S.Evictions++ // ok: reset wholesale below
}

func (b *Bank) resetStats() {
	b.S = WholesaleStats{}
}

// localBuilder is the builder pattern: incrementing through a
// function-local value is aggregation, not measurement state.
type Totals struct {
	Sum int64
}

func localBuilder(parts []int64) Totals {
	var t Totals
	for _, p := range parts {
		t.Sum += p // ok: function-local accumulator
	}
	return t
}
