package statsdiscipline_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/statsdiscipline"
)

func TestStatsDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", statsdiscipline.Analyzer, "sd/consumer")
}
