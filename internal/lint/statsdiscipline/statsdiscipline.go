// Package statsdiscipline enforces the simulator's measurement-window
// contract in two parts.
//
// Ownership: a stats counter (an exported field of a *Stats struct, or
// anything declared in a package named "stats") may only be written by
// the package that declares it. Foreign writes bypass the owner's
// Reset/ResetStats hooks, so the counter silently survives the
// warm-up boundary and corrupts the measured window.
//
// Resettability: any exported integer counter field a package
// increments through long-lived state (a receiver, parameter, or
// package variable) must have a reset path — a Reset/ResetStats method
// on the declaring struct, a wholesale `x = T{}` zeroing, or an
// explicit assignment — so ResetStats at the end of warm-up actually
// clears it. A counter that only ever increments measures the warm-up
// too, which is exactly the bug the paper's calibration (Fig. 2) and
// injection-rate sweeps cannot tolerate.
package statsdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"delrep/internal/lint/analysis"
)

// Analyzer flags stats-counter writes that violate the measurement
// discipline.
var Analyzer = &analysis.Analyzer{
	Name: "statsdiscipline",
	Doc: "flag writes to another package's stats counters and " +
		"incremented counters with no reset path to the " +
		"warm-up/measurement-window boundary",
	Run: run,
}

func run(pass *analysis.Pass) error {
	incremented := map[*types.Var][]token.Pos{} // counter field -> increment sites
	reset := map[*types.Var]bool{}              // fields with an explicit assignment
	wholesale := map[*types.Named]bool{}        // types zeroed via x = T{...}

	record := func(lhs ast.Expr, tok token.Token, rhs ast.Expr) {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			return
		}
		field := fieldOf(pass, sel)
		if field == nil {
			return
		}
		checkForeignWrite(pass, sel, field)
		switch tok {
		case token.INC, token.DEC, token.ADD_ASSIGN, token.SUB_ASSIGN:
			if isLocalCounterCandidate(pass, sel, field) {
				incremented[field] = append(incremented[field], sel.Pos())
			}
		case token.ASSIGN, token.DEFINE:
			reset[field] = true
			if cl, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
				if named := namedOf(pass.TypesInfo.TypeOf(cl)); named != nil {
					wholesale[named] = true
				}
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				record(n.X, n.Tok, nil)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if i < len(n.Rhs) {
						rhs = n.Rhs[i]
					}
					record(lhs, n.Tok, rhs)
				}
			}
			return true
		})
	}

	// Resettability: every incremented counter needs a reset path.
	for field, sites := range incremented {
		owner := owningStruct(pass, field)
		if owner == nil {
			continue // declared elsewhere; the owner's package checks it
		}
		if reset[field] || wholesale[owner] || hasResetMethod(owner) {
			continue
		}
		pos := sites[0]
		for _, p := range sites[1:] {
			if p < pos {
				pos = p
			}
		}
		pass.Reportf(pos,
			"counter %s.%s is incremented but never reset: give %s a ResetStats (or zero it) so the warm-up/measurement-window boundary clears it",
			owner.Obj().Name(), field.Name(), owner.Obj().Name())
	}
	return nil
}

// fieldOf resolves a selector to the struct field it names, if any.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// checkForeignWrite reports a write to a stats counter declared in
// another package.
func checkForeignWrite(pass *analysis.Pass, sel *ast.SelectorExpr, field *types.Var) {
	if field.Pkg() == nil || field.Pkg() == pass.Pkg {
		return
	}
	recv := namedOf(pass.TypesInfo.Selections[sel].Recv())
	if recv == nil || !statsLike(recv) {
		return
	}
	pass.Reportf(sel.Pos(),
		"direct write to stats counter %s.%s from outside its owning package %s: use the owner's methods so Reset/ResetStats hooks stay authoritative",
		recv.Obj().Name(), field.Name(), field.Pkg().Path())
}

// statsLike reports whether a named type is a stats container: its
// name mentions Stats or it lives in a package named stats.
func statsLike(named *types.Named) bool {
	if strings.Contains(named.Obj().Name(), "Stats") {
		return true
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "stats"
}

// isLocalCounterCandidate reports whether the incremented field is an
// exported integer counter on long-lived state: the selector chain
// must root at a receiver, parameter, or package-level variable —
// increments on function-local builders (r := Results{}; r.X++) are
// not measurement counters.
func isLocalCounterCandidate(pass *analysis.Pass, sel *ast.SelectorExpr, field *types.Var) bool {
	if !field.Exported() || !isInteger(field.Type()) {
		return false
	}
	root := ast.Expr(sel)
	for {
		switch e := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.IndexExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[e].(*types.Var)
			if !ok {
				return false
			}
			if obj.Parent() == pass.Pkg.Scope() {
				return true // package-level variable
			}
			return isParamOrReceiver(pass, obj)
		default:
			return false
		}
	}
}

// isParamOrReceiver reports whether v is a parameter or receiver of
// some function in the package.
func isParamOrReceiver(pass *analysis.Pass, v *types.Var) bool {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == v {
				return true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i) == v {
					return true
				}
			}
		}
	}
	return false
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// owningStruct finds the named struct type in this package that
// declares the field.
func owningStruct(pass *analysis.Pass, field *types.Var) *types.Named {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return named
			}
		}
	}
	return nil
}

// hasResetMethod reports whether T or *T has a Reset or ResetStats
// method.
func hasResetMethod(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Reset", "ResetStats":
			return true
		}
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}
