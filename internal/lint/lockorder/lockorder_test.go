package lockorder_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lk")
}
