// Package lk exercises the lockorder analyzer: blocking operations
// under held mutexes, double-locking, and acquisition-order inversion.
package lk

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

type Server struct {
	mu      sync.Mutex
	pruneMu sync.Mutex
	rw      sync.RWMutex
	cond    *sync.Cond
	ch      chan int
	buf     strings.Builder
	out     io.Writer
}

// sendUnderLock: a channel send while holding s.mu blocks every other
// goroutine behind a slow consumer.
func (s *Server) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send while \(Server\).mu is held`
}

// sendAfterUnlock: the same send after release is fine.
func (s *Server) sendAfterUnlock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// nonBlockingSend: a select with a default case never blocks.
func (s *Server) nonBlockingSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

// blockingSelect: without a default, the select parks under the lock.
func (s *Server) blockingSelect() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while \(Server\).mu is held`
	case v := <-s.ch:
		return v
	case <-time.After(time.Second):
		return 0
	}
}

// waitUnderLock: WaitGroup.Wait under a lock is a deadlock waiting for
// a worker that needs the lock.
func (s *Server) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `sync.WaitGroup.Wait while \(Server\).mu is held`
}

// sleepUnderLock.
func (s *Server) sleepUnderLock() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while \(Server\).rw is held`
}

// writeInterfaceUnderLock: s.out may be a network connection.
func (s *Server) writeInterfaceUnderLock(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	io.WriteString(s.out, line)    // want `io.WriteString to an interface writer while \(Server\).mu is held`
	fmt.Fprintf(s.out, "%s", line) // want `fmt.Fprintf to an interface writer while \(Server\).mu is held`
	s.out.Write([]byte(line))      // want `interface-writer Write while \(Server\).mu is held`
}

// writeBufferUnderLock: a concrete in-memory builder cannot block.
func (s *Server) writeBufferUnderLock(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.WriteString(line)
	fmt.Fprintf(&s.buf, "%s", line)
}

// doubleLock: locking a mutex already held self-deadlocks.
func (s *Server) doubleLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `\(Server\).mu locked while already held`
}

// condWait releases the lock while parked; it is the one sanctioned
// way to block with a mutex held.
func (s *Server) condWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ch) == 0 {
		s.cond.Wait()
	}
}

// earlyReturn: an unlock on a branch does not release the fall-through
// path, and the analyzer must not think it does.
func (s *Server) earlyReturn(fail bool, v int) {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return
	}
	s.ch <- v // want `channel send while \(Server\).mu is held`
	s.mu.Unlock()
}

// goroutineScope: a function literal has its own lock scope; the
// send inside the spawned goroutine runs without the lock.
func (s *Server) goroutineScope(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

// lockAB and lockBA acquire the same pair in opposite orders.
func (s *Server) lockAB() {
	s.mu.Lock()
	s.pruneMu.Lock() // want `\(Server\).pruneMu acquired while \(Server\).mu is held here \(in lockAB\), but lockBA reverses the order`
	s.pruneMu.Unlock()
	s.mu.Unlock()
}

func (s *Server) lockBA() {
	s.pruneMu.Lock()
	s.mu.Lock() // want `\(Server\).mu acquired while \(Server\).pruneMu is held here \(in lockBA\), but lockAB reverses the order`
	s.mu.Unlock()
	s.pruneMu.Unlock()
}

// suppressed: an acknowledged blocking send stays quiet.
func (s *Server) suppressed(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//simlint:ignore lockorder fixture exception: bounded buffer, send cannot block
	s.ch <- v
}
