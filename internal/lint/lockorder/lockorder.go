// Package lockorder enforces the concurrency discipline the parallel
// runner and the serve daemon depend on, in two parts.
//
// Blocking under a lock: while a sync.Mutex or sync.RWMutex is held, a
// function must not perform an operation of unbounded latency — a
// channel send or receive (outside a select with a default case), a
// sync.WaitGroup.Wait, a time.Sleep, or a write to an interface-typed
// writer (io.Writer, http.ResponseWriter: the concrete value behind an
// interface may be a network connection; writes to concrete in-memory
// buffers are not flagged). A slow consumer would hold the lock
// against every other goroutine, turning one stalled HTTP client into
// a stalled daemon. Locking a mutex that is already held is flagged as
// a self-deadlock.
//
// Acquisition order: for every function the analyzer records which
// mutex was acquired while which other mutex was held, keyed by the
// receiver type and field (so "s.mu before s.pruneMu" in one method
// and "e.pruneMu before e.mu" in another meet as the same pair). Two
// functions acquiring the same pair in opposite orders can deadlock
// under concurrency; both sites are reported.
//
// sync.Cond.Wait is exempt — it releases the associated lock while
// blocked; that is its contract.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"delrep/internal/lint/analysis"
)

// Analyzer flags blocking operations under held mutexes and
// inconsistent lock-acquisition order.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag blocking operations (channel ops, WaitGroup.Wait, " +
		"interface-writer writes, time.Sleep) while a mutex is held, " +
		"double-locking, and inconsistent two-mutex acquisition order",
	Run: run,
}

// lockOp classifies one mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// heldLock is one currently-held mutex.
type heldLock struct {
	id       string
	pos      token.Pos
	deferred bool // held to function end via defer Unlock
	reader   bool
}

// orderEdge records "b acquired while a held" at pos.
type orderEdge struct {
	pos      token.Pos
	funcName string
}

func run(pass *analysis.Pass) error {
	edges := map[[2]string]orderEdge{} // [held, acquired] -> first site

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			w := &funcWalker{pass: pass, fn: name, edges: edges}
			w.block(fd.Body, nil)
		}
	}

	// Inconsistent order: both (A,B) and (B,A) edges exist. Report each
	// conflicting pair once, at both sites, in deterministic order.
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if k[0] >= k[1] {
			continue // handle each unordered pair once, from its lesser key
		}
		rev := [2]string{k[1], k[0]}
		e1, ok1 := edges[k]
		e2, ok2 := edges[rev]
		if !ok1 || !ok2 {
			continue
		}
		pass.Reportf(e1.pos,
			"%s acquired while %s is held here (in %s), but %s reverses the order: lock %s and %s in one consistent order or deadlock under contention",
			k[1], k[0], e1.funcName, e2.funcName, k[0], k[1])
		pass.Reportf(e2.pos,
			"%s acquired while %s is held here (in %s), but %s reverses the order: lock %s and %s in one consistent order or deadlock under contention",
			k[0], k[1], e2.funcName, e1.funcName, k[0], k[1])
	}
	return nil
}

// funcWalker tracks held locks through one function (or function
// literal) body. Branch bodies get copies of the held set, so an
// early-return unlock inside an if does not leak out.
type funcWalker struct {
	pass  *analysis.Pass
	fn    string
	edges map[[2]string]orderEdge
}

// block walks stmts in order with the given held set and returns the
// set live at the end of the block.
func (w *funcWalker) block(b *ast.BlockStmt, held []heldLock) []heldLock {
	for _, s := range b.List {
		held = w.stmt(s, held)
	}
	return held
}

func (w *funcWalker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.ExprStmt:
		return w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.expr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.expr(e, held)
		}
		return held
	case *ast.DeferStmt:
		if op, id := w.lockCall(s.Call); op == opUnlock || op == opRUnlock {
			for i := range held {
				if held[i].id == id {
					held[i].deferred = true
				}
			}
			return held
		}
		// Other deferred calls run at return; ignore their bodies for
		// the held set but still scan literals for nested functions.
		w.scanFuncLits(s.Call)
		return held
	case *ast.GoStmt:
		w.scanFuncLits(s.Call)
		return held
	case *ast.SendStmt:
		w.flagBlocked(s.Pos(), "channel send", held)
		held = w.expr(s.Chan, held)
		return w.expr(s.Value, held)
	case *ast.IncDecStmt:
		return w.expr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.expr(e, held)
		}
		return held
	case *ast.BlockStmt:
		return w.block(s, held)
	case *ast.IfStmt:
		held = w.stmt(s.Init, held)
		held = w.expr(s.Cond, held)
		w.block(s.Body, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
		return held
	case *ast.ForStmt:
		held = w.stmt(s.Init, held)
		if s.Cond != nil {
			held = w.expr(s.Cond, held)
		}
		inner := copyHeld(held)
		inner = w.stmt(s.Post, inner)
		w.block(s.Body, inner)
		return held
	case *ast.RangeStmt:
		held = w.expr(s.X, held)
		w.block(s.Body, copyHeld(held))
		return held
	case *ast.SwitchStmt:
		held = w.stmt(s.Init, held)
		if s.Tag != nil {
			held = w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					w.stmt(st, copyHeld(held))
				}
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		held = w.stmt(s.Init, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					w.stmt(st, copyHeld(held))
				}
			}
		}
		return held
	case *ast.SelectStmt:
		w.selectStmt(s, held)
		return held
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.expr(v, held)
					}
				}
			}
		}
		return held
	}
	return held
}

// selectStmt: a select with a default case never blocks on its
// communications, so sends/receives in the comm positions are exempt;
// case bodies run after selection and are scanned normally.
func (w *funcWalker) selectStmt(s *ast.SelectStmt, held []heldLock) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.flagBlocked(s.Pos(), "blocking select", held)
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, st := range cc.Body {
			w.stmt(st, copyHeld(held))
		}
	}
}

func (w *funcWalker) expr(e ast.Expr, held []heldLock) []heldLock {
	switch e := e.(type) {
	case nil:
		return held
	case *ast.CallExpr:
		return w.call(e, held)
	case *ast.ParenExpr:
		return w.expr(e.X, held)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.flagBlocked(e.Pos(), "channel receive", held)
		}
		return w.expr(e.X, held)
	case *ast.BinaryExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Y, held)
	case *ast.SelectorExpr:
		return w.expr(e.X, held)
	case *ast.IndexExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Index, held)
	case *ast.StarExpr:
		return w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = w.expr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		return w.expr(e.Value, held)
	case *ast.FuncLit:
		// A literal's body runs when called, with its own lock scope.
		w.block(e.Body, nil)
		return held
	}
	return held
}

func (w *funcWalker) call(call *ast.CallExpr, held []heldLock) []heldLock {
	// Walk arguments first (they evaluate before the call).
	for _, a := range call.Args {
		held = w.expr(a, held)
	}

	op, id := w.lockCall(call)
	switch op {
	case opLock, opRLock:
		for _, h := range held {
			if h.id == id && !(h.reader && op == opRLock) {
				w.pass.Reportf(call.Pos(),
					"%s locked while already held (acquired at %s): self-deadlock",
					id, w.pass.Fset.Position(h.pos))
				return held
			}
			if h.id != id {
				key := [2]string{h.id, id}
				if _, ok := w.edges[key]; !ok {
					w.edges[key] = orderEdge{pos: call.Pos(), funcName: w.fn}
				}
			}
		}
		return append(held, heldLock{id: id, pos: call.Pos(), reader: op == opRLock})
	case opUnlock, opRUnlock:
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].id == id && !held[i].deferred {
				return append(held[:i:i], held[i+1:]...)
			}
		}
		return held
	}

	w.checkBlockingCall(call, held)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		held = w.expr(sel.X, held)
	}
	return held
}

// lockCall classifies call as a mutex operation and returns the mutex
// identity.
func (w *funcWalker) lockCall(call *ast.CallExpr) (lockOp, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, ""
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return opNone, ""
	}
	id := mutexID(w.pass, sel.X)
	switch fn.Name() {
	case "Lock", "TryLock":
		return opLock, id
	case "RLock", "TryRLock":
		return opRLock, id
	case "Unlock":
		return opUnlock, id
	case "RUnlock":
		return opRUnlock, id
	}
	return opNone, ""
}

// checkBlockingCall flags calls of unbounded latency under a held lock.
func (w *funcWalker) checkBlockingCall(call *ast.CallExpr, held []heldLock) {
	if len(held) == 0 {
		return
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	var fn *types.Func
	if selOK {
		fn, _ = w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		fn, _ = w.pass.TypesInfo.Uses[id].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()

	switch {
	case pkg == "sync" && name == "Wait" && recvTypeName(fn) == "WaitGroup":
		w.flagBlocked(call.Pos(), "sync.WaitGroup.Wait", held)
	case pkg == "time" && name == "Sleep":
		w.flagBlocked(call.Pos(), "time.Sleep", held)
	case pkg == "io" && (name == "WriteString" || name == "Copy"):
		if len(call.Args) > 0 && isInterface(w.pass.TypesInfo.TypeOf(call.Args[0])) {
			w.flagBlocked(call.Pos(), "io."+name+" to an interface writer", held)
		}
	case pkg == "fmt" && (name == "Fprintf" || name == "Fprint" || name == "Fprintln"):
		if len(call.Args) > 0 && isInterface(w.pass.TypesInfo.TypeOf(call.Args[0])) {
			w.flagBlocked(call.Pos(), "fmt."+name+" to an interface writer", held)
		}
	default:
		// Interface method writes: w.Write, w.WriteString, w.WriteHeader,
		// w.Flush, w.ReadFrom on an interface-typed receiver.
		if selOK {
			switch name {
			case "Write", "WriteString", "WriteHeader", "Flush", "ReadFrom":
				if isInterface(w.pass.TypesInfo.TypeOf(sel.X)) {
					w.flagBlocked(call.Pos(), "interface-writer "+name, held)
				}
			}
		}
	}
}

func (w *funcWalker) flagBlocked(pos token.Pos, what string, held []heldLock) {
	if len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	w.pass.Reportf(pos,
		"%s while %s is held (acquired at %s): a blocked %s holds the lock against every other goroutine",
		what, h.id, w.pass.Fset.Position(h.pos), what)
}

// scanFuncLits analyzes function literals nested in e with a fresh
// lock scope (used for go/defer call arguments, whose bodies run
// outside the current critical section).
func (w *funcWalker) scanFuncLits(e ast.Node) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.block(fl.Body, nil)
			return false
		}
		return true
	})
}

func copyHeld(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}

func isInterface(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

// recvTypeName returns the name of fn's receiver type, pointers
// stripped.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// mutexID names a mutex stably across functions: field selectors are
// keyed by the owning type ("(*Server).mu"), identifiers by their
// object (package-level vars by package-qualified name, locals by
// name).
func mutexID(pass *analysis.Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if t := pass.TypesInfo.TypeOf(e.X); t != nil {
			t = types.Unalias(t)
			if p, ok := t.(*types.Pointer); ok {
				t = types.Unalias(p.Elem())
			}
			if named, ok := t.(*types.Named); ok {
				return fmt.Sprintf("(%s).%s", named.Obj().Name(), e.Sel.Name)
			}
		}
		return types.ExprString(e)
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + e.Name
			}
		}
		return e.Name
	}
	return strings.TrimSpace(types.ExprString(e))
}
