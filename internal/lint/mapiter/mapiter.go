// Package mapiter flags `for … range` over a map inside the per-cycle
// hot path. Go randomizes map iteration order, so any map walk that
// influences simulated state breaks same-seed reproducibility — the
// property every latency/IPC ratio in the paper's figures rests on.
// Hot-path code must iterate slices (or sort keys first and suppress
// the finding with a //simlint:ignore comment explaining why).
package mapiter

import (
	"go/ast"
	"go/types"

	"delrep/internal/lint/analysis"
	"delrep/internal/lint/hotpath"
)

// Analyzer flags nondeterministic map iteration in per-cycle code.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag range-over-map in functions reachable from a per-cycle " +
		"entry point (Tick/Step/Cycle/BeginCycle/HandlePacket); map " +
		"iteration order is nondeterministic and breaks seeded runs",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for fn, hf := range hotpath.Reachable(pass) {
		if hf.Decl.Body == nil {
			continue
		}
		ast.Inspect(hf.Decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.For,
					"range over map %s in per-cycle hot path (%s is reachable from %s): map iteration order is nondeterministic",
					types.TypeString(t, types.RelativeTo(pass.Pkg)),
					hotpath.Describe(fn), hotpath.Describe(hf.Root))
			}
			return true
		})
	}
	return nil
}
