package mapiter_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", mapiter.Analyzer, "mapiter")
}
