package mapiter

// Sim is a toy per-cycle component with both a map and a slice view of
// its pending work.
type Sim struct {
	table map[int]int
	keys  []int
}

// Tick is a hot-path root: everything it reaches is checked.
func (s *Sim) Tick() {
	s.step()
	for _, k := range s.keys { // ok: slice iteration is deterministic
		_ = k
	}
}

func (s *Sim) step() {
	for k := range s.table { // want `range over map .* nondeterministic`
		_ = k
	}
}

// Cycle demonstrates suppression: the author vouches for the loop.
func (s *Sim) Cycle() {
	//simlint:ignore mapiter keys are drained unordered into a set
	for k := range s.table {
		delete(s.table, k)
	}
}

// Report is cold-path code; map iteration here is fine.
func (s *Sim) Report() map[int]int {
	out := map[int]int{}
	for k, v := range s.table {
		out[k] = v
	}
	return out
}

// stepper exercises the interface-dispatch approximation: Tick-reachable
// code calling through an interface reaches same-named methods.
type stepper interface{ Step() }

type Child struct{ m map[string]bool }

// Step is itself a root name, but it is also reached via the interface.
func (c *Child) Step() {
	for k := range c.m { // want `range over map`
		_ = k
	}
}

func Drive(s stepper) { s.Step() }
