package stagecommit_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/stagecommit"
)

func TestStageCommit(t *testing.T) {
	analysistest.Run(t, "testdata", stagecommit.Analyzer, "stagecommit")
}
