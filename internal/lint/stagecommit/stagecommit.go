// Package stagecommit flags `for … range` over a map in any function
// that touches a cross-tile staging buffer (fifo.Stash, or a struct
// holding one directly, like noc's stageBuf). The staging buffers are
// how tile-parallel ticking moves events between workers; the order a
// drain/commit/fold loop visits them IS the inter-thread event order,
// so a map walk there breaks bit-identical tiled runs the same way it
// breaks same-seed serial runs — except only under -parallel, where
// the matching serial run hides it.
//
// The hotpath-based mapiter analyzer cannot cover this code: tile
// worker bodies are invoked through a prebound function-value field
// (Network.sectionFn), an edge its static call graph never sees. This
// analyzer instead roots at the staging buffers themselves: any
// function whose body mentions a Stash-bearing value, plus everything
// it calls, must iterate slices.
package stagecommit

import (
	"go/ast"
	"go/types"

	"delrep/internal/lint/analysis"
	"delrep/internal/lint/hotpath"
)

// fifoPath is the import path of the staging-buffer type.
const fifoPath = "delrep/internal/fifo"

// Analyzer flags nondeterministic map iteration in staged-commit code.
var Analyzer = &analysis.Analyzer{
	Name: "stagecommit",
	Doc: "flag range-over-map in functions that touch cross-tile " +
		"staging buffers (fifo.Stash): staging drain/commit order is " +
		"inter-thread event order, so a map walk there breaks " +
		"bit-identical tiled runs",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Roots: functions whose body mentions a Stash-bearing expression.
	// Edges: intra-package, any reference to a package function counts
	// as a call (same conservative rule as the hotpath analyzers).
	roots := map[*types.Func]bool{}
	edges := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		if fd.Body == nil {
			continue
		}
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if ok {
				if t := pass.TypesInfo.TypeOf(expr); t != nil && touchesStash(t) {
					roots[fn] = true
				}
			}
			var callee *types.Func
			switch n := n.(type) {
			case *ast.Ident:
				callee, _ = pass.TypesInfo.Uses[n].(*types.Func)
			case *ast.SelectorExpr:
				callee, _ = pass.TypesInfo.Uses[n.Sel].(*types.Func)
			}
			if callee != nil {
				// Methods of generic types resolve to per-instantiation
				// objects; fold them onto the declaration the decls map
				// holds (par.Cell/Matrix are generic, so their callers
				// would otherwise have no edges at all).
				callee = callee.Origin()
				if _, local := decls[callee]; local && !seen[callee] {
					seen[callee] = true
					edges[fn] = append(edges[fn], callee)
				}
			}
			return true
		})
	}

	// BFS from the roots, remembering which staging-touching function
	// reached each one (for the diagnostic).
	reach := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for fn := range roots {
		reach[fn] = fn
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range edges[fn] {
			if _, ok := reach[callee]; ok {
				continue
			}
			reach[callee] = reach[fn]
			queue = append(queue, callee)
		}
	}

	for fn, root := range reach {
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.For,
					"range over map %s in staged-commit code (%s is reachable from %s, which touches a fifo.Stash staging buffer): map order would become inter-thread event order",
					types.TypeString(t, types.RelativeTo(pass.Pkg)),
					hotpath.Describe(fn), hotpath.Describe(root))
			}
			return true
		})
	}
	return nil
}

// touchesStash reports whether t is a fifo.Stash, a struct with a
// direct Stash field (the stageBuf pattern), or a pointer/slice/array
// of either. The check is deliberately shallow: recursing through
// arbitrary struct fields would taint every function holding a
// *Network and drown the signal.
func touchesStash(t types.Type) bool {
	t = stripElem(t)
	if isStash(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isStash(stripElem(st.Field(i).Type())) {
			return true
		}
	}
	return false
}

// stripElem unwraps pointers, slices, and arrays down to the element.
func stripElem(t types.Type) types.Type {
	for {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return t
		}
	}
}

// isStash reports whether t is (an instantiation of) fifo.Stash.
func isStash(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == fifoPath && obj.Name() == "Stash"
}
