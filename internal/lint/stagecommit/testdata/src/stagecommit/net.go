package stagecommit

import "delrep/internal/fifo"

type event struct{ slot int }

// stageBuf mirrors noc's per-edge staging buffer: a struct holding a
// Stash directly, which makes any function touching it a root.
type stageBuf struct {
	events fifo.Stash[event]
}

type net struct {
	stage   []stageBuf
	byID    map[int]event
	pending []event
}

// drain touches the staging buffers, so it and everything it calls is
// staged-commit code.
func (n *net) drain() {
	for i := range n.stage { // ok: slice iteration is deterministic
		for _, ev := range n.stage[i].events.Items() { // ok: slice
			n.pending = append(n.pending, ev)
		}
		n.stage[i].events.Reset()
	}
	n.fold()
}

// fold is reachable from drain; its map walk would make Go's random
// map order the inter-thread event order.
func (n *net) fold() {
	for id := range n.byID { // want `range over map .* staged-commit .* inter-thread event order`
		_ = id
	}
}

// scrub demonstrates suppression: the author vouches for the loop.
func (n *net) scrub() {
	var sb stageBuf
	sb.events.Reset()
	//simlint:ignore stagecommit keys are drained unordered into a set
	for id := range n.byID {
		delete(n.byID, id)
	}
}

// report never touches a staging buffer; cold-path map iteration is
// some other analyzer's business.
func (n *net) report() map[int]int {
	out := map[int]int{}
	for id, ev := range n.byID {
		out[id] = ev.slot
	}
	return out
}
