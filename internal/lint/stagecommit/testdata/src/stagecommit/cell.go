package stagecommit

import "delrep/internal/fifo"

// cell mirrors par.Cell: a generic staging cell whose Stash is a
// direct struct field precisely so this analyzer roots any function
// touching one (embedding it behind a pointer chain would hide it,
// see touchesStash's shallow rule).
type cell[T any] struct {
	S fifo.Stash[T]
}

// matrix mirrors par.Matrix: the flat writer-parity × part grid of
// cells the shared pool's stages drain from.
type matrix[T any] struct {
	cells []cell[T]
	parts int
	byKey map[int][]T
}

// each visits every staged item of one part — it touches the cells, so
// it and its callees are staged-commit code.
func (m *matrix[T]) each(part int, fn func(T)) {
	for i := part; i < len(m.cells); i += m.parts { // ok: slice stride
		for _, v := range m.cells[i].S.Items() { // ok: slice
			fn(v)
		}
		m.cells[i].S.Reset()
	}
	m.index()
}

// index is reachable from each; ranging its map would decide the
// inter-thread drain order by hash seed.
func (m *matrix[T]) index() {
	for k := range m.byKey { // want `range over map .* staged-commit .* inter-thread event order`
		_ = k
	}
}

// sizes never touches a cell: its map walk is out of scope here.
func (m *matrix[T]) sizes() int {
	n := 0
	for _, vs := range m.byKey {
		n += len(vs)
	}
	return n
}
