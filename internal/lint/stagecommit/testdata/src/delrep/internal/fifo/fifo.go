// Package fifo is a fixture stub of the real delrep/internal/fifo:
// just enough surface for the stagecommit analyzer to recognize Stash
// by package path and name.
package fifo

// Stash mirrors the real staging-buffer storage.
type Stash[T any] struct{ buf []T }

// Push appends v.
func (s *Stash[T]) Push(v T) { s.buf = append(s.buf, v) }

// Items returns the pushed values.
func (s *Stash[T]) Items() []T { return s.buf }

// Reset empties the stash.
func (s *Stash[T]) Reset() { s.buf = s.buf[:0] }
