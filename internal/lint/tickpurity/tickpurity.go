// Package tickpurity keeps the per-cycle hot path pure: no I/O, no
// sleeping, no goroutines. The simulator advances in single-threaded
// virtual time; a fmt.Println in a Tick path slows every experiment by
// orders of magnitude, a time.Sleep couples simulated behaviour to the
// host scheduler, and a spawned goroutine races the cycle loop and
// destroys determinism. Debug output belongs behind the reporting
// paths that run between measurement windows.
package tickpurity

import (
	"go/ast"
	"go/types"

	"delrep/internal/lint/analysis"
	"delrep/internal/lint/hotpath"
)

// Analyzer flags I/O, sleeps, and goroutine spawns in per-cycle code.
var Analyzer = &analysis.Analyzer{
	Name: "tickpurity",
	Doc: "flag I/O, time.Sleep, wall-clock reads, and goroutine spawns " +
		"in functions reachable from a per-cycle entry point " +
		"(Tick/Step/Cycle/BeginCycle/HandlePacket)",
	Run: run,
}

// bannedFuncs lists (package, function) pairs that must not run per
// cycle. A nil set bans every function in the package.
var bannedFuncs = map[string]map[string]bool{
	"time": {
		"Sleep":     true,
		"Now":       true,
		"After":     true,
		"Tick":      true,
		"NewTimer":  true,
		"NewTicker": true,
	},
	"fmt": {
		"Print":    true,
		"Printf":   true,
		"Println":  true,
		"Fprint":   true,
		"Fprintf":  true,
		"Fprintln": true,
		"Scan":     true,
		"Scanf":    true,
		"Scanln":   true,
	},
	"os":        nil,
	"log":       nil,
	"log/slog":  nil,
	"io/ioutil": nil,
	"net":       nil,
	"net/http":  nil,
	"syscall":   nil,
}

func run(pass *analysis.Pass) error {
	for fn, hf := range hotpath.Reachable(pass) {
		if hf.Decl.Body == nil {
			continue
		}
		where := hotpath.Describe(fn)
		root := hotpath.Describe(hf.Root)
		ast.Inspect(hf.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"goroutine spawned in per-cycle hot path (%s is reachable from %s): the cycle loop is single-threaded and concurrent mutation breaks determinism",
					where, root)
			case *ast.CallExpr:
				callee := calleeFunc(pass, n)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				sig, _ := callee.Type().(*types.Signature)
				if sig == nil || sig.Recv() != nil {
					return true
				}
				names, banned := bannedFuncs[callee.Pkg().Path()]
				if !banned || (names != nil && !names[callee.Name()]) {
					return true
				}
				pass.Reportf(n.Pos(),
					"call to %s.%s in per-cycle hot path (%s is reachable from %s): keep Tick paths free of I/O and wall-clock time",
					callee.Pkg().Path(), callee.Name(), where, root)
			}
			return true
		})
	}
	return nil
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
