package tp

import (
	"fmt"
	"os"
	"time"
)

// Node is a toy per-cycle component.
type Node struct{ id int }

// Tick is a hot-path root.
func (n *Node) Tick() {
	n.work()
	go n.work() // want `goroutine spawned in per-cycle hot path`
}

func (n *Node) work() {
	time.Sleep(time.Millisecond) // want `call to time.Sleep in per-cycle hot path`
	fmt.Println("cycle", n.id)   // want `call to fmt.Println in per-cycle hot path`
	n.trace()
}

// trace is two hops from Tick; the whole os package is banned.
func (n *Node) trace() {
	f, _ := os.Create("trace.out") // want `call to os.Create in per-cycle hot path`
	_ = f
}

// stamp is reached from Tick and reads the wall clock.
func (n *Node) stamp() int64 {
	return time.Now().UnixNano() // want `call to time.Now in per-cycle hot path`
}

// HandlePacket is also a root: packet handlers run every cycle via
// function values the call graph cannot see.
func (n *Node) HandlePacket() bool {
	_ = n.stamp()
	return true
}

// Report runs between measurement windows; I/O is fine here.
func (n *Node) Report() {
	fmt.Println("node", n.id)
	_ = time.Now()
}

// Sprintf-style pure formatting stays legal in the hot path.
func (n *Node) label() string {
	return fmt.Sprintf("node-%d", n.id)
}

func init() {
	var n Node
	_ = n.label()
	n.Report()
}
