package tickpurity_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/tickpurity"
)

func TestTickPurity(t *testing.T) {
	analysistest.Run(t, "testdata", tickpurity.Analyzer, "tp")
}
