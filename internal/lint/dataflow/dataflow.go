// Package dataflow is a lightweight package-level taint engine for the
// simulator's determinism discipline, built on go/types and a def-use
// walk of each function body — no SSA, no golang.org/x/tools.
//
// The engine tracks values derived from nondeterministic sources:
//
//   - wall-clock time (time.Now / Since / Until)
//   - the global math/rand generator (package-level functions of
//     math/rand and math/rand/v2; *rand.Rand methods are assumed to be
//     config-seeded, which the rngsource analyzer enforces separately)
//   - map iteration order (range over a map, maps.Keys / maps.Values,
//     sync.Map.Range callback arguments)
//   - goroutine/channel scheduling order (variables bound in a select
//     with two or more communication cases)
//   - pointer identity (fmt %p verbs, printing a pointer value,
//     reflect Pointer/UnsafePointer, uintptr conversions of pointers)
//
// Taint propagates through assignments, arithmetic, composite
// literals, indexing, and calls (a call with a tainted argument or
// receiver returns a tainted value). Functions declared in the
// analyzed package get a one-bit summary — "returns a tainted value" —
// iterated to a fixpoint, so taint flows through package-local
// helpers; that is the def-use walk's inter-procedural reach, and it
// is deliberately unsound across packages (each package is analyzed
// against its own sources).
//
// Sorting sanitizes ordering taint: sort.* and slices.Sort* calls kill
// map-order and select-order taint on their argument, because a sorted
// collection no longer depends on the order elements arrived in.
// Time, RNG, and pointer taint survive sorting — a sorted slice of
// wall-clock samples is still nondeterministic.
//
// The detflow analyzer combines this engine with the digest-bearing
// sinks (stats.Digest inputs, core.Results, simspec.Result fields);
// see DESIGN.md §10 for the full source/sink/sanitizer model.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"delrep/internal/lint/analysis"
)

// Kind classifies a nondeterminism source.
type Kind uint8

const (
	// KindTime marks wall-clock-derived values.
	KindTime Kind = iota
	// KindRand marks values from the global (unseeded) RNG.
	KindRand
	// KindMapOrder marks values whose content depends on map iteration
	// order.
	KindMapOrder
	// KindSelectOrder marks values whose content depends on select or
	// goroutine scheduling order.
	KindSelectOrder
	// KindPointer marks values derived from pointer identity.
	KindPointer
)

func (k Kind) String() string {
	switch k {
	case KindTime:
		return "wall-clock time"
	case KindRand:
		return "global RNG"
	case KindMapOrder:
		return "map iteration order"
	case KindSelectOrder:
		return "select/scheduling order"
	case KindPointer:
		return "pointer identity"
	}
	return "nondeterminism"
}

// ordering reports whether the kind is an arrival-order taint that
// sorting sanitizes.
func (k Kind) ordering() bool { return k == KindMapOrder || k == KindSelectOrder }

// Source describes where a taint entered the program.
type Source struct {
	Kind Kind
	Pos  token.Pos
	Desc string // e.g. "time.Now()", "range over map[string]int"
}

// Result is the taint analysis of one package.
type Result struct {
	pass      *analysis.Pass
	exprTaint map[ast.Expr]*Source
	objTaint  map[types.Object]*Source
	summaries map[*types.Func]*Source // package functions returning taint
}

// TaintOf returns the source tainting e, or nil. Every expression the
// engine visited is recorded; unvisited expressions fall back to a
// scan for tainted identifiers.
func (r *Result) TaintOf(e ast.Expr) *Source {
	if s, ok := r.exprTaint[e]; ok {
		return s
	}
	var found *Source
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if sub, ok := n.(ast.Expr); ok {
			if s := r.exprTaint[sub]; s != nil {
				found = s
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := r.pass.TypesInfo.Uses[id]; obj != nil {
				if s := r.objTaint[obj]; s != nil {
					found = s
					return false
				}
			}
		}
		return true
	})
	return found
}

// Summary reports whether the package function fn returns a tainted
// value, and from which source.
func (r *Result) Summary(fn *types.Func) *Source { return r.summaries[fn] }

// maxPasses bounds the package fixpoint: each pass re-walks every
// function so loop-carried and late-declared taint reaches earlier
// uses; real code converges in two.
const maxPasses = 4

// Analyze runs the taint engine over the pass's package.
func Analyze(pass *analysis.Pass) *Result {
	r := &Result{
		pass:      pass,
		exprTaint: map[ast.Expr]*Source{},
		objTaint:  map[types.Object]*Source{},
		summaries: map[*types.Func]*Source{},
	}
	w := &walker{pass: pass, res: r}
	for i := 0; i < maxPasses; i++ {
		w.changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				w.curFn = fn
				w.curRet = r.summaries[fn]
				w.stmt(fd.Body)
				if fn != nil && w.curRet != nil && r.summaries[fn] == nil {
					r.summaries[fn] = w.curRet
					w.changed = true
				}
			}
		}
		if !w.changed {
			break
		}
	}
	return r
}

// walker performs the in-order def-use walk of one function body.
type walker struct {
	pass    *analysis.Pass
	res     *Result
	changed bool
	curFn   *types.Func
	curRet  *Source
}

// taintObj records obj as tainted by src (nil src kills the taint, as
// an untainted reassignment does).
func (w *walker) taintObj(obj types.Object, src *Source) {
	if obj == nil {
		return
	}
	prev := w.res.objTaint[obj]
	switch {
	case src != nil && prev == nil:
		w.res.objTaint[obj] = src
		w.changed = true
	case src == nil && prev != nil:
		delete(w.res.objTaint, obj)
		w.changed = true
	}
}

// record stores e's taint for later TaintOf queries. Taint is sticky
// per expression node: once an expression has been seen tainted it
// stays recorded, because the recording pass saw a program point where
// the taint held.
func (w *walker) record(e ast.Expr, src *Source) *Source {
	if src != nil {
		w.res.exprTaint[e] = src
	}
	return src
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var src *Source
					if len(vs.Values) == 1 && len(vs.Names) > 1 {
						src = w.expr(vs.Values[0])
					} else if i < len(vs.Values) {
						src = w.expr(vs.Values[i])
					}
					w.taintObj(w.pass.TypesInfo.Defs[name], src)
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		w.rangeStmt(s)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		for _, st := range s.Body {
			w.stmt(st)
		}
	case *ast.SelectStmt:
		w.selectStmt(s)
	case *ast.CommClause:
		w.stmt(s.Comm)
		for _, st := range s.Body {
			w.stmt(st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if src := w.expr(e); src != nil && w.curRet == nil {
				w.curRet = src
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// assign handles =, :=, and op= forms, killing taint on untainted
// plain reassignment and spreading a single multi-value rhs across
// every lhs.
func (w *walker) assign(s *ast.AssignStmt) {
	var srcs []*Source
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		src := w.expr(s.Rhs[0])
		for range s.Lhs {
			srcs = append(srcs, src)
		}
	} else {
		for _, rhs := range s.Rhs {
			srcs = append(srcs, w.expr(rhs))
		}
	}
	for i, lhs := range s.Lhs {
		var src *Source
		if i < len(srcs) {
			src = srcs[i]
		}
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// x += y keeps x's old taint and may add y's.
			if src == nil {
				src = w.expr(lhs)
			}
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if target.Name == "_" {
				continue
			}
			obj := w.pass.TypesInfo.Defs[target]
			if obj == nil {
				obj = w.pass.TypesInfo.Uses[target]
			}
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE && src == nil {
				continue // op= with clean rhs keeps current state
			}
			w.taintObj(obj, src)
		default:
			// A write through a selector or index taints the whole root
			// object (field-insensitive); a clean write does not untaint
			// it, since other fields may still carry taint.
			if src != nil {
				w.taintObj(rootObject(w.pass, lhs), src)
				w.record(lhs, src)
			}
		}
	}
}

// rangeStmt taints the iteration variables when ranging over a map
// (iteration order is nondeterministic) or over an already-tainted
// collection.
func (w *walker) rangeStmt(s *ast.RangeStmt) {
	src := w.expr(s.X)
	t := w.pass.TypesInfo.TypeOf(s.X)
	if t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			src = &Source{
				Kind: KindMapOrder,
				Pos:  s.For,
				Desc: "range over " + types.TypeString(t, types.RelativeTo(w.pass.Pkg)),
			}
		}
	}
	for _, v := range []ast.Expr{s.Key, s.Value} {
		if v == nil {
			continue
		}
		if id, ok := ast.Unparen(v).(*ast.Ident); ok && id.Name != "_" {
			obj := w.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = w.pass.TypesInfo.Uses[id]
			}
			w.taintObj(obj, src)
		}
	}
	w.stmt(s.Body)
}

// selectStmt taints variables bound in communication clauses when two
// or more cases compete: which one runs is a scheduler decision.
func (w *walker) selectStmt(s *ast.SelectStmt) {
	var comms int
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok && comms >= 2 {
			src := &Source{
				Kind: KindSelectOrder,
				Pos:  cc.Pos(),
				Desc: "value bound in a multi-way select",
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					obj := w.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = w.pass.TypesInfo.Uses[id]
					}
					w.taintObj(obj, src)
				}
			}
		} else {
			w.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			w.stmt(st)
		}
	}
}

func (w *walker) expr(e ast.Expr) *Source {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[e]
		}
		return w.record(e, w.res.objTaint[obj])
	case *ast.ParenExpr:
		return w.record(e, w.expr(e.X))
	case *ast.SelectorExpr:
		// Field access on a tainted value is tainted; a qualified
		// identifier (pkg.Name) resolves through the Ident case.
		if _, isPkg := w.pass.TypesInfo.Uses[e.Sel].(*types.PkgName); isPkg {
			return nil
		}
		if sel, ok := w.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return w.record(e, w.expr(e.X))
		}
		w.expr(e.X)
		return nil
	case *ast.StarExpr:
		return w.record(e, w.expr(e.X))
	case *ast.UnaryExpr:
		return w.record(e, w.expr(e.X))
	case *ast.BinaryExpr:
		l := w.expr(e.X)
		r := w.expr(e.Y)
		if l == nil {
			l = r
		}
		return w.record(e, l)
	case *ast.IndexExpr:
		x := w.expr(e.X)
		i := w.expr(e.Index)
		if x == nil {
			x = i
		}
		return w.record(e, x)
	case *ast.SliceExpr:
		src := w.expr(e.X)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				if s := w.expr(idx); src == nil {
					src = s
				}
			}
		}
		return w.record(e, src)
	case *ast.CompositeLit:
		var src *Source
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if s := w.expr(el); src == nil {
				src = s
			}
		}
		return w.record(e, src)
	case *ast.KeyValueExpr:
		return w.record(e, w.expr(e.Value))
	case *ast.TypeAssertExpr:
		return w.record(e, w.expr(e.X))
	case *ast.FuncLit:
		w.stmt(e.Body)
		return nil
	case *ast.CallExpr:
		return w.record(e, w.call(e))
	}
	return nil
}

// call evaluates one call expression: sources, sanitizers, package
// summaries, conversions, and plain argument propagation.
func (w *walker) call(call *ast.CallExpr) *Source {
	// Conversions: uintptr(ptr) leaks pointer identity.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		argSrc := w.expr(call.Args[0])
		if isUintptr(tv.Type) && isPointerLike(w.pass.TypesInfo.TypeOf(call.Args[0])) {
			return &Source{Kind: KindPointer, Pos: call.Pos(), Desc: "uintptr conversion of a pointer"}
		}
		return argSrc
	}

	fn := calleeFunc(w.pass, call)

	// sync.Map.Range: the callback observes entries in nondeterministic
	// order — taint its parameters before walking the body.
	if fn != nil && fn.Name() == "Range" && recvNamed(fn) == "sync.Map" {
		if len(call.Args) == 1 {
			if fl, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				src := &Source{Kind: KindMapOrder, Pos: call.Pos(), Desc: "sync.Map.Range iteration"}
				for _, f := range fl.Type.Params.List {
					for _, name := range f.Names {
						w.taintObj(w.pass.TypesInfo.Defs[name], src)
					}
				}
			}
		}
		// fall through: args walked below (taints the funclit body with
		// the parameters already marked).
	}

	// Sanitizers: sorting kills arrival-order taint on the argument.
	if fn != nil && isSorter(fn) && len(call.Args) > 0 {
		for _, arg := range call.Args {
			w.expr(arg)
		}
		if obj := rootObject(w.pass, call.Args[0]); obj != nil {
			if s := w.res.objTaint[obj]; s != nil && s.Kind.ordering() {
				delete(w.res.objTaint, obj)
				w.changed = true
			}
		}
		return nil
	}

	// Evaluate receiver and arguments.
	var src *Source
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := w.expr(sel.X); s != nil {
			src = s
		}
	}
	for _, arg := range call.Args {
		if s := w.expr(arg); src == nil {
			src = s
		}
	}

	if fn == nil {
		return src
	}

	// Known sources.
	if s := sourceCall(w.pass, call, fn); s != nil {
		return s
	}

	// len/cap of anything are deterministic counts.
	if fn.Pkg() == nil {
		if b, ok := w.pass.TypesInfo.Uses[baseIdent(call.Fun)].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return nil
			}
		}
		return src
	}

	// Package-local summaries: a call to a function of this package
	// that returns taint is itself a source at this call site.
	if fn.Pkg() == w.pass.Pkg {
		if s := w.res.summaries[fn]; s != nil {
			return &Source{Kind: s.Kind, Pos: call.Pos(), Desc: s.Desc + " (via " + fn.Name() + ")"}
		}
	}
	return src
}

// sourceCall recognizes the nondeterminism-source calls.
func sourceCall(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) *Source {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig != nil && sig.Recv() == nil
	switch {
	case pkg.Path() == "time" && pkgLevel:
		switch fn.Name() {
		case "Now", "Since", "Until":
			return &Source{Kind: KindTime, Pos: call.Pos(), Desc: "time." + fn.Name() + "()"}
		}
	case (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") && pkgLevel:
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return nil // constructors: seeded by their arguments
		}
		return &Source{Kind: KindRand, Pos: call.Pos(), Desc: pkg.Name() + "." + fn.Name() + "() (global generator)"}
	case pkg.Path() == "maps" && pkgLevel && (fn.Name() == "Keys" || fn.Name() == "Values"):
		return &Source{Kind: KindMapOrder, Pos: call.Pos(), Desc: "maps." + fn.Name() + "()"}
	case pkg.Path() == "reflect" && !pkgLevel && (fn.Name() == "Pointer" || fn.Name() == "UnsafePointer"):
		return &Source{Kind: KindPointer, Pos: call.Pos(), Desc: "reflect ." + fn.Name() + "()"}
	case pkg.Path() == "fmt" && pkgLevel:
		if s := pointerFormat(pass, call, fn); s != nil {
			return s
		}
	}
	return nil
}

// pointerFormat flags fmt calls that render pointer identity: a %p (or
// %#p) verb in a literal format string, or a pointer-typed argument to
// the non-formatting printers.
func pointerFormat(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) *Source {
	name := fn.Name()
	formatted := strings.HasSuffix(name, "f") // Sprintf, Fprintf, Printf, Errorf, Appendf
	argStart := 0
	if strings.HasPrefix(name, "F") || name == "Appendf" || name == "Append" || name == "Appendln" {
		argStart = 1 // skip the writer / destination
	}
	if formatted {
		if len(call.Args) <= argStart {
			return nil
		}
		if lit, ok := ast.Unparen(call.Args[argStart]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if strings.Contains(lit.Value, "%p") || strings.Contains(lit.Value, "%#p") {
				return &Source{Kind: KindPointer, Pos: call.Pos(), Desc: "fmt." + name + " with %p"}
			}
		}
		return nil
	}
	switch name {
	case "Sprint", "Sprintln", "Print", "Println", "Fprint", "Fprintln":
		for _, arg := range call.Args[min(argStart, len(call.Args)):] {
			if isPointerLike(pass.TypesInfo.TypeOf(arg)) {
				return &Source{Kind: KindPointer, Pos: call.Pos(), Desc: "fmt." + name + " of a pointer value"}
			}
		}
	}
	return nil
}

// isSorter reports whether fn is a sanitizing sort.
func isSorter(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

func isUintptr(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uintptr
}

// isPointerLike reports whether values of t carry address identity.
func isPointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// rootObject resolves the base object of a selector/index/deref chain.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		default:
			return nil
		}
	}
}

// baseIdent returns the identifier named by a (possibly selected)
// callee expression.
func baseIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// calleeFunc resolves the called function, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	if id := baseIdent(call.Fun); id != nil {
		fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
		return fn
	}
	return nil
}

// recvNamed renders fn's receiver type as "pkg.Name" (pointers
// stripped), or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// DescribeAt renders a source for a diagnostic message, with its
// origin position relative to the reporting file.
func (s *Source) DescribeAt(fset *token.FileSet) string {
	if s == nil {
		return ""
	}
	pos := fset.Position(s.Pos)
	return fmt.Sprintf("%s from %s at line %d", s.Kind, s.Desc, pos.Line)
}
