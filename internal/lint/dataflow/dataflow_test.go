package dataflow_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"delrep/internal/lint/analysis"
	"delrep/internal/lint/dataflow"
)

// TestSummaries checks the package-level fixpoint: which fixture
// functions are known to return nondeterministic values.
func TestSummaries(t *testing.T) {
	loader, err := analysis.NewLoader("testdata")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader.TestdataSrc = filepath.Join("testdata", "src")
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "flow"), "flow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pass := &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "dataflow-test"},
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		PkgPath:   pkg.Path,
		TypesInfo: pkg.Info,
	}
	res := dataflow.Analyze(pass)

	want := map[string]*struct {
		tainted bool
		kind    dataflow.Kind
	}{
		"stamp":     {true, dataflow.KindTime},
		"indirect":  {true, dataflow.KindTime},
		"clean":     {false, 0},
		"sanitized": {false, 0},
		"unsorted":  {true, dataflow.KindMapOrder},
	}
	for name, w := range want {
		fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("fixture function %s not found", name)
		}
		src := res.Summary(fn)
		if (src != nil) != w.tainted {
			t.Errorf("Summary(%s) tainted = %v, want %v (src=%+v)", name, src != nil, w.tainted, src)
			continue
		}
		if src != nil && src.Kind != w.kind {
			t.Errorf("Summary(%s) kind = %v, want %v", name, src.Kind, w.kind)
		}
	}
}
