// Package flow is a fixture for the dataflow engine's summary tests.
package flow

import (
	"sort"
	"time"
)

// stamp returns a wall-clock value: its summary must be tainted.
func stamp() int64 { return time.Now().UnixNano() }

// indirect returns taint through a package-local call chain.
func indirect() int64 { return stamp() + 1 }

// clean returns a deterministic value: no taint.
func clean(x int64) int64 { return x * 2 }

// sanitized collects map keys but sorts them: ordering taint killed.
func sanitized(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsorted leaks map order to its caller.
func unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

var _ = []any{stamp, indirect, clean, sanitized, unsorted}
