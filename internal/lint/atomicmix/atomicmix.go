// Package atomicmix finds variables that are accessed both through
// sync/atomic and with plain reads/writes in the same package. A plain
// access to a word that other goroutines touch atomically is a data
// race: the compiler and the hardware are both free to tear, cache, or
// reorder it, and the race detector will flag it only on the schedules
// that happen to collide.
//
// Any variable whose address is passed to a sync/atomic package-level
// function (atomic.AddInt64(&x.f, 1), atomic.LoadUint32(&v), ...) is
// atomic-discipline; every plain read, write, increment, or address
// escape of the same variable elsewhere in the package is flagged. The
// analyzer attaches suggested fixes — plain reads become
// atomic.LoadXxx, writes become StoreXxx, increments become AddXxx —
// and inserts the sync/atomic import when the file lacks it, so
// `simlint -fix` can repair the mix mechanically. (Migrating the field
// to a typed atomic.Int64 is the better manual refactor; the fix keeps
// the program correct until then.)
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"delrep/internal/lint/analysis"
)

// Analyzer flags mixed atomic/plain access to the same variable.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag variables accessed both via sync/atomic and plainly; " +
		"suggests Load/Store/Add rewrites for the plain accesses",
	Run: run,
}

// atomicUse records the first atomic access to a variable.
type atomicUse struct {
	pos    token.Pos
	suffix string // Int64, Uint32, ... from the variable's type
}

func run(pass *analysis.Pass) error {
	uses := map[types.Object]atomicUse{}
	exempt := map[ast.Expr]bool{} // &x.f args of atomic calls

	// Pass 1: collect atomic-discipline variables.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicPkgCall(pass, call) {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			obj := addressedObject(pass, un.X)
			if obj == nil {
				return true
			}
			exempt[un.X] = true
			if _, seen := uses[obj]; !seen {
				uses[obj] = atomicUse{pos: call.Pos(), suffix: atomicSuffix(obj.Type())}
			}
			return true
		})
	}
	if len(uses) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses to those variables.
	for _, file := range pass.Files {
		c := &checker{pass: pass, file: file, uses: uses, exempt: exempt, handled: map[ast.Expr]bool{}}
		ast.Inspect(file, c.visit)
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	file    *ast.File
	uses    map[types.Object]atomicUse
	exempt  map[ast.Expr]bool
	handled map[ast.Expr]bool
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.assign(n)
	case *ast.IncDecStmt:
		c.incDec(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if obj := c.trackedExpr(n.X); obj != nil && !c.exempt[n.X] {
				c.handled[n.X] = true
				c.report(n.X, obj, nil) // address escapes; no mechanical fix
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		e := n.(ast.Expr)
		if c.handled[e] || c.exempt[e] {
			return false
		}
		if obj := c.trackedExpr(e); obj != nil {
			c.handled[e] = true
			use := c.uses[obj]
			c.report(e, obj, c.loadFix(e, use))
			return false
		}
	}
	return true
}

// assign rewrites `x.f = v`, `x.f += n`, `x.f -= n` into Store/Add.
func (c *checker) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return // multi-assign: reads/writes reported individually
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	obj := c.trackedExpr(lhs)
	if obj == nil {
		return
	}
	c.handled[lhs] = true
	use := c.uses[obj]
	addr := "&" + types.ExprString(lhs)

	var fix *analysis.SuggestedFix
	if use.suffix != "" {
		switch as.Tok {
		case token.ASSIGN:
			// `x.f = x.f + n` and `x.f = n + x.f` are increments in
			// disguise; a Store would lose concurrent additions.
			if delta, ok := c.incrementOf(rhs, obj); ok {
				fix = c.stmtFix(as, use,
					fmt.Sprintf("atomic.Add%s(%s, %s)", use.suffix, addr, delta),
					"replace read-modify-write with atomic.Add"+use.suffix)
			} else {
				fix = c.stmtFix(as, use,
					fmt.Sprintf("atomic.Store%s(%s, %s)", use.suffix, addr, types.ExprString(rhs)),
					"replace plain write with atomic.Store"+use.suffix)
			}
		case token.ADD_ASSIGN:
			fix = c.stmtFix(as, use,
				fmt.Sprintf("atomic.Add%s(%s, %s)", use.suffix, addr, types.ExprString(rhs)),
				"replace += with atomic.Add"+use.suffix)
		case token.SUB_ASSIGN:
			fix = c.stmtFix(as, use,
				fmt.Sprintf("atomic.Add%s(%s, -(%s))", use.suffix, addr, types.ExprString(rhs)),
				"replace -= with atomic.Add"+use.suffix)
		}
	}
	c.report(lhs, obj, fix)
}

func (c *checker) incDec(st *ast.IncDecStmt) {
	obj := c.trackedExpr(st.X)
	if obj == nil {
		return
	}
	c.handled[st.X] = true
	use := c.uses[obj]
	var fix *analysis.SuggestedFix
	if use.suffix != "" {
		delta := "1"
		if st.Tok == token.DEC {
			delta = "-1"
		}
		fix = c.stmtFix(st, use,
			fmt.Sprintf("atomic.Add%s(&%s, %s)", use.suffix, types.ExprString(st.X), delta),
			"replace "+st.Tok.String()+" with atomic.Add"+use.suffix)
	}
	c.report(st.X, obj, fix)
}

// incrementOf matches rhs == `<obj> + n` / `n + <obj>` / `<obj> - n`
// and returns the delta expression text.
func (c *checker) incrementOf(rhs ast.Expr, obj types.Object) (string, bool) {
	be, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	switch be.Op {
	case token.ADD:
		if c.trackedExpr(be.X) == obj {
			c.handled[ast.Unparen(be.X)] = true
			return types.ExprString(be.Y), true
		}
		if c.trackedExpr(be.Y) == obj {
			c.handled[ast.Unparen(be.Y)] = true
			return types.ExprString(be.X), true
		}
	case token.SUB:
		if c.trackedExpr(be.X) == obj {
			c.handled[ast.Unparen(be.X)] = true
			return "-(" + types.ExprString(be.Y) + ")", true
		}
	}
	return "", false
}

// loadFix wraps a plain read in atomic.LoadXxx.
func (c *checker) loadFix(e ast.Expr, use atomicUse) *analysis.SuggestedFix {
	if use.suffix == "" {
		return nil
	}
	fix := &analysis.SuggestedFix{
		Message: "replace plain read with atomic.Load" + use.suffix,
		TextEdits: []analysis.TextEdit{{
			Pos:     e.Pos(),
			End:     e.End(),
			NewText: []byte(fmt.Sprintf("atomic.Load%s(&%s)", use.suffix, types.ExprString(e))),
		}},
	}
	c.addImportEdit(fix)
	return fix
}

// stmtFix replaces a whole statement.
func (c *checker) stmtFix(st ast.Stmt, use atomicUse, newText, msg string) *analysis.SuggestedFix {
	fix := &analysis.SuggestedFix{
		Message: msg,
		TextEdits: []analysis.TextEdit{{
			Pos:     st.Pos(),
			End:     st.End(),
			NewText: []byte(newText),
		}},
	}
	c.addImportEdit(fix)
	return fix
}

// addImportEdit appends the sync/atomic import insertion when the
// enclosing file lacks it. Identical insertions from several fixes in
// one file collapse at apply time.
func (c *checker) addImportEdit(fix *analysis.SuggestedFix) {
	for _, imp := range c.file.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "sync/atomic" {
			return
		}
	}
	for _, decl := range c.file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			fix.TextEdits = append(fix.TextEdits, analysis.TextEdit{
				Pos:     gd.Lparen + 1,
				End:     gd.Lparen + 1,
				NewText: []byte("\n\t\"sync/atomic\""),
			})
		} else {
			fix.TextEdits = append(fix.TextEdits, analysis.TextEdit{
				Pos:     gd.End(),
				End:     gd.End(),
				NewText: []byte("\nimport \"sync/atomic\""),
			})
		}
		return
	}
	end := c.file.Name.End()
	fix.TextEdits = append(fix.TextEdits, analysis.TextEdit{
		Pos:     end,
		End:     end,
		NewText: []byte("\n\nimport \"sync/atomic\""),
	})
}

func (c *checker) report(e ast.Expr, obj types.Object, fix *analysis.SuggestedFix) {
	use := c.uses[obj]
	d := analysis.Diagnostic{
		Pos: e.Pos(),
		Message: fmt.Sprintf(
			"%s accessed without atomics here but atomically at %s: mixing atomic and plain access is a data race",
			types.ExprString(e), c.pass.Fset.Position(use.pos)),
	}
	if fix != nil {
		d.SuggestedFixes = []analysis.SuggestedFix{*fix}
	}
	c.pass.Report(d)
}

// trackedExpr resolves e to a variable under atomic discipline, or nil.
func (c *checker) trackedExpr(e ast.Expr) types.Object {
	obj := addressedObject(c.pass, e)
	if obj == nil {
		return nil
	}
	if _, ok := c.uses[obj]; !ok {
		return nil
	}
	return obj
}

// addressedObject resolves x.f / v to the variable object being
// addressed or accessed.
func addressedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return nil
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}

// isAtomicPkgCall reports whether call invokes a sync/atomic
// package-level pointer-taking function.
func isAtomicPkgCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // typed atomics (atomic.Int64 methods) are fine
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// atomicSuffix maps a variable's type to the sync/atomic function
// suffix, or "" when no package-level accessor exists for it.
func atomicSuffix(t types.Type) string {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	}
	return ""
}
