// Package am exercises the atomicmix analyzer: fields accessed both
// through sync/atomic and plainly.
package am

import "sync/atomic"

// Counter mixes disciplines across methods.
type Counter struct {
	n     int64
	hits  int64
	flags uint32
	plain int64
}

// bump is the atomic side of the mix.
func (c *Counter) bump() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.hits, 1)
	atomic.StoreUint32(&c.flags, 1)
}

// read: a plain read of an atomically-updated field.
func (c *Counter) read() int64 {
	return c.n // want `c\.n accessed without atomics`
}

// write: a plain store.
func (c *Counter) write(v int64) {
	c.n = v // want `c\.n accessed without atomics`
}

// incr: increments in three spellings, all racy.
func (c *Counter) incr() {
	c.hits++            // want `c\.hits accessed without atomics`
	c.hits += 2         // want `c\.hits accessed without atomics`
	c.hits = c.hits + 3 // want `c\.hits accessed without atomics`
}

// escape: the address leaks; flagged, but no mechanical rewrite.
func (c *Counter) escape() *uint32 {
	return &c.flags // want `c\.flags accessed without atomics`
}

// plainOnly: a field never touched atomically is not part of a mix.
func (c *Counter) plainOnly() int64 {
	c.plain++
	return c.plain
}

// Typed uses typed atomics, the fixed form — not a mix.
type Typed struct{ v atomic.Int64 }

func (t *Typed) ok() int64 {
	t.v.Add(1)
	return t.v.Load()
}

// suppressed: acknowledged pre-concurrency initialization.
func (c *Counter) suppressed() {
	//simlint:ignore atomicmix fixture exception: constructor runs before any goroutine starts
	c.n = 0
}
