// noimp reads an atomic-discipline field from a file that does not
// import sync/atomic: the suggested fix must insert the import.
package am

import (
	"fmt"
)

func describe(c *Counter) string {
	return fmt.Sprint(c.n) // want `c\.n accessed without atomics`
}
