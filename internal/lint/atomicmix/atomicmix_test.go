package atomicmix_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.RunWithFixes(t, "testdata", atomicmix.Analyzer, "am")
}
