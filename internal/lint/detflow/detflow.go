// Package detflow reports nondeterministic values reaching
// digest-bearing state. The determinism audit hashes every end-of-run
// counter into a stats.Digest, and served results render core.Results
// into simspec.Result — so any wall-clock timestamp, global-RNG draw,
// map-iteration artifact, select-order value, or pointer rendering
// that flows into those sinks silently breaks the bit-identical-digest
// invariant the whole evaluation rests on.
//
// Sources, propagation, and sanitizers come from the
// internal/lint/dataflow taint engine; this analyzer contributes the
// sinks:
//
//   - arguments of stats.Digest methods (Uint64, Int64, Float64,
//     String, Sampler)
//   - fields of core.Results, written directly or via composite
//     literal
//   - fields of simspec.Result, the canonical wire form of a served
//     result
//
// Sink types are matched by package name (stats, core, simspec) so the
// analyzer keeps working on testdata fixtures and future package
// moves.
package detflow

import (
	"go/ast"
	"go/types"

	"delrep/internal/lint/analysis"
	"delrep/internal/lint/dataflow"
)

// Analyzer reports taint flows from nondeterministic sources into
// digest-bearing sinks.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "flag nondeterministic values (wall clock, global RNG, map/select " +
		"order, pointer identity) flowing into digest-bearing state " +
		"(stats.Digest inputs, core.Results, simspec.Result)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	res := dataflow.Analyze(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDigestCall(pass, res, n)
			case *ast.AssignStmt:
				checkSinkAssign(pass, res, n)
			case *ast.CompositeLit:
				checkSinkLiteral(pass, res, n)
			}
			return true
		})
	}
	return nil
}

// checkDigestCall flags tainted arguments of stats.Digest methods.
func checkDigestCall(pass *analysis.Pass, res *dataflow.Result, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !isSinkType(recvType(fn), "stats", "Digest") {
		return
	}
	for _, arg := range call.Args {
		if src := res.TaintOf(arg); src != nil {
			pass.Reportf(arg.Pos(),
				"%s flows into stats.Digest.%s: digests must depend only on the config and seed",
				src.DescribeAt(pass.Fset), fn.Name())
		}
	}
}

// checkSinkAssign flags tainted writes to fields of a sink struct
// (core.Results, simspec.Result).
func checkSinkAssign(pass *analysis.Pass, res *dataflow.Result, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			continue
		}
		name, ok := sinkOf(pass.TypesInfo.TypeOf(sel.X))
		if !ok {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		} else if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		if src := res.TaintOf(rhs); src != nil {
			pass.Reportf(lhs.Pos(),
				"%s flows into %s.%s: served and audited results must be bit-reproducible",
				src.DescribeAt(pass.Fset), name, sel.Sel.Name)
		}
	}
}

// checkSinkLiteral flags tainted elements of a sink composite literal.
func checkSinkLiteral(pass *analysis.Pass, res *dataflow.Result, lit *ast.CompositeLit) {
	name, ok := sinkOf(pass.TypesInfo.TypeOf(lit))
	if !ok {
		return
	}
	for _, el := range lit.Elts {
		field := ""
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = "." + id.Name
			}
		}
		if src := res.TaintOf(val); src != nil {
			pass.Reportf(val.Pos(),
				"%s flows into %s%s: served and audited results must be bit-reproducible",
				src.DescribeAt(pass.Fset), name, field)
		}
	}
}

// sinkOf reports whether t (possibly a pointer) is a digest-bearing
// result type, returning its display name.
func sinkOf(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	switch {
	case isSinkType(named, "core", "Results"):
		return "core.Results", true
	case isSinkType(named, "simspec", "Result"):
		return "simspec.Result", true
	case isSinkType(named, "stats", "Digest"):
		return "stats.Digest", true
	}
	return "", false
}

func isSinkType(named *types.Named, pkgName, typeName string) bool {
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == typeName &&
		obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// recvType returns fn's receiver named type with pointers stripped.
func recvType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}
