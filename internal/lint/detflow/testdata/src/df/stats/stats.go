// Package stats is a fixture stand-in for the real internal/stats:
// the detflow analyzer matches sink types by package name, so this
// Digest is sink-equivalent to the real one.
package stats

// Digest mimics the determinism-audit hash accumulator.
type Digest struct{ h uint64 }

// Uint64 folds v.
func (d *Digest) Uint64(v uint64) { d.h ^= v }

// Int64 folds v.
func (d *Digest) Int64(v int64) { d.Uint64(uint64(v)) }

// Float64 folds v.
func (d *Digest) Float64(v float64) { d.Uint64(uint64(v)) }

// String folds s.
func (d *Digest) String(s string) {
	for i := 0; i < len(s); i++ {
		d.Uint64(uint64(s[i]))
	}
}
