// Package simspec is a fixture stand-in for the canonical wire form.
package simspec

// Result mimics the served result rendering.
type Result struct {
	Digest string
	GPUIPC float64
}
