// Package sim exercises the detflow sources, sinks, and sanitizers.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"df/core"
	"df/simspec"
	"df/stats"
)

// wallClock: a time.Now-derived value reaching a digest input.
func wallClock(d *stats.Digest) {
	t := time.Now()
	d.Int64(t.UnixNano()) // want `wall-clock time from time.Now\(\)`
}

// globalRand: the process-wide generator reaching a digest input.
func globalRand(d *stats.Digest) {
	v := rand.Int63()
	d.Int64(v) // want `global RNG from rand.Int63\(\)`
}

// seededRand: a config-seeded generator is fine.
func seededRand(d *stats.Digest, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	d.Int64(rng.Int63())
}

// mapOrderSum: float accumulation in map order is order-dependent.
func mapOrderSum(d *stats.Digest, m map[string]float64) {
	var sum float64
	for _, v := range m {
		sum += v
	}
	d.Float64(sum) // want `map iteration order from range over map\[string\]float64`
}

// sortedKeys: sorting sanitizes map-order taint.
func sortedKeys(d *stats.Digest, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	d.String(strings.Join(keys, ","))
}

// selectOrder: a value bound in a multi-way select depends on the
// scheduler.
func selectOrder(d *stats.Digest, a, b chan int64) {
	var v int64
	select {
	case v = <-a:
	case v = <-b:
	}
	d.Int64(v) // want `select/scheduling order`
}

// singleRecv: one communication case has no ordering choice.
func singleRecv(d *stats.Digest, a chan int64) {
	v := <-a
	d.Int64(v)
}

// pointerFmt: %p renders address-space layout into the digest.
func pointerFmt(d *stats.Digest, p *int) {
	s := fmt.Sprintf("%p", p)
	d.String(s) // want `pointer identity from fmt.Sprintf with %p`
}

// stamp is a package-local helper whose summary carries the taint.
func stamp() int64 {
	return time.Now().UnixNano()
}

// viaHelper: taint crosses a package-local call through the summary.
func viaHelper(d *stats.Digest) {
	d.Int64(stamp()) // want `wall-clock time .*via stamp`
}

// resultsField: a tainted write into the results struct.
func resultsField(r *core.Results, x *int) {
	r.Note = fmt.Sprintf("%p", x) // want `pointer identity .* core.Results.Note`
}

// resultsLiteral: tainted and clean composite-literal elements.
func resultsLiteral(seed int64) core.Results {
	clean := core.Results{Cycles: seed}
	_ = clean
	return core.Results{
		Cycles: time.Now().Unix(), // want `wall-clock time .* core.Results.Cycles`
	}
}

// wireResult: the served wire form is a sink too.
func wireResult(m map[string]int) simspec.Result {
	var last string
	for k := range m {
		last = k
	}
	return simspec.Result{
		Digest: last, // want `map iteration order .* simspec.Result.Digest`
	}
}

// syncMapRange: sync.Map iteration order taints the callback values.
func syncMapRange(d *stats.Digest, m *sync.Map) {
	var last any
	m.Range(func(k, v any) bool {
		last = v
		return true
	})
	d.String(fmt.Sprint(last)) // want `map iteration order from sync.Map.Range`
}

// suppressed: an acknowledged exception stays quiet.
func suppressed(d *stats.Digest) {
	//simlint:ignore detflow fixture exception: build stamp, not simulated state
	d.Int64(time.Now().UnixNano())
}

// cleanFlow: deterministic inputs stay silent end to end.
func cleanFlow(d *stats.Digest, cycles int64, ipc float64) core.Results {
	d.Int64(cycles)
	d.Float64(ipc)
	return core.Results{GPUIPC: ipc, Cycles: cycles}
}
