// Package core is a fixture stand-in for internal/core's result type.
package core

// Results mimics the simulator's end-of-run results struct.
type Results struct {
	GPUIPC float64
	Cycles int64
	Note   string
}
