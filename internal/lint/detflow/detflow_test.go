package detflow_test

import (
	"testing"

	"delrep/internal/lint/analysis/analysistest"
	"delrep/internal/lint/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata", detflow.Analyzer, "df/sim")
}
