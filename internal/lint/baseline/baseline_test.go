package baseline

import (
	"bytes"
	"strings"
	"testing"
)

func find(analyzer, file, msg, pos string) Finding {
	return Finding{Key: Key{Analyzer: analyzer, File: file, Message: msg}, Pos: pos}
}

// TestRoundTrip: Format → Parse preserves entries and counts.
func TestRoundTrip(t *testing.T) {
	b := New([]Finding{
		find("detflow", "internal/core/gpu.go", "time reaches digest", "a.go:3:1"),
		find("detflow", "internal/core/gpu.go", "time reaches digest", "a.go:9:1"),
		find("lockorder", "internal/serve/serve.go", "send under mu", "b.go:4:2"),
	})
	text := b.Format()
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Format()): %v", err)
	}
	if got.Total() != 3 {
		t.Fatalf("round-trip total = %d, want 3", got.Total())
	}
	if !bytes.Equal(got.Format(), text) {
		t.Fatalf("round-trip not stable:\n%s\nvs\n%s", got.Format(), text)
	}
}

// TestFormatDeterministic: entry order does not depend on insertion
// order (the file must be diffable across runs).
func TestFormatDeterministic(t *testing.T) {
	fs := []Finding{
		find("b", "z.go", "m2", "z.go:1:1"),
		find("a", "a.go", "m1", "a.go:1:1"),
		find("a", "a.go", "m0", "a.go:2:1"),
	}
	first := New(fs).Format()
	rev := []Finding{fs[2], fs[1], fs[0]}
	if !bytes.Equal(New(rev).Format(), first) {
		t.Fatal("Format depends on insertion order")
	}
}

// TestFilter: the ratchet passes a fully-baselined tree, fails a new
// finding, fails the excess copy of a known finding, and reports
// stale entries once findings are fixed.
func TestFilter(t *testing.T) {
	base := New([]Finding{
		find("detflow", "a.go", "old finding", "a.go:3:1"),
		find("detflow", "a.go", "twice", "a.go:5:1"),
		find("detflow", "a.go", "twice", "a.go:8:1"),
	})

	// Identical tree: no regressions, nothing stale.
	current := []Finding{
		find("detflow", "a.go", "old finding", "a.go:3:1"),
		find("detflow", "a.go", "twice", "a.go:5:1"),
		find("detflow", "a.go", "twice", "a.go:8:1"),
	}
	reg, stale := base.Filter(current)
	if len(reg) != 0 || len(stale) != 0 {
		t.Fatalf("baselined tree: reg=%v stale=%v, want none", reg, stale)
	}

	// A brand-new finding is a regression even though others are frozen.
	reg, _ = base.Filter(append(current, find("lockorder", "b.go", "fresh", "b.go:2:2")))
	if len(reg) != 1 || reg[0].Message != "fresh" {
		t.Fatalf("new finding: reg=%v, want the fresh one", reg)
	}

	// A third copy of a twice-frozen finding regresses by exactly one.
	reg, _ = base.Filter(append(current, find("detflow", "a.go", "twice", "a.go:30:1")))
	if len(reg) != 1 || reg[0].Message != "twice" {
		t.Fatalf("excess copy: reg=%v, want one extra of the frozen class", reg)
	}

	// Fixing a finding leaves its entry stale.
	reg, stale = base.Filter(current[:1])
	if len(reg) != 0 {
		t.Fatalf("after fixes: unexpected regressions %v", reg)
	}
	if len(stale) != 1 || stale[0].Message != "twice" {
		t.Fatalf("after fixes: stale=%v, want the fixed entry", stale)
	}
}

// TestCheckRatchet: totals may fall or hold, never rise.
func TestCheckRatchet(t *testing.T) {
	old := New([]Finding{
		find("a", "f.go", "m", "f.go:1:1"),
		find("a", "f.go", "n", "f.go:2:1"),
	})
	if err := CheckRatchet(old, New(nil)); err != nil {
		t.Fatalf("shrinking baseline rejected: %v", err)
	}
	same := New([]Finding{
		find("b", "g.go", "x", "g.go:1:1"),
		find("b", "g.go", "y", "g.go:2:1"),
	})
	if err := CheckRatchet(old, same); err != nil {
		t.Fatalf("same-size baseline rejected: %v", err)
	}
	grown := New([]Finding{
		find("a", "f.go", "m", "f.go:1:1"),
		find("a", "f.go", "n", "f.go:2:1"),
		find("a", "f.go", "o", "f.go:3:1"),
	})
	err := CheckRatchet(old, grown)
	if err == nil {
		t.Fatal("growing baseline accepted")
	}
	if !strings.Contains(err.Error(), "2 to 3") {
		t.Fatalf("ratchet error %q does not name the counts", err)
	}
}

// TestParseErrors: malformed lines are rejected with line numbers.
func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"1\tdetflow\tmissing-message",
		"zero\tdetflow\ta.go\tmsg",
		"0\tdetflow\ta.go\tmsg",
	} {
		if _, err := Parse([]byte(bad + "\n")); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Comments and blanks are fine.
	b, err := Parse([]byte("# header\n\n1\ta\tf.go\tmsg\n"))
	if err != nil || b.Total() != 1 {
		t.Fatalf("Parse with comments: %v, total %d", err, b.Total())
	}
}

// TestLoadMissing: a missing file is an empty baseline, not an error.
func TestLoadMissing(t *testing.T) {
	b, err := Load("testdata/does-not-exist.baseline")
	if err != nil {
		t.Fatalf("Load(missing): %v", err)
	}
	if b.Total() != 0 {
		t.Fatalf("Load(missing).Total() = %d, want 0", b.Total())
	}
}
