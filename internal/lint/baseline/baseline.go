// Package baseline implements simlint's ratchet. A baseline file
// freezes the findings that existed when the ratchet was adopted, so
// CI fails only on regressions: a finding not in the baseline, or more
// findings of a baselined kind than were frozen. The finding count can
// only go down — `simlint -update-baseline` refuses to write a
// baseline with more total findings than the one it replaces.
//
// Entries are keyed by (analyzer, module-relative file, message) —
// deliberately without line numbers, so unrelated edits that shift a
// frozen finding down the file do not break CI. Several identical
// findings in one file collapse into a single entry with a count.
//
// The file format is line-oriented and diff-friendly:
//
//	# comment
//	<count>\t<analyzer>\t<file>\t<message>
//
// sorted by file, analyzer, message.
package baseline

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Key identifies a finding class, line-number-free.
type Key struct {
	Analyzer string
	File     string // module-relative, slash-separated
	Message  string
}

// Finding is one concrete diagnostic to compare against the baseline.
type Finding struct {
	Key
	Pos string // rendered position, for reporting only
}

// Baseline is a parsed baseline file: finding class → frozen count.
type Baseline struct {
	entries map[Key]int
}

// New builds a baseline freezing the given findings.
func New(findings []Finding) *Baseline {
	b := &Baseline{entries: map[Key]int{}}
	for _, f := range findings {
		b.entries[f.Key]++
	}
	return b
}

// Load reads a baseline file. A missing file is not an error: it
// yields an empty baseline (every finding is then a regression), so a
// repo can adopt the ratchet by committing an empty file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return New(nil), nil
	}
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes the baseline format.
func Parse(data []byte) (*Baseline, error) {
	b := New(nil)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline line %d: want 4 tab-separated fields, got %d", lineNo, len(parts))
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, parts[0])
		}
		key := Key{Analyzer: parts[1], File: parts[2], Message: parts[3]}
		b.entries[key] += n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Format renders the baseline deterministically.
func (b *Baseline) Format() []byte {
	keys := make([]Key, 0, len(b.entries))
	for k := range b.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	var buf bytes.Buffer
	buf.WriteString("# simlint baseline: frozen findings, keyed analyzer/file/message.\n")
	buf.WriteString("# Regenerate with `simlint -update-baseline`; the count only goes down.\n")
	for _, k := range keys {
		fmt.Fprintf(&buf, "%d\t%s\t%s\t%s\n", b.entries[k], k.Analyzer, k.File, k.Message)
	}
	return buf.Bytes()
}

// Total is the number of frozen findings (counts summed).
func (b *Baseline) Total() int {
	n := 0
	for _, c := range b.entries {
		n += c
	}
	return n
}

// Filter splits current findings into regressions (not covered by the
// baseline) and reports baseline entries that no longer occur (stale —
// the file should be regenerated to ratchet the count down). When more
// findings of one class exist than were frozen, the excess are
// regressions; which concrete sites count as "excess" is taken in
// position order for determinism.
func (b *Baseline) Filter(findings []Finding) (regressions []Finding, stale []Key) {
	byKey := map[Key][]Finding{}
	for _, f := range findings {
		byKey[f.Key] = append(byKey[f.Key], f)
	}
	for key, fs := range byKey {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Pos < fs[j].Pos })
		allowed := b.entries[key]
		if len(fs) > allowed {
			regressions = append(regressions, fs[allowed:]...)
		}
	}
	for key, frozen := range b.entries {
		if len(byKey[key]) < frozen {
			stale = append(stale, key)
		}
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].Pos < regressions[j].Pos })
	sort.Slice(stale, func(i, j int) bool {
		a, c := stale[i], stale[j]
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	return regressions, stale
}

// CheckRatchet enforces the one-way direction: replacing old with next
// must not increase the total finding count.
func CheckRatchet(old, next *Baseline) error {
	if next.Total() > old.Total() {
		return fmt.Errorf("baseline would grow from %d to %d findings: fix or //simlint:ignore the new findings instead of freezing them",
			old.Total(), next.Total())
	}
	return nil
}
