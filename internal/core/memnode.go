package core

import (
	"delrep/internal/cache"
	"delrep/internal/dram"
	"delrep/internal/fifo"
	"delrep/internal/noc"
)

// MemNodeStats aggregates per-memory-node counters.
type MemNodeStats struct {
	Requests      int64
	LLCHits       int64
	LLCMisses     int64
	Writes        int64
	Delegations   int64
	BlockedCycles int64 // cycles the reply injection buffer was full
	RefusedCycles int64 // cycles at least one request was refused
}

// replyTarget is who waits on an outstanding LLC miss.
type replyTarget struct {
	Node int
	CPU  bool
	Born int64
	Acct NetAcct
}

// MemNode is one memory node: an LLC slice whose lines carry a core
// pointer to the GPU core that last accessed them, a GDDR5 memory
// controller, a write-back buffer, and the Delegated Replies engine
// that converts stuck replies into 1-flit delegated requests when the
// reply network clogs.
type MemNode struct {
	sys  *System
	Node int
	Idx  int
	al   *alloc // packet allocator (the owning shard's when sharded)

	llc   *cache.Cache
	mshr  *cache.MSHR
	mc    *dram.Controller
	wbQ   []cache.Addr    // dirty victims awaiting DRAM write
	compQ []*dram.Request // DRAM completions awaiting reply injection

	llcQuota int
	refused  bool

	Stats MemNodeStats
}

const wbQCap = 64

func newMemNode(sys *System, node, idx int) *MemNode {
	return &MemNode{
		sys:  sys,
		Node: node,
		Idx:  idx,
		al:   &sys.al,
		llc: cache.New(cache.Config{
			SizeBytes: sys.Cfg.LLC.SliceBytes,
			Assoc:     sys.Cfg.LLC.Assoc,
			LineBytes: sys.Cfg.LLC.LineBytes,
		}),
		mshr:  cache.NewMSHR(sys.Cfg.LLC.MSHRs),
		mc:    dram.New(sys.Cfg.DRAM),
		wbQ:   make([]cache.Addr, 0, wbQCap),
		compQ: make([]*dram.Request, 0, wbQCap),
	}
}

// BeginCycle resets the per-cycle LLC port budget and samples blocking.
// It is the serial composition of the two begin-of-cycle steps; a
// parallel tick calls them separately because they have different
// sharding constraints (see beginQuota and sampleBlocked).
func (m *MemNode) BeginCycle() {
	m.sampleBlocked()
	m.beginQuota()
}

// beginQuota resets the per-cycle LLC port budget. It touches only the
// node's own state, so a sharded begin phase may run it concurrently.
func (m *MemNode) beginQuota() {
	m.llcQuota = 1
	m.refused = false
}

// sampleBlocked samples reply-injection-buffer blocking (the paper's
// clogging metric). It reads NI occupancy as it stands before the
// network phase, so a parallel tick must run it serially before the
// fused compute dispatch.
func (m *MemNode) sampleBlocked() {
	if m.sys.repNI(m.Node).Full(noc.ClassReply) {
		m.Stats.BlockedCycles++
	}
}

// pointerOf converts an LLC aux value to a node id (-1 when invalid).
func pointerOf(aux uint32) int {
	if aux == 0 {
		return -1
	}
	return int(aux - 1)
}

// auxOf converts a GPU node id to an LLC aux value.
func auxOf(node int) uint32 { return uint32(node + 1) }

// HandlePacket consumes a request; returning false back-pressures the
// NoC (the memory node is blocked).
func (m *MemNode) HandlePacket(p *noc.Packet) bool {
	msg := p.Payload.(*Msg)
	msg.absorbPacket(p)
	switch msg.Type {
	case MsgGPURead, MsgCPURead:
		if m.handleRead(msg) {
			m.al.retire(p)
			return true
		}
		return false
	case MsgGPUWrite:
		if m.handleWrite(msg) {
			m.al.retire(p)
			return true
		}
		return false
	}
	panic("core: unexpected message at memory node: " + msg.Type.String())
}

func (m *MemNode) handleRead(msg *Msg) bool {
	if m.llcQuota <= 0 {
		m.refuse()
		return false
	}
	isCPU := msg.Type == MsgCPURead
	repNI := m.sys.repNI(m.Node)
	if hit, aux, way := m.llc.Probe(msg.Line); hit {
		// An LLC hit needs injection-buffer space for its reply; a full
		// buffer blocks the memory node (the clogging mechanism).
		if !repNI.CanInject(noc.ClassReply) {
			m.refuse()
			return false
		}
		m.llcQuota--
		m.Stats.Requests++
		m.Stats.LLCHits++
		m.llc.CommitHit(way)
		kind := ReplyLLCHit
		if msg.DNF {
			kind = ReplyRemoteMiss
		}
		sharer := pointerOf(aux)
		if !isCPU {
			m.llc.SetAux(msg.Line, auxOf(msg.Requester))
		}
		m.injectReply(msg.Line, msg.Requester, isCPU, kind, sharer, msg.DNF, msg.Born, msg.Acct)
		return true
	}
	// LLC miss: allocate an MSHR and go to DRAM.
	if _, out := m.mshr.Lookup(msg.Line); out {
		m.llcQuota--
		m.Stats.Requests++
		m.Stats.LLCMisses++
		m.llc.RecordMiss()
		m.mshr.Merge(msg.Line, replyTarget{Node: msg.Requester, CPU: isCPU, Born: msg.Born, Acct: msg.Acct})
		return true
	}
	if m.mshr.FullNow() || !m.mc.CanAccept() || len(m.wbQ) >= wbQCap {
		m.refuse()
		return false
	}
	m.llcQuota--
	m.Stats.Requests++
	m.Stats.LLCMisses++
	m.llc.RecordMiss()
	m.mshr.Allocate(msg.Line, replyTarget{Node: msg.Requester, CPU: isCPU, Born: msg.Born, Acct: msg.Acct})
	m.mc.Enqueue(&dram.Request{Line: msg.Line, Arrived: m.sys.cycle})
	return true
}

// handleWrite applies a write-through store: update the LLC copy if
// present (invalidating its core pointer so stale remote copies are
// never delegated to), otherwise write to DRAM; then acknowledge.
func (m *MemNode) handleWrite(msg *Msg) bool {
	if m.llcQuota <= 0 {
		m.refuse()
		return false
	}
	repNI := m.sys.repNI(m.Node)
	if !repNI.CanInject(noc.ClassReply) {
		m.refuse()
		return false
	}
	if hit, _, way := m.llc.Probe(msg.Line); hit {
		m.llc.CommitHit(way)
		m.llc.Insert(msg.Line, 0, true) // update in place, pointer invalidated
	} else {
		if !m.mc.CanAccept() {
			m.refuse()
			return false
		}
		m.llc.RecordMiss()
		m.mc.Enqueue(&dram.Request{Line: msg.Line, Write: true, Arrived: m.sys.cycle})
	}
	m.llcQuota--
	m.Stats.Requests++
	m.Stats.Writes++
	ack := m.sys.newPacketOn(m.al, m.Node, msg.Requester, noc.ClassReply, noc.PrioGPU, 1,
		m.al.msgOf(Msg{Type: MsgWriteAck, Line: msg.Line, Requester: msg.Requester, Acct: msg.Acct}))
	ack.ReadyAt = m.sys.cycle + int64(m.sys.Cfg.LLC.Latency)
	repNI.Inject(ack)
	return true
}

func (m *MemNode) refuse() {
	if !m.refused {
		m.refused = true
		m.Stats.RefusedCycles++
	}
}

// injectReply builds and queues a data reply. Callers verified space.
func (m *MemNode) injectReply(line cache.Addr, dst int, isCPU bool, kind ReplyKind, sharer int, dnf bool, born int64, acct NetAcct) {
	flits := m.sys.gpuReplyFlits
	prio := noc.PrioGPU
	if isCPU {
		flits = m.sys.cpuReplyFlits
		prio = noc.PrioCPU
	}
	msg := m.al.msgOf(Msg{Type: MsgReply, Line: line, Requester: dst, Kind: kind, Sharer: sharer, DNF: dnf, Born: born, Acct: acct})
	p := m.sys.newPacketOn(m.al, m.Node, dst, noc.ClassReply, prio, flits, msg)
	p.ReadyAt = m.sys.cycle + int64(m.sys.Cfg.LLC.Latency)
	m.sys.repNI(m.Node).Inject(p)
}

// Tick advances DRAM, drains completions and write-backs, and runs the
// delegation engine.
func (m *MemNode) Tick() {
	// DRAM completions fill the LLC and produce replies. The controller
	// keys every decision off absolute cycle numbers, so ticking it only
	// while requests are outstanding is behaviour-preserving.
	if m.mc.Outstanding() > 0 {
		for _, r := range m.mc.Tick(m.sys.cycle) {
			if r.Write {
				continue
			}
			m.compQ = append(m.compQ, r)
		}
	}
	if len(m.compQ) > 0 {
		m.drainCompletions()
	}
	if len(m.wbQ) > 0 {
		m.drainWriteBacks()
	}
	if m.sys.isDelegated() {
		m.delegate()
	}
}

// drainCompletions turns DRAM fills into replies as injection space
// allows. Fills insert into the LLC with the pointer set to the last
// GPU requester (allocate-on-miss).
func (m *MemNode) drainCompletions() {
	repNI := m.sys.repNI(m.Node)
	for len(m.compQ) > 0 {
		r := m.compQ[0]
		entry, ok := m.mshr.Lookup(r.Line)
		if !ok {
			m.compQ, _ = fifo.PopFront(m.compQ)
			continue // duplicate completion; nothing outstanding
		}
		if repNI.InjCap(noc.ClassReply)-repNI.InjLen(noc.ClassReply) < len(entry.Targets) {
			return // not enough injection space for all merged replies
		}
		if len(m.wbQ) >= wbQCap {
			return
		}
		aux := uint32(0)
		for _, t := range entry.Targets {
			if tgt := t.(replyTarget); !tgt.CPU {
				aux = auxOf(tgt.Node)
			}
		}
		if victim, dirty, evicted := m.llc.Insert(r.Line, aux, false); evicted && dirty {
			m.wbQ = append(m.wbQ, victim)
		}
		for _, t := range m.mshr.Release(r.Line) {
			tgt := t.(replyTarget)
			m.injectReply(r.Line, tgt.Node, tgt.CPU, ReplyDRAM, -1, false, tgt.Born, tgt.Acct)
		}
		m.compQ, _ = fifo.PopFront(m.compQ)
	}
}

func (m *MemNode) drainWriteBacks() {
	for len(m.wbQ) > 0 && m.mc.CanAccept() {
		m.mc.Enqueue(&dram.Request{Line: m.wbQ[0], Write: true, Arrived: m.sys.cycle})
		m.wbQ, _ = fifo.PopFront(m.wbQ)
	}
}

// delegate converts stuck delegatable replies in the injection buffer
// into 1-flit delegated requests on the (under-utilized) request
// network, sent to the core pointer captured when the reply was built.
// Delegation triggers only when the reply network cannot accept traffic
// (buffer full or head stalled), matching the paper's policy of not
// exposing cores to delegation latency needlessly.
func (m *MemNode) delegate() {
	repNI := m.sys.repNI(m.Node)
	if !m.sys.Cfg.DelRep.AlwaysDelegate &&
		!repNI.Blocked(noc.ClassReply) && !repNI.Full(noc.ClassReply) {
		return
	}
	reqNI := m.sys.reqNI(m.Node)
	budget := m.sys.Cfg.DelRep.MaxDelegationsPerCycle
	start := 0
	if repNI.HeadInProgress(noc.ClassReply) {
		start = 1
	}
	q := repNI.PeekQueue(noc.ClassReply)
	for i := start; i < len(q) && budget > 0; i++ {
		msg, ok := q[i].Payload.(*Msg)
		if !ok || !m.delegatable(msg) {
			continue
		}
		if !reqNI.CanInject(noc.ClassRequest) {
			return
		}
		stuck := repNI.RemoveQueued(noc.ClassReply, i)
		q = repNI.PeekQueue(noc.ClassReply)
		i--
		acct := msg.Acct
		wStart := stuck.Enqueued
		if stuck.ReadyAt > wStart {
			wStart = stuck.ReadyAt
		}
		if w := m.sys.cycle - wStart; w > 0 {
			acct.DelegWait += w
		}
		acct.Delegs++
		d := m.sys.newPacketOn(m.al, m.Node, msg.Sharer, noc.ClassRequest, noc.PrioRemote, 1,
			m.al.msgOf(Msg{Type: MsgDelegated, Line: msg.Line, Requester: msg.Requester, Sharer: msg.Sharer, Born: msg.Born, Acct: acct}))
		m.sys.noteDelegated(stuck, d)
		reqNI.Inject(d)
		// The stuck reply was consumed by the delegation (the observer
		// copied its trace); it dies here.
		m.al.retire(stuck)
		m.Stats.Delegations++
		budget--
	}
}

// delegatable implements the paper's test: a GPU read reply served by
// an LLC hit, whose pointer names a valid core other than the
// requester, and which is not a DNF re-reply (never re-forward).
func (m *MemNode) delegatable(msg *Msg) bool {
	return msg.Type == MsgReply &&
		msg.Kind == ReplyLLCHit &&
		!msg.DNF &&
		msg.Sharer >= 0 &&
		msg.Sharer != msg.Requester
}

// FlushPointers invalidates every core pointer in the slice (used when
// GPU L1s are flushed at kernel boundaries).
func (m *MemNode) FlushPointers() { m.llc.ClearAux() }

// ResetStats zeroes the measurement counters (end of warmup).
func (m *MemNode) ResetStats() {
	m.Stats = MemNodeStats{}
	m.llc.ResetStats()
	m.mc.ResetStats()
}
