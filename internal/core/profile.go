package core

import (
	"fmt"
	"strings"
	"time"
)

// PhaseProfile accumulates per-phase wall time across a run: the
// Amdahl breakdown of the system tick. Attach one with
// SetPhaseProfile before running; Run then dispatches to an
// instrumented orchestrator that executes the identical tick sequence
// with a timestamp between phases.
//
// The instrumented orchestrators live here, outside the Tick call
// graph, deliberately: wall-clock reads are banned from per-cycle
// entry points (simlint's tickpurity analyzer), and profiling is a
// measurement harness around the tick phases, not part of them.
// Profiling never touches simulated state, so profiled runs stay
// bit-identical to unprofiled ones.
type PhaseProfile struct {
	Cycles int64

	// Parallelizable phases.
	NetCompute  time.Duration // network tile compute (phase-1 dispatch)
	NodeCompute time.Duration // node shard ticks (phase-2 dispatch)

	// Serial phases (the Amdahl floor).
	Begin      time.Duration // blocking samples + budget resets
	NetCommit  time.Duration // stats folds + packet ejection
	NodeCommit time.Duration // shard delta folds
	Serial     time.Duration // end-of-cycle residue (flush, observer)
}

// Total returns the wall time across all phases.
func (p *PhaseProfile) Total() time.Duration {
	return p.Begin + p.NetCompute + p.NetCommit + p.NodeCompute + p.NodeCommit + p.Serial
}

// SerialFraction returns the fraction of wall time spent in the
// serial phases — the Amdahl limit on further worker scaling.
func (p *PhaseProfile) SerialFraction() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.Begin+p.NetCommit+p.NodeCommit+p.Serial) / float64(t)
}

// String renders the breakdown as a small table.
func (p *PhaseProfile) String() string {
	t := p.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "phase breakdown over %d cycles (total %v):\n", p.Cycles, t.Round(time.Millisecond))
	row := func(name string, d time.Duration, parallel bool) {
		pct := 0.0
		if t > 0 {
			pct = 100 * float64(d) / float64(t)
		}
		kind := "serial"
		if parallel {
			kind = "parallel"
		}
		fmt.Fprintf(&b, "  %-12s %8s  %5.1f%%  (%s)\n", name, d.Round(time.Microsecond), pct, kind)
	}
	row("begin", p.Begin, false)
	row("net-compute", p.NetCompute, true)
	row("net-commit", p.NetCommit, false)
	row("node-compute", p.NodeCompute, true)
	row("node-commit", p.NodeCommit, false)
	row("residue", p.Serial, false)
	fmt.Fprintf(&b, "  serial fraction: %.1f%%\n", 100*p.SerialFraction())
	return b.String()
}

// SetPhaseProfile attaches (or, with nil, detaches) a phase profile.
// May be called at any tick boundary.
func (s *System) SetPhaseProfile(p *PhaseProfile) { s.prof = p }

// stamp is the profiler's clock read. All wall-clock access in this
// package funnels through here: the timestamps only ever feed the
// PhaseProfile buckets, never simulated state.
func stamp() time.Time {
	//simlint:ignore rngsource profiler wall-clock timestamps never reach the simulation or its digests
	return time.Now()
}

// runProfiled advances n cycles with per-phase timing.
func (s *System) runProfiled(n int64) {
	for i := int64(0); i < n; i++ {
		if s.parallel > 1 {
			s.profiledParallelStep()
		} else {
			s.profiledSerialStep()
		}
	}
}

// profiledSerialStep is the serial Tick with a timestamp between
// phases. In serial mode the whole network and node phases count as
// compute: there is no separate commit to attribute.
func (s *System) profiledSerialStep() {
	p := s.prof
	p.Cycles++
	t0 := stamp()
	s.cycle++
	s.beginSerial()
	t1 := stamp()
	p.Begin += t1.Sub(t0)
	s.netSerial()
	t2 := stamp()
	p.NetCompute += t2.Sub(t1)
	s.nodeSerial()
	t3 := stamp()
	p.NodeCompute += t3.Sub(t2)
	s.endCycle()
	p.Serial += stamp().Sub(t3)
}

// profiledParallelStep is tickParallel with a timestamp between
// phases. The dispatch cost of a fused phase is attributed to that
// phase's compute bucket (it is what a worker-count scan amortizes).
func (s *System) profiledParallelStep() {
	p := s.prof
	p.Cycles++
	t0 := stamp()
	s.cycle++
	for _, m := range s.Mems {
		m.sampleBlocked()
	}
	if s.phase1Fn == nil || len(s.shards) == 0 {
		for _, m := range s.Mems {
			m.beginQuota()
		}
		for _, g := range s.GPUs {
			g.BeginCycle()
		}
	}
	t1 := stamp()
	p.Begin += t1.Sub(t0)
	if s.phase1Fn != nil {
		s.ReqNet.BeginTickParallel(false)
		if s.RepNet != s.ReqNet {
			s.RepNet.BeginTickParallel(true)
		}
		s.pool.Run(s.phase1Fn)
		t2 := stamp()
		p.NetCompute += t2.Sub(t1)
		s.ReqNet.CommitTick()
		if s.RepNet != s.ReqNet {
			s.RepNet.ReleaseEnq()
			s.RepNet.CommitTick()
		}
		t1 = stamp()
		p.NetCommit += t1.Sub(t2)
	} else {
		s.netSerial()
		t2 := stamp()
		p.NetCompute += t2.Sub(t1)
		t1 = t2
	}
	if len(s.shards) > 0 {
		s.pool.Run(s.phase2Fn)
		t2 := stamp()
		p.NodeCompute += t2.Sub(t1)
		s.commitShards()
		t1 = stamp()
		p.NodeCommit += t1.Sub(t2)
	} else {
		s.nodeSerial()
		t2 := stamp()
		p.NodeCompute += t2.Sub(t1)
		t1 = t2
	}
	s.endCycle()
	p.Serial += stamp().Sub(t1)
}
