package core

import (
	"testing"

	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/noc"
)

func TestAlwaysDelegateDelegatesMore(t *testing.T) {
	// Under heavy clogging the blocked-only trigger fires nearly every
	// cycle, so the policies converge; the ablation is visible when the
	// injection buffer is generous and blocking is rare.
	cfg := shortCfg(config.SchemeDelegatedReplies)
	cfg.NoC.InjectionBuf = 64
	paper := runShort(t, cfg, "SC", "bodytrack")
	cfg.DelRep.AlwaysDelegate = true
	always := runShort(t, cfg, "SC", "bodytrack")
	if always.Delegations <= paper.Delegations {
		t.Fatalf("always-delegate issued %d delegations vs blocked-only %d",
			always.Delegations, paper.Delegations)
	}
}

func TestDelegationBandwidthKnob(t *testing.T) {
	cfg := shortCfg(config.SchemeDelegatedReplies)
	cfg.DelRep.MaxDelegationsPerCycle = 4
	r := runShort(t, cfg, "HS", "vips")
	if r.Delegations == 0 || r.GPUInsts == 0 {
		t.Fatal("no progress with wider delegation bandwidth")
	}
}

func TestFRQMergeCoalesces(t *testing.T) {
	cfg := shortCfg(config.SchemeDelegatedReplies)
	cfg.DelRep.FRQMerge = true
	sys := NewSystem(cfg, "HS", "vips")
	g := sys.GPUs[0]
	line := cache.Addr(555)
	g.l1.Insert(line, 0, false)
	reqA := sys.GPUs[5].Node
	reqB := sys.GPUs[6].Node
	mem := sys.Mems[0].Node
	// Two delegated replies for the same line: the second must merge
	// rather than occupy an FRQ entry.
	pa := sys.newPacket(mem, g.Node, noc.ClassRequest, noc.PrioRemote, 1,
		&Msg{Type: MsgDelegated, Line: line, Requester: reqA})
	pb := sys.newPacket(mem, g.Node, noc.ClassRequest, noc.PrioRemote, 1,
		&Msg{Type: MsgDelegated, Line: line, Requester: reqB})
	if !g.HandlePacket(pa) || !g.HandlePacket(pb) {
		t.Fatal("delegated replies refused")
	}
	if len(g.frq) != 1 {
		t.Fatalf("FRQ holds %d entries, want 1 (merged)", len(g.frq))
	}
	if g.Stats.FRQSameLine != 1 {
		t.Fatal("same-line event not counted")
	}
	g.BeginCycle()
	g.serveFRQ()
	if g.Stats.FRQRemoteHits != 2 {
		t.Fatalf("served %d remote hits, want 2 (merged requester included)",
			g.Stats.FRQRemoteHits)
	}
	dsts := map[int]bool{}
	for _, p := range g.outRep {
		dsts[p.Dst] = true
	}
	if !dsts[reqA] || !dsts[reqB] {
		t.Fatalf("replies missing a merged requester: %v", dsts)
	}
}

func TestFRQMergeOffKeepsSeparateEntries(t *testing.T) {
	cfg := shortCfg(config.SchemeDelegatedReplies)
	sys := NewSystem(cfg, "HS", "vips")
	g := sys.GPUs[0]
	line := cache.Addr(556)
	mem := sys.Mems[0].Node
	for i, req := range []int{sys.GPUs[5].Node, sys.GPUs[6].Node} {
		p := sys.newPacket(mem, g.Node, noc.ClassRequest, noc.PrioRemote, 1,
			&Msg{Type: MsgDelegated, Line: line, Requester: req})
		if !g.HandlePacket(p) {
			t.Fatalf("entry %d refused", i)
		}
	}
	if len(g.frq) != 2 {
		t.Fatalf("FRQ holds %d entries, want 2 (merging off)", len(g.frq))
	}
}

func TestFRQMergeEndToEnd(t *testing.T) {
	cfg := shortCfg(config.SchemeDelegatedReplies)
	cfg.DelRep.FRQMerge = true
	r := runShort(t, cfg, "HS", "vips")
	if r.GPUInsts == 0 || r.Delegations == 0 {
		t.Fatal("no progress with FRQ merging enabled")
	}
}
