package core

import (
	"testing"

	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/noc"
)

// shortCfg returns a configuration with test-sized windows.
func shortCfg(scheme config.Scheme) config.Config {
	cfg := config.Default()
	cfg.Scheme = scheme
	cfg.WarmupCycles = 2000
	cfg.MeasureCycles = 5000
	return cfg
}

func runShort(t *testing.T, cfg config.Config, gpu, cpu string) Results {
	t.Helper()
	sys := NewSystem(cfg, gpu, cpu)
	return sys.RunWorkload()
}

func TestBaselineMakesProgress(t *testing.T) {
	r := runShort(t, shortCfg(config.SchemeBaseline), "HS", "vips")
	if r.GPUInsts == 0 {
		t.Fatal("no GPU instructions")
	}
	if r.CPUThroughput == 0 {
		t.Fatal("no CPU completions")
	}
	if r.CPULatAvg <= 0 {
		t.Fatal("no CPU latency measured")
	}
	if r.Breakdown.Total() == 0 {
		t.Fatal("no replies classified")
	}
	if r.Breakdown.RemoteHit != 0 || r.Breakdown.RemoteMiss != 0 {
		t.Fatal("baseline must not forward misses")
	}
}

func TestBaselineCloggingExists(t *testing.T) {
	// The paper's premise: GPU traffic clogs the memory nodes' reply
	// side (blocking rates of 72-79% in the paper's setup).
	r := runShort(t, shortCfg(config.SchemeBaseline), "HS", "vips")
	if r.MemBlockedRate < 0.15 {
		t.Fatalf("memory-node blocking rate %.2f: no clogging regime", r.MemBlockedRate)
	}
	if r.LLCHitRate < 0.7 {
		t.Fatalf("LLC hit rate %.2f too low: DRAM-bound, not reply-link-bound", r.LLCHitRate)
	}
}

func TestDelegatedRepliesMechanism(t *testing.T) {
	r := runShort(t, shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	if r.Delegations == 0 {
		t.Fatal("no delegations issued")
	}
	if r.Breakdown.RemoteHit == 0 {
		t.Fatal("no remote hits")
	}
	if r.Breakdown.RemoteMiss == 0 {
		t.Fatal("no remote misses (DNF path unexercised)")
	}
	// Short windows sit in the early transient where stale prewarm
	// pointers produce extra remote misses; steady state reaches ~50%.
	if r.Breakdown.RemoteHitFrac() < 0.2 {
		t.Fatalf("remote hit fraction %.2f too low (paper: 74.4%%)", r.Breakdown.RemoteHitFrac())
	}
}

func TestDelegatedImprovesHSBandwidth(t *testing.T) {
	// Longer windows than the other tests: the CPU-latency comparison
	// needs the clogging steady state.
	cfg := shortCfg(config.SchemeBaseline)
	cfg.WarmupCycles, cfg.MeasureCycles = 8000, 16000
	base := runShort(t, cfg, "HS", "vips")
	cfg.Scheme = config.SchemeDelegatedReplies
	dr := runShort(t, cfg, "HS", "vips")
	if dr.GPURecvRate <= base.GPURecvRate {
		t.Fatalf("DR recv rate %.3f not above baseline %.3f", dr.GPURecvRate, base.GPURecvRate)
	}
	if dr.GPUIPC <= base.GPUIPC {
		t.Fatalf("DR IPC %.2f not above baseline %.2f on HS", dr.GPUIPC, base.GPUIPC)
	}
	if dr.CPULatAvg >= base.CPULatAvg {
		t.Fatalf("DR CPU latency %.1f not below baseline %.1f", dr.CPULatAvg, base.CPULatAvg)
	}
}

func TestRPMechanism(t *testing.T) {
	r := runShort(t, shortCfg(config.SchemeRP), "NN", "blackscholes")
	if r.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	if r.ProbeHits == 0 {
		t.Fatal("no probe hits")
	}
	if r.Breakdown.RemoteHit == 0 {
		t.Fatal("probe hits not reflected in breakdown")
	}
}

func TestDeterminism(t *testing.T) {
	a := runShort(t, shortCfg(config.SchemeDelegatedReplies), "2DCON", "canneal")
	b := runShort(t, shortCfg(config.SchemeDelegatedReplies), "2DCON", "canneal")
	if a.GPUInsts != b.GPUInsts || a.Delegations != b.Delegations ||
		a.ReqFlits != b.ReqFlits || a.CPUThroughput != b.CPUThroughput {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := shortCfg(config.SchemeBaseline)
	a := runShort(t, cfg, "HS", "vips")
	cfg.Seed = 99
	b := runShort(t, cfg, "HS", "vips")
	if a.GPUInsts == b.GPUInsts && a.ReqFlits == b.ReqFlits {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestLivenessMatrix runs every scheme on every layout, topology, and
// L1 organisation and requires forward progress (deadlock freedom).
func TestLivenessMatrix(t *testing.T) {
	schemes := []config.Scheme{config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies}
	t.Run("layouts", func(t *testing.T) {
		for _, l := range config.AllLayouts() {
			for _, s := range schemes {
				cfg := shortCfg(s)
				cfg.Layout = l
				cfg.NoC.ReqOrder, cfg.NoC.RepOrder = l.ReqOrder, l.RepOrder
				r := runShort(t, cfg, "SRAD", "ferret")
				if r.GPUInsts == 0 || r.CPUThroughput == 0 {
					t.Errorf("layout %s scheme %v: no progress", l.Name, s)
				}
			}
		}
	})
	t.Run("topologies", func(t *testing.T) {
		for _, topo := range []config.Topology{config.TopoMesh,
			config.TopoFlattenedButterfly, config.TopoDragonfly, config.TopoCrossbar} {
			for _, s := range schemes {
				cfg := shortCfg(s)
				cfg.NoC.Topology = topo
				r := runShort(t, cfg, "MM", "canneal")
				if r.GPUInsts == 0 {
					t.Errorf("topology %v scheme %v: no progress", topo, s)
				}
			}
		}
	})
	t.Run("orgs", func(t *testing.T) {
		for _, org := range []config.L1Org{config.L1DCL1, config.L1DynEB} {
			for _, sched := range []config.CTASched{config.CTARoundRobin, config.CTADistributed} {
				cfg := shortCfg(config.SchemeDelegatedReplies)
				cfg.GPU.Org = org
				cfg.GPU.CTASched = sched
				r := runShort(t, cfg, "SC", "bodytrack")
				if r.GPUInsts == 0 {
					t.Errorf("org %v sched %v: no progress", org, sched)
				}
			}
		}
	})
	t.Run("adaptive-routing", func(t *testing.T) {
		for _, alg := range []config.RoutingAlg{config.RoutingDyXY, config.RoutingFootprint, config.RoutingHARE} {
			cfg := shortCfg(config.SchemeBaseline)
			cfg.NoC.Routing = alg
			r := runShort(t, cfg, "LPS", "x264")
			if r.GPUInsts == 0 {
				t.Errorf("routing %v: no progress", alg)
			}
		}
	})
	t.Run("shared-phys", func(t *testing.T) {
		for _, vcs := range [][2]int{{1, 3}, {2, 2}, {1, 1}} {
			cfg := shortCfg(config.SchemeDelegatedReplies)
			cfg.NoC.SharedPhys = true
			cfg.NoC.ChannelBytes *= 2
			cfg.NoC.ReqVCs, cfg.NoC.RepVCs = vcs[0], vcs[1]
			r := runShort(t, cfg, "BT", "dedup")
			if r.GPUInsts == 0 {
				t.Errorf("shared phys %v: no progress", vcs)
			}
		}
	})
	t.Run("scaled-mesh", func(t *testing.T) {
		for _, n := range []int{10, 12} {
			cfg := shortCfg(config.SchemeDelegatedReplies)
			cfg.Layout = config.ScaledBaseline(n, n)
			r := runShort(t, cfg, "HS", "vips")
			if r.GPUInsts == 0 {
				t.Errorf("%dx%d: no progress", n, n)
			}
		}
	})
}

// TestStressTinyResources shrinks MSHRs, FRQs, and buffers to force
// every back-pressure path; the system must keep making progress
// (the Section IV deadlock-avoidance rule).
func TestStressTinyResources(t *testing.T) {
	for _, scheme := range []config.Scheme{config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies} {
		cfg := shortCfg(scheme)
		cfg.GPU.L1MSHRs = 4
		cfg.GPU.FRQEntries = 2
		cfg.GPU.MaxOutWrites = 2
		cfg.NoC.InjectionBuf = 2
		cfg.NoC.FlitsPerVC = 2
		cfg.LLC.MSHRs = 8
		cfg.DRAM.QueueCap = 8
		sys := NewSystem(cfg, "HS", "vips")
		sys.Run(3000)
		first := int64(0)
		for _, g := range sys.GPUs {
			first += g.SM.Insts
		}
		sys.Run(3000)
		second := int64(0)
		for _, g := range sys.GPUs {
			second += g.SM.Insts
		}
		if second <= first {
			t.Errorf("scheme %v: no progress under tiny resources (deadlock?)", scheme)
		}
	}
}

func TestWriteHeavyWorkload(t *testing.T) {
	r := runShort(t, shortCfg(config.SchemeDelegatedReplies), "BP", "blackscholes")
	if r.GPUInsts == 0 {
		t.Fatal("no progress on write-heavy workload")
	}
	// BP should see few delegations (paper: modest benefit, write-heavy).
	hs := runShort(t, shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	if r.Delegations >= hs.Delegations {
		t.Fatalf("BP delegations (%d) should be below HS (%d)", r.Delegations, hs.Delegations)
	}
}

func TestKernelFlush(t *testing.T) {
	cfg := shortCfg(config.SchemeDelegatedReplies)
	cfg.GPU.KernelCycles = 1500
	r := runShort(t, cfg, "HS", "vips")
	if r.GPUInsts == 0 {
		t.Fatal("no progress with kernel flushes")
	}
}

func TestNNLowMissRate(t *testing.T) {
	// Paper: NN's L1 miss rate is 4.3%. The hot set needs a few
	// thousand cycles to become L1-resident.
	cfg := shortCfg(config.SchemeBaseline)
	cfg.WarmupCycles, cfg.MeasureCycles = 8000, 16000
	r := runShort(t, cfg, "NN", "blackscholes")
	if r.L1MissRate > 0.12 {
		t.Fatalf("NN miss rate %.1f%%, want < 12%% (paper 4.3%%)", 100*r.L1MissRate)
	}
	if r.InterCoreLocal < 0.4 {
		t.Fatalf("NN locality %.2f, want high (paper > 0.6)", r.InterCoreLocal)
	}
}

func TestReplyConservation(t *testing.T) {
	// Every classified reply corresponds to a primary L1 miss; the gap
	// is bounded by in-flight state (MSHRs, buffers).
	sys := NewSystem(shortCfg(config.SchemeDelegatedReplies), "2DCON", "dedup")
	sys.RunWorkload()
	var allocs, replies int64
	for _, g := range sys.GPUs {
		allocs += g.mshr.Allocs
		replies += g.Stats.RepliesLLCHit + g.Stats.RepliesDRAM +
			g.Stats.RepliesRemoteHit + g.Stats.RepliesRemoteMiss
	}
	inflight := int64(len(sys.GPUs) * sys.Cfg.GPU.L1MSHRs)
	if replies > allocs+inflight || replies < allocs-inflight {
		t.Fatalf("replies %d vs allocs %d (slack %d): requests lost or duplicated",
			replies, allocs, inflight)
	}
}

func TestPointerInvalidationOnWrite(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	m := sys.Mems[0]
	line := cache.Addr(1 << 30)
	for sys.memNodeFor(line) != m.Node {
		line++
	}
	m.llc.Insert(line, auxOf(sys.GPUs[3].Node), false)
	msg := &Msg{Type: MsgGPUWrite, Line: line, Requester: sys.GPUs[0].Node}
	m.BeginCycle()
	if !m.HandlePacket(&noc.Packet{Payload: msg, Class: noc.ClassRequest}) {
		t.Fatal("write refused by idle memory node")
	}
	if _, aux := m.llc.Peek(line); aux != 0 {
		t.Fatalf("core pointer %d not invalidated by write", aux)
	}
}

func TestDelegatablePredicate(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	m := sys.Mems[0]
	ok := &Msg{Type: MsgReply, Kind: ReplyLLCHit, Sharer: 10, Requester: 20}
	if !m.delegatable(ok) {
		t.Fatal("valid delegation rejected")
	}
	cases := []*Msg{
		{Type: MsgReply, Kind: ReplyLLCHit, Sharer: -1, Requester: 20},            // no pointer
		{Type: MsgReply, Kind: ReplyLLCHit, Sharer: 20, Requester: 20},            // self
		{Type: MsgReply, Kind: ReplyDRAM, Sharer: 10, Requester: 20},              // not an LLC hit
		{Type: MsgReply, Kind: ReplyLLCHit, Sharer: 10, Requester: 20, DNF: true}, // do-not-forward
		{Type: MsgWriteAck, Kind: ReplyLLCHit, Sharer: 10, Requester: 20},         // not a data reply
	}
	for i, c := range cases {
		if m.delegatable(c) {
			t.Errorf("case %d wrongly delegatable: %+v", i, c)
		}
	}
}

func TestPointerTracksLastAccessor(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	m := sys.Mems[0]
	line := cache.Addr(1 << 30)
	for sys.memNodeFor(line) != m.Node {
		line++
	}
	m.llc.Insert(line, 0, false)
	first := sys.GPUs[1].Node
	second := sys.GPUs[2].Node
	m.BeginCycle()
	m.HandlePacket(&noc.Packet{Payload: &Msg{Type: MsgGPURead, Line: line, Requester: first}})
	if _, aux := m.llc.Peek(line); pointerOf(aux) != first {
		t.Fatalf("pointer %d after first read, want %d", pointerOf(aux), first)
	}
	m.BeginCycle()
	m.HandlePacket(&noc.Packet{Payload: &Msg{Type: MsgGPURead, Line: line, Requester: second}})
	if _, aux := m.llc.Peek(line); pointerOf(aux) != second {
		t.Fatalf("pointer %d after second read, want %d", pointerOf(aux), second)
	}
	// The reply for the second read must name the first as sharer.
	q := sys.repNI(m.Node).PeekQueue(noc.ClassReply)
	last := q[len(q)-1].Payload.(*Msg)
	if last.Sharer != first {
		t.Fatalf("reply sharer %d, want %d", last.Sharer, first)
	}
}

func TestCPUReadsPrioritized(t *testing.T) {
	// CPU replies must be CPU-priority packets with 5 flits (64 B).
	sys := NewSystem(shortCfg(config.SchemeBaseline), "HS", "vips")
	m := sys.Mems[0]
	line := cache.Addr(uint64(3 << 30))
	for sys.memNodeFor(line) != m.Node {
		line++
	}
	m.llc.Insert(line, 0, false)
	cpuNode := sys.CPUs[0].Node
	m.BeginCycle()
	m.HandlePacket(&noc.Packet{Payload: &Msg{Type: MsgCPURead, Line: line, Requester: cpuNode}})
	q := sys.repNI(m.Node).PeekQueue(noc.ClassReply)
	p := q[len(q)-1]
	if p.Prio != noc.PrioCPU {
		t.Fatal("CPU reply not CPU priority")
	}
	if p.SizeFlits != sys.cpuReplyFlits || p.SizeFlits != 5 {
		t.Fatalf("CPU reply %d flits, want 5", p.SizeFlits)
	}
	if _, aux := m.llc.Peek(line); aux != 0 {
		t.Fatal("CPU read must not set a core pointer")
	}
}

func TestMemNodeBlocksWhenBufferFull(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeBaseline), "HS", "vips")
	m := sys.Mems[0]
	// Fill the reply injection buffer.
	ni := sys.repNI(m.Node)
	for ni.CanInject(noc.ClassReply) {
		ni.Inject(sys.newPacket(m.Node, sys.GPUs[0].Node, noc.ClassReply, noc.PrioGPU, 9,
			&Msg{Type: MsgReply, Line: 1, Requester: sys.GPUs[0].Node}))
	}
	line := cache.Addr(1 << 30)
	for sys.memNodeFor(line) != m.Node {
		line++
	}
	m.llc.Insert(line, 0, false)
	m.BeginCycle()
	accepted := m.HandlePacket(&noc.Packet{Payload: &Msg{Type: MsgGPURead, Line: line, Requester: sys.GPUs[0].Node}})
	if accepted {
		t.Fatal("memory node accepted an LLC hit with a full reply buffer")
	}
	if m.Stats.RefusedCycles != 1 {
		t.Fatalf("refused cycles = %d", m.Stats.RefusedCycles)
	}
}

func TestFRQBoundedAndRefuses(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	g := sys.GPUs[0]
	for i := 0; i < sys.Cfg.GPU.FRQEntries; i++ {
		p := sys.newPacket(sys.Mems[0].Node, g.Node, noc.ClassRequest, noc.PrioRemote, 1,
			&Msg{Type: MsgDelegated, Line: cache.Addr(i), Requester: sys.GPUs[1].Node})
		if !g.HandlePacket(p) {
			t.Fatalf("FRQ refused entry %d below capacity", i)
		}
	}
	p := sys.newPacket(sys.Mems[0].Node, g.Node, noc.ClassRequest, noc.PrioRemote, 1,
		&Msg{Type: MsgDelegated, Line: 99, Requester: sys.GPUs[1].Node})
	if g.HandlePacket(p) {
		t.Fatal("FRQ accepted past capacity")
	}
}

func TestFRQRemoteMissSendsDNF(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	g := sys.GPUs[0]
	requester := sys.GPUs[5].Node
	line := cache.Addr(12345)
	p := sys.newPacket(sys.Mems[0].Node, g.Node, noc.ClassRequest, noc.PrioRemote, 1,
		&Msg{Type: MsgDelegated, Line: line, Requester: requester})
	g.HandlePacket(p)
	g.BeginCycle()
	g.serveFRQ()
	if len(g.outReq) == 0 {
		t.Fatal("remote miss did not re-send to the LLC")
	}
	m := g.outReq[len(g.outReq)-1].Payload.(*Msg)
	if m.Type != MsgGPURead || !m.DNF || m.Requester != requester {
		t.Fatalf("DNF re-request wrong: %+v", m)
	}
	if g.Stats.FRQRemoteMisses != 1 {
		t.Fatal("remote miss not counted")
	}
}

func TestFRQRemoteHitRepliesDirectly(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeDelegatedReplies), "HS", "vips")
	g := sys.GPUs[0]
	line := cache.Addr(777)
	g.l1.Insert(line, 0, false)
	requester := sys.GPUs[7].Node
	p := sys.newPacket(sys.Mems[0].Node, g.Node, noc.ClassRequest, noc.PrioRemote, 1,
		&Msg{Type: MsgDelegated, Line: line, Requester: requester})
	g.HandlePacket(p)
	g.BeginCycle()
	g.serveFRQ()
	if g.Stats.FRQRemoteHits != 1 {
		t.Fatal("remote hit not served")
	}
	rep := g.outRep[len(g.outRep)-1]
	m := rep.Payload.(*Msg)
	if rep.Dst != requester || m.Kind != ReplyRemoteHit || rep.SizeFlits != sys.gpuReplyFlits {
		t.Fatalf("bad remote-hit reply: dst=%d kind=%v flits=%d", rep.Dst, m.Kind, rep.SizeFlits)
	}
}

func TestPrewarmGivesHighLLCHitRate(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeBaseline), "HS", "vips")
	occ := 0
	capacity := 0
	for _, m := range sys.Mems {
		occ += m.llc.Occupancy()
		capacity += m.llc.Config().Sets() * sys.Cfg.LLC.Assoc
	}
	if occ < capacity/3 {
		t.Fatalf("prewarm filled only %d/%d LLC lines", occ, capacity)
	}
}

func TestValidateRejectsViaNewSystemPanic(t *testing.T) {
	cfg := shortCfg(config.SchemeBaseline)
	cfg.NoC.ChannelBytes = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewSystem(cfg, "HS", "vips")
}

func TestMeshLinkUtil(t *testing.T) {
	sys := NewSystem(shortCfg(config.SchemeBaseline), "HS", "vips")
	sys.RunWorkload()
	grid := sys.MeshLinkUtil(true, noc.PortE)
	if len(grid) != 8 || len(grid[0]) != 8 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	// The memory column's east reply links must be among the busiest.
	memEast := grid[3][2]
	if memEast <= 0 {
		t.Fatal("memory-node east reply link shows no traffic")
	}
	for y := 0; y < 8; y++ {
		if grid[y][7] > memEast*2 {
			t.Fatalf("edge link busier than the memory column: %v vs %v", grid[y][7], memEast)
		}
	}
	// Non-mesh topologies return nil.
	cfg := shortCfg(config.SchemeBaseline)
	cfg.NoC.Topology = config.TopoCrossbar
	xbar := NewSystem(cfg, "HS", "vips")
	if xbar.MeshLinkUtil(true, noc.PortE) != nil {
		t.Fatal("crossbar returned a mesh grid")
	}
}
