package core

import (
	"context"
	"errors"
	"testing"

	"delrep/internal/config"
)

func ctlCfg() config.Config {
	cfg := config.Default()
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 800
	return cfg
}

// A controlled run chunked into small windows must be bit-identical to
// the uncontrolled run: the checkpoints sit between ticks and must not
// perturb the simulated state.
func TestRunWorkloadCtxDigestIdentical(t *testing.T) {
	cfg := ctlCfg()

	ref := RunAudit(cfg, "HS", "vips")

	sys := NewSystem(cfg, "HS", "vips")
	var checkpoints int
	res, err := sys.RunWorkloadCtx(RunControl{
		Ctx:    context.Background(),
		Window: 64,
		OnProgress: func(done, total int64) {
			checkpoints++
			if want := cfg.WarmupCycles + cfg.MeasureCycles; total != want {
				t.Fatalf("progress total = %d, want %d", total, want)
			}
			if done > cfg.WarmupCycles+cfg.MeasureCycles {
				t.Fatalf("progress done = %d beyond the run", done)
			}
		},
	})
	if err != nil {
		t.Fatalf("controlled run failed: %v", err)
	}
	if checkpoints == 0 {
		t.Fatal("OnProgress never called")
	}
	if got := sys.StatsDigest(); got != ref.Digest {
		t.Fatalf("controlled digest %016x != uncontrolled %016x", got, ref.Digest)
	}
	if res != ref.Results {
		t.Fatalf("controlled results differ from uncontrolled run")
	}
}

// Cancellation is observed at the next window boundary and aborts the
// run with the context's error.
func TestRunWorkloadCtxCancel(t *testing.T) {
	cfg := ctlCfg()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	sys := NewSystem(cfg, "HS", "vips")
	_, err := sys.RunWorkloadCtx(RunControl{Ctx: ctx, Window: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := sys.Cycle(); c != 64 {
		t.Fatalf("cancelled after %d cycles, want exactly one 64-cycle window", c)
	}
}

func TestRunAuditCtrlCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAuditCtrl(RunControl{Ctx: ctx}, ctlCfg(), "HS", "vips")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
