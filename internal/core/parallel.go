package core

import "delrep/internal/noc"

// SetParallel configures deterministic intra-run parallelism: both
// networks are tile-partitioned across a persistent worker pool of up
// to `workers` workers (capped at the router count — a crossbar run
// stays serial). Results and StatsDigest are bit-identical to serial
// execution at every worker count; see internal/noc/tile.go and
// DESIGN.md §11 for the argument.
//
// It must be called after NewSystem and before the first Tick.
// workers <= 1 (or a no-op partition) restores serial ticking. An
// attached observer forces serial execution: its trace hooks read
// packets inside what would be the concurrent compute phase, and
// since parallelism never changes results, dropping to serial is
// observable only in wall time.
//
// A System with parallelism configured owns n-1 worker goroutines;
// call Close when done with it.
func (s *System) SetParallel(workers int) {
	if s.cycle != 0 {
		panic("core: SetParallel after the first tick")
	}
	if s.obs != nil {
		workers = 1
	}
	eff := workers
	if r := len(s.ReqNet.Routers); eff > r {
		eff = r
	}
	s.Close()
	s.parallel = 1
	if eff <= 1 {
		s.ReqNet.SetParallel(nil, 1)
		if s.RepNet != s.ReqNet {
			s.RepNet.SetParallel(nil, 1)
		}
		return
	}
	s.netPool = noc.NewPool(eff)
	s.parallel = eff
	s.ReqNet.SetParallel(s.netPool, eff)
	if s.RepNet != s.ReqNet {
		s.RepNet.SetParallel(s.netPool, eff)
	}
}

// Parallel returns the effective worker count (1 when serial).
func (s *System) Parallel() int {
	if s.parallel < 1 {
		return 1
	}
	return s.parallel
}

// Close releases the tile worker pool, if any. Idempotent; a serial
// System never needs it.
func (s *System) Close() {
	if s.netPool != nil {
		s.netPool.Close()
		s.netPool = nil
	}
}
