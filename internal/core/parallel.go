package core

import "delrep/internal/par"

// SetParallel configures deterministic intra-run parallelism: both
// networks are tile-partitioned (capped at the router count) and the
// node phase is sharded (capped by the legal shard count, see
// shard.go) across one persistent worker pool of up to `workers`
// workers. The cap is the larger of the two, so a crossbar run — one
// router, nothing to tile — still parallelizes its node phase.
// Results and StatsDigest are bit-identical to serial execution at
// every worker count; see internal/noc/tile.go, shard.go, and
// DESIGN.md §11–§12 for the argument.
//
// It must be called after NewSystem and before the first Tick.
// workers <= 1 (or a system nothing in which can be partitioned)
// restores serial ticking. An attached observer forces serial
// execution: its trace hooks read packets inside what would be the
// concurrent compute phase, and since parallelism never changes
// results, dropping to serial is observable only in wall time.
//
// Callers can read the engine-effective worker count back with
// Parallel(); requests are clamped silently so that one binary can ask
// for "8 workers" across every topology, but surfacing the clamp is
// the caller's job (the runner records it in AuditRun.Workers).
//
// A System with parallelism configured owns n-1 worker goroutines;
// call Close when done with it.
func (s *System) SetParallel(workers int) {
	if s.cycle != 0 {
		panic("core: SetParallel after the first tick")
	}
	if s.obs != nil {
		workers = 1
	}
	maxShards := s.maxNodeShards()
	eff := workers
	if lim := max(len(s.ReqNet.Routers), maxShards); eff > lim {
		eff = lim
	}
	// Tear down any previous configuration.
	s.Close()
	s.parallel = 1
	s.phase1Fn, s.phase2Fn = nil, nil
	s.teardownShards()
	s.ReqNet.SetParallel(nil, 1)
	if s.RepNet != s.ReqNet {
		s.RepNet.SetParallel(nil, 1)
	}
	if eff <= 1 {
		return
	}
	s.pool = par.NewPool(eff)
	s.parallel = eff
	if nt := min(eff, len(s.ReqNet.Routers)); nt > 1 {
		s.ReqNet.SetParallel(s.pool, nt)
		if s.RepNet != s.ReqNet {
			s.RepNet.SetParallel(s.pool, nt)
		}
		s.phase1Fn = s.phase1
	}
	if k := min(eff, maxShards); k > 1 {
		s.buildShards(k)
		s.phase2Fn = s.phase2
	}
}

// Parallel returns the engine-effective worker count (1 when serial).
func (s *System) Parallel() int {
	if s.parallel < 1 {
		return 1
	}
	return s.parallel
}

// Close releases the worker pool, if any. Idempotent; a serial System
// never needs it.
func (s *System) Close() {
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
}

// tickParallel is the fused parallel cycle: at most two pool
// dispatches regardless of how many structures are partitioned.
//
//	serial   pre-step: memory blocking samples (read NI state pre-net)
//	         begin-of-cycle budget resets, unless the shards carry them
//	phase 1  both networks' tile compute phases + the shard begin phase
//	serial   network commits (stats folds, packet ejection in node order)
//	phase 2  shard node ticks (mems -> clusters -> gpus -> cpus)
//	serial   locality-delta folds, kernel flush, observer
//
// Equivalence with the serial order rests on two arguments beyond the
// per-network one in noc/tile.go:
//
//   - Fusing the two networks' compute phases is safe because they
//     share no state: a request-ejection handler (which runs later, in
//     the serial commit) is the only code that touches both networks
//     in one cycle. Its injections into the reply network land as tail
//     appends with ReadyAt >= cycle+LLC.Latency (>= 1), which the
//     already-finished reply compute phase could never have observed:
//     headReady rejects future ReadyAt, and tail appends cannot change
//     any head streaming decision already taken.
//   - The Enqueued stamp a serial run gives those injections is the
//     reply network's pre-tick clock. The fused tick pre-advances both
//     clocks, so the reply network's injection stamp (noc's enqNow) is
//     held at the previous cycle until the request network has
//     committed, then released (ReleaseEnq) before the reply commit.
//     With a shared physical network there is only one clock and one
//     tick, exactly as in serial mode, so no hold is needed.
func (s *System) tickParallel() {
	s.cycle++
	for _, m := range s.Mems {
		m.sampleBlocked()
	}
	if s.phase1Fn == nil || len(s.shards) == 0 {
		// The begin phase runs serially whenever the fused dispatch
		// cannot carry it: untiled networks (crossbar) dispatch only
		// the shard phase; an unsharded node phase has no shard begins.
		for _, m := range s.Mems {
			m.beginQuota()
		}
		for _, g := range s.GPUs {
			g.BeginCycle()
		}
	}
	if s.phase1Fn != nil {
		s.ReqNet.BeginTickParallel(false)
		if s.RepNet != s.ReqNet {
			s.RepNet.BeginTickParallel(true)
		}
		s.pool.Run(s.phase1Fn)
		s.ReqNet.CommitTick()
		if s.RepNet != s.ReqNet {
			s.RepNet.ReleaseEnq()
			s.RepNet.CommitTick()
		}
	} else {
		s.netSerial()
	}
	if len(s.shards) > 0 {
		s.pool.Run(s.phase2Fn)
		s.commitShards()
	} else {
		s.nodeSerial()
	}
	s.endCycle()
}

// phase1 is the per-worker body of the fused first dispatch: both
// networks' tile compute sections, then this worker's shard begins.
func (s *System) phase1(worker int) {
	s.ReqNet.ComputeSection(worker)
	if s.RepNet != s.ReqNet {
		s.RepNet.ComputeSection(worker)
	}
	for i := worker; i < len(s.shards); i += s.pool.Size() {
		s.shards[i].begin()
	}
}

// phase2 is the per-worker body of the node dispatch: worker w ticks
// shards w, w+P, w+2P, ...
func (s *System) phase2(worker int) {
	for i := worker; i < len(s.shards); i += s.pool.Size() {
		s.shards[i].tick()
	}
}

// commitShards folds the shard-private locality deltas into the
// canonical counters in fixed shard order.
func (s *System) commitShards() {
	for _, sh := range s.shards {
		s.loc.add(&sh.loc)
		sh.loc = locCounters{}
	}
}
