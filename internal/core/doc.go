// Package core wires the GPU cores, CPU injectors, LLC slices, DRAM
// controllers and the two NoC networks into one cycle-driven System
// and steps them in a fixed intra-cycle order. A System is fully
// deterministic per (Config, workload, seed) — same inputs, same
// StatsDigest — regardless of how it executes: one goroutine owns a
// System for its whole lifetime, parallel experiments run distinct
// Systems (see internal/runner), and SetParallel may additionally
// tile a single System's network tick across a worker pool without
// moving a bit of the digest (see internal/noc/tile.go and DESIGN.md
// §11). RunAudit is the entry point that packages a run's Results
// together with the digest used by the determinism audit and the
// on-disk result cache; RunAuditCtrl adds cancellation and the
// parallelism hint.
package core
