// Package core wires the GPU cores, CPU injectors, LLC slices, DRAM
// controllers and the two NoC networks into one cycle-driven System
// and steps them in a fixed intra-cycle order. A System is fully
// deterministic per (Config, workload, seed) — same inputs, same
// StatsDigest — and is single-threaded by construction: one goroutine
// owns a System for its whole lifetime, and parallel experiments run
// distinct Systems (see internal/runner). RunAudit is the entry point
// that packages a run's Results together with the digest used by the
// determinism audit and the on-disk result cache.
package core
