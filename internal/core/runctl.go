package core

import (
	"context"

	"delrep/internal/config"
)

// CancelCheckWindow is the default number of simulated cycles between
// cooperative cancellation checkpoints. The cycle loop itself stays
// serial and pure (no context plumbing inside Tick); cancellation is
// only observed at window boundaries, so a cancelled run stops within
// one window's worth of simulated work.
const CancelCheckWindow = 4096

// RunControl parameterizes a controlled workload run. The zero value
// runs to completion with no cancellation or progress reporting and is
// exactly equivalent to RunWorkload: the control layer chunks the same
// tick sequence, it never alters it.
type RunControl struct {
	// Ctx, when non-nil, is polled at window boundaries; its error
	// aborts the run.
	Ctx context.Context
	// Window overrides the cycles between checkpoints (default
	// CancelCheckWindow).
	Window int64
	// OnProgress, when non-nil, is called at every checkpoint with the
	// cycles simulated so far and the total cycles of the run
	// (warm-up + measurement). It must not mutate simulation state.
	OnProgress func(done, total int64)
	// Parallel, when > 1, ticks the system across that many workers —
	// network tiles and node shards on one pool (System.SetParallel).
	// Results are bit-identical at any value, so it is an execution
	// hint, not part of the run's identity. Checkpoints sit between
	// ticks either way, so cancellation and progress stay
	// window-aligned.
	Parallel int
}

// RunWorkloadCtx runs the configured warm-up and measurement windows
// like RunWorkload, but in CancelCheckWindow-sized chunks with a
// cooperative cancellation checkpoint between chunks. A cancelled run
// returns the context's error and zero Results; the system is left at
// whatever cycle the last completed window reached. Because the chunk
// boundaries sit strictly between ticks, a completed controlled run is
// bit-identical (same StatsDigest) to an uncontrolled one.
func (s *System) RunWorkloadCtx(rc RunControl) (Results, error) {
	window := rc.Window
	if window <= 0 {
		window = CancelCheckWindow
	}
	total := s.Cfg.WarmupCycles + s.Cfg.MeasureCycles
	run := func(n int64) error {
		for n > 0 {
			step := window
			if step > n {
				step = n
			}
			s.Run(step)
			n -= step
			if rc.OnProgress != nil {
				rc.OnProgress(s.cycle, total)
			}
			if rc.Ctx != nil {
				if err := rc.Ctx.Err(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := run(s.Cfg.WarmupCycles); err != nil {
		return Results{}, err
	}
	s.ResetStats()
	if err := run(s.Cfg.MeasureCycles); err != nil {
		return Results{}, err
	}
	return s.Collect(), nil
}

// RunAuditCtrl builds a system and executes the workload under the
// given control, returning the audit summary (cycle count, end-state
// digest, results). A cancelled run returns the context's error.
func RunAuditCtrl(rc RunControl, cfg config.Config, gpuBench, cpuBench string) (AuditRun, error) {
	sys := NewSystem(cfg, gpuBench, cpuBench)
	if rc.Parallel > 1 {
		sys.SetParallel(rc.Parallel)
		defer sys.Close()
	}
	res, err := sys.RunWorkloadCtx(rc)
	if err != nil {
		return AuditRun{}, err
	}
	return AuditRun{Cycles: sys.Cycle(), Digest: sys.StatsDigest(), Results: res, Workers: sys.Parallel()}, nil
}
