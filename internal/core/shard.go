package core

import (
	"delrep/internal/config"
	"delrep/internal/cpu"
	"delrep/internal/par"
)

// This file implements node-phase sharding: the begin and tick phases
// of the per-node components (memory nodes, clusters, GPU cores, CPU
// cores) are partitioned into contiguous shards ticked concurrently on
// the same worker pool that drives the network tiles.
//
// Race-freedom argument (DESIGN.md §12 is the long form): during the
// node phase every cross-node interaction flows through the networks —
// a node only ever appends to its own NIs' injection queues, and those
// are drained by the next cycle's network phase, after a barrier. The
// only cross-shard reads are the locality probes (probeLocal /
// Cluster.Probe), which are read-only Peeks against cache tags that
// change exclusively at serial commit time (network ejection handlers
// and the serial end-of-cycle flush), never during the node phase.
//
// Two structures would break that argument, so they constrain the
// partition instead:
//
//   - Wavefronts are shared by the cores of one sharing group
//     (GPUProf.ShareGroup consecutive cores), so shard boundaries must
//     fall on group boundaries.
//   - A cluster's shared L1 is read and written by all of its member
//     cores (ClusterCores consecutive cores), so boundaries must also
//     fall on cluster boundaries, and each cluster is ticked by the
//     shard owning its first core.
//   - DynEB's mode controller invalidates member L1 tags mid-phase
//     (setShared), which would race remote locality probes; under
//     DynEB the node phase stays serial entirely (maxNodeShards = 1).
//
// Memory and CPU nodes have no cross-node state and partition freely.
//
// Determinism: each shard ticks its slice in the canonical serial
// order, all orderings inside one cycle that serial execution fixes
// across shard boundaries are either commutative (disjoint state) or
// deferred to the serial commit phases, and the two mutable aggregates
// a shard feeds — the packet allocator and the locality counters — are
// shard-private deltas folded (or digested) in fixed shard order.
// Results and StatsDigest are bit-identical to serial execution at
// every shard count.

// shard owns a contiguous slice of each node population plus the
// shard-private allocator and locality delta its components write
// through while the node phase runs concurrently.
type shard struct {
	sys *System
	id  int

	mems     []*MemNode
	clusters []*Cluster
	gpus     []*GPUCore
	cpus     []*cpu.Core

	al  alloc
	loc locCounters
	_   [64]byte // no false sharing between adjacent shards' deltas
}

// begin runs the shard's slice of the begin phase: per-cycle budget
// resets only (memory blocking is sampled serially before the fused
// dispatch — see MemNode.sampleBlocked).
func (sh *shard) begin() {
	for _, m := range sh.mems {
		m.beginQuota()
	}
	for _, g := range sh.gpus {
		g.BeginCycle()
	}
}

// tick runs the shard's slice of the node phase in the canonical
// serial order: memory nodes, clusters, GPU cores, CPU cores.
func (sh *shard) tick() {
	for _, m := range sh.mems {
		m.Tick()
	}
	for _, c := range sh.clusters {
		c.Tick()
	}
	for _, g := range sh.gpus {
		g.Tick()
	}
	for _, c := range sh.cpus {
		c.Tick()
	}
}

// gpuCutLegal reports whether a shard boundary may fall before GPU
// index i: on a sharing-group boundary, and on a cluster boundary when
// a shared L1 organisation is active.
func (s *System) gpuCutLegal(i int) bool {
	if i%s.GPUProf.ShareGroup != 0 {
		return false
	}
	return len(s.Clusters) == 0 || i%ClusterCores == 0
}

// maxNodeShards returns the largest legal shard count for this
// system's node phase (1 means the node phase cannot be partitioned).
func (s *System) maxNodeShards() int {
	if s.Cfg.GPU.Org == config.L1DynEB {
		return 1 // setShared would race remote locality probes
	}
	max := par.MaxParts(len(s.GPUs), s.gpuCutLegal)
	if n := len(s.Mems); n > max {
		max = n
	}
	if n := len(s.CPUs); n > max {
		max = n
	}
	return max
}

// sliceRange returns part i of a padded Cuts partition: parts beyond
// what the boundary list admits are empty.
func sliceRange(bounds []int, i int) (int, int) {
	if i >= len(bounds)-1 {
		n := bounds[len(bounds)-1]
		return n, n
	}
	return bounds[i], bounds[i+1]
}

// buildShards partitions the node populations into k contiguous shards
// and points every partitioned component at its shard's allocator and
// locality delta. Shard allocators draw from disjoint strided ID
// streams so concurrent creation never touches a shared counter.
func (s *System) buildShards(k int) {
	gpuB := par.Cuts(len(s.GPUs), k, s.gpuCutLegal)
	memB := par.Cuts(len(s.Mems), k, nil)
	cpuB := par.Cuts(len(s.CPUs), k, nil)
	s.shards = make([]*shard, k)
	for i := 0; i < k; i++ {
		sh := &shard{sys: s, id: i}
		sh.al.initIDs(uint64(i+1), uint64(k))
		lo, hi := sliceRange(gpuB, i)
		sh.gpus = s.GPUs[lo:hi]
		for _, g := range sh.gpus {
			g.al = &sh.al
			g.loc = &sh.loc
		}
		// A cluster belongs to the shard owning its first core; legal
		// cuts fall on cluster boundaries, so it lies entirely inside.
		for _, c := range s.Clusters {
			first := c.id * ClusterCores
			if first >= lo && first < hi {
				sh.clusters = append(sh.clusters, c)
			}
		}
		lo, hi = sliceRange(memB, i)
		sh.mems = s.Mems[lo:hi]
		for _, m := range sh.mems {
			m.al = &sh.al
		}
		lo, hi = sliceRange(cpuB, i)
		sh.cpus = s.CPUs[lo:hi]
		for _, c := range sh.cpus {
			s.allocOf[c.Node] = &sh.al
		}
		s.shards[i] = sh
	}
}

// teardownShards restores serial node ticking: every component points
// back at the canonical allocator and locality block.
func (s *System) teardownShards() {
	for _, g := range s.GPUs {
		g.al = &s.al
		g.loc = &s.loc
	}
	for _, m := range s.Mems {
		m.al = &s.al
	}
	for i := range s.allocOf {
		s.allocOf[i] = &s.al
	}
	s.shards = nil
}
