package core

import (
	"strings"
	"testing"

	"delrep/internal/config"
	"delrep/internal/obs"
)

// observedRun runs a workload with a fully enabled observer attached.
func observedRun(cfg config.Config, opts obs.Options) (*System, *obs.Observer) {
	sys := NewSystem(cfg, "2DCON", "dedup")
	o := obs.New(opts)
	sys.AttachObserver(o)
	sys.RunWorkload()
	return sys, o
}

// TestObserverInert is the acceptance check for the observability
// layer: attaching an observer with metrics, tracing, and clog
// detection all enabled must not change a single bit of simulated
// state — cycle counts and the stats digest are identical to a bare
// run of the same configuration.
func TestObserverInert(t *testing.T) {
	cfg := auditConfig(config.SchemeDelegatedReplies, config.TopoMesh)
	bare := RunAudit(cfg, "2DCON", "dedup")

	sys, o := observedRun(cfg, obs.Options{
		Window:      100,
		TraceSample: 4,
		ClogUtil:    0.5,
	})
	if got := sys.Cycle(); got != bare.Cycles {
		t.Fatalf("observer changed cycle count: %d vs %d", got, bare.Cycles)
	}
	if got := sys.StatsDigest(); got != bare.Digest {
		t.Fatalf("observer changed stats digest: %#x vs %#x", got, bare.Digest)
	}
	// The observer must actually have observed something.
	if o.Reg.Samples() == 0 {
		t.Fatal("no metric windows sampled")
	}
	if o.TraceCount() == 0 {
		t.Fatal("no packet traces collected")
	}
}

// TestObserverDeterministic re-runs an observed configuration and
// requires identical observability output, not just identical
// simulated state.
func TestObserverDeterministic(t *testing.T) {
	cfg := auditConfig(config.SchemeDelegatedReplies, config.TopoMesh)
	opts := obs.Options{Window: 100, TraceSample: 4, ClogUtil: 0.5}

	var out [2]string
	for i := range out {
		_, o := observedRun(cfg, opts)
		var b strings.Builder
		if err := o.Reg.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := o.WriteTrace(&b); err != nil {
			t.Fatal(err)
		}
		if err := o.Clog.Narrative(&b); err != nil {
			t.Fatal(err)
		}
		out[i] = b.String()
	}
	if out[0] != out[1] {
		t.Fatal("observability output differs between identical runs")
	}
}

// TestObserverTracesDelegations checks that delegation shows up in the
// trace stream: an aborted (delegated) reply and successor records
// that point back at an origin packet.
func TestObserverTracesDelegations(t *testing.T) {
	cfg := auditConfig(config.SchemeDelegatedReplies, config.TopoMesh)
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 3000
	_, o := observedRun(cfg, obs.Options{TraceSample: 1, MaxTraces: 1 << 16})

	var aborted, derived int
	for _, tr := range o.Traces() {
		if tr.Aborted == "delegated" {
			aborted++
		}
		if tr.Origin != 0 {
			derived++
		}
	}
	if aborted == 0 {
		t.Fatal("no delegated-reply aborts traced (delegation never fired?)")
	}
	if derived == 0 {
		t.Fatal("no successor traces inherited an origin packet")
	}
}

// TestLoadBreakConsistency checks the latency-attribution arithmetic:
// the breakdown components must sum back to the measured end-to-end
// average, and every component must be non-negative.
func TestLoadBreakConsistency(t *testing.T) {
	cfg := shortCfg(config.SchemeDelegatedReplies)
	sys := NewSystem(cfg, "2DCON", "dedup")
	r := sys.RunWorkload()
	lb := r.LoadBreak
	if lb.Count == 0 {
		t.Fatal("no loads attributed")
	}
	sum := lb.QueueAvg + lb.XferAvg + lb.SerAvg + lb.DelegWaitAvg + lb.ServiceAvg
	if diff := sum - lb.TotalAvg; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("breakdown does not sum to total: %v vs %v", sum, lb.TotalAvg)
	}
	for name, v := range map[string]float64{
		"queue": lb.QueueAvg, "xfer": lb.XferAvg, "ser": lb.SerAvg,
		"delegWait": lb.DelegWaitAvg, "service": lb.ServiceAvg,
	} {
		if v < 0 {
			t.Fatalf("negative %s component: %v", name, v)
		}
	}
	if lb.LegsAvg < 2 {
		t.Fatalf("LegsAvg = %v; every load crosses the network at least twice", lb.LegsAvg)
	}
	if lb.HopsAvg <= 0 {
		t.Fatalf("HopsAvg = %v", lb.HopsAvg)
	}
	// Per-kind rows must aggregate to the overall row.
	var n int64
	for _, k := range r.LoadBreakByKind {
		n += k.Count
	}
	if n != lb.Count {
		t.Fatalf("per-kind counts sum to %d, overall %d", n, lb.Count)
	}
	// Delegation overhead only exists under the delegated scheme and
	// must be attributed when delegations happened.
	if r.Delegations > 0 && r.LoadBreakByKind[ReplyRemoteHit].DelegFrac == 0 &&
		r.LoadBreakByKind[ReplyRemoteMiss].DelegFrac == 0 {
		t.Fatal("delegations occurred but none were attributed to loads")
	}
}
