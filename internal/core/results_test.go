package core

import (
	"math"
	"testing"

	"delrep/internal/config"
	"delrep/internal/stats"
)

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{LLCDirect: 60, RemoteHit: 30, RemoteMiss: 10}
	if b.Total() != 100 {
		t.Fatalf("total = %d", b.Total())
	}
	if got := b.ForwardedFrac(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("forwarded frac = %v", got)
	}
	if got := b.RemoteHitFrac(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("remote hit frac = %v", got)
	}
	var zero Breakdown
	if zero.ForwardedFrac() != 0 || zero.RemoteHitFrac() != 0 {
		t.Fatal("zero breakdown must not divide by zero")
	}
}

func TestCombineMeans(t *testing.T) {
	var a, b stats.Sampler
	if combineMeans(&a, &b) != 0 {
		t.Fatal("empty samplers must combine to 0")
	}
	a.Add(10)
	a.Add(20)
	b.Add(40)
	if got := combineMeans(&a, &b); math.Abs(got-70.0/3) > 1e-12 {
		t.Fatalf("combined mean = %v, want %v", got, 70.0/3)
	}
	// One-sided combination degenerates to the non-empty mean.
	var empty stats.Sampler
	if got := combineMeans(&a, &empty); got != a.Mean() {
		t.Fatalf("one-sided combine = %v, want %v", got, a.Mean())
	}
}

func TestCollectZeroWindow(t *testing.T) {
	// Collect before any measured cycle must return an all-zero result
	// rather than dividing by a zero window.
	sys := NewSystem(shortCfg(config.SchemeBaseline), "HS", "vips")
	r := sys.Collect()
	if r.Cycles != 0 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
	if r.GPUIPC != 0 || r.MemBlockedRate != 0 || r.CPUThroughput != 0 {
		t.Fatal("zero-window collect produced non-zero rates")
	}
	if r.LoadBreak.Count != 0 {
		t.Fatal("zero-window collect attributed loads")
	}
}

func TestCollectInvariants(t *testing.T) {
	r := runShort(t, shortCfg(config.SchemeDelegatedReplies), "2DCON", "dedup")
	if r.Cycles <= 0 {
		t.Fatal("no cycles measured")
	}
	for name, v := range map[string]float64{
		"L1MissRate":       r.L1MissRate,
		"MemBlockedRate":   r.MemBlockedRate,
		"LLCHitRate":       r.LLCHitRate,
		"MemReplyLinkUtil": r.MemReplyLinkUtil,
		"DRAMBusUtil":      r.DRAMBusUtil,
		"PrimaryMissRate":  r.PrimaryMissRate,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("%s = %v, outside [0,1]", name, v)
		}
	}
	if r.GPUInsts <= 0 || r.GPUIPC <= 0 {
		t.Fatalf("GPU made no progress: insts=%d ipc=%v", r.GPUInsts, r.GPUIPC)
	}
	if r.LoadBreak.Count == 0 {
		t.Fatal("no loads attributed")
	}
	if r.GPULoadLatAvg <= 0 || math.Abs(r.LoadBreak.TotalAvg-r.GPULoadLatAvg) > 1e-6 {
		t.Fatalf("attribution total %v disagrees with load latency %v",
			r.LoadBreak.TotalAvg, r.GPULoadLatAvg)
	}
}
