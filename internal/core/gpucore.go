package core

import (
	"math/rand"

	"delrep/internal/cache"
	"delrep/internal/fifo"
	"delrep/internal/gpu"
	"delrep/internal/noc"
)

// outboxCap bounds per-class pending sends at a core; Access returns
// Blocked when full, back-pressuring the SM.
const outboxCap = 16

// mshrTarget identifies who is waiting on an outstanding L1 miss:
// a local warp (Warp >= 0) or a remote requester node (Remote >= 0,
// a delayed hit being forwarded on fill). For shared-slice misses,
// owner names the core whose warp is waiting (nil means the MSHR's own
// core).
type mshrTarget struct {
	Warp   int
	Remote int
	Born   int64
	Acct   NetAcct
	owner  *GPUCore
}

// probeState tracks an in-flight Realistic Probing episode for a line.
type probeState struct {
	awaiting int  // nacks still expected
	got      bool // a probe hit arrived (or LLC fallback already sent)
}

// GPUCoreStats aggregates per-core counters for the evaluation figures.
type GPUCoreStats struct {
	L1Accesses   int64
	L1ReadMisses int64
	Writes       int64
	// Reply breakdown at the requester (Figure 14).
	RepliesLLCHit     int64
	RepliesDRAM       int64
	RepliesRemoteHit  int64
	RepliesRemoteMiss int64
	// FRQ service at the sharer.
	FRQRemoteHits   int64
	FRQDelayedHits  int64
	FRQRemoteMisses int64
	FRQSameLine     int64 // entries accessing a line already in the FRQ
	// Realistic Probing.
	ProbesSent    int64
	ProbeHits     int64
	ProbeNacks    int64
	ProbeFallback int64
}

// GPUCore is one GPU node: the SM plus its L1 organisation, MSHRs,
// Forwarded Request Queue, outboxes, and (when enabled) the Realistic
// Probing engine. It implements gpu.MemPort.
type GPUCore struct {
	sys  *System
	Node int
	Idx  int // index among GPU cores
	SM   *gpu.SM

	al  *alloc       // packet allocator (the owning shard's when sharded)
	loc *locCounters // locality sample sink (the owning shard's when sharded)

	l1        *cache.Cache
	mshr      *cache.MSHR
	frq       []*noc.Packet
	outWrites int
	budget    int // L1 port budget, reset each cycle

	outReq []*noc.Packet
	outRep []*noc.Packet

	cluster *Cluster // non-nil when a shared L1 organisation is active

	// frqMerged holds same-line delegated replies merged behind a
	// queued FRQ entry (the FRQMerge extension).
	frqMerged map[cache.Addr][]*Msg

	// Realistic Probing state.
	rng          *rand.Rand
	rpEwma       float64
	rpMissCount  int64
	rpPending    map[cache.Addr]*probeState
	probeTargets []int // nearest GPU node ids, by hop distance

	Stats GPUCoreStats
}

func newGPUCore(sys *System, node, idx int) *GPUCore {
	g := &GPUCore{
		sys:  sys,
		Node: node,
		Idx:  idx,
		al:   &sys.al,
		loc:  &sys.loc,
		l1: cache.New(cache.Config{
			SizeBytes: sys.Cfg.GPU.L1Bytes,
			Assoc:     sys.Cfg.GPU.L1Assoc,
			LineBytes: sys.Cfg.GPU.L1LineBytes,
		}),
		mshr:      cache.NewMSHR(sys.Cfg.GPU.L1MSHRs),
		rng:       rand.New(rand.NewSource(sys.Cfg.Seed ^ int64(node)*131 + 17)),
		rpPending: make(map[cache.Addr]*probeState),
		frqMerged: make(map[cache.Addr][]*Msg),
	}
	// Queue backing arrays are preallocated to their capacities; the
	// steady-state tick path pops and appends without reallocating.
	g.outReq = make([]*noc.Packet, 0, outboxCap)
	g.outRep = make([]*noc.Packet, 0, outboxCap)
	g.frq = make([]*noc.Packet, 0, sys.Cfg.GPU.FRQEntries)
	return g
}

// BeginCycle resets per-cycle resource budgets.
func (g *GPUCore) BeginCycle() {
	g.budget = g.sys.Cfg.GPU.IssueWidth
}

// Access implements gpu.MemPort: the SM's path into the L1 organisation.
func (g *GPUCore) Access(sm int, line cache.Addr, write bool, warp int) gpu.AccessResult {
	if g.cluster != nil && g.cluster.Shared() {
		return g.cluster.Access(g, line, write, warp)
	}
	return g.accessPrivate(line, write, warp)
}

func (g *GPUCore) accessPrivate(line cache.Addr, write bool, warp int) gpu.AccessResult {
	if g.budget <= 0 {
		return gpu.AccessBlocked
	}
	if write {
		return g.writeThrough(line)
	}
	if hit, _, way := g.l1.Probe(line); hit {
		g.budget--
		g.Stats.L1Accesses++
		g.l1.CommitHit(way) // record the hit and update LRU
		return gpu.AccessHit
	}
	if _, out := g.mshr.Lookup(line); out {
		g.budget--
		g.Stats.L1Accesses++
		g.Stats.L1ReadMisses++
		g.l1.RecordMiss()
		g.mshr.Merge(line, mshrTarget{Warp: warp, Remote: -1})
		return gpu.AccessMiss
	}
	if g.mshr.FullNow() || len(g.outReq) >= outboxCap {
		return gpu.AccessBlocked
	}
	g.budget--
	g.Stats.L1Accesses++
	g.Stats.L1ReadMisses++
	g.l1.RecordMiss()
	g.sys.sampleLocality(g, line)
	g.mshr.Allocate(line, mshrTarget{Warp: warp, Remote: -1})
	if g.sys.isRP() && g.predictProbe() {
		g.sendProbes(line)
	} else {
		g.sendLLCRead(line, g.Node, false, g.sys.cycle, NetAcct{})
	}
	return gpu.AccessMiss
}

// writeThrough performs a write-through, no-write-allocate store.
func (g *GPUCore) writeThrough(line cache.Addr) gpu.AccessResult {
	if g.outWrites >= g.sys.Cfg.GPU.MaxOutWrites || len(g.outReq) >= outboxCap {
		return gpu.AccessBlocked
	}
	g.budget--
	g.Stats.L1Accesses++
	g.Stats.Writes++
	// The local copy is updated in place (write-through keeps it clean).
	g.outWrites++
	g.send(Msg{Type: MsgGPUWrite, Line: line, Requester: g.Node},
		g.sys.memNodeFor(line), noc.ClassRequest, noc.PrioGPU, g.sys.writeFlits)
	return gpu.AccessHit
}

// sendLLCRead issues a read request to the line's memory node on behalf
// of requester (which differs from g.Node on the DNF remote-miss path).
func (g *GPUCore) sendLLCRead(line cache.Addr, requester int, dnf bool, born int64, acct NetAcct) {
	prio := noc.PrioGPU
	if dnf {
		prio = noc.PrioRemote
	}
	g.send(Msg{Type: MsgGPURead, Line: line, Requester: requester, DNF: dnf, Born: born, Acct: acct},
		g.sys.memNodeFor(line), noc.ClassRequest, prio, 1)
}

// send queues a packet on the class outbox (drained in Tick). The
// message value is materialized through the System free list.
func (g *GPUCore) send(m Msg, dst int, class noc.Class, prio noc.Priority, flits int) {
	p := g.sys.newPacketOn(g.al, g.Node, dst, class, prio, flits, g.al.msgOf(m))
	if class == noc.ClassRequest {
		g.outReq = append(g.outReq, p)
	} else {
		g.outRep = append(g.outRep, p)
	}
}

// reqFree and repFree report remaining outbox capacity.
func (g *GPUCore) reqFree() int { return outboxCap - len(g.outReq) }
func (g *GPUCore) repFree() int { return outboxCap - len(g.outRep) }

// HandlePacket consumes an ejected packet; returning false leaves it
// queued at the NI (back-pressure).
func (g *GPUCore) HandlePacket(p *noc.Packet) bool {
	m := p.Payload.(*Msg)
	m.absorbPacket(p)
	switch m.Type {
	case MsgDelegated:
		for _, q := range g.frq {
			if q.Payload.(*Msg).Line == m.Line {
				g.Stats.FRQSameLine++
				if g.sys.Cfg.DelRep.FRQMerge {
					// Idealized multicast: one L1 access will serve
					// both requesters. frqMerged keeps only the Msg;
					// the carrier packet dies here.
					g.frqMerged[m.Line] = append(g.frqMerged[m.Line], m)
					g.al.freePacket(p)
					return true
				}
				break
			}
		}
		if len(g.frq) >= g.sys.Cfg.GPU.FRQEntries {
			return false
		}
		g.frq = append(g.frq, p)
		return true
	case MsgProbe:
		if g.handleProbe(m) {
			g.al.retire(p)
			return true
		}
		return false
	case MsgProbeNack:
		g.handleProbeNack(m)
		g.al.retire(p)
		return true
	case MsgReply:
		if g.handleReply(m) {
			g.al.retire(p)
			return true
		}
		return false
	case MsgWriteAck:
		g.outWrites--
		g.al.retire(p)
		return true
	}
	panic("core: unexpected message at GPU core: " + m.Type.String())
}

// handleProbe answers an RP probe against the local L1 organisation.
func (g *GPUCore) handleProbe(m *Msg) bool {
	if g.budget <= 0 {
		return false
	}
	g.budget--
	hit := g.probeLocal(m.Line)
	if hit {
		g.send(Msg{Type: MsgReply, Line: m.Line, Requester: m.Requester, Kind: ReplyProbeHit, Born: m.Born, Acct: m.Acct},
			m.Requester, noc.ClassReply, noc.PrioGPU, g.sys.gpuReplyFlits)
	} else {
		g.send(Msg{Type: MsgProbeNack, Line: m.Line, Requester: m.Requester, Born: m.Born, Acct: m.Acct},
			m.Requester, noc.ClassReply, noc.PrioGPU, 1)
	}
	return true
}

// probeLocal checks whether the line is resident locally (private L1 or
// the cluster's shared slices) without disturbing replacement state.
func (g *GPUCore) probeLocal(line cache.Addr) bool {
	if g.cluster != nil && g.cluster.Shared() {
		return g.cluster.Probe(line)
	}
	hit, _ := g.l1.Peek(line)
	return hit
}

// handleProbeNack accounts a probe miss; when every probe missed and no
// data arrived, the miss falls back to the LLC.
func (g *GPUCore) handleProbeNack(m *Msg) bool {
	ps := g.rpPending[m.Line]
	if ps == nil {
		return true // episode already resolved by a data reply
	}
	if !ps.got && ps.awaiting == 1 {
		// The fallback must not block reply-network ejection (protocol
		// deadlock); outboxes accept handler-side pushes unconditionally.
		g.Stats.ProbeFallback++
		g.sendLLCRead(m.Line, g.Node, false, m.Born, m.Acct)
		ps.got = true
		g.updateRP(false) // the whole episode missed: train once
	}
	g.Stats.ProbeNacks++
	ps.awaiting--
	if ps.awaiting <= 0 {
		delete(g.rpPending, m.Line)
	}
	return true
}

// handleReply fills the line and wakes every merged target. Handler-side
// sends (delayed-hit forwards) are pushed unconditionally: refusing a
// reply-network ejection while waiting on other network resources would
// create a protocol deadlock cycle.
func (g *GPUCore) handleReply(m *Msg) bool {
	if g.cluster != nil {
		if handled, done := g.cluster.HandleFill(g, m); handled {
			return done
		}
	}
	if _, ok := g.mshr.Lookup(m.Line); !ok {
		// Duplicate reply (RP can receive several probe hits); drop.
		return true
	}
	if m.Kind == ReplyProbeHit {
		if ps := g.rpPending[m.Line]; ps != nil && !ps.got {
			ps.got = true
			g.updateRP(true) // train once per successful episode
		}
		g.Stats.ProbeHits++
	}
	g.countReply(m.Kind)
	g.sys.recordLoadLat(m.Kind, g.sys.cycle-m.Born)
	g.sys.recordLoadBreak(m.Kind, g.sys.cycle-m.Born, &m.Acct)
	g.fillAndWake(m.Line)
	return true
}

// fillAndWake inserts the line into the L1 and releases the MSHR entry,
// waking local warps and forwarding delayed-hit replies.
func (g *GPUCore) fillAndWake(line cache.Addr) {
	g.l1.Insert(line, 0, false)
	for _, t := range g.mshr.Release(line) {
		tgt := t.(mshrTarget)
		if tgt.Warp >= 0 {
			g.SM.LoadDone(tgt.Warp)
		}
		if tgt.Remote >= 0 {
			g.Stats.FRQDelayedHits++
			g.send(Msg{Type: MsgReply, Line: line, Requester: tgt.Remote, Kind: ReplyRemoteHit, Born: tgt.Born, Acct: tgt.Acct},
				tgt.Remote, noc.ClassReply, noc.PrioGPU, g.sys.gpuReplyFlits)
		}
	}
}

func (g *GPUCore) countReply(k ReplyKind) {
	switch k {
	case ReplyLLCHit:
		g.Stats.RepliesLLCHit++
	case ReplyDRAM:
		g.Stats.RepliesDRAM++
	case ReplyRemoteHit, ReplyProbeHit:
		g.Stats.RepliesRemoteHit++
	case ReplyRemoteMiss:
		g.Stats.RepliesRemoteMiss++
	}
}

// Tick drains the outboxes, serves the FRQ (remote requests have
// priority over local ones: the deadlock-avoidance rule of Section IV),
// and issues SM instructions.
func (g *GPUCore) Tick() {
	g.drainOutbox()
	g.serveFRQ()
	g.SM.Tick()
}

func (g *GPUCore) drainOutbox() {
	reqNI := g.sys.reqNI(g.Node)
	for len(g.outReq) > 0 && reqNI.CanInject(noc.ClassRequest) {
		if !reqNI.Inject(g.outReq[0]) {
			break
		}
		g.outReq, _ = fifo.PopFront(g.outReq)
	}
	repNI := g.sys.repNI(g.Node)
	for len(g.outRep) > 0 && repNI.CanInject(noc.ClassReply) {
		if !repNI.Inject(g.outRep[0]) {
			break
		}
		g.outRep, _ = fifo.PopFront(g.outRep)
	}
}

// serveFRQ processes delegated replies against the local L1: a hit
// sends the line to the requester, a hit on an outstanding miss merges
// into the MSHR (delayed hit), and a miss re-sends the request to the
// LLC with the DNF bit set, without allocating a local MSHR entry.
func (g *GPUCore) serveFRQ() {
	for g.budget > 0 && len(g.frq) > 0 {
		p := g.frq[0]
		m := p.Payload.(*Msg)
		if g.cluster != nil && g.cluster.Shared() {
			if !g.cluster.ServeRemote(g, m) {
				return
			}
			g.budget--
			g.frq, _ = fifo.PopFront(g.frq)
			g.al.retire(p)
			continue
		}
		hit, _ := g.l1.Peek(m.Line)
		switch {
		case hit:
			if g.repFree() < 1 {
				return
			}
			g.Stats.FRQRemoteHits++
			g.send(Msg{Type: MsgReply, Line: m.Line, Requester: m.Requester, Kind: ReplyRemoteHit, Born: m.Born, Acct: m.Acct},
				m.Requester, noc.ClassReply, noc.PrioGPU, g.sys.gpuReplyFlits)
		default:
			if _, out := g.mshr.Lookup(m.Line); out {
				// Delayed hit: forward when the fill returns.
				g.mshr.Merge(m.Line, mshrTarget{Warp: -1, Remote: m.Requester, Born: m.Born, Acct: m.Acct})
			} else {
				// Remote miss: the DNF re-send must not wait on outbox
				// space — stalling the FRQ here wedges the delegated
				// path (FRQ full -> ejection refused -> request network
				// backed up -> memory nodes unable to delegate).
				g.Stats.FRQRemoteMisses++
				g.sendLLCRead(m.Line, m.Requester, true, m.Born, m.Acct)
			}
		}
		g.budget--
		g.serveMerged(m)
		g.frq, _ = fifo.PopFront(g.frq)
		g.al.retire(p)
	}
}

// serveMerged serves the requesters merged behind a consumed FRQ entry
// (FRQMerge extension): the L1 outcome for the line was just computed,
// so each merged requester costs only an extra reply (or DNF re-send).
func (g *GPUCore) serveMerged(head *Msg) {
	extras := g.frqMerged[head.Line]
	if len(extras) == 0 {
		return
	}
	delete(g.frqMerged, head.Line)
	hit, _ := g.l1.Peek(head.Line)
	if g.cluster != nil && g.cluster.Shared() {
		hit = g.cluster.Probe(head.Line)
	}
	for _, m := range extras {
		switch {
		case hit:
			g.Stats.FRQRemoteHits++
			g.send(Msg{Type: MsgReply, Line: m.Line, Requester: m.Requester, Kind: ReplyRemoteHit, Born: m.Born, Acct: m.Acct},
				m.Requester, noc.ClassReply, noc.PrioGPU, g.sys.gpuReplyFlits)
		default:
			if _, out := g.mshr.Lookup(m.Line); out {
				g.mshr.Merge(m.Line, mshrTarget{Warp: -1, Remote: m.Requester, Born: m.Born, Acct: m.Acct})
			} else {
				g.Stats.FRQRemoteMisses++
				g.sendLLCRead(m.Line, m.Requester, true, m.Born, m.Acct)
			}
		}
		g.al.freeMsg(m)
	}
}

// predictProbe decides whether a miss should probe remote L1s (the
// "realistic" predictor of RP [31]): probe when the recent success rate
// clears the threshold, with periodic sampling to keep training.
func (g *GPUCore) predictProbe() bool {
	g.rpMissCount++
	if g.rpMissCount%int64(g.sys.Cfg.RP.SampleEvery) == 0 {
		return true
	}
	return g.rpEwma > g.sys.Cfg.RP.PredThreshold
}

const rpAlpha = 0.05

func (g *GPUCore) updateRP(hit bool) {
	v := 0.0
	if hit {
		v = 1
	}
	g.rpEwma = (1-rpAlpha)*g.rpEwma + rpAlpha*v
}

// sendProbes fans a probe out to the nearest remote L1s; if the outbox
// cannot hold a single probe the miss goes straight to the LLC.
func (g *GPUCore) sendProbes(line cache.Addr) {
	n := g.sys.Cfg.RP.ProbeFanout
	if n > len(g.probeTargets) {
		n = len(g.probeTargets)
	}
	if n == 0 || g.reqFree() < n {
		g.sendLLCRead(line, g.Node, false, g.sys.cycle, NetAcct{})
		return
	}
	g.rpPending[line] = &probeState{awaiting: n}
	for i := 0; i < n; i++ {
		g.Stats.ProbesSent++
		g.send(Msg{Type: MsgProbe, Line: line, Requester: g.Node, Born: g.sys.cycle},
			g.probeTargets[i], noc.ClassRequest, noc.PrioGPU, 1)
	}
}

// FlushL1 invalidates the local L1 (kernel-boundary software coherence).
func (g *GPUCore) FlushL1() { g.l1.InvalidateAll() }

// ResetStats zeroes the measurement counters (end of warmup).
func (g *GPUCore) ResetStats() {
	g.Stats = GPUCoreStats{}
	g.l1.ResetStats()
	g.mshr.ResetStats()
	g.SM.ResetStats()
}
