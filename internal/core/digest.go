package core

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/noc"
	"delrep/internal/stats"
)

// StatsDigest folds the system's observable end-state — cycle and
// packet counters, every per-node stats block, in-flight queue depths,
// and the per-network flit/latency statistics — into one 64-bit value.
// Two runs of the same configuration and seed must produce identical
// digests; any divergence means something nondeterministic (map
// iteration, an unseeded RNG, wall-clock coupling) leaked into the
// simulated state. This is the dynamic counterpart of the invariants
// cmd/simlint checks statically.
func (s *System) StatsDigest() uint64 {
	var d stats.Digest
	d.Int64(s.cycle)
	d.Int64(s.warmed)
	// Total packets created across every allocator. The split of the
	// count across shard allocators (and the IDs they hand out) is an
	// execution detail; the total is a pure function of the simulated
	// protocol and so matches bit-for-bit between serial and parallel
	// runs.
	created := s.al.created
	for _, sh := range s.shards {
		created += sh.al.created
	}
	d.Uint64(created)
	d.Int64(s.loc.samples)
	d.Int64(s.loc.hits)
	d.Int64(s.loc.sharedSamples)
	d.Int64(s.loc.sharedHits)
	for i := range s.loadLat {
		d.Sampler(&s.loadLat[i])
	}
	for _, g := range s.GPUs {
		d.String(fmt.Sprintf("%+v", g.Stats))
		d.Int64(g.SM.Insts)
		d.Int64(g.mshr.Allocs)
		d.Int64(g.mshr.Merges)
		d.Int64(g.mshr.Full)
		d.Int64(int64(g.mshr.Len()))
		d.Int64(g.l1.Accesses)
		d.Int64(g.l1.Hits)
		d.Int64(int64(len(g.frq)))
		d.Int64(int64(len(g.outReq)))
		d.Int64(int64(len(g.outRep)))
		d.Float64(g.rpEwma)
	}
	for _, c := range s.CPUs {
		d.Int64(c.Completed)
		d.Int64(c.Issued)
		d.Int64(c.ThrottleMLP)
		d.Int64(int64(c.Outstanding()))
		d.Sampler(&c.Lat)
	}
	for _, m := range s.Mems {
		d.String(fmt.Sprintf("%+v", m.Stats))
		d.Int64(m.mc.ServedReads)
		d.Int64(m.mc.ServedWrites)
		d.Float64(m.mc.AvgLatency())
		d.Int64(m.llc.Accesses)
		d.Int64(m.llc.Hits)
		d.Int64(m.mshr.Allocs)
		d.Int64(m.mshr.Merges)
		d.Int64(int64(len(m.wbQ)))
		d.Int64(int64(len(m.compQ)))
	}
	for _, c := range s.Clusters {
		d.String(fmt.Sprintf("%+v", c.Stats))
	}
	s.digestNet(&d, s.ReqNet)
	if s.RepNet != s.ReqNet {
		s.digestNet(&d, s.RepNet)
	}
	// The derived results fold in the float aggregation paths too.
	d.String(fmt.Sprintf("%+v", s.Collect()))
	return d.Sum64()
}

func (s *System) digestNet(d *stats.Digest, n *noc.Network) {
	d.String(n.Label)
	for _, c := range []noc.Class{noc.ClassRequest, noc.ClassReply} {
		d.Int64(n.InjectedFlits(c))
		d.Int64(n.EjectedFlits(c))
	}
	for p := range n.PktLat {
		d.Sampler(&n.PktLat[p])
	}
	d.Int64(n.FlitHops())
	for _, ni := range n.NIs {
		d.Int64(ni.EjFlitsByClass[noc.ClassRequest])
		d.Int64(ni.EjFlitsByClass[noc.ClassReply])
	}
}

// AuditRun is one determinism-audit execution: the workload is run to
// completion and summarized by its digest.
type AuditRun struct {
	Cycles  int64
	Digest  uint64
	Results Results
	// Workers is the engine-effective worker count the run executed
	// with (1 when serial): the requested parallelism after the engine
	// clamps it to what the topology and node population can use.
	// Execution metadata only — it never enters the canonical Result.
	Workers int
}

// RunAudit builds a system, runs the configured warm-up and
// measurement window, and returns the end-state digest. The
// determinism audit runs it twice per configuration and requires
// bit-identical outcomes.
func RunAudit(cfg config.Config, gpuBench, cpuBench string) AuditRun {
	a, err := RunAuditCtrl(RunControl{}, cfg, gpuBench, cpuBench)
	if err != nil {
		// Unreachable: a zero RunControl has no context to cancel.
		panic(err)
	}
	return a
}
