package core

import (
	"fmt"
	"testing"

	"delrep/internal/config"
)

// auditConfig builds a short-window configuration for one scheme ×
// topology point. The window is small so the full matrix stays inside
// the tier-1 budget; determinism bugs of the map-iteration/RNG kind
// surface within a few hundred cycles because every packet ordering
// decision feeds back into the caches.
func auditConfig(scheme config.Scheme, topo config.Topology) config.Config {
	cfg := config.Default()
	cfg.Scheme = scheme
	cfg.NoC.Topology = topo
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 450
	cfg.GPU.KernelCycles = 300 // exercise the kernel-flush path too
	return cfg
}

// TestDeterminismAudit runs every scheme × topology combination twice
// with identical seeds and requires bit-identical cycle counts and
// stats digests. This is the executable form of the invariants the
// simlint analyzers (mapiter, rngsource, tickpurity) police statically.
func TestDeterminismAudit(t *testing.T) {
	schemes := []config.Scheme{
		config.SchemeBaseline,
		config.SchemeDelegatedReplies,
		config.SchemeRP,
	}
	topologies := []config.Topology{
		config.TopoMesh,
		config.TopoCrossbar,
		config.TopoFlattenedButterfly,
		config.TopoDragonfly,
	}
	for _, scheme := range schemes {
		for _, topo := range topologies {
			name := fmt.Sprintf("%v/%v", scheme, topo)
			t.Run(name, func(t *testing.T) {
				cfg := auditConfig(scheme, topo)
				a := RunAudit(cfg, "NN", "vips")
				b := RunAudit(cfg, "NN", "vips")
				if a.Cycles != b.Cycles {
					t.Fatalf("same-seed runs diverged in length: %d vs %d cycles", a.Cycles, b.Cycles)
				}
				if a.Digest != b.Digest {
					t.Fatalf("same-seed runs diverged: digest %#x vs %#x (cycles=%d)", a.Digest, b.Digest, a.Cycles)
				}
			})
		}
	}
}

// TestDeterminismAuditParallel runs the same scheme × topology matrix
// node-and-network parallel at several worker counts and requires the
// Results and digest to be bit-identical to the serial run — the
// acceptance bar for the fused two-dispatch tick (DESIGN.md §11–§12).
// Crossbar is included deliberately: its single router leaves nothing
// to tile, so the run exercises the shards-only path (serial network,
// parallel node phase), which must be digest-inert too.
func TestDeterminismAuditParallel(t *testing.T) {
	schemes := []config.Scheme{
		config.SchemeBaseline,
		config.SchemeDelegatedReplies,
		config.SchemeRP,
	}
	topologies := []config.Topology{
		config.TopoMesh,
		config.TopoCrossbar,
		config.TopoFlattenedButterfly,
		config.TopoDragonfly,
	}
	for _, scheme := range schemes {
		for _, topo := range topologies {
			name := fmt.Sprintf("%v/%v", scheme, topo)
			t.Run(name, func(t *testing.T) {
				cfg := auditConfig(scheme, topo)
				base := RunAudit(cfg, "NN", "vips")
				for _, workers := range []int{2, 4, 8} {
					a, err := RunAuditCtrl(RunControl{Parallel: workers}, cfg, "NN", "vips")
					if err != nil {
						t.Fatal(err)
					}
					if a.Cycles != base.Cycles || a.Digest != base.Digest {
						t.Fatalf("parallel N=%d diverged from serial: (%d, %#x) vs (%d, %#x)",
							workers, a.Cycles, a.Digest, base.Cycles, base.Digest)
					}
					if a.Results != base.Results {
						t.Fatalf("parallel N=%d results diverged from serial", workers)
					}
				}
			})
		}
	}
}

// TestDeterminismAuditSharedL1 covers the cluster organisations, whose
// stats reset path was added by the audit (shared slices + DynEB mode
// controller are extra state that must replay identically).
func TestDeterminismAuditSharedL1(t *testing.T) {
	for _, org := range []config.L1Org{config.L1DCL1, config.L1DynEB} {
		t.Run(org.String(), func(t *testing.T) {
			cfg := auditConfig(config.SchemeDelegatedReplies, config.TopoMesh)
			cfg.GPU.Org = org
			cfg.GPU.DynEBEpoch = 256
			a := RunAudit(cfg, "2DCON", "dedup")
			b := RunAudit(cfg, "2DCON", "dedup")
			if a.Cycles != b.Cycles || a.Digest != b.Digest {
				t.Fatalf("same-seed runs diverged: (%d, %#x) vs (%d, %#x)",
					a.Cycles, a.Digest, b.Cycles, b.Digest)
			}
		})
	}
}

// TestDeterminismAuditParallelSharedL1 runs the cluster organisations
// parallel. DCL1 shards on cluster boundaries; DynEB forces the node
// phase serial (its mode controller invalidates member tags mid-phase,
// see shard.go) while the networks still tile — both must reproduce
// the serial digest exactly.
func TestDeterminismAuditParallelSharedL1(t *testing.T) {
	for _, org := range []config.L1Org{config.L1DCL1, config.L1DynEB} {
		t.Run(org.String(), func(t *testing.T) {
			cfg := auditConfig(config.SchemeDelegatedReplies, config.TopoMesh)
			cfg.GPU.Org = org
			cfg.GPU.DynEBEpoch = 256
			base := RunAudit(cfg, "2DCON", "dedup")
			for _, workers := range []int{2, 4, 8} {
				a, err := RunAuditCtrl(RunControl{Parallel: workers}, cfg, "2DCON", "dedup")
				if err != nil {
					t.Fatal(err)
				}
				if a.Cycles != base.Cycles || a.Digest != base.Digest {
					t.Fatalf("parallel N=%d diverged from serial: (%d, %#x) vs (%d, %#x)",
						workers, a.Cycles, a.Digest, base.Cycles, base.Digest)
				}
				if a.Results != base.Results {
					t.Fatalf("parallel N=%d results diverged from serial", workers)
				}
			}
		})
	}
}

// TestDigestSeedSensitivity guards the digest itself: if it ignored
// the simulated state, the audit above would pass vacuously.
func TestDigestSeedSensitivity(t *testing.T) {
	cfg := auditConfig(config.SchemeDelegatedReplies, config.TopoMesh)
	a := RunAudit(cfg, "NN", "vips")
	cfg.Seed = 99
	b := RunAudit(cfg, "NN", "vips")
	if a.Digest == b.Digest {
		t.Fatal("different seeds produced identical digests: digest is not state-sensitive")
	}
}
