package core

import (
	"fmt"
	"math/rand"
	"sort"

	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/cpu"
	"delrep/internal/gpu"
	"delrep/internal/noc"
	"delrep/internal/obs"
	"delrep/internal/stats"
	"delrep/internal/workload"
)

// System is the full simulated heterogeneous architecture: CPU cores,
// GPU cores, and memory nodes attached to request/reply networks.
type System struct {
	Cfg     config.Config
	GPUProf workload.GPUProfile
	CPUProf workload.CPUProfile

	ReqNet *noc.Network
	RepNet *noc.Network // == ReqNet when the physical network is shared

	GPUs     []*GPUCore
	CPUs     []*cpu.Core
	Mems     []*MemNode
	Clusters []*Cluster

	memNodes []int // node ids of memory nodes, in order
	gpuIdx   []int // node id -> GPU index or -1
	cpuIdx   []int // node id -> CPU index or -1
	memIdx   []int // node id -> memory-node index or -1

	gpuReplyFlits int
	cpuReplyFlits int
	writeFlits    int

	cycle  int64
	warmed int64 // cycle at which stats were last reset
	pktID  uint64
	rng    *rand.Rand
	pool   pool // deterministic Packet/Msg free lists (see pool.go)

	// Inter-core locality sampling (Figure 2): on a sampled subset of
	// L1 read misses, check whether any remote GPU L1 holds the line.
	localitySamples  int64
	localityHits     int64
	locSharedSamples int64
	locSharedHits    int64
	locPredSamples   int64
	locPredHits      int64

	// End-to-end GPU load latency by reply kind (diagnostics).
	loadLat [5]stats.Sampler

	// Per-reply-kind latency attribution sums (queueing vs transit vs
	// serialization vs delegation overhead), fed by NetAcct.
	loadBreak [5]breakAcc

	// obs, when non-nil, is the attached observability layer (see
	// AttachObserver). Strictly measurement-only.
	obs *obs.Observer

	// netPool drives tile-parallel network ticking; nil when serial
	// (see SetParallel in parallel.go).
	netPool  *noc.Pool
	parallel int

	nextFlush int64
}

// breakAcc accumulates latency-attribution sums for one reply kind.
type breakAcc struct {
	n         int64
	total     int64
	queue     int64
	xfer      int64
	ser       int64
	delegWait int64
	hops      int64
	legs      int64
	delegs    int64
}

// recordLoadBreak attributes a completed GPU load's latency across its
// network legs (the Figure-4 breakdown).
func (s *System) recordLoadBreak(kind ReplyKind, cycles int64, a *NetAcct) {
	b := &s.loadBreak[kind]
	b.n++
	b.total += cycles
	b.queue += a.Queue
	b.xfer += a.Xfer
	b.ser += a.Ser
	b.delegWait += a.DelegWait
	b.hops += int64(a.Hops)
	b.legs += int64(a.Legs)
	b.delegs += int64(a.Delegs)
}

// noteDelegated hands a stuck reply's trace over to the delegated
// request that replaces it: the stuck packet is recorded as aborted,
// and the successor inherits a trace pointing back at it.
func (s *System) noteDelegated(stuck, successor *noc.Packet) {
	if s.obs == nil || stuck.Trace == nil {
		return
	}
	s.obs.PacketDropped(stuck, "delegated", s.cycle)
	if successor.Trace == nil {
		successor.Trace = &noc.PacketTrace{}
	}
	successor.Trace.Origin = stuck.ID
}

// recordLoadLat samples the end-to-end latency of a completed GPU load.
func (s *System) recordLoadLat(kind ReplyKind, cycles int64) {
	s.loadLat[kind].Add(float64(cycles))
}

// localitySamplePeriod: every Nth L1 miss is checked against all remote
// L1s (a measurement probe only; it does not affect timing).
const localitySamplePeriod = 16

// NewSystem builds a system for the given configuration and workload
// pairing. It panics on invalid configurations (programming errors);
// use cfg.Validate for user-facing validation.
func NewSystem(cfg config.Config, gpuBench, cpuBench string) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		Cfg:           cfg,
		GPUProf:       workload.GPUProfileByName(gpuBench),
		CPUProf:       workload.CPUProfileByName(cpuBench),
		gpuReplyFlits: cfg.NoC.FlitsForData(cfg.GPU.L1LineBytes),
		cpuReplyFlits: cfg.NoC.FlitsForData(cfg.CPU.L1LineBytes),
		writeFlits:    cfg.NoC.FlitsForData(cfg.GPU.L1LineBytes),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
	}
	s.buildNetworks()
	s.buildNodes()
	s.prewarmLLC()
	s.nextFlush = int64(cfg.GPU.KernelCycles)
	return s
}

// prewarmLLC functionally warms the LLC with the workload footprint
// (CPU regions first, then GPU private, then the shared regions most
// likely to be re-referenced), standing in for the hundreds of
// thousands of cycles of cache warming the paper's billion-instruction
// runs perform before measurement. Core pointers are warmed too:
// private lines point at their owner, shared lines at a plausible last
// accessor within the sharing group — the steady state a long run
// reaches once every line has been read at least once.
func (s *System) prewarmLLC() {
	insert := func(line cache.Addr, aux uint32) {
		mem := s.Mems[s.memIdx[s.memNodeFor(line)]]
		mem.llc.Insert(line, aux, false)
	}
	for _, c := range s.CPUs {
		for i := 0; i < cpu.RegionLines; i++ {
			insert(cache.Addr(cpu.CPUBase+uint64(c.Node)*cpu.RegionLines+uint64(i)), 0)
		}
	}
	for _, g := range s.GPUs {
		for i := 0; i < s.GPUProf.PrivLines; i++ {
			insert(workload.PrivLine(g.Idx, i), auxOf(g.Node))
		}
	}
	group := s.GPUProf.ShareGroup
	for grp := 0; grp < s.GPUProf.Groups(len(s.GPUs)); grp++ {
		for i := 0; i < s.GPUProf.SharedLines; i++ {
			owner := grp*group + i%group
			if owner >= len(s.GPUs) {
				owner = grp * group
			}
			insert(workload.SharedLine(grp, i), auxOf(s.GPUs[owner].Node))
		}
	}
}

func (s *System) topology() noc.Topology {
	l := s.Cfg.Layout
	n := s.Cfg.NoC
	switch n.Topology {
	case config.TopoMesh:
		return noc.NewMesh(l.Width, l.Height, noc.MeshPolicy{
			Alg: n.Routing, ReqOrder: n.ReqOrder, RepOrder: n.RepOrder,
		})
	case config.TopoFlattenedButterfly:
		return noc.NewFlattenedButterfly(l.Width, l.Height, n.ReqOrder, n.RepOrder)
	case config.TopoDragonfly:
		return noc.NewDragonfly(l.Nodes(), 8)
	case config.TopoCrossbar:
		return noc.NewCrossbar(l.Nodes())
	}
	panic(fmt.Sprintf("core: unknown topology %v", n.Topology))
}

func (s *System) buildNetworks() {
	l := s.Cfg.Layout
	memSet := make(map[int]bool)
	for _, id := range l.NodesOf(config.KindMem) {
		memSet[id] = true
	}
	// The per-VC ejection buffer must hold at least one complete packet,
	// or a packet larger than the buffer could never assemble (credits
	// would never return).
	maxFlits := s.gpuReplyFlits
	if s.writeFlits > maxFlits {
		maxFlits = s.writeFlits
	}
	if s.cpuReplyFlits > maxFlits {
		maxFlits = s.cpuReplyFlits
	}
	params := noc.Params{
		InjCapCore: 16,
		InjCapMem:  s.Cfg.NoC.InjectionBuf,
		EjCap:      2*maxFlits + s.Cfg.NoC.FlitsPerVC,
		AsmCap:     8,
		MemNodes:   memSet,
	}
	if s.Cfg.NoC.SharedPhys {
		net := noc.NewNetwork("noc", s.topology(), s.Cfg.NoC, l.Nodes(), params)
		s.ReqNet, s.RepNet = net, net
		return
	}
	s.ReqNet = noc.NewNetwork("request", s.topology(), s.Cfg.NoC, l.Nodes(), params)
	s.RepNet = noc.NewNetwork("reply", s.topology(), s.Cfg.NoC, l.Nodes(), params)
}

func (s *System) buildNodes() {
	l := s.Cfg.Layout
	n := l.Nodes()
	s.gpuIdx = make([]int, n)
	s.cpuIdx = make([]int, n)
	s.memIdx = make([]int, n)
	for i := range s.gpuIdx {
		s.gpuIdx[i], s.cpuIdx[i], s.memIdx[i] = -1, -1, -1
	}
	for node := 0; node < n; node++ {
		switch l.Kind(node) {
		case config.KindGPU:
			idx := len(s.GPUs)
			s.gpuIdx[node] = idx
			g := newGPUCore(s, node, idx)
			gen := workload.NewAddrGen(s.GPUProf, idx, 0, s.Cfg.GPU.CTASched, s.Cfg.Seed)
			g.SM = gpu.NewSM(idx, s.Cfg.GPU, s.GPUProf, gen, g)
			s.GPUs = append(s.GPUs, g)
			s.wireHandlers(node, g.HandlePacket)
		case config.KindCPU:
			idx := len(s.CPUs)
			s.cpuIdx[node] = idx
			c := cpu.New(node, s.CPUProf, s, s.Cfg.Seed)
			s.CPUs = append(s.CPUs, c)
			node := node
			s.wireHandlers(node, func(p *noc.Packet) bool {
				return s.cpuHandle(node, p)
			})
		case config.KindMem:
			idx := len(s.Mems)
			s.memIdx[node] = idx
			s.memNodes = append(s.memNodes, node)
			m := newMemNode(s, node, idx)
			s.Mems = append(s.Mems, m)
			s.wireHandlers(node, m.HandlePacket)
		}
	}
	// Regenerate address streams now that the GPU count is known, and
	// bind each sharing group's common wavefront.
	fronts := map[int]*workload.Wavefront{}
	for _, g := range s.GPUs {
		gen := workload.NewAddrGen(s.GPUProf, g.Idx, len(s.GPUs), s.Cfg.GPU.CTASched, s.Cfg.Seed)
		grp := g.Idx / s.GPUProf.ShareGroup
		wf, ok := fronts[grp]
		if !ok {
			members := s.GPUProf.ShareGroup
			if rem := len(s.GPUs) - grp*members; rem < members {
				members = rem
			}
			wf = workload.NewWavefront(members)
			fronts[grp] = wf
		}
		gen.BindWavefront(wf)
		g.SM = gpu.NewSM(g.Idx, s.Cfg.GPU, s.GPUProf, gen, g)
	}
	s.precomputeProbeTargets()
	if s.Cfg.GPU.Org != config.L1Private {
		s.buildClusters()
	}
}

func (s *System) wireHandlers(node int, h func(*noc.Packet) bool) {
	s.ReqNet.NI(node).Handler = h
	if s.RepNet != s.ReqNet {
		s.RepNet.NI(node).Handler = h
	}
}

// buildClusters groups GPU cores into shared-L1 clusters of eight.
func (s *System) buildClusters() {
	for i := 0; i < len(s.GPUs); i += ClusterCores {
		end := i + ClusterCores
		if end > len(s.GPUs) {
			end = len(s.GPUs)
		}
		s.Clusters = append(s.Clusters, newCluster(s, len(s.Clusters), s.GPUs[i:end]))
	}
}

// precomputeProbeTargets orders, for each GPU core, the other GPU nodes
// by hop distance (the RP probe candidates).
func (s *System) precomputeProbeTargets() {
	l := s.Cfg.Layout
	for _, g := range s.GPUs {
		x0, y0 := l.XY(g.Node)
		var others []int
		for _, h := range s.GPUs {
			if h.Node != g.Node {
				others = append(others, h.Node)
			}
		}
		sort.Slice(others, func(i, j int) bool {
			xi, yi := l.XY(others[i])
			xj, yj := l.XY(others[j])
			di := abs(xi-x0) + abs(yi-y0)
			dj := abs(xj-x0) + abs(yj-y0)
			if di != dj {
				return di < dj
			}
			return others[i] < others[j]
		})
		g.probeTargets = others
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// reqNI and repNI return a node's network interfaces for each class.
func (s *System) reqNI(node int) *noc.NI { return s.ReqNet.NI(node) }
func (s *System) repNI(node int) *noc.NI { return s.RepNet.NI(node) }

// memNodeFor maps a line address to its home memory node using a
// randomizing hash (PAE-style address mapping [43]).
func (s *System) memNodeFor(line cache.Addr) int {
	h := uint64(line) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return s.memNodes[(h>>32)%uint64(len(s.memNodes))]
}

// newPacket constructs a packet with a fresh id. The packet comes
// from the free list (scrubbed on retire), so untouched fields are
// zero exactly as in a fresh allocation.
func (s *System) newPacket(src, dst int, class noc.Class, prio noc.Priority, flits int, m *Msg) *noc.Packet {
	s.pktID++
	p := s.allocPacket()
	p.ID, p.Src, p.Dst = s.pktID, src, dst
	p.Class, p.Prio, p.SizeFlits, p.Payload = class, prio, flits, m
	if s.obs != nil {
		p.Trace = s.obs.TraceFor(p.ID)
	}
	return p
}

// isDelegated and isRP report the active scheme.
func (s *System) isDelegated() bool { return s.Cfg.Scheme == config.SchemeDelegatedReplies }
func (s *System) isRP() bool        { return s.Cfg.Scheme == config.SchemeRP }

// SendCPURead implements cpu.Sender.
func (s *System) SendCPURead(node int, line cache.Addr) bool {
	ni := s.reqNI(node)
	if !ni.CanInject(noc.ClassRequest) {
		return false
	}
	p := s.newPacket(node, s.memNodeFor(line), noc.ClassRequest, noc.PrioCPU, 1,
		s.msgOf(Msg{Type: MsgCPURead, Line: line, Requester: node}))
	return ni.Inject(p)
}

// cpuHandle consumes replies at a CPU node.
func (s *System) cpuHandle(node int, p *noc.Packet) bool {
	m := p.Payload.(*Msg)
	if m.Type != MsgReply {
		panic("core: unexpected message at CPU node: " + m.Type.String())
	}
	s.CPUs[s.cpuIdx[node]].ReplyArrived(m.Line)
	s.retire(p)
	return true
}

// sampleLocality measures Figure 2's inter-core locality: on a sampled
// L1 read miss, check whether any remote GPU L1 (or shared slice) holds
// the line. Measurement only; no timing effect.
func (s *System) sampleLocality(g *GPUCore, line cache.Addr) {
	if (g.Stats.L1ReadMisses+int64(g.Idx))%localitySamplePeriod != 0 {
		return
	}
	s.localitySamples++
	shared := uint64(line) >= 2<<30 && uint64(line) < 3<<30
	if shared {
		s.locSharedSamples++
		if k := g.Idx % s.GPUProf.ShareGroup; k > 0 {
			s.locPredSamples++
			if s.GPUs[g.Idx-1].probeLocal(line) {
				s.locPredHits++
			}
		}
	}
	for _, h := range s.GPUs {
		if h == g {
			continue
		}
		if h.probeLocal(line) {
			s.localityHits++
			if shared {
				s.locSharedHits++
			}
			return
		}
	}
}

// LocalityBreakdown reports (sharedSamples, sharedHits, totalSamples,
// totalHits) for diagnostics.
func (s *System) LocalityBreakdown() (int64, int64, int64, int64) {
	return s.locSharedSamples, s.locSharedHits, s.localitySamples, s.localityHits
}

// ProbeGPU reports whether GPU core idx currently caches the line
// (diagnostics).
func (s *System) ProbeGPU(idx int, line cache.Addr) bool {
	return s.GPUs[idx].probeLocal(line)
}

// PredLocality reports how often the wavefront predecessor held a
// sampled shared miss (diagnostics).
func (s *System) PredLocality() (int64, int64) { return s.locPredSamples, s.locPredHits }

// Cycle returns the current cycle.
func (s *System) Cycle() int64 { return s.cycle }

// Tick advances the whole system one cycle.
func (s *System) Tick() {
	s.cycle++
	for _, m := range s.Mems {
		m.BeginCycle()
	}
	for _, g := range s.GPUs {
		g.BeginCycle()
	}
	s.ReqNet.Tick()
	if s.RepNet != s.ReqNet {
		s.RepNet.Tick()
	}
	for _, m := range s.Mems {
		m.Tick()
	}
	for _, c := range s.Clusters {
		c.Tick()
	}
	for _, g := range s.GPUs {
		g.Tick()
	}
	for _, c := range s.CPUs {
		c.Tick()
	}
	if s.nextFlush > 0 && s.cycle >= s.nextFlush {
		s.kernelFlush()
		s.nextFlush = s.cycle + int64(s.Cfg.GPU.KernelCycles)
	}
	if s.obs != nil {
		s.obs.Tick(s.cycle)
	}
}

// kernelFlush emulates the software-coherence kernel boundary: GPU L1s
// are invalidated and all LLC core pointers are dropped.
func (s *System) kernelFlush() {
	for _, g := range s.GPUs {
		g.FlushL1()
	}
	for _, c := range s.Clusters {
		for _, sl := range c.slices {
			sl.cache.InvalidateAll()
		}
	}
	for _, m := range s.Mems {
		m.FlushPointers()
	}
}

// Run advances n cycles.
func (s *System) Run(n int64) {
	for i := int64(0); i < n; i++ {
		s.Tick()
	}
}

// ResetStats zeroes all measurement state (call at the end of warmup).
func (s *System) ResetStats() {
	s.warmed = s.cycle
	s.ReqNet.ResetStats()
	if s.RepNet != s.ReqNet {
		s.RepNet.ResetStats()
	}
	for _, g := range s.GPUs {
		g.ResetStats()
	}
	for _, c := range s.CPUs {
		c.ResetStats()
	}
	for _, m := range s.Mems {
		m.ResetStats()
	}
	for _, c := range s.Clusters {
		c.ResetStats()
	}
	s.localitySamples, s.localityHits = 0, 0
	s.locSharedSamples, s.locSharedHits = 0, 0
	s.locPredSamples, s.locPredHits = 0, 0
	for i := range s.loadLat {
		s.loadLat[i].Reset()
	}
	s.loadBreak = [5]breakAcc{}
}

// RunWorkload runs the configured warmup then measurement window and
// returns the results. It is the uncontrolled form of RunWorkloadCtx;
// the two are bit-identical for completed runs.
func (s *System) RunWorkload() Results {
	r, err := s.RunWorkloadCtx(RunControl{})
	if err != nil {
		// Unreachable: a zero RunControl has no context to cancel.
		panic(err)
	}
	return r
}
