package core

import (
	"fmt"
	"math/rand"
	"sort"

	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/cpu"
	"delrep/internal/gpu"
	"delrep/internal/noc"
	"delrep/internal/obs"
	"delrep/internal/par"
	"delrep/internal/stats"
	"delrep/internal/workload"
)

// System is the full simulated heterogeneous architecture: CPU cores,
// GPU cores, and memory nodes attached to request/reply networks.
type System struct {
	Cfg     config.Config
	GPUProf workload.GPUProfile
	CPUProf workload.CPUProfile

	ReqNet *noc.Network
	RepNet *noc.Network // == ReqNet when the physical network is shared

	GPUs     []*GPUCore
	CPUs     []*cpu.Core
	Mems     []*MemNode
	Clusters []*Cluster

	memNodes []int // node ids of memory nodes, in order
	gpuIdx   []int // node id -> GPU index or -1
	cpuIdx   []int // node id -> CPU index or -1
	memIdx   []int // node id -> memory-node index or -1

	gpuReplyFlits int
	cpuReplyFlits int
	writeFlits    int

	cycle  int64
	warmed int64 // cycle at which stats were last reset
	rng    *rand.Rand
	al     alloc // canonical packet/Msg allocator (see pool.go)

	// allocOf maps a node id to the allocator its tick-phase sends draw
	// from: the canonical allocator when serial, the owning shard's when
	// the node phase is sharded. Only CPU nodes route through this table
	// (GPU cores and memory nodes carry their own pointer).
	allocOf []*alloc

	// Inter-core locality sampling (Figure 2): on a sampled subset of
	// L1 read misses, check whether any remote GPU L1 holds the line.
	// Canonical counters; sharded ticks accumulate into per-shard deltas
	// folded here at node commit (see locCounters).
	loc locCounters

	// End-to-end GPU load latency by reply kind (diagnostics).
	loadLat [5]stats.Sampler

	// Per-reply-kind latency attribution sums (queueing vs transit vs
	// serialization vs delegation overhead), fed by NetAcct.
	loadBreak [5]breakAcc

	// obs, when non-nil, is the attached observability layer (see
	// AttachObserver). Strictly measurement-only.
	obs *obs.Observer

	// pool drives both tile-parallel network ticking and node-phase
	// sharding; nil when serial (see SetParallel in parallel.go).
	pool     *par.Pool
	parallel int

	// shards partitions the node phase (Mems/Clusters/GPUs/CPUs) for
	// parallel ticking; empty when the node phase runs serially.
	shards []*shard

	// Prebound phase closures so the per-cycle pool dispatches do not
	// allocate. phase1Fn is nil when the networks are untiled (crossbar);
	// phase2Fn is nil when the node phase is unsharded.
	phase1Fn func(int)
	phase2Fn func(int)

	// prof, when non-nil, accumulates per-phase wall time (see
	// profile.go). Measurement-only: Run dispatches to an instrumented
	// orchestrator, the tick sequence itself is unchanged.
	prof *PhaseProfile

	nextFlush int64
}

// locCounters is the inter-core locality sample block. The canonical
// copy lives in the System; sharded node phases write through a
// per-shard delta that the commit step folds into the canonical copy
// every cycle in fixed shard order.
type locCounters struct {
	samples       int64
	hits          int64
	sharedSamples int64
	sharedHits    int64
	predSamples   int64
	predHits      int64
}

// add folds a delta into the receiver.
func (l *locCounters) add(d *locCounters) {
	l.samples += d.samples
	l.hits += d.hits
	l.sharedSamples += d.sharedSamples
	l.sharedHits += d.sharedHits
	l.predSamples += d.predSamples
	l.predHits += d.predHits
}

// breakAcc accumulates latency-attribution sums for one reply kind.
type breakAcc struct {
	n         int64
	total     int64
	queue     int64
	xfer      int64
	ser       int64
	delegWait int64
	hops      int64
	legs      int64
	delegs    int64
}

// recordLoadBreak attributes a completed GPU load's latency across its
// network legs (the Figure-4 breakdown).
func (s *System) recordLoadBreak(kind ReplyKind, cycles int64, a *NetAcct) {
	b := &s.loadBreak[kind]
	b.n++
	b.total += cycles
	b.queue += a.Queue
	b.xfer += a.Xfer
	b.ser += a.Ser
	b.delegWait += a.DelegWait
	b.hops += int64(a.Hops)
	b.legs += int64(a.Legs)
	b.delegs += int64(a.Delegs)
}

// noteDelegated hands a stuck reply's trace over to the delegated
// request that replaces it: the stuck packet is recorded as aborted,
// and the successor inherits a trace pointing back at it.
func (s *System) noteDelegated(stuck, successor *noc.Packet) {
	if s.obs == nil || stuck.Trace == nil {
		return
	}
	s.obs.PacketDropped(stuck, "delegated", s.cycle)
	if successor.Trace == nil {
		successor.Trace = &noc.PacketTrace{}
	}
	successor.Trace.Origin = stuck.ID
}

// recordLoadLat samples the end-to-end latency of a completed GPU load.
func (s *System) recordLoadLat(kind ReplyKind, cycles int64) {
	s.loadLat[kind].Add(float64(cycles))
}

// localitySamplePeriod: every Nth L1 miss is checked against all remote
// L1s (a measurement probe only; it does not affect timing).
const localitySamplePeriod = 16

// NewSystem builds a system for the given configuration and workload
// pairing. It panics on invalid configurations (programming errors);
// use cfg.Validate for user-facing validation.
func NewSystem(cfg config.Config, gpuBench, cpuBench string) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		Cfg:           cfg,
		GPUProf:       workload.GPUProfileByName(gpuBench),
		CPUProf:       workload.CPUProfileByName(cpuBench),
		gpuReplyFlits: cfg.NoC.FlitsForData(cfg.GPU.L1LineBytes),
		cpuReplyFlits: cfg.NoC.FlitsForData(cfg.CPU.L1LineBytes),
		writeFlits:    cfg.NoC.FlitsForData(cfg.GPU.L1LineBytes),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
	}
	s.al.initIDs(1, 1)
	s.buildNetworks()
	s.buildNodes()
	s.prewarmLLC()
	s.nextFlush = int64(cfg.GPU.KernelCycles)
	return s
}

// prewarmLLC functionally warms the LLC with the workload footprint
// (CPU regions first, then GPU private, then the shared regions most
// likely to be re-referenced), standing in for the hundreds of
// thousands of cycles of cache warming the paper's billion-instruction
// runs perform before measurement. Core pointers are warmed too:
// private lines point at their owner, shared lines at a plausible last
// accessor within the sharing group — the steady state a long run
// reaches once every line has been read at least once.
func (s *System) prewarmLLC() {
	insert := func(line cache.Addr, aux uint32) {
		mem := s.Mems[s.memIdx[s.memNodeFor(line)]]
		mem.llc.Insert(line, aux, false)
	}
	for _, c := range s.CPUs {
		for i := 0; i < cpu.RegionLines; i++ {
			insert(cache.Addr(cpu.CPUBase+uint64(c.Node)*cpu.RegionLines+uint64(i)), 0)
		}
	}
	for _, g := range s.GPUs {
		for i := 0; i < s.GPUProf.PrivLines; i++ {
			insert(workload.PrivLine(g.Idx, i), auxOf(g.Node))
		}
	}
	group := s.GPUProf.ShareGroup
	for grp := 0; grp < s.GPUProf.Groups(len(s.GPUs)); grp++ {
		for i := 0; i < s.GPUProf.SharedLines; i++ {
			owner := grp*group + i%group
			if owner >= len(s.GPUs) {
				owner = grp * group
			}
			insert(workload.SharedLine(grp, i), auxOf(s.GPUs[owner].Node))
		}
	}
}

func (s *System) topology() noc.Topology {
	l := s.Cfg.Layout
	n := s.Cfg.NoC
	switch n.Topology {
	case config.TopoMesh:
		return noc.NewMesh(l.Width, l.Height, noc.MeshPolicy{
			Alg: n.Routing, ReqOrder: n.ReqOrder, RepOrder: n.RepOrder,
		})
	case config.TopoFlattenedButterfly:
		return noc.NewFlattenedButterfly(l.Width, l.Height, n.ReqOrder, n.RepOrder)
	case config.TopoDragonfly:
		return noc.NewDragonfly(l.Nodes(), 8)
	case config.TopoCrossbar:
		return noc.NewCrossbar(l.Nodes())
	}
	panic(fmt.Sprintf("core: unknown topology %v", n.Topology))
}

func (s *System) buildNetworks() {
	l := s.Cfg.Layout
	memSet := make(map[int]bool)
	for _, id := range l.NodesOf(config.KindMem) {
		memSet[id] = true
	}
	// The per-VC ejection buffer must hold at least one complete packet,
	// or a packet larger than the buffer could never assemble (credits
	// would never return).
	maxFlits := s.gpuReplyFlits
	if s.writeFlits > maxFlits {
		maxFlits = s.writeFlits
	}
	if s.cpuReplyFlits > maxFlits {
		maxFlits = s.cpuReplyFlits
	}
	params := noc.Params{
		InjCapCore: 16,
		InjCapMem:  s.Cfg.NoC.InjectionBuf,
		EjCap:      2*maxFlits + s.Cfg.NoC.FlitsPerVC,
		AsmCap:     8,
		MemNodes:   memSet,
	}
	if s.Cfg.NoC.SharedPhys {
		net := noc.NewNetwork("noc", s.topology(), s.Cfg.NoC, l.Nodes(), params)
		s.ReqNet, s.RepNet = net, net
		return
	}
	s.ReqNet = noc.NewNetwork("request", s.topology(), s.Cfg.NoC, l.Nodes(), params)
	s.RepNet = noc.NewNetwork("reply", s.topology(), s.Cfg.NoC, l.Nodes(), params)
}

func (s *System) buildNodes() {
	l := s.Cfg.Layout
	n := l.Nodes()
	s.gpuIdx = make([]int, n)
	s.cpuIdx = make([]int, n)
	s.memIdx = make([]int, n)
	s.allocOf = make([]*alloc, n)
	for i := range s.gpuIdx {
		s.gpuIdx[i], s.cpuIdx[i], s.memIdx[i] = -1, -1, -1
		s.allocOf[i] = &s.al
	}
	for node := 0; node < n; node++ {
		switch l.Kind(node) {
		case config.KindGPU:
			idx := len(s.GPUs)
			s.gpuIdx[node] = idx
			g := newGPUCore(s, node, idx)
			gen := workload.NewAddrGen(s.GPUProf, idx, 0, s.Cfg.GPU.CTASched, s.Cfg.Seed)
			g.SM = gpu.NewSM(idx, s.Cfg.GPU, s.GPUProf, gen, g)
			s.GPUs = append(s.GPUs, g)
			s.wireHandlers(node, g.HandlePacket)
		case config.KindCPU:
			idx := len(s.CPUs)
			s.cpuIdx[node] = idx
			c := cpu.New(node, s.CPUProf, s, s.Cfg.Seed)
			s.CPUs = append(s.CPUs, c)
			node := node
			s.wireHandlers(node, func(p *noc.Packet) bool {
				return s.cpuHandle(node, p)
			})
		case config.KindMem:
			idx := len(s.Mems)
			s.memIdx[node] = idx
			s.memNodes = append(s.memNodes, node)
			m := newMemNode(s, node, idx)
			s.Mems = append(s.Mems, m)
			s.wireHandlers(node, m.HandlePacket)
		}
	}
	// Regenerate address streams now that the GPU count is known, and
	// bind each sharing group's common wavefront.
	fronts := map[int]*workload.Wavefront{}
	for _, g := range s.GPUs {
		gen := workload.NewAddrGen(s.GPUProf, g.Idx, len(s.GPUs), s.Cfg.GPU.CTASched, s.Cfg.Seed)
		grp := g.Idx / s.GPUProf.ShareGroup
		wf, ok := fronts[grp]
		if !ok {
			members := s.GPUProf.ShareGroup
			if rem := len(s.GPUs) - grp*members; rem < members {
				members = rem
			}
			wf = workload.NewWavefront(members)
			fronts[grp] = wf
		}
		gen.BindWavefront(wf)
		g.SM = gpu.NewSM(g.Idx, s.Cfg.GPU, s.GPUProf, gen, g)
	}
	s.precomputeProbeTargets()
	if s.Cfg.GPU.Org != config.L1Private {
		s.buildClusters()
	}
}

func (s *System) wireHandlers(node int, h func(*noc.Packet) bool) {
	s.ReqNet.NI(node).Handler = h
	if s.RepNet != s.ReqNet {
		s.RepNet.NI(node).Handler = h
	}
}

// buildClusters groups GPU cores into shared-L1 clusters of eight.
func (s *System) buildClusters() {
	for i := 0; i < len(s.GPUs); i += ClusterCores {
		end := i + ClusterCores
		if end > len(s.GPUs) {
			end = len(s.GPUs)
		}
		s.Clusters = append(s.Clusters, newCluster(s, len(s.Clusters), s.GPUs[i:end]))
	}
}

// precomputeProbeTargets orders, for each GPU core, the other GPU nodes
// by hop distance (the RP probe candidates).
func (s *System) precomputeProbeTargets() {
	l := s.Cfg.Layout
	for _, g := range s.GPUs {
		x0, y0 := l.XY(g.Node)
		var others []int
		for _, h := range s.GPUs {
			if h.Node != g.Node {
				others = append(others, h.Node)
			}
		}
		sort.Slice(others, func(i, j int) bool {
			xi, yi := l.XY(others[i])
			xj, yj := l.XY(others[j])
			di := abs(xi-x0) + abs(yi-y0)
			dj := abs(xj-x0) + abs(yj-y0)
			if di != dj {
				return di < dj
			}
			return others[i] < others[j]
		})
		g.probeTargets = others
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// reqNI and repNI return a node's network interfaces for each class.
func (s *System) reqNI(node int) *noc.NI { return s.ReqNet.NI(node) }
func (s *System) repNI(node int) *noc.NI { return s.RepNet.NI(node) }

// memNodeFor maps a line address to its home memory node using a
// randomizing hash (PAE-style address mapping [43]).
func (s *System) memNodeFor(line cache.Addr) int {
	h := uint64(line) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return s.memNodes[(h>>32)%uint64(len(s.memNodes))]
}

// newPacketOn constructs a packet with a fresh id from the given
// allocator. The packet comes from the free list (scrubbed on
// retire), so untouched fields are zero exactly as in a fresh
// allocation.
func (s *System) newPacketOn(a *alloc, src, dst int, class noc.Class, prio noc.Priority, flits int, m *Msg) *noc.Packet {
	p := a.allocPacket()
	p.ID, p.Src, p.Dst = a.nextID(), src, dst
	p.Class, p.Prio, p.SizeFlits, p.Payload = class, prio, flits, m
	if s.obs != nil {
		p.Trace = s.obs.TraceFor(p.ID)
	}
	return p
}

// newPacket constructs a packet from the canonical allocator.
func (s *System) newPacket(src, dst int, class noc.Class, prio noc.Priority, flits int, m *Msg) *noc.Packet {
	return s.newPacketOn(&s.al, src, dst, class, prio, flits, m)
}

// isDelegated and isRP report the active scheme.
func (s *System) isDelegated() bool { return s.Cfg.Scheme == config.SchemeDelegatedReplies }
func (s *System) isRP() bool        { return s.Cfg.Scheme == config.SchemeRP }

// SendCPURead implements cpu.Sender. It runs inside the node phase
// (cpu.Core.Tick), so the packet draws from the node's shard-local
// allocator when the node phase is sharded.
func (s *System) SendCPURead(node int, line cache.Addr) bool {
	ni := s.reqNI(node)
	if !ni.CanInject(noc.ClassRequest) {
		return false
	}
	al := s.allocOf[node]
	p := s.newPacketOn(al, node, s.memNodeFor(line), noc.ClassRequest, noc.PrioCPU, 1,
		al.msgOf(Msg{Type: MsgCPURead, Line: line, Requester: node}))
	return ni.Inject(p)
}

// cpuHandle consumes replies at a CPU node.
func (s *System) cpuHandle(node int, p *noc.Packet) bool {
	m := p.Payload.(*Msg)
	if m.Type != MsgReply {
		panic("core: unexpected message at CPU node: " + m.Type.String())
	}
	s.CPUs[s.cpuIdx[node]].ReplyArrived(m.Line)
	s.allocOf[node].retire(p)
	return true
}

// sampleLocality measures Figure 2's inter-core locality: on a sampled
// L1 read miss, check whether any remote GPU L1 (or shared slice) holds
// the line. Measurement only; no timing effect. Counters accumulate
// through the core's locality block (the shard delta when the node
// phase is sharded); the remote probes are read-only Peeks against
// tags that only change at serial commit time, so they are safe to
// issue from inside a shard.
func (s *System) sampleLocality(g *GPUCore, line cache.Addr) {
	if (g.Stats.L1ReadMisses+int64(g.Idx))%localitySamplePeriod != 0 {
		return
	}
	l := g.loc
	l.samples++
	shared := uint64(line) >= 2<<30 && uint64(line) < 3<<30
	if shared {
		l.sharedSamples++
		if k := g.Idx % s.GPUProf.ShareGroup; k > 0 {
			l.predSamples++
			if s.GPUs[g.Idx-1].probeLocal(line) {
				l.predHits++
			}
		}
	}
	for _, h := range s.GPUs {
		if h == g {
			continue
		}
		if h.probeLocal(line) {
			l.hits++
			if shared {
				l.sharedHits++
			}
			return
		}
	}
}

// LocalityBreakdown reports (sharedSamples, sharedHits, totalSamples,
// totalHits) for diagnostics.
func (s *System) LocalityBreakdown() (int64, int64, int64, int64) {
	return s.loc.sharedSamples, s.loc.sharedHits, s.loc.samples, s.loc.hits
}

// ProbeGPU reports whether GPU core idx currently caches the line
// (diagnostics).
func (s *System) ProbeGPU(idx int, line cache.Addr) bool {
	return s.GPUs[idx].probeLocal(line)
}

// PredLocality reports how often the wavefront predecessor held a
// sampled shared miss (diagnostics).
func (s *System) PredLocality() (int64, int64) { return s.loc.predSamples, s.loc.predHits }

// Cycle returns the current cycle.
func (s *System) Cycle() int64 { return s.cycle }

// Tick advances the whole system one cycle. The cycle decomposes into
// the same four phases in every execution mode — begin, network, node,
// end — and the parallel orchestrator (tickParallel in parallel.go)
// reuses the serial phase bodies below wherever a piece cannot be
// partitioned, so serial and parallel runs execute identical work in
// an identical observable order.
func (s *System) Tick() {
	if s.parallel > 1 {
		s.tickParallel()
		return
	}
	s.cycle++
	s.beginSerial()
	s.netSerial()
	s.nodeSerial()
	s.endCycle()
}

// beginSerial resets per-cycle budgets and samples memory blocking.
func (s *System) beginSerial() {
	for _, m := range s.Mems {
		m.BeginCycle()
	}
	for _, g := range s.GPUs {
		g.BeginCycle()
	}
}

// netSerial ticks the networks in serial mode.
func (s *System) netSerial() {
	s.ReqNet.Tick()
	if s.RepNet != s.ReqNet {
		s.RepNet.Tick()
	}
}

// nodeSerial ticks every node in the canonical serial order.
func (s *System) nodeSerial() {
	for _, m := range s.Mems {
		m.Tick()
	}
	for _, c := range s.Clusters {
		c.Tick()
	}
	for _, g := range s.GPUs {
		g.Tick()
	}
	for _, c := range s.CPUs {
		c.Tick()
	}
}

// endCycle runs the end-of-cycle residue: kernel-boundary flushes and
// the observer hook.
func (s *System) endCycle() {
	if s.nextFlush > 0 && s.cycle >= s.nextFlush {
		s.kernelFlush()
		s.nextFlush = s.cycle + int64(s.Cfg.GPU.KernelCycles)
	}
	if s.obs != nil {
		s.obs.Tick(s.cycle)
	}
}

// kernelFlush emulates the software-coherence kernel boundary: GPU L1s
// are invalidated and all LLC core pointers are dropped.
func (s *System) kernelFlush() {
	for _, g := range s.GPUs {
		g.FlushL1()
	}
	for _, c := range s.Clusters {
		for _, sl := range c.slices {
			sl.cache.InvalidateAll()
		}
	}
	for _, m := range s.Mems {
		m.FlushPointers()
	}
}

// Run advances n cycles. With a phase profile attached it dispatches
// to the instrumented orchestrator (profile.go); the tick sequence is
// identical either way.
func (s *System) Run(n int64) {
	if s.prof != nil {
		s.runProfiled(n)
		return
	}
	for i := int64(0); i < n; i++ {
		s.Tick()
	}
}

// ResetStats zeroes all measurement state (call at the end of warmup).
func (s *System) ResetStats() {
	s.warmed = s.cycle
	s.ReqNet.ResetStats()
	if s.RepNet != s.ReqNet {
		s.RepNet.ResetStats()
	}
	for _, g := range s.GPUs {
		g.ResetStats()
	}
	for _, c := range s.CPUs {
		c.ResetStats()
	}
	for _, m := range s.Mems {
		m.ResetStats()
	}
	for _, c := range s.Clusters {
		c.ResetStats()
	}
	s.loc = locCounters{}
	for _, sh := range s.shards {
		sh.loc = locCounters{}
	}
	for i := range s.loadLat {
		s.loadLat[i].Reset()
	}
	s.loadBreak = [5]breakAcc{}
}

// RunWorkload runs the configured warmup then measurement window and
// returns the results. It is the uncontrolled form of RunWorkloadCtx;
// the two are bit-identical for completed runs.
func (s *System) RunWorkload() Results {
	r, err := s.RunWorkloadCtx(RunControl{})
	if err != nil {
		// Unreachable: a zero RunControl has no context to cancel.
		panic(err)
	}
	return r
}
