// Package core implements the paper's contribution — Delegated Replies —
// together with the memory nodes (LLC slice + core pointers + memory
// controller), the GPU cores (private or shared L1, MSHRs, FRQ,
// Realistic Probing), and the full-system assembly that ties the NoC,
// workload, CPU, and DRAM substrates into one cycle-driven simulation.
package core

import (
	"delrep/internal/cache"
)

// MsgType enumerates the protocol messages carried as packet payloads.
type MsgType uint8

const (
	// MsgGPURead is a GPU L1 read miss sent to a memory node
	// (1 flit, request network). With DNF set it is a remote-miss
	// re-request that the LLC must serve directly.
	MsgGPURead MsgType = iota
	// MsgGPUWrite is a write-through GPU store carrying a full line
	// (header + data flits, request network).
	MsgGPUWrite
	// MsgCPURead is a CPU read miss (1 flit, request network,
	// CPU priority).
	MsgCPURead
	// MsgReply carries a data line back to a requester (header + data
	// flits, reply network).
	MsgReply
	// MsgWriteAck acknowledges a write-through (1 flit, reply network).
	MsgWriteAck
	// MsgDelegated is a delegated reply: a 1-flit request-network
	// message sent by a memory node to the likely sharer, carrying the
	// original requester's identity (the paper's sender-ID encoding).
	MsgDelegated
	// MsgProbe is a Realistic Probing query to a remote L1 (1 flit,
	// request network).
	MsgProbe
	// MsgProbeNack reports a probe miss (1 flit, reply network).
	MsgProbeNack
)

func (t MsgType) String() string {
	switch t {
	case MsgGPURead:
		return "GPURead"
	case MsgGPUWrite:
		return "GPUWrite"
	case MsgCPURead:
		return "CPURead"
	case MsgReply:
		return "Reply"
	case MsgWriteAck:
		return "WriteAck"
	case MsgDelegated:
		return "Delegated"
	case MsgProbe:
		return "Probe"
	case MsgProbeNack:
		return "ProbeNack"
	}
	return "???"
}

// ReplyKind records how a reply was served, for the Figure 14 miss
// breakdown and the delegation statistics.
type ReplyKind uint8

const (
	// ReplyLLCHit was served directly by the LLC slice.
	ReplyLLCHit ReplyKind = iota
	// ReplyDRAM was served by DRAM after an LLC miss.
	ReplyDRAM
	// ReplyRemoteHit was served by a remote GPU L1 (delegation or
	// delayed-hit forwarding).
	ReplyRemoteHit
	// ReplyRemoteMiss was served by the LLC after a delegated reply
	// missed in the remote L1 (the DNF path).
	ReplyRemoteMiss
	// ReplyProbeHit was served by a remote L1 answering an RP probe.
	ReplyProbeHit
)

// Msg is the payload of every packet in the system.
type Msg struct {
	Type MsgType
	Line cache.Addr
	// Requester is the node that ultimately needs the data. For
	// delegated replies this implements the paper's "sender ID is the
	// requesting core" encoding; for DNF re-requests it tells the LLC
	// where to send the reply.
	Requester int
	// DNF (Do-Not-Forward) marks a remote-miss re-request; the LLC
	// must process it without delegating again.
	DNF bool
	// Kind records how a MsgReply was served.
	Kind ReplyKind
	// Sharer is the previous LLC core pointer captured when the reply
	// was generated (-1 when invalid): the delegation target.
	Sharer int
	// Born is the cycle the original load was issued, carried through
	// the delegation chain for end-to-end latency accounting.
	Born int64
}
