// Package core implements the paper's contribution — Delegated Replies —
// together with the memory nodes (LLC slice + core pointers + memory
// controller), the GPU cores (private or shared L1, MSHRs, FRQ,
// Realistic Probing), and the full-system assembly that ties the NoC,
// workload, CPU, and DRAM substrates into one cycle-driven simulation.
package core

import (
	"delrep/internal/cache"
	"delrep/internal/noc"
)

// MsgType enumerates the protocol messages carried as packet payloads.
type MsgType uint8

const (
	// MsgGPURead is a GPU L1 read miss sent to a memory node
	// (1 flit, request network). With DNF set it is a remote-miss
	// re-request that the LLC must serve directly.
	MsgGPURead MsgType = iota
	// MsgGPUWrite is a write-through GPU store carrying a full line
	// (header + data flits, request network).
	MsgGPUWrite
	// MsgCPURead is a CPU read miss (1 flit, request network,
	// CPU priority).
	MsgCPURead
	// MsgReply carries a data line back to a requester (header + data
	// flits, reply network).
	MsgReply
	// MsgWriteAck acknowledges a write-through (1 flit, reply network).
	MsgWriteAck
	// MsgDelegated is a delegated reply: a 1-flit request-network
	// message sent by a memory node to the likely sharer, carrying the
	// original requester's identity (the paper's sender-ID encoding).
	MsgDelegated
	// MsgProbe is a Realistic Probing query to a remote L1 (1 flit,
	// request network).
	MsgProbe
	// MsgProbeNack reports a probe miss (1 flit, reply network).
	MsgProbeNack
)

func (t MsgType) String() string {
	switch t {
	case MsgGPURead:
		return "GPURead"
	case MsgGPUWrite:
		return "GPUWrite"
	case MsgCPURead:
		return "CPURead"
	case MsgReply:
		return "Reply"
	case MsgWriteAck:
		return "WriteAck"
	case MsgDelegated:
		return "Delegated"
	case MsgProbe:
		return "Probe"
	case MsgProbeNack:
		return "ProbeNack"
	}
	return "???"
}

// ReplyKind records how a reply was served, for the Figure 14 miss
// breakdown and the delegation statistics.
type ReplyKind uint8

const (
	// ReplyLLCHit was served directly by the LLC slice.
	ReplyLLCHit ReplyKind = iota
	// ReplyDRAM was served by DRAM after an LLC miss.
	ReplyDRAM
	// ReplyRemoteHit was served by a remote GPU L1 (delegation or
	// delayed-hit forwarding).
	ReplyRemoteHit
	// ReplyRemoteMiss was served by the LLC after a delegated reply
	// missed in the remote L1 (the DNF path).
	ReplyRemoteMiss
	// ReplyProbeHit was served by a remote L1 answering an RP probe.
	ReplyProbeHit
)

func (k ReplyKind) String() string {
	switch k {
	case ReplyLLCHit:
		return "LLCHit"
	case ReplyDRAM:
		return "DRAM"
	case ReplyRemoteHit:
		return "RemoteHit"
	case ReplyRemoteMiss:
		return "RemoteMiss"
	case ReplyProbeHit:
		return "ProbeHit"
	}
	return "???"
}

// NetAcct accumulates where a transaction's cycles went across every
// network leg it traversed (request, delegation, DNF re-request,
// reply). The residual of the end-to-end latency not covered here is
// node service time (LLC pipeline, DRAM, FRQ wait). Measurement-only:
// it never influences behaviour.
type NetAcct struct {
	Queue     int64 // cycles waiting in source injection queues (+ ReadyAt delay)
	Xfer      int64 // head-flit network transit cycles, injection to ejection
	Ser       int64 // tail serialization cycles beyond the head (SizeFlits-1 per leg)
	DelegWait int64 // cycles stuck replies sat queued before being delegated
	Hops      int   // router traversals summed over legs
	Legs      int   // network legs traversed
	Delegs    int   // delegations performed on this transaction
}

// Absorb folds one completed network leg into the account. Packet
// head-flit transit is Injected..Ejected minus the tail flits that
// eject after the head ((SizeFlits-1) serialization cycles).
// Packet.Hops counts per-flit traversals, so router hops are
// Hops/SizeFlits (exact: wormhole routing sends every flit of a packet
// over the same path).
func (a *NetAcct) Absorb(p *noc.Packet) {
	if p.SizeFlits <= 0 {
		return // synthetic packet (tests); nothing to attribute
	}
	start := p.Enqueued
	if p.ReadyAt > start {
		start = p.ReadyAt
	}
	ser := int64(p.SizeFlits - 1)
	// NetAcct is per-transaction state that dies with its Msg; there is
	// no run-level total to clear at the warm-up boundary (loadBreak,
	// which aggregates completed accounts, is reset by ResetStats).
	//simlint:ignore statsdiscipline per-message accumulator, not a run counter
	a.Queue += p.Injected - start
	//simlint:ignore statsdiscipline per-message accumulator, not a run counter
	a.Xfer += p.Ejected - p.Injected - ser
	//simlint:ignore statsdiscipline per-message accumulator, not a run counter
	a.Ser += ser
	//simlint:ignore statsdiscipline per-message accumulator, not a run counter
	a.Hops += p.Hops / p.SizeFlits
	//simlint:ignore statsdiscipline per-message accumulator, not a run counter
	a.Legs++
}

// Msg is the payload of every packet in the system.
type Msg struct {
	Type MsgType
	Line cache.Addr
	// Requester is the node that ultimately needs the data. For
	// delegated replies this implements the paper's "sender ID is the
	// requesting core" encoding; for DNF re-requests it tells the LLC
	// where to send the reply.
	Requester int
	// DNF (Do-Not-Forward) marks a remote-miss re-request; the LLC
	// must process it without delegating again.
	DNF bool
	// Kind records how a MsgReply was served.
	Kind ReplyKind
	// Sharer is the previous LLC core pointer captured when the reply
	// was generated (-1 when invalid): the delegation target.
	Sharer int
	// Born is the cycle the original load was issued, carried through
	// the delegation chain for end-to-end latency accounting.
	Born int64
	// Acct carries the transaction's network-latency breakdown across
	// legs (copied into every derived message).
	Acct NetAcct

	// acctDone guards against double-absorbing the carrying packet
	// when a refused handler re-sees it next cycle.
	acctDone bool
}

// absorbPacket folds the carrying packet's just-completed network leg
// into the message's account, exactly once. Handlers call it on entry:
// a handler that refuses a packet (back-pressure) sees it again, so
// the guard keeps re-deliveries from double-counting.
func (m *Msg) absorbPacket(p *noc.Packet) {
	if m.acctDone {
		return
	}
	m.acctDone = true
	m.Acct.Absorb(p)
}
