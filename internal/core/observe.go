package core

import (
	"fmt"

	"delrep/internal/noc"
	"delrep/internal/obs"
)

// AttachObserver wires an observability layer into the system: metric
// probes over the NoC, memory nodes, and GPU cores; lifecycle tracing
// of sampled packets; and clog-detector sources at every memory node's
// reply port. Call once, after NewSystem and before running. The
// observer is strictly measurement-only — cycle counts and statistics
// are bit-identical with and without it (the determinism audit checks
// this).
func (s *System) AttachObserver(o *obs.Observer) {
	s.obs = o
	// Trace hooks dereference packets inside the network tick, which in
	// tiled mode is the concurrent compute phase; an observed run
	// therefore drops to serial ticking. Digest-inert: parallelism
	// never changes results, only wall time.
	if s.parallel > 1 {
		s.SetParallel(1)
	}
	o.Describe = describePayload
	s.ReqNet.TraceSink = o.PacketCompleted
	if s.RepNet != s.ReqNet {
		s.RepNet.TraceSink = o.PacketCompleted
	}
	s.registerNetProbes(o)
	s.registerMemProbes(o)
	s.registerGPUProbes(o)
	s.registerLatencyProbes(o)
	s.registerClogSources(o)
}

// describePayload renders a packet payload for trace records.
func describePayload(payload any) string {
	m, ok := payload.(*Msg)
	if !ok {
		return ""
	}
	if m.Type == MsgReply {
		return m.Type.String() + "/" + m.Kind.String()
	}
	return m.Type.String()
}

// registerNetProbes adds per-network, per-class NI injection/ejection
// flit rates (flits per cycle across all NIs).
func (s *System) registerNetProbes(o *obs.Observer) {
	nets := []struct {
		name string
		net  *noc.Network
	}{{"req", s.ReqNet}}
	if s.RepNet != s.ReqNet {
		nets = append(nets, struct {
			name string
			net  *noc.Network
		}{"rep", s.RepNet})
	} else {
		nets[0].name = "noc"
	}
	for _, n := range nets {
		net := n.net
		for _, cls := range []noc.Class{noc.ClassRequest, noc.ClassReply} {
			cls := cls
			o.Reg.Rate(fmt.Sprintf("%s/inj_flits/%s", n.name, cls),
				func() float64 { return float64(net.InjectedFlits(cls)) })
			o.Reg.Rate(fmt.Sprintf("%s/ej_flits/%s", n.name, cls),
				func() float64 { return float64(net.EjectedFlits(cls)) })
		}
	}
}

// registerMemProbes adds, per memory node: mean reply-link utilization,
// reply injection-queue depth, blocked-cycle fraction, LLC MSHR
// occupancy, reply-router queued flits, and delegation rate.
func (s *System) registerMemProbes(o *obs.Observer) {
	for _, m := range s.Mems {
		m := m
		name := fmt.Sprintf("mem%d", m.Idx)
		rtr, _ := s.RepNet.Topology().NodePort(m.Node)
		ports := s.wiredPorts(rtr)
		nports := len(ports)
		o.Reg.RatioDelta(name+"/reply_link_util",
			func() float64 {
				var sent int64
				for _, p := range ports {
					sent += s.RepNet.PortSent(rtr, p)
				}
				return float64(sent)
			},
			func() float64 { return float64(s.RepNet.MeasuredCycles() * int64(nports)) })
		o.Reg.Gauge(name+"/replyq",
			func() float64 { return float64(s.repNI(m.Node).InjLen(noc.ClassReply)) })
		o.Reg.Rate(name+"/blocked",
			func() float64 { return float64(m.Stats.BlockedCycles) })
		o.Reg.Gauge(name+"/llc_mshr",
			func() float64 { return float64(m.mshr.Len()) })
		router := s.RepNet.Routers[rtr]
		o.Reg.Gauge(name+"/router_qdepth",
			func() float64 { return float64(router.BufferedFlits()) })
		o.Reg.Rate(name+"/delegations",
			func() float64 { return float64(m.Stats.Delegations) })
	}
}

// registerGPUProbes adds aggregate GPU-side occupancy gauges.
func (s *System) registerGPUProbes(o *obs.Observer) {
	if len(s.GPUs) == 0 {
		return
	}
	o.Reg.Gauge("gpu/mshr_occ", func() float64 {
		var occ int
		for _, g := range s.GPUs {
			occ += g.mshr.Len()
		}
		return float64(occ) / float64(len(s.GPUs))
	})
	o.Reg.Gauge("gpu/frq_occ", func() float64 {
		var occ int
		for _, g := range s.GPUs {
			occ += len(g.frq)
		}
		return float64(occ)
	})
}

// registerLatencyProbes adds the windowed mean end-to-end GPU load
// latency per reply kind.
func (s *System) registerLatencyProbes(o *obs.Observer) {
	for k := ReplyLLCHit; k <= ReplyProbeHit; k++ {
		k := k
		o.Reg.RatioDelta("load_lat/"+k.String(),
			func() float64 { return s.loadLat[k].Sum() },
			func() float64 { return float64(s.loadLat[k].Count()) })
	}
}

// registerClogSources points the clog detector at every memory node's
// reply port: its outgoing reply links, bounded injection queue, and
// blocked counter.
func (s *System) registerClogSources(o *obs.Observer) {
	for _, m := range s.Mems {
		m := m
		rtr, _ := s.RepNet.Topology().NodePort(m.Node)
		var portFns []func() float64
		for _, p := range s.wiredPorts(rtr) {
			p := p
			portFns = append(portFns, func() float64 {
				return float64(s.RepNet.PortSent(rtr, p))
			})
		}
		repNI := s.repNI(m.Node)
		o.Clog.AddSource(obs.ClogSource{
			Name:    fmt.Sprintf("mem%d", m.Idx),
			Ports:   portFns,
			QLen:    func() int { return repNI.InjLen(noc.ClassReply) },
			QCap:    repNI.InjCap(noc.ClassReply),
			Blocked: func() float64 { return float64(m.Stats.BlockedCycles) },
		})
	}
}

// wiredPorts lists the inter-router output ports of a reply-network
// router (the links a memory node's replies leave on).
func (s *System) wiredPorts(rtr int) []int {
	topo := s.RepNet.Topology()
	var ports []int
	for p := 0; p < topo.NumPorts(rtr); p++ {
		if _, _, ok := topo.Wire(rtr, p); ok {
			ports = append(ports, p)
		}
	}
	return ports
}
