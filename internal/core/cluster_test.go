package core

import (
	"testing"

	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/gpu"
)

func clusterSystem(t *testing.T, org config.L1Org) *System {
	t.Helper()
	cfg := shortCfg(config.SchemeDelegatedReplies)
	cfg.GPU.Org = org
	return NewSystem(cfg, "SC", "bodytrack")
}

func TestClusterConstruction(t *testing.T) {
	sys := clusterSystem(t, config.L1DCL1)
	if len(sys.Clusters) != 5 { // 40 GPU cores / 8
		t.Fatalf("%d clusters, want 5", len(sys.Clusters))
	}
	c := sys.Clusters[0]
	if !c.Shared() {
		t.Fatal("DC-L1 must start shared")
	}
	if len(c.slices) != ClusterSlices {
		t.Fatalf("%d slices", len(c.slices))
	}
	// Aggregate slice capacity preserves the private total.
	want := sys.Cfg.GPU.L1Bytes * ClusterCores
	got := 0
	for _, sl := range c.slices {
		g := sl.cache.Config()
		got += g.SizeBytes
	}
	if got != want {
		t.Fatalf("shared capacity %d, want %d", got, want)
	}
}

func TestDynEBStartsPrivate(t *testing.T) {
	sys := clusterSystem(t, config.L1DynEB)
	if sys.Clusters[0].Shared() {
		t.Fatal("DynEB must start in the private (baseline) organisation")
	}
}

func TestClusterSliceQueueBlocks(t *testing.T) {
	sys := clusterSystem(t, config.L1DCL1)
	c := sys.Clusters[0]
	g := c.cores[0]
	// Find distinct lines hashing to one slice and fill its queue.
	target := c.slices[0]
	var lines []cache.Addr
	for l := cache.Addr(1); len(lines) < sliceQCap+1; l++ {
		if c.sliceFor(l) == target {
			lines = append(lines, l)
		}
	}
	for i := 0; i < sliceQCap; i++ {
		g.BeginCycle()
		if res := c.Access(g, lines[i], false, i%4); res != gpu.AccessMiss {
			t.Fatalf("access %d = %v, want queued miss", i, res)
		}
	}
	g.BeginCycle()
	if res := c.Access(g, lines[sliceQCap], false, 0); res != gpu.AccessBlocked {
		t.Fatalf("access on full slice queue = %v, want blocked", res)
	}
	if c.Stats.QueueFullEv == 0 {
		t.Fatal("queue-full event not counted")
	}
}

func TestClusterServeSliceWakesOwner(t *testing.T) {
	sys := clusterSystem(t, config.L1DCL1)
	c := sys.Clusters[0]
	owner := c.cores[3]
	line := cache.Addr(4242)
	sl := c.sliceFor(line)
	sl.cache.Insert(line, 0, false)
	// Give the owner's warp an outstanding load to be woken from.
	owner.SM.Tick() // initialize some issue state (harmless)
	// Direct wake path: enqueue and serve; LoadDone panics if nothing
	// outstanding, so fabricate an outstanding load via the SM API by
	// issuing through Access on a miss first is complex — instead verify
	// the hit is counted and the queue drains.
	sl.q = append(sl.q, sliceReq{core: owner, warp: 0, line: line})
	defer func() {
		if recover() == nil {
			t.Fatal("expected LoadDone panic for warp with no outstanding load (wake path reached)")
		}
	}()
	c.serveSlice(sl)
}

func TestClusterProbe(t *testing.T) {
	sys := clusterSystem(t, config.L1DCL1)
	c := sys.Clusters[0]
	line := cache.Addr(999)
	if c.Probe(line) {
		t.Fatal("probe hit in empty cluster")
	}
	c.sliceFor(line).cache.Insert(line, 0, false)
	if !c.Probe(line) {
		t.Fatal("probe missed resident line")
	}
}

func TestClusterServeRemote(t *testing.T) {
	sys := clusterSystem(t, config.L1DCL1)
	c := sys.Clusters[0]
	g := c.cores[0]
	line := cache.Addr(31337)
	requester := sys.GPUs[20].Node
	// Remote miss path: DNF re-send.
	g.BeginCycle()
	if !c.ServeRemote(g, &Msg{Type: MsgDelegated, Line: line, Requester: requester}) {
		t.Fatal("remote miss not consumed")
	}
	if g.Stats.FRQRemoteMisses != 1 {
		t.Fatal("remote miss not counted")
	}
	// Remote hit path.
	c.sliceFor(line).cache.Insert(line, 0, false)
	if !c.ServeRemote(g, &Msg{Type: MsgDelegated, Line: line, Requester: requester}) {
		t.Fatal("remote hit not consumed")
	}
	if g.Stats.FRQRemoteHits != 1 {
		t.Fatal("remote hit not counted")
	}
	rep := g.outRep[len(g.outRep)-1]
	if rep.Dst != requester {
		t.Fatalf("reply sent to %d, want %d", rep.Dst, requester)
	}
}

func TestDynEBSwitchesModes(t *testing.T) {
	cfg := shortCfg(config.SchemeBaseline)
	cfg.GPU.Org = config.L1DynEB
	cfg.GPU.DynEBEpoch = 256 // fast epochs for the test
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 6000
	sys := NewSystem(cfg, "SC", "bodytrack")
	sys.Run(6000)
	switches := int64(0)
	for _, c := range sys.Clusters {
		switches += c.Stats.ModeSwitches
	}
	if switches == 0 {
		t.Fatal("DynEB never sampled the alternate organisation")
	}
}

func TestClusterHandleFillUnknownLine(t *testing.T) {
	sys := clusterSystem(t, config.L1DCL1)
	c := sys.Clusters[0]
	handled, _ := c.HandleFill(c.cores[0], &Msg{Type: MsgReply, Line: 777})
	if handled {
		t.Fatal("fill for unknown line claimed by cluster")
	}
}

func TestSharedOrgEndToEnd(t *testing.T) {
	// A DC-L1 run must complete misses through the slice path: slice
	// hits plus slice misses both non-zero, and warps make progress.
	cfg := shortCfg(config.SchemeBaseline)
	cfg.GPU.Org = config.L1DCL1
	sys := NewSystem(cfg, "SC", "bodytrack")
	sys.RunWorkload()
	var hits, misses int64
	for _, c := range sys.Clusters {
		hits += c.Stats.SliceHits
		misses += c.Stats.SliceMisses
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("slice hits=%d misses=%d", hits, misses)
	}
	var insts int64
	for _, g := range sys.GPUs {
		insts += g.SM.Insts
	}
	if insts == 0 {
		t.Fatal("no progress under DC-L1")
	}
}
