package core

import (
	"delrep/internal/config"
	"delrep/internal/noc"
	"delrep/internal/stats"
)

// Breakdown is the Figure 14 L1 read-miss service breakdown.
type Breakdown struct {
	LLCDirect  int64 // served by the LLC/DRAM without forwarding
	RemoteHit  int64 // served by a remote L1
	RemoteMiss int64 // forwarded but missed remotely (DNF re-served)
}

// Total returns the number of classified replies.
func (b Breakdown) Total() int64 { return b.LLCDirect + b.RemoteHit + b.RemoteMiss }

// ForwardedFrac returns the fraction of misses forwarded to remote L1s.
func (b Breakdown) ForwardedFrac() float64 {
	return stats.Ratio(b.RemoteHit+b.RemoteMiss, b.Total())
}

// RemoteHitFrac returns the fraction of forwarded misses that hit.
func (b Breakdown) RemoteHitFrac() float64 {
	return stats.Ratio(b.RemoteHit, b.RemoteHit+b.RemoteMiss)
}

// LatBreak is the per-load latency attribution (the paper's Figure 4
// story): where the cycles of a GPU load's end-to-end latency went.
// Averages are per completed load; ServiceAvg is the residual not
// spent in the network or delegation wait (LLC pipeline, DRAM, FRQ
// service at the remote core).
type LatBreak struct {
	Count        int64
	TotalAvg     float64 // end-to-end cycles
	QueueAvg     float64 // source injection-queue wait, summed over legs
	XferAvg      float64 // head-flit network transit, summed over legs
	SerAvg       float64 // tail serialization beyond the head
	DelegWaitAvg float64 // time stuck in reply buffers before delegation
	ServiceAvg   float64 // residual: node service time
	HopsAvg      float64 // router traversals per load
	LegsAvg      float64 // network legs per load
	DelegFrac    float64 // delegations per load
}

func (s *System) latBreak(b *breakAcc) LatBreak {
	if b.n == 0 {
		return LatBreak{}
	}
	n := float64(b.n)
	lb := LatBreak{
		Count:        b.n,
		TotalAvg:     float64(b.total) / n,
		QueueAvg:     float64(b.queue) / n,
		XferAvg:      float64(b.xfer) / n,
		SerAvg:       float64(b.ser) / n,
		DelegWaitAvg: float64(b.delegWait) / n,
		HopsAvg:      float64(b.hops) / n,
		LegsAvg:      float64(b.legs) / n,
		DelegFrac:    float64(b.delegs) / n,
	}
	lb.ServiceAvg = float64(b.total-b.queue-b.xfer-b.ser-b.delegWait) / n
	return lb
}

// Results summarises one measured simulation window.
type Results struct {
	Cycles int64

	// GPU side.
	GPUInsts        int64
	GPUIPC          float64 // aggregate instructions per cycle
	GPURecvRate     float64 // reply flits received per GPU core per cycle (Fig. 11)
	L1MissRate      float64
	Breakdown       Breakdown
	Delegations     int64
	InterCoreLocal  float64 // Figure 2 metric
	FRQSameLineFrac float64

	// CPU side.
	CPUThroughput float64 // completed requests per cycle, all cores
	CPULatAvg     float64 // network round-trip latency (Fig. 12)
	CPULatMax     float64

	// Memory nodes and NoC.
	MemBlockedRate   float64 // fraction of cycles reply buffers were full (Fig. 5b)
	MemReplyLinkUtil float64 // mean utilization of memory-node reply ports
	ReqFlits         int64
	RepFlits         int64
	FlitHops         int64
	LLCHitRate       float64

	// RP diagnostics.
	ProbesSent int64
	ProbeHits  int64

	// End-to-end GPU load latency by reply kind (diagnostics).
	LatLLCHit     float64
	LatDRAM       float64
	LatRemoteHit  float64
	LatRemoteMiss float64
	GPULoadLatAvg float64

	// Latency attribution across all completed GPU loads and per reply
	// kind (indexed by ReplyKind).
	LoadBreak       LatBreak
	LoadBreakByKind [5]LatBreak

	// DRAM.
	DRAMBusUtil float64
	DRAMAvgLat  float64

	// MSHR behaviour: primary misses allocate; secondary accesses merge.
	MSHRAllocs      int64
	MSHRMerges      int64
	PrimaryMissRate float64

	// Network transit latency (enqueue to ejection) per class for GPU
	// packets: localizes where request/response time is spent.
	ReqNetLatGPU float64
	RepNetLatGPU float64
}

// Collect computes Results over the window since the last ResetStats.
func (s *System) Collect() Results {
	cycles := s.cycle - s.warmed
	r := Results{Cycles: cycles}
	if cycles <= 0 {
		return r
	}
	var l1Acc, l1Miss, frqSame, frqTotal int64
	for _, g := range s.GPUs {
		r.GPUInsts += g.SM.Insts
		r.Breakdown.LLCDirect += g.Stats.RepliesLLCHit + g.Stats.RepliesDRAM
		r.Breakdown.RemoteHit += g.Stats.RepliesRemoteHit
		r.Breakdown.RemoteMiss += g.Stats.RepliesRemoteMiss
		r.ProbesSent += g.Stats.ProbesSent
		r.ProbeHits += g.Stats.ProbeHits
		l1Acc += g.Stats.L1Accesses
		l1Miss += g.Stats.L1ReadMisses
		frqSame += g.Stats.FRQSameLine
		frqTotal += g.Stats.FRQRemoteHits + g.Stats.FRQRemoteMisses + g.Stats.FRQDelayedHits
	}
	r.FRQSameLineFrac = stats.Ratio(frqSame, frqTotal)
	for _, g := range s.GPUs {
		r.MSHRAllocs += g.mshr.Allocs
		r.MSHRMerges += g.mshr.Merges
	}
	r.PrimaryMissRate = stats.Ratio(r.MSHRAllocs, l1Acc)
	r.GPUIPC = float64(r.GPUInsts) / float64(cycles)
	r.L1MissRate = stats.Ratio(l1Miss, l1Acc)
	var recv int64
	for _, g := range s.GPUs {
		recv += s.repNI(g.Node).EjFlitsByClass[noc.ClassReply]
	}
	if len(s.GPUs) > 0 {
		r.GPURecvRate = float64(recv) / float64(cycles) / float64(len(s.GPUs))
	}
	r.InterCoreLocal = stats.Ratio(s.loc.hits, s.loc.samples)

	var lat stats.Sampler
	var completed int64
	for _, c := range s.CPUs {
		completed += c.Completed
		if c.Lat.Count() > 0 {
			lat.Add(c.Lat.Mean())
		}
	}
	r.CPUThroughput = float64(completed) / float64(cycles)
	r.CPULatAvg = lat.Mean()
	r.CPULatMax = lat.Max()

	var blocked, llcHits, llcReq int64
	for _, m := range s.Mems {
		blocked += m.Stats.BlockedCycles
		r.Delegations += m.Stats.Delegations
		llcHits += m.Stats.LLCHits
		llcReq += m.Stats.LLCHits + m.Stats.LLCMisses
	}
	r.MemBlockedRate = float64(blocked) / float64(cycles*int64(len(s.Mems)))
	r.LLCHitRate = stats.Ratio(llcHits, llcReq)
	r.MemReplyLinkUtil = s.memReplyLinkUtil()
	r.ReqFlits = s.ReqNet.InjectedFlits(noc.ClassRequest)
	r.RepFlits = s.RepNet.InjectedFlits(noc.ClassReply)
	r.FlitHops = s.ReqNet.FlitHops()
	if s.RepNet != s.ReqNet {
		r.FlitHops += s.RepNet.FlitHops()
	}

	r.ReqNetLatGPU = s.ReqNet.PktLat[noc.PrioGPU].Mean()
	r.RepNetLatGPU = s.RepNet.PktLat[noc.PrioGPU].Mean()
	r.LatLLCHit = s.loadLat[ReplyLLCHit].Mean()
	r.LatDRAM = s.loadLat[ReplyDRAM].Mean()
	r.LatRemoteHit = combineMeans(&s.loadLat[ReplyRemoteHit], &s.loadLat[ReplyProbeHit])
	r.LatRemoteMiss = s.loadLat[ReplyRemoteMiss].Mean()
	var n int64
	var sum float64
	for i := range s.loadLat {
		n += s.loadLat[i].Count()
		sum += s.loadLat[i].Sum()
	}
	if n > 0 {
		r.GPULoadLatAvg = sum / float64(n)
	}
	var all breakAcc
	for i := range s.loadBreak {
		b := &s.loadBreak[i]
		r.LoadBreakByKind[i] = s.latBreak(b)
		all.n += b.n
		all.total += b.total
		all.queue += b.queue
		all.xfer += b.xfer
		all.ser += b.ser
		all.delegWait += b.delegWait
		all.hops += b.hops
		all.legs += b.legs
		all.delegs += b.delegs
	}
	r.LoadBreak = s.latBreak(&all)

	var busy, served, dlat int64
	for _, m := range s.Mems {
		sr := m.mc.ServedReads + m.mc.ServedWrites
		served += sr
		busy += sr * int64(s.Cfg.DRAM.BurstCyc)
		dlat += int64(m.mc.AvgLatency() * float64(sr))
	}
	r.DRAMBusUtil = float64(busy) / float64(cycles*int64(len(s.Mems)))
	if served > 0 {
		r.DRAMAvgLat = float64(dlat) / float64(served)
	}
	return r
}

func combineMeans(a, b *stats.Sampler) float64 {
	n := a.Count() + b.Count()
	if n == 0 {
		return 0
	}
	return (a.Sum() + b.Sum()) / float64(n)
}

// memReplyLinkUtil averages the utilization of the memory-node routers'
// inter-router output ports on the reply network: the links that clog.
func (s *System) memReplyLinkUtil() float64 {
	topo := s.RepNet.Topology()
	var u stats.Sampler
	for _, node := range s.memNodes {
		rtr, _ := topo.NodePort(node)
		for port := 0; port < topo.NumPorts(rtr); port++ {
			if _, _, ok := topo.Wire(rtr, port); !ok {
				continue
			}
			util := s.RepNet.PortUtilization(rtr, port)
			if util > 0 {
				u.Add(util)
			}
		}
	}
	return u.Mean()
}

// CPULatPerCore returns each CPU core's mean network latency.
func (s *System) CPULatPerCore() []float64 {
	out := make([]float64, len(s.CPUs))
	for i, c := range s.CPUs {
		out[i] = c.Lat.Mean()
	}
	return out
}

// Scheme returns the configured scheme (convenience for reports).
func (s *System) Scheme() config.Scheme { return s.Cfg.Scheme }

// MeshLinkUtil returns the per-router utilization of one mesh output
// port (noc.PortE etc.) on the request or reply network, as a
// height x width grid — the raw material for clogging heatmaps. It
// returns nil for non-mesh topologies.
func (s *System) MeshLinkUtil(reply bool, port int) [][]float64 {
	if s.Cfg.NoC.Topology != config.TopoMesh {
		return nil
	}
	net := s.ReqNet
	if reply {
		net = s.RepNet
	}
	l := s.Cfg.Layout
	grid := make([][]float64, l.Height)
	for y := range grid {
		grid[y] = make([]float64, l.Width)
		for x := range grid[y] {
			grid[y][x] = net.PortUtilization(l.ID(x, y), port)
		}
	}
	return grid
}
