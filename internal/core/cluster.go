package core

import (
	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/fifo"
	"delrep/internal/gpu"
	"delrep/internal/noc"
)

// ClusterCores is the number of GPU cores sharing one L1 (DC-L1 [30]).
const ClusterCores = 8

// ClusterSlices is the number of address-interleaved slices of the
// shared L1.
const ClusterSlices = 4

// sliceQCap bounds the per-slice request queue; a full queue is the
// serialization that makes shared L1s lose effective bandwidth on hot
// shared data (the paper's NN/2DCON slowdowns).
const sliceQCap = 8

// sliceReq is one queued access to a shared L1 slice.
type sliceReq struct {
	core *GPUCore
	warp int
	line cache.Addr
}

// slice is one bank of the shared L1.
type slice struct {
	cache *cache.Cache
	mshr  *cache.MSHR
	q     []sliceReq
	host  *GPUCore // core whose node sends/receives this slice's traffic
}

// ClusterStats counts shared-organisation events.
type ClusterStats struct {
	SliceHits    int64
	SliceMisses  int64
	QueueFullEv  int64
	ModeSwitches int64
}

// Cluster implements the shared GPU L1 organisations: DC-L1 (statically
// shared) and DynEB (epoch-sampled choice between shared and private
// based on achieved instruction throughput, i.e. effective bandwidth).
type Cluster struct {
	sys    *System
	id     int
	cores  []*GPUCore
	slices []*slice

	shared bool
	org    config.L1Org

	// DynEB sampling state.
	epochLen    int64
	epochStart  int64
	phase       int // 0: sample private, 1: sample shared, 2..7: committed
	instsAt     int64
	scorePriv   float64
	scoreShared float64

	Stats ClusterStats
}

func newCluster(sys *System, id int, cores []*GPUCore) *Cluster {
	c := &Cluster{
		sys:      sys,
		id:       id,
		cores:    cores,
		org:      sys.Cfg.GPU.Org,
		epochLen: int64(sys.Cfg.GPU.DynEBEpoch),
	}
	sliceBytes := sys.Cfg.GPU.L1Bytes * len(cores) / ClusterSlices
	for i := 0; i < ClusterSlices; i++ {
		c.slices = append(c.slices, &slice{
			cache: cache.New(cache.Config{
				SizeBytes: sliceBytes,
				Assoc:     sys.Cfg.GPU.L1Assoc * 2,
				LineBytes: sys.Cfg.GPU.L1LineBytes,
			}),
			mshr: cache.NewMSHR(sys.Cfg.GPU.L1MSHRs),
			q:    make([]sliceReq, 0, sliceQCap),
			host: cores[(i*len(cores))/ClusterSlices],
		})
	}
	c.shared = c.org == config.L1DCL1 // DynEB starts private (baseline)
	for _, g := range cores {
		g.cluster = c
	}
	return c
}

// Shared reports whether the shared organisation is currently active.
func (c *Cluster) Shared() bool { return c.shared }

func (c *Cluster) sliceFor(line cache.Addr) *slice {
	h := uint64(line) * 0x2545f4914f6cdd1d
	return c.slices[(h>>32)%uint64(len(c.slices))]
}

// Access enqueues a read on the line's slice, or performs a
// write-through. Reads always resolve asynchronously (slice port
// serialization); a full slice queue blocks the warp.
func (c *Cluster) Access(g *GPUCore, line cache.Addr, write bool, warp int) gpu.AccessResult {
	if write {
		// Write-through, no-write-allocate; the shared copy is updated
		// in place without consuming a slice port (store path).
		res := g.writeThrough(line)
		return res
	}
	sl := c.sliceFor(line)
	if len(sl.q) >= sliceQCap {
		c.Stats.QueueFullEv++
		return gpu.AccessBlocked
	}
	if g.budget <= 0 {
		return gpu.AccessBlocked
	}
	g.budget--
	g.Stats.L1Accesses++
	sl.q = append(sl.q, sliceReq{core: g, warp: warp, line: line})
	return gpu.AccessMiss
}

// Probe reports whether the line is resident in any slice.
func (c *Cluster) Probe(line cache.Addr) bool {
	hit, _ := c.sliceFor(line).cache.Peek(line)
	return hit
}

// ServeRemote serves one delegated reply against the shared L1 on
// behalf of core g (the delegation target). It reports whether the
// entry was consumed.
func (c *Cluster) ServeRemote(g *GPUCore, m *Msg) bool {
	sl := c.sliceFor(m.Line)
	if hit, _ := sl.cache.Lookup(m.Line); hit {
		if g.repFree() < 1 {
			return false
		}
		g.Stats.FRQRemoteHits++
		g.send(Msg{Type: MsgReply, Line: m.Line, Requester: m.Requester, Kind: ReplyRemoteHit, Born: m.Born, Acct: m.Acct},
			m.Requester, noc.ClassReply, noc.PrioGPU, g.sys.gpuReplyFlits)
		return true
	}
	if _, out := sl.mshr.Lookup(m.Line); out {
		sl.mshr.Merge(m.Line, mshrTarget{Warp: -1, Remote: m.Requester, Born: m.Born, Acct: m.Acct})
		g.Stats.FRQDelayedHits++
		return true
	}
	g.Stats.FRQRemoteMisses++
	g.sendLLCRead(m.Line, m.Requester, true, m.Born, m.Acct)
	return true
}

// HandleFill routes a reply arriving at a host core into the slice;
// it reports whether the line belonged to the shared organisation.
func (c *Cluster) HandleFill(host *GPUCore, m *Msg) (handled, done bool) {
	sl := c.sliceFor(m.Line)
	if _, ok := sl.mshr.Lookup(m.Line); !ok {
		return false, false
	}
	host.countReply(m.Kind)
	sl.cache.Insert(m.Line, 0, false)
	for _, t := range sl.mshr.Release(m.Line) {
		tgt := t.(mshrTarget)
		if tgt.Warp >= 0 {
			tgt.owner.SM.LoadDone(tgt.Warp)
		}
		if tgt.Remote >= 0 {
			host.send(Msg{Type: MsgReply, Line: m.Line, Requester: tgt.Remote, Kind: ReplyRemoteHit, Born: tgt.Born, Acct: tgt.Acct},
				tgt.Remote, noc.ClassReply, noc.PrioGPU, host.sys.gpuReplyFlits)
		}
	}
	return true, true
}

// Tick services each slice (one access per cycle per slice) and runs
// the DynEB mode controller.
func (c *Cluster) Tick() {
	if c.shared {
		for _, sl := range c.slices {
			c.serveSlice(sl)
		}
	}
	if c.org == config.L1DynEB {
		c.dynEB()
	}
}

func (c *Cluster) serveSlice(sl *slice) {
	if len(sl.q) == 0 {
		return
	}
	req := sl.q[0]
	if hit, _ := sl.cache.Lookup(req.line); hit {
		c.Stats.SliceHits++
		req.core.SM.LoadDone(req.warp)
		sl.q, _ = fifo.PopFront(sl.q)
		return
	}
	c.Stats.SliceMisses++
	req.core.Stats.L1ReadMisses++
	if _, out := sl.mshr.Lookup(req.line); out {
		sl.mshr.Merge(req.line, clusterTarget(req))
		sl.q, _ = fifo.PopFront(sl.q)
		return
	}
	if sl.mshr.FullNow() || sl.host.reqFree() < 1 {
		return // head-of-line stall until resources free up
	}
	c.sys.sampleLocality(req.core, req.line)
	sl.mshr.Allocate(req.line, clusterTarget(req))
	sl.host.sendLLCRead(req.line, sl.host.Node, false, c.sys.cycle, NetAcct{})
	sl.q, _ = fifo.PopFront(sl.q)
}

// dynEB samples one epoch of each organisation, then commits to the one
// that achieved higher instruction throughput for the rest of the
// 8-epoch window — the effective-bandwidth selection of [29].
func (c *Cluster) dynEB() {
	now := c.sys.cycle
	if now-c.epochStart < c.epochLen {
		return
	}
	insts := int64(0)
	for _, g := range c.cores {
		insts += g.SM.Insts
	}
	delta := float64(insts - c.instsAt)
	c.instsAt = insts
	c.epochStart = now
	switch c.phase {
	case 0:
		c.scorePriv = delta
		c.setShared(true)
	case 1:
		c.scoreShared = delta
		c.setShared(c.scoreShared >= c.scorePriv)
	}
	c.phase = (c.phase + 1) % 8
	if c.phase == 0 {
		c.setShared(false) // next window starts by sampling private
	}
}

func (c *Cluster) setShared(on bool) {
	if c.shared == on {
		return
	}
	c.shared = on
	c.Stats.ModeSwitches++
	// Organisation switches flush both structures (software coherence).
	for _, sl := range c.slices {
		sl.cache.InvalidateAll()
	}
	for _, g := range c.cores {
		g.l1.InvalidateAll()
	}
}

// ResetStats zeroes the measurement counters (end of warmup).
func (c *Cluster) ResetStats() {
	c.Stats = ClusterStats{}
	for _, sl := range c.slices {
		sl.cache.ResetStats()
		sl.mshr.ResetStats()
	}
}

// clusterTarget packs a slice request into an MSHR target that
// remembers which core's warp is waiting.
func clusterTarget(r sliceReq) mshrTarget {
	return mshrTarget{Warp: r.warp, Remote: -1, owner: r.core}
}
