package core

import "delrep/internal/noc"

// pool is the System's free-list for packets and messages. The inner
// loop creates and consumes one Packet+Msg pair per protocol step;
// recycling them through a per-System LIFO keeps the steady-state
// tick path allocation-free.
//
// Determinism: unlike sync.Pool, reuse order is a pure function of
// the simulation itself (LIFO over the deterministic retire order),
// and every field is scrubbed on free, so a recycled object is
// indistinguishable from a fresh allocation. Nothing observable —
// digests included — depends on whether pooling is enabled.
//
// Ownership rule: a packet is retired exactly once, at the point the
// protocol consumes it — a handler that refuses delivery
// (back-pressure) must not retire, because the NI redelivers the same
// packet next cycle. Two structures outlive their carrier asymmetrically:
// the FRQ retains delegated packets until served (retired in
// serveFRQ), and frqMerged retains only the Msg after its packet died
// (freed in serveMerged).
type pool struct {
	pkts []*noc.Packet
	msgs []*Msg
}

// allocPacket returns a scrubbed packet from the free list, or a new
// one when the list is empty.
func (s *System) allocPacket() *noc.Packet {
	if n := len(s.pool.pkts); n > 0 {
		p := s.pool.pkts[n-1]
		s.pool.pkts[n-1] = nil
		s.pool.pkts = s.pool.pkts[:n-1]
		return p
	}
	return &noc.Packet{}
}

// freePacket scrubs a packet and pushes it on the free list. The
// scrub drops every reference (Payload, Trace) and zeroes all
// bookkeeping so reuse cannot leak state between transactions.
func (s *System) freePacket(p *noc.Packet) {
	*p = noc.Packet{}
	s.pool.pkts = append(s.pool.pkts, p)
}

// freeMsg scrubs a message and pushes it on the free list.
func (s *System) freeMsg(m *Msg) {
	*m = Msg{}
	s.pool.msgs = append(s.pool.msgs, m)
}

// msgOf copies a message value into a pooled message. Protocol code
// builds Msg literals on the stack; this is the only place they are
// materialized on the heap.
func (s *System) msgOf(v Msg) *Msg {
	var m *Msg
	if n := len(s.pool.msgs); n > 0 {
		m = s.pool.msgs[n-1]
		s.pool.msgs[n-1] = nil
		s.pool.msgs = s.pool.msgs[:n-1]
	} else {
		m = new(Msg)
	}
	*m = v
	return m
}

// retire returns a consumed packet and its message to the free lists.
func (s *System) retire(p *noc.Packet) {
	if m, ok := p.Payload.(*Msg); ok {
		s.freeMsg(m)
	}
	s.freePacket(p)
}
