package core

import "delrep/internal/noc"

// alloc is a packet/message allocator: per-owner free lists plus a
// strided packet-ID stream. The inner loop creates and consumes one
// Packet+Msg pair per protocol step; recycling them through a LIFO
// keeps the steady-state tick path allocation-free.
//
// The canonical allocator (System.al) hands out IDs 1,2,3,... exactly
// as the old global counter did. Node-phase sharding gives each shard
// its own allocator with a disjoint strided stream (shard k of K
// starts at k+1 and strides by K) so concurrent shards never touch a
// shared counter. Packet IDs are never observable when sharding is
// active: they feed only the trace layer, and an attached observer
// forces serial execution (see SetParallel). What the digest folds is
// the total packet count across allocators, which depends only on the
// simulated protocol, not on which allocator created which packet.
//
// Determinism: unlike sync.Pool, reuse order is a pure function of
// the simulation itself (LIFO over the deterministic retire order),
// and every field is scrubbed on free, so a recycled object is
// indistinguishable from a fresh allocation. Nothing observable —
// digests included — depends on whether pooling is enabled, or on
// which allocator a free happens to return an object to: a packet may
// legally be created by one shard's allocator and retired into
// another's, because ownership transfers at serial ejection time and
// the pool barriers order the transfer.
//
// Ownership rule: a packet is retired exactly once, at the point the
// protocol consumes it — a handler that refuses delivery
// (back-pressure) must not retire, because the NI redelivers the same
// packet next cycle. Two structures outlive their carrier asymmetrically:
// the FRQ retains delegated packets until served (retired in
// serveFRQ), and frqMerged retains only the Msg after its packet died
// (freed in serveMerged).
type alloc struct {
	pkts []*noc.Packet
	msgs []*Msg

	created  uint64 // packets ever created through this allocator
	idNext   uint64 // next packet ID to hand out
	idStride uint64 // ID stream stride (1 for the canonical allocator)
}

// initIDs aims the allocator's ID stream. Streams with distinct
// (first mod stride) residues never collide and never produce 0.
func (a *alloc) initIDs(first, stride uint64) {
	a.idNext, a.idStride = first, stride
}

// nextID consumes one ID from the stream.
func (a *alloc) nextID() uint64 {
	id := a.idNext
	a.idNext += a.idStride
	a.created++
	return id
}

// allocPacket returns a scrubbed packet from the free list, or a new
// one when the list is empty.
func (a *alloc) allocPacket() *noc.Packet {
	if n := len(a.pkts); n > 0 {
		p := a.pkts[n-1]
		a.pkts[n-1] = nil
		a.pkts = a.pkts[:n-1]
		return p
	}
	return &noc.Packet{}
}

// freePacket scrubs a packet and pushes it on the free list. The
// scrub drops every reference (Payload, Trace) and zeroes all
// bookkeeping so reuse cannot leak state between transactions.
func (a *alloc) freePacket(p *noc.Packet) {
	*p = noc.Packet{}
	a.pkts = append(a.pkts, p)
}

// freeMsg scrubs a message and pushes it on the free list.
func (a *alloc) freeMsg(m *Msg) {
	*m = Msg{}
	a.msgs = append(a.msgs, m)
}

// msgOf copies a message value into a pooled message. Protocol code
// builds Msg literals on the stack; this is the only place they are
// materialized on the heap.
func (a *alloc) msgOf(v Msg) *Msg {
	var m *Msg
	if n := len(a.msgs); n > 0 {
		m = a.msgs[n-1]
		a.msgs[n-1] = nil
		a.msgs = a.msgs[:n-1]
	} else {
		m = new(Msg)
	}
	*m = v
	return m
}

// retire returns a consumed packet and its message to the free lists.
func (a *alloc) retire(p *noc.Packet) {
	if m, ok := p.Payload.(*Msg); ok {
		a.freeMsg(m)
	}
	a.freePacket(p)
}
