package core_test

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/core"
)

// ExampleSystem_SetParallel runs one configuration serially and then
// tile-parallel, and compares the end-state digests. Parallelism is a
// pure execution strategy (DESIGN.md §11): the two-phase tick commits
// cross-tile events in a fixed order, so the digest — a hash of every
// counter, queue, and latency sampler — is bit-identical at any worker
// count, and callers may pick N purely for wall-clock time.
func ExampleSystem_SetParallel() {
	cfg := config.Default()
	cfg.Scheme = config.SchemeDelegatedReplies
	cfg.WarmupCycles, cfg.MeasureCycles = 300, 800 // example-sized windows

	serial := core.NewSystem(cfg, "HS", "vips")
	serial.RunWorkload()

	tiled := core.NewSystem(cfg, "HS", "vips")
	tiled.SetParallel(4) // must precede the first cycle
	defer tiled.Close()  // release the worker pool
	tiled.RunWorkload()

	fmt.Printf("tiled across %d workers\n", tiled.Parallel())
	fmt.Printf("digests identical: %v\n", serial.StatsDigest() == tiled.StatsDigest())
	// Output:
	// tiled across 4 workers
	// digests identical: true
}
