package simspec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"delrep/internal/config"
	"delrep/internal/core"
)

// The empty spec plus a workload pairing resolves to the Table I
// baseline, with every default made explicit in the canonical form.
func TestResolveDefaults(t *testing.T) {
	cfg, norm, err := Spec{GPU: "HS", CPU: "vips"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	def := config.Default()
	if !reflect.DeepEqual(cfg, def) {
		t.Fatalf("resolved config differs from config.Default():\n got %+v\nwant %+v", cfg, def)
	}
	want := Spec{
		GPU: "HS", CPU: "vips",
		Scheme: "baseline", Layout: "Baseline", Topo: "mesh", Routing: "cdr",
		L1Org: "private", ChannelBytes: 16, VCDepth: def.NoC.FlitsPerVC,
		Warmup: def.WarmupCycles, Cycles: def.MeasureCycles, Seed: def.Seed,
	}
	if norm != want {
		t.Fatalf("canonical spec = %+v, want %+v", norm, want)
	}
}

// Alias tokens canonicalize; resolving a canonical spec is idempotent.
func TestResolveCanonicalizes(t *testing.T) {
	in := Spec{GPU: "BP", CPU: "dedup", Scheme: "DelegatedReplies", Layout: "b",
		Topo: "FBFLY", Routing: "HARE", L1Org: "DC-L1",
		Warmup: 1000, Cycles: 4000, Seed: 7}
	cfg, norm, err := in.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Scheme != "delegated" || norm.Layout != "B" || norm.Topo != "fbfly" ||
		norm.Routing != "hare" || norm.L1Org != "dcl1" {
		t.Fatalf("canonical tokens = %+v", norm)
	}
	if cfg.Scheme != config.SchemeDelegatedReplies || cfg.NoC.Topology != config.TopoFlattenedButterfly {
		t.Fatalf("config not applied: %+v", cfg)
	}
	if cfg.NoC.ReqOrder != cfg.Layout.ReqOrder || cfg.NoC.RepOrder != cfg.Layout.RepOrder {
		t.Fatal("layout dimension orders not propagated to the NoC")
	}
	cfg2, norm2, err := norm.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg2, cfg) || norm2 != norm {
		t.Fatal("resolving the canonical spec is not idempotent")
	}
}

// The parallel hint is pure execution strategy: it must not survive
// into the canonical spec (which is run identity) nor perturb the
// resolved configuration.
func TestResolveStripsParallelHint(t *testing.T) {
	plain := Spec{GPU: "HS", CPU: "vips"}
	hinted := plain
	hinted.Parallel = 8
	cfgA, normA, err := plain.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cfgB, normB, err := hinted.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if normB.Parallel != 0 {
		t.Fatalf("canonical spec kept the parallel hint: %d", normB.Parallel)
	}
	if !reflect.DeepEqual(cfgA, cfgB) || normA != normB {
		t.Fatal("specs differing only in Parallel must resolve identically")
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []Spec{
		{},                         // no benchmarks
		{GPU: "HS"},                // no CPU
		{GPU: "nope", CPU: "vips"}, // unknown GPU
		{GPU: "HS", CPU: "nope"},   // unknown CPU
		{GPU: "HS", CPU: "vips", Scheme: "turbo"},
		{GPU: "HS", CPU: "vips", Layout: "Z"},
		{GPU: "HS", CPU: "vips", Topo: "torus"},
		{GPU: "HS", CPU: "vips", Routing: "oddeven"},
		{GPU: "HS", CPU: "vips", L1Org: "shared"},
		{GPU: "HS", CPU: "vips", Cycles: -5}, // Validate rejects
	}
	for _, c := range cases {
		if _, _, err := c.Resolve(); err == nil {
			t.Errorf("Resolve(%+v) succeeded, want error", c)
		}
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"gpu":"HS","cpu":"vips","cyclez":5}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	s, err := Read(strings.NewReader(`{"gpu":"HS","cpu":"vips","warm":500,"cycles":1500}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Warmup != 500 || s.Cycles != 1500 {
		t.Fatalf("decoded spec = %+v", s)
	}
}

// The digest renders as fixed-width hex: a uint64 would overflow a
// JSON number's exact integer range.
func TestResultDigestHex(t *testing.T) {
	r := NewResult(Spec{GPU: "HS", CPU: "vips"}, core.Results{}, 0xdeadbeefcafef00d)
	if r.Digest != "deadbeefcafef00d" {
		t.Fatalf("digest = %q", r.Digest)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"digest":"deadbeefcafef00d"`) {
		t.Fatalf("marshalled result: %s", b)
	}
}

// FromConfig is the inverse of Resolve for every config a wire spec
// can express — the property the fleet client relies on to route runs
// to workers that will reconstruct the identical config from the spec.
func TestFromConfigRoundTrip(t *testing.T) {
	specs := []Spec{
		{GPU: "HS", CPU: "vips"},
		{GPU: "BP", CPU: "dedup", Scheme: "delegated", Layout: "B",
			Topo: "fbfly", Routing: "hare", L1Org: "dcl1",
			ChannelBytes: 32, VCDepth: 8, Warmup: 1000, Cycles: 4000, Seed: 7},
		{GPU: "LUD", CPU: "x264", Scheme: "rp", Warmup: 500, Cycles: 2500, Seed: 3},
	}
	for _, in := range specs {
		cfg, norm, err := in.Resolve()
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		back, err := FromConfig(cfg, norm.GPU, norm.CPU)
		if err != nil {
			t.Fatalf("%+v: FromConfig: %v", in, err)
		}
		if back != norm {
			t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", back, norm)
		}
	}
}

// A config mutated off the expressible surface must be rejected, not
// silently approximated — shipping a near-miss spec to a worker would
// return results for the wrong simulation.
func TestFromConfigRejectsInexpressible(t *testing.T) {
	cfg, norm, err := Spec{GPU: "HS", CPU: "vips"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoC.VCsPerClass = 3 // a knob with no wire-spec field
	if _, err := FromConfig(cfg, norm.GPU, norm.CPU); err == nil {
		t.Fatal("FromConfig accepted a config the wire spec cannot express")
	} else if !strings.Contains(err.Error(), "cannot express") {
		t.Fatalf("unexpected error: %v", err)
	}
}
