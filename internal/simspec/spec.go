// Package simspec defines the JSON wire form of one simulation
// request — the spec — shared by the delrepsim CLI (-spec/-json) and
// the delrepd daemon (POST /v1/jobs). A spec names the workload
// pairing and the configuration knobs the CLIs expose; everything it
// leaves unset takes the Table I default, so the empty spec plus a
// workload pairing is the paper's baseline machine.
//
// The package also owns the flag-token parsers (scheme, layout,
// topology, routing, L1 organisation) so the CLI flags and the JSON
// spec accept exactly the same vocabulary, and the canonical Result
// rendering, so a result served by the daemon is byte-comparable with
// one printed by delrepsim -json.
package simspec

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/workload"
)

// Spec is the JSON form of one simulation request. Zero-valued fields
// default to the delrepsim flag defaults (the Table I baseline).
type Spec struct {
	GPU          string `json:"gpu"`
	CPU          string `json:"cpu"`
	Scheme       string `json:"scheme,omitempty"`  // baseline | delegated | rp
	Layout       string `json:"layout,omitempty"`  // Baseline | B | C | D
	Topo         string `json:"topo,omitempty"`    // mesh | fbfly | dragonfly | crossbar
	Routing      string `json:"routing,omitempty"` // cdr | dyxy | footprint | hare
	L1Org        string `json:"l1org,omitempty"`   // private | dcl1 | dyneb
	ChannelBytes int    `json:"channel,omitempty"` // NoC channel width in bytes
	VCDepth      int    `json:"vcdepth,omitempty"` // VC buffer depth in flits (0 = default)
	Warmup       int64  `json:"warm,omitempty"`    // warmup cycles
	Cycles       int64  `json:"cycles,omitempty"`  // measured cycles
	Seed         int64  `json:"seed,omitempty"`    // random seed (0 means the default, 1)

	// Parallel requests intra-run parallelism: the network tick is
	// tile-partitioned across up to this many workers. It is an
	// execution hint, not a configuration knob — results are
	// bit-identical at any value — so Resolve strips it from the
	// canonical spec: two requests differing only in Parallel are the
	// same simulation, and the daemon may clamp it (admission control)
	// without changing what the job returns.
	Parallel int `json:"parallel,omitempty"`
}

// Resolve validates the spec and renders it onto a complete
// configuration. It returns the configuration, the canonicalized spec
// (every default made explicit, every token in canonical spelling) and
// the first validation error. Two specs with equal canonical forms
// resolve to identical configurations, so the canonical spec is a
// stable identity for display and comparison.
func (s Spec) Resolve() (config.Config, Spec, error) {
	var zero config.Config
	norm := s
	if norm.GPU == "" {
		return zero, s, fmt.Errorf("spec: missing gpu benchmark")
	}
	if norm.CPU == "" {
		return zero, s, fmt.Errorf("spec: missing cpu benchmark")
	}
	if !knownGPU(norm.GPU) {
		return zero, s, fmt.Errorf("spec: unknown gpu benchmark %q (see delrepsim -list)", norm.GPU)
	}
	if !knownCPU(norm.CPU) {
		return zero, s, fmt.Errorf("spec: unknown cpu benchmark %q (see delrepsim -list)", norm.CPU)
	}

	cfg := config.Default()
	def := cfg

	scheme, err := ParseScheme(orDefault(norm.Scheme, "baseline"))
	if err != nil {
		return zero, s, fmt.Errorf("spec: %v", err)
	}
	cfg.Scheme = scheme
	norm.Scheme = canonScheme(scheme)

	layout, err := ParseLayout(orDefault(norm.Layout, "Baseline"))
	if err != nil {
		return zero, s, fmt.Errorf("spec: %v", err)
	}
	cfg.Layout = layout
	cfg.NoC.ReqOrder = layout.ReqOrder
	cfg.NoC.RepOrder = layout.RepOrder
	norm.Layout = layout.Name

	topo, err := ParseTopo(orDefault(norm.Topo, "mesh"))
	if err != nil {
		return zero, s, fmt.Errorf("spec: %v", err)
	}
	cfg.NoC.Topology = topo
	norm.Topo = canonTopo(topo)

	routing, err := ParseRouting(orDefault(norm.Routing, "cdr"))
	if err != nil {
		return zero, s, fmt.Errorf("spec: %v", err)
	}
	cfg.NoC.Routing = routing
	norm.Routing = canonRouting(routing)

	org, err := ParseOrg(orDefault(norm.L1Org, "private"))
	if err != nil {
		return zero, s, fmt.Errorf("spec: %v", err)
	}
	cfg.GPU.Org = org
	norm.L1Org = canonOrg(org)

	if norm.ChannelBytes == 0 {
		norm.ChannelBytes = def.NoC.ChannelBytes
	}
	cfg.NoC.ChannelBytes = norm.ChannelBytes
	if norm.VCDepth == 0 {
		norm.VCDepth = def.NoC.FlitsPerVC
	}
	cfg.NoC.FlitsPerVC = norm.VCDepth
	if norm.Warmup == 0 {
		norm.Warmup = def.WarmupCycles
	}
	cfg.WarmupCycles = norm.Warmup
	if norm.Cycles == 0 {
		norm.Cycles = def.MeasureCycles
	}
	cfg.MeasureCycles = norm.Cycles
	if norm.Seed == 0 {
		norm.Seed = def.Seed
	}
	cfg.Seed = norm.Seed
	// Execution hints are not identity: the canonical spec describes
	// *what* is simulated, and served results must stay byte-comparable
	// with direct runs regardless of how either was executed.
	norm.Parallel = 0

	if err := cfg.Validate(); err != nil {
		return zero, s, fmt.Errorf("spec: %v", err)
	}
	return cfg, norm, nil
}

// FromConfig renders a resolved configuration back into its canonical
// wire spec — the inverse of Resolve, used by fleet clients that hold
// a runner.Spec (full Config) and need the JSON form to ship. Not
// every Config is expressible: experiments mutate knobs (L1 geometry,
// VC counts, buffer depths, …) the wire spec does not carry, and
// shipping a lossy spec would silently simulate the wrong machine. So
// the candidate spec is re-resolved and the round trip verified
// field-for-field; any residue returns an error and the caller runs
// that configuration locally instead.
func FromConfig(cfg config.Config, gpu, cpu string) (Spec, error) {
	s := Spec{
		GPU:          gpu,
		CPU:          cpu,
		Scheme:       canonScheme(cfg.Scheme),
		Layout:       cfg.Layout.Name,
		Topo:         canonTopo(cfg.NoC.Topology),
		Routing:      canonRouting(cfg.NoC.Routing),
		L1Org:        canonOrg(cfg.GPU.Org),
		ChannelBytes: cfg.NoC.ChannelBytes,
		VCDepth:      cfg.NoC.FlitsPerVC,
		Warmup:       cfg.WarmupCycles,
		Cycles:       cfg.MeasureCycles,
		Seed:         cfg.Seed,
	}
	back, _, err := s.Resolve()
	if err != nil {
		return Spec{}, fmt.Errorf("spec: config does not round-trip: %v", err)
	}
	// %+v equality is exactly the runner cache-key equality: equal
	// renderings are guaranteed to be the same simulation.
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", cfg) {
		return Spec{}, fmt.Errorf("spec: config carries knobs the wire spec cannot express")
	}
	return s, nil
}

// Read decodes one spec from JSON, rejecting unknown fields (a typoed
// knob silently falling back to its default would be a miserable way
// to lose a sweep).
func Read(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %v", err)
	}
	return s, nil
}

// Result is the canonical rendering of one completed simulation: the
// canonical spec it ran, the full results, and the determinism-audit
// digest of the end state as 16 hex digits (a JSON number could not
// hold a uint64 exactly). delrepsim -json prints exactly this object;
// the daemon embeds it as the "result" field of a job, so the two can
// be compared field-for-field.
type Result struct {
	Spec    Spec         `json:"spec"`
	Results core.Results `json:"results"`
	Digest  string       `json:"digest"`
}

// NewResult builds a Result from a canonical spec and a finished run.
func NewResult(spec Spec, res core.Results, digest uint64) Result {
	return Result{Spec: spec, Results: res, Digest: fmt.Sprintf("%016x", digest)}
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func knownGPU(name string) bool {
	for _, p := range workload.GPUProfiles() {
		if p.Name == name {
			return true
		}
	}
	return false
}

func knownCPU(name string) bool {
	for _, p := range workload.CPUProfiles() {
		if p.Name == name {
			return true
		}
	}
	return false
}

// ParseScheme parses a scheme token (baseline | delegated | rp).
func ParseScheme(s string) (config.Scheme, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return config.SchemeBaseline, nil
	case "delegated", "dr", "delegatedreplies":
		return config.SchemeDelegatedReplies, nil
	case "rp":
		return config.SchemeRP, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func canonScheme(s config.Scheme) string {
	switch s {
	case config.SchemeDelegatedReplies:
		return "delegated"
	case config.SchemeRP:
		return "rp"
	}
	return "baseline"
}

// ParseLayout parses a chip-layout token (Baseline | B | C | D).
func ParseLayout(s string) (config.Layout, error) {
	switch strings.ToLower(s) {
	case "baseline", "a":
		return config.BaselineLayout(), nil
	case "b":
		return config.LayoutB(), nil
	case "c":
		return config.LayoutC(), nil
	case "d":
		return config.LayoutD(), nil
	}
	return config.Layout{}, fmt.Errorf("unknown layout %q", s)
}

// ParseTopo parses a topology token (mesh | fbfly | dragonfly | crossbar).
func ParseTopo(s string) (config.Topology, error) {
	switch strings.ToLower(s) {
	case "mesh":
		return config.TopoMesh, nil
	case "fbfly":
		return config.TopoFlattenedButterfly, nil
	case "dragonfly":
		return config.TopoDragonfly, nil
	case "crossbar":
		return config.TopoCrossbar, nil
	}
	return 0, fmt.Errorf("unknown topology %q", s)
}

func canonTopo(t config.Topology) string {
	switch t {
	case config.TopoFlattenedButterfly:
		return "fbfly"
	case config.TopoDragonfly:
		return "dragonfly"
	case config.TopoCrossbar:
		return "crossbar"
	}
	return "mesh"
}

// ParseRouting parses a routing token (cdr | dyxy | footprint | hare).
func ParseRouting(s string) (config.RoutingAlg, error) {
	switch strings.ToLower(s) {
	case "cdr":
		return config.RoutingCDR, nil
	case "dyxy":
		return config.RoutingDyXY, nil
	case "footprint":
		return config.RoutingFootprint, nil
	case "hare":
		return config.RoutingHARE, nil
	}
	return 0, fmt.Errorf("unknown routing %q", s)
}

func canonRouting(r config.RoutingAlg) string {
	switch r {
	case config.RoutingDyXY:
		return "dyxy"
	case config.RoutingFootprint:
		return "footprint"
	case config.RoutingHARE:
		return "hare"
	}
	return "cdr"
}

// ParseOrg parses an L1-organisation token (private | dcl1 | dyneb).
func ParseOrg(s string) (config.L1Org, error) {
	switch strings.ToLower(s) {
	case "private":
		return config.L1Private, nil
	case "dcl1", "dc-l1":
		return config.L1DCL1, nil
	case "dyneb":
		return config.L1DynEB, nil
	}
	return 0, fmt.Errorf("unknown L1 organisation %q", s)
}

func canonOrg(o config.L1Org) string {
	switch o {
	case config.L1DCL1:
		return "dcl1"
	case config.L1DynEB:
		return "dyneb"
	}
	return "private"
}
