package workload

// CPUProfile characterises one Parsec CPU benchmark as a
// dependency-throttled network trace, following the paper's Netrace
// methodology: what matters to the experiments is each benchmark's
// injection rate and how strongly its performance depends on network
// latency (its memory-level parallelism).
type CPUProfile struct {
	Name string
	// InjRate is the per-core request injection rate in requests/cycle
	// at zero contention (requests are single-flit, so this matches the
	// paper's 0.013-0.084 flits/cycle range).
	InjRate float64
	// MLP bounds outstanding misses per core. Small MLP makes the
	// benchmark latency-sensitive (vips); large MLP makes it
	// throughput-robust (dedup).
	MLP int
	// SeqP is the probability of continuing a sequential stream.
	SeqP float64
}

// CPUProfiles returns the nine Parsec benchmarks used in Table II.
func CPUProfiles() []CPUProfile {
	return []CPUProfile{
		{Name: "blackscholes", InjRate: 0.015, MLP: 3, SeqP: 0.7},
		{Name: "bodytrack", InjRate: 0.025, MLP: 4, SeqP: 0.5},
		{Name: "canneal", InjRate: 0.060, MLP: 4, SeqP: 0.1},
		{Name: "dedup", InjRate: 0.084, MLP: 16, SeqP: 0.6},
		{Name: "ferret", InjRate: 0.040, MLP: 5, SeqP: 0.4},
		{Name: "fluidanimate", InjRate: 0.035, MLP: 5, SeqP: 0.5},
		{Name: "swaptions", InjRate: 0.013, MLP: 3, SeqP: 0.6},
		{Name: "vips", InjRate: 0.070, MLP: 2, SeqP: 0.6},
		{Name: "x264", InjRate: 0.050, MLP: 6, SeqP: 0.5},
	}
}

// CPUProfileByName returns the named profile; it panics on unknown
// names (a configuration error).
func CPUProfileByName(name string) CPUProfile {
	for _, p := range CPUProfiles() {
		if p.Name == name {
			return p
		}
	}
	panic("workload: unknown CPU benchmark " + name)
}

// Pairing is one multi-programmed CPU-GPU workload from Table II: a GPU
// benchmark co-run with one of its three CPU benchmarks.
type Pairing struct {
	GPU string
	CPU string
}

// TableII returns the GPU benchmark -> CPU benchmark pairings of
// Table II (three CPU co-runners per GPU benchmark, 33 workloads).
func TableII() map[string][3]string {
	return map[string][3]string{
		"2DCON": {"blackscholes", "canneal", "dedup"},
		"3DCON": {"bodytrack", "dedup", "fluidanimate"},
		"BT":    {"dedup", "fluidanimate", "vips"},
		"SC":    {"bodytrack", "ferret", "swaptions"},
		"HS":    {"bodytrack", "ferret", "x264"},
		"LPS":   {"fluidanimate", "vips", "x264"},
		"LUD":   {"ferret", "blackscholes", "swaptions"},
		"MM":    {"canneal", "fluidanimate", "vips"},
		"NN":    {"blackscholes", "fluidanimate", "swaptions"},
		"SRAD":  {"fluidanimate", "ferret", "x264"},
		"BP":    {"blackscholes", "bodytrack", "ferret"},
	}
}

// Pairings expands TableII into the 33 ordered workload pairings.
func Pairings() []Pairing {
	t := TableII()
	var out []Pairing
	for _, g := range GPUProfiles() {
		cpus := t[g.Name]
		for _, c := range cpus {
			out = append(out, Pairing{GPU: g.Name, CPU: c})
		}
	}
	return out
}
