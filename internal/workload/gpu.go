// Package workload provides the synthetic CPU-GPU workloads that stand
// in for the paper's CUDA/Rodinia/PolyBench kernels and Parsec traces.
//
// The GPU generators are parameterised per benchmark to reproduce the
// published per-benchmark statistics that Delegated Replies actually
// depends on: L1 miss rate, read/write mix, NoC injection rate
// (0.324-0.704 flits/cycle, Section VI), and inter-core locality (the
// fraction of L1 misses resident in remote L1s, Figure 2). The CPU
// profiles reproduce Parsec injection rates (0.013-0.084 flits/cycle)
// and latency sensitivity.
package workload

import (
	"math/rand"

	"delrep/internal/cache"
	"delrep/internal/config"
)

// GPUProfile characterises one GPU benchmark's memory behaviour.
type GPUProfile struct {
	Name  string
	GridX int // CTA grid from Table II (documentation; sharing-group
	GridY int // structure below is what drives behaviour)

	// Warp phase structure: each warp repeatedly issues ComputeLen
	// compute instructions, then PhaseLoads memory operations, then
	// barriers on their completion. ComputeLen/PhaseLoads sets the
	// compute:memory ratio and hence the injection rate.
	ComputeLen int
	PhaseLoads int

	WriteFrac float64 // fraction of memory ops that are stores

	// Sharing structure. SharedFrac of accesses target a region shared
	// by a neighborhood of ShareGroup SMs (stencil halos, GEMM tiles);
	// the rest target the SM's private region. Region sizes are in
	// 128 B lines; hot working sets much larger than the L1 raise the
	// miss rate, shared regions larger than the neighborhood's
	// aggregate L1 capacity produce remote misses (3DCON, BT, LPS).
	SharedFrac  float64
	ShareGroup  int
	PrivLines   int
	SharedLines int

	// ReuseP is the probability an access re-references a recently
	// touched line (temporal locality; controls the L1 hit rate).
	ReuseP float64
	// DistBoost is added to ReuseP under distributed CTA scheduling,
	// which co-locates neighbouring CTAs on an SM.
	DistBoost float64
	// SeqP is the probability a region access continues a sequential
	// stream (spatial locality; drives DRAM row-buffer hits).
	SeqP float64
	// SharedWinP is the probability a shared-region access targets the
	// region's sliding window: the tile/halo front the whole
	// neighbourhood is working on right now. Window lines are touched
	// by several SMs while resident, so a local miss frequently finds
	// the line in a remote L1 (Figure 2 locality, Figure 14 remote
	// hits). Benchmarks with low SharedWinP spread accesses over the
	// cold span and produce remote misses instead.
	SharedWinP float64
	// WinLag is the wavefront lag in lines between successive SMs of a
	// sharing group: small lags leave swept lines resident in the
	// leader's L1 (remote hits), large lags find them evicted (remote
	// misses).
	WinLag int
}

// GPUProfiles returns the eleven GPU benchmarks of Table II in paper
// order. The parameters are calibrated so that the simulated Figure 2
// inter-core locality, Figure 14 miss breakdown, and Section VI
// injection rates land close to the published values.
func GPUProfiles() []GPUProfile {
	return []GPUProfile{
		// Footprints are sized so the aggregate working set (40 private
		// regions + the sharing-group regions) fits the 8 MB LLC: the
		// LLC hit rate is then high and the bottleneck is the memory
		// nodes' reply links, exactly the paper's clogging regime.
		//
		// High inter-core locality stencils: most of the halo and tile
		// data a CTA misses on was recently loaded by a neighbour CTA.
		{Name: "2DCON", GridX: 128, GridY: 512, ComputeLen: 7, PhaseLoads: 4, WriteFrac: 0.08,
			SharedFrac: 0.78, ShareGroup: 8, PrivLines: 600, SharedLines: 4000, ReuseP: 0.62, DistBoost: 0.12, SeqP: 0.25, SharedWinP: 0.78, WinLag: 16},
		// 3D stencil: shared halo exceeds the neighbourhood's aggregate
		// L1 capacity, so many delegated replies find the line evicted.
		{Name: "3DCON", GridX: 8, GridY: 32, ComputeLen: 8, PhaseLoads: 4, WriteFrac: 0.10,
			SharedFrac: 0.72, ShareGroup: 8, PrivLines: 600, SharedLines: 6000, ReuseP: 0.62, DistBoost: 0.10, SeqP: 0.25, SharedWinP: 0.45, WinLag: 224},
		// B+ tree traversal: pointer chasing over a large shared tree.
		{Name: "BT", GridX: 60000, GridY: 1, ComputeLen: 9, PhaseLoads: 4, WriteFrac: 0.14,
			SharedFrac: 0.58, ShareGroup: 10, PrivLines: 700, SharedLines: 5000, ReuseP: 0.60, DistBoost: 0.08, SeqP: 0.2, SharedWinP: 0.38, WinLag: 256},
		// Streamcluster: high LLC hit rate, few delegations; benefits
		// from shared-L1 capacity (Figure 15).
		{Name: "SC", GridX: 1954, GridY: 1, ComputeLen: 12, PhaseLoads: 4, WriteFrac: 0.18,
			SharedFrac: 0.42, ShareGroup: 8, PrivLines: 500, SharedLines: 2200, ReuseP: 0.76, DistBoost: 0.06, SeqP: 0.25, SharedWinP: 0.55, WinLag: 24},
		// Hotspot: the paper's best case (+67.9%); dense stencil halos.
		{Name: "HS", GridX: 342, GridY: 342, ComputeLen: 6, PhaseLoads: 4, WriteFrac: 0.07,
			SharedFrac: 0.82, ShareGroup: 8, PrivLines: 600, SharedLines: 4000, ReuseP: 0.60, DistBoost: 0.12, SeqP: 0.25, SharedWinP: 0.82, WinLag: 16},
		// Laplace solver: shared planes with frequent replacement.
		{Name: "LPS", GridX: 63, GridY: 500, ComputeLen: 8, PhaseLoads: 4, WriteFrac: 0.12,
			SharedFrac: 0.62, ShareGroup: 8, PrivLines: 650, SharedLines: 5500, ReuseP: 0.60, DistBoost: 0.09, SeqP: 0.25, SharedWinP: 0.45, WinLag: 224},
		// LU decomposition: small working set, high LLC hit rate.
		{Name: "LUD", GridX: 127, GridY: 127, ComputeLen: 12, PhaseLoads: 4, WriteFrac: 0.15,
			SharedFrac: 0.45, ShareGroup: 8, PrivLines: 450, SharedLines: 1800, ReuseP: 0.76, DistBoost: 0.05, SeqP: 0.25, SharedWinP: 0.62, WinLag: 24},
		// Matrix multiply: large tiles shared across many SMs.
		{Name: "MM", GridX: 1000, GridY: 2000, ComputeLen: 7, PhaseLoads: 4, WriteFrac: 0.05,
			SharedFrac: 0.68, ShareGroup: 12, PrivLines: 550, SharedLines: 5000, ReuseP: 0.62, DistBoost: 0.08, SeqP: 0.3, SharedWinP: 0.72, WinLag: 24},
		// Neural net: small hot weight set, very high locality, low miss
		// rate (4.3% in the paper), so gains are modest despite locality.
		{Name: "NN", GridX: 6, GridY: 6000, ComputeLen: 8, PhaseLoads: 4, WriteFrac: 0.04,
			SharedFrac: 0.85, ShareGroup: 8, PrivLines: 260, SharedLines: 420, ReuseP: 0.86, DistBoost: 0.04, SeqP: 0.25, SharedWinP: 0.85, WinLag: 12},
		// Srad: diffusion stencil, moderate sharing.
		{Name: "SRAD", GridX: 128, GridY: 128, ComputeLen: 8, PhaseLoads: 4, WriteFrac: 0.11,
			SharedFrac: 0.64, ShareGroup: 8, PrivLines: 600, SharedLines: 4500, ReuseP: 0.60, DistBoost: 0.10, SeqP: 0.25, SharedWinP: 0.68, WinLag: 24},
		// Backprop: write-heavy (stresses the request network), little
		// read sharing; the paper's worst case for AVCP.
		{Name: "BP", GridX: 1, GridY: 16384, ComputeLen: 9, PhaseLoads: 4, WriteFrac: 0.42,
			SharedFrac: 0.28, ShareGroup: 4, PrivLines: 550, SharedLines: 2200, ReuseP: 0.64, DistBoost: 0.06, SeqP: 0.25, SharedWinP: 0.45, WinLag: 96},
	}
}

// GPUProfileByName returns the named profile; it panics on unknown names
// (a configuration error).
func GPUProfileByName(name string) GPUProfile {
	for _, p := range GPUProfiles() {
		if p.Name == name {
			return p
		}
	}
	panic("workload: unknown GPU benchmark " + name)
}

// Address space carving (line addresses): each SM's private region and
// each sharing neighbourhood's region live in disjoint ranges.
const (
	privBase   = 1 << 30
	sharedBase = 2 << 30
	regionSize = 1 << 22 // lines per region slot
)

// PrivLine returns line i of SM sm's private region.
func PrivLine(sm, i int) cache.Addr {
	return cache.Addr(privBase + uint64(sm)*regionSize + uint64(i))
}

// SharedLine returns line i of a sharing group's region.
func SharedLine(group, i int) cache.Addr {
	return cache.Addr(sharedBase + uint64(group)*regionSize + uint64(i))
}

// Groups returns the number of sharing neighbourhoods for n SMs.
func (p GPUProfile) Groups(n int) int {
	return (n + p.ShareGroup - 1) / p.ShareGroup
}

// AddrGen produces the memory reference stream of one SM.
//
// Temporal locality is modelled as a stationary per-SM hot set (the
// tile/constant data a kernel touches constantly): hot-set touches are
// frequent enough that the lines stay L1-resident, so the L1 hit rate
// is a structural property of the benchmark rather than an artifact of
// miss latency. Fresh picks walk the private/shared regions and carry
// the streaming and inter-core-sharing behaviour.
type AddrGen struct {
	prof      GPUProfile
	rng       *rand.Rand
	sm        int
	group     int
	hotLines  int
	reuseP    float64
	seqPtr    map[uint64]uint64 // per-region sequential cursor
	winAbs    int64             // absolute wavefront sweep cursor
	wavefront *Wavefront        // shared group sweep front
}

// BindWavefront attaches the sharing group's common sweep front; the
// shared-window component is inactive until it is bound.
func (g *AddrGen) BindWavefront(w *Wavefront) { g.wavefront = w }

// hotSetLines sizes the per-SM hot set: a fraction of the private
// region, bounded so it fits comfortably inside the L1.
func hotSetLines(privLines int) int {
	h := privLines / 4
	if h < 48 {
		h = 48
	}
	if h > 288 {
		h = 288
	}
	return h
}

// NewAddrGen builds the generator for SM sm of numSMs under the given
// CTA scheduling policy.
func NewAddrGen(prof GPUProfile, sm, numSMs int, sched config.CTASched, seed int64) *AddrGen {
	g := &AddrGen{
		prof:     prof,
		rng:      rand.New(rand.NewSource(seed ^ int64(sm)*0x9e37 + 1)),
		sm:       sm,
		group:    sm / prof.ShareGroup,
		hotLines: hotSetLines(prof.PrivLines),
		reuseP:   prof.ReuseP,
		seqPtr:   make(map[uint64]uint64),
	}
	if sched == config.CTADistributed {
		g.reuseP += prof.DistBoost
		if g.reuseP > 0.95 {
			g.reuseP = 0.95
		}
	}
	return g
}

// Wavefront geometry. Each sharing group sweeps its region as a
// pipelined wavefront: the front advances with the group's aggregate
// shared-window draws (one line per drawsPerLine draws per member, so
// every member touches each line ~drawsPerLine times on average), and
// SM k of the group trails the front by k*WinLag lines — CTAs
// processing successive tiles of the same data. A line missed by SM k
// was recently touched by the members ahead of it: short lags keep it
// L1-resident remotely (high inter-core locality, the stencil
// benchmarks), long lags find it already evicted (remote misses, the
// 3DCON/BT/LPS behaviour). The draw-anchored front self-paces with the
// workload, so the pipeline structure is preserved under any scheme.
const (
	winSlack     = 96
	drawsPerLine = 2
)

// Wavefront is the shared sweep front of one sharing group.
type Wavefront struct {
	draws   int64
	members int
}

// NewWavefront builds the front for a group with the given member count.
func NewWavefront(members int) *Wavefront {
	if members < 1 {
		members = 1
	}
	return &Wavefront{members: members}
}

// advance records one window draw and returns the front line.
func (w *Wavefront) advance() int64 {
	w.draws++
	return w.draws / int64(w.members*drawsPerLine)
}

// Front returns the current front line without advancing.
func (w *Wavefront) Front() int64 {
	return w.draws / int64(w.members*drawsPerLine)
}

// pick draws a fresh line address from the private or shared region.
func (g *AddrGen) pick() cache.Addr {
	var base uint64
	var span int
	if g.rng.Float64() < g.prof.SharedFrac {
		base = sharedBase + uint64(g.group)*regionSize
		span = g.prof.SharedLines
		if g.rng.Float64() < g.prof.SharedWinP && g.wavefront != nil {
			front := g.wavefront.advance()
			target := front - int64(g.sm%g.prof.ShareGroup)*int64(g.prof.WinLag)
			if target < 0 {
				target = 0
			}
			if g.winAbs < target-winSlack {
				g.winAbs = target - winSlack // skip ahead (dropped tiles)
			}
			if g.winAbs < target {
				g.winAbs++
				return cache.Addr(base + uint64(g.winAbs%int64(span)))
			}
			// Caught up with the tile pipeline: spill to the cold span
			// (gather/indirect accesses of the same kernel).
		}
	} else {
		base = privBase + uint64(g.sm)*regionSize
		span = g.prof.PrivLines
	}
	if g.rng.Float64() < g.prof.SeqP {
		ptr := g.seqPtr[base]
		g.seqPtr[base] = (ptr + 1) % uint64(span)
		return cache.Addr(base + ptr)
	}
	return cache.Addr(base + uint64(g.rng.Intn(span)))
}

// Next returns the next line address and whether it is a store.
// Hot-set touches draw from the first hotLines of the private region
// (always L1-resident in steady state); the rest are fresh region picks.
func (g *AddrGen) Next() (line cache.Addr, write bool) {
	if g.rng.Float64() < g.reuseP {
		base := privBase + uint64(g.sm)*regionSize
		line = cache.Addr(base + uint64(g.rng.Intn(g.hotLines)))
	} else {
		line = g.pick()
	}
	return line, g.rng.Float64() < g.prof.WriteFrac
}
