package workload

import (
	"testing"
	"testing/quick"

	"delrep/internal/cache"
	"delrep/internal/config"
)

func TestProfilesComplete(t *testing.T) {
	gp := GPUProfiles()
	if len(gp) != 11 {
		t.Fatalf("%d GPU profiles, want 11", len(gp))
	}
	for _, p := range gp {
		if p.PrivLines <= 0 || p.SharedLines <= 0 || p.ShareGroup <= 0 {
			t.Errorf("%s: bad region sizes %+v", p.Name, p)
		}
		if p.SharedFrac < 0 || p.SharedFrac > 1 || p.WriteFrac < 0 || p.WriteFrac > 1 {
			t.Errorf("%s: bad fractions", p.Name)
		}
		if p.ComputeLen <= 0 || p.PhaseLoads <= 0 {
			t.Errorf("%s: bad phase structure", p.Name)
		}
		if p.WinLag <= 0 {
			t.Errorf("%s: bad wavefront lag", p.Name)
		}
	}
	if len(CPUProfiles()) != 9 {
		t.Fatalf("%d CPU profiles, want 9", len(CPUProfiles()))
	}
}

func TestCPUInjectionRatesMatchPaper(t *testing.T) {
	// Section VI: CPU injection rates span 0.013 to 0.084 flits/cycle.
	lo, hi := 1.0, 0.0
	for _, p := range CPUProfiles() {
		if p.InjRate < lo {
			lo = p.InjRate
		}
		if p.InjRate > hi {
			hi = p.InjRate
		}
		if p.MLP <= 0 {
			t.Errorf("%s: MLP %d", p.Name, p.MLP)
		}
	}
	if lo != 0.013 || hi != 0.084 {
		t.Fatalf("injection rate span [%v, %v], paper [0.013, 0.084]", lo, hi)
	}
}

func TestProfileByNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GPUProfileByName("NOPE")
}

func TestTableIIComplete(t *testing.T) {
	tbl := TableII()
	if len(tbl) != 11 {
		t.Fatalf("%d GPU entries", len(tbl))
	}
	cpuNames := map[string]bool{}
	for _, p := range CPUProfiles() {
		cpuNames[p.Name] = true
	}
	for g, cpus := range tbl {
		GPUProfileByName(g) // panics if unknown
		for _, c := range cpus {
			if !cpuNames[c] {
				t.Errorf("%s pairs with unknown CPU bench %s", g, c)
			}
		}
	}
	if len(Pairings()) != 33 {
		t.Fatalf("%d pairings, want 33", len(Pairings()))
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	prof := GPUProfileByName("HS")
	g := NewAddrGen(prof, 3, 40, config.CTARoundRobin, 1)
	wf := NewWavefront(prof.ShareGroup)
	g.BindWavefront(wf)
	group := 3 / prof.ShareGroup
	privLo := PrivLine(3, 0)
	privHi := PrivLine(3, prof.PrivLines)
	shLo := SharedLine(group, 0)
	shHi := SharedLine(group, prof.SharedLines)
	for i := 0; i < 100000; i++ {
		line, _ := g.Next()
		inPriv := line >= privLo && line < privHi
		inShared := line >= shLo && line < shHi
		if !inPriv && !inShared {
			t.Fatalf("address %d outside both regions", line)
		}
	}
}

func TestWriteFraction(t *testing.T) {
	prof := GPUProfileByName("BP") // write-heavy: 0.42
	g := NewAddrGen(prof, 0, 40, config.CTARoundRobin, 1)
	g.BindWavefront(NewWavefront(prof.ShareGroup))
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if _, w := g.Next(); w {
			writes++
		}
	}
	got := float64(writes) / n
	if got < prof.WriteFrac-0.02 || got > prof.WriteFrac+0.02 {
		t.Fatalf("write fraction %.3f, want ~%.2f", got, prof.WriteFrac)
	}
}

func TestDeterministicStreams(t *testing.T) {
	prof := GPUProfileByName("MM")
	a := NewAddrGen(prof, 5, 40, config.CTARoundRobin, 9)
	b := NewAddrGen(prof, 5, 40, config.CTARoundRobin, 9)
	a.BindWavefront(NewWavefront(prof.ShareGroup))
	b.BindWavefront(NewWavefront(prof.ShareGroup))
	for i := 0; i < 10000; i++ {
		la, wa := a.Next()
		lb, wb := b.Next()
		if la != lb || wa != wb {
			t.Fatalf("streams diverge at %d: (%d,%v) vs (%d,%v)", i, la, wa, lb, wb)
		}
	}
}

func TestDistributedSchedulingBoostsReuse(t *testing.T) {
	prof := GPUProfileByName("2DCON")
	rr := NewAddrGen(prof, 0, 40, config.CTARoundRobin, 1)
	dist := NewAddrGen(prof, 0, 40, config.CTADistributed, 1)
	if dist.reuseP <= rr.reuseP {
		t.Fatalf("distributed reuse %.2f not above round-robin %.2f", dist.reuseP, rr.reuseP)
	}
}

func TestWavefrontOrdering(t *testing.T) {
	// Later members must trail earlier members; the front must be
	// monotone in draws.
	wf := NewWavefront(8)
	last := wf.Front()
	for i := 0; i < 1000; i++ {
		f := wf.advance()
		if f < last {
			t.Fatal("front moved backwards")
		}
		last = f
	}
	if wf.Front() != 1000/(8*drawsPerLine) {
		t.Fatalf("front = %d", wf.Front())
	}
}

func TestHotSetBounds(t *testing.T) {
	f := func(priv uint16) bool {
		h := hotSetLines(int(priv))
		return h >= 48 && h <= 288
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHotSetWithinL1Reach(t *testing.T) {
	// The hot set must fit in the 48 KB L1 (384 lines of 128 B).
	for _, p := range GPUProfiles() {
		if h := hotSetLines(p.PrivLines); h > 288 {
			t.Errorf("%s: hot set %d lines too large", p.Name, h)
		}
	}
}

func TestGroups(t *testing.T) {
	p := GPUProfileByName("HS") // group of 8
	if p.Groups(40) != 5 {
		t.Fatalf("groups = %d", p.Groups(40))
	}
	if p.Groups(41) != 6 {
		t.Fatalf("groups = %d", p.Groups(41))
	}
}

func TestRegionHelpers(t *testing.T) {
	if PrivLine(0, 0) == SharedLine(0, 0) {
		t.Fatal("private and shared regions overlap")
	}
	if PrivLine(1, 0)-PrivLine(0, 0) != cache.Addr(regionSize) {
		t.Fatal("private regions not spaced by regionSize")
	}
}

func TestUnboundWavefrontFallsBackToCold(t *testing.T) {
	// Without a bound wavefront, shared draws must still produce valid
	// addresses (cold span).
	prof := GPUProfileByName("NN")
	g := NewAddrGen(prof, 0, 40, config.CTARoundRobin, 1)
	for i := 0; i < 10000; i++ {
		line, _ := g.Next()
		if line == 0 {
			t.Fatal("zero address")
		}
	}
}
