package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"delrep/internal/config"
)

// Key serializes every run-identifying input of a simulation: the GPU
// and CPU benchmark names and the complete configuration, including
// the warm-up and measurement window sizes and the seed. Two specs
// with equal keys are guaranteed to produce bit-identical results, so
// the key is safe to use as a memoization and cache-lookup identity.
//
// The whole Config is folded in via its %+v rendering rather than a
// hand-picked field list: an earlier hand-written key omitted
// WarmupCycles/MeasureCycles, which would have aliased -quick and
// full-window runs in a shared on-disk cache. Rendering the struct
// keeps every present and future field run-identifying by default.
func Key(cfg config.Config, gpu, cpu string) string {
	return fmt.Sprintf("%s|%s|%+v", gpu, cpu, cfg)
}

// KeyHash returns a short stable identifier for a run key: the first
// 12 hex digits of its SHA-256. Structured log lines and
// flight-recorder entries carry it so a job can be correlated with its
// cache identity without dumping the full rendered configuration. The
// fleet coordinator also uses it as the consistent-hash routing key,
// so a spec always routes to the worker holding its cache shard.
func KeyHash(cfg config.Config, gpu, cpu string) string {
	sum := sha256.Sum256([]byte(Key(cfg, gpu, cpu)))
	return hex.EncodeToString(sum[:6])
}

// CacheAddr returns the full content address of a run key: the hex
// SHA-256 of the cache Version salt plus the key. It is exactly the
// DiskCache filename stem, and the {key} path segment of the worker's
// GET /v1/cache/{key} endpoint, so a coordinator that computed a run's
// key can probe any worker's cache tier without shipping the full
// rendered configuration. Two builds with different Version salts
// produce disjoint addresses, so a mixed-version fleet degrades to
// cache misses, never to stale results.
func CacheAddr(key string) string {
	sum := sha256.Sum256([]byte(Version + "\x00" + key))
	return hex.EncodeToString(sum[:])
}
