package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"delrep/internal/config"
)

// Key serializes every run-identifying input of a simulation: the GPU
// and CPU benchmark names and the complete configuration, including
// the warm-up and measurement window sizes and the seed. Two specs
// with equal keys are guaranteed to produce bit-identical results, so
// the key is safe to use as a memoization and cache-lookup identity.
//
// The whole Config is folded in via its %+v rendering rather than a
// hand-picked field list: an earlier hand-written key omitted
// WarmupCycles/MeasureCycles, which would have aliased -quick and
// full-window runs in a shared on-disk cache. Rendering the struct
// keeps every present and future field run-identifying by default.
func Key(cfg config.Config, gpu, cpu string) string {
	return fmt.Sprintf("%s|%s|%+v", gpu, cpu, cfg)
}

// KeyHash returns a short stable identifier for a run key: the first
// 12 hex digits of its SHA-256. Structured log lines and
// flight-recorder entries carry it so a job can be correlated with its
// cache identity without dumping the full rendered configuration.
func KeyHash(cfg config.Config, gpu, cpu string) string {
	sum := sha256.Sum256([]byte(Key(cfg, gpu, cpu)))
	return hex.EncodeToString(sum[:6])
}
