package runner

import (
	"context"
	"os"
	"testing"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/telemetry"
)

// A traced submission records the cache/engine span structure; a
// deduplicated submission of the same spec records dedup.join on its
// own trace.
func TestSubmitCtxSpans(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Workers: 2, Cache: cache})
	spec := Spec{Cfg: tinyCfg(config.SchemeBaseline), GPU: "HS", CPU: "vips"}

	tr := telemetry.New("job")
	ctx := telemetry.ContextWithSpan(context.Background(), tr.Root())
	run := eng.SubmitCtx(ctx, spec).Wait()
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	tr.End()
	v := tr.Snapshot()
	look, ok := v.Find("cache.lookup")
	if !ok || look.Attrs["hit"] != false {
		t.Fatalf("cache.lookup span = %+v ok=%v, want recorded miss", look, ok)
	}
	engRun, ok := v.Find("engine.run")
	if !ok {
		t.Fatal("engine.run span missing")
	}
	if len(engRun.Children) == 0 {
		t.Fatal("engine.run has no window spans")
	}
	if _, ok := engRun.Find("window 0"); !ok {
		t.Fatalf("window 0 span missing: %+v", engRun.Children)
	}

	// Same spec again: a fresh submission this process hits the memo
	// (the future is retained), so the joiner's trace records
	// dedup.join and none of the execution detail.
	tr2 := telemetry.New("job2")
	ctx2 := telemetry.ContextWithSpan(context.Background(), tr2.Root())
	if run2 := eng.SubmitCtx(ctx2, spec).Wait(); run2.Digest != run.Digest {
		t.Fatalf("deduped digest %x != original %x", run2.Digest, run.Digest)
	}
	v2 := tr2.Snapshot()
	if _, ok := v2.Find("dedup.join"); !ok {
		t.Fatalf("dedup.join span missing from joiner trace: %+v", v2)
	}
	if _, ok := v2.Find("engine.run"); ok {
		t.Fatal("joiner trace has the owner's engine.run span")
	}

	// A fresh engine over the warm cache records a cache.lookup hit.
	eng2 := New(Options{Workers: 1, Cache: cache})
	tr3 := telemetry.New("job3")
	ctx3 := telemetry.ContextWithSpan(context.Background(), tr3.Root())
	if run3 := eng2.SubmitCtx(ctx3, spec).Wait(); run3.Source != SourceDisk {
		t.Fatalf("warm-cache source = %v, want disk", run3.Source)
	}
	if look, ok := tr3.Snapshot().Find("cache.lookup"); !ok || look.Attrs["hit"] != true {
		t.Fatalf("warm cache.lookup span = %+v ok=%v, want recorded hit", look, ok)
	}
}

// Cache lookups count hits, misses, and corrupt entries distinctly.
func TestDiskCacheStats(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("fresh stats = %+v", s)
	}
	if _, _, ok := c.Get("missing"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("k", 42, core.Results{Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k"); !ok {
		t.Fatal("miss on stored entry")
	}
	// Corrupt the entry in place: the next Get degrades to a miss and
	// counts the corruption.
	path := c.path("k", ".run")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("hit on corrupt entry")
	}
	got := c.Stats()
	want := CacheStats{Hits: 1, Misses: 1, Corrupt: 1}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	// A nil cache answers zero stats without a guard at the caller.
	var nilCache *DiskCache
	if s := nilCache.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

// KeyHash is short, hex, and distinguishes configs exactly as Key does.
func TestKeyHash(t *testing.T) {
	a := tinyCfg(config.SchemeBaseline)
	b := a
	b.Seed++
	ha := KeyHash(a, "HS", "vips")
	hb := KeyHash(b, "HS", "vips")
	if len(ha) != 12 || len(hb) != 12 {
		t.Fatalf("hash lengths = %d, %d, want 12", len(ha), len(hb))
	}
	if ha == hb {
		t.Fatal("distinct configs share a key hash")
	}
	if ha != KeyHash(a, "HS", "vips") {
		t.Fatal("KeyHash is not stable")
	}
}
