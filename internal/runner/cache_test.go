package runner

import (
	"os"
	"path/filepath"
	"testing"

	"delrep/internal/config"
	"delrep/internal/core"
)

func openTestCache(t *testing.T) *DiskCache {
	t.Helper()
	c, err := OpenDiskCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c := openTestCache(t)
	res := core.Results{Cycles: 42, GPUIPC: 1.25, RepFlits: 7}
	if err := c.Put("k1", 0xdeadbeef, res); err != nil {
		t.Fatal(err)
	}
	got, digest, ok := c.Get("k1")
	if !ok || digest != 0xdeadbeef || got != res {
		t.Fatalf("roundtrip: ok=%v digest=%x res=%+v", ok, digest, got)
	}
	if _, _, ok := c.Get("k2"); ok {
		t.Fatal("unknown key hit")
	}
}

func TestDiskCacheCorruptionTolerance(t *testing.T) {
	c := openTestCache(t)
	if err := c.Put("k", 1, core.Results{Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	// Corrupt every entry in the directory.
	files, err := filepath.Glob(filepath.Join(c.Dir(), "*.run"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files (%v)", err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("not a gob stream"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// A fresh Put must repair the entry in place.
	if err := c.Put("k", 2, core.Results{Cycles: 10}); err != nil {
		t.Fatal(err)
	}
	if res, digest, ok := c.Get("k"); !ok || digest != 2 || res.Cycles != 10 {
		t.Fatalf("repaired entry not served: ok=%v digest=%d res=%+v", ok, digest, res)
	}
}

func TestDiskCacheBlob(t *testing.T) {
	c := openTestCache(t)
	if _, ok := c.GetBlob("narrative"); ok {
		t.Fatal("empty cache hit")
	}
	if err := c.PutBlob("narrative", []byte("episode 1\n")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetBlob("narrative")
	if !ok || string(got) != "episode 1\n" {
		t.Fatalf("blob roundtrip: ok=%v got=%q", ok, got)
	}
	// Blobs and runs live in separate namespaces.
	if _, _, ok := c.Get("narrative"); ok {
		t.Fatal("blob served as a run")
	}
}

// TestEngineWarmCache checks the cross-process reuse contract: a
// second engine sharing the cache directory performs zero simulations
// and returns bit-identical results and digests.
func TestEngineWarmCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	specs := tinySpecs()

	cold, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := New(Options{Workers: 4, Cache: cold})
	first := coldEng.RunAll(specs)
	if c := coldEng.Counters(); c.Executed != int64(len(specs)) {
		t.Fatalf("cold engine executed %d, want %d", c.Executed, len(specs))
	}

	warm, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Workers: 4, Cache: warm})
	second := eng.RunAll(specs)
	c := eng.Counters()
	if c.Executed != 0 {
		t.Errorf("warm cache executed %d simulations, want 0", c.Executed)
	}
	if c.DiskHits != int64(len(specs)) {
		t.Errorf("disk hits %d, want %d", c.DiskHits, len(specs))
	}
	for i := range specs {
		if second[i].Source != SourceDisk {
			t.Errorf("run %d source %s, want disk", i, second[i].Source)
		}
		if second[i].Results != first[i].Results || second[i].Digest != first[i].Digest {
			t.Errorf("run %d: cached result differs from executed result", i)
		}
	}
}

// TestEngineCorruptCacheRecovers checks that a corrupted cache entry
// degrades to a re-execution, not an error or a wrong result.
func TestEngineCorruptCacheRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	spec := Spec{Cfg: tinyCfg(config.SchemeBaseline), GPU: "HS", CPU: "vips"}

	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := New(Options{Workers: 1, Cache: cache}).Run(spec)

	files, _ := filepath.Glob(filepath.Join(dir, "*.run"))
	if len(files) != 1 {
		t.Fatalf("expected 1 cache entry, found %d", len(files))
	}
	if err := os.Truncate(files[0], 3); err != nil {
		t.Fatal(err)
	}

	eng := New(Options{Workers: 1, Cache: cache})
	second := eng.Run(spec)
	if second.Source != SourceExecuted {
		t.Errorf("corrupt entry source %s, want executed", second.Source)
	}
	if second.Results != first.Results || second.Digest != first.Digest {
		t.Error("re-executed run differs from original")
	}
	// The repaired entry serves the next engine from disk.
	third := New(Options{Workers: 1, Cache: cache}).Run(spec)
	if third.Source != SourceDisk || third.Results != first.Results {
		t.Errorf("repair not persisted: source %s", third.Source)
	}
}
