package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"delrep/internal/config"
)

// longCfg is a run far too long to finish during a test: cancellation
// must cut it short at a cycle-window checkpoint.
func longCfg() config.Config {
	cfg := config.Default()
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 500_000_000
	return cfg
}

func TestSubmitCtxCancelMidRun(t *testing.T) {
	eng := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	f := eng.SubmitCtx(ctx, Spec{Cfg: longCfg(), GPU: "HS", CPU: "vips"})

	// Let the run reach its first checkpoints, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if done, _ := f.Progress(); done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never reported progress")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	run := f.Wait()
	if !errors.Is(run.Err, context.Canceled) {
		t.Fatalf("run.Err = %v, want context.Canceled", run.Err)
	}
	if c := eng.Counters(); c.Failed != 1 {
		t.Fatalf("Counters.Failed = %d, want 1", c.Failed)
	}

	// The worker slot must be free again: a short run completes.
	short := config.Default()
	short.WarmupCycles, short.MeasureCycles = 300, 800
	if run := eng.Run(Spec{Cfg: short, GPU: "HS", CPU: "vips"}); run.Err != nil {
		t.Fatalf("post-cancel run failed: %v", run.Err)
	}
}

// A cancelled future leaves the memo table, so resubmitting the same
// spec re-executes rather than delivering the cancelled husk.
func TestCancelledFutureNotMemoized(t *testing.T) {
	eng := New(Options{Workers: 1})
	cfg := config.Default()
	cfg.WarmupCycles, cfg.MeasureCycles = 300, 800
	spec := Spec{Cfg: cfg, GPU: "HS", CPU: "vips"}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the worker even starts
	if run := eng.SubmitCtx(ctx, spec).Wait(); !errors.Is(run.Err, context.Canceled) {
		t.Fatalf("run.Err = %v, want context.Canceled", run.Err)
	}

	run := eng.Run(spec)
	if run.Err != nil {
		t.Fatalf("resubmission failed: %v", run.Err)
	}
	if run.Source != SourceExecuted {
		t.Fatalf("resubmission source = %v, want executed", run.Source)
	}
	c := eng.Counters()
	if c.Executed != 1 || c.Failed != 1 || c.MemoHits != 0 {
		t.Fatalf("counters = %+v, want Executed 1, Failed 1, MemoHits 0", c)
	}
}

// A pinned (Submit) waiter keeps the shared future alive even when a
// cancellable co-waiter gives up.
func TestPinnedWaiterSurvivesCancel(t *testing.T) {
	eng := New(Options{Workers: 1})
	cfg := config.Default()
	cfg.WarmupCycles, cfg.MeasureCycles = 300, 800
	spec := Spec{Cfg: cfg, GPU: "HS", CPU: "vips"}

	pinned := eng.Submit(spec)
	ctx, cancel := context.WithCancel(context.Background())
	shared := eng.SubmitCtx(ctx, spec)
	if shared != pinned {
		t.Fatal("identical specs did not share a future")
	}
	cancel()
	if run := pinned.Wait(); run.Err != nil {
		t.Fatalf("pinned run failed after co-waiter cancel: %v", run.Err)
	}
}

// A panicking simulation (invalid configuration) surfaces as Run.Err
// instead of crashing the process that shares the engine.
func TestPanicBecomesError(t *testing.T) {
	eng := New(Options{Workers: 1})
	run := eng.Run(Spec{Cfg: config.Default(), GPU: "no-such-benchmark", CPU: "vips"})
	if run.Err == nil {
		t.Fatal("run with unknown benchmark reported no error")
	}
	if c := eng.Counters(); c.Failed != 1 || c.Executed != 0 {
		t.Fatalf("counters = %+v, want Failed 1, Executed 0", c)
	}
}

func TestProgressCompletesOnDiskHit(t *testing.T) {
	cache, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.WarmupCycles, cfg.MeasureCycles = 300, 800
	spec := Spec{Cfg: cfg, GPU: "HS", CPU: "vips"}

	if run := New(Options{Workers: 1, Cache: cache}).Run(spec); run.Err != nil {
		t.Fatal(run.Err)
	}
	f := New(Options{Workers: 1, Cache: cache}).Submit(spec)
	if run := f.Wait(); run.Source != SourceDisk {
		t.Fatalf("source = %v, want disk", run.Source)
	}
	done, total := f.Progress()
	if want := cfg.WarmupCycles + cfg.MeasureCycles; done != want || total != want {
		t.Fatalf("disk-hit progress = %d/%d, want %d/%d", done, total, want, want)
	}
}
