package runner

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDefaultCacheDirEnvOverride(t *testing.T) {
	t.Setenv("DELREP_CACHE_DIR", "/tmp/delrep-cache-env-test")
	dir, err := DefaultCacheDir()
	if err != nil {
		t.Fatal(err)
	}
	if dir != "/tmp/delrep-cache-env-test" {
		t.Fatalf("DefaultCacheDir = %q, want the DELREP_CACHE_DIR value", dir)
	}
}

func TestPruneOldestFirst(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"old", "mid", "new"}
	var sizes []int64
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		if err := cache.PutBlob(k, make([]byte, 100*(i+1))); err != nil {
			t.Fatal(err)
		}
		// Stamp distinct mtimes so the eviction order is deterministic.
		path := cache.path(k, ".blob")
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	total, err := cache.Size()
	if err != nil {
		t.Fatal(err)
	}
	if want := sizes[0] + sizes[1] + sizes[2]; total != want {
		t.Fatalf("Size = %d, want %d", total, want)
	}

	// Prune to a budget that forces exactly the oldest entry out.
	removed, freed, err := cache.Prune(total - 1)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != sizes[0] {
		t.Fatalf("Prune removed %d (freed %d), want 1 (freed %d)", removed, freed, sizes[0])
	}
	if _, ok := cache.GetBlob("old"); ok {
		t.Fatal("oldest entry survived the prune")
	}
	for _, k := range keys[1:] {
		if _, ok := cache.GetBlob(k); !ok {
			t.Fatalf("entry %q was pruned out of order", k)
		}
	}

	// Prune to zero clears everything but leaves the directory usable.
	if _, _, err := cache.Prune(0); err != nil {
		t.Fatal(err)
	}
	if total, _ := cache.Size(); total != 0 {
		t.Fatalf("Size after Prune(0) = %d, want 0", total)
	}
	if err := cache.PutBlob("again", []byte("x")); err != nil {
		t.Fatalf("cache unusable after full prune: %v", err)
	}
	if filepath.Dir(cache.path("again", ".blob")) != dir {
		t.Fatal("cache path escaped its directory")
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1048576", 1 << 20, true},
		{"4K", 4 << 10, true},
		{"512M", 512 << 20, true},
		{"2G", 2 << 30, true},
		{"2GB", 2 << 30, true},
		{"2GiB", 2 << 30, true},
		{"1T", 1 << 40, true},
		{" 3 M ", 3 << 20, true},
		{"", 0, false},
		{"-1", 0, false},
		{"12Q", 0, false},
		{"M", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseSize(%q) = %d, %v; want %d, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}
