package runner

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"delrep/internal/core"
)

// Version is the code/version salt folded into every cache address.
// Bump it whenever a simulator change alters results for an unchanged
// configuration — stale entries then simply stop being addressable and
// age out, rather than poisoning new runs. The full policy (what
// counts as "alters results", and what — like intra-run parallelism —
// deliberately does not) is documented in DESIGN.md §11.
//
// v3: the tile-parallel tick rework changed packet hop accounting to
// head-only charging. Final values are identical, but the salt is
// bumped so any pre-tile build's entries cannot alias a build whose
// digest definition has been re-certified.
const Version = "delrep-run-v3"

// DiskCache is an on-disk, content-addressed store of simulation
// results (and small observed-run artifacts). Entries are gob files
// named by the SHA-256 of Version plus the run Key; gob preserves
// float64 bit patterns exactly, so a cache hit is byte-for-byte
// indistinguishable from re-running the simulation. Writes go through
// a temp file plus rename, so concurrent processes sharing a cache
// directory never observe torn entries. Any unreadable, mismatched, or
// corrupt entry is treated as a miss and overwritten by the next Put.
type DiskCache struct {
	dir string

	// Result-lookup accounting (Get only; blob artifacts are not
	// counted). Atomics, so readers never contend with the hot path.
	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
}

// CacheStats is a point-in-time snapshot of the cache's result-lookup
// accounting. Corrupt counts entries that existed but failed to decode
// or verify (stale format, truncated write, SHA collision) — each one
// degraded to a miss rather than a wrong result, but a nonzero rate is
// worth alerting on.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Corrupt int64
}

// Stats returns the cache's lookup accounting. Safe on a nil cache
// (all zeros), so callers with caching disabled need no guard.
func (c *DiskCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
	}
}

// OpenDiskCache opens (creating if needed) a cache directory.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskCache{dir: dir}, nil
}

// DefaultCacheDir returns the default cache location: $DELREP_CACHE_DIR
// when set, otherwise <user cache dir>/delrep. The environment variable
// lets the daemon and the CLIs share one cache without threading a
// directory flag through every invocation.
func DefaultCacheDir() (string, error) {
	if dir := os.Getenv("DELREP_CACHE_DIR"); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "delrep"), nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// entry is the stored form of one simulation result. Version and Key
// are stored verbatim and verified on read: a SHA-256 filename
// collision or a stale-format file therefore degrades to a miss, never
// to a wrong result.
type entry struct {
	Version string
	Key     string
	Digest  uint64
	Results core.Results
}

// blobEntry is the stored form of one artifact (see GetBlob/PutBlob).
type blobEntry struct {
	Version string
	Key     string
	Data    []byte
}

func (c *DiskCache) path(key, ext string) string {
	return filepath.Join(c.dir, CacheAddr(key)+ext)
}

// Get returns the cached results and end-state digest for a run key,
// or ok=false on any miss, mismatch, or decoding failure.
func (c *DiskCache) Get(key string) (res core.Results, digest uint64, ok bool) {
	f, err := os.Open(c.path(key, ".run"))
	if err != nil {
		c.misses.Add(1)
		return core.Results{}, 0, false
	}
	defer f.Close()
	var e entry
	if err := gob.NewDecoder(f).Decode(&e); err != nil ||
		e.Version != Version || e.Key != key {
		// The entry existed but failed to decode or verify: a
		// truncated or stale-format file, counted separately from a
		// plain miss so operators see corruption distinctly.
		c.corrupt.Add(1)
		return core.Results{}, 0, false
	}
	c.hits.Add(1)
	return e.Results, e.Digest, true
}

// GetAddr returns the cached results and digest for a content address
// (see CacheAddr), or ok=false on any miss, mismatch, or decoding
// failure. It backs the worker's GET /v1/cache/{key} endpoint: the
// caller knows only the address, so the stored key is re-hashed and
// verified against it — a filename collision or a hand-crafted address
// degrades to a miss, never to a wrong result.
func (c *DiskCache) GetAddr(addr string) (res core.Results, digest uint64, ok bool) {
	if len(addr) != 2*sha256.Size || strings.ContainsAny(addr, "/.\\") {
		return core.Results{}, 0, false // never escape the cache dir
	}
	f, err := os.Open(filepath.Join(c.dir, addr+".run"))
	if err != nil {
		c.misses.Add(1)
		return core.Results{}, 0, false
	}
	defer f.Close()
	var e entry
	if err := gob.NewDecoder(f).Decode(&e); err != nil ||
		e.Version != Version || CacheAddr(e.Key) != addr {
		c.corrupt.Add(1)
		return core.Results{}, 0, false
	}
	c.hits.Add(1)
	return e.Results, e.Digest, true
}

// Put stores one run's results under its key.
func (c *DiskCache) Put(key string, digest uint64, res core.Results) error {
	return c.write(c.path(key, ".run"), entry{
		Version: Version, Key: key, Digest: digest, Results: res,
	})
}

// GetBlob returns a cached artifact (for example an observed run's
// clog narrative) stored under an arbitrary key, or ok=false on miss.
func (c *DiskCache) GetBlob(key string) (data []byte, ok bool) {
	f, err := os.Open(c.path(key, ".blob"))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e blobEntry
	if err := gob.NewDecoder(f).Decode(&e); err != nil ||
		e.Version != Version || e.Key != key {
		return nil, false
	}
	return e.Data, true
}

// PutBlob stores an artifact under a key.
func (c *DiskCache) PutBlob(key string, data []byte) error {
	return c.write(c.path(key, ".blob"), blobEntry{
		Version: Version, Key: key, Data: data,
	})
}

// Size returns the total bytes currently held by cache entries (.run
// and .blob files; in-flight temp files are excluded).
func (c *DiskCache) Size() (int64, error) {
	files, err := c.entries()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	return total, nil
}

// cacheFile is one on-disk entry considered by Prune.
type cacheFile struct {
	name  string
	size  int64
	mtime time.Time
}

// entries lists the cache's .run and .blob files.
func (c *DiskCache) entries() ([]cacheFile, error) {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var files []cacheFile
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if !strings.HasSuffix(name, ".run") && !strings.HasSuffix(name, ".blob") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // deleted by a concurrent prune; skip
		}
		files = append(files, cacheFile{name: name, size: info.Size(), mtime: info.ModTime()})
	}
	return files, nil
}

// Prune deletes cache entries, oldest modification time first, until
// the entries' total size is at most maxBytes. Ties on mtime break by
// filename so concurrent pruners converge on the same victims. A
// long-lived process (the delrepd daemon) calls this after executed
// runs to bound its disk use; losing an entry only costs a future
// re-simulation, never correctness.
func (c *DiskCache) Prune(maxBytes int64) (removed int, freed int64, err error) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	files, err := c.entries()
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name
	})
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(c.dir, f.name)); err != nil {
			if os.IsNotExist(err) {
				total -= f.size // a concurrent pruner got there first
				continue
			}
			return removed, freed, err
		}
		total -= f.size
		freed += f.size
		removed++
	}
	return removed, freed, nil
}

// ParseSize parses a human-readable byte size: a plain integer, or an
// integer with a K/M/G/T suffix in binary units (an optional trailing
// "B" or "iB" is accepted), e.g. "1048576", "512M", "2GiB".
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	t = strings.TrimSuffix(t, "IB")
	t = strings.TrimSuffix(t, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, strings.TrimSuffix(t, "K")
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "T"):
		mult, t = 1<<40, strings.TrimSuffix(t, "T")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}

func (c *DiskCache) write(path string, v any) error {
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = gob.NewEncoder(tmp).Encode(v)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
