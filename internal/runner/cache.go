package runner

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"os"
	"path/filepath"

	"delrep/internal/core"
)

// Version is the code/version salt folded into every cache address.
// Bump it whenever a simulator change alters results for an unchanged
// configuration — stale entries then simply stop being addressable and
// age out, rather than poisoning new runs.
const Version = "delrep-run-v2"

// DiskCache is an on-disk, content-addressed store of simulation
// results (and small observed-run artifacts). Entries are gob files
// named by the SHA-256 of Version plus the run Key; gob preserves
// float64 bit patterns exactly, so a cache hit is byte-for-byte
// indistinguishable from re-running the simulation. Writes go through
// a temp file plus rename, so concurrent processes sharing a cache
// directory never observe torn entries. Any unreadable, mismatched, or
// corrupt entry is treated as a miss and overwritten by the next Put.
type DiskCache struct {
	dir string
}

// OpenDiskCache opens (creating if needed) a cache directory.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskCache{dir: dir}, nil
}

// DefaultCacheDir returns the per-user default cache location
// (<user cache dir>/delrep).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "delrep"), nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// entry is the stored form of one simulation result. Version and Key
// are stored verbatim and verified on read: a SHA-256 filename
// collision or a stale-format file therefore degrades to a miss, never
// to a wrong result.
type entry struct {
	Version string
	Key     string
	Digest  uint64
	Results core.Results
}

// blobEntry is the stored form of one artifact (see GetBlob/PutBlob).
type blobEntry struct {
	Version string
	Key     string
	Data    []byte
}

func (c *DiskCache) path(key, ext string) string {
	sum := sha256.Sum256([]byte(Version + "\x00" + key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+ext)
}

// Get returns the cached results and end-state digest for a run key,
// or ok=false on any miss, mismatch, or decoding failure.
func (c *DiskCache) Get(key string) (res core.Results, digest uint64, ok bool) {
	f, err := os.Open(c.path(key, ".run"))
	if err != nil {
		return core.Results{}, 0, false
	}
	defer f.Close()
	var e entry
	if err := gob.NewDecoder(f).Decode(&e); err != nil ||
		e.Version != Version || e.Key != key {
		return core.Results{}, 0, false
	}
	return e.Results, e.Digest, true
}

// Put stores one run's results under its key.
func (c *DiskCache) Put(key string, digest uint64, res core.Results) error {
	return c.write(c.path(key, ".run"), entry{
		Version: Version, Key: key, Digest: digest, Results: res,
	})
}

// GetBlob returns a cached artifact (for example an observed run's
// clog narrative) stored under an arbitrary key, or ok=false on miss.
func (c *DiskCache) GetBlob(key string) (data []byte, ok bool) {
	f, err := os.Open(c.path(key, ".blob"))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e blobEntry
	if err := gob.NewDecoder(f).Decode(&e); err != nil ||
		e.Version != Version || e.Key != key {
		return nil, false
	}
	return e.Data, true
}

// PutBlob stores an artifact under a key.
func (c *DiskCache) PutBlob(key string, data []byte) error {
	return c.write(c.path(key, ".blob"), blobEntry{
		Version: Version, Key: key, Data: data,
	})
}

func (c *DiskCache) write(path string, v any) error {
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = gob.NewEncoder(tmp).Encode(v)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
