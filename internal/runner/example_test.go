package runner_test

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/runner"
)

// ExampleEngine declares a figure's full run set up front on a batch,
// then consumes the results in declaration order — the pattern every
// cmd/expdriver figure uses. The worker count changes only wall-clock
// time, never the delivered results or their order; duplicate
// declarations (here, the shared baseline) are simulated once.
func ExampleEngine() {
	eng := runner.New(runner.Options{Workers: 4})

	b := eng.NewBatch()
	for _, scheme := range []config.Scheme{
		config.SchemeDelegatedReplies, config.SchemeBaseline, config.SchemeBaseline,
	} {
		cfg := config.Default()
		cfg.Scheme = scheme
		cfg.WarmupCycles, cfg.MeasureCycles = 300, 800 // example-sized windows
		b.Add(runner.Spec{Cfg: cfg, GPU: "HS", CPU: "vips"})
	}

	runs := b.Wait() // declaration order, regardless of completion order
	c := eng.Counters()
	fmt.Printf("delivered %d runs (%d simulated, %d shared)\n",
		len(runs), c.Executed, c.MemoHits)
	fmt.Printf("schemes: %s, %s, %s\n",
		runs[0].Spec.Cfg.Scheme, runs[1].Spec.Cfg.Scheme, runs[2].Spec.Cfg.Scheme)
	// Output:
	// delivered 3 runs (2 simulated, 1 shared)
	// schemes: DelegatedReplies, Baseline, Baseline
}
