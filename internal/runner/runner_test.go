package runner

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"delrep/internal/config"
	"delrep/internal/core"
)

// tinyCfg returns a configuration with test-sized windows: these tests
// run real simulations.
func tinyCfg(scheme config.Scheme) config.Config {
	cfg := config.Default()
	cfg.Scheme = scheme
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 800
	return cfg
}

// tinySpecs returns a small spec set spanning schemes and benchmarks.
func tinySpecs() []Spec {
	var specs []Spec
	for _, scheme := range []config.Scheme{config.SchemeBaseline, config.SchemeDelegatedReplies} {
		for _, g := range []string{"HS", "BP"} {
			specs = append(specs, Spec{Cfg: tinyCfg(scheme), GPU: g, CPU: "vips"})
		}
	}
	return specs
}

// TestParallelSerialEquivalence is the end-to-end determinism proof:
// a serial engine, a wide parallel engine, and direct in-place
// execution must agree bit-for-bit on every result and on the
// determinism-audit digest of every run.
func TestParallelSerialEquivalence(t *testing.T) {
	specs := tinySpecs()

	serial := New(Options{Workers: 1}).RunAll(specs)
	parallel := New(Options{Workers: 8}).RunAll(specs)

	for i, spec := range specs {
		direct := core.RunAudit(spec.Cfg, spec.GPU, spec.CPU)
		if serial[i].Digest != direct.Digest {
			t.Errorf("spec %d: serial digest %x != direct digest %x", i, serial[i].Digest, direct.Digest)
		}
		if parallel[i].Digest != serial[i].Digest {
			t.Errorf("spec %d: parallel digest %x != serial digest %x", i, parallel[i].Digest, serial[i].Digest)
		}
		if parallel[i].Results != serial[i].Results {
			t.Errorf("spec %d: parallel results differ from serial:\n%+v\n%+v",
				i, parallel[i].Results, serial[i].Results)
		}
		if serial[i].Results != direct.Results {
			t.Errorf("spec %d: engine results differ from direct execution", i)
		}
	}
}

// TestBatchDeclarationOrder checks that Wait returns runs in
// declaration order with the declared specs attached.
func TestBatchDeclarationOrder(t *testing.T) {
	specs := tinySpecs()
	b := New(Options{Workers: 4}).NewBatch()
	for _, s := range specs {
		b.Add(s)
	}
	if b.Len() != len(specs) {
		t.Fatalf("batch length %d, want %d", b.Len(), len(specs))
	}
	runs := b.Wait()
	for i, r := range runs {
		if r.Spec.GPU != specs[i].GPU || r.Spec.Cfg.Scheme != specs[i].Cfg.Scheme {
			t.Errorf("run %d delivered out of declaration order: got %s/%s want %s/%s",
				i, r.Spec.GPU, r.Spec.Cfg.Scheme, specs[i].GPU, specs[i].Cfg.Scheme)
		}
		if r.Results.Cycles == 0 {
			t.Errorf("run %d: empty results", i)
		}
	}
}

// TestMemoDedup checks that duplicate submissions share one execution
// and one Future, including when submitted concurrently.
func TestMemoDedup(t *testing.T) {
	e := New(Options{Workers: 4})
	spec := Spec{Cfg: tinyCfg(config.SchemeBaseline), GPU: "HS", CPU: "vips"}

	var wg sync.WaitGroup
	futs := make([]*Future, 8)
	for i := range futs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			futs[i] = e.Submit(spec)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(futs); i++ {
		if futs[i] != futs[0] {
			t.Fatal("duplicate submissions did not share a future")
		}
	}
	a := futs[0].Wait()
	c := e.Counters()
	if c.Executed != 1 {
		t.Errorf("executed %d simulations, want 1", c.Executed)
	}
	if c.MemoHits != int64(len(futs)-1) {
		t.Errorf("memo hits %d, want %d", c.MemoHits, len(futs)-1)
	}
	// A later submission shares the same future (and its original
	// Source); only the counters record the extra memo hit.
	if b := e.Run(spec); b.Results != a.Results {
		t.Error("re-run returned different results")
	}
	if c := e.Counters(); c.Executed != 1 || c.MemoHits != int64(len(futs)) {
		t.Errorf("after re-run: executed %d, memo hits %d", c.Executed, c.MemoHits)
	}
}

// TestProgressSerialized checks that concurrent progress lines are not
// interleaved mid-line.
func TestProgressSerialized(t *testing.T) {
	var buf syncBuffer
	e := New(Options{Workers: 4, Progress: &buf})
	e.RunAll(tinySpecs())
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "  run ") || !strings.HasSuffix(line, "...") {
			t.Errorf("malformed progress line: %q", line)
		}
	}
}

// syncBuffer serializes writes; the engine already serializes its own,
// but the test must not race with them while reading.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestKeyDistinguishesConfigs is the regression test for cache-key
// aliasing: every run-identifying mutation — most importantly the
// warm-up and measurement windows, which the previous hand-written key
// omitted — must change the key.
func TestKeyDistinguishesConfigs(t *testing.T) {
	base := config.Default()
	mutations := []func(*config.Config){
		func(c *config.Config) { c.Scheme = config.SchemeDelegatedReplies },
		func(c *config.Config) { c.NoC.Topology = config.TopoCrossbar },
		func(c *config.Config) { c.NoC.Routing = config.RoutingDyXY },
		func(c *config.Config) { c.NoC.ChannelBytes = 32 },
		func(c *config.Config) { c.NoC.InjectionBuf = 16 },
		func(c *config.Config) { c.NoC.SharedPhys = true; c.NoC.ReqVCs, c.NoC.RepVCs = 1, 3 },
		func(c *config.Config) { c.GPU.L1Bytes = 64 * 1024 },
		func(c *config.Config) { c.GPU.Org = config.L1DynEB },
		func(c *config.Config) { c.GPU.CTASched = config.CTADistributed },
		func(c *config.Config) { c.GPU.FRQEntries = 2 },
		func(c *config.Config) { c.LLC.SliceBytes = 2 << 20 },
		func(c *config.Config) { c.Layout = config.LayoutB() },
		func(c *config.Config) { c.Layout = config.ScaledBaseline(10, 10) },
		func(c *config.Config) { c.DelRep.MaxDelegationsPerCycle = 4 },
		func(c *config.Config) { c.DelRep.AlwaysDelegate = true },
		func(c *config.Config) { c.DelRep.FRQMerge = true },
		func(c *config.Config) { c.Seed = 99 },
		// The aliasing bug this test guards against: -quick and full
		// runs differ only in their windows.
		func(c *config.Config) { c.WarmupCycles = 5_000 },
		func(c *config.Config) { c.MeasureCycles = 12_000 },
		func(c *config.Config) { c.WarmupCycles, c.MeasureCycles = 5_000, 12_000 },
	}
	seen := map[string]int{Key(base, "HS", "vips"): -1}
	for i, mut := range mutations {
		cfg := config.Default()
		mut(&cfg)
		k := Key(cfg, "HS", "vips")
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %d collides with %d: %s", i, prev, k)
		}
		seen[k] = i
	}
	if Key(base, "HS", "vips") != Key(base, "HS", "vips") {
		t.Error("key is not deterministic")
	}
	if Key(base, "HS", "vips") == Key(base, "NN", "vips") {
		t.Error("key ignores the GPU benchmark")
	}
	if Key(base, "HS", "vips") == Key(base, "HS", "dedup") {
		t.Error("key ignores the CPU benchmark")
	}
}
