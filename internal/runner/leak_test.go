package runner

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"delrep/internal/config"
)

// waitGoroutines polls until the process goroutine count drops back to
// at most base, failing the test otherwise. Worker goroutines park on a
// channel receive after Close, so a short grace period covers scheduler
// lag without masking a real leak.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d alive, want <= %d\n%s", n, base, buf)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelRunsReleaseWorkers drives a parallel run down every
// engine lifecycle path — completed, cancelled mid-run, and panicked —
// and requires the per-run worker pool (System.SetParallel owns N-1
// goroutines) to be gone afterwards. RunAuditCtrl closes the system on
// a deferred path, so success, error return, and panic unwinding must
// all release it.
func TestParallelRunsReleaseWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	eng := New(Options{Workers: 2, RunParallel: 4})

	cfg := config.Default()
	cfg.WarmupCycles, cfg.MeasureCycles = 200, 1200

	// Completed run: the result must record the engine-effective count.
	run := eng.Run(Spec{Cfg: cfg, GPU: "HS", CPU: "vips"})
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.Workers != 4 {
		t.Fatalf("Run.Workers = %d, want 4", run.Workers)
	}
	waitGoroutines(t, base)

	// Cancelled mid-run: the abort path unwinds through the same defer.
	long := config.Default()
	long.WarmupCycles, long.MeasureCycles = 500, 500_000_000
	ctx, cancel := context.WithCancel(context.Background())
	f := eng.SubmitCtx(ctx, Spec{Cfg: long, GPU: "HS", CPU: "vips"})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if done, _ := f.Progress(); done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never reported progress")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if run := f.Wait(); !errors.Is(run.Err, context.Canceled) {
		t.Fatalf("run.Err = %v, want context.Canceled", run.Err)
	}
	waitGoroutines(t, base)

	// Panicked run (unknown benchmark): the recover in runAudit fires
	// after the System's deferred Close has already run.
	if run := eng.Run(Spec{Cfg: cfg, GPU: "no-such-benchmark", CPU: "vips"}); run.Err == nil {
		t.Fatal("run with unknown benchmark reported no error")
	}
	waitGoroutines(t, base)
}
