// Package runner executes independent simulations in parallel and
// memoizes their results, in memory and on disk.
//
// The evaluation's sweeps are embarrassingly parallel *across* runs:
// every (config, GPU benchmark, CPU benchmark) triple is an isolated
// deterministic computation, and the Engine's bounded worker pool runs
// whole simulations concurrently. Within a run, the coordinating cycle
// loop stays serial and pure (the tickpurity analyzer in cmd/simlint
// enforces it), but the network tick may additionally be
// tile-partitioned across cores (core.SetParallel, DESIGN.md §11) —
// a pure execution strategy that is bit-identical to serial at any
// worker count, which is why it never appears in a run's Key.
//
// The contract that keeps parallel runs trustworthy:
//
//   - Submissions are deduplicated by Key, so one configuration is
//     simulated at most once per process no matter how many figures
//     request it.
//   - A Batch delivers results in declaration order regardless of
//     completion order; callers that declare their full run set up
//     front and then consume results in order produce byte-identical
//     reports at any worker count.
//   - Each run's end state is summarized by the determinism-audit
//     digest (core.RunAudit); equality of digests between a serial and
//     a parallel execution proves the pool changed nothing.
//   - An optional DiskCache persists results across processes, keyed
//     by the full run-identifying configuration plus a code-version
//     salt (see Key and Version).
//
// Typical use:
//
//	eng := runner.New(runner.Options{Workers: 8, Cache: cache})
//	b := eng.NewBatch()
//	for _, g := range benches {
//		b.Add(runner.Spec{Cfg: cfg, GPU: g, CPU: "vips"})
//	}
//	for _, run := range b.Wait() { // declaration order
//		fmt.Println(run.Results.GPUIPC)
//	}
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/telemetry"
)

// Spec identifies one simulation: a complete configuration plus the
// GPU and CPU benchmark names. Specs with equal Key share one result.
type Spec struct {
	Cfg config.Config
	GPU string
	CPU string
}

// Source records where a run's result came from.
type Source uint8

const (
	// SourceExecuted means the simulation ran in this process.
	SourceExecuted Source = iota
	// SourceMemo means an earlier submission of the same Spec in this
	// process supplied the result.
	SourceMemo
	// SourceDisk means the on-disk cache supplied the result.
	SourceDisk
)

func (s Source) String() string {
	switch s {
	case SourceExecuted:
		return "executed"
	case SourceMemo:
		return "memo"
	case SourceDisk:
		return "disk"
	}
	return "???"
}

// Resolver resolves a spec to a finished result somewhere other than
// this process — a fleet coordinator or a remote delrepd daemon
// (implemented by fleet.Client). Plugging one into Options.Remote
// turns the engine into a fleet client: dedup, batching, ordering,
// progress, and the local disk cache all keep working, but execution
// happens across the wire.
type Resolver interface {
	// Resolve returns the run's results and digest, how the remote end
	// obtained them (executed / memo / disk), and which worker served
	// them. Returning an error wrapping ErrNotRemotable means the spec
	// cannot be expressed in the wire form; the engine then falls back
	// to executing locally. Any other error fails the run (the resolver
	// is expected to have already retried/failed over internally).
	Resolve(ctx context.Context, spec Spec, parallel int) (Remote, error)
}

// Remote is one remotely resolved run.
type Remote struct {
	Results core.Results
	Digest  uint64
	Source  Source // how the remote end obtained the result
	Worker  string // base URL of the worker daemon that served it
}

// ErrNotRemotable marks a spec that cannot be expressed as a wire
// simspec (an experiment that mutates configuration knobs the JSON
// spec does not carry). The engine treats it as "run this one
// locally", so hybrid sweeps — most points through the fleet, exotic
// points in-process — still deliver byte-identical output.
var ErrNotRemotable = errors.New("spec is not expressible as a wire spec")

// Run is one delivered simulation result.
type Run struct {
	Spec    Spec
	Results core.Results
	// Digest is the determinism-audit digest of the simulation's end
	// state (core.RunAudit); serial and parallel executions of the
	// same Spec must agree on it bit-for-bit.
	Digest uint64
	Source Source
	// Workers is the engine-effective intra-run worker count the
	// simulation actually ticked with (core.AuditRun.Workers): the
	// requested parallelism after the engine clamps it to what the
	// topology can use. Execution metadata only — zero for memo and
	// disk hits (those ran elsewhere, possibly at another N), and
	// never part of Results or the cache.
	Workers int
	// Worker is the base URL of the fleet worker that served the run,
	// when it was resolved through Options.Remote; empty for local
	// executions and cache hits. Execution metadata only.
	Worker string
	// Err is non-nil when the run did not produce a result: the
	// simulation was cancelled (context.Canceled) or panicked. Results
	// and Digest are zero in that case, and the run was neither cached
	// nor left in the memo table.
	Err error
}

// Counters reports the engine's accounting. Every submission that
// starts a fresh execution resolves to exactly one of Executed,
// DiskHits, or Failed; MemoHits counts submissions folded onto an
// already-submitted Future (whatever that future later resolves to).
// Obtain one via Engine.Snapshot; the fields of a snapshot are a plain
// point-in-time copy, safe to read freely.
type Counters struct {
	Executed int64 // simulations run to completion in this process
	MemoHits int64 // submissions served by an earlier in-process submission
	DiskHits int64 // submissions served by the on-disk cache
	Failed   int64 // executions that ended in error (cancelled or panicked)
}

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent simulations; <=0 selects GOMAXPROCS.
	Workers int
	// Cache, when non-nil, persists results across processes.
	Cache *DiskCache
	// Progress, when non-nil, receives one line per simulation as it
	// starts. Writes are serialized (one Write call per line), so
	// os.Stderr stays readable under concurrency.
	Progress io.Writer
	// RunParallel, when > 1, tile-partitions each simulation's network
	// tick across that many workers (core.SetParallel). It is an
	// execution hint: results and digests are bit-identical at any
	// value, so it does not enter the memo/cache Key, and SubmitCtxParallel
	// can override it per submission.
	RunParallel int
	// Remote, when non-nil, resolves cache-missing specs through a
	// fleet coordinator (or a single remote daemon) instead of
	// simulating locally. Specs the wire form cannot express
	// (ErrNotRemotable) still execute locally. Remotely resolved
	// results are written into the local disk cache, so a warm rerun
	// needs no fleet at all.
	Remote Resolver
}

// Engine is a deterministic parallel execution engine for independent
// simulations. Methods are safe for concurrent use.
type Engine struct {
	cache       *DiskCache
	progress    io.Writer
	sem         chan struct{}
	runParallel int
	remote      Resolver

	// progressMu serializes writes to progress and guards nothing
	// else: a slow progress writer (a piped stderr, a test buffer)
	// must never block Submit/Wait, which contend on mu.
	progressMu sync.Mutex

	// Accounting is atomic, not mu-guarded: /metrics scrapes read it
	// via Snapshot without contending with submissions.
	executed atomic.Int64
	memoHits atomic.Int64
	diskHits atomic.Int64
	failed   atomic.Int64

	mu   sync.Mutex
	memo map[string]*Future

	// failMu guards failures: the terminal Run of every execution that
	// ended in error, kept so drivers can print a per-run failure
	// summary (which spec, which worker, what error) instead of only a
	// count. Bounded by maxFailures to keep a pathological sweep from
	// accumulating without limit.
	failMu   sync.Mutex
	failures []Run
}

// maxFailures bounds the retained failure detail; the Failed counter
// keeps exact totals regardless.
const maxFailures = 256

// New builds an Engine.
func New(opts Options) *Engine {
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		cache:       opts.Cache,
		progress:    opts.Progress,
		sem:         make(chan struct{}, n),
		runParallel: opts.RunParallel,
		remote:      opts.Remote,
		memo:        map[string]*Future{},
	}
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// DiskCache returns the engine's on-disk cache (nil if disabled).
func (e *Engine) DiskCache() *DiskCache { return e.cache }

// Snapshot returns a point-in-time copy of the engine's accounting.
// Each field is read atomically; the snapshot as a whole is not a
// single cut across all four counters, which is fine for monitoring
// (the counters only grow).
func (e *Engine) Snapshot() Counters {
	return Counters{
		Executed: e.executed.Load(),
		MemoHits: e.memoHits.Load(),
		DiskHits: e.diskHits.Load(),
		Failed:   e.failed.Load(),
	}
}

// Counters is an alias for Snapshot, kept for existing callers.
func (e *Engine) Counters() Counters { return e.Snapshot() }

// Future is a handle to one submitted simulation.
type Future struct {
	spec Spec
	key  string
	done chan struct{}
	run  Run

	// span is the submitting job's telemetry span (nil when telemetry
	// is off). Only the submission that created the future carries it:
	// that job's trace gets the cache.lookup/engine.run detail, while
	// deduplicated joiners get a dedup.join span of their own.
	span *telemetry.Span

	// parallel is the intra-run worker count the execution will use
	// (first submitter wins on dedup — safe because parallelism never
	// changes the result, only the wall time).
	parallel int

	progDone  atomic.Int64
	progTotal atomic.Int64

	mu      sync.Mutex
	waiters int  // cancellable submissions still interested
	pinned  bool // a non-cancellable submission wants the result
	cancel  context.CancelFunc
}

// Spec returns the submitted spec.
func (f *Future) Spec() Spec { return f.spec }

// Wait blocks until the simulation completes and returns its Run.
func (f *Future) Wait() Run {
	<-f.done
	return f.run
}

// Results blocks until the simulation completes and returns its Results.
func (f *Future) Results() core.Results { return f.Wait().Results }

// Progress returns the cycles simulated so far and the run's total
// cycles (warm-up + measurement). Both are 0 until the simulation
// reaches its first checkpoint; a cache hit reports done == total
// immediately. Safe to call concurrently with the run.
func (f *Future) Progress() (done, total int64) {
	return f.progDone.Load(), f.progTotal.Load()
}

// addWaiter registers one submission's interest in the future. A
// context that can never be cancelled (context.Background and friends)
// pins the future: it then runs to completion no matter what other
// waiters do. Otherwise the future's execution is cancelled once every
// registered cancellable context has been cancelled.
func (f *Future) addWaiter(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		f.mu.Lock()
		f.pinned = true
		f.mu.Unlock()
		return
	}
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
	go func() {
		select {
		case <-ctx.Done():
			f.mu.Lock()
			f.waiters--
			if f.waiters == 0 && !f.pinned {
				f.cancel()
			}
			f.mu.Unlock()
		case <-f.done:
		}
	}()
}

// Submit schedules one simulation on the pool and returns its Future.
// A spec whose Key matches an earlier submission returns the earlier
// Future (counted as a memo hit); otherwise the disk cache is
// consulted and, on a miss, the simulation executes on a worker. The
// returned future is pinned: it cannot be cancelled.
func (e *Engine) Submit(spec Spec) *Future {
	return e.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit with cancellation: if ctx is cancelled before
// the simulation completes — and every other submission interested in
// the same future has also been cancelled — the run is aborted at its
// next cycle-window checkpoint, its worker slot is freed, and Wait
// returns a Run with Err set. A cancelled or failed future is removed
// from the memo table before it completes, so a later submission of
// the same spec re-executes.
func (e *Engine) SubmitCtx(ctx context.Context, spec Spec) *Future {
	return e.SubmitCtxParallel(ctx, spec, 0)
}

// SubmitCtxParallel is SubmitCtx with a per-submission intra-run
// parallelism override (<= 0 falls back to Options.RunParallel).
// Parallelism is deliberately not part of the memo/cache Key: results
// are bit-identical at any worker count, so a submission may be served
// by a future or cached result that ran at a different N — when
// submissions race, the first one's N wins.
func (e *Engine) SubmitCtxParallel(ctx context.Context, spec Spec, parallel int) *Future {
	if parallel <= 0 {
		parallel = e.runParallel
	}
	span := telemetry.SpanFromContext(ctx)
	k := Key(spec.Cfg, spec.GPU, spec.CPU)
	e.mu.Lock()
	if f, ok := e.memo[k]; ok {
		e.mu.Unlock()
		e.memoHits.Add(1)
		if join := span.Start("dedup.join"); join != nil {
			// The join covers waiting on the shared future; it closes
			// when that future completes, whoever ran it.
			go func() { <-f.done; join.End() }()
		}
		f.addWaiter(ctx)
		return f
	}
	//simlint:ignore ctxflow the run is memoized and shared: its lifetime is the union of all waiter contexts (see addWaiter), not the first submitter's
	runCtx, cancel := context.WithCancel(context.Background())
	f := &Future{spec: spec, key: k, done: make(chan struct{}), cancel: cancel, span: span, parallel: parallel}
	e.memo[k] = f
	e.mu.Unlock()
	f.addWaiter(ctx)
	go e.execute(f, runCtx)
	return f
}

// Run submits one simulation and waits for it.
func (e *Engine) Run(spec Spec) Run { return e.Submit(spec).Wait() }

func (e *Engine) execute(f *Future, runCtx context.Context) {
	defer func() {
		if f.run.Err != nil {
			// A failed or cancelled run must not satisfy later
			// submissions of the same spec: drop it from the memo
			// table before anyone can observe completion.
			e.mu.Lock()
			delete(e.memo, f.key)
			e.mu.Unlock()
			e.failed.Add(1)
			e.failMu.Lock()
			if len(e.failures) < maxFailures {
				e.failures = append(e.failures, f.run)
			}
			e.failMu.Unlock()
		}
		close(f.done)
	}()

	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	if err := runCtx.Err(); err != nil {
		// Cancelled while waiting for a worker slot.
		f.run = Run{Spec: f.spec, Err: err}
		return
	}

	if e.cache != nil {
		look := f.span.Start("cache.lookup")
		res, digest, ok := e.cache.Get(f.key)
		look.Set("hit", ok)
		look.End()
		if ok {
			e.diskHits.Add(1)
			total := f.spec.Cfg.WarmupCycles + f.spec.Cfg.MeasureCycles
			f.progTotal.Store(total)
			f.progDone.Store(total)
			f.run = Run{Spec: f.spec, Results: res, Digest: digest, Source: SourceDisk}
			return
		}
	}

	if e.remote != nil {
		if done := e.resolveRemote(f, runCtx); done {
			return
		}
		// ErrNotRemotable: fall through to a local execution.
	}

	if e.progress != nil {
		line := fmt.Sprintf("  run %-5s + %-12s %s %s %s...\n",
			f.spec.GPU, f.spec.CPU, f.spec.Cfg.Scheme,
			f.spec.Cfg.Layout.Name, f.spec.Cfg.NoC.Topology)
		e.progressMu.Lock()
		//simlint:ignore lockorder progressMu exists solely to serialize this writer; it is never held with mu or around anything else
		io.WriteString(e.progress, line)
		e.progressMu.Unlock()
	}

	runSpan := f.span.Start("engine.run",
		telemetry.A("gpu", f.spec.GPU), telemetry.A("cpu", f.spec.CPU))
	a, err := runAudit(runCtx, f, runSpan)
	runSpan.End()
	if err != nil {
		runSpan.Set("error", err.Error())
		f.run = Run{Spec: f.spec, Err: err}
		return
	}
	runSpan.Set("cycles", a.Cycles)
	e.executed.Add(1)
	f.run = Run{Spec: f.spec, Results: a.Results, Digest: a.Digest, Source: SourceExecuted, Workers: a.Workers}
	if e.cache != nil {
		// Best effort: a full or read-only cache must not fail the run.
		_ = e.cache.Put(f.key, a.Digest, a.Results)
	}
}

// resolveRemote resolves one cache-missing spec through the engine's
// remote resolver. It reports done=false only for ErrNotRemotable
// specs, which the caller then executes locally; every other outcome
// (success or failure) finalizes the future. A resolved result is
// written into the local disk cache, so the fleet is consulted at most
// once per spec per cache lifetime.
func (e *Engine) resolveRemote(f *Future, runCtx context.Context) (done bool) {
	span := f.span.Start("fleet.resolve")
	rem, err := e.remote.Resolve(runCtx, f.spec, f.parallel)
	if errors.Is(err, ErrNotRemotable) {
		span.Set("fallback", "local")
		span.End()
		return false
	}
	if err != nil {
		span.Set("error", err.Error())
		span.End()
		f.run = Run{Spec: f.spec, Err: err, Worker: rem.Worker}
		return true
	}
	span.Set("worker", rem.Worker)
	span.Set("source", rem.Source.String())
	span.End()
	// Count the resolution under the source the fleet reports, so a
	// driver's delivered-run accounting (executed + disk + memo) sums
	// identically whether runs happened here or across the wire.
	switch rem.Source {
	case SourceMemo:
		e.memoHits.Add(1)
	case SourceDisk:
		e.diskHits.Add(1)
	default:
		e.executed.Add(1)
	}
	total := f.spec.Cfg.WarmupCycles + f.spec.Cfg.MeasureCycles
	f.progTotal.Store(total)
	f.progDone.Store(total)
	f.run = Run{Spec: f.spec, Results: rem.Results, Digest: rem.Digest,
		Source: rem.Source, Worker: rem.Worker}
	if e.cache != nil {
		_ = e.cache.Put(f.key, rem.Digest, rem.Results)
	}
	return true
}

// Failures returns the retained terminal Runs of executions that ended
// in error (cancelled, panicked, or failed remotely), in completion
// order, capped at an internal bound. The slice is a copy.
func (e *Engine) Failures() []Run {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	out := make([]Run, len(e.failures))
	copy(out, e.failures)
	return out
}

// runAudit executes the simulation under the future's run context,
// converting a panic (an invalid configuration, a simulator bug) into
// an error so one bad spec cannot take down a long-lived process that
// shares this engine.
//
// When the submitting job carries a telemetry span, every
// cycle-window checkpoint closes one "window" child span and opens the
// next, so the job timeline shows where simulated time went. The spans
// are recorded from the progress callback — strictly outside the tick
// loop — and the trace's span cap bounds very long runs.
func runAudit(runCtx context.Context, f *Future, runSpan *telemetry.Span) (a core.AuditRun, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simulation panicked: %v", p)
		}
	}()
	onProgress := func(done, total int64) {
		f.progDone.Store(done)
		f.progTotal.Store(total)
	}
	if runSpan != nil {
		win := runSpan.Start("window 0")
		winIdx := 1
		onProgress = func(done, total int64) {
			f.progDone.Store(done)
			f.progTotal.Store(total)
			win.Set("cycles_done", done)
			win.End()
			win = nil
			if done < total {
				win = runSpan.Start(fmt.Sprintf("window %d", winIdx))
				winIdx++
			}
		}
	}
	return core.RunAuditCtrl(core.RunControl{
		Ctx:        runCtx,
		OnProgress: onProgress,
		Parallel:   f.parallel,
	}, f.spec.Cfg, f.spec.GPU, f.spec.CPU)
}

// Batch collects declared runs and delivers their results in
// declaration order regardless of completion order.
type Batch struct {
	e    *Engine
	futs []*Future
}

// NewBatch starts an empty batch on the engine.
func (e *Engine) NewBatch() *Batch { return &Batch{e: e} }

// Add declares one run. The simulation is scheduled immediately; Add
// never blocks on simulation work.
func (b *Batch) Add(spec Spec) *Future {
	f := b.e.Submit(spec)
	b.futs = append(b.futs, f)
	return f
}

// Len returns the number of declared runs.
func (b *Batch) Len() int { return len(b.futs) }

// Wait blocks until every declared run completes and returns the runs
// in declaration order.
func (b *Batch) Wait() []Run {
	out := make([]Run, len(b.futs))
	for i, f := range b.futs {
		out[i] = f.Wait()
	}
	return out
}

// RunAll declares every spec on a fresh batch and waits: results are
// in spec order.
func (e *Engine) RunAll(specs []Spec) []Run {
	b := e.NewBatch()
	for _, s := range specs {
		b.Add(s)
	}
	return b.Wait()
}
