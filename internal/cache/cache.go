// Package cache implements the set-associative caches and MSHR files
// used by the GPU L1s, CPU L1s, and LLC slices. Caches operate on line
// addresses (byte address / line size is done by the caller via Line)
// and carry a small per-line auxiliary value which the LLC uses for the
// Delegated Replies core pointer.
package cache

import "fmt"

// Addr is a byte or line address in the simulated 48-bit address space.
type Addr uint64

// Config describes cache geometry.
type Config struct {
	SizeBytes int
	Assoc     int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.LineBytes) }

// Line converts a byte address to a line address.
func (c Config) Line(a Addr) Addr { return a / Addr(c.LineBytes) }

type way struct {
	line  Addr
	valid bool
	dirty bool
	aux   uint32 // user payload, e.g. LLC core pointer (0 = invalid pointer)
	used  uint64 // LRU timestamp
}

// Cache is a set-associative, LRU-replacement cache indexed by line
// address. It is a tag store only; data contents are not simulated.
type Cache struct {
	cfg   Config
	sets  [][]way
	clock uint64

	Accesses int64
	Hits     int64
}

// New builds a cache with the given geometry.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	c := &Cache{cfg: cfg, sets: make([][]way, sets)}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Assoc)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(line Addr) []way {
	// Index with a Fibonacci hash, taking the product's high bits: the
	// low bits of consecutive multiples share common factors with the
	// set count and would alias sequential sweeps into few sets.
	h := uint64(line) * 0x9e3779b97f4a7c15
	return c.sets[(h>>32)%uint64(len(c.sets))]
}

// Lookup probes the cache for a line; on a hit it updates LRU state and
// returns the line's aux value.
func (c *Cache) Lookup(line Addr) (hit bool, aux uint32) {
	c.Accesses++
	c.clock++
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].used = c.clock
			c.Hits++
			return true, set[i].aux
		}
	}
	return false, 0
}

// Peek probes without updating LRU or statistics (used by coherence
// probes and invariant checks).
func (c *Cache) Peek(line Addr) (hit bool, aux uint32) {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return true, set[i].aux
		}
	}
	return false, 0
}

// Insert fills a line (allocating on miss), setting its aux value and
// dirty flag. It returns the victim line if a valid line was evicted.
func (c *Cache) Insert(line Addr, aux uint32, dirty bool) (victim Addr, victimDirty, evicted bool) {
	c.clock++
	set := c.set(line)
	lru := 0
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].aux = aux
			set[i].dirty = set[i].dirty || dirty
			set[i].used = c.clock
			return 0, false, false
		}
		if !set[i].valid {
			lru = i
		} else if set[lru].valid && set[i].used < set[lru].used {
			lru = i
		}
	}
	v := set[lru]
	set[lru] = way{line: line, valid: true, dirty: dirty, aux: aux, used: c.clock}
	if v.valid {
		return v.line, v.dirty, true
	}
	return 0, false, false
}

// SetAux updates the aux value of a resident line; it reports whether
// the line was present.
func (c *Cache) SetAux(line Addr, aux uint32) bool {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].aux = aux
			return true
		}
	}
	return false
}

// Invalidate removes a line if present and reports whether it was there.
func (c *Cache) Invalidate(line Addr) bool {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].valid = false
			return true
		}
	}
	return false
}

// InvalidateAll flushes the whole cache (kernel-boundary software
// coherence) and returns the number of lines dropped.
func (c *Cache) InvalidateAll() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				c.sets[s][i].valid = false
				n++
			}
		}
	}
	return n
}

// ClearAux zeroes the aux value of every resident line (LLC pointer
// invalidation on GPU L1 flush).
func (c *Cache) ClearAux() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i].aux = 0
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}

// HitRate returns hits/accesses since construction or the last ResetStats.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// ResetStats clears the access/hit counters without touching contents.
func (c *Cache) ResetStats() { c.Accesses, c.Hits = 0, 0 }
