// Package cache implements the set-associative caches and MSHR files
// used by the GPU L1s, CPU L1s, and LLC slices. Caches operate on line
// addresses (byte address / line size is done by the caller via Line)
// and carry a small per-line auxiliary value which the LLC uses for the
// Delegated Replies core pointer.
package cache

import "fmt"

// Addr is a byte or line address in the simulated 48-bit address space.
type Addr uint64

// Config describes cache geometry.
type Config struct {
	SizeBytes int
	Assoc     int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.LineBytes) }

// Line converts a byte address to a line address.
func (c Config) Line(a Addr) Addr { return a / Addr(c.LineBytes) }

// noLine marks an absent way in the tag array. Real line addresses are
// 48-bit byte addresses divided by the line size, so they can never
// collide with the sentinel.
const noLine = ^Addr(0)

// Cache is a set-associative, LRU-replacement cache indexed by line
// address. It is a tag store only; data contents are not simulated.
//
// Way state is held struct-of-arrays with a set's ways at assoc
// consecutive indices: a tag probe — the hottest operation in the
// simulator — scans one contiguous run of line addresses instead of
// striding across per-way structs, and an absent way is encoded as the
// noLine sentinel so the scan needs no separate valid-bit load.
type Cache struct {
	cfg   Config
	assoc int
	nsets int

	lines []Addr   // tag per way, noLine when absent
	dirty []bool   // dirty bit per way
	aux   []uint32 // user payload, e.g. LLC core pointer (0 = invalid pointer)
	used  []uint64 // LRU timestamp per way
	clock uint64

	Accesses int64
	Hits     int64
}

// New builds a cache with the given geometry.
func New(cfg Config) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	n := nsets * cfg.Assoc
	c := &Cache{
		cfg:   cfg,
		assoc: cfg.Assoc,
		nsets: nsets,
		lines: make([]Addr, n),
		dirty: make([]bool, n),
		aux:   make([]uint32, n),
		used:  make([]uint64, n),
	}
	for i := range c.lines {
		c.lines[i] = noLine
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(line Addr) int {
	// Index with a Fibonacci hash, taking the product's high bits: the
	// low bits of consecutive multiples share common factors with the
	// set count and would alias sequential sweeps into few sets.
	h := uint64(line) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(c.nsets))
}

// find returns the flat way index holding line, or -1.
func (c *Cache) find(line Addr) int {
	base := c.setIndex(line) * c.assoc
	tags := c.lines[base : base+c.assoc]
	for i := range tags {
		if tags[i] == line {
			return base + i
		}
	}
	return -1
}

// Lookup probes the cache for a line; on a hit it updates LRU state and
// returns the line's aux value.
func (c *Cache) Lookup(line Addr) (hit bool, aux uint32) {
	c.Accesses++
	c.clock++
	if j := c.find(line); j >= 0 {
		c.used[j] = c.clock
		c.Hits++
		return true, c.aux[j]
	}
	return false, 0
}

// Probe scans for a line without side effects and, on a hit, returns
// the flat way index so the caller can commit the lookup later with
// CommitHit (or account a known miss with RecordMiss) without
// rescanning the set. Together the three methods let hit/miss decision
// points that must defer their bookkeeping (e.g. until buffer space is
// confirmed) pay for exactly one tag scan while evolving the access
// counters, hit counters, and LRU clock identically to Lookup.
func (c *Cache) Probe(line Addr) (hit bool, aux uint32, way int) {
	if j := c.find(line); j >= 0 {
		return true, c.aux[j], j
	}
	return false, 0, -1
}

// CommitHit applies the side effects Lookup would have had for a hit
// previously located by Probe.
func (c *Cache) CommitHit(way int) {
	c.Accesses++
	c.clock++
	c.used[way] = c.clock
	c.Hits++
}

// RecordMiss applies the side effects Lookup has on a miss, for
// callers that already know (via Probe) the line is absent.
func (c *Cache) RecordMiss() {
	c.Accesses++
	c.clock++
}

// Peek probes without updating LRU or statistics (used by coherence
// probes and invariant checks).
func (c *Cache) Peek(line Addr) (hit bool, aux uint32) {
	if j := c.find(line); j >= 0 {
		return true, c.aux[j]
	}
	return false, 0
}

// Insert fills a line (allocating on miss), setting its aux value and
// dirty flag. It returns the victim line if a valid line was evicted.
func (c *Cache) Insert(line Addr, aux uint32, dirty bool) (victim Addr, victimDirty, evicted bool) {
	c.clock++
	base := c.setIndex(line) * c.assoc
	lru := base
	for j := base; j < base+c.assoc; j++ {
		if c.lines[j] == line {
			c.aux[j] = aux
			c.dirty[j] = c.dirty[j] || dirty
			c.used[j] = c.clock
			return 0, false, false
		}
		if c.lines[j] == noLine {
			lru = j
		} else if c.lines[lru] != noLine && c.used[j] < c.used[lru] {
			lru = j
		}
	}
	vLine, vDirty := c.lines[lru], c.dirty[lru]
	c.lines[lru] = line
	c.dirty[lru] = dirty
	c.aux[lru] = aux
	c.used[lru] = c.clock
	if vLine != noLine {
		return vLine, vDirty, true
	}
	return 0, false, false
}

// SetAux updates the aux value of a resident line; it reports whether
// the line was present.
func (c *Cache) SetAux(line Addr, aux uint32) bool {
	if j := c.find(line); j >= 0 {
		c.aux[j] = aux
		return true
	}
	return false
}

// Invalidate removes a line if present and reports whether it was there.
func (c *Cache) Invalidate(line Addr) bool {
	if j := c.find(line); j >= 0 {
		c.lines[j] = noLine
		return true
	}
	return false
}

// InvalidateAll flushes the whole cache (kernel-boundary software
// coherence) and returns the number of lines dropped.
func (c *Cache) InvalidateAll() int {
	n := 0
	for j := range c.lines {
		if c.lines[j] != noLine {
			c.lines[j] = noLine
			n++
		}
	}
	return n
}

// ClearAux zeroes the aux value of every resident line (LLC pointer
// invalidation on GPU L1 flush).
func (c *Cache) ClearAux() {
	for j := range c.aux {
		c.aux[j] = 0
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for j := range c.lines {
		if c.lines[j] != noLine {
			n++
		}
	}
	return n
}

// HitRate returns hits/accesses since construction or the last ResetStats.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// ResetStats clears the access/hit counters without touching contents.
func (c *Cache) ResetStats() { c.Accesses, c.Hits = 0, 0 }
