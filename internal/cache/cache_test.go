package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways of 128 B lines.
	return New(Config{SizeBytes: 1024, Assoc: 2, LineBytes: 128})
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{SizeBytes: 48 * 1024, Assoc: 4, LineBytes: 128}
	if cfg.Sets() != 96 {
		t.Fatalf("sets = %d", cfg.Sets())
	}
	if cfg.Line(256) != 2 {
		t.Fatalf("line = %d", cfg.Line(256))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-set cache")
		}
	}()
	New(Config{SizeBytes: 64, Assoc: 2, LineBytes: 128})
}

func TestHitMiss(t *testing.T) {
	c := small()
	if hit, _ := c.Lookup(1); hit {
		t.Fatal("hit in empty cache")
	}
	c.Insert(1, 7, false)
	hit, aux := c.Lookup(1)
	if !hit || aux != 7 {
		t.Fatalf("hit=%v aux=%d", hit, aux)
	}
	if c.Accesses != 2 || c.Hits != 1 {
		t.Fatalf("accesses=%d hits=%d", c.Accesses, c.Hits)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := small()
	c.Insert(1, 0, false)
	c.Peek(1)
	c.Peek(2)
	if c.Accesses != 0 {
		t.Fatal("Peek must not count accesses")
	}
}

func TestLRUEviction(t *testing.T) {
	// Find three lines in the same set, fill 2-way set, touch the first,
	// insert the third: the second must be evicted.
	c := small()
	var same []Addr
	base := c.setIndex(Addr(0))
	for l := Addr(0); len(same) < 3; l++ {
		if c.setIndex(l) == base {
			same = append(same, l)
		}
	}
	c.Insert(same[0], 0, false)
	c.Insert(same[1], 0, false)
	c.Lookup(same[0]) // make same[1] the LRU
	victim, _, evicted := c.Insert(same[2], 0, false)
	if !evicted || victim != same[1] {
		t.Fatalf("evicted=%v victim=%d, want %d", evicted, victim, same[1])
	}
	if hit, _ := c.Peek(same[0]); !hit {
		t.Fatal("MRU line was evicted")
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	c := small()
	c.Insert(5, 1, false)
	victim, _, evicted := c.Insert(5, 2, true)
	if evicted || victim != 0 {
		t.Fatal("re-insert must not evict")
	}
	if _, aux := c.Peek(5); aux != 2 {
		t.Fatalf("aux = %d", aux)
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestDirtyEviction(t *testing.T) {
	c := small()
	var same []Addr
	base := c.setIndex(Addr(0))
	for l := Addr(0); len(same) < 3; l++ {
		if c.setIndex(l) == base {
			same = append(same, l)
		}
	}
	c.Insert(same[0], 0, true)
	c.Insert(same[1], 0, false)
	_, dirty, evicted := c.Insert(same[2], 0, false)
	if !evicted || !dirty {
		t.Fatalf("dirty victim not reported: dirty=%v evicted=%v", dirty, evicted)
	}
}

func TestSetAuxAndClearAux(t *testing.T) {
	c := small()
	if c.SetAux(9, 3) {
		t.Fatal("SetAux on absent line returned true")
	}
	c.Insert(9, 0, false)
	if !c.SetAux(9, 3) {
		t.Fatal("SetAux on resident line returned false")
	}
	if _, aux := c.Peek(9); aux != 3 {
		t.Fatalf("aux = %d", aux)
	}
	c.ClearAux()
	if _, aux := c.Peek(9); aux != 0 {
		t.Fatal("ClearAux did not clear")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(4, 0, false)
	if !c.Invalidate(4) {
		t.Fatal("invalidate resident returned false")
	}
	if c.Invalidate(4) {
		t.Fatal("invalidate absent returned true")
	}
	if hit, _ := c.Peek(4); hit {
		t.Fatal("line still present after invalidate")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := small()
	for l := Addr(0); l < 20; l++ {
		c.Insert(l, 0, false)
	}
	n := c.InvalidateAll()
	if n != c.Config().Sets()*2 && n > 20 {
		t.Fatalf("flushed %d lines", n)
	}
	if c.Occupancy() != 0 {
		t.Fatal("cache not empty after flush")
	}
}

func TestOccupancyBoundedQuick(t *testing.T) {
	f := func(lines []uint16) bool {
		c := small()
		for _, l := range lines {
			c.Insert(Addr(l), 0, false)
		}
		return c.Occupancy() <= 8 // 4 sets x 2 ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertThenPeekQuick(t *testing.T) {
	f := func(l uint32, aux uint32) bool {
		c := small()
		c.Insert(Addr(l), aux, false)
		hit, got := c.Peek(Addr(l))
		return hit && got == aux
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAgainstReferenceModel drives the cache and a brute-force
// fully-mapped model with the same operations and compares hit results;
// LRU decisions are checked per set.
func TestAgainstReferenceModel(t *testing.T) {
	c := small()
	rng := rand.New(rand.NewSource(42))
	type ref struct {
		present map[Addr]bool
	}
	model := ref{present: map[Addr]bool{}}
	for i := 0; i < 5000; i++ {
		l := Addr(rng.Intn(64))
		switch rng.Intn(3) {
		case 0:
			hit, _ := c.Lookup(l)
			if hit != model.present[l] {
				t.Fatalf("op %d: lookup(%d) = %v, model %v", i, l, hit, model.present[l])
			}
		case 1:
			_, _, _ = c.Insert(l, 0, false)
			model.present[l] = true
			// Re-sync the model with reality on evictions: drop any
			// modelled line the cache no longer holds.
			for ml := range model.present {
				if hit, _ := c.Peek(ml); !hit {
					delete(model.present, ml)
				}
			}
		case 2:
			c.Invalidate(l)
			delete(model.present, l)
		}
	}
}

func TestSequentialLinesSpreadAcrossSets(t *testing.T) {
	// Regression test: the set hash must not alias consecutive lines
	// into a subset of sets (the wavefront sweeps are sequential).
	c := New(Config{SizeBytes: 48 * 1024, Assoc: 4, LineBytes: 128})
	used := map[int]bool{}
	for l := Addr(0); l < 4096; l++ {
		h := uint64(l) * 0x9e3779b97f4a7c15
		used[int((h>>32)%uint64(c.Config().Sets()))] = true
	}
	if len(used) < c.Config().Sets()*9/10 {
		t.Fatalf("sequential lines touch only %d/%d sets", len(used), c.Config().Sets())
	}
	// And occupancy after a sweep should approach capacity.
	for l := Addr(0); l < 4096; l++ {
		c.Insert(l, 0, false)
	}
	capLines := c.Config().Sets() * 4
	if c.Occupancy() < capLines*9/10 {
		t.Fatalf("sweep filled only %d/%d lines", c.Occupancy(), capLines)
	}
}
