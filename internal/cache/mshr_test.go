package cache

import (
	"testing"
	"testing/quick"
)

func TestMSHRAllocateMergeRelease(t *testing.T) {
	m := NewMSHR(2)
	if !m.Allocate(1, "a") {
		t.Fatal("allocate failed on empty file")
	}
	if m.Allocs != 1 {
		t.Fatalf("allocs = %d", m.Allocs)
	}
	if !m.Merge(1, "b") {
		t.Fatal("merge on outstanding line failed")
	}
	if m.Merge(2, "x") {
		t.Fatal("merge on absent line succeeded")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	targets := m.Release(1)
	if len(targets) != 2 || targets[0] != "a" || targets[1] != "b" {
		t.Fatalf("targets = %v", targets)
	}
	if m.Len() != 0 {
		t.Fatal("release did not remove entry")
	}
	if m.Release(1) != nil {
		t.Fatal("double release returned targets")
	}
}

func TestMSHRAllocateMergesDuplicates(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(7, "a")
	// A second Allocate of the same line must merge, even when full.
	if !m.Allocate(7, "b") {
		t.Fatal("allocate of outstanding line failed")
	}
	if m.Merges != 1 || m.Allocs != 1 {
		t.Fatalf("allocs=%d merges=%d", m.Allocs, m.Merges)
	}
	if got := len(m.Release(7)); got != 2 {
		t.Fatalf("targets = %d", got)
	}
}

func TestMSHRFull(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(1, nil)
	m.Allocate(2, nil)
	if !m.FullNow() {
		t.Fatal("file should be full")
	}
	if m.Allocate(3, nil) {
		t.Fatal("allocate succeeded on full file")
	}
	if m.Full != 1 {
		t.Fatalf("full events = %d", m.Full)
	}
	m.Release(1)
	if !m.Allocate(3, nil) {
		t.Fatal("allocate failed after release")
	}
}

func TestMSHRLookupAndLines(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(9, "x")
	e, ok := m.Lookup(9)
	if !ok || e.Line != 9 {
		t.Fatal("lookup failed")
	}
	if _, ok := m.Lookup(10); ok {
		t.Fatal("lookup of absent line succeeded")
	}
	m.Allocate(10, "y")
	lines := m.Lines()
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestMSHRBoundedQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMSHR(4)
		for _, op := range ops {
			line := Addr(op % 16)
			if op%3 == 0 {
				m.Release(line)
			} else {
				m.Allocate(line, nil)
			}
			if m.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRResetStats(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, nil)
	m.Allocate(2, nil) // full event
	m.Merge(1, nil)
	m.ResetStats()
	if m.Allocs != 0 || m.Merges != 0 || m.Full != 0 {
		t.Fatal("stats not reset")
	}
	if m.Len() != 1 {
		t.Fatal("reset must not drop entries")
	}
}
