package cache

// MSHR is a miss-status holding register file: it tracks outstanding
// misses per line and merges secondary requesters onto the primary miss.
type MSHR struct {
	cap     int
	entries map[Addr]*MSHREntry

	Allocs int64
	Merges int64
	Full   int64
}

// MSHREntry is one outstanding miss with its merged targets.
type MSHREntry struct {
	Line    Addr
	Targets []any // requester-specific contexts delivered on fill
}

// NewMSHR builds an MSHR file with the given entry capacity.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{cap: capacity, entries: make(map[Addr]*MSHREntry, capacity)}
}

// Cap returns the entry capacity.
func (m *MSHR) Cap() int { return m.cap }

// Len returns the number of outstanding misses.
func (m *MSHR) Len() int { return len(m.entries) }

// FullNow reports whether no new primary miss can be allocated.
func (m *MSHR) FullNow() bool { return len(m.entries) >= m.cap }

// Lookup returns the outstanding entry for a line, if any.
func (m *MSHR) Lookup(line Addr) (*MSHREntry, bool) {
	e, ok := m.entries[line]
	return e, ok
}

// Allocate registers a primary miss for line with an initial target.
// It returns false (and counts a Full event) when the file is full.
// Allocating a line that is already outstanding merges instead.
func (m *MSHR) Allocate(line Addr, target any) bool {
	if e, ok := m.entries[line]; ok {
		e.Targets = append(e.Targets, target)
		m.Merges++
		return true
	}
	if len(m.entries) >= m.cap {
		m.Full++
		return false
	}
	m.entries[line] = &MSHREntry{Line: line, Targets: []any{target}}
	m.Allocs++
	return true
}

// Merge appends a secondary target to an existing miss; it reports
// whether the line was outstanding.
func (m *MSHR) Merge(line Addr, target any) bool {
	e, ok := m.entries[line]
	if !ok {
		return false
	}
	e.Targets = append(e.Targets, target)
	m.Merges++
	return true
}

// Release removes the entry for a filled line and returns its targets.
func (m *MSHR) Release(line Addr) []any {
	e, ok := m.entries[line]
	if !ok {
		return nil
	}
	delete(m.entries, line)
	return e.Targets
}

// Lines returns the outstanding line addresses (order unspecified).
func (m *MSHR) Lines() []Addr {
	out := make([]Addr, 0, len(m.entries))
	for l := range m.entries {
		out = append(out, l)
	}
	return out
}

// ResetStats zeroes the allocation/merge counters (end of warmup).
func (m *MSHR) ResetStats() { m.Allocs, m.Merges, m.Full = 0, 0, 0 }
