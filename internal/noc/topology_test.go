package noc

import (
	"testing"
	"testing/quick"

	"delrep/internal/config"
)

func allTopologies() map[string]Topology {
	pol := MeshPolicy{Alg: config.RoutingCDR, ReqOrder: config.OrderYX, RepOrder: config.OrderXY}
	return map[string]Topology{
		"mesh8x8":   NewMesh(8, 8, pol),
		"mesh10x10": NewMesh(10, 10, pol),
		"fbfly":     NewFlattenedButterfly(8, 8, config.OrderXY, config.OrderYX),
		"dragonfly": NewDragonfly(64, 8),
		"crossbar":  NewCrossbar(64),
	}
}

// TestWiringSymmetric verifies that every inter-router connection is
// bidirectionally consistent: Wire(r,p) = (q,s) implies Wire(q,s) = (r,p).
func TestWiringSymmetric(t *testing.T) {
	for name, topo := range allTopologies() {
		for r := 0; r < topo.NumRouters(); r++ {
			for p := 0; p < topo.NumPorts(r); p++ {
				q, s, ok := topo.Wire(r, p)
				if !ok {
					continue
				}
				if q < 0 || q >= topo.NumRouters() || s < 0 || s >= topo.NumPorts(q) {
					t.Fatalf("%s: Wire(%d,%d) -> invalid (%d,%d)", name, r, p, q, s)
				}
				r2, p2, ok2 := topo.Wire(q, s)
				if !ok2 || r2 != r || p2 != p {
					t.Fatalf("%s: Wire(%d,%d)=(%d,%d) but Wire(%d,%d)=(%d,%d,%v)",
						name, r, p, q, s, q, s, r2, p2, ok2)
				}
			}
		}
	}
}

// TestNodePortsUnique verifies every node attaches to a distinct
// (router, port) and that local ports are not wired.
func TestNodePortsUnique(t *testing.T) {
	for name, topo := range allTopologies() {
		nodes := 64
		if name == "mesh10x10" {
			nodes = 100
		}
		seen := map[[2]int]bool{}
		for n := 0; n < nodes; n++ {
			r, p := topo.NodePort(n)
			key := [2]int{r, p}
			if seen[key] {
				t.Fatalf("%s: node %d shares attach point %v", name, n, key)
			}
			seen[key] = true
			if _, _, ok := topo.Wire(r, p); ok {
				t.Fatalf("%s: local port (%d,%d) is wired", name, r, p)
			}
		}
	}
}

// TestMeshDORDelivers walks DOR hop-by-hop and verifies progress to the
// destination for both dimension orders and all node pairs.
func TestMeshDORDelivers(t *testing.T) {
	for _, order := range []config.DimOrder{config.OrderXY, config.OrderYX} {
		m := NewMesh(8, 8, MeshPolicy{Alg: config.RoutingCDR, ReqOrder: order, RepOrder: order})
		net := testNetwork(m, 64)
		for src := 0; src < 64; src += 7 {
			for dst := 0; dst < 64; dst += 5 {
				p := &Packet{Src: src, Dst: dst, Class: ClassRequest, SizeFlits: 1}
				r, _ := m.NodePort(src)
				dr, _ := m.NodePort(dst)
				for hops := 0; r != dr; hops++ {
					if hops > 20 {
						t.Fatalf("order %v: %d->%d did not converge", order, src, dst)
					}
					cands := m.Route(net, r, p, nil)
					if len(cands) != 1 {
						t.Fatalf("CDR should be deterministic, got %d candidates", len(cands))
					}
					q, _, ok := m.Wire(r, cands[0].Port)
					if !ok {
						t.Fatalf("order %v: route to unwired port at router %d", order, r)
					}
					r = q
				}
				cands := m.Route(net, r, p, nil)
				_, wantPort := m.NodePort(dst)
				if cands[0].Port != wantPort {
					t.Fatalf("at destination router, route = port %d, want local %d", cands[0].Port, wantPort)
				}
			}
		}
	}
}

// TestFbflyTwoHops verifies the flattened butterfly needs at most one
// row hop and one column hop.
func TestFbflyTwoHops(t *testing.T) {
	f := NewFlattenedButterfly(8, 8, config.OrderXY, config.OrderYX)
	net := testNetwork(f, 64)
	for src := 0; src < 64; src += 3 {
		for dst := 0; dst < 64; dst += 11 {
			p := &Packet{Src: src, Dst: dst, Class: ClassRequest, SizeFlits: 1}
			r, _ := f.NodePort(src)
			dr, _ := f.NodePort(dst)
			hops := 0
			for r != dr {
				if hops > 2 {
					t.Fatalf("%d->%d took more than 2 hops", src, dst)
				}
				c := f.Route(net, r, p, nil)[0]
				q, _, ok := f.Wire(r, c.Port)
				if !ok {
					t.Fatalf("unwired route at %d", r)
				}
				r = q
				hops++
			}
		}
	}
}

// TestDragonflyMinimalPath verifies local-global-local routing: at most
// 3 inter-router hops between any pair.
func TestDragonflyMinimalPath(t *testing.T) {
	d := NewDragonfly(64, 8)
	net := testNetwork(d, 64)
	for src := 0; src < 64; src += 5 {
		for dst := 0; dst < 64; dst += 7 {
			p := &Packet{Src: src, Dst: dst, Class: ClassReply, SizeFlits: 1}
			r, _ := d.NodePort(src)
			dr, _ := d.NodePort(dst)
			hops := 0
			for r != dr {
				if hops > 3 {
					t.Fatalf("%d->%d exceeded 3 hops", src, dst)
				}
				c := d.Route(net, r, p, nil)[0]
				q, _, ok := d.Wire(r, c.Port)
				if !ok {
					t.Fatalf("unwired route at router %d port %d (%d->%d)", r, c.Port, src, dst)
				}
				r = q
				hops++
			}
		}
	}
}

// TestDragonflyGlobalReach verifies every group reaches every other
// group through exactly one global link.
func TestDragonflyGlobalReach(t *testing.T) {
	d := NewDragonfly(64, 8)
	for g := 0; g < d.Groups; g++ {
		reached := map[int]bool{}
		for i := 0; i < d.GroupSize; i++ {
			if tg := d.globalTarget(g, i); tg >= 0 {
				if reached[tg] {
					t.Fatalf("group %d reaches %d twice", g, tg)
				}
				reached[tg] = true
			}
		}
		if len(reached) != d.Groups-1 {
			t.Fatalf("group %d reaches %d groups, want %d", g, len(reached), d.Groups-1)
		}
	}
}

// TestDragonflyVCPhases verifies the VC range splits across the global
// hop (deadlock avoidance).
func TestDragonflyVCPhases(t *testing.T) {
	d := NewDragonfly(64, 8)
	net := testNetwork(d, 64)
	p := &Packet{Src: 0, Dst: 63, Class: ClassRequest, SizeFlits: 1}
	// At the source group the candidate must use the low half.
	c := d.Route(net, 0, p, nil)
	if c[0].VCLo != 0 || c[0].VCHi != 0 {
		t.Fatalf("pre-global VC range [%d,%d], want [0,0]", c[0].VCLo, c[0].VCHi)
	}
	// Inside the destination group it must use the high half.
	r, _ := d.NodePort(56) // same group as 63
	c = d.Route(net, r, p, nil)
	if c[0].VCLo != 1 || c[0].VCHi != 1 {
		t.Fatalf("post-global VC range [%d,%d], want [1,1]", c[0].VCLo, c[0].VCHi)
	}
}

// TestCrossbarDirect verifies single-hop routing.
func TestCrossbarDirect(t *testing.T) {
	x := NewCrossbar(64)
	net := testNetwork(x, 64)
	p := &Packet{Src: 3, Dst: 41, Class: ClassRequest, SizeFlits: 1}
	c := x.Route(net, 0, p, nil)
	if len(c) != 1 || c[0].Port != 41 {
		t.Fatalf("crossbar route = %+v", c)
	}
}

// testNetwork builds a minimal network for routing queries.
func testNetwork(topo Topology, nodes int) *Network {
	cfg := config.Default().NoC
	return NewNetwork("test", topo, cfg, nodes, Params{
		InjCapCore: 4, InjCapMem: 4, EjCap: 16, AsmCap: 2,
	})
}

// TestDORPathLengthQuick property: the CDR mesh route walks exactly the
// Manhattan distance between source and destination.
func TestDORPathLengthQuick(t *testing.T) {
	m := NewMesh(8, 8, MeshPolicy{Alg: config.RoutingCDR, ReqOrder: config.OrderYX, RepOrder: config.OrderXY})
	net := testNetwork(m, 64)
	f := func(srcRaw, dstRaw uint8, cls bool) bool {
		src, dst := int(srcRaw)%64, int(dstRaw)%64
		class := ClassRequest
		if cls {
			class = ClassReply
		}
		p := &Packet{Src: src, Dst: dst, Class: class, SizeFlits: 1}
		r, _ := m.NodePort(src)
		dr, _ := m.NodePort(dst)
		x0, y0 := r%8, r/8
		x1, y1 := dr%8, dr/8
		want := abs(x1-x0) + abs(y1-y0)
		hops := 0
		for r != dr {
			if hops > want {
				return false
			}
			c := m.Route(net, r, p, nil)[0]
			q, _, ok := m.Wire(r, c.Port)
			if !ok {
				return false
			}
			r = q
			hops++
		}
		return hops == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
