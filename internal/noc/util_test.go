package noc

import "testing"

func TestPortUtilizationEdges(t *testing.T) {
	net, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	// No cycle measured yet: utilization must be 0, not NaN.
	if u := net.PortUtilization(0, 0); u != 0 {
		t.Fatalf("utilization before any cycle = %v, want 0", u)
	}
	// Out-of-range router/port indices return 0 instead of panicking.
	for _, rp := range [][2]int{{-1, 0}, {len(net.Routers), 0}, {0, -1}, {0, 99}} {
		if u := net.PortUtilization(rp[0], rp[1]); u != 0 {
			t.Fatalf("utilization(%d,%d) = %v, want 0", rp[0], rp[1], u)
		}
		if s := net.PortSent(rp[0], rp[1]); s != 0 {
			t.Fatalf("sent(%d,%d) = %v, want 0", rp[0], rp[1], s)
		}
	}
}

func TestPortUtilizationCountsTraffic(t *testing.T) {
	net, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	p := &Packet{ID: 1, Src: 0, Dst: 7, Class: ClassRequest, SizeFlits: 4}
	if got := runTraffic(t, net, []*Packet{p}, 300); got != 1 {
		t.Fatal("packet not delivered")
	}
	// The packet crossed router 0 toward router 1: some output port of
	// router 0 carried its 4 flits.
	var sent int64
	topo := net.Topology()
	for port := 0; port < topo.NumPorts(0); port++ {
		sent += net.PortSent(0, port)
		if u := net.PortUtilization(0, port); u < 0 || u > 1 {
			t.Fatalf("utilization out of range: %v", u)
		}
	}
	if sent < 4 {
		t.Fatalf("router 0 ports carried %d flits, want >= 4", sent)
	}
	// ResetStats zeroes the per-port counters.
	net.ResetStats()
	for port := 0; port < topo.NumPorts(0); port++ {
		if net.PortSent(0, port) != 0 {
			t.Fatal("ResetStats left port counters non-zero")
		}
	}
	if u := net.PortUtilization(0, 0); u != 0 {
		t.Fatalf("utilization after reset = %v", u)
	}
}
