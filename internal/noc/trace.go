package noc

// PacketTrace records per-hop phase timestamps of a traced packet for
// the observability layer (internal/obs). Tracing is opt-in per packet:
// the Packet.Trace field is nil for untraced packets and every
// instrumentation site below is guarded by that nil check, so an
// untraced simulation pays one pointer comparison per stamp site.
// Stamps are simulated cycles; nothing here influences routing,
// allocation, or timing — a traced run must be bit-identical to an
// untraced one.
type PacketTrace struct {
	// Origin is the ID of the packet this one was derived from (a
	// delegated request inherits the stuck reply's trace identity);
	// zero for original packets.
	Origin uint64
	// Aborted names why the packet left the network without ejecting
	// (e.g. "delegated" for a reply converted into a delegated
	// request); empty for packets that completed normally.
	Aborted string
	// Hops are the router traversals of the head flit, in order.
	Hops []HopTrace
}

// HopTrace is one router traversal of a traced packet. Timestamps the
// packet has not reached yet are -1.
type HopTrace struct {
	Router     int
	Arrive     int64 // head flit entered the input VC buffer
	VCAlloc    int64 // output VC granted (end of VC-allocation wait)
	Depart     int64 // head flit traversed the crossbar (end of switch wait)
	TailDepart int64 // tail flit traversed (end of link serialization)
}

// arrive opens a new hop record at a router.
func (t *PacketTrace) arrive(router int, now int64) {
	t.Hops = append(t.Hops, HopTrace{
		Router: router, Arrive: now, VCAlloc: -1, Depart: -1, TailDepart: -1,
	})
}

// last returns the most recent hop record if it belongs to router.
func (t *PacketTrace) last(router int) *HopTrace {
	if n := len(t.Hops); n > 0 && t.Hops[n-1].Router == router {
		return &t.Hops[n-1]
	}
	return nil
}

// vcAlloc stamps the VC-allocation grant of the current hop.
func (t *PacketTrace) vcAlloc(router int, now int64) {
	if h := t.last(router); h != nil && h.VCAlloc < 0 {
		h.VCAlloc = now
	}
}

// depart stamps the head flit's crossbar traversal of the current hop.
func (t *PacketTrace) depart(router int, now int64) {
	if h := t.last(router); h != nil && h.Depart < 0 {
		h.Depart = now
	}
}

// tailDepart stamps the tail flit's crossbar traversal of the current
// hop, closing the link-serialization phase.
func (t *PacketTrace) tailDepart(router int, now int64) {
	if h := t.last(router); h != nil {
		h.TailDepart = now
	}
}
