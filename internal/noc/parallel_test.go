package noc

import (
	"math/rand"
	"testing"

	"delrep/internal/par"
)

// trafficPattern regenerates the same random packet set on every call,
// so serial and tiled runs inject bit-identical traffic.
func trafficPattern(nodes int) []*Packet {
	rng := rand.New(rand.NewSource(11))
	var pkts []*Packet
	for i := 0; i < 400; i++ {
		src, dst := rng.Intn(nodes), rng.Intn(nodes)
		if src == dst {
			continue
		}
		class, size := ClassRequest, 1
		if rng.Intn(2) == 0 {
			class, size = ClassReply, 9
		}
		pkts = append(pkts, &Packet{
			ID: uint64(i), Src: src, Dst: dst, Class: class, SizeFlits: size,
		})
	}
	return pkts
}

// TestTiledTickMatchesSerial drives identical traffic through a serial
// network and tile-partitioned networks at several worker counts and
// requires identical outcomes: per-packet ejection cycles and hop
// counts, and every network-level counter. DebugChecks stays on so the
// maintained activity counters are cross-checked against full scans
// (including the tile rings and staging buffers) throughout.
func TestTiledTickMatchesSerial(t *testing.T) {
	for name, topo := range allTopologies() {
		nodes := 64
		if name == "mesh10x10" {
			nodes = 100
		}
		run := func(workers int) (*Network, []*Packet) {
			net, _ := buildNet(t, topo, defaultNoC(), nodes)
			net.DebugChecks = true
			if workers > 1 {
				pool := par.NewPool(workers)
				defer pool.Close()
				net.SetParallel(pool, workers)
			}
			pkts := trafficPattern(nodes)
			if got := runTraffic(t, net, pkts, 30000); got != len(pkts) {
				t.Fatalf("%s N=%d: delivered %d/%d", name, workers, got, len(pkts))
			}
			if err := net.CheckCreditInvariant(); err != nil {
				t.Fatalf("%s N=%d: %v", name, workers, err)
			}
			return net, pkts
		}
		base, basePkts := run(1)
		for _, workers := range []int{2, 4, 8} {
			net, pkts := run(workers)
			if wantTiles := min(workers, len(net.Routers)); net.Parallel() != wantTiles {
				t.Fatalf("%s N=%d: Parallel() = %d, want %d", name, workers, net.Parallel(), wantTiles)
			}
			for i := range pkts {
				if pkts[i].Ejected != basePkts[i].Ejected || pkts[i].Hops != basePkts[i].Hops {
					t.Fatalf("%s N=%d: packet %d diverged: ejected %d vs %d, hops %d vs %d",
						name, workers, i, pkts[i].Ejected, basePkts[i].Ejected,
						pkts[i].Hops, basePkts[i].Hops)
				}
			}
			for _, c := range []Class{ClassRequest, ClassReply} {
				if net.InjectedFlits(c) != base.InjectedFlits(c) || net.EjectedFlits(c) != base.EjectedFlits(c) {
					t.Fatalf("%s N=%d: class %v flit counters diverged", name, workers, c)
				}
			}
			if net.FlitHops() != base.FlitHops() {
				t.Fatalf("%s N=%d: FlitHops %d, want %d", name, workers, net.FlitHops(), base.FlitHops())
			}
			if net.Now() != base.Now() {
				t.Fatalf("%s N=%d: cycle %d, want %d", name, workers, net.Now(), base.Now())
			}
			if !net.Quiet() {
				t.Fatalf("%s N=%d: network not quiet after full delivery", name, workers)
			}
		}
	}
}

// TestTiledLatencySamplersMatchSerial checks the order-sensitive float
// path: packet-latency samplers must be bit-identical because ejection
// runs serially in node order in the commit phase.
func TestTiledLatencySamplersMatchSerial(t *testing.T) {
	nodes := 64
	run := func(workers int) *Network {
		net, _ := buildNet(t, meshTopo(), defaultNoC(), nodes)
		if workers > 1 {
			pool := par.NewPool(workers)
			defer pool.Close()
			net.SetParallel(pool, workers)
		}
		pkts := trafficPattern(nodes)
		if got := runTraffic(t, net, pkts, 30000); got != len(pkts) {
			t.Fatalf("N=%d: delivered %d/%d", workers, got, len(pkts))
		}
		return net
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		net := run(workers)
		for p := range net.PktLat {
			if net.PktLat[p].Count() != base.PktLat[p].Count() ||
				net.PktLat[p].Mean() != base.PktLat[p].Mean() {
				t.Fatalf("N=%d prio %d: latency sampler diverged (count %d vs %d, mean %v vs %v)",
					workers, p, net.PktLat[p].Count(), base.PktLat[p].Count(),
					net.PktLat[p].Mean(), base.PktLat[p].Mean())
			}
		}
	}
}

func TestSetParallelGuards(t *testing.T) {
	// A single-router topology (crossbar) cannot be partitioned: the
	// network must stay serial rather than spin up useless tiles.
	net, _ := buildNet(t, NewCrossbar(16), defaultNoC(), 16)
	pool := par.NewPool(4)
	defer pool.Close()
	net.SetParallel(pool, 4)
	if net.Parallel() != 1 {
		t.Fatalf("crossbar Parallel() = %d, want 1", net.Parallel())
	}

	// Partitioning after traffic has flowed is a programming error.
	net2, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	net2.Tick()
	defer func() {
		if recover() == nil {
			t.Fatal("SetParallel after the first tick did not panic")
		}
	}()
	net2.SetParallel(pool, 4)
}
