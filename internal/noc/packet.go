// Package noc implements a flit-level cycle-driven network-on-chip:
// input-queued virtual-channel routers with credit-based wormhole flow
// control and separable (iSLIP-style) allocation, mesh / flattened
// butterfly / dragonfly / crossbar topologies, deterministic (CDR) and
// adaptive (DyXY, Footprint, HARE) routing, CPU-over-GPU priority
// arbitration, and network interfaces with bounded injection buffers —
// the substrate on which network clogging arises and Delegated Replies
// operates.
//
// A Network ticks serially by default; SetParallel partitions it into
// router tiles ticked by a worker Pool with a two-phase compute/commit
// cycle whose results are bit-identical to serial execution at any
// worker count (see tile.go for the determinism argument).
package noc

// Class separates request and reply traffic, either onto physically
// separate networks (baseline) or onto disjoint VC ranges of one shared
// physical network (AVCP and the virtual-network sensitivity study).
type Class uint8

const (
	// ClassRequest carries requests, probes, and delegated replies.
	ClassRequest Class = iota
	// ClassReply carries data replies and write acknowledgements.
	ClassReply
)

func (c Class) String() string {
	if c == ClassReply {
		return "reply"
	}
	return "request"
}

// Priority orders packets in VC and switch allocation. The baseline
// gives CPU traffic priority over GPU traffic throughout the memory
// system; delegated/remote requests also get priority (deadlock rule).
type Priority uint8

const (
	// PrioGPU is regular GPU traffic (lowest).
	PrioGPU Priority = iota
	// PrioRemote is delegated-reply / remote-request traffic.
	PrioRemote
	// PrioCPU is CPU traffic (highest).
	PrioCPU
)

// Packet is a NoC packet. SizeFlits includes the header flit; data
// payloads occupy ceil(bytes/channelWidth) additional flits.
type Packet struct {
	ID        uint64
	Src       int // source node id
	Dst       int // destination node id
	Class     Class
	Prio      Priority
	SizeFlits int
	Payload   any

	Injected int64 // cycle the head flit entered the source router
	Ejected  int64 // cycle the tail flit was delivered at the destination
	Enqueued int64 // cycle the packet entered the source injection queue
	ReadyAt  int64 // earliest cycle the NI may begin injecting (LLC pipeline)
	Hops     int

	// Trace, when non-nil, collects per-hop phase stamps for the
	// observability layer. It is measurement-only state: it never
	// affects routing or timing.
	Trace *PacketTrace
}

// Flit is one flow-control unit of a packet.
type Flit struct {
	Pkt *Packet
	Seq int
}

// Head reports whether this is the packet's header flit.
func (f Flit) Head() bool { return f.Seq == 0 }

// Tail reports whether this is the packet's last flit.
func (f Flit) Tail() bool { return f.Seq == f.Pkt.SizeFlits-1 }

// Candidate is one routing option: an output port and an inclusive
// range of VCs that may be allocated at the downstream router.
type Candidate struct {
	Port int
	VCLo int
	VCHi int // inclusive
}
