package noc

import (
	"testing"

	"delrep/internal/config"
)

// TestMergeFairness is the regression test for the VC-allocation
// starvation bug: at a merge router, through-traffic and local
// injection must not permanently claim every output VC and starve
// flows turning in from the other dimension. Four saturating flows
// converge on one sink through the merge router (4,4) under YX
// routing; every flow must receive a meaningful share of service.
func TestMergeFairness(t *testing.T) {
	topo := NewMesh(8, 8, MeshPolicy{
		Alg: config.RoutingCDR, ReqOrder: config.OrderYX, RepOrder: config.OrderYX,
	})
	cfg := config.Default().NoC
	net := NewNetwork("t", topo, cfg, 64, Params{
		InjCapCore: 8, InjCapMem: 8, EjCap: 24, AsmCap: 4,
	})
	dst := 4 * 8 // (0,4)
	received := map[int]int{}
	net.NI(dst).Handler = func(p *Packet) bool {
		received[p.Src]++
		return true
	}
	sources := []int{
		4*8 + 7, // (7,4): pure westward through-traffic
		4*8 + 4, // (4,4): local injection at the merge router
		0*8 + 4, // (4,0): turns south-to-west at (4,4)
		7*8 + 4, // (4,7): turns north-to-west at (4,4)
	}
	id := uint64(0)
	for cyc := 0; cyc < 20000; cyc++ {
		for _, src := range sources {
			ni := net.NI(src)
			if ni.CanInject(ClassRequest) {
				id++
				ni.Inject(&Packet{ID: id, Src: src, Dst: dst,
					Class: ClassRequest, SizeFlits: 5})
			}
		}
		net.Tick()
	}
	total := 0
	for _, n := range received {
		total += n
	}
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	for _, src := range sources {
		share := float64(received[src]) / float64(total)
		if share < 0.10 {
			t.Errorf("source %d starved: %d/%d delivered (%.1f%%)",
				src, received[src], total, 100*share)
		}
	}
	if err := net.CheckCreditInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestManyToOneFairness floods one sink from every node in a row and
// column and verifies no sender is starved (the clogging pattern at
// memory nodes).
func TestManyToOneFairness(t *testing.T) {
	topo := meshTopo()
	cfg := config.Default().NoC
	net := NewNetwork("t", topo, cfg, 64, Params{
		InjCapCore: 4, InjCapMem: 4, EjCap: 24, AsmCap: 4,
	})
	dst := 2 // (2,0): a memory-node position
	received := map[int]int{}
	net.NI(dst).Handler = func(p *Packet) bool {
		received[p.Src]++
		return true
	}
	var sources []int
	for x := 3; x < 8; x++ { // the GPU row east of the memory column
		sources = append(sources, x)
	}
	for y := 1; y < 8; y++ { // the memory column below
		sources = append(sources, y*8+2)
	}
	id := uint64(0)
	for cyc := 0; cyc < 30000; cyc++ {
		for _, src := range sources {
			ni := net.NI(src)
			if ni.CanInject(ClassRequest) {
				id++
				ni.Inject(&Packet{ID: id, Src: src, Dst: dst,
					Class: ClassRequest, SizeFlits: 1})
			}
		}
		net.Tick()
	}
	total := 0
	min := 1 << 30
	for _, src := range sources {
		total += received[src]
		if received[src] < min {
			min = received[src]
		}
	}
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	// Per-hop round-robin arbitration has the classic parking-lot
	// property (each merge halves the upstream share), so global
	// fairness is not expected; what must not happen is complete
	// starvation of any sender.
	fairShare := total / len(sources)
	if min < fairShare/25 || min == 0 {
		t.Errorf("most-starved sender got %d vs fair share %d", min, fairShare)
	}
}
