package noc

import (
	"testing"
)

// memNet builds a network where node 2 is a memory node with a small
// reply injection buffer.
func memNet(t *testing.T) *Network {
	t.Helper()
	net := NewNetwork("t", meshTopo(), defaultNoC(), 64, Params{
		InjCapCore: 8, InjCapMem: 3, EjCap: 24, AsmCap: 4,
		MemNodes: map[int]bool{2: true},
	})
	for n := 0; n < 64; n++ {
		net.NI(n).Handler = func(p *Packet) bool { return true }
	}
	return net
}

func TestMemNodeReplyBufferCapacity(t *testing.T) {
	net := memNet(t)
	ni := net.NI(2)
	if ni.InjCap(ClassReply) != 3 {
		t.Fatalf("reply cap = %d", ni.InjCap(ClassReply))
	}
	if ni.InjCap(ClassRequest) != 8 {
		t.Fatalf("request cap = %d", ni.InjCap(ClassRequest))
	}
	for i := 0; i < 3; i++ {
		if !ni.Inject(&Packet{ID: uint64(i), Src: 2, Dst: 5, Class: ClassReply, SizeFlits: 9}) {
			t.Fatalf("inject %d failed", i)
		}
	}
	if ni.CanInject(ClassReply) || !ni.Full(ClassReply) {
		t.Fatal("reply buffer should be full")
	}
	if ni.Inject(&Packet{ID: 9, Src: 2, Dst: 5, Class: ClassReply, SizeFlits: 9}) {
		t.Fatal("inject succeeded on full buffer")
	}
	if !ni.CanInject(ClassRequest) {
		t.Fatal("request queue should be independent")
	}
}

func TestRemoveQueuedForDelegation(t *testing.T) {
	net := memNet(t)
	ni := net.NI(2)
	a := &Packet{ID: 1, Src: 2, Dst: 5, Class: ClassReply, SizeFlits: 9}
	b := &Packet{ID: 2, Src: 2, Dst: 6, Class: ClassReply, SizeFlits: 9}
	c := &Packet{ID: 3, Src: 2, Dst: 7, Class: ClassReply, SizeFlits: 9}
	ni.Inject(a)
	ni.Inject(b)
	ni.Inject(c)
	got := ni.RemoveQueued(ClassReply, 1)
	if got != b {
		t.Fatal("wrong packet removed")
	}
	if q := ni.PeekQueue(ClassReply); len(q) != 2 || q[0] != a || q[1] != c {
		t.Fatalf("queue after removal: %v", q)
	}
	if !ni.CanInject(ClassReply) {
		t.Fatal("removal should free space")
	}
}

func TestRemoveInProgressHeadPanics(t *testing.T) {
	net := memNet(t)
	ni := net.NI(2)
	ni.Inject(&Packet{ID: 1, Src: 2, Dst: 5, Class: ClassReply, SizeFlits: 9})
	net.Tick() // begins injecting the head
	if !ni.HeadInProgress(ClassReply) {
		t.Skip("head did not start this cycle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("removing in-progress head did not panic")
		}
	}()
	ni.RemoveQueued(ClassReply, 0)
}

func TestReadyAtDelaysInjection(t *testing.T) {
	net := memNet(t)
	ni := net.NI(2)
	p := &Packet{ID: 1, Src: 2, Dst: 5, Class: ClassReply, SizeFlits: 1, ReadyAt: 20}
	ni.Inject(p)
	for i := 0; i < 10; i++ {
		net.Tick()
	}
	if p.Injected != 0 {
		t.Fatalf("packet injected at %d before ReadyAt", p.Injected)
	}
	for i := 0; i < 30; i++ {
		net.Tick()
	}
	if p.Injected < 20 {
		t.Fatalf("packet injected at %d, ReadyAt 20", p.Injected)
	}
}

func TestBlockedFlagOnStall(t *testing.T) {
	// Saturate the local input VCs of node 2's router with a flood from
	// node 2 itself; once the VC buffers fill the NI reports Blocked.
	net := memNet(t)
	ni := net.NI(2)
	// Jam the sink and keep the reply queue topped up: once every buffer
	// between source and sink fills, the head flit cannot move and the
	// NI must report Blocked (the delegation trigger).
	net.NI(5).Handler = func(p *Packet) bool { return false }
	sawBlocked := false
	id := uint64(0)
	for i := 0; i < 4000 && !sawBlocked; i++ {
		if ni.CanInject(ClassReply) {
			id++
			ni.Inject(&Packet{ID: id, Src: 2, Dst: 5, Class: ClassReply, SizeFlits: 9})
		}
		net.Tick()
		sawBlocked = ni.Blocked(ClassReply)
	}
	if !sawBlocked {
		t.Fatal("NI never reported Blocked despite jammed sink")
	}
	if !ni.Full(ClassReply) {
		t.Fatal("injection buffer should be full under a jammed sink")
	}
}

func TestInjLenTracksQueue(t *testing.T) {
	net := memNet(t)
	ni := net.NI(3)
	ni.Inject(&Packet{ID: 1, Src: 3, Dst: 9, Class: ClassRequest, SizeFlits: 1})
	ni.Inject(&Packet{ID: 2, Src: 3, Dst: 9, Class: ClassRequest, SizeFlits: 1})
	if ni.InjLen(ClassRequest) != 2 {
		t.Fatalf("len = %d", ni.InjLen(ClassRequest))
	}
	for i := 0; i < 50; i++ {
		net.Tick()
	}
	if ni.InjLen(ClassRequest) != 0 {
		t.Fatalf("len after drain = %d", ni.InjLen(ClassRequest))
	}
}
