package noc

import (
	"fmt"

	"delrep/internal/config"
)

// Topology describes router counts, wiring, node attachment, and routing
// for one physical network.
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// NumRouters returns the router count.
	NumRouters() int
	// NumPorts returns the port count of router r (including local ports).
	NumPorts(r int) int
	// Wire returns the peer router and port for an inter-router port, or
	// ok=false for local/unconnected ports.
	Wire(r, port int) (peer, peerPort int, ok bool)
	// NodePort returns the router and local port a node attaches to.
	NodePort(node int) (router, port int)
	// Route appends candidate output ports (tried in order) for packet
	// p at router r to buf and returns the result. Implementations
	// must not retain buf: the router passes a per-router scratch
	// buffer so route computation is allocation-free.
	Route(net *Network, r int, p *Packet, buf []Candidate) []Candidate
}

// Mesh port indices.
const (
	PortLocal = 0
	PortE     = 1
	PortW     = 2
	PortN     = 3
	PortS     = 4
)

// MeshPolicy selects the mesh routing algorithm. RoutingCDR applies
// ReqOrder to requests and RepOrder to replies (class-based
// deterministic routing [3]); the adaptive algorithms use VC 0 of the
// class range as a DOR escape channel and the remaining VCs adaptively.
type MeshPolicy struct {
	Alg      config.RoutingAlg
	ReqOrder config.DimOrder
	RepOrder config.DimOrder
}

// Mesh is a W x H 2D mesh, one router per node.
type Mesh struct {
	W, H   int
	Policy MeshPolicy
}

// NewMesh builds a mesh topology.
func NewMesh(w, h int, p MeshPolicy) *Mesh { return &Mesh{W: w, H: h, Policy: p} }

func (m *Mesh) Name() string              { return fmt.Sprintf("mesh%dx%d", m.W, m.H) }
func (m *Mesh) NumRouters() int           { return m.W * m.H }
func (m *Mesh) NumPorts(int) int          { return 5 }
func (m *Mesh) NodePort(n int) (int, int) { return n, PortLocal }

func (m *Mesh) xy(r int) (int, int) { return r % m.W, r / m.W }

// Wire connects E<->W and N<->S neighbors.
func (m *Mesh) Wire(r, port int) (int, int, bool) {
	x, y := m.xy(r)
	switch port {
	case PortE:
		if x+1 < m.W {
			return r + 1, PortW, true
		}
	case PortW:
		if x > 0 {
			return r - 1, PortE, true
		}
	case PortN:
		if y > 0 {
			return r - m.W, PortS, true
		}
	case PortS:
		if y+1 < m.H {
			return r + m.W, PortN, true
		}
	}
	return 0, 0, false
}

// order returns the dimension order for a packet class.
func (m *Mesh) order(c Class) config.DimOrder {
	if c == ClassReply {
		return m.Policy.RepOrder
	}
	return m.Policy.ReqOrder
}

// dorPort returns the next DOR hop toward (dx, dy) under the given order.
func dorPort(x, y, dx, dy int, order config.DimOrder) int {
	xFirst := order == config.OrderXY
	if xFirst {
		if dx > x {
			return PortE
		}
		if dx < x {
			return PortW
		}
	}
	if dy > y {
		return PortS
	}
	if dy < y {
		return PortN
	}
	if dx > x {
		return PortE
	}
	if dx < x {
		return PortW
	}
	return PortLocal
}

// Route implements CDR or the selected adaptive policy.
func (m *Mesh) Route(net *Network, r int, p *Packet, buf []Candidate) []Candidate {
	lo, hi := net.VCRange(p.Class)
	x, y := m.xy(r)
	dr, dport := m.NodePort(p.Dst)
	dx, dy := m.xy(dr)
	if dx == x && dy == y {
		return append(buf, Candidate{Port: dport, VCLo: lo, VCHi: hi})
	}
	dor := dorPort(x, y, dx, dy, m.order(p.Class))
	if m.Policy.Alg == config.RoutingCDR || hi == lo {
		return append(buf, Candidate{Port: dor, VCLo: lo, VCHi: hi})
	}
	return adaptiveMeshRoute(net, m, r, p, x, y, dx, dy, dor, lo, hi, buf)
}

// FlattenedButterfly fully connects each row and each column [41];
// any packet needs at most one row hop and one column hop.
type FlattenedButterfly struct {
	W, H     int
	ReqOrder config.DimOrder
	RepOrder config.DimOrder
}

// NewFlattenedButterfly builds the topology with per-class dimension
// orders (the CDR analogue for this topology).
func NewFlattenedButterfly(w, h int, req, rep config.DimOrder) *FlattenedButterfly {
	return &FlattenedButterfly{W: w, H: h, ReqOrder: req, RepOrder: rep}
}

func (f *FlattenedButterfly) Name() string              { return fmt.Sprintf("fbfly%dx%d", f.W, f.H) }
func (f *FlattenedButterfly) NumRouters() int           { return f.W * f.H }
func (f *FlattenedButterfly) NumPorts(int) int          { return 1 + (f.W - 1) + (f.H - 1) }
func (f *FlattenedButterfly) NodePort(n int) (int, int) { return n, 0 }

func (f *FlattenedButterfly) xy(r int) (int, int) { return r % f.W, r / f.W }

// rowPort returns the port from column x to column tx (tx != x).
func (f *FlattenedButterfly) rowPort(x, tx int) int {
	if tx < x {
		return 1 + tx
	}
	return 1 + tx - 1
}

// colPort returns the port from row y to row ty (ty != y).
func (f *FlattenedButterfly) colPort(y, ty int) int {
	base := 1 + (f.W - 1)
	if ty < y {
		return base + ty
	}
	return base + ty - 1
}

func (f *FlattenedButterfly) Wire(r, port int) (int, int, bool) {
	x, y := f.xy(r)
	if port >= 1 && port <= f.W-1 {
		idx := port - 1
		tx := idx
		if idx >= x {
			tx = idx + 1
		}
		peer := y*f.W + tx
		return peer, f.rowPort(tx, x), true
	}
	base := 1 + (f.W - 1)
	if port >= base && port < base+f.H-1 {
		idx := port - base
		ty := idx
		if idx >= y {
			ty = idx + 1
		}
		peer := ty*f.W + x
		return peer, f.colPort(ty, y), true
	}
	return 0, 0, false
}

func (f *FlattenedButterfly) Route(net *Network, r int, p *Packet, buf []Candidate) []Candidate {
	lo, hi := net.VCRange(p.Class)
	x, y := f.xy(r)
	dr, dport := f.NodePort(p.Dst)
	dx, dy := f.xy(dr)
	if dx == x && dy == y {
		return append(buf, Candidate{Port: dport, VCLo: lo, VCHi: hi})
	}
	order := f.ReqOrder
	if p.Class == ClassReply {
		order = f.RepOrder
	}
	var port int
	if order == config.OrderXY {
		if dx != x {
			port = f.rowPort(x, dx)
		} else {
			port = f.colPort(y, dy)
		}
	} else {
		if dy != y {
			port = f.colPort(y, dy)
		} else {
			port = f.rowPort(x, dx)
		}
	}
	return append(buf, Candidate{Port: port, VCLo: lo, VCHi: hi})
}

// Dragonfly groups routers into fully connected local groups with one
// global link per router [42]. Minimal routing is local-global-local;
// the second half of the class VC range is used after the global hop to
// break cyclic dependencies.
type Dragonfly struct {
	GroupSize int
	Groups    int
}

// NewDragonfly builds a dragonfly over n routers with the given group
// size; n must be divisible by groupSize, and the group count must not
// exceed groupSize (so every group pair has a global link).
func NewDragonfly(n, groupSize int) *Dragonfly {
	if n%groupSize != 0 {
		panic(fmt.Sprintf("dragonfly: %d routers not divisible by group size %d", n, groupSize))
	}
	g := n / groupSize
	if g > groupSize {
		panic(fmt.Sprintf("dragonfly: %d groups exceed group size %d", g, groupSize))
	}
	return &Dragonfly{GroupSize: groupSize, Groups: g}
}

func (d *Dragonfly) Name() string              { return fmt.Sprintf("dragonfly%dx%d", d.Groups, d.GroupSize) }
func (d *Dragonfly) NumRouters() int           { return d.Groups * d.GroupSize }
func (d *Dragonfly) NumPorts(int) int          { return 1 + (d.GroupSize - 1) + 1 }
func (d *Dragonfly) NodePort(n int) (int, int) { return n, 0 }

func (d *Dragonfly) split(r int) (group, idx int) { return r / d.GroupSize, r % d.GroupSize }

// intraPort returns the port from member idx to member t of the same group.
func (d *Dragonfly) intraPort(idx, t int) int {
	if t < idx {
		return 1 + t
	}
	return 1 + t - 1
}

// globalTarget returns the group router (g, i)'s global link reaches,
// or -1 when the link is unused (it would point at its own group).
func (d *Dragonfly) globalTarget(g, i int) int {
	t := (g + i + 1) % d.Groups
	if t == g {
		return -1
	}
	return t
}

func (d *Dragonfly) globalPort() int { return 1 + (d.GroupSize - 1) }

func (d *Dragonfly) Wire(r, port int) (int, int, bool) {
	g, i := d.split(r)
	if port >= 1 && port < 1+d.GroupSize-1 {
		idx := port - 1
		t := idx
		if idx >= i {
			t = idx + 1
		}
		if t >= d.GroupSize {
			return 0, 0, false
		}
		return g*d.GroupSize + t, d.intraPort(t, i), true
	}
	if port == d.globalPort() {
		tg := d.globalTarget(g, i)
		if tg < 0 {
			return 0, 0, false
		}
		// Peer is the member of tg whose global link points back at g.
		j := ((g-tg-1)%d.Groups + d.Groups) % d.Groups
		return tg*d.GroupSize + j, d.globalPort(), true
	}
	return 0, 0, false
}

func (d *Dragonfly) Route(net *Network, r int, p *Packet, buf []Candidate) []Candidate {
	lo, hi := net.VCRange(p.Class)
	dr, dport := d.NodePort(p.Dst)
	g, i := d.split(r)
	dg, di := d.split(dr)
	// Phase-split VCs: before reaching the destination group use the low
	// half, after the global hop use the high half.
	n := hi - lo + 1
	phaseLo, phaseHi := lo, hi
	if n >= 2 {
		if g == dg {
			phaseLo = lo + n/2
		} else {
			phaseHi = lo + n/2 - 1
		}
	}
	if g == dg {
		if r == dr {
			return append(buf, Candidate{Port: dport, VCLo: phaseLo, VCHi: phaseHi})
		}
		return append(buf, Candidate{Port: d.intraPort(i, di), VCLo: phaseLo, VCHi: phaseHi})
	}
	need := ((dg-g-1)%d.Groups + d.Groups) % d.Groups
	if need == i {
		return append(buf, Candidate{Port: d.globalPort(), VCLo: phaseLo, VCHi: phaseHi})
	}
	return append(buf, Candidate{Port: d.intraPort(i, need), VCLo: phaseLo, VCHi: phaseHi})
}

// Crossbar is a single-stage crossbar connecting every node directly:
// one router whose port i attaches node i. It inherently provides
// core-to-core links; serialization occurs at the output ports.
type Crossbar struct {
	N int
}

// NewCrossbar builds a crossbar over n nodes.
func NewCrossbar(n int) *Crossbar { return &Crossbar{N: n} }

func (c *Crossbar) Name() string                   { return fmt.Sprintf("crossbar%d", c.N) }
func (c *Crossbar) NumRouters() int                { return 1 }
func (c *Crossbar) NumPorts(int) int               { return c.N }
func (c *Crossbar) NodePort(n int) (int, int)      { return 0, n }
func (c *Crossbar) Wire(int, int) (int, int, bool) { return 0, 0, false }

func (c *Crossbar) Route(net *Network, r int, p *Packet, buf []Candidate) []Candidate {
	lo, hi := net.VCRange(p.Class)
	_, dport := c.NodePort(p.Dst)
	return append(buf, Candidate{Port: dport, VCLo: lo, VCHi: hi})
}
