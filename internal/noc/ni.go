package noc

import "delrep/internal/fifo"

// NI is a network interface: it serializes queued packets into the
// local router input port flit-by-flit (injection) and reassembles
// arriving flits into packets for the node (ejection).
//
// Injection is queued per traffic class and streamed one packet per
// virtual channel: with V VCs, up to V packets inject concurrently
// (one flit per cycle in total — the physical link width), which lets
// a single node saturate its link despite per-VC credit round trips.
// The reply-class queue of a memory node is the paper's "injection
// buffer": when it fills, the memory node blocks. Packets being
// streamed no longer appear in the queue (their flits are committed to
// the network), so the Delegated Replies engine only ever delegates
// replies that have not begun injection.
//
// All queues keep their backing storage for the lifetime of the NI:
// the injection queues, stream slots and assembly queue are
// preallocated to their capacities and shrink/grow in place, and the
// per-VC ejection buffers are fixed-capacity rings (ejection credits
// bound their occupancy).
type NI struct {
	net    *Network
	ctr    *netCounters // statistics sink (canonical block or owning tile's delta)
	Node   int
	router int
	port   int

	injQ     [2][]*Packet
	injCap   [2]int
	streams  []injStream
	inflight [2]int // streaming packets per class (count toward capacity)
	holdLen  [2]int // occupancy snapshot while the network clock is held
	rrStream int
	blocked  [2]bool

	ejBuf   []fifo.Ring[Flit]
	ejFlits int // flits across all ejection rings (activity gate)
	asm     []*Packet
	asmCap  int

	// Handler consumes an ejected packet; returning false leaves the
	// packet queued and back-pressures the network (node blocking).
	Handler func(*Packet) bool

	// Statistics.
	StallCycles    int64
	InjStallEv     int64
	EjFlitsByClass [2]int64
}

// injStream is one packet mid-injection, bound to an input VC.
type injStream struct {
	pkt *Packet
	seq int
	vc  int
}

// occupancy returns the class's buffered-packet count (queued plus
// streaming). While the owning network's clock is held (a fused
// parallel tick, see Network.enqNow), it reports the snapshot taken
// when the hold began, advanced by injections since: the network's
// compute phase has already processed this cycle's injection side, but
// serially the handlers now running would observe the buffer as it
// stood before that — a stream completing mid-tick must not free
// capacity to a handler that serially could not have seen it.
func (ni *NI) occupancy(c Class) int {
	if ni.net.enqHeld {
		return ni.holdLen[c]
	}
	return len(ni.injQ[c]) + ni.inflight[c]
}

// CanInject reports whether the class has buffer space (queued plus
// streaming packets).
func (ni *NI) CanInject(c Class) bool {
	return ni.occupancy(c) < ni.injCap[c]
}

// InjLen returns the number of buffered packets of a class, including
// packets currently streaming into the network.
func (ni *NI) InjLen(c Class) int { return ni.occupancy(c) }

// InjCap returns the class buffer capacity in packets.
func (ni *NI) InjCap(c Class) int { return ni.injCap[c] }

// Full reports whether the class buffer is at capacity.
func (ni *NI) Full(c Class) bool { return !ni.CanInject(c) }

// Blocked reports whether the class had a ready packet last cycle but
// could not push a single flit (the delegation trigger at memory nodes).
func (ni *NI) Blocked(c Class) bool { return ni.blocked[c] }

// Inject queues a packet on its class queue; it fails when full.
// The Enqueued stamp comes from enqNow, not now: the two agree except
// inside a fused parallel tick, where the reply network's clock is
// pre-advanced but injections from request-ejection handlers must
// still stamp the cycle a serial run would (see Network.enqNow).
func (ni *NI) Inject(p *Packet) bool {
	if !ni.CanInject(p.Class) {
		return false
	}
	p.Enqueued = ni.net.enqNow
	if ni.net.enqHeld {
		ni.holdLen[p.Class]++
	}
	ni.injQ[p.Class] = append(ni.injQ[p.Class], p)
	return true
}

// PeekQueue exposes the queued, not-yet-streaming packets of a class
// (head first). The Delegated Replies engine scans the reply queue for
// delegatable replies; any entry may be removed with RemoveQueued.
func (ni *NI) PeekQueue(c Class) []*Packet { return ni.injQ[c] }

// HeadInProgress reports whether the head queue entry has begun
// injection. Streaming packets leave the queue, so this is always
// false; it is retained for API compatibility with callers that guard
// against removing an in-flight head.
func (ni *NI) HeadInProgress(Class) bool { return false }

// RemoveQueued removes the packet at index i of the class queue and
// returns it. Only queued (never streaming) packets are reachable.
func (ni *NI) RemoveQueued(c Class, i int) *Packet {
	p := ni.injQ[c][i]
	ni.injQ[c] = fifo.RemoveAt(ni.injQ[c], i)
	return p
}

// injActive reports whether injection-side work exists. Idle NIs skip
// tickInject entirely: the only state that tick would touch — the
// blocked flags and the class round-robin — is provably unaffected
// (blocked is always false once the streams drain, and the class
// round-robin is derived from the cycle count, see startStreams).
func (ni *NI) injActive() bool {
	return len(ni.injQ[0]) > 0 || len(ni.injQ[1]) > 0 || len(ni.streams) > 0
}

// ejActive reports whether ejection-side work exists (buffered flits
// or assembled packets awaiting delivery).
func (ni *NI) ejActive() bool { return ni.ejFlits > 0 || len(ni.asm) > 0 }

// headReady returns the class's head packet if it is ready to send.
func (ni *NI) headReady(c int) *Packet {
	if len(ni.injQ[c]) == 0 {
		return nil
	}
	p := ni.injQ[c][0]
	if p.ReadyAt > ni.net.now {
		return nil
	}
	return p
}

// vcFree reports whether an input VC is unclaimed by any stream.
func (ni *NI) vcFree(vc int) bool {
	for _, st := range ni.streams {
		if st.vc == vc {
			return false
		}
	}
	return true
}

// startStreams binds ready head packets to free VCs until the stream
// slots (one per VC) are exhausted. The class round-robin alternates
// every cycle since construction, so it is derived from the cycle
// count rather than stored — skipped idle cycles cannot drift it.
func (ni *NI) startStreams() {
	rtr := ni.net.Routers[ni.router]
	cls := int((ni.net.now - 1) % 2)
	for tries := 0; tries < 2; tries++ {
		c := (cls + tries) % 2
		for {
			pkt := ni.headReady(c)
			if pkt == nil {
				break
			}
			lo, hi := ni.net.VCRange(pkt.Class)
			vc := -1
			for v := lo; v <= hi; v++ {
				if ni.vcFree(v) && rtr.in[ni.port][v].q.Len() < ni.net.bufDepth {
					vc = v
					break
				}
			}
			if vc < 0 {
				break
			}
			ni.injQ[c], _ = fifo.PopFront(ni.injQ[c])
			ni.inflight[c]++
			ni.streams = append(ni.streams, injStream{pkt: pkt, vc: vc})
		}
	}
}

// tickInject pushes at most one flit (the link width) from the active
// streams, starting new streams as VCs free up.
func (ni *NI) tickInject() {
	ni.blocked = [2]bool{}
	ni.startStreams()
	if len(ni.streams) == 0 {
		return
	}
	rtr := ni.net.Routers[ni.router]
	pushed := false
	n := len(ni.streams)
	for i := 0; i < n; i++ {
		idx := (ni.rrStream + i) % n
		st := &ni.streams[idx]
		if rtr.in[ni.port][st.vc].q.Len() >= ni.net.bufDepth {
			continue
		}
		f := Flit{Pkt: st.pkt, Seq: st.seq}
		if f.Head() {
			st.pkt.Injected = ni.net.now
			if st.pkt.Trace != nil {
				st.pkt.Trace.arrive(ni.router, ni.net.now)
			}
		}
		rtr.pushFlit(ni.port, st.vc, f)
		ni.ctr.injFlits[st.pkt.Class]++
		st.seq++
		if st.seq >= st.pkt.SizeFlits {
			ni.inflight[st.pkt.Class]--
			ni.streams = fifo.RemoveAt(ni.streams, idx)
		}
		ni.rrStream = idx + 1
		pushed = true
		break
	}
	if !pushed {
		// Streams exist but no VC could accept a flit: stalled.
		for _, st := range ni.streams {
			ni.blocked[st.pkt.Class] = true
		}
		ni.StallCycles++
		ni.InjStallEv++
	}
}

// accept receives a flit from the router's ejection port.
func (ni *NI) accept(f Flit, vc int) {
	ni.ejBuf[vc].PushBack(f)
	ni.ejFlits++
	ni.ctr.ejFlits[f.Pkt.Class]++
	ni.EjFlitsByClass[f.Pkt.Class]++
}

// tickEject delivers assembled packets to the node handler and
// reassembles newly completed packets, returning ejection credits as
// flits leave the NI buffers.
func (ni *NI) tickEject() {
	ni.deliver()
	if len(ni.asm) >= ni.asmCap {
		return
	}
	rtr := ni.net.Routers[ni.router]
	for v := range ni.ejBuf {
		for len(ni.asm) < ni.asmCap {
			buf := &ni.ejBuf[v]
			if buf.Len() == 0 {
				break
			}
			pkt := buf.Front().Pkt
			if buf.Len() < pkt.SizeFlits || buf.At(pkt.SizeFlits-1).Pkt != pkt {
				break // packet not yet complete on this VC
			}
			for i := 0; i < pkt.SizeFlits; i++ {
				buf.PopFront()
			}
			ni.ejFlits -= pkt.SizeFlits
			rtr.out[ni.port].credits[v] += pkt.SizeFlits
			pkt.Ejected = ni.net.now
			ni.net.PktLat[pkt.Prio].Add(float64(pkt.Ejected - pkt.Enqueued))
			if pkt.Trace != nil && ni.net.TraceSink != nil {
				ni.net.TraceSink(pkt)
			}
			ni.asm = append(ni.asm, pkt)
		}
	}
	ni.deliver()
}

func (ni *NI) deliver() {
	for len(ni.asm) > 0 {
		if ni.Handler == nil || !ni.Handler(ni.asm[0]) {
			return
		}
		ni.asm, _ = fifo.PopFront(ni.asm)
	}
}
