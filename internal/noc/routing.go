package noc

import "delrep/internal/config"

// adaptiveMeshRoute produces routing candidates for the adaptive mesh
// policies. All three policies are minimal and deadlock-free by Duato's
// principle: VC lo of the class range is an escape channel restricted to
// DOR, while the remaining VCs may be used on any productive port. The
// policies differ only in how they rank the productive ports:
//
//   - DyXY [45] ranks by instantaneous downstream free credits
//     (proximity congestion).
//   - Footprint [22] regulates adaptiveness: it sticks to the port last
//     used for this destination and only deviates when the congestion
//     differential exceeds a threshold, bounding path spread.
//   - HARE [37] ranks by a history-weighted (EWMA) credit estimate,
//     reacting to sustained endpoint congestion rather than transients.
func adaptiveMeshRoute(net *Network, m *Mesh, r int, p *Packet, x, y, dx, dy, dor, lo, hi int, buf []Candidate) []Candidate {
	rtr := net.Routers[r]
	var prods [2]int
	np := 0
	if dx > x {
		prods[np] = PortE
		np++
	} else if dx < x {
		prods[np] = PortW
		np++
	}
	if dy > y {
		prods[np] = PortS
		np++
	} else if dy < y {
		prods[np] = PortN
		np++
	}
	if np == 2 {
		first := rankPorts(net, rtr, p, prods[0], prods[1])
		if !first {
			prods[0], prods[1] = prods[1], prods[0]
		}
	}
	for _, port := range prods[:np] {
		buf = append(buf, Candidate{Port: port, VCLo: lo + 1, VCHi: hi})
	}
	// Escape channel: DOR on the lowest VC keeps the network deadlock-free.
	return append(buf, Candidate{Port: dor, VCLo: lo, VCHi: lo})
}

// rankPorts reports whether port a should be preferred over port b for
// packet p under the router's adaptive policy.
func rankPorts(net *Network, rtr *Router, p *Packet, a, b int) bool {
	switch net.cfg.Routing {
	case config.RoutingFootprint:
		dr, _ := net.topo.NodePort(p.Dst)
		if rtr.foot == nil {
			rtr.foot = make(map[int]int)
		}
		sticky, ok := rtr.foot[dr]
		ca, cb := rtr.freeCredits(a), rtr.freeCredits(b)
		var choice int
		switch {
		case ok && sticky == a && cb <= ca+footprintSlack:
			choice = a
		case ok && sticky == b && ca <= cb+footprintSlack:
			choice = b
		case ca >= cb:
			choice = a
		default:
			choice = b
		}
		rtr.foot[dr] = choice
		return choice == a
	case config.RoutingHARE:
		return rtr.ewma[a] >= rtr.ewma[b]
	default: // DyXY
		return rtr.freeCredits(a) >= rtr.freeCredits(b)
	}
}

// footprintSlack is the congestion differential (in credits) required
// before Footprint abandons its established path.
const footprintSlack = 2

// ewmaAlpha weights HARE's history-aware congestion estimate.
const ewmaAlpha = 0.05

// updateEWMA folds the current free-credit observation of every output
// port into the router's history estimate (called once per cycle when
// HARE routing is active).
func (r *Router) updateEWMA() {
	for port := range r.out {
		if !r.out[port].connected {
			continue
		}
		r.ewma[port] = (1-ewmaAlpha)*r.ewma[port] + ewmaAlpha*float64(r.freeCredits(port))
	}
}

// freeCredits sums the available downstream credits across the VCs of an
// output port: the congestion signal the adaptive policies consume.
func (r *Router) freeCredits(port int) int {
	s := 0
	for _, c := range r.out[port].credits {
		s += c
	}
	return s
}
