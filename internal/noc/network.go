package noc

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/fifo"
	"delrep/internal/par"
	"delrep/internal/stats"
)

type evKind uint8

const (
	evFlit evKind = iota
	evCredit
)

// event is a timed delivery: a flit arriving at a router input VC, or a
// credit returning to a router output VC.
type event struct {
	kind   evKind
	router int
	port   int
	vc     int
	flit   Flit
}

// Network is one physical interconnect: routers wired per the topology,
// plus one network interface per node. The baseline uses two Network
// instances (request and reply); AVCP and the virtual-network study use
// a single shared instance with per-class VC ranges.
//
// Tick is activity-gated: routers with no buffered flits and NIs with
// no injection/ejection work are skipped. The gating is exact — every
// piece of per-cycle state a skipped component would have touched is
// either provably unchanged when idle or derived from the cycle count
// (router saPortPtr, NI class round-robin) — so results are
// bit-identical to ungated execution. Under HARE routing every router
// still ticks (the EWMA congestion estimate decays per cycle).
type Network struct {
	Label    string
	topo     Topology
	cfg      config.NoC
	numVCs   int
	bufDepth int
	hopDelay int
	hare     bool

	Routers []*Router
	NIs     []*NI

	ring [][]event
	now  int64

	// enqNow is the cycle stamped onto packets at Inject. Serially it
	// always equals now; a fused parallel tick pre-advances both
	// networks' clocks before the request network commits, so the
	// reply network holds enqNow one cycle back until then (see
	// BeginTickParallel) to keep Enqueued stamps — and everything
	// derived from them: PktLat, delegation wait — bit-identical to
	// serial execution.
	enqNow int64

	// enqHeld is true while enqNow is held back: during that window the
	// NIs also serve capacity queries (CanInject/InjLen) from the
	// occupancy snapshot taken when the hold began, because this
	// network's compute phase has already run but the handlers now
	// executing serially precede it (see NI.occupancy).
	enqHeld bool

	// ctr is the canonical statistics block: activity counters
	// (buffered flits across all router input rings, in-flight flit
	// events in the delay rings — Quiet derives from these in O(#NIs)
	// instead of rescanning every buffer) plus the measurement
	// counters. Routers and NIs update it through a pointer; in tiled
	// mode that pointer aims at a per-tile delta instead, folded back
	// here each cycle (see tile.go).
	ctr netCounters

	// Tile-parallel ticking state; nil/empty when serial (see tile.go).
	pool      *par.Pool
	tiles     []*tile
	tileOf    []int                   // router -> owning tile
	stage     par.Matrix[stagedEvent] // cross-tile staging, double-buffered by cycle parity
	sectionFn func(int)               // prebound compute-phase fan-out body

	// DebugChecks enables the slow cross-checks: Quiet and
	// CheckCreditInvariant re-derive the activity counters by full
	// scan and panic/error on divergence. Tests switch this on.
	DebugChecks bool

	// TraceSink, when non-nil, receives every ejected packet that
	// carries a Trace record (set by the observability layer). It must
	// only record — the tick path stays free of I/O and side effects
	// on simulated state.
	TraceSink func(*Packet)

	// Statistics (reset at the end of warmup). The flit counters live
	// in ctr; PktLat stays here because float samplers are
	// order-sensitive and only ever updated from the serial commit
	// phase (tickEject).
	PktLat   [3]stats.Sampler // per priority
	measured int64            // cycles since last ResetStats
}

// Params bundles the NI buffer capacities used at construction.
type Params struct {
	InjCapCore int // injection queue depth (packets) at CPU/GPU nodes
	InjCapMem  int // injection buffer depth (packets) at memory nodes
	EjCap      int // NI per-VC ejection buffer depth (flits)
	AsmCap     int // assembled packets awaiting node acceptance
	MemNodes   map[int]bool
}

// NewNetwork builds and wires a network over the given node count.
func NewNetwork(label string, topo Topology, cfg config.NoC, nodes int, p Params) *Network {
	numVCs := cfg.VCsPerClass
	if cfg.SharedPhys {
		numVCs = cfg.ReqVCs + cfg.RepVCs
	}
	if numVCs <= 0 {
		panic("noc: network needs at least one VC")
	}
	n := &Network{
		Label:    label,
		topo:     topo,
		cfg:      cfg,
		numVCs:   numVCs,
		bufDepth: cfg.FlitsPerVC,
		hopDelay: cfg.RouterDelay + cfg.LinkDelay,
		hare:     cfg.Routing == config.RoutingHARE,
	}
	n.ring = make([][]event, n.hopDelay+2)
	n.Routers = make([]*Router, topo.NumRouters())
	for r := range n.Routers {
		n.Routers[r] = newRouter(n, r, topo.NumPorts(r), numVCs, n.bufDepth)
	}
	// Wire inter-router links and credits.
	for r := range n.Routers {
		for port := 0; port < topo.NumPorts(r); port++ {
			peer, peerPort, ok := topo.Wire(r, port)
			if !ok {
				continue
			}
			out := &n.Routers[r].out[port]
			out.link = &wire{to: peer, toPort: peerPort}
			out.connected = true
			for v := range out.credits {
				out.credits[v] = n.bufDepth
			}
			n.Routers[peer].inFrom[peerPort] = feeder{r: r, port: port, ok: true}
		}
	}
	// Attach NIs.
	n.NIs = make([]*NI, nodes)
	for node := 0; node < nodes; node++ {
		r, port := topo.NodePort(node)
		injCap := [2]int{p.InjCapCore, p.InjCapCore}
		if p.MemNodes[node] {
			// The reply-class queue of a memory node is the paper's
			// bounded injection buffer.
			injCap[ClassReply] = p.InjCapMem
		}
		ni := &NI{
			net: n, ctr: &n.ctr, Node: node, router: r, port: port,
			injCap: injCap,
			ejBuf:  make([]fifo.Ring[Flit], numVCs),
			asmCap: p.AsmCap,
		}
		// Preallocate every queue to its capacity: the steady-state
		// tick path never grows them.
		ni.injQ[0] = make([]*Packet, 0, injCap[0])
		ni.injQ[1] = make([]*Packet, 0, injCap[1])
		ni.streams = make([]injStream, 0, numVCs)
		ni.asm = make([]*Packet, 0, p.AsmCap)
		for v := range ni.ejBuf {
			ni.ejBuf[v].Init(p.EjCap)
		}
		n.NIs[node] = ni
		out := &n.Routers[r].out[port]
		out.eject = ni
		out.connected = true
		for v := range out.credits {
			out.credits[v] = p.EjCap
		}
	}
	return n
}

// VCRange returns the inclusive VC range a traffic class may use.
func (n *Network) VCRange(c Class) (lo, hi int) {
	if !n.cfg.SharedPhys {
		return 0, n.numVCs - 1
	}
	if c == ClassRequest {
		return 0, n.cfg.ReqVCs - 1
	}
	return n.cfg.ReqVCs, n.cfg.ReqVCs + n.cfg.RepVCs - 1
}

// Now returns the network cycle count.
func (n *Network) Now() int64 { return n.now }

// Topology returns the network's topology.
func (n *Network) Topology() Topology { return n.topo }

// schedule queues a delivery `delay` cycles in the future (>= 1).
func (n *Network) schedule(delay int, ev event) {
	if delay < 1 {
		delay = 1
	}
	if ev.kind == evFlit {
		n.ctr.flyFlits++
	}
	slot := (n.now + int64(delay)) % int64(len(n.ring))
	n.ring[slot] = append(n.ring[slot], ev)
}

// Tick advances the network one cycle. Only active components run:
// see the Network doc comment for the exactness argument. With a tile
// partition configured (SetParallel) the cycle runs compute/commit
// phased across the worker pool instead — bit-identical results
// either way (see tile.go).
func (n *Network) Tick() {
	if n.tiles != nil {
		n.tickTiled()
		return
	}
	n.now++
	n.measured++
	n.enqNow = n.now
	slot := n.now % int64(len(n.ring))
	evs := n.ring[slot]
	for _, ev := range evs {
		r := n.Routers[ev.router]
		switch ev.kind {
		case evFlit:
			n.ctr.flyFlits--
			r.acceptFlit(ev.port, ev.vc, ev.flit)
		case evCredit:
			r.out[ev.port].credits[ev.vc]++
		}
	}
	n.ring[slot] = evs[:0]
	for _, ni := range n.NIs {
		if ni.injActive() {
			ni.tickInject()
		}
	}
	if n.hare {
		for _, r := range n.Routers {
			r.tick()
		}
	} else if n.ctr.bufFlits > 0 {
		for _, r := range n.Routers {
			if r.buffered > 0 {
				r.tick()
			}
		}
	}
	for _, ni := range n.NIs {
		if ni.ejActive() {
			ni.tickEject()
		}
	}
}

// ResetStats zeroes all measurement counters (end of warmup) without
// disturbing in-flight traffic.
func (n *Network) ResetStats() {
	// Tile deltas are folded into ctr every cycle, so between cycles —
	// the only place ResetStats is called — the canonical block is the
	// whole truth and the deltas are structurally zero.
	n.ctr.injFlits = [2]int64{}
	n.ctr.ejFlits = [2]int64{}
	for i := range n.PktLat {
		n.PktLat[i].Reset()
	}
	n.ctr.flitHops = 0
	n.measured = 0
	for _, r := range n.Routers {
		for p := range r.out {
			r.out[p].sent = 0
		}
	}
	for _, ni := range n.NIs {
		ni.EjFlitsByClass = [2]int64{}
		ni.StallCycles = 0
		ni.InjStallEv = 0
	}
}

// FlitHops returns total flit-hop traversals since the last reset
// (the activity factor for the energy model).
func (n *Network) FlitHops() int64 { return n.ctr.flitHops }

// InjectedFlits returns flits injected for a traffic class since the
// last ResetStats.
func (n *Network) InjectedFlits(c Class) int64 { return n.ctr.injFlits[c] }

// EjectedFlits returns flits ejected for a traffic class since the
// last ResetStats.
func (n *Network) EjectedFlits(c Class) int64 { return n.ctr.ejFlits[c] }

// MeasuredCycles returns cycles since the last ResetStats.
func (n *Network) MeasuredCycles() int64 { return n.measured }

// PortUtilization returns the fraction of measured cycles that router
// r's output port carried a flit. It returns 0 before any cycle has
// been measured and for out-of-range router or port indices.
func (n *Network) PortUtilization(r, port int) float64 {
	if n.measured == 0 {
		return 0
	}
	return float64(n.PortSent(r, port)) / float64(n.measured)
}

// PortSent returns the cumulative flits transferred through router r's
// output port since the last ResetStats, or 0 for out-of-range
// indices. The observability layer differences it across windows to
// derive per-link utilization time series.
func (n *Network) PortSent(r, port int) int64 {
	if r < 0 || r >= len(n.Routers) {
		return 0
	}
	rt := n.Routers[r]
	if port < 0 || port >= len(rt.out) {
		return 0
	}
	return rt.out[port].sent
}

// Quiet reports whether the network holds no buffered or in-flight
// flits (used by drain tests). It reads the maintained activity
// counters; with DebugChecks set it also performs the historical full
// scan and panics if the two disagree.
func (n *Network) Quiet() bool {
	quiet := n.ctr.bufFlits == 0 && n.ctr.flyFlits == 0
	if quiet {
		for _, ni := range n.NIs {
			if ni.injActive() || ni.ejActive() {
				quiet = false
				break
			}
		}
	}
	if n.DebugChecks {
		if scan := n.quietScan(); scan != quiet {
			panic(fmt.Sprintf("noc: Quiet counter/scan divergence: counters=%v scan=%v (bufFlits=%d flyFlits=%d)",
				quiet, scan, n.ctr.bufFlits, n.ctr.flyFlits))
		}
	}
	return quiet
}

// quietScan is the full-rescan form of Quiet (debug cross-check).
func (n *Network) quietScan() bool {
	for _, r := range n.Routers {
		if r.bufferedScan() > 0 {
			return false
		}
	}
	fly := 0
	n.forEachPending(func(ev event) {
		if ev.kind == evFlit {
			fly++
		}
	})
	if fly > 0 {
		return false
	}
	for _, ni := range n.NIs {
		if len(ni.injQ[0]) > 0 || len(ni.injQ[1]) > 0 || len(ni.streams) > 0 || len(ni.asm) > 0 {
			return false
		}
		for v := range ni.ejBuf {
			if ni.ejBuf[v].Len() > 0 {
				return false
			}
		}
	}
	return true
}

// CheckCreditInvariant verifies that, for every wired output VC,
// credits + downstream buffer occupancy + in-flight flits equals the
// buffer depth, and that the maintained activity counters match a
// full recount. It returns an error describing the first violation.
func (n *Network) CheckCreditInvariant() error {
	inFlight := make(map[[3]int]int) // (router, port, vc) -> flits on the wire
	credits := make(map[[3]int]int)  // (router, port, vc) -> credits on the wire
	fly := 0
	n.forEachPending(func(ev event) {
		k := [3]int{ev.router, ev.port, ev.vc}
		if ev.kind == evFlit {
			inFlight[k]++
			fly++
		} else {
			credits[k]++
		}
	})
	if fly != n.ctr.flyFlits {
		return fmt.Errorf("in-flight flit counter drifted: counter=%d scan=%d", n.ctr.flyFlits, fly)
	}
	buffered := 0
	for _, r := range n.Routers {
		scan := r.bufferedScan()
		if scan != r.buffered {
			return fmt.Errorf("router %d buffered-flit counter drifted: counter=%d scan=%d", r.ID, r.buffered, scan)
		}
		buffered += scan
	}
	if buffered != n.ctr.bufFlits {
		return fmt.Errorf("network buffered-flit counter drifted: counter=%d scan=%d", n.ctr.bufFlits, buffered)
	}
	for _, r := range n.Routers {
		for p := range r.out {
			op := &r.out[p]
			if op.link == nil {
				continue
			}
			for v := range op.credits {
				down := n.Routers[op.link.to]
				occ := down.in[op.link.toPort][v].q.Len()
				fly := inFlight[[3]int{op.link.to, op.link.toPort, v}]
				cred := credits[[3]int{r.ID, p, v}]
				total := op.credits[v] + occ + fly + cred
				if total != n.bufDepth {
					return fmt.Errorf("credit invariant violated at router %d port %d vc %d: credits=%d occ=%d inflight=%d creditsInFlight=%d depth=%d",
						r.ID, p, v, op.credits[v], occ, fly, cred, n.bufDepth)
				}
			}
		}
	}
	return nil
}

// NI returns the network interface of a node.
func (n *Network) NI(node int) *NI { return n.NIs[node] }

// DebugPortState summarises an output port's credits and VC ownership
// (diagnostics).
func (n *Network) DebugPortState(r, port int) string {
	op := &n.Routers[r].out[port]
	s := "E:"
	for v := range op.credits {
		owner := "free"
		if op.owner[v] != ownerFree {
			owner = "held"
		}
		s += fmt.Sprintf("vc%d(c%d,%s)", v, op.credits[v], owner)
	}
	return s
}

// DebugLocalIn summarises the local input port VC occupancy
// (diagnostics).
func (n *Network) DebugLocalIn(r int) string {
	rt := n.Routers[r]
	s := "L:"
	for v := range rt.in[0] {
		b := &rt.in[0][v]
		s += fmt.Sprintf("vc%d(q%d,out%d)", v, b.q.Len(), b.outPort)
	}
	return s
}

// DebugInPort summarises an input port's VC occupancy (diagnostics).
func (n *Network) DebugInPort(r, port int) string {
	rt := n.Routers[r]
	s := ""
	for v := range rt.in[port] {
		b := &rt.in[port][v]
		s += fmt.Sprintf("vc%d(q%d,out%d)", v, b.q.Len(), b.outPort)
	}
	return s
}
