package noc

// This file implements deterministic tile-parallel network ticking.
//
// The network is partitioned into tiles: contiguous router ranges plus
// the NIs attached to those routers. Each cycle runs in two phases:
//
//   - Compute: every tile, on its own worker, drains last cycle's
//     staged cross-tile events into its delay ring, delivers its own
//     ring slot, injects from its own NIs, and ticks its own routers.
//     All state a tile touches in this phase is tile-owned; the one
//     cross-tile interaction — a flit or credit scheduled onto a
//     router of another tile — is staged into a per-(src,dst) buffer
//     instead of applied.
//   - Commit: after a single barrier, the coordinator folds each
//     tile's statistics delta into the canonical counters in fixed
//     tile order and runs packet ejection serially in node order.
//
// Determinism argument (DESIGN.md §11 is the long form): every
// delivery has delay >= 1, so an event staged in cycle c is never due
// before cycle c+1 — draining at the start of the next compute phase
// is always in time. Within one ring slot, delivery order is
// immaterial: credit-based flow control admits at most one flit per
// (router, input port) per cycle and link delays are uniform, so no
// two same-slot events touch the same VC ring, and credit delivery is
// a commutative increment. Statistics fold in fixed tile order, and
// every order-sensitive consumer (float latency samplers, packet
// handlers) runs in the serial commit phase in node order. The result
// is bit-identical to serial execution at every worker count.
//
// Staging buffers are double-buffered by cycle parity (par.WriteParity
// / par.DrainParity): cycle c writes stage parity c&1 and drains
// parity (c-1)&1, so writers and drainers never share a buffer and
// the end-of-cycle barrier is the only synchronization the phases
// need.
//
// The compute/commit halves are also exported separately
// (BeginTickParallel / ComputeSection / CommitTick) so the system
// tick can fuse both networks' compute phases — and the core node
// shards' begin phase — into a single pool dispatch per cycle; Tick
// remains the self-contained per-network entry point. See
// internal/core/parallel.go for the fused cycle and the Enqueued
// stamp (enqNow) argument that makes fusion exact.

import (
	"fmt"

	"delrep/internal/par"
)

// netCounters is the mutable statistics block of a Network. The
// canonical copy lives in the Network; in tiled mode each tile
// accumulates into a private delta that the commit phase folds into
// the canonical copy every cycle, so routers and NIs update counters
// through a pointer without caring which mode they run in.
type netCounters struct {
	// Activity counters (never reset): flits buffered in router input
	// rings, and flit events in flight in the delay rings.
	bufFlits int
	flyFlits int

	// Measurement counters (reset at the end of warmup).
	injFlits [2]int64 // per class
	ejFlits  [2]int64
	flitHops int64
}

// add folds a delta into the receiver.
func (c *netCounters) add(d *netCounters) {
	c.bufFlits += d.bufFlits
	c.flyFlits += d.flyFlits
	for i := range c.injFlits {
		c.injFlits[i] += d.injFlits[i]
		c.ejFlits[i] += d.ejFlits[i]
	}
	c.flitHops += d.flitHops
}

// stagedEvent is a cross-tile delivery captured during the compute
// phase: the event plus the ring slot it was scheduled into.
type stagedEvent struct {
	slot int32
	ev   event
}

// tile owns a contiguous router range [loR, hiR), the NIs attached to
// those routers, a private delay ring, and a private statistics delta.
type tile struct {
	net      *Network
	id       int
	loR, hiR int
	routers  []*Router
	nis      []*NI
	ring     [][]event // same length as the serial delay ring
	ctr      netCounters
	_        [64]byte // no false sharing between adjacent tiles' deltas
}

// schedule is the tiled replacement for Network.schedule: same-tile
// deliveries go straight into the tile's own ring; cross-tile
// deliveries are staged for the destination tile to drain next cycle.
// Delivery delays are >= 1, so next-cycle draining is always in time.
func (t *tile) schedule(delay int, ev event) {
	if delay < 1 {
		delay = 1
	}
	if ev.kind == evFlit {
		t.ctr.flyFlits++
	}
	n := t.net
	slot := (n.now + int64(delay)) % int64(len(t.ring))
	dst := n.tileOf[ev.router]
	if dst == t.id {
		t.ring[slot] = append(t.ring[slot], ev)
		return
	}
	n.stage.At(par.WriteParity(n.now), t.id, dst).S.Push(stagedEvent{slot: int32(slot), ev: ev})
}

// run executes the tile's compute phase for the current cycle:
// drain staged cross-tile events (fixed source order), deliver the
// tile ring's due slot, inject from the tile's NIs, tick the tile's
// routers. Everything it touches is owned by this tile this cycle.
func (t *tile) run() {
	n := t.net
	parity := par.DrainParity(n.now)
	for src := 0; src < n.stage.Parts(); src++ {
		sb := n.stage.At(parity, src, t.id)
		for _, se := range sb.S.Items() {
			t.ring[se.slot] = append(t.ring[se.slot], se.ev)
		}
		sb.S.Reset()
	}
	slot := n.now % int64(len(t.ring))
	evs := t.ring[slot]
	for _, ev := range evs {
		r := n.Routers[ev.router]
		switch ev.kind {
		case evFlit:
			t.ctr.flyFlits--
			r.acceptFlit(ev.port, ev.vc, ev.flit)
		case evCredit:
			r.out[ev.port].credits[ev.vc]++
		}
	}
	t.ring[slot] = evs[:0]
	for _, ni := range t.nis {
		if ni.injActive() {
			ni.tickInject()
		}
	}
	if n.hare {
		for _, r := range t.routers {
			r.tick()
		}
	} else {
		// The serial path's network-level bufFlits gate is only a fast
		// path over the exact per-router check; the canonical counter is
		// one fold behind during the compute phase, so tiles use the
		// per-router gate alone.
		for _, r := range t.routers {
			if r.buffered > 0 {
				r.tick()
			}
		}
	}
}

// SetParallel partitions the network into up to `workers` tiles ticked
// on the given pool. It must be called before the first cycle (the
// rings and staging buffers assume no traffic is in flight), and with
// workers <= pool.Size(). One router or one worker leaves the network
// serial. Results are bit-identical to serial execution at any worker
// count; see the package comment at the top of this file.
func (n *Network) SetParallel(pool *par.Pool, workers int) {
	if n.now != 0 {
		panic("noc: SetParallel after the first tick")
	}
	n.forceSerial()
	nt := workers
	if nt > len(n.Routers) {
		nt = len(n.Routers)
	}
	if nt <= 1 || pool == nil {
		return
	}
	if workers > pool.Size() {
		panic(fmt.Sprintf("noc: SetParallel(%d) exceeds pool size %d", workers, pool.Size()))
	}
	n.pool = pool
	n.tileOf = make([]int, len(n.Routers))
	n.tiles = make([]*tile, nt)
	bounds := par.Cuts(len(n.Routers), nt, nil)
	for i := 0; i < nt; i++ {
		t := &tile{
			net: n,
			id:  i,
			loR: bounds[i],
			hiR: bounds[i+1],
		}
		t.ring = make([][]event, len(n.ring))
		t.routers = n.Routers[t.loR:t.hiR]
		for r := t.loR; r < t.hiR; r++ {
			n.tileOf[r] = i
			n.Routers[r].tl = t
			n.Routers[r].ctr = &t.ctr
		}
		n.tiles[i] = t
	}
	for _, ni := range n.NIs {
		t := n.tiles[n.tileOf[ni.router]]
		t.nis = append(t.nis, ni)
		ni.ctr = &t.ctr
	}
	n.stage.Init(nt)
	// Prebind the fan-out closure once so the per-cycle pool.Run does
	// not allocate.
	n.sectionFn = n.section
}

// forceSerial tears down any tile partition and restores the serial
// tick path. Like SetParallel it is only legal before the first cycle.
func (n *Network) forceSerial() {
	if n.now != 0 && n.tiles != nil {
		panic("noc: forceSerial after the first tick")
	}
	for _, r := range n.Routers {
		r.tl = nil
		r.ctr = &n.ctr
	}
	for _, ni := range n.NIs {
		ni.ctr = &n.ctr
	}
	n.tiles = nil
	n.tileOf = nil
	n.stage = par.Matrix[stagedEvent]{}
	n.pool = nil
	n.sectionFn = nil
}

// Parallel returns the number of tiles the network ticks in parallel
// (1 when serial).
func (n *Network) Parallel() int {
	if n.tiles == nil {
		return 1
	}
	return len(n.tiles)
}

// section is the per-worker body of the compute phase: worker w runs
// tiles w, w+P, w+2P, ... (P = pool size). With the usual tile count
// <= pool size each worker runs at most one tile.
func (n *Network) section(worker int) {
	for i := worker; i < len(n.tiles); i += n.pool.Size() {
		n.tiles[i].run()
	}
}

// BeginTickParallel opens a tiled cycle: it advances the clock and,
// unless holdEnq is set, the injection stamp. A fused system tick
// holds the reply network's enqNow at the previous cycle until the
// request network has committed, reproducing the serial order in
// which request-ejection handlers enqueue replies before the reply
// network's own tick advances its clock (see ReleaseEnq). The hold
// also snapshots every NI's injection-buffer occupancy: the handlers
// running during the hold serially precede this network's tick, so
// capacity freed by this cycle's compute phase (streams completing)
// must stay invisible to them (see NI.occupancy).
func (n *Network) BeginTickParallel(holdEnq bool) {
	if n.tiles == nil {
		panic("noc: BeginTickParallel without a tile partition")
	}
	n.now++
	n.measured++
	if !holdEnq {
		n.enqNow = n.now
		return
	}
	n.enqHeld = true
	for _, ni := range n.NIs {
		ni.holdLen[0] = len(ni.injQ[0]) + ni.inflight[0]
		ni.holdLen[1] = len(ni.injQ[1]) + ni.inflight[1]
	}
}

// ComputeSection runs worker w's share of the tile compute phase.
// It must only be called between BeginTickParallel and CommitTick,
// from a pool dispatch that runs every worker exactly once.
func (n *Network) ComputeSection(worker int) { n.section(worker) }

// ReleaseEnq advances the injection stamp to the current cycle and
// drops the occupancy snapshot, ending the hold a
// BeginTickParallel(true) opened.
func (n *Network) ReleaseEnq() {
	n.enqNow = n.now
	n.enqHeld = false
}

// CommitTick runs the serial commit phase of a tiled cycle: fold each
// tile's statistics delta in fixed tile order, then eject packets in
// node order.
func (n *Network) CommitTick() {
	for _, t := range n.tiles {
		n.ctr.add(&t.ctr)
		t.ctr = netCounters{}
	}
	for _, ni := range n.NIs {
		if ni.ejActive() {
			ni.tickEject()
		}
	}
}

// tickTiled is the parallel form of Tick: one pool fan-out for the
// compute phase, then the serial commit phase. Exactly one barrier
// per network per cycle.
func (n *Network) tickTiled() {
	n.BeginTickParallel(false)
	n.pool.Run(n.sectionFn)
	n.CommitTick()
}

// forEachPending invokes fn for every scheduled-but-undelivered event:
// the serial delay ring, every tile's ring, and both parities of the
// staging buffers (events staged on the last cycle sit undrained until
// their destination tile's next compute phase). Quiet and the credit
// invariant check use it so they stay exact in tiled mode.
func (n *Network) forEachPending(fn func(event)) {
	for _, slot := range n.ring {
		for _, ev := range slot {
			fn(ev)
		}
	}
	for _, t := range n.tiles {
		for _, slot := range t.ring {
			for _, ev := range slot {
				fn(ev)
			}
		}
	}
	n.stage.Each(func(se stagedEvent) { fn(se.ev) })
}
