package noc

import "delrep/internal/fifo"

// vcBuf is the input buffer state of one virtual channel: a fixed-
// capacity flit ring (sized to bufDepth — credits bound occupancy)
// plus the routing/allocation state of the packet currently at its
// front. Routing candidates are folded into a per-(port,vc) claimed
// bitmap so VC allocation tests membership with one bit probe instead
// of a linear candidate scan.
type vcBuf struct {
	q       fifo.Ring[Flit]
	mask    []uint64 // bit (port*numVCs + vc) set: candidate output VC
	routed  bool     // route computed for the current head packet
	outPort int
	outVC   int
}

// allows reports whether output (port, vc) — encoded as a flat bit
// index — is a routing candidate for the buffered head packet.
func (b *vcBuf) allows(bit int) bool {
	return b.mask[bit>>6]&(1<<(uint(bit)&63)) != 0
}

// clearRoute drops the head packet's routing state (tail departed).
func (b *vcBuf) clearRoute() {
	for i := range b.mask {
		b.mask[i] = 0
	}
	b.routed = false
}

// outPort is the output side of a router port: per-VC downstream
// credits, per-VC wormhole ownership, and the attached link or NI.
type outPort struct {
	credits   []int
	owner     []int32 // owner key (inPort<<8|inVC) holding the VC, -1 free
	link      *wire   // inter-router connection (nil otherwise)
	eject     *NI     // local ejection target (nil otherwise)
	connected bool    // link or eject present
	sent      int64   // flits transferred (utilization statistic)
}

// wire records where an output port's flits are delivered.
type wire struct {
	to     int // destination router
	toPort int
}

// feeder records where an input port's flits come from, for credit return.
type feeder struct {
	r    int
	port int
	ok   bool // false for local (NI-fed) or unconnected inputs
}

const ownerFree = int32(-1)

func ownerKey(port, vc int) int32 { return int32(port<<8 | vc) }

// Router is an input-queued virtual-channel router with credit-based
// wormhole flow control, per-class VC ranges, and separable switch
// allocation with CPU-priority arbitration (a one-iteration
// iSLIP-style allocator with rotating pointers).
//
// The switch-allocation input-port pointer is not stored: it advances
// exactly once per network cycle since construction, so it is
// recomputed from the cycle count. That keeps it bit-identical even
// when idle routers skip their tick entirely (see Network.Tick).
type Router struct {
	net    *Network
	tl     *tile        // owning tile (nil when the network is serial)
	ctr    *netCounters // statistics sink: the network's canonical block, or the tile's delta
	ID     int
	nports int
	// inFlat is the contiguous backing store for all input VC buffers,
	// indexed port*numVCs+vc; in[p] is a subslice view of it. The
	// allocator inner loops index inFlat directly so a probe is one
	// bounds-checked load instead of a slice-of-slice chase.
	inFlat []vcBuf
	in     [][]vcBuf
	inFrom []feeder
	out    []outPort

	saInPtr  []int // per input port: rotating VC pointer
	vaOutPtr []int // per output port: rotating grant pointer (VC allocation)

	// Scratch buffers reused every tick (allocated once here, never
	// on the tick path).
	inputUsed  []bool
	outputUsed []bool
	candBuf    []Candidate
	// headPrio caches, per input VC (indexed port*numVCs+vc), the
	// priority of an arbitration-eligible head flit, or -1. Both
	// allocators classify heads in a single scan and then arbitrate
	// over this byte array, instead of re-dereferencing ring fronts and
	// packet priorities in their rotating inner loops.
	headPrio []int8

	// buffered counts flits across all input VC rings; it drives the
	// active-set scheduler and the O(1) BufferedFlits/Quiet paths.
	buffered int

	// Adaptive routing state (see routing.go).
	foot map[int]int
	ewma []float64
}

func newRouter(net *Network, id, nports, numVCs, bufDepth int) *Router {
	r := &Router{
		net:        net,
		ctr:        &net.ctr,
		ID:         id,
		nports:     nports,
		in:         make([][]vcBuf, nports),
		inFrom:     make([]feeder, nports),
		out:        make([]outPort, nports),
		saInPtr:    make([]int, nports),
		vaOutPtr:   make([]int, nports),
		inputUsed:  make([]bool, nports),
		outputUsed: make([]bool, nports),
		candBuf:    make([]Candidate, 0, 4),
		headPrio:   make([]int8, nports*numVCs),
		ewma:       make([]float64, nports),
	}
	maskWords := (nports*numVCs + 63) / 64
	r.inFlat = make([]vcBuf, nports*numVCs)
	for p := 0; p < nports; p++ {
		r.in[p] = r.inFlat[p*numVCs : (p+1)*numVCs : (p+1)*numVCs]
		for v := 0; v < numVCs; v++ {
			b := &r.in[p][v]
			b.q.Init(bufDepth)
			b.mask = make([]uint64, maskWords)
			b.outPort, b.outVC = -1, -1
		}
		r.out[p] = outPort{
			credits: make([]int, numVCs),
			owner:   make([]int32, numVCs),
		}
		for v := range r.out[p].owner {
			r.out[p].owner[v] = ownerFree
		}
	}
	return r
}

// pushFlit appends a flit to input VC (port, vc), maintaining the
// router and network activity counters. All buffer insertions (link
// deliveries and local NI injection) go through here so the counters
// that gate idle routers cannot drift from the rings.
func (r *Router) pushFlit(port, vc int, f Flit) {
	r.in[port][vc].q.PushBack(f)
	r.buffered++
	r.ctr.bufFlits++
}

// sched queues a delivery through the network's serial delay ring or,
// in tiled mode, through the owning tile (which stages cross-tile
// deliveries for commit; see tile.go).
func (r *Router) sched(delay int, ev event) {
	if r.tl != nil {
		r.tl.schedule(delay, ev)
		return
	}
	r.net.schedule(delay, ev)
}

// acceptFlit places an arriving flit into an input VC buffer. Credits
// guarantee space; a violation indicates a flow-control bug.
func (r *Router) acceptFlit(port, vc int, f Flit) {
	if r.in[port][vc].q.Len() >= r.net.bufDepth {
		panic("noc: input buffer overflow (credit accounting bug)")
	}
	if f.Pkt.Trace != nil && f.Head() {
		f.Pkt.Trace.arrive(r.ID, r.net.now)
	}
	r.pushFlit(port, vc, f)
}

// tick runs one router cycle: route computation and VC allocation for
// waiting heads, then separable switch allocation, then switch/link
// traversal for the winners.
func (r *Router) tick() {
	if r.net.hare {
		r.updateEWMA()
	}
	if r.buffered == 0 {
		return
	}
	r.allocateVCs()
	r.switchAllocAndTraverse()
}

// allocateVCs performs route computation for new heads, then VC
// allocation with output-side round-robin arbitration: each free output
// VC grants to the next requesting input VC past the output port's
// rotating pointer. Higher priorities allocate first. Input-side
// iteration orders (fixed or cycle-stepped) are not used because they
// let persistent flows resonance-lock the allocator and starve traffic
// turning in from other dimensions at merge routers.
func (r *Router) allocateVCs() {
	numVCs := r.net.numVCs
	// Single classification pass: route any new head, then record the
	// priority of every VC still waiting for an output. Routing one VC
	// touches only that VC's own mask/routed state, so classifying as
	// we go sees the same values as a separate counting pass would.
	var waiting [3]int
	headPrio := r.headPrio
	for idx := range r.inFlat {
		b := &r.inFlat[idx]
		if b.q.Len() == 0 || b.outPort >= 0 {
			headPrio[idx] = -1
			continue
		}
		head := b.q.Front()
		if !b.routed {
			if !head.Head() {
				panic("noc: body flit at VC front without allocated route")
			}
			cands := r.net.topo.Route(r.net, r.ID, head.Pkt, r.candBuf[:0])
			for _, c := range cands {
				for vc := c.VCLo; vc <= c.VCHi; vc++ {
					bit := c.Port*numVCs + vc
					b.mask[bit>>6] |= 1 << (uint(bit) & 63)
				}
			}
			b.routed = true
			r.candBuf = cands[:0] // keep a grown buffer for reuse
		}
		prio := head.Pkt.Prio
		headPrio[idx] = int8(prio)
		waiting[prio]++
	}
	total := r.nports * numVCs
	for prio := int(PrioCPU); prio >= int(PrioGPU); prio-- {
		if waiting[prio] == 0 {
			continue
		}
		granted := 0
		for op := 0; op < r.nports; op++ {
			out := &r.out[op]
			if !out.connected {
				continue
			}
			for ovc := range out.credits {
				if out.owner[ovc] != ownerFree || out.credits[ovc] <= 0 {
					continue
				}
				bit := op*numVCs + ovc
				for k := 0; k < total; k++ {
					idx := r.vaOutPtr[op] + k
					if idx >= total {
						idx -= total
					}
					if int(headPrio[idx]) != prio {
						continue
					}
					b := &r.inFlat[idx]
					if !b.allows(bit) {
						continue
					}
					p, v := idx/numVCs, idx%numVCs
					out.owner[ovc] = ownerKey(p, v)
					b.outPort = op
					b.outVC = ovc
					headPrio[idx] = -1 // granted: no longer waiting
					if pkt := b.q.Front().Pkt; pkt.Trace != nil {
						pkt.Trace.vcAlloc(r.ID, r.net.now)
					}
					r.vaOutPtr[op] = idx + 1
					if r.vaOutPtr[op] == total {
						r.vaOutPtr[op] = 0
					}
					granted++
					break
				}
				if granted == waiting[prio] {
					break
				}
			}
			if granted == waiting[prio] {
				break
			}
		}
	}
}

// switchAllocAndTraverse picks at most one flit per input port and per
// output port (separable allocation, priority classes first, rotating
// pointers for fairness within a class) and forwards the winners.
func (r *Router) switchAllocAndTraverse() {
	inputUsed, outputUsed := r.inputUsed, r.outputUsed
	for i := range inputUsed {
		inputUsed[i] = false
		outputUsed[i] = false
	}
	// Classify sendable heads once. A grant only mutates the granted
	// VC (popped and possibly released), and inputUsed masks that VC's
	// whole port for the rest of the allocation, so the snapshot stays
	// valid across the priority passes; output contention and credits
	// are still checked live in the loop.
	numVCs := r.net.numVCs
	headPrio := r.headPrio
	var present [3]int
	for idx := range r.inFlat {
		b := &r.inFlat[idx]
		if b.q.Len() == 0 || b.outPort < 0 {
			headPrio[idx] = -1
			continue
		}
		prio := b.q.Front().Pkt.Prio
		headPrio[idx] = int8(prio)
		present[prio]++
	}
	// The historical saPortPtr advanced by one every cycle regardless
	// of traffic; derive it from the cycle count so skipped idle ticks
	// cannot desynchronise it.
	base := int((r.net.now - 1) % int64(r.nports))
	for prio := int(PrioCPU); prio >= int(PrioGPU); prio-- {
		if present[prio] == 0 {
			continue
		}
		for i := 0; i < r.nports; i++ {
			p := base + i
			if p >= r.nports {
				p -= r.nports
			}
			if inputUsed[p] {
				continue
			}
			nvc := numVCs
			pv := p * numVCs
			for j := 0; j < nvc; j++ {
				v := r.saInPtr[p] + j
				if v >= nvc {
					v -= nvc
				}
				if int(headPrio[pv+v]) != prio {
					continue
				}
				b := &r.inFlat[pv+v]
				if outputUsed[b.outPort] {
					continue
				}
				if r.out[b.outPort].credits[b.outVC] <= 0 {
					continue
				}
				outPort := b.outPort
				r.traverse(p, v, b)
				inputUsed[p] = true
				outputUsed[outPort] = true
				r.saInPtr[p] = v + 1
				if r.saInPtr[p] == nvc {
					r.saInPtr[p] = 0
				}
				break
			}
		}
	}
}

// traverse moves the front flit of input VC (p, v) through the crossbar
// onto its allocated output, returning a credit upstream and releasing
// the wormhole channel on tails. The caller has verified eligibility.
func (r *Router) traverse(p, v int, b *vcBuf) {
	f := b.q.PopFront()
	r.buffered--
	r.ctr.bufFlits--
	op := &r.out[b.outPort]
	op.sent++
	r.ctr.flitHops++
	// Wormhole routing sends every flit of a packet over the head's
	// path, so the per-flit hop count is charged in one step when the
	// head traverses. This keeps the packet untouched during body/tail
	// traversals, which may run on another tile while the head is
	// already being processed downstream; the final value is identical.
	if f.Head() {
		f.Pkt.Hops += f.Pkt.SizeFlits
	}
	if f.Pkt.Trace != nil {
		if f.Head() {
			f.Pkt.Trace.depart(r.ID, r.net.now)
		}
		if f.Tail() {
			f.Pkt.Trace.tailDepart(r.ID, r.net.now)
		}
	}

	if op.link != nil {
		op.credits[b.outVC]--
		r.sched(r.net.hopDelay, event{
			kind: evFlit, router: op.link.to, port: op.link.toPort, vc: b.outVC, flit: f,
		})
	} else if op.eject != nil {
		op.credits[b.outVC]--
		op.eject.accept(f, b.outVC)
	}

	// Return a credit to whoever feeds this input port.
	if fd := r.inFrom[p]; fd.ok {
		r.sched(r.net.cfg.LinkDelay, event{
			kind: evCredit, router: fd.r, port: fd.port, vc: v,
		})
	}

	if f.Tail() {
		op.owner[b.outVC] = ownerFree
		b.outPort, b.outVC = -1, -1
		b.clearRoute()
	}
}

// BufferedFlits returns the number of flits currently buffered at the
// router (for invariant checks and drain detection). It reads the
// maintained counter; bufferedScan recomputes it from the rings.
func (r *Router) BufferedFlits() int { return r.buffered }

// bufferedScan recounts buffered flits from the VC rings — the
// debug-mode cross-check for the maintained counter.
func (r *Router) bufferedScan() int {
	n := 0
	for p := range r.in {
		for v := range r.in[p] {
			n += r.in[p][v].q.Len()
		}
	}
	return n
}
