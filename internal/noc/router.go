package noc

// vcBuf is the input buffer state of one virtual channel: a flit FIFO
// plus the routing/allocation state of the packet currently at its front.
type vcBuf struct {
	q       []Flit
	cands   []Candidate
	outPort int
	outVC   int
}

// outPort is the output side of a router port: per-VC downstream
// credits, per-VC wormhole ownership, and the attached link or NI.
type outPort struct {
	credits   []int
	owner     []int32 // owner key (inPort<<8|inVC) holding the VC, -1 free
	link      *wire   // inter-router connection (nil otherwise)
	eject     *NI     // local ejection target (nil otherwise)
	connected bool    // link or eject present
	sent      int64   // flits transferred (utilization statistic)
}

// wire records where an output port's flits are delivered.
type wire struct {
	to     int // destination router
	toPort int
}

// feeder records where an input port's flits come from, for credit return.
type feeder struct {
	r    int
	port int
	ok   bool // false for local (NI-fed) or unconnected inputs
}

const ownerFree = int32(-1)

func ownerKey(port, vc int) int32 { return int32(port<<8 | vc) }

// Router is an input-queued virtual-channel router with credit-based
// wormhole flow control, per-class VC ranges, and separable switch
// allocation with CPU-priority arbitration (a one-iteration
// iSLIP-style allocator with rotating pointers).
type Router struct {
	net    *Network
	ID     int
	nports int
	in     [][]vcBuf
	inFrom []feeder
	out    []outPort

	saInPtr   []int // per input port: rotating VC pointer
	saPortPtr int   // rotating input-port pointer (switch allocation)
	vaOutPtr  []int // per output port: rotating grant pointer (VC allocation)

	// Adaptive routing state (see routing.go).
	foot map[int]int
	ewma []float64
}

func newRouter(net *Network, id, nports, numVCs, bufDepth int) *Router {
	r := &Router{
		net:      net,
		ID:       id,
		nports:   nports,
		in:       make([][]vcBuf, nports),
		inFrom:   make([]feeder, nports),
		out:      make([]outPort, nports),
		saInPtr:  make([]int, nports),
		vaOutPtr: make([]int, nports),
		ewma:     make([]float64, nports),
	}
	for p := 0; p < nports; p++ {
		r.in[p] = make([]vcBuf, numVCs)
		for v := 0; v < numVCs; v++ {
			r.in[p][v] = vcBuf{q: make([]Flit, 0, bufDepth), outPort: -1, outVC: -1}
		}
		r.out[p] = outPort{
			credits: make([]int, numVCs),
			owner:   make([]int32, numVCs),
		}
		for v := range r.out[p].owner {
			r.out[p].owner[v] = ownerFree
		}
	}
	return r
}

// acceptFlit places an arriving flit into an input VC buffer. Credits
// guarantee space; a violation indicates a flow-control bug.
func (r *Router) acceptFlit(port, vc int, f Flit) {
	b := &r.in[port][vc]
	if len(b.q) >= r.net.bufDepth {
		panic("noc: input buffer overflow (credit accounting bug)")
	}
	if f.Pkt.Trace != nil && f.Head() {
		f.Pkt.Trace.arrive(r.ID, r.net.now)
	}
	b.q = append(b.q, f)
}

// tick runs one router cycle: route computation and VC allocation for
// waiting heads, then separable switch allocation, then switch/link
// traversal for the winners.
func (r *Router) tick() {
	if r.net.hare {
		r.updateEWMA()
	}
	r.allocateVCs()
	r.switchAllocAndTraverse()
}

// allocateVCs performs route computation for new heads, then VC
// allocation with output-side round-robin arbitration: each free output
// VC grants to the next requesting input VC past the output port's
// rotating pointer. Higher priorities allocate first. Input-side
// iteration orders (fixed or cycle-stepped) are not used because they
// let persistent flows resonance-lock the allocator and starve traffic
// turning in from other dimensions at merge routers.
func (r *Router) allocateVCs() {
	for p := 0; p < r.nports; p++ {
		for v := range r.in[p] {
			b := &r.in[p][v]
			if len(b.q) == 0 || b.outPort >= 0 || b.cands != nil {
				continue
			}
			head := b.q[0]
			if !head.Head() {
				panic("noc: body flit at VC front without allocated route")
			}
			b.cands = r.net.topo.Route(r.net, r.ID, head.Pkt)
		}
	}
	// Count waiting heads per priority; skip empty passes (most routers
	// are idle most cycles).
	var waiting [3]int
	for p := 0; p < r.nports; p++ {
		for v := range r.in[p] {
			b := &r.in[p][v]
			if len(b.q) > 0 && b.outPort < 0 && b.cands != nil {
				waiting[b.q[0].Pkt.Prio]++
			}
		}
	}
	total := r.nports * r.net.numVCs
	for prio := int(PrioCPU); prio >= int(PrioGPU); prio-- {
		if waiting[prio] == 0 {
			continue
		}
		granted := 0
		for op := 0; op < r.nports; op++ {
			out := &r.out[op]
			if !out.connected {
				continue
			}
			for ovc := range out.credits {
				if out.owner[ovc] != ownerFree || out.credits[ovc] <= 0 {
					continue
				}
				for k := 0; k < total; k++ {
					idx := (r.vaOutPtr[op] + k) % total
					p, v := idx/r.net.numVCs, idx%r.net.numVCs
					b := &r.in[p][v]
					if len(b.q) == 0 || b.outPort >= 0 || b.cands == nil {
						continue
					}
					if int(b.q[0].Pkt.Prio) != prio {
						continue
					}
					if !covers(b.cands, op, ovc) {
						continue
					}
					out.owner[ovc] = ownerKey(p, v)
					b.outPort = op
					b.outVC = ovc
					if pkt := b.q[0].Pkt; pkt.Trace != nil {
						pkt.Trace.vcAlloc(r.ID, r.net.now)
					}
					r.vaOutPtr[op] = (idx + 1) % total
					granted++
					break
				}
				if granted == waiting[prio] {
					break
				}
			}
			if granted == waiting[prio] {
				break
			}
		}
	}
}

// covers reports whether any routing candidate permits (port, vc).
func covers(cands []Candidate, port, vc int) bool {
	for _, c := range cands {
		if c.Port == port && vc >= c.VCLo && vc <= c.VCHi {
			return true
		}
	}
	return false
}

// switchAllocAndTraverse picks at most one flit per input port and per
// output port (separable allocation, priority classes first, rotating
// pointers for fairness within a class) and forwards the winners.
func (r *Router) switchAllocAndTraverse() {
	inputUsed := make([]bool, r.nports)
	outputUsed := make([]bool, r.nports)
	for prio := int(PrioCPU); prio >= int(PrioGPU); prio-- {
		for i := 0; i < r.nports; i++ {
			p := (r.saPortPtr + i) % r.nports
			if inputUsed[p] {
				continue
			}
			nvc := len(r.in[p])
			for j := 0; j < nvc; j++ {
				v := (r.saInPtr[p] + j) % nvc
				b := &r.in[p][v]
				if len(b.q) == 0 || b.outPort < 0 {
					continue
				}
				if int(b.q[0].Pkt.Prio) != prio {
					continue
				}
				if outputUsed[b.outPort] {
					continue
				}
				if r.out[b.outPort].credits[b.outVC] <= 0 {
					continue
				}
				outPort := b.outPort
				r.traverse(p, v, b)
				inputUsed[p] = true
				outputUsed[outPort] = true
				r.saInPtr[p] = (v + 1) % nvc
				break
			}
		}
	}
	r.saPortPtr = (r.saPortPtr + 1) % r.nports
}

// traverse moves the front flit of input VC (p, v) through the crossbar
// onto its allocated output, returning a credit upstream and releasing
// the wormhole channel on tails. The caller has verified eligibility.
func (r *Router) traverse(p, v int, b *vcBuf) {
	f := b.q[0]
	b.q = b.q[1:]
	op := &r.out[b.outPort]
	op.sent++
	r.net.flitHops++
	f.Pkt.Hops++
	if f.Pkt.Trace != nil {
		if f.Head() {
			f.Pkt.Trace.depart(r.ID, r.net.now)
		}
		if f.Tail() {
			f.Pkt.Trace.tailDepart(r.ID, r.net.now)
		}
	}

	if op.link != nil {
		op.credits[b.outVC]--
		r.net.schedule(r.net.hopDelay, event{
			kind: evFlit, router: op.link.to, port: op.link.toPort, vc: b.outVC, flit: f,
		})
	} else if op.eject != nil {
		op.credits[b.outVC]--
		op.eject.accept(f, b.outVC)
	}

	// Return a credit to whoever feeds this input port.
	if fd := r.inFrom[p]; fd.ok {
		r.net.schedule(r.net.cfg.LinkDelay, event{
			kind: evCredit, router: fd.r, port: fd.port, vc: v,
		})
	}

	if f.Tail() {
		op.owner[b.outVC] = ownerFree
		b.outPort, b.outVC = -1, -1
		b.cands = nil
	}
}

// BufferedFlits returns the number of flits currently buffered at the
// router (for invariant checks and drain detection).
func (r *Router) BufferedFlits() int {
	n := 0
	for p := range r.in {
		for v := range r.in[p] {
			n += len(r.in[p][v].q)
		}
	}
	return n
}
