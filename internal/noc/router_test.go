package noc

import (
	"testing"

	"delrep/internal/config"
)

// twoNodeNet builds a minimal 2x1 mesh for router-internal tests.
func twoNodeNet() *Network {
	topo := NewMesh(2, 1, MeshPolicy{
		Alg: config.RoutingCDR, ReqOrder: config.OrderXY, RepOrder: config.OrderXY,
	})
	cfg := config.Default().NoC
	net := NewNetwork("t", topo, cfg, 2, Params{
		InjCapCore: 8, InjCapMem: 8, EjCap: 24, AsmCap: 4,
	})
	for n := 0; n < 2; n++ {
		net.NI(n).Handler = func(p *Packet) bool { return true }
	}
	return net
}

func TestClaimedBitmapCoversCandidates(t *testing.T) {
	// The claimed bitmap must answer exactly the question the old
	// linear candidate scan answered: does any candidate permit
	// output (port, vc)?
	const numVCs = 2
	cands := []Candidate{{Port: 1, VCLo: 1, VCHi: 1}, {Port: 3, VCLo: 0, VCHi: 0}}
	b := vcBuf{mask: make([]uint64, (5*numVCs+63)/64)}
	for _, c := range cands {
		for vc := c.VCLo; vc <= c.VCHi; vc++ {
			bit := c.Port*numVCs + vc
			b.mask[bit>>6] |= 1 << (uint(bit) & 63)
		}
	}
	cases := []struct {
		port, vc int
		want     bool
	}{
		{1, 1, true}, {1, 0, false}, {3, 0, true}, {3, 1, false}, {2, 0, false},
	}
	for _, c := range cases {
		if got := b.allows(c.port*numVCs + c.vc); got != c.want {
			t.Errorf("allows(%d,%d) = %v", c.port, c.vc, got)
		}
	}
	b.clearRoute()
	for _, c := range cases {
		if b.allows(c.port*numVCs + c.vc) {
			t.Errorf("allows(%d,%d) after clearRoute", c.port, c.vc)
		}
	}
}

func TestWormholeOwnershipReleasedOnTail(t *testing.T) {
	net := twoNodeNet()
	p := &Packet{ID: 1, Src: 0, Dst: 1, Class: ClassReply, SizeFlits: 6}
	net.NI(0).Inject(p)
	r0 := net.Routers[0]
	sawHeld := false
	for i := 0; i < 100; i++ {
		net.Tick()
		for v := range r0.out[PortE].owner {
			if r0.out[PortE].owner[v] != ownerFree {
				sawHeld = true
			}
		}
		if p.Ejected > 0 {
			break
		}
	}
	if !sawHeld {
		t.Fatal("east output VC was never held during the packet transfer")
	}
	for i := 0; i < 50; i++ {
		net.Tick()
	}
	for v := range r0.out[PortE].owner {
		if r0.out[PortE].owner[v] != ownerFree {
			t.Fatalf("VC %d still owned after tail passed", v)
		}
	}
	if p.Ejected == 0 {
		t.Fatal("packet never delivered")
	}
}

func TestFlitHopAccounting(t *testing.T) {
	net := twoNodeNet()
	p := &Packet{ID: 1, Src: 0, Dst: 1, Class: ClassRequest, SizeFlits: 3}
	net.NI(0).Inject(p)
	for i := 0; i < 100 && p.Ejected == 0; i++ {
		net.Tick()
	}
	// 3 flits x 2 hops (router 0 -> router 1 -> ejection) = 6 flit-hops.
	if net.FlitHops() != 6 {
		t.Fatalf("flit hops = %d, want 6", net.FlitHops())
	}
	if p.Hops != 6 {
		t.Fatalf("packet hops = %d, want 6", p.Hops)
	}
}

func TestHigherPriorityAllocatesFirst(t *testing.T) {
	// Two packets at the same router both want the east output; with a
	// single VC available per class range, the CPU-priority packet must
	// win the VC first.
	topo := NewMesh(2, 1, MeshPolicy{
		Alg: config.RoutingCDR, ReqOrder: config.OrderXY, RepOrder: config.OrderXY,
	})
	cfg := config.Default().NoC
	cfg.VCsPerClass = 1
	net := NewNetwork("t", topo, cfg, 2, Params{
		InjCapCore: 8, InjCapMem: 8, EjCap: 24, AsmCap: 4,
	})
	var order []Priority
	net.NI(1).Handler = func(p *Packet) bool {
		order = append(order, p.Prio)
		return true
	}
	gpu := &Packet{ID: 1, Src: 0, Dst: 1, Class: ClassReply, Prio: PrioGPU, SizeFlits: 9}
	cpu := &Packet{ID: 2, Src: 0, Dst: 1, Class: ClassReply, Prio: PrioCPU, SizeFlits: 5}
	// Both queued before any cycle runs: the NI binds them in queue
	// order, but with one VC only one streams at a time; priority acts
	// at every allocation point thereafter.
	net.NI(0).Inject(cpu)
	net.NI(0).Inject(gpu)
	for i := 0; i < 300 && len(order) < 2; i++ {
		net.Tick()
	}
	if len(order) != 2 {
		t.Fatalf("delivered %d packets", len(order))
	}
	if order[0] != PrioCPU {
		t.Fatalf("CPU packet delivered second")
	}
}

func TestBufferedFlits(t *testing.T) {
	net := twoNodeNet()
	r0 := net.Routers[0]
	if r0.BufferedFlits() != 0 {
		t.Fatal("fresh router holds flits")
	}
	net.NI(0).Inject(&Packet{ID: 1, Src: 0, Dst: 1, Class: ClassRequest, SizeFlits: 12})
	buffered := false
	for i := 0; i < 5; i++ {
		net.Tick()
		if r0.BufferedFlits() > 0 {
			buffered = true
		}
	}
	if !buffered {
		t.Fatal("no flits ever buffered while streaming a 12-flit packet")
	}
}

func TestAcceptFlitOverflowPanics(t *testing.T) {
	net := twoNodeNet()
	r0 := net.Routers[0]
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on buffer overflow")
		}
	}()
	f := Flit{Pkt: &Packet{SizeFlits: 100}}
	for i := 0; i < 100; i++ {
		r0.acceptFlit(PortW, 0, f)
	}
}
