package noc

import (
	"math/rand"
	"testing"

	"delrep/internal/config"
)

// buildNet constructs a network with sink handlers that count packets.
func buildNet(t *testing.T, topo Topology, nocCfg config.NoC, nodes int) (*Network, []int) {
	t.Helper()
	net := NewNetwork("t", topo, nocCfg, nodes, Params{
		InjCapCore: 8, InjCapMem: 8, EjCap: 24, AsmCap: 4,
	})
	received := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		net.NI(n).Handler = func(p *Packet) bool {
			received[n]++
			return true
		}
	}
	return net, received
}

func defaultNoC() config.NoC {
	c := config.Default().NoC
	return c
}

// runTraffic injects packets and runs until delivery or a cycle budget.
func runTraffic(t *testing.T, net *Network, pkts []*Packet, budget int) int {
	t.Helper()
	i := 0
	delivered := func() int {
		n := 0
		for _, p := range pkts {
			if p.Ejected > 0 {
				n++
			}
		}
		return n
	}
	for cyc := 0; cyc < budget; cyc++ {
		for i < len(pkts) {
			if !net.NI(pkts[i].Src).Inject(pkts[i]) {
				break
			}
			i++
		}
		net.Tick()
		if i == len(pkts) && delivered() == len(pkts) {
			break
		}
	}
	return delivered()
}

func meshTopo() Topology {
	return NewMesh(8, 8, MeshPolicy{
		Alg: config.RoutingCDR, ReqOrder: config.OrderYX, RepOrder: config.OrderXY,
	})
}

func TestSinglePacketDelivery(t *testing.T) {
	net, recv := buildNet(t, meshTopo(), defaultNoC(), 64)
	p := &Packet{ID: 1, Src: 0, Dst: 63, Class: ClassRequest, SizeFlits: 1}
	if got := runTraffic(t, net, []*Packet{p}, 200); got != 1 {
		t.Fatal("packet not delivered")
	}
	if recv[63] != 1 {
		t.Fatalf("received at 63: %d", recv[63])
	}
	if p.Hops < 14 { // 7+7 hops plus ejection
		t.Fatalf("hops = %d, want >= 14", p.Hops)
	}
	if p.Ejected <= p.Injected {
		t.Fatal("timestamps not ordered")
	}
}

func TestMultiFlitPacketDelivery(t *testing.T) {
	net, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	p := &Packet{ID: 1, Src: 8, Dst: 15, Class: ClassReply, SizeFlits: 9}
	if got := runTraffic(t, net, []*Packet{p}, 500); got != 1 {
		t.Fatal("9-flit packet not delivered")
	}
}

// TestAllTopologiesDeliver floods each topology with random traffic and
// verifies full delivery (no loss, no deadlock) plus credit conservation.
func TestAllTopologiesDeliver(t *testing.T) {
	for name, topo := range allTopologies() {
		nodes := 64
		if name == "mesh10x10" {
			nodes = 100
		}
		net, _ := buildNet(t, topo, defaultNoC(), nodes)
		rng := rand.New(rand.NewSource(7))
		var pkts []*Packet
		for i := 0; i < 300; i++ {
			src, dst := rng.Intn(nodes), rng.Intn(nodes)
			if src == dst {
				continue
			}
			class := ClassRequest
			size := 1
			if rng.Intn(2) == 0 {
				class = ClassReply
				size = 9
			}
			pkts = append(pkts, &Packet{
				ID: uint64(i), Src: src, Dst: dst, Class: class, SizeFlits: size,
			})
		}
		if got := runTraffic(t, net, pkts, 30000); got != len(pkts) {
			t.Fatalf("%s: delivered %d/%d", name, got, len(pkts))
		}
		if err := net.CheckCreditInvariant(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// After delivery of everything, the network must drain.
		for i := 0; i < 100; i++ {
			net.Tick()
		}
		if !net.Quiet() {
			t.Fatalf("%s: network did not drain", name)
		}
	}
}

// TestAdaptiveRoutingDelivers floods the mesh under each adaptive
// policy and checks delivery and deadlock freedom via the escape VC.
func TestAdaptiveRoutingDelivers(t *testing.T) {
	for _, alg := range []config.RoutingAlg{config.RoutingDyXY, config.RoutingFootprint, config.RoutingHARE} {
		cfg := defaultNoC()
		cfg.Routing = alg
		topo := NewMesh(8, 8, MeshPolicy{Alg: alg, ReqOrder: config.OrderXY, RepOrder: config.OrderXY})
		net, _ := buildNet(t, topo, cfg, 64)
		rng := rand.New(rand.NewSource(11))
		var pkts []*Packet
		for i := 0; i < 400; i++ {
			src, dst := rng.Intn(64), rng.Intn(64)
			if src == dst {
				continue
			}
			pkts = append(pkts, &Packet{
				ID: uint64(i), Src: src, Dst: dst,
				Class: ClassReply, SizeFlits: 5,
			})
		}
		if got := runTraffic(t, net, pkts, 60000); got != len(pkts) {
			t.Fatalf("%v: delivered %d/%d", alg, got, len(pkts))
		}
		if err := net.CheckCreditInvariant(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

// TestCPUPriorityLowersLatency saturates a link with GPU traffic and
// verifies CPU packets cut ahead.
func TestCPUPriorityLowersLatency(t *testing.T) {
	cfg := defaultNoC()
	net, _ := buildNet(t, meshTopo(), cfg, 64)
	rng := rand.New(rand.NewSource(3))
	var gpu, cpu []*Packet
	// Many-to-one GPU load onto node 0, sprinkled CPU packets on the
	// same paths.
	for i := 0; i < 200; i++ {
		src := 1 + rng.Intn(63)
		gpu = append(gpu, &Packet{ID: uint64(i), Src: src, Dst: 0,
			Class: ClassReply, Prio: PrioGPU, SizeFlits: 9})
	}
	for i := 0; i < 20; i++ {
		src := 1 + rng.Intn(63)
		cpu = append(cpu, &Packet{ID: uint64(1000 + i), Src: src, Dst: 0,
			Class: ClassReply, Prio: PrioCPU, SizeFlits: 5})
	}
	all := append(append([]*Packet{}, gpu...), cpu...)
	if got := runTraffic(t, net, all, 100000); got != len(all) {
		t.Fatalf("delivered %d/%d", got, len(all))
	}
	avg := func(ps []*Packet) float64 {
		var s float64
		for _, p := range ps {
			s += float64(p.Ejected - p.Injected)
		}
		return s / float64(len(ps))
	}
	if avg(cpu) >= avg(gpu) {
		t.Fatalf("CPU latency %.1f not better than GPU %.1f", avg(cpu), avg(gpu))
	}
}

// TestFlitConservation checks injected flit count equals ejected flit
// count once traffic drains.
func TestFlitConservation(t *testing.T) {
	net, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	rng := rand.New(rand.NewSource(5))
	var pkts []*Packet
	want := int64(0)
	for i := 0; i < 250; i++ {
		src, dst := rng.Intn(64), rng.Intn(64)
		if src == dst {
			continue
		}
		size := 1 + rng.Intn(9)
		want += int64(size)
		pkts = append(pkts, &Packet{ID: uint64(i), Src: src, Dst: dst,
			Class: ClassRequest, SizeFlits: size})
	}
	if got := runTraffic(t, net, pkts, 60000); got != len(pkts) {
		t.Fatalf("delivered %d/%d", got, len(pkts))
	}
	inj := net.InjectedFlits(ClassRequest) + net.InjectedFlits(ClassReply)
	ej := net.EjectedFlits(ClassRequest) + net.EjectedFlits(ClassReply)
	if inj != want || ej != want {
		t.Fatalf("flits injected %d ejected %d, want %d", inj, ej, want)
	}
}

// TestSharedPhysVCIsolation verifies class VC ranges do not overlap on
// a shared physical network.
func TestSharedPhysVCIsolation(t *testing.T) {
	cfg := defaultNoC()
	cfg.SharedPhys = true
	cfg.ReqVCs, cfg.RepVCs = 1, 3
	net, _ := buildNet(t, meshTopo(), cfg, 64)
	lo, hi := net.VCRange(ClassRequest)
	lo2, hi2 := net.VCRange(ClassReply)
	if lo != 0 || hi != 0 || lo2 != 1 || hi2 != 3 {
		t.Fatalf("VC ranges req[%d,%d] rep[%d,%d]", lo, hi, lo2, hi2)
	}
	// Traffic of both classes must still deliver.
	var pkts []*Packet
	for i := 0; i < 100; i++ {
		pkts = append(pkts, &Packet{ID: uint64(i), Src: i % 64, Dst: (i*17 + 1) % 64,
			Class: Class(i % 2), SizeFlits: 1 + 4*(i%2)})
	}
	valid := pkts[:0]
	for _, p := range pkts {
		if p.Src != p.Dst {
			valid = append(valid, p)
		}
	}
	if got := runTraffic(t, net, valid, 30000); got != len(valid) {
		t.Fatalf("delivered %d/%d", got, len(valid))
	}
}

// TestBackpressureBlocksSender fills a refusing sink and verifies the
// network back-pressures rather than dropping.
func TestBackpressureBlocksSender(t *testing.T) {
	net, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	accept := false
	got := 0
	net.NI(10).Handler = func(p *Packet) bool {
		if accept {
			got++
		}
		return accept
	}
	var pkts []*Packet
	for i := 0; i < 40; i++ {
		pkts = append(pkts, &Packet{ID: uint64(i), Src: 12, Dst: 10,
			Class: ClassRequest, SizeFlits: 2})
	}
	runTraffic(t, net, pkts, 2000)
	if got != 0 {
		t.Fatal("handler delivered while refusing")
	}
	if net.Quiet() {
		t.Fatal("network drained despite refusing sink")
	}
	accept = true
	for i := 0; i < 5000 && !net.Quiet(); i++ {
		net.Tick()
	}
	// All queued packets must eventually arrive.
	if got == 0 || !net.Quiet() {
		t.Fatalf("after unblocking: got=%d quiet=%v", got, net.Quiet())
	}
	if err := net.CheckCreditInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPacketLatencyRecorded(t *testing.T) {
	net, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	p := &Packet{ID: 1, Src: 0, Dst: 7, Class: ClassRequest, Prio: PrioCPU, SizeFlits: 1}
	runTraffic(t, net, []*Packet{p}, 500)
	if net.PktLat[PrioCPU].Count() != 1 {
		t.Fatal("latency not recorded for CPU priority")
	}
	net.ResetStats()
	if net.PktLat[PrioCPU].Count() != 0 || net.InjectedFlits(ClassRequest) != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestPortUtilization(t *testing.T) {
	net, _ := buildNet(t, meshTopo(), defaultNoC(), 64)
	var pkts []*Packet
	for i := 0; i < 50; i++ {
		pkts = append(pkts, &Packet{ID: uint64(i), Src: 0, Dst: 7,
			Class: ClassRequest, SizeFlits: 4})
	}
	runTraffic(t, net, pkts, 5000)
	if net.PortUtilization(0, PortE) <= 0 {
		t.Fatal("east port of router 0 shows no utilization")
	}
	if net.FlitHops() <= 0 {
		t.Fatal("no flit hops recorded")
	}
}
