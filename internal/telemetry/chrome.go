package telemetry

import (
	"io"

	"delrep/internal/obs"
)

// WriteChrome exports the trace as Chrome trace-event JSON using the
// shared encoder in internal/obs, so a job timeline and an in-sim
// packet trace load into the same viewer. All spans land on one track
// (tid 1); the viewer nests them by time containment. A nil trace
// writes a valid empty document.
func (t *Trace) WriteChrome(w io.Writer) error {
	return WriteChromeView(w, t.Snapshot())
}

// WriteChromeView exports one snapshotted span tree as Chrome
// trace-event JSON. The zero SpanView writes a valid empty document.
func WriteChromeView(w io.Writer, v SpanView) error {
	var evs []obs.Event
	if v.Name != "" {
		evs = append(evs, obs.Event{
			Name: "thread_name", Phase: "M", PID: 0, TID: 1,
			Args: map[string]any{"name": v.Name},
		})
		evs = appendSpanEvents(evs, v)
	}
	return obs.WriteChromeTrace(w, evs)
}

// appendSpanEvents renders one span and its subtree as "X" complete
// events on track 1.
func appendSpanEvents(evs []obs.Event, v SpanView) []obs.Event {
	var args map[string]any
	if len(v.Attrs) > 0 || v.Open {
		args = make(map[string]any, len(v.Attrs)+1)
		for k, val := range v.Attrs {
			args[k] = val
		}
		if v.Open {
			args["open"] = true
		}
	}
	evs = append(evs, obs.Event{
		Name: v.Name, Phase: "X", TS: v.StartUS, Dur: v.DurUS,
		PID: 0, TID: 1, Cat: "job", Args: args,
	})
	for _, c := range v.Children {
		evs = appendSpanEvents(evs, c)
	}
	return evs
}
