// Package telemetry is the serving stack's span layer: a per-job tree
// of wall-clock timed spans covering the job lifecycle —
//
//	http.receive → admission → queue.wait → runner.submit →
//	{dedup.join | cache.lookup → engine.run[window…]} → encode → reply
//
// — recorded entirely outside the simulation clock. The simulator
// never reads a span and a span never feeds a digest input, so traces
// are inert by construction: enabling telemetry cannot perturb a
// result (internal/serve's inertness test proves it bit-for-bit).
//
// The layer is zero-overhead when disabled: a nil *Trace and a nil
// *Span are valid receivers whose every method is a no-op, so
// instrumented code calls straight through without guards and the
// disabled path costs a nil check.
//
// Span trees export as Chrome trace-event JSON via the shared encoder
// in internal/obs, so a served job's timeline and its in-sim packet
// trace open in the same viewer (Perfetto / chrome://tracing).
package telemetry

import (
	"context"
	"sync"
	"time"
)

// MaxSpans bounds one trace's span count so a pathological job (a
// 500M-cycle run reporting a window per checkpoint) cannot balloon the
// flight recorder; once reached, Start returns nil and the trace
// counts the drop.
const MaxSpans = 512

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// wallNow reads the wall clock for span timestamps. Telemetry time is
// deliberately outside the simulation clock; spans never feed
// simulated behaviour or digest inputs.
func wallNow() time.Time {
	//simlint:ignore rngsource span timestamps are wall-clock by design and never reach the simulation or its digests
	return time.Now()
}

// Trace is one job's span tree. The zero of *Trace (nil) is a valid,
// disabled trace: every method no-ops and Start returns a nil Span.
// All methods are safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	now     func() time.Time
	root    *Span
	spans   int
	dropped int64
}

// New starts a trace whose root span has the given name and attrs.
func New(name string, attrs ...Attr) *Trace {
	t := &Trace{now: wallNow}
	t.root = &Span{trace: t, name: name, start: t.now(), attrs: attrs}
	t.spans = 1
	return t
}

// SetClock overrides the trace's clock; for tests only. It must be
// called before any further spans start.
func (t *Trace) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// Root returns the root span (nil on a disabled trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End ends the root span (child spans still open keep their own
// endpoints; an unfinished child exports with its parent's end).
func (t *Trace) End() { t.Root().End() }

// Dropped reports how many Start calls the span cap swallowed.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one timed phase of a trace. A nil *Span is valid and inert.
type Span struct {
	trace    *Trace
	name     string
	start    time.Time
	end      time.Time // zero while open
	attrs    []Attr
	children []*Span
}

// Start opens a child span. On a nil span (telemetry disabled, or the
// trace hit its span cap) it returns nil, which is itself inert.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= MaxSpans {
		t.dropped++
		return nil
	}
	child := &Span{trace: t, name: name, start: t.now(), attrs: attrs}
	s.children = append(s.children, child)
	t.spans++
	return child
}

// Set attaches (or overwrites) one attribute on the span.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span. Ending a span twice keeps the first endpoint.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.end.IsZero() {
		s.end = t.now()
	}
}

// SpanView is the immutable JSON rendering of one span. Times are
// microseconds relative to the trace's start, so views are stable
// across snapshots of a finished trace.
type SpanView struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Open     bool           `json:"open,omitempty"` // still running at snapshot time
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanView     `json:"children,omitempty"`
}

// Snapshot renders the trace's current span tree. Spans still open are
// rendered as ending now and marked Open. Safe to call while spans are
// being recorded.
func (t *Trace) Snapshot() SpanView {
	if t == nil {
		return SpanView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	return t.root.viewLocked(t.root.start, now)
}

// viewLocked renders one span relative to the trace origin; the trace
// mutex must be held.
func (s *Span) viewLocked(origin, now time.Time) SpanView {
	end, open := s.end, false
	if end.IsZero() {
		end, open = now, true
	}
	v := SpanView{
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Open:    open,
	}
	if v.DurUS < 0 {
		v.DurUS = 0
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			v.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		v.Children = append(v.Children, c.viewLocked(origin, now))
	}
	return v
}

// Find returns the first span view with the given name in a pre-order
// walk of the tree, or ok=false. A convenience for tests and the
// flight recorder's summaries.
func (v SpanView) Find(name string) (SpanView, bool) {
	if v.Name == name {
		return v, true
	}
	for _, c := range v.Children {
		if got, ok := c.Find(name); ok {
			return got, true
		}
	}
	return SpanView{}, false
}

// ctxKey keys the span carried by a context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying the span; layers below
// (the runner engine) pick it up to attach their own child spans.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil (inert).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
