package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock advancing one millisecond
// per reading.
func fakeClock() func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestSpanTree(t *testing.T) {
	tr := New("job", A("id", "j000001"))
	tr.SetClock(fakeClock())
	recv := tr.Root().Start("http.receive")
	recv.End()
	run := tr.Root().Start("runner.submit")
	eng := run.Start("engine.run", A("gpu", "HS"))
	eng.Set("windows", 3)
	eng.End()
	run.End()
	tr.End()

	v := tr.Snapshot()
	if v.Name != "job" || v.Open {
		t.Fatalf("root = %+v", v)
	}
	if v.Attrs["id"] != "j000001" {
		t.Fatalf("root attrs = %v", v.Attrs)
	}
	if len(v.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(v.Children))
	}
	ev, ok := v.Find("engine.run")
	if !ok {
		t.Fatal("engine.run span missing")
	}
	if ev.Attrs["gpu"] != "HS" || ev.Attrs["windows"] != 3 {
		t.Fatalf("engine.run attrs = %v", ev.Attrs)
	}
	if ev.StartUS < v.Children[1].StartUS {
		t.Fatalf("child starts before parent: %d < %d", ev.StartUS, v.Children[1].StartUS)
	}
	if _, ok := v.Find("nope"); ok {
		t.Fatal("Find found a span that does not exist")
	}
}

// A nil trace and nil spans are fully inert: every call is a no-op and
// nothing panics.
func TestDisabledTraceInert(t *testing.T) {
	var tr *Trace
	tr.SetClock(fakeClock())
	sp := tr.Root().Start("anything", A("k", 1))
	sp.Set("k", 2)
	sp.Start("child").End()
	sp.End()
	tr.End()
	if v := tr.Snapshot(); v.Name != "" || v.Children != nil {
		t.Fatalf("disabled snapshot = %+v", v)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("disabled dropped = %d", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("disabled chrome export invalid: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("disabled export has %d events", len(doc.TraceEvents))
	}
}

// The span cap stops allocation and counts drops instead of growing
// without bound.
func TestSpanCap(t *testing.T) {
	tr := New("job")
	tr.SetClock(fakeClock())
	for i := 0; i < MaxSpans+10; i++ {
		tr.Root().Start(fmt.Sprintf("s%d", i)).End()
	}
	if got := tr.Dropped(); got != 11 { // root counts toward the cap
		t.Fatalf("dropped = %d, want 11", got)
	}
	if n := len(tr.Snapshot().Children); n != MaxSpans-1 {
		t.Fatalf("retained children = %d, want %d", n, MaxSpans-1)
	}
	// Starts beyond the cap return nil spans, which stay inert.
	sp := tr.Root().Start("over")
	sp.Set("k", 1)
	sp.End()
}

// An open span snapshots as running now and closes retroactively.
func TestOpenSpanSnapshot(t *testing.T) {
	tr := New("job")
	tr.SetClock(fakeClock())
	sp := tr.Root().Start("engine.run")
	v := tr.Snapshot()
	ev, ok := v.Find("engine.run")
	if !ok || !ev.Open {
		t.Fatalf("open span view = %+v ok=%v", ev, ok)
	}
	sp.End()
	ended, _ := tr.Snapshot().Find("engine.run")
	if ended.Open {
		t.Fatalf("ended span still open: %+v", ended)
	}
	// Ending twice keeps the first endpoint.
	sp.End()
	if again, _ := tr.Snapshot().Find("engine.run"); again.DurUS != ended.DurUS {
		t.Fatalf("second End moved the endpoint: %d -> %d", ended.DurUS, again.DurUS)
	}
}

func TestChromeExport(t *testing.T) {
	tr := New("job j1")
	tr.SetClock(fakeClock())
	run := tr.Root().Start("runner.submit")
	run.Start("cache.lookup", A("hit", false)).End()
	run.End()
	tr.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			TID   uint64         `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export invalid: %v\n%s", err, buf.String())
	}
	// thread_name metadata + 3 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Phase != "M" || doc.TraceEvents[0].Args["name"] != "job j1" {
		t.Fatalf("metadata event = %+v", doc.TraceEvents[0])
	}
	var sawLookup bool
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Phase != "X" || ev.TID != 1 {
			t.Fatalf("span event = %+v", ev)
		}
		if ev.Name == "cache.lookup" {
			sawLookup = true
			if ev.Args["hit"] != false {
				t.Fatalf("cache.lookup args = %v", ev.Args)
			}
		}
	}
	if !sawLookup {
		t.Fatal("cache.lookup event missing")
	}
}

func TestContextSpan(t *testing.T) {
	if sp := SpanFromContext(context.Background()); sp != nil {
		t.Fatal("empty context carried a span")
	}
	tr := New("job")
	sp := tr.Root()
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext = %p, want %p", got, sp)
	}
	// A nil span attaches nothing.
	if ctx2 := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx2) != nil {
		t.Fatal("nil span round-tripped as non-nil")
	}
}

func TestFlightRecorderRing(t *testing.T) {
	var disabled *FlightRecorder
	disabled.Record(JobRecord{ID: "x"})
	if got := disabled.Snapshot(); got != nil {
		t.Fatalf("disabled snapshot = %v", got)
	}
	if disabled.Total() != 0 || disabled.Cap() != 0 {
		t.Fatal("disabled recorder not inert")
	}

	f := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		f.Record(JobRecord{ID: fmt.Sprintf("j%d", i)})
	}
	got := f.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, want := range []string{"j5", "j4", "j3"} {
		if got[i].ID != want {
			t.Fatalf("snapshot[%d] = %s, want %s (newest first)", i, got[i].ID, want)
		}
	}
	if f.Total() != 5 {
		t.Fatalf("total = %d, want 5", f.Total())
	}
	if f.Cap() != 3 {
		t.Fatalf("cap = %d, want 3", f.Cap())
	}
}

// Concurrent span recording, snapshotting, and flight recording are
// race-free (run with -race).
func TestConcurrentTrace(t *testing.T) {
	tr := New("job")
	f := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Root().Start(fmt.Sprintf("g%d.%d", g, i))
				sp.Set("i", i)
				sp.End()
				f.Record(JobRecord{ID: fmt.Sprintf("g%d", g), Trace: tr.Snapshot()})
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		_ = tr.Snapshot()
		_ = f.Snapshot()
	}
	wg.Wait()
	if tr.Snapshot().Name != "job" {
		t.Fatal("trace lost its root")
	}
}
