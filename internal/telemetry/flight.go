package telemetry

import (
	"sync"
	"time"
)

// JobRecord is one completed job's flight-recorder summary: identity,
// outcome, cache provenance, the coarse latency split, and the full
// span tree. It is the unit the analytic-surrogate work validates
// against, so it carries everything needed to replay the comparison:
// the spec key, the result source, and where the wall time went.
type JobRecord struct {
	ID       string    `json:"id"`
	Client   string    `json:"client,omitempty"`
	Priority string    `json:"priority"`
	Spec     string    `json:"spec"`               // human label, e.g. "HS+vips delegated"
	SpecKey  string    `json:"spec_key,omitempty"` // short content hash, correlates with cache entries
	Outcome  string    `json:"outcome"`            // done | failed | cancelled
	Source   string    `json:"source,omitempty"`   // executed | memo | disk
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	QueueUS  int64     `json:"queue_us"` // admission → dispatch
	ExecUS   int64     `json:"exec_us"`  // dispatch → terminal
	TotalUS  int64     `json:"total_us"` // submit → terminal
	Trace    SpanView  `json:"trace"`
}

// FlightRecorder retains the last N completed jobs in a fixed-size
// ring — enough to answer "what just happened" on a live daemon
// without logs or external storage. A nil *FlightRecorder is valid and
// inert. Methods are safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []JobRecord
	next  int
	count int
	total int64
}

// NewFlightRecorder builds a recorder keeping the last n jobs (n <= 0
// selects 128).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 128
	}
	return &FlightRecorder{ring: make([]JobRecord, n)}
}

// Record appends one completed job, evicting the oldest once full.
func (f *FlightRecorder) Record(r JobRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = r
	f.next = (f.next + 1) % len(f.ring)
	if f.count < len(f.ring) {
		f.count++
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot returns the retained records, newest first.
func (f *FlightRecorder) Snapshot() []JobRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]JobRecord, 0, f.count)
	for i := 1; i <= f.count; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}

// Total reports how many jobs have ever been recorded (including ones
// the ring has since evicted).
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Cap returns the ring capacity (0 on a nil recorder).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}
