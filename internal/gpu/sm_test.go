package gpu

import (
	"testing"

	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/workload"
)

// fakeMem scripts the memory system's responses.
type fakeMem struct {
	result   AccessResult
	accesses []cache.Addr
	warps    []int
	writes   int
}

func (f *fakeMem) Access(sm int, line cache.Addr, write bool, warp int) AccessResult {
	f.accesses = append(f.accesses, line)
	f.warps = append(f.warps, warp)
	if write {
		f.writes++
	}
	return f.result
}

func newTestSM(mem MemPort, warps int) *SM {
	cfg := config.Default().GPU
	cfg.WarpsPerSM = warps
	prof := workload.GPUProfileByName("HS")
	gen := workload.NewAddrGen(prof, 0, 40, config.CTARoundRobin, 1)
	return NewSM(0, cfg, prof, gen, mem)
}

func TestComputeThenMemoryPhases(t *testing.T) {
	mem := &fakeMem{result: AccessHit}
	sm := newTestSM(mem, 1)
	for i := 0; i < 100; i++ {
		sm.Tick()
	}
	if sm.Insts == 0 || sm.MemOps == 0 {
		t.Fatalf("insts=%d memops=%d", sm.Insts, sm.MemOps)
	}
	// Phase structure: PhaseLoads memory ops per (ComputeLen + PhaseLoads).
	prof := workload.GPUProfileByName("HS")
	wantRatio := float64(prof.PhaseLoads) / float64(prof.PhaseLoads+prof.ComputeLen)
	got := float64(sm.MemOps) / float64(sm.Insts)
	if got < wantRatio*0.8 || got > wantRatio*1.2 {
		t.Fatalf("mem ratio %.3f, want ~%.3f", got, wantRatio)
	}
}

func TestHitsNeverBlockWarp(t *testing.T) {
	mem := &fakeMem{result: AccessHit}
	sm := newTestSM(mem, 4)
	for i := 0; i < 200; i++ {
		sm.Tick()
	}
	// With all hits, IPC should be at the issue-width bound.
	if got := sm.IPC(200); got < float64(config.Default().GPU.IssueWidth)*0.9 {
		t.Fatalf("IPC %.2f below issue bound", got)
	}
}

func TestMissBarriersWarp(t *testing.T) {
	mem := &fakeMem{result: AccessMiss}
	sm := newTestSM(mem, 1)
	for i := 0; i < 1000; i++ {
		sm.Tick()
	}
	// The single warp blocks at its first memory phase barrier.
	prof := workload.GPUProfileByName("HS")
	maxInsts := int64(prof.ComputeLen + prof.PhaseLoads + 2)
	if sm.Insts > maxInsts {
		t.Fatalf("insts=%d, want <= %d (warp should barrier)", sm.Insts, maxInsts)
	}
	if sm.StallCycles == 0 {
		t.Fatal("no stall cycles recorded")
	}
}

func TestLoadDoneWakesBarrier(t *testing.T) {
	mem := &fakeMem{result: AccessMiss}
	sm := newTestSM(mem, 1)
	for i := 0; i < 100; i++ {
		sm.Tick()
	}
	before := sm.Insts
	// Complete every outstanding load of warp 0.
	n := len(mem.accesses) - mem.writes
	for i := 0; i < n; i++ {
		sm.LoadDone(0)
	}
	for i := 0; i < 50; i++ {
		sm.Tick()
	}
	if sm.Insts <= before {
		t.Fatal("warp did not resume after LoadDone")
	}
}

func TestLoadDoneWithoutOutstandingPanics(t *testing.T) {
	sm := newTestSM(&fakeMem{result: AccessHit}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sm.LoadDone(0)
}

// blockThenHit blocks the first N accesses, then hits.
type blockThenHit struct {
	blocks   int
	accesses []cache.Addr
}

func (b *blockThenHit) Access(sm int, line cache.Addr, write bool, warp int) AccessResult {
	b.accesses = append(b.accesses, line)
	if b.blocks > 0 {
		b.blocks--
		return AccessBlocked
	}
	return AccessHit
}

// TestBlockedRetainsAddress is the regression test for the re-roll
// bias: a blocked access must retry the same address, not draw afresh.
func TestBlockedRetainsAddress(t *testing.T) {
	mem := &blockThenHit{blocks: 5}
	sm := newTestSM(mem, 1)
	for i := 0; i < 50; i++ {
		sm.Tick()
	}
	if len(mem.accesses) < 6 {
		t.Fatalf("only %d accesses", len(mem.accesses))
	}
	first := mem.accesses[0]
	for i := 1; i <= 5; i++ {
		if mem.accesses[i] != first {
			t.Fatalf("retry %d used address %d, want %d", i, mem.accesses[i], first)
		}
	}
}

func TestGTOSwitchesOnBlock(t *testing.T) {
	// With many warps and a blocking memory system, multiple warps
	// should still make compute progress.
	mem := &fakeMem{result: AccessBlocked}
	sm := newTestSM(mem, 8)
	for i := 0; i < 200; i++ {
		sm.Tick()
	}
	seen := map[int]bool{}
	for _, w := range mem.warps {
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Fatalf("GTO never switched warps: %v", seen)
	}
}

func TestResetStats(t *testing.T) {
	sm := newTestSM(&fakeMem{result: AccessHit}, 2)
	for i := 0; i < 50; i++ {
		sm.Tick()
	}
	sm.ResetStats()
	if sm.Insts != 0 || sm.MemOps != 0 || sm.IPC(10) != 0 {
		t.Fatal("stats not reset")
	}
}
