// Package gpu models the GPU streaming multiprocessor (SM): a set of
// concurrent warps issued by a greedy-then-oldest (GTO) scheduler. Each
// warp alternates compute phases with memory phases and barriers on its
// outstanding loads, giving the SM the latency tolerance and burst
// injection behaviour that characterise accelerator cores.
package gpu

import (
	"delrep/internal/cache"
	"delrep/internal/config"
	"delrep/internal/workload"
)

// AccessResult is the immediate outcome of an L1 access.
type AccessResult int

const (
	// AccessHit completed in the L1; the warp continues.
	AccessHit AccessResult = iota
	// AccessMiss is outstanding; LoadDone will be called later.
	AccessMiss
	// AccessBlocked means a resource (MSHR, write budget, L1 port,
	// outbox) is unavailable; the instruction retries later.
	AccessBlocked
)

// MemPort is the SM's interface to the memory system (implemented by
// the core package's GPU core, which owns the L1 organisation).
type MemPort interface {
	Access(sm int, line cache.Addr, write bool, warp int) AccessResult
}

type warpState uint8

const (
	warpCompute warpState = iota
	warpMem
	warpBarrier
)

// warp is one concurrent warp's phase state machine. A drawn memory
// address is held in pending state until the access is accepted, so a
// Blocked access retries the same address (discarding it would bias the
// reference stream toward hits under resource pressure).
type warp struct {
	state       warpState
	computeLeft int
	loadsLeft   int
	outstanding int
	hasPending  bool
	pendLine    cache.Addr
	pendWrite   bool
}

// SM is one streaming multiprocessor.
type SM struct {
	ID    int // GPU core index (0-based among GPU cores)
	cfg   config.GPU
	prof  workload.GPUProfile
	gen   *workload.AddrGen
	mem   MemPort
	warps []warp
	cur   int // GTO scheduler pointer
	// barriered counts warps in warpBarrier; when every warp is
	// barriered the Tick fast path skips the scheduler scan entirely.
	barriered int

	// Statistics.
	Insts       int64
	MemOps      int64
	StallCycles int64
	IssueCycles int64
}

// NewSM builds an SM running the given benchmark profile.
func NewSM(id int, cfg config.GPU, prof workload.GPUProfile, gen *workload.AddrGen, mem MemPort) *SM {
	sm := &SM{ID: id, cfg: cfg, prof: prof, gen: gen, mem: mem,
		warps: make([]warp, cfg.WarpsPerSM)}
	for i := range sm.warps {
		// Stagger warp phases so bursts ramp up rather than lockstep.
		sm.warps[i] = warp{state: warpCompute, computeLeft: 1 + (i*prof.ComputeLen)/cfg.WarpsPerSM}
	}
	return sm
}

// issuable reports whether warp w can issue an instruction now.
func (s *SM) issuable(w *warp) bool {
	return w.state != warpBarrier
}

// Tick issues up to IssueWidth instructions using GTO scheduling:
// stick with the current warp while it can issue, else advance.
func (s *SM) Tick() {
	if s.barriered == len(s.warps) {
		// Every warp waits on outstanding loads: the scheduler scan
		// would try each warp once, issue nothing, and leave cur where
		// it started (n advances mod n). Equivalent to a stall.
		s.StallCycles++
		return
	}
	issued := 0
	n := len(s.warps)
	tried := 0
	for issued < s.cfg.IssueWidth && tried < n {
		w := &s.warps[s.cur]
		if !s.issuable(w) {
			s.cur = (s.cur + 1) % n
			tried++
			continue
		}
		if !s.issueOne(s.cur, w) {
			// Blocked on a resource: try another warp.
			s.cur = (s.cur + 1) % n
			tried++
			continue
		}
		issued++
		tried = 0
		if !s.issuable(w) {
			s.cur = (s.cur + 1) % n
		}
	}
	if issued > 0 {
		s.IssueCycles++
	} else {
		s.StallCycles++
	}
}

// issueOne attempts to issue one instruction from warp w (index idx);
// it reports whether an instruction was issued.
func (s *SM) issueOne(idx int, w *warp) bool {
	switch w.state {
	case warpCompute:
		w.computeLeft--
		s.Insts++
		if w.computeLeft <= 0 {
			w.state = warpMem
			w.loadsLeft = s.prof.PhaseLoads
		}
		return true
	case warpMem:
		if !w.hasPending {
			w.pendLine, w.pendWrite = s.gen.Next()
			w.hasPending = true
		}
		res := s.mem.Access(s.ID, w.pendLine, w.pendWrite, idx)
		if res == AccessBlocked {
			return false
		}
		w.hasPending = false
		s.Insts++
		s.MemOps++
		w.loadsLeft--
		if res == AccessMiss && !w.pendWrite {
			w.outstanding++
		}
		if w.loadsLeft <= 0 {
			if w.outstanding > 0 {
				w.state = warpBarrier
				s.barriered++
			} else {
				s.newPhase(w)
			}
		}
		return true
	}
	return false
}

// newPhase restarts a warp's compute phase.
func (s *SM) newPhase(w *warp) {
	w.state = warpCompute
	w.computeLeft = s.prof.ComputeLen
}

// LoadDone signals that one outstanding load of the given warp
// completed. It is safe to call in any cycle phase.
func (s *SM) LoadDone(warpIdx int) {
	w := &s.warps[warpIdx]
	if w.outstanding <= 0 {
		panic("gpu: LoadDone without outstanding load")
	}
	w.outstanding--
	if w.outstanding == 0 && w.state == warpBarrier {
		s.barriered--
		s.newPhase(w)
	}
}

// IPC returns instructions per cycle over the given cycle count.
func (s *SM) IPC(cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(cycles)
}

// ResetStats zeroes the instruction counters (end of warmup).
func (s *SM) ResetStats() {
	s.Insts, s.MemOps, s.StallCycles, s.IssueCycles = 0, 0, 0, 0
}
