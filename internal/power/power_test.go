package power

import (
	"math"
	"testing"

	"delrep/internal/config"
)

func TestMeshAreaCalibration(t *testing.T) {
	// Section III: baseline mesh 2.27 mm^2; double bandwidth 5.76 mm^2
	// (2.5x). The analytic model must land within a few percent.
	noc := config.Default().NoC
	base := MeshNoCArea(8, 8, noc)
	if math.Abs(base-2.27) > 0.15 {
		t.Fatalf("baseline mesh area %.3f, paper 2.27", base)
	}
	dbl := noc
	dbl.ChannelBytes *= 2
	d := MeshNoCArea(8, 8, dbl)
	if math.Abs(d-5.76) > 0.4 {
		t.Fatalf("double-bandwidth mesh area %.3f, paper 5.76", d)
	}
	ratio := d / base
	if ratio < 2.3 || ratio > 2.7 {
		t.Fatalf("area ratio %.2f, paper 2.5", ratio)
	}
}

func TestMechanismAreaCalibration(t *testing.T) {
	frq := FRQArea(40, 8)
	if math.Abs(frq-0.092) > 1e-9 {
		t.Fatalf("FRQ area %.4f, paper 0.092", frq)
	}
	ptr := PointerArea(8<<20, 128, 6)
	if math.Abs(ptr-0.08) > 1e-9 {
		t.Fatalf("pointer area %.4f, paper 0.08", ptr)
	}
	total := DelegatedRepliesOverhead(40, 8, 8<<20, 128, 6)
	if math.Abs(total-0.172) > 1e-9 {
		t.Fatalf("total overhead %.4f, paper 0.172", total)
	}
	// The paper's headline: DR costs ~5% of the NoC-doubling area.
	noc := config.Default().NoC
	dbl := noc
	dbl.ChannelBytes *= 2
	extra := MeshNoCArea(8, 8, dbl) - MeshNoCArea(8, 8, noc)
	if frac := total / extra; frac < 0.03 || frac > 0.08 {
		t.Fatalf("DR/extra-NoC fraction %.3f, paper ~0.05", frac)
	}
}

func TestRouterAreaMonotonicity(t *testing.T) {
	base := RouterConfig{Ports: 5, ChannelBits: 128, VCs: 2, FlitsPerVC: 4}
	a := RouterArea(base)
	wider := base
	wider.ChannelBits *= 2
	if RouterArea(wider) <= a {
		t.Fatal("area must grow with channel width")
	}
	morePorts := base
	morePorts.Ports = 15
	if RouterArea(morePorts) <= a {
		t.Fatal("area must grow with port count")
	}
	// Crossbar quadratic: doubling width should more than double the
	// crossbar-only component; overall area should grow superlinearly
	// relative to the buffer-only linear term.
	quad := RouterArea(RouterConfig{Ports: 5, ChannelBits: 256, VCs: 2, FlitsPerVC: 4})
	if quad >= 4*a {
		t.Fatal("growth faster than pure quadratic is wrong")
	}
	if quad <= 2*a*0.9 {
		t.Fatal("growth should exceed linear")
	}
}

func TestSharedPhysArea(t *testing.T) {
	// A single shared physical network with the same aggregate VCs and
	// doubled channel width should cost more than the split baseline
	// (crossbar quadratic in width) but less than two doubled networks.
	noc := config.Default().NoC
	shared := noc
	shared.SharedPhys = true
	shared.ChannelBytes *= 2
	shared.ReqVCs, shared.RepVCs = 2, 2
	base := MeshNoCArea(8, 8, noc)
	sh := MeshNoCArea(8, 8, shared)
	if sh <= base {
		t.Fatalf("shared 2x-wide network %.2f not above split baseline %.2f", sh, base)
	}
	dbl := noc
	dbl.ChannelBytes *= 2
	if sh >= MeshNoCArea(8, 8, dbl) {
		t.Fatal("one shared network should cost less than two doubled networks")
	}
}

func TestEnergyModel(t *testing.T) {
	a := Activity{
		FlitHops: 1e6, BufferWrites: 1e6, Cycles: 1e5,
		ChannelBits: 128, AreaMM2: 2.27, ClockGHz: 1.4,
	}
	dyn := DynamicEnergyPJ(a)
	if dyn <= 0 {
		t.Fatal("dynamic energy must be positive")
	}
	// Energy scales linearly with activity.
	b := a
	b.FlitHops *= 2
	b.BufferWrites *= 2
	if math.Abs(DynamicEnergyPJ(b)-2*dyn) > 1e-6 {
		t.Fatal("dynamic energy not linear in activity")
	}
	st := StaticEnergyPJ(a)
	if st <= 0 {
		t.Fatal("static energy must be positive")
	}
	if TotalEnergyPJ(a) != dyn+st {
		t.Fatal("total != dynamic + static")
	}
	zero := a
	zero.ClockGHz = 0
	if StaticEnergyPJ(zero) != 0 {
		t.Fatal("zero clock should yield zero static energy")
	}
}

func TestLinkArea(t *testing.T) {
	if LinkArea(128, LinkLengthMM) <= LinkArea(64, LinkLengthMM) {
		t.Fatal("link area must grow with width")
	}
}
