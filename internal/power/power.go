// Package power provides the analytic NoC area and energy model that
// stands in for DSENT [54] and CACTI [47] in the paper's cost analysis
// (22 nm technology node). It encodes the scaling laws those tools
// report — input buffers and VCs scale linearly with channel width,
// the router-internal crossbar scales quadratically with both port
// count and channel width, links scale linearly with width and length —
// and is calibrated against the paper's published figures:
//
//   - baseline 8x8 mesh (two physical 128-bit networks): 2.27 mm^2
//   - double-bandwidth mesh: 5.76 mm^2 (2.5x)
//   - Delegated Replies FRQs (40 cores, 8 entries): 0.092 mm^2
//   - LLC/MSHR core pointers (6 bits, 48-bit addresses): 0.08 mm^2
//   - total Delegated Replies overhead: 0.172 mm^2
package power

import "delrep/internal/config"

// Technology constants (22 nm), calibrated to the paper's numbers.
const (
	// bufferMM2PerFlitBit is buffer area per bit of flit storage.
	bufferMM2PerFlitBit = 6.1e-7
	// xbarMM2PerBit2 scales the crossbar: ports^2 * channelBits^2.
	xbarMM2PerBit2 = 1.08e-8
	// linkMM2PerBitMM is wire area per bit per mm of link length.
	linkMM2PerBitMM = 5.0e-6
	// allocMM2PerPort is allocator/control overhead per port.
	allocMM2PerPort = 1.1e-4
	// LinkLengthMM is the assumed NoC link length (Section VI).
	LinkLengthMM = 4.3
)

// Energy constants (pJ), DSENT-class magnitudes at 22 nm.
const (
	// LinkEnergyPJPerBitMM is dynamic energy per bit per mm traversed.
	LinkEnergyPJPerBitMM = 0.045
	// BufferEnergyPJPerBit is write+read energy per buffered bit.
	BufferEnergyPJPerBit = 0.011
	// XbarEnergyPJPerBit is crossbar traversal energy per bit.
	XbarEnergyPJPerBit = 0.016
	// StaticPowerMWPerMM2 is leakage per mm^2 of NoC area.
	StaticPowerMWPerMM2 = 18.0
)

// RouterConfig describes one router for the area model.
type RouterConfig struct {
	Ports       int
	ChannelBits int
	VCs         int
	FlitsPerVC  int
}

// RouterArea returns one router's area in mm^2: linear buffer term,
// quadratic crossbar term, and per-port allocator overhead.
func RouterArea(rc RouterConfig) float64 {
	bufferBits := float64(rc.Ports * rc.VCs * rc.FlitsPerVC * rc.ChannelBits)
	buffer := bufferMM2PerFlitBit * bufferBits
	xbar := xbarMM2PerBit2 * float64(rc.Ports*rc.Ports) * float64(rc.ChannelBits*rc.ChannelBits)
	alloc := allocMM2PerPort * float64(rc.Ports)
	return buffer + xbar + alloc
}

// LinkArea returns the area of one unidirectional link in mm^2.
func LinkArea(channelBits int, lengthMM float64) float64 {
	return linkMM2PerBitMM * float64(channelBits) * lengthMM
}

// MeshNoCArea returns the total area of a W x H mesh NoC with the given
// per-class configuration, counting both physical networks when split.
func MeshNoCArea(w, h int, noc config.NoC) float64 {
	networks := 2
	vcs := noc.VCsPerClass
	if noc.SharedPhys {
		networks = 1
		vcs = noc.ReqVCs + noc.RepVCs
	}
	bits := noc.ChannelBytes * 8
	routers := float64(w*h) * RouterArea(RouterConfig{
		Ports: 5, ChannelBits: bits, VCs: vcs, FlitsPerVC: noc.FlitsPerVC,
	})
	// Bidirectional mesh links: 2 per adjacent pair, per network.
	nLinks := 2 * (w*(h-1) + h*(w-1))
	links := float64(nLinks) * LinkArea(bits, LinkLengthMM)
	return float64(networks) * (routers + links)
}

// FRQArea returns the total Forwarded Request Queue area across cores:
// each entry holds an address plus requester metadata (~64 bits).
func FRQArea(cores, entries int) float64 {
	const frqMM2PerCoreEntry = 0.092 / (40 * 8) // calibrated to 0.092 mm^2
	return frqMM2PerCoreEntry * float64(cores*entries)
}

// PointerArea returns the LLC/MSHR core-pointer storage area: bits per
// line across the whole LLC, calibrated to the paper's 0.08 mm^2 for
// 6-bit pointers on an 8 MB LLC with 128 B lines.
func PointerArea(llcBytes, lineBytes, pointerBits int) float64 {
	lines := float64(llcBytes / lineBytes)
	const mm2PerBit = 0.08 / (65536 * 6)
	return mm2PerBit * lines * float64(pointerBits)
}

// DelegatedRepliesOverhead returns the paper's total mechanism cost.
func DelegatedRepliesOverhead(cores, frqEntries, llcBytes, lineBytes, ptrBits int) float64 {
	return FRQArea(cores, frqEntries) + PointerArea(llcBytes, lineBytes, ptrBits)
}

// Activity is the measured NoC activity used by the energy model.
type Activity struct {
	FlitHops     int64 // flit-link traversals
	BufferWrites int64 // flit buffer insertions (~= flit hops)
	Cycles       int64
	ChannelBits  int
	AreaMM2      float64
	ClockGHz     float64
}

// DynamicEnergyPJ returns NoC dynamic energy for the activity.
func DynamicEnergyPJ(a Activity) float64 {
	bits := float64(a.ChannelBits)
	link := LinkEnergyPJPerBitMM * bits * LinkLengthMM * float64(a.FlitHops)
	buf := BufferEnergyPJPerBit * bits * float64(a.BufferWrites)
	xbar := XbarEnergyPJPerBit * bits * float64(a.FlitHops)
	return link + buf + xbar
}

// StaticEnergyPJ returns NoC leakage energy over the activity window.
func StaticEnergyPJ(a Activity) float64 {
	if a.ClockGHz == 0 {
		return 0
	}
	seconds := float64(a.Cycles) / (a.ClockGHz * 1e9)
	return StaticPowerMWPerMM2 * a.AreaMM2 * seconds * 1e9 // mW*s -> pJ
}

// TotalEnergyPJ returns dynamic plus static NoC energy.
func TotalEnergyPJ(a Activity) float64 {
	return DynamicEnergyPJ(a) + StaticEnergyPJ(a)
}
