// Package dram models a GDDR5 memory controller per memory node: a
// banked DRAM device with open-row policy, the Table I timing
// parameters, a shared data bus, and FR-FCFS (first-ready,
// first-come-first-served) scheduling.
package dram

import (
	"delrep/internal/cache"
	"delrep/internal/config"
)

// Request is one line-sized DRAM transaction.
type Request struct {
	Line    cache.Addr
	Write   bool
	Meta    any   // opaque caller context returned on completion
	Arrived int64 // cycle the request entered the queue
	Done    int64 // cycle the request completed (set by the controller)
}

type bank struct {
	openRow     int64
	rowValid    bool
	readyAt     int64 // earliest cycle the bank can issue a new column access
	lastActAt   int64 // for tRC/tRRD accounting
	pendingDone int64
}

// Controller is one FR-FCFS memory controller.
type Controller struct {
	cfg   config.DRAM
	banks []bank
	queue []*Request
	// busFreeAt is the earliest cycle the shared data bus is free.
	busFreeAt int64
	// lastActGlobal enforces tRRD across banks.
	lastActGlobal int64
	inflight      []*Request // issued, waiting for completion time
	// doneBuf backs Tick's completion slice; valid until the next Tick.
	doneBuf []*Request

	ServedReads  int64
	ServedWrites int64
	RowHits      int64
	RowMisses    int64
	QueueFullEv  int64
	latSum       int64
	latCnt       int64
}

// New builds a controller with the given DRAM parameters.
func New(cfg config.DRAM) *Controller {
	c := &Controller{cfg: cfg, banks: make([]bank, cfg.Banks)}
	// Idle banks must be able to activate immediately.
	c.lastActGlobal = -int64(cfg.TRRD)
	for i := range c.banks {
		c.banks[i].lastActAt = -int64(cfg.TRC)
	}
	return c
}

// CanAccept reports whether the request queue has space.
func (c *Controller) CanAccept() bool { return len(c.queue) < c.cfg.QueueCap }

// Enqueue adds a request; callers must check CanAccept first.
func (c *Controller) Enqueue(r *Request) bool {
	if !c.CanAccept() {
		c.QueueFullEv++
		return false
	}
	c.queue = append(c.queue, r)
	return true
}

// QueueLen returns the number of waiting (unissued) requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

func (c *Controller) bankOf(line cache.Addr) int {
	return int(uint64(line) % uint64(len(c.banks)))
}

func (c *Controller) rowOf(line cache.Addr) int64 {
	// 16 lines per row: a 2 KB row of 128 B lines.
	return int64(uint64(line) / uint64(len(c.banks)) >> 4)
}

// Tick advances one cycle and returns requests that completed this cycle.
// FR-FCFS: among queued requests whose bank is ready, prefer row hits;
// break ties by arrival order. The returned slice is reused by the next
// Tick; callers must consume it before ticking again.
func (c *Controller) Tick(now int64) []*Request {
	// Collect completions.
	done := c.doneBuf[:0]
	remaining := c.inflight[:0]
	for _, r := range c.inflight {
		if r.Done <= now {
			done = append(done, r)
			c.latSum += r.Done - r.Arrived
			c.latCnt++
		} else {
			remaining = append(remaining, r)
		}
	}
	c.inflight = remaining
	c.doneBuf = done

	// Issue at most one command per cycle (single command bus).
	best := -1
	bestHit := false
	for i, r := range c.queue {
		b := &c.banks[c.bankOf(r.Line)]
		if b.readyAt > now {
			continue
		}
		hit := b.rowValid && b.openRow == c.rowOf(r.Line)
		if !hit {
			// Activation constraints: tRC within the bank, tRRD across banks.
			if now < b.lastActAt+int64(c.cfg.TRC) || now < c.lastActGlobal+int64(c.cfg.TRRD) {
				continue
			}
		}
		if best == -1 || (hit && !bestHit) {
			best, bestHit = i, hit
			if hit {
				break // first-ready row hit in FCFS order wins
			}
		}
	}
	if best >= 0 {
		r := c.queue[best]
		c.queue = append(c.queue[:best], c.queue[best+1:]...)
		b := &c.banks[c.bankOf(r.Line)]
		var accessDone int64
		if bestHit {
			c.RowHits++
			accessDone = now + int64(c.cfg.TCL)
		} else {
			c.RowMisses++
			pre := int64(0)
			if b.rowValid {
				pre = int64(c.cfg.TRP)
			}
			accessDone = now + pre + int64(c.cfg.TRCD) + int64(c.cfg.TCL)
			b.openRow = c.rowOf(r.Line)
			b.rowValid = true
			b.lastActAt = now + pre
			c.lastActGlobal = now + pre
		}
		// Serialize the line transfer on the shared data bus.
		start := accessDone
		if c.busFreeAt > start {
			start = c.busFreeAt
		}
		finish := start + int64(c.cfg.BurstCyc)
		c.busFreeAt = finish
		// Column-to-column and write-recovery constraints on the bank.
		gap := int64(c.cfg.TCCD)
		if r.Write {
			gap += int64(c.cfg.TWR)
			c.ServedWrites++
		} else {
			c.ServedReads++
		}
		b.readyAt = accessDone + gap
		r.Done = finish
		c.inflight = append(c.inflight, r)
	}
	return done
}

// AvgLatency returns the mean queue-to-completion latency in cycles.
func (c *Controller) AvgLatency() float64 {
	if c.latCnt == 0 {
		return 0
	}
	return float64(c.latSum) / float64(c.latCnt)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (c *Controller) RowHitRate() float64 {
	t := c.RowHits + c.RowMisses
	if t == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(t)
}

// Outstanding returns queued plus in-flight request counts.
func (c *Controller) Outstanding() int { return len(c.queue) + len(c.inflight) }

// ResetStats zeroes the service counters (end of warmup).
func (c *Controller) ResetStats() {
	c.ServedReads, c.ServedWrites = 0, 0
	c.RowHits, c.RowMisses = 0, 0
	c.QueueFullEv = 0
	c.latSum, c.latCnt = 0, 0
}
