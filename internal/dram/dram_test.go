package dram

import (
	"testing"

	"delrep/internal/cache"
	"delrep/internal/config"
)

func cfg() config.DRAM { return config.Default().DRAM }

// runUntil ticks the controller until n requests complete or the cycle
// budget is exhausted, returning completions in order.
func runUntil(c *Controller, n int, budget int64) []*Request {
	var done []*Request
	for cyc := int64(0); cyc < budget && len(done) < n; cyc++ {
		done = append(done, c.Tick(cyc)...)
	}
	return done
}

func TestSingleReadLatency(t *testing.T) {
	c := New(cfg())
	r := &Request{Line: 0, Arrived: 0}
	c.Enqueue(r)
	done := runUntil(c, 1, 1000)
	if len(done) != 1 {
		t.Fatal("request did not complete")
	}
	// Cold access: tRCD + tCL + burst (no precharge on an idle bank).
	want := int64(cfg().TRCD + cfg().TCL + cfg().BurstCyc)
	if r.Done != want {
		t.Fatalf("latency %d, want %d", r.Done, want)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := New(cfg())
	banks := cfg().Banks
	// One shared timeline: open bank 0's row 0, then issue a row hit and
	// (later) a row miss to the same bank and compare service latencies.
	cyc := int64(0)
	step := func(want int) []*Request {
		var done []*Request
		for ; len(done) < want && cyc < 100000; cyc++ {
			done = append(done, c.Tick(cyc)...)
		}
		return done
	}
	c.Enqueue(&Request{Line: 0, Arrived: cyc})
	step(1)
	hit := &Request{Line: cache.Addr(banks), Arrived: cyc} // same row
	c.Enqueue(hit)
	step(1)
	hitLat := hit.Done - hit.Arrived
	miss := &Request{Line: cache.Addr(banks * 16 * 1000), Arrived: cyc}
	c.Enqueue(miss)
	step(1)
	missLat := miss.Done - miss.Arrived
	if hitLat <= 0 || missLat <= hitLat {
		t.Fatalf("row hit %d vs row miss %d", hitLat, missLat)
	}
	if c.RowHitRate() == 0 {
		t.Fatal("no row hits recorded")
	}
}

func TestBusSerialization(t *testing.T) {
	c := New(cfg())
	const n = 16
	for i := 0; i < n; i++ {
		// Spread across banks and rows so bank timing is not the limit.
		c.Enqueue(&Request{Line: cache.Addr(i)})
	}
	done := runUntil(c, n, 100000)
	if len(done) != n {
		t.Fatalf("completed %d/%d", len(done), n)
	}
	last := done[len(done)-1].Done
	if min := int64(n * cfg().BurstCyc); last < min {
		t.Fatalf("finished at %d, bus serialization demands >= %d", last, min)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c := New(cfg())
	banks := cfg().Banks
	// Open a row in bank 0.
	c.Enqueue(&Request{Line: 0})
	runUntil(c, 1, 1000)
	// Enqueue a row miss (older) and a row hit (newer) for bank 0.
	miss := &Request{Line: cache.Addr(banks * 16 * 7)}
	hit := &Request{Line: cache.Addr(banks)}
	c.Enqueue(miss)
	c.Enqueue(hit)
	done := runUntil(c, 2, 10000)
	if len(done) != 2 {
		t.Fatal("requests did not complete")
	}
	if done[0] != hit {
		t.Fatal("FR-FCFS did not serve the row hit first")
	}
}

func TestQueueCap(t *testing.T) {
	c := New(cfg())
	for i := 0; i < cfg().QueueCap; i++ {
		if !c.Enqueue(&Request{Line: cache.Addr(i)}) {
			t.Fatalf("enqueue %d failed below capacity", i)
		}
	}
	if c.CanAccept() {
		t.Fatal("queue should be full")
	}
	if c.Enqueue(&Request{Line: 999}) {
		t.Fatal("enqueue succeeded on full queue")
	}
	if c.QueueFullEv != 1 {
		t.Fatalf("full events = %d", c.QueueFullEv)
	}
}

func TestWritesCounted(t *testing.T) {
	c := New(cfg())
	c.Enqueue(&Request{Line: 1, Write: true})
	c.Enqueue(&Request{Line: 2})
	done := runUntil(c, 2, 10000)
	if len(done) != 2 {
		t.Fatal("incomplete")
	}
	if c.ServedWrites != 1 || c.ServedReads != 1 {
		t.Fatalf("reads=%d writes=%d", c.ServedReads, c.ServedWrites)
	}
}

func TestAvgLatencyAndReset(t *testing.T) {
	c := New(cfg())
	c.Enqueue(&Request{Line: 0})
	runUntil(c, 1, 1000)
	if c.AvgLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
	c.ResetStats()
	if c.AvgLatency() != 0 || c.ServedReads != 0 || c.RowHitRate() != 0 {
		t.Fatal("stats not reset")
	}
}

func TestOutstanding(t *testing.T) {
	c := New(cfg())
	c.Enqueue(&Request{Line: 0})
	c.Enqueue(&Request{Line: 1})
	if c.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
	runUntil(c, 2, 10000)
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding after drain = %d", c.Outstanding())
	}
}

func TestBankConflictSerializes(t *testing.T) {
	c := New(cfg())
	banks := cfg().Banks
	// Two different rows of the same bank: tRC separates activates.
	a := &Request{Line: 0}
	b := &Request{Line: cache.Addr(banks * 16 * 3)}
	c.Enqueue(a)
	c.Enqueue(b)
	done := runUntil(c, 2, 10000)
	if len(done) != 2 {
		t.Fatal("incomplete")
	}
	if b.Done-a.Done < int64(cfg().TRP) {
		t.Fatalf("bank conflict gap %d too small", b.Done-a.Done)
	}
}
