package fifo

import "testing"

func TestStashPushItemsReset(t *testing.T) {
	var s Stash[int]
	if s.Len() != 0 || len(s.Items()) != 0 {
		t.Fatalf("zero-value stash not empty: len=%d", s.Len())
	}
	for i := 0; i < 5; i++ {
		s.Push(i * 10)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	for i, v := range s.Items() {
		if v != i*10 {
			t.Fatalf("Items()[%d] = %d, want %d (push order must be preserved)", i, v, i*10)
		}
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", s.Len())
	}
}

func TestStashResetZeroesSlots(t *testing.T) {
	var s Stash[*int]
	v := 42
	s.Push(&v)
	buf := s.buf[:1]
	s.Reset()
	if buf[0] != nil {
		t.Fatal("Reset must zero vacated slots so stashed pointers are not pinned")
	}
}

func TestStashSteadyStateAllocFree(t *testing.T) {
	var s Stash[int]
	// Warm up to the high-water mark.
	for i := 0; i < 64; i++ {
		s.Push(i)
	}
	s.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.Push(i)
		}
		s.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Reset allocated %.1f times per cycle, want 0", allocs)
	}
}
