// Package fifo provides allocation-free queue primitives for the
// simulator hot path.
//
// Ring is a fixed-capacity ring buffer for by-value queues (flit
// FIFOs). PopFront and RemoveAt are in-place helpers for slice-backed
// queues that must keep exposing a plain slice (injection queues,
// outboxes): both retain the backing array across operations and zero
// vacated slots so popped references are not pinned.
//
// Everything here is deterministic and allocation-free in steady
// state; Ring allocates only at Init (or on overflow growth, which a
// correctly sized queue never triggers).
package fifo

// Ring is a FIFO ring buffer of fixed capacity. The zero value is
// unusable; call Init first. Pushing beyond capacity grows the buffer
// (a safety net — hot-path rings are sized so this never happens).
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Init allocates the backing array and empties the ring.
func (r *Ring[T]) Init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	r.buf = make([]T, capacity)
	r.head, r.n = 0, 0
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

// PopFront removes and returns the head element, zeroing its slot.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("fifo: PopFront on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// At returns a pointer to the i-th queued element (0 = head).
func (r *Ring[T]) At(i int) *T {
	if i < 0 || i >= r.n {
		panic("fifo: ring index out of range")
	}
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

// Front returns a pointer to the head element.
func (r *Ring[T]) Front() *T { return r.At(0) }

// grow doubles the capacity, compacting the queue to the front.
func (r *Ring[T]) grow() {
	nb := make([]T, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		nb[i] = *r.At(i)
	}
	r.buf, r.head = nb, 0
}

// Stash is an append-only staging buffer: Push accumulates values,
// Items exposes them in push order, Reset empties the stash while
// retaining the backing array. It is the storage behind the NoC's
// cross-tile staging buffers, where each cycle stages a handful of
// events and drains them on the next; after warmup the backing array
// has grown to the high-water mark and Push never allocates again.
type Stash[T any] struct {
	buf []T
}

// Push appends v.
func (s *Stash[T]) Push(v T) { s.buf = append(s.buf, v) }

// Len returns the number of stashed elements.
func (s *Stash[T]) Len() int { return len(s.buf) }

// Items returns the stashed elements in push order. The slice aliases
// the stash's storage and is invalidated by the next Push or Reset.
func (s *Stash[T]) Items() []T { return s.buf }

// Reset empties the stash, zeroing vacated slots (so stashed pointers
// are not pinned) while keeping the backing array for reuse.
func (s *Stash[T]) Reset() {
	var zero T
	for i := range s.buf {
		s.buf[i] = zero
	}
	s.buf = s.buf[:0]
}

// PopFront removes the first element of a slice-backed queue by
// sliding the remainder down, so the backing array (and its capacity)
// is retained. It returns the shortened slice and the removed element.
func PopFront[T any](q []T) ([]T, T) {
	v := q[0]
	n := copy(q, q[1:])
	var zero T
	q[n] = zero
	return q[:n], v
}

// RemoveAt removes element i of a slice-backed queue in place,
// preserving order and zeroing the vacated tail slot.
func RemoveAt[T any](q []T, i int) []T {
	copy(q[i:], q[i+1:])
	last := len(q) - 1
	var zero T
	q[last] = zero
	return q[:last]
}
