package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryWorker(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		p := NewPool(n)
		if p.Size() != n {
			t.Fatalf("NewPool(%d).Size() = %d", n, p.Size())
		}
		var hits [8]int64
		for cycle := 0; cycle < 100; cycle++ {
			p.Run(func(w int) {
				atomic.AddInt64(&hits[w], 1)
			})
		}
		for w := 0; w < n; w++ {
			if hits[w] != 100 {
				t.Fatalf("n=%d: worker %d ran %d/100 times", n, w, hits[w])
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

func TestPoolPhases(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var computed int64
	committed := int64(-1)
	p.Phases(
		func(w int) { atomic.AddInt64(&computed, 1) },
		func() { committed = atomic.LoadInt64(&computed) },
	)
	if computed != 4 || committed != 4 {
		t.Fatalf("computed=%d committed=%d, want 4/4 (commit after the barrier)", computed, committed)
	}
}

func TestCutsEvenSplit(t *testing.T) {
	// With every cut legal, Cuts reproduces the classic i*n/k split.
	for _, tc := range []struct{ n, k int }{{10, 4}, {7, 3}, {5, 5}, {9, 1}, {3, 8}} {
		got := Cuts(tc.n, tc.k, nil)
		if got[0] != 0 || got[len(got)-1] != tc.n {
			t.Fatalf("Cuts(%d,%d) = %v: bad end boundaries", tc.n, tc.k, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("Cuts(%d,%d) = %v: empty part at %d", tc.n, tc.k, got, i)
			}
		}
		if tc.k <= tc.n && len(got) != tc.k+1 {
			t.Fatalf("Cuts(%d,%d) = %v: want %d parts", tc.n, tc.k, got, tc.k)
		}
	}
}

func TestCutsLegalBoundaries(t *testing.T) {
	// 28 items, cuts legal only at multiples of 10 (a share-group rule).
	legal := func(i int) bool { return i%10 == 0 }
	got := Cuts(28, 4, legal)
	for _, b := range got[1 : len(got)-1] {
		if !legal(b) {
			t.Fatalf("Cuts placed illegal boundary %d in %v", b, got)
		}
	}
	if MaxParts(28, legal) != 3 { // cuts at 10 and 20
		t.Fatalf("MaxParts(28, %%10) = %d, want 3", MaxParts(28, legal))
	}
	// Requesting more parts than legal cuts allow degrades gracefully.
	got = Cuts(28, 8, legal)
	if len(got)-1 > 3 {
		t.Fatalf("Cuts(28,8) = %v: more parts than legal cuts admit", got)
	}
}

func TestMatrixStaging(t *testing.T) {
	var m Matrix[int]
	m.Init(3)
	if m.Parts() != 3 {
		t.Fatalf("Parts() = %d", m.Parts())
	}
	now := int64(7)
	w := WriteParity(now)
	m.At(w, 0, 2).S.Push(10)
	m.At(w, 1, 2).S.Push(11)
	m.At(w, 2, 0).S.Push(12)

	// Next cycle drains what cycle `now` wrote.
	d := DrainParity(now + 1)
	if d != w {
		t.Fatalf("DrainParity(now+1)=%d != WriteParity(now)=%d", d, w)
	}
	var drained []int
	for src := 0; src < m.Parts(); src++ {
		c := m.At(d, src, 2)
		drained = append(drained, c.S.Items()...)
		c.S.Reset()
	}
	if len(drained) != 2 || drained[0] != 10 || drained[1] != 11 {
		t.Fatalf("drained %v, want [10 11] in src order", drained)
	}

	var rest []int
	m.Each(func(v int) { rest = append(rest, v) })
	if len(rest) != 1 || rest[0] != 12 {
		t.Fatalf("Each saw %v after drain, want [12]", rest)
	}
}
