package par

// Cuts partitions n consecutive items into at most k contiguous,
// non-empty parts, cutting only at indices the legal predicate
// accepts. It returns the part boundaries: boundaries[i] is the first
// item of part i, and the final entry is n, so part i spans
// [boundaries[i], boundaries[i+1]). legal == nil means every index is
// a legal cut, which reproduces the classic i*n/k even split.
//
// The split is deterministic: each desired boundary i*n/k is snapped
// down to the nearest legal cut strictly after the previous boundary,
// and boundaries that cannot be placed are dropped (yielding fewer,
// larger parts). Callers that need the achievable part count first
// should use MaxParts.
func Cuts(n, k int, legal func(int) bool) []int {
	if k < 1 {
		k = 1
	}
	bounds := make([]int, 1, k+1)
	for i := 1; i < k; i++ {
		c := i * n / k
		for c > bounds[len(bounds)-1] && legal != nil && !legal(c) {
			c--
		}
		if c <= bounds[len(bounds)-1] || c >= n {
			continue
		}
		bounds = append(bounds, c)
	}
	return append(bounds, n)
}

// MaxParts returns the largest number of contiguous non-empty parts n
// items admit under the legal cut predicate: the number of legal
// interior cut points plus one. legal == nil means every index is
// legal (n parts).
func MaxParts(n int, legal func(int) bool) int {
	if n <= 0 {
		return 0
	}
	parts := 1
	for i := 1; i < n; i++ {
		if legal == nil || legal(i) {
			parts++
		}
	}
	return parts
}
