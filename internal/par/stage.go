package par

import "delrep/internal/fifo"

// This file holds the parity-double-buffered staging helpers of the
// two-phase discipline: cycle c writes parity c&1 and drains parity
// (c-1)&1, so compute-phase writers and next-cycle drainers never
// share a buffer and the end-of-cycle barrier is the only
// synchronization the phases need. Every staged delivery must be due
// no earlier than the next cycle (delay >= 1) for next-cycle draining
// to be in time; DESIGN.md §11 is the long form of the argument.

// WriteParity returns the staging parity the compute phase of cycle
// now writes into.
func WriteParity(now int64) int { return int(now & 1) }

// DrainParity returns the staging parity cycle now drains: whatever
// the previous cycle staged.
func DrainParity(now int64) int { return int((now - 1) & 1) }

// Cell is one (src part, dst part) staging buffer — a fifo.Stash that
// retains its backing array across cycles, so after warmup the
// staging path is allocation-free. The padding keeps adjacent cells
// off one cache line: source parts push into distinct cells
// concurrently.
type Cell[T any] struct {
	S fifo.Stash[T]
	_ [40]byte
}

// Matrix is a parity-double-buffered (src, dst) staging matrix for P
// parts. The zero value is empty and unpartitioned; Init sizes it.
// Access goes through At so callers keep the fixed src-order drain
// loops in their own code, where the stagecommit analyzer can see the
// staging buffers being touched.
type Matrix[T any] struct {
	parts int
	buf   [2][]Cell[T]
}

// Init sizes the matrix for parts partitions, discarding any previous
// contents.
func (m *Matrix[T]) Init(parts int) {
	m.parts = parts
	for p := range m.buf {
		m.buf[p] = make([]Cell[T], parts*parts)
	}
}

// Parts returns the partition count (0 when unpartitioned).
func (m *Matrix[T]) Parts() int { return m.parts }

// At returns the staging cell for the given parity and (src, dst)
// part pair.
func (m *Matrix[T]) At(parity, src, dst int) *Cell[T] {
	return &m.buf[parity][src*m.parts+dst]
}

// Each invokes fn for every staged value across both parities, in
// deterministic (parity, src, dst, push) order. It is for whole-state
// scans (quiescence checks, invariant audits), not the per-cycle
// drain: drains must walk a single parity in fixed src order via At.
func (m *Matrix[T]) Each(fn func(T)) {
	for p := range m.buf {
		for i := range m.buf[p] {
			for _, v := range m.buf[p][i].S.Items() {
				fn(v)
			}
		}
	}
}
