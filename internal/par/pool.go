// Package par provides the shared machinery for deterministic
// intra-run parallelism: a persistent worker pool, a contiguous
// partition helper with caller-defined legal cut points, and the
// parity-double-buffered staging matrix used to hand events between
// partitions.
//
// Both the NoC tile tick (internal/noc/tile.go) and the core node
// shards (internal/core/shard.go) are built on this package, and both
// follow the same two-phase discipline: a compute phase where every
// partition touches only partition-owned state (staging anything
// cross-partition), then a serial commit phase that drains staged
// state in fixed partition order. DESIGN.md §11 and §12 carry the
// exactness arguments.
package par

import "sync"

// Pool is a persistent worker pool for two-phase parallel ticking.
// It exists so the per-cycle fan-out costs two channel operations per
// worker instead of a goroutine spawn: the workers are parked on their
// work channels between cycles, and the caller's goroutine doubles as
// worker 0, so a Pool of size n adds only n-1 goroutines.
//
// Run is not safe for concurrent use from multiple goroutines; the
// simulator drives it from the single coordinator goroutine that owns
// System.Tick. That is the only concurrency contract the simulator
// needs, and it keeps the pool free of any internal locking on the
// hot path.
type Pool struct {
	work []chan func(worker int) // one per extra worker (1..n-1)
	done chan struct{}

	closeOnce sync.Once
}

// NewPool returns a pool that runs each submitted function on n
// workers (the caller plus n-1 parked goroutines). n < 1 is treated
// as 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		work: make([]chan func(int), n-1),
		done: make(chan struct{}, n-1),
	}
	for i := range p.work {
		ch := make(chan func(int))
		p.work[i] = ch
		go func(worker int, ch chan func(int)) {
			for f := range ch {
				f(worker)
				p.done <- struct{}{}
			}
		}(i+1, ch)
	}
	return p
}

// Size returns the number of workers, including the caller.
func (p *Pool) Size() int { return len(p.work) + 1 }

// Run invokes f(worker) once per worker, with worker IDs 0..Size()-1,
// and returns after every invocation has finished. Worker 0 runs on
// the calling goroutine, so under GOMAXPROCS=1 the pool degrades to
// slightly-indirect serial execution rather than deadlocking or
// spinning.
func (p *Pool) Run(f func(worker int)) {
	for _, ch := range p.work {
		ch <- f
	}
	f(0)
	for range p.work {
		<-p.done
	}
}

// Phases runs one two-phase step: compute fans out across every
// worker (Run's return is the only barrier), then commit runs
// serially on the caller. The commit function is where staged
// cross-partition state must be drained in fixed partition order.
func (p *Pool) Phases(compute func(worker int), commit func()) {
	p.Run(compute)
	commit()
}

// Close releases the worker goroutines. Idempotent; the pool must be
// idle (no Run in flight).
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for _, ch := range p.work {
			close(ch)
		}
	})
}
