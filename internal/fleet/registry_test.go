package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker is a minimal delrepd stand-in: /readyz toggles with the
// up flag, /metrics exposes the three load gauges.
func fakeWorker(up *atomic.Bool, slots int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "delrepd_workers %d\ndelrepd_jobs_queued 3\ndelrepd_jobs_running 1\n", slots)
	})
	return mux
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRegistryProbesAndRecovers(t *testing.T) {
	var up atomic.Bool
	up.Store(true)
	ts := httptest.NewServer(fakeWorker(&up, 4))
	defer ts.Close()

	reg := NewRegistry([]string{ts.URL}, 20*time.Millisecond, nil, nil)
	defer reg.Close()

	waitFor(t, "worker ready", func() bool { return reg.Ready(ts.URL) })
	info := reg.Info(ts.URL)
	if info.Slots != 4 || info.Queued != 3 || info.Running != 1 {
		t.Fatalf("scraped info = %+v, want slots=4 queued=3 running=1", info)
	}

	// A failing readyz takes the worker down…
	up.Store(false)
	waitFor(t, "worker down", func() bool { return !reg.Ready(ts.URL) })
	// …and recovery brings it back once the backoff allows a re-probe.
	up.Store(true)
	waitFor(t, "worker recovered", func() bool { return reg.Ready(ts.URL) })
}

func TestRegistryMarkFailedIsImmediate(t *testing.T) {
	var up atomic.Bool
	up.Store(true)
	ts := httptest.NewServer(fakeWorker(&up, 2))
	defer ts.Close()

	// A long probe interval isolates MarkFailed from the probe loop.
	reg := NewRegistry([]string{ts.URL}, time.Hour, nil, nil)
	defer reg.Close()
	waitFor(t, "worker ready", func() bool { return reg.Ready(ts.URL) })

	reg.MarkFailed(ts.URL, "connection refused")
	if reg.Ready(ts.URL) {
		t.Fatal("worker still ready immediately after MarkFailed")
	}
	if info := reg.Info(ts.URL); info.Failures == 0 || info.LastError == "" {
		t.Fatalf("failure not recorded: %+v", info)
	}
}

func TestRegistryOutstanding(t *testing.T) {
	reg := NewRegistry([]string{"http://nowhere.invalid:1"}, time.Hour, nil, nil)
	defer reg.Close()
	reg.AddOutstanding("http://nowhere.invalid:1", 1)
	reg.AddOutstanding("http://nowhere.invalid:1", 1)
	reg.AddOutstanding("http://nowhere.invalid:1", -1)
	if got := reg.Info("http://nowhere.invalid:1").Outstanding; got != 1 {
		t.Fatalf("outstanding = %d, want 1", got)
	}
	// Never negative, even on unbalanced decrements.
	reg.AddOutstanding("http://nowhere.invalid:1", -5)
	if got := reg.Info("http://nowhere.invalid:1").Outstanding; got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
}
