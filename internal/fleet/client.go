package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"delrep/internal/runner"
	"delrep/internal/serve"
	"delrep/internal/simspec"
)

// Client submits simulations to a remote /v1/jobs endpoint — a fleet
// coordinator or a single delrepd; the wire API is identical — and
// implements runner.Resolver, so an Engine built with Options.Remote
// delegates cache-missing runs to the fleet while keeping its dedup,
// batch ordering, counters, and local disk cache.
type Client struct {
	base   string
	name   string // client identity sent with every submission
	http   *http.Client
	// maxBusy bounds consecutive 429-and-wait cycles per submission
	// before giving up, so a permanently saturated fleet fails loudly
	// instead of retrying forever.
	maxBusy int
}

// NewClient builds a client for the coordinator (or daemon) at base.
// name identifies this client to fleet admission control; httpc may be
// nil for a default without an overall timeout (jobs can legitimately
// run for minutes; per-call bounds come from the submission contexts).
func NewClient(base, name string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = &http.Client{}
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, name: name, http: httpc, maxBusy: 60}
}

// Resolve implements runner.Resolver: express the spec in wire form,
// submit it with ?wait=1, and decode the terminal job view. Specs the
// wire form cannot carry return ErrNotRemotable, telling the engine to
// run them locally.
func (c *Client) Resolve(ctx context.Context, spec runner.Spec, parallel int) (runner.Remote, error) {
	wire, err := simspec.FromConfig(spec.Cfg, spec.GPU, spec.CPU)
	if err != nil {
		return runner.Remote{}, fmt.Errorf("%w: %v", runner.ErrNotRemotable, err)
	}
	wire.Parallel = parallel // execution hint; stripped from identity server-side
	view, err := c.Submit(ctx, wire)
	if err != nil {
		return runner.Remote{}, err
	}
	return remoteFromView(view)
}

// Submit posts one spec with ?wait=1 and returns the terminal job
// view. 429 responses are retried after the server's Retry-After
// (bounded), so sweeps submitted faster than fleet admission allows
// degrade to pacing, not failure.
func (c *Client) Submit(ctx context.Context, spec simspec.Spec) (serve.JobView, error) {
	body, err := json.Marshal(serve.SubmitRequest{Spec: spec, Client: c.name})
	if err != nil {
		return serve.JobView{}, err
	}
	for busy := 0; ; busy++ {
		view, retryAfter, err := c.submitOnce(ctx, body)
		if err == nil {
			return view, nil
		}
		if retryAfter <= 0 || busy >= c.maxBusy {
			return serve.JobView{}, err
		}
		select {
		case <-time.After(time.Duration(retryAfter) * time.Second):
		case <-ctx.Done():
			return serve.JobView{}, ctx.Err()
		}
	}
}

// submitOnce performs one POST ?wait=1 round trip. A positive
// retryAfter with a non-nil error means admission pushback (retry
// later); retryAfter 0 means the error is final for this attempt.
func (c *Client) submitOnce(ctx context.Context, body []byte) (view serve.JobView, retryAfter int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		return view, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return view, 0, fmt.Errorf("fleet %s: %w", c.base, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return view, 0, fmt.Errorf("fleet %s: decoding job view: %v", c.base, err)
		}
		return view, 0, nil
	case http.StatusTooManyRequests:
		after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if after < 1 {
			after = 1
		}
		return view, after, fmt.Errorf("fleet %s: admission pushback (429)", c.base)
	default:
		return view, 0, fmt.Errorf("fleet %s: submit answered %d: %s",
			c.base, resp.StatusCode, readErrorBody(resp.Body))
	}
}

// remoteFromView converts a terminal job view into the engine's
// runner.Remote, validating that it actually carries a result.
func remoteFromView(view serve.JobView) (runner.Remote, error) {
	switch view.Status {
	case serve.StatusDone:
	case serve.StatusFailed:
		return runner.Remote{}, fmt.Errorf("fleet job %s failed: %s", view.ID, view.Error)
	case serve.StatusCancelled:
		return runner.Remote{}, context.Canceled
	default:
		return runner.Remote{}, fmt.Errorf("fleet job %s ended in unexpected state %q", view.ID, view.Status)
	}
	if view.Result == nil {
		return runner.Remote{}, fmt.Errorf("fleet job %s: done without a result", view.ID)
	}
	digest, err := strconv.ParseUint(view.Result.Digest, 16, 64)
	if err != nil {
		return runner.Remote{}, fmt.Errorf("fleet job %s: bad digest %q: %v", view.ID, view.Result.Digest, err)
	}
	src, err := parseSource(view.Source)
	if err != nil {
		return runner.Remote{}, fmt.Errorf("fleet job %s: %v", view.ID, err)
	}
	return runner.Remote{
		Results: view.Result.Results,
		Digest:  digest,
		Source:  src,
		Worker:  view.Worker,
	}, nil
}

// parseSource maps the wire source string back to runner.Source. The
// engine counts remote resolutions under the source the fleet reports,
// so sweep accounting (and expdriver's per-figure run counts) stays
// identical to a local run against the same cache state.
func parseSource(s string) (runner.Source, error) {
	switch s {
	case "executed":
		return runner.SourceExecuted, nil
	case "memo":
		return runner.SourceMemo, nil
	case "disk":
		return runner.SourceDisk, nil
	}
	return 0, fmt.Errorf("unknown result source %q", s)
}

// Ping checks that the remote endpoint is alive and ready, for a fast
// clear failure at CLI startup instead of a hung first submission.
func (c *Client) Ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("fleet %s: %w", c.base, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet %s: not ready (readyz answered %d)", c.base, resp.StatusCode)
	}
	return nil
}

var _ runner.Resolver = (*Client)(nil)
