package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingSequenceCoversAllWorkersOnce(t *testing.T) {
	workers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(workers, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key)
		if len(seq) != len(workers) {
			t.Fatalf("Sequence(%q) has %d entries, want %d: %v", key, len(seq), len(workers), seq)
		}
		seen := map[string]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("Sequence(%q) repeats %q: %v", key, w, seq)
			}
			seen[w] = true
		}
	}
}

func TestRingDeterministicAcrossConstructions(t *testing.T) {
	workers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r1 := NewRing(workers, 0)
	// Input order must not matter: every coordinator instance (and a
	// restarted one) must route identically.
	r2 := NewRing([]string{workers[2], workers[0], workers[1]}, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a, b := r1.Sequence(key), r2.Sequence(key); !reflect.DeepEqual(a, b) {
			t.Fatalf("Sequence(%q) differs across constructions: %v vs %v", key, a, b)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	workers := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	r := NewRing(workers, 0)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Sequence(fmt.Sprintf("key-%d", i))[0]]++
	}
	// With 128 virtual nodes each shard should hold a reasonable slice;
	// the bound is loose (half the fair share) so the test pins gross
	// imbalance, not hash luck.
	for _, w := range workers {
		if counts[w] < n/len(workers)/2 {
			t.Errorf("worker %s owns only %d/%d keys", w, counts[w], n)
		}
	}
}

// Removing one worker (= skipping it at lookup, as the coordinator
// does for unhealthy workers) must not move keys between survivors:
// a key homed on a survivor keeps its home, and a key homed on the
// removed worker falls to its ring successor.
func TestRingRemovalStability(t *testing.T) {
	workers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(workers, 0)
	down := workers[1]
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key)
		// The filtered view of the full sequence is the failover order
		// the coordinator actually uses.
		var filtered []string
		for _, w := range seq {
			if w != down {
				filtered = append(filtered, w)
			}
		}
		if seq[0] != down && filtered[0] != seq[0] {
			t.Fatalf("key %q moved off healthy home %s when %s went down", key, seq[0], down)
		}
		if seq[0] == down && filtered[0] != seq[1] {
			t.Fatalf("key %q did not fall to its ring successor: %v -> %v", key, seq, filtered)
		}
	}
}

func TestRingDedupAndEmpty(t *testing.T) {
	r := NewRing([]string{"http://a", "", "http://a", "http://b"}, 8)
	if got := r.Members(); !reflect.DeepEqual(got, []string{"http://a", "http://b"}) {
		t.Fatalf("Members() = %v", got)
	}
	if seq := NewRing(nil, 0).Sequence("k"); seq != nil {
		t.Fatalf("empty ring Sequence = %v, want nil", seq)
	}
}
