package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"delrep/internal/serve"
)

// handleHealthz is liveness: the coordinator process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting jobs and at least one
// worker is ready; 503 when draining or the whole fleet is down, so
// load balancers stop routing submissions at a coordinator that could
// only queue them into failure.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case draining:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case s.reg.ReadyCount() == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no ready workers")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleWorkers reports the registry's view of the fleet.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.Infos()
	sort.Slice(infos, func(i, j int) bool { return infos[i].URL < infos[j].URL })
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerInfo `json:"workers"`
	}{infos})
}

// handleMetrics writes the coordinator's state in the Prometheus text
// exposition format: fleet-wide gauges, dispatch/failover/steal
// counters, the cache-tier probe accounting, and per-worker health.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.Infos()
	sort.Slice(infos, func(i, j int) bool { return infos[i].URL < infos[j].URL })

	s.mu.Lock()
	var b strings.Builder
	ready := 0
	for _, wi := range infos {
		if wi.Ready {
			ready++
		}
	}
	fmt.Fprintf(&b, "# TYPE delrepfleet_workers gauge\ndelrepfleet_workers %d\n", len(infos))
	fmt.Fprintf(&b, "# TYPE delrepfleet_workers_ready gauge\ndelrepfleet_workers_ready %d\n", ready)
	fmt.Fprintf(&b, "# TYPE delrepfleet_jobs_running gauge\ndelrepfleet_jobs_running %d\n", s.runningCount)
	fmt.Fprintf(&b, "# TYPE delrepfleet_sse_subscribers gauge\ndelrepfleet_sse_subscribers %d\n", s.sseSubs)

	fmt.Fprintf(&b, "# TYPE delrepfleet_jobs_total counter\n")
	for _, st := range []serve.Status{serve.StatusDone, serve.StatusFailed, serve.StatusCancelled} {
		fmt.Fprintf(&b, "delrepfleet_jobs_total{status=%q} %d\n", st, s.statusCounts[st])
	}
	fmt.Fprintf(&b, "# TYPE delrepfleet_dispatch_total counter\ndelrepfleet_dispatch_total %d\n", s.nDispatch)
	fmt.Fprintf(&b, "# TYPE delrepfleet_retries_total counter\ndelrepfleet_retries_total %d\n", s.nRetry)
	fmt.Fprintf(&b, "# TYPE delrepfleet_steals_total counter\ndelrepfleet_steals_total %d\n", s.nSteal)
	fmt.Fprintf(&b, "# TYPE delrepfleet_cache_probes_total counter\n")
	fmt.Fprintf(&b, "delrepfleet_cache_probes_total{result=\"hit\"} %d\n", s.nProbeHit)
	fmt.Fprintf(&b, "delrepfleet_cache_probes_total{result=\"miss\"} %d\n", s.nProbeMiss)
	s.mu.Unlock()

	fmt.Fprintf(&b, "# TYPE delrepfleet_worker_up gauge\n")
	for _, wi := range infos {
		up := 0
		if wi.Ready {
			up = 1
		}
		fmt.Fprintf(&b, "delrepfleet_worker_up{worker=%q} %d\n", wi.URL, up)
	}
	fmt.Fprintf(&b, "# TYPE delrepfleet_worker_outstanding gauge\n")
	for _, wi := range infos {
		fmt.Fprintf(&b, "delrepfleet_worker_outstanding{worker=%q} %d\n", wi.URL, wi.Outstanding)
	}
	fmt.Fprintf(&b, "# TYPE delrepfleet_worker_slots gauge\n")
	for _, wi := range infos {
		fmt.Fprintf(&b, "delrepfleet_worker_slots{worker=%q} %d\n", wi.URL, wi.Slots)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
