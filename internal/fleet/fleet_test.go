package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"delrep/internal/core"
	"delrep/internal/runner"
	"delrep/internal/serve"
	"delrep/internal/simspec"
)

// shortSpec finishes in well under a second; vary the seed to defeat
// memoization between tests (each test file shares one process).
func shortSpec(seed int64) simspec.Spec {
	return simspec.Spec{GPU: "HS", CPU: "vips", Warmup: 200, Cycles: 2000, Seed: seed}
}

// slowSpec runs for a few seconds (~12k cycles/s) — long enough to
// kill its worker mid-run, short enough to finish after failover.
func slowSpec(seed int64) simspec.Spec {
	return simspec.Spec{GPU: "HS", CPU: "vips", Warmup: 200, Cycles: 50_000, Seed: seed}
}

// foreverSpec will not finish within any test timeout; it exists to be
// cancelled.
func foreverSpec(seed int64) simspec.Spec {
	return simspec.Spec{GPU: "HS", CPU: "vips", Warmup: 200, Cycles: 500_000_000, Seed: seed}
}

// directResult computes the reference bytes a fleet-served result must
// match: the canonical Result of an in-process run of the same spec.
func directResult(t *testing.T, spec simspec.Spec) []byte {
	t.Helper()
	cfg, norm, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	a := core.RunAudit(cfg, norm.GPU, norm.CPU)
	b, err := json.Marshal(simspec.NewResult(norm, a.Results, a.Digest))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testWorker is one delrepd stand-in backed by its own cache dir.
type testWorker struct {
	srv *serve.Server
	ts  *httptest.Server
	eng *runner.Engine
}

func newWorker(t *testing.T, dir string) *testWorker {
	t.Helper()
	var cache *runner.DiskCache
	if dir != "" {
		var err error
		if cache, err = runner.OpenDiskCache(dir); err != nil {
			t.Fatal(err)
		}
	}
	eng := runner.New(runner.Options{Workers: 2, Cache: cache})
	srv := serve.New(serve.Options{Engine: eng})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return &testWorker{srv: srv, ts: ts, eng: eng}
}

func newCoordinator(t *testing.T, workers ...*testWorker) (*Server, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.ts.URL
	}
	s, err := New(Options{
		Workers:       urls,
		ProbeInterval: 25 * time.Millisecond,
		Retries:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	// Wait for the registry's first probe sweep so tests never race
	// worker readiness.
	waitFor(t, "coordinator ready", func() bool {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusOK
	})
	return s, ts
}

func submitWait(t *testing.T, base string, spec simspec.Spec) serve.JobView {
	t.Helper()
	view, err := trySubmitWait(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

func trySubmitWait(base string, spec simspec.Spec) (serve.JobView, error) {
	b, err := json.Marshal(serve.SubmitRequest{Spec: spec, Client: "fleet-test"})
	if err != nil {
		return serve.JobView{}, err
	}
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader(b))
	if err != nil {
		return serve.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return serve.JobView{}, fmt.Errorf("submit: status %d: %s", resp.StatusCode, body)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return serve.JobView{}, err
	}
	return view, nil
}

func resultBytes(t *testing.T, view serve.JobView) []byte {
	t.Helper()
	if view.Status != serve.StatusDone {
		t.Fatalf("job %s ended %s (%s)", view.ID, view.Status, view.Error)
	}
	if view.Result == nil {
		t.Fatalf("job %s: done without a result", view.ID)
	}
	b, err := json.Marshal(*view.Result)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The fleet's core invariant: a coordinator-served result is
// byte-identical to a direct in-process run of the same spec, and the
// view says which worker served it.
func TestFleetByteIdentity(t *testing.T) {
	w1 := newWorker(t, t.TempDir())
	w2 := newWorker(t, t.TempDir())
	_, ts := newCoordinator(t, w1, w2)

	spec := shortSpec(501)
	want := directResult(t, spec)
	view := submitWait(t, ts.URL, spec)
	if got := resultBytes(t, view); !bytes.Equal(got, want) {
		t.Fatalf("fleet result differs from direct run:\n fleet:  %s\n direct: %s", got, want)
	}
	if view.Worker != w1.ts.URL && view.Worker != w2.ts.URL {
		t.Fatalf("view.Worker = %q, want one of the worker URLs", view.Worker)
	}
	if view.Source != "executed" {
		t.Fatalf("first run source = %q, want executed", view.Source)
	}

	// A resubmission routes to the same worker (consistent hashing) and
	// is served from its cache, still byte-identical.
	again := submitWait(t, ts.URL, spec)
	if again.Worker != view.Worker {
		t.Fatalf("resubmission routed to %q, first run to %q", again.Worker, view.Worker)
	}
	if again.Source == "executed" {
		t.Fatalf("resubmission source = executed, want a cache hit")
	}
	if got := resultBytes(t, again); !bytes.Equal(got, want) {
		t.Fatalf("cached fleet result differs from direct run")
	}
}

// Killing a worker mid-run must fail the job over to the survivor and
// still deliver byte-identical results — the replay is idempotent
// because simulations are deterministic.
func TestFleetFailoverMidRun(t *testing.T) {
	w1 := newWorker(t, t.TempDir())
	w2 := newWorker(t, t.TempDir())
	coord, ts := newCoordinator(t, w1, w2)

	spec := slowSpec(502)
	type res struct {
		view serve.JobView
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := trySubmitWait(ts.URL, spec)
		ch <- res{v, err}
	}()

	// Wait until the job is running on a worker, then kill that worker.
	var victim, survivor *testWorker
	waitFor(t, "job dispatched", func() bool {
		coord.mu.Lock()
		defer coord.mu.Unlock()
		for _, j := range coord.order {
			if j.status == serve.StatusRunning && j.worker != "" {
				if j.worker == w1.ts.URL {
					victim, survivor = w1, w2
				} else {
					victim, survivor = w2, w1
				}
				return true
			}
		}
		return false
	})
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if got, want := resultBytes(t, r.view), directResult(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("failover result differs from direct run:\n fleet:  %s\n direct: %s", got, want)
	}
	if r.view.Worker != survivor.ts.URL {
		t.Fatalf("job finished on %q, want survivor %q", r.view.Worker, survivor.ts.URL)
	}

	// The retry counter recorded the failover and the registry marked
	// the victim down.
	coord.mu.Lock()
	retries := coord.nRetry
	coord.mu.Unlock()
	if retries == 0 {
		t.Error("failover did not count a retry round")
	}
	if coord.Registry().Ready(victim.ts.URL) {
		t.Error("dead worker still marked ready")
	}
}

// A batch whose worker dies mid-sweep completes on the survivor with
// every result byte-identical to direct runs.
func TestFleetFailoverMidSweep(t *testing.T) {
	w1 := newWorker(t, t.TempDir())
	w2 := newWorker(t, t.TempDir())
	_, ts := newCoordinator(t, w1, w2)

	specs := make([]simspec.Spec, 6)
	for i := range specs {
		specs[i] = shortSpec(510 + int64(i))
	}
	type res struct {
		i    int
		view serve.JobView
		err  error
	}
	ch := make(chan res, len(specs))
	for i, sp := range specs {
		go func(i int, sp simspec.Spec) {
			v, err := trySubmitWait(ts.URL, sp)
			ch <- res{i, v, err}
		}(i, sp)
	}
	// Kill one worker while the batch is in flight. Whichever jobs were
	// routed to it must fail over; the rest are unaffected.
	time.Sleep(50 * time.Millisecond)
	w1.ts.CloseClientConnections()
	w1.ts.Close()

	got := make([][]byte, len(specs))
	for range specs {
		r := <-ch
		if r.err != nil {
			t.Fatalf("spec %d: %v", r.i, r.err)
		}
		got[r.i] = resultBytes(t, r.view)
	}
	for i, sp := range specs {
		if want := directResult(t, sp); !bytes.Equal(got[i], want) {
			t.Errorf("spec %d: fleet result differs from direct run", i)
		}
	}
}

// A worker's warm disk cache is a queryable shard: the coordinator
// answers from it via the cache probe without dispatching a job.
func TestFleetCacheTierProbe(t *testing.T) {
	dir := t.TempDir()
	warm := newWorker(t, dir)

	// Warm the worker's cache with a direct submission.
	spec := shortSpec(520)
	view := submitWait(t, warm.ts.URL, spec)
	want := resultBytes(t, view)

	// A fresh coordinator serves the same spec from the cache tier.
	_, ts := newCoordinator(t, warm)
	served := submitWait(t, ts.URL, spec)
	if served.Source != "disk" {
		t.Fatalf("source = %q, want disk", served.Source)
	}
	if got := resultBytes(t, served); !bytes.Equal(got, want) {
		t.Fatalf("cache-tier result differs from the worker's own")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `delrepfleet_cache_probes_total{result="hit"} 1`) {
		t.Errorf("metrics do not record the cache-probe hit:\n%s", body)
	}
	if !strings.Contains(string(body), "delrepfleet_dispatch_total 0") {
		t.Errorf("cache-tier hit should not have dispatched a job:\n%s", body)
	}
}

// The fleet client plugs into the engine as a Resolver: remote results
// flow through dedup/batch ordering, count under the source the fleet
// reports, and land in the local disk cache.
func TestClientResolverThroughEngine(t *testing.T) {
	w1 := newWorker(t, t.TempDir())
	w2 := newWorker(t, t.TempDir())
	_, ts := newCoordinator(t, w1, w2)

	spec := shortSpec(530)
	cfg, norm, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	localDir := t.TempDir()
	localCache, err := runner.OpenDiskCache(localDir)
	if err != nil {
		t.Fatal(err)
	}
	eng := runner.New(runner.Options{
		Workers: 2,
		Cache:   localCache,
		Remote:  NewClient(ts.URL, "fleet-test", nil),
	})
	run := eng.Submit(runner.Spec{Cfg: cfg, GPU: norm.GPU, CPU: norm.CPU}).Wait()
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.Worker == "" {
		t.Fatal("run.Worker empty: the run did not go through the fleet")
	}
	a := core.RunAudit(cfg, norm.GPU, norm.CPU)
	if run.Results != a.Results || run.Digest != a.Digest {
		t.Fatal("fleet-resolved run differs from a direct run")
	}
	if run.Source != runner.SourceExecuted {
		t.Fatalf("source = %v, want executed (the fleet executed it)", run.Source)
	}
	if c := eng.Counters(); c.Executed != 1 {
		t.Fatalf("counters = %+v, want the remote execution counted as executed", c)
	}

	// The remote result was written into the local cache: a fresh
	// engine over the same dir needs no fleet at all.
	cache2, err := runner.OpenDiskCache(localDir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := runner.New(runner.Options{Workers: 1, Cache: cache2})
	run2 := eng2.Submit(runner.Spec{Cfg: cfg, GPU: norm.GPU, CPU: norm.CPU}).Wait()
	if run2.Err != nil || run2.Source != runner.SourceDisk {
		t.Fatalf("warm local rerun source = %v (err %v), want disk", run2.Source, run2.Err)
	}
	if run2.Results != run.Results || run2.Digest != run.Digest {
		t.Fatal("locally cached remote result differs")
	}
}

// Specs the wire form cannot express run locally (ErrNotRemotable
// fallback), so hybrid sweeps still work against a fleet.
func TestClientResolverLocalFallback(t *testing.T) {
	w := newWorker(t, t.TempDir())
	_, ts := newCoordinator(t, w)

	spec := shortSpec(540)
	cfg, norm, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoC.VCsPerClass = 3 // a knob the wire spec does not carry

	eng := runner.New(runner.Options{Workers: 1, Remote: NewClient(ts.URL, "fleet-test", nil)})
	run := eng.Submit(runner.Spec{Cfg: cfg, GPU: norm.GPU, CPU: norm.CPU}).Wait()
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.Worker != "" {
		t.Fatalf("non-remotable spec ran on worker %q, want local execution", run.Worker)
	}
	a := core.RunAudit(cfg, norm.GPU, norm.CPU)
	if run.Results != a.Results || run.Digest != a.Digest {
		t.Fatal("local-fallback run differs from a direct run")
	}
	// The worker saw no job.
	resp, err := http.Get(w.ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("worker saw %d jobs, want 0", len(list.Jobs))
	}
}

// Cancelling a coordinator job propagates to the worker: the remote
// job stops running instead of burning a slot to completion.
func TestFleetCancelPropagation(t *testing.T) {
	w := newWorker(t, t.TempDir())
	coord, ts := newCoordinator(t, w)

	b, err := json.Marshal(serve.SubmitRequest{Spec: foreverSpec(550), Client: "fleet-test"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	waitFor(t, "job running on worker", func() bool {
		coord.mu.Lock()
		defer coord.mu.Unlock()
		j := coord.jobs[view.ID]
		return j != nil && j.status == serve.StatusRunning && j.remoteID != ""
	})
	coord.mu.Lock()
	remoteID := coord.jobs[view.ID].remoteID
	coord.mu.Unlock()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+view.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()

	// Both ends reach cancelled: the coordinator job and the worker job.
	waitFor(t, "coordinator job cancelled", func() bool {
		coord.mu.Lock()
		defer coord.mu.Unlock()
		return coord.jobs[view.ID].status == serve.StatusCancelled
	})
	waitFor(t, "worker job cancelled", func() bool {
		r, err := http.Get(w.ts.URL + "/v1/jobs/" + remoteID)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		var wv serve.JobView
		if json.NewDecoder(r.Body).Decode(&wv) != nil {
			return false
		}
		return wv.Status == serve.StatusCancelled
	})
}
