package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"delrep/internal/core"
	"delrep/internal/runner"
	"delrep/internal/serve"
	"delrep/internal/simspec"
	"delrep/internal/telemetry"
)

// Options configures a coordinator Server.
type Options struct {
	// Workers are the delrepd base URLs the fleet shards over. Required.
	Workers []string
	// Replicas is the virtual-node count per worker on the hash ring;
	// <= 0 selects the default.
	Replicas int
	// ProbeInterval is the registry's health-probe cadence; <= 0
	// selects the default.
	ProbeInterval time.Duration
	// Retries bounds full failover rounds: a job tries every ready
	// worker in ring order up to Retries+1 times before failing.
	// <= 0 selects 2.
	Retries int
	// StealMargin is the work-stealing trigger: a home worker with
	// outstanding >= slots+StealMargin is a straggler, and its job is
	// stolen by the first ring-order alternative with a free slot.
	// <= 0 selects 2.
	StealMargin int
	// HTTPClient talks to workers for probes, submissions, and polls;
	// nil builds one with a sane timeout. SSE streams always use an
	// untimed variant of its transport.
	HTTPClient *http.Client
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
	// Telemetry records a wall-clock span tree per job (route →
	// dispatch attempts → watch), exported by GET /v1/jobs/{id}/trace.
	Telemetry bool
}

// Server is the fleet coordinator: it accepts the same /v1/jobs API as
// a single delrepd and shards the jobs across workers by content key.
// Create with New; serve its Handler; stop with Shutdown.
type Server struct {
	ring        *Ring
	reg         *Registry
	client      *http.Client // bounded-timeout calls (submit, probe, poll, cancel)
	stream      *http.Client // unbounded, for SSE watch streams
	logger      *slog.Logger
	retries     int
	stealMargin int
	telemetry   bool
	started     time.Time
	mux         *http.ServeMux
	wg          sync.WaitGroup

	mu           sync.Mutex
	jobs         map[string]*fleetJob
	order        []*fleetJob
	seq          int
	draining     bool
	runningCount int
	sseSubs      int
	statusCounts map[serve.Status]int64
	nDispatch    int64 // jobs handed to a worker queue
	nRetry       int64 // failover re-dispatches after a worker loss
	nSteal       int64 // jobs rerouted off a straggling home worker
	nProbeHit    int64 // cache-tier probes answered 200
	nProbeMiss   int64 // cache-tier probes answered 404
}

// fleetJob is one job the coordinator owns. Identity fields are
// immutable after creation; mutable state is guarded by Server.mu.
type fleetJob struct {
	id      string
	req     serve.SubmitRequest // forwarded verbatim to workers
	spec    simspec.Spec        // canonical form, echoed to clients
	key     string              // full runner cache key
	addr    string              // runner.CacheAddr(key), for /v1/cache probes
	specKey string
	prio    serve.Priority
	ctx     context.Context
	cancel  context.CancelFunc
	doneCh  chan struct{}
	log     *slog.Logger
	trace   *telemetry.Trace // nil when telemetry is off

	// Guarded by Server.mu.
	status   serve.Status
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	worker   string // current/final worker base URL
	remoteID string // the job's id on that worker
	source   string
	workersN int
	progress *serve.ProgressView
	result   *simspec.Result
	subs     map[chan sseEvent]struct{}
}

// sseEvent mirrors the worker daemon's event framing.
type sseEvent struct {
	name string
	data any
}

// errPermanent wraps failures that re-dispatching cannot fix (a spec
// the worker rejects, a deterministic simulation error): the job fails
// immediately instead of burning failover rounds.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }

// New builds a coordinator over the configured workers and starts its
// health registry.
func New(opts Options) (*Server, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	if opts.Retries <= 0 {
		opts.Retries = 2
	}
	if opts.StealMargin <= 0 {
		opts.StealMargin = 2
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		ring: NewRing(opts.Workers, opts.Replicas),
		// SSE watch streams live as long as the job runs; strip any
		// overall timeout but keep the transport (and its dial/TLS
		// limits) so tests can inject one.
		client:       client,
		stream:       &http.Client{Transport: client.Transport},
		logger:       logger,
		retries:      opts.Retries,
		stealMargin:  opts.StealMargin,
		telemetry:    opts.Telemetry,
		jobs:         map[string]*fleetJob{},
		statusCounts: map[serve.Status]int64{},
	}
	//simlint:ignore rngsource coordinator start timestamp, outside any simulation
	s.started = time.Now()
	s.reg = NewRegistry(s.ring.Members(), opts.ProbeInterval, client, logger)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler serving the coordinator API.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the worker registry (for status surfaces and tests).
func (s *Server) Registry() *Registry { return s.reg }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var tr *telemetry.Trace
	if s.telemetry {
		tr = telemetry.New("job")
	}
	var req serve.SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	prio, err := serve.ParsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve locally first: the coordinator rejects malformed specs
	// itself and derives the routing key from the canonical config —
	// the same key every worker would compute.
	cfg, norm, err := req.Spec.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Client == "" {
		req.Client = r.Header.Get("X-Delrep-Client")
	}
	key := runner.Key(cfg, norm.GPU, norm.CPU)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	s.seq++
	//simlint:ignore ctxflow the job outlives the submitting request by design; cancellation comes from DELETE /jobs/{id} or drain, not the HTTP connection
	ctx, cancel := context.WithCancel(context.Background())
	j := &fleetJob{
		id:      fmt.Sprintf("f%06d", s.seq),
		req:     req,
		spec:    norm,
		key:     key,
		addr:    runner.CacheAddr(key),
		specKey: runner.KeyHash(cfg, norm.GPU, norm.CPU),
		prio:    prio,
		ctx:     ctx,
		cancel:  cancel,
		doneCh:  make(chan struct{}),
		status:  serve.StatusQueued,
		subs:    map[chan sseEvent]struct{}{},
		trace:   tr,
	}
	//simlint:ignore rngsource coordinator job timestamp, outside any simulation
	j.created = time.Now()
	j.log = s.logger.With("job", j.id, "client", req.Client, "spec_key", j.specKey)
	if tr != nil {
		tr.Root().Set("job", j.id)
		tr.Root().Set("client", req.Client)
		tr.Root().Set("spec_key", j.specKey)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	view := s.viewLocked(j)
	s.wg.Add(1)
	s.mu.Unlock()
	j.log.InfoContext(r.Context(), "job accepted",
		"gpu", norm.GPU, "cpu", norm.CPU, "scheme", norm.Scheme, "priority", prio.String())
	go s.dispatch(j)

	if r.URL.Query().Has("wait") {
		select {
		case <-j.doneCh:
			s.mu.Lock()
			view = s.viewLocked(j)
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, view)
		case <-r.Context().Done():
			// The waiting client went away: its job goes with it, exactly
			// as on a single daemon — cancellation propagates to the
			// worker holding the job.
			j.cancel()
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, view)
}

// viewLocked renders the job in the shared /v1/jobs wire shape.
// Server.mu must be held.
func (s *Server) viewLocked(j *fleetJob) serve.JobView {
	v := serve.JobView{
		ID:       j.id,
		Status:   j.status,
		Priority: j.prio.String(),
		Client:   j.req.Client,
		Spec:     j.spec,
		Created:  j.created.UTC().Format(time.RFC3339Nano),
		Error:    j.errMsg,
		Worker:   j.worker,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.status == serve.StatusRunning {
		v.Progress = j.progress
	}
	if j.status == serve.StatusDone {
		v.Source = j.source
		v.Workers = j.workersN
		v.Result = j.result
	}
	return v
}

// dispatch drives one job to a terminal state: route by ring order,
// probe the cache tier, submit, watch, and fail over on worker loss.
func (s *Server) dispatch(j *fleetJob) {
	defer s.wg.Done()
	defer j.cancel()
	var root *telemetry.Span
	if j.trace != nil {
		root = j.trace.Root()
	}
	var lastErr error = errors.New("no ready workers")
	for round := 0; round <= s.retries; round++ {
		if j.ctx.Err() != nil {
			s.finish(j, serve.StatusCancelled, "cancelled", "")
			return
		}
		cands, stolen := s.candidates(j)
		if stolen {
			s.mu.Lock()
			s.nSteal++
			s.mu.Unlock()
		}
		for _, worker := range cands {
			if j.ctx.Err() != nil {
				s.finish(j, serve.StatusCancelled, "cancelled", "")
				return
			}
			span := root.Start("fleet.attempt")
			span.Set("worker", worker)
			done, err := s.attempt(j, worker)
			span.End()
			if done {
				return
			}
			var perm errPermanent
			if errors.As(err, &perm) {
				s.finish(j, serve.StatusFailed, perm.Error(), worker)
				return
			}
			if err != nil {
				// A retryable attempt failure: the job falls over to the
				// next candidate (or the next round). Replay is safe
				// because simulations are deterministic and idempotent.
				lastErr = err
				s.mu.Lock()
				s.nRetry++
				s.mu.Unlock()
				j.log.Warn("dispatch attempt failed", "worker", worker, "error", err)
			}
		}
		// Every candidate failed (or none were ready): give the registry
		// a probe cycle to notice recoveries before the next round.
		select {
		case <-time.After(time.Second):
		case <-j.ctx.Done():
		}
	}
	s.finish(j, serve.StatusFailed,
		fmt.Sprintf("no worker could run the job after %d rounds: %v", s.retries+1, lastErr), "")
}

// candidates returns the ready workers in failover order for the job's
// key, applying the work-stealing policy: if the home worker is a
// straggler (outstanding ≥ slots + margin) and a later worker has a
// free slot, that idle worker is promoted to the front. The reported
// bool is true when a steal reordered the list.
func (s *Server) candidates(j *fleetJob) ([]string, bool) {
	seq := s.ring.Sequence(j.key)
	ready := make([]string, 0, len(seq))
	for _, w := range seq {
		if s.reg.Ready(w) {
			ready = append(ready, w)
		}
	}
	if len(ready) < 2 {
		return ready, false
	}
	home := s.reg.Info(ready[0])
	slots := home.Slots
	if slots < 1 {
		slots = 1 // no scrape yet: assume the minimum
	}
	if home.Outstanding < slots+s.stealMargin {
		return ready, false
	}
	for i := 1; i < len(ready); i++ {
		alt := s.reg.Info(ready[i])
		altSlots := alt.Slots
		if altSlots < 1 {
			altSlots = 1
		}
		if alt.Outstanding < altSlots {
			// Promote the idle worker; the straggler stays next in line
			// so a genuinely hot key still reaches its cache shard on
			// failover.
			reordered := append([]string{ready[i]}, append(append([]string{}, ready[:i]...), ready[i+1:]...)...)
			return reordered, true
		}
	}
	return ready, false
}

// attempt runs the job once against one worker. It returns done=true
// when the job reached a terminal state (including cancellation); a
// false return with a non-nil error means the next candidate should be
// tried, unless the error is errPermanent.
func (s *Server) attempt(j *fleetJob, worker string) (bool, error) {
	// Cache-tier probe first: if this shard already holds the result,
	// answer without consuming a worker queue slot.
	if res, digest, ok, err := s.probeCache(j, worker); err != nil {
		s.reg.MarkFailed(worker, err.Error())
		return false, err
	} else if ok {
		s.mu.Lock()
		j.worker = worker
		if j.started.IsZero() {
			//simlint:ignore rngsource coordinator job timestamp, outside any simulation
			j.started = time.Now()
		}
		j.source = runner.SourceDisk.String()
		//simlint:ignore detflow the timestamp above is job metadata; the Result is built purely from the worker's cached res/digest
		r := simspec.Result{Spec: j.spec, Results: res, Digest: digest}
		j.result = &r
		s.mu.Unlock()
		s.finish(j, serve.StatusDone, "", worker)
		j.log.Info("job served from cache tier", "worker", worker)
		return true, nil
	}

	view, err := s.submit(j, worker)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	j.worker = worker
	j.remoteID = view.ID
	if j.status != serve.StatusRunning {
		j.status = serve.StatusRunning
		//simlint:ignore rngsource coordinator job timestamp, outside any simulation
		j.started = time.Now()
		s.runningCount++
	}
	s.nDispatch++
	s.notifyLocked(j)
	s.mu.Unlock()
	s.reg.AddOutstanding(worker, 1)
	defer s.reg.AddOutstanding(worker, -1)
	j.log.Info("job dispatched", "worker", worker, "remote_job", view.ID)

	term, err := s.watch(j, worker, view.ID)
	if err != nil {
		s.reg.MarkFailed(worker, err.Error())
		return false, err
	}
	switch term.Status {
	case serve.StatusDone:
		s.mu.Lock()
		j.source = term.Source
		j.workersN = term.Workers
		j.result = term.Result
		s.mu.Unlock()
		s.finish(j, serve.StatusDone, "", worker)
		return true, nil
	case serve.StatusFailed:
		// A completed-but-failed simulation is deterministic: it would
		// fail identically anywhere, so failover cannot help.
		return false, errPermanent{fmt.Errorf("worker %s: %s", worker, term.Error)}
	case serve.StatusCancelled:
		if j.ctx.Err() != nil {
			s.finish(j, serve.StatusCancelled, "cancelled", worker)
			return true, nil
		}
		// The worker cancelled the job out from under us (it is
		// draining): fail over to a survivor.
		return false, fmt.Errorf("worker %s cancelled the job (draining?)", worker)
	}
	return false, fmt.Errorf("worker %s: job ended in unexpected state %q", worker, term.Status)
}

// probeCache checks one worker's disk-cache shard for the job's
// content address. ok=true carries the cached results; a nil error
// with ok=false is a plain miss; a non-nil error is a worker-health
// problem.
func (s *Server) probeCache(j *fleetJob, worker string) (res core.Results, digest string, ok bool, err error) {
	s.mu.Lock()
	s.nProbeMiss++ // corrected to a hit below
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(j.ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/cache/"+j.addr, nil)
	if err != nil {
		return res, "", false, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return res, "", false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		var entry serve.CacheEntry
		if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
			return res, "", false, fmt.Errorf("decoding cache entry: %v", err)
		}
		s.mu.Lock()
		s.nProbeMiss--
		s.nProbeHit++
		s.mu.Unlock()
		return entry.Results, entry.Digest, true, nil
	case resp.StatusCode == http.StatusNotFound:
		return res, "", false, nil
	case resp.StatusCode >= 500:
		return res, "", false, fmt.Errorf("cache probe: worker answered %d", resp.StatusCode)
	default:
		// An unexpected 4xx (an old worker without the endpoint answers
		// 404 via the mux anyway) — treat as a miss, not a failure.
		return res, "", false, nil
	}
}

// submit POSTs the job's original request to a worker and returns the
// accepted job view.
func (s *Server) submit(j *fleetJob, worker string) (serve.JobView, error) {
	body, err := json.Marshal(j.req)
	if err != nil {
		return serve.JobView{}, errPermanent{err}
	}
	ctx, cancel := context.WithTimeout(j.ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return serve.JobView{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		s.reg.MarkFailed(worker, err.Error())
		return serve.JobView{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var view serve.JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return serve.JobView{}, fmt.Errorf("decoding submit response: %v", err)
		}
		return view, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// Admission control pushed back: the worker is saturated, not
		// dead. Try the next candidate without marking it down.
		return serve.JobView{}, fmt.Errorf("worker %s is saturated (429)", worker)
	case resp.StatusCode == http.StatusBadRequest:
		return serve.JobView{}, errPermanent{fmt.Errorf("worker %s rejected the spec: %s", worker, readErrorBody(resp.Body))}
	default:
		err := fmt.Errorf("worker %s: submit answered %d", worker, resp.StatusCode)
		s.reg.MarkFailed(worker, err.Error())
		return serve.JobView{}, err
	}
}

func readErrorBody(r io.Reader) string {
	var body struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(r, 1<<16)).Decode(&body) == nil && body.Error != "" {
		return body.Error
	}
	return "(no detail)"
}

// watch follows the worker's SSE stream for the remote job, proxying
// progress to the coordinator's own subscribers, until a terminal view
// arrives. A dropped stream falls back to one status poll so a worker
// that died between events is distinguished from one that merely
// closed the stream after the terminal event. If the coordinator job
// is cancelled mid-watch, the cancellation is propagated to the worker
// via DELETE before returning.
func (s *Server) watch(j *fleetJob, worker, remoteID string) (serve.JobView, error) {
	req, err := http.NewRequestWithContext(j.ctx, http.MethodGet, worker+"/v1/jobs/"+remoteID+"/events", nil)
	if err != nil {
		return serve.JobView{}, err
	}
	resp, err := s.stream.Do(req)
	if err != nil {
		if j.ctx.Err() != nil {
			s.propagateCancel(j, worker, remoteID)
			return serve.JobView{Status: serve.StatusCancelled}, nil
		}
		return serve.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobView{}, fmt.Errorf("worker %s: events answered %d", worker, resp.StatusCode)
	}

	var terminal *serve.JobView
	err = readSSE(resp.Body, func(event string, data []byte) bool {
		switch event {
		case "progress":
			var pv serve.ProgressView
			if json.Unmarshal(data, &pv) != nil {
				return true
			}
			s.mu.Lock()
			j.progress = &pv
			ev := sseEvent{name: "progress", data: &pv}
			for ch := range j.subs {
				select {
				case ch <- ev:
				default:
				}
			}
			s.mu.Unlock()
		case "status":
			var view serve.JobView
			if json.Unmarshal(data, &view) != nil {
				return true
			}
			if view.Progress != nil {
				s.mu.Lock()
				j.progress = view.Progress
				s.mu.Unlock()
			}
			if view.Status.Terminal() {
				terminal = &view
				return false
			}
		}
		return true
	})
	if j.ctx.Err() != nil && (terminal == nil || !terminal.Status.Terminal()) {
		s.propagateCancel(j, worker, remoteID)
		return serve.JobView{Status: serve.StatusCancelled}, nil
	}
	if terminal != nil {
		return *terminal, nil
	}
	if err == nil {
		err = errors.New("event stream ended without a terminal status")
	}
	// The stream broke. One poll decides: a reachable worker tells us
	// the job's true state; an unreachable one means failover.
	view, perr := s.pollJob(worker, remoteID)
	if perr != nil {
		return serve.JobView{}, fmt.Errorf("worker %s: %v (then poll failed: %v)", worker, err, perr)
	}
	if !view.Status.Terminal() {
		return serve.JobView{}, fmt.Errorf("worker %s: %v (job still %s)", worker, err, view.Status)
	}
	return view, nil
}

// pollJob fetches the remote job's current view once.
func (s *Server) pollJob(worker, remoteID string) (serve.JobView, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return serve.JobView{}, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return serve.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobView{}, fmt.Errorf("status poll answered %d", resp.StatusCode)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return serve.JobView{}, err
	}
	return view, nil
}

// propagateCancel forwards a coordinator-side cancellation to the
// worker holding the job. Best effort: the job is already cancelled
// from the client's point of view, and an unreachable worker will
// cancel it anyway when it notices (or has died with it).
func (s *Server) propagateCancel(j *fleetJob, worker, remoteID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, worker+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return
	}
	resp, err := s.client.Do(req)
	if err != nil {
		j.log.WarnContext(ctx, "cancel propagation failed", "worker", worker, "error", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	j.log.InfoContext(ctx, "cancel propagated", "worker", worker, "remote_job", remoteID)
}

// readSSE parses a text/event-stream, invoking fn per event; fn
// returning false stops the read. Returns the stream error (nil on
// clean EOF).
func readSSE(r io.Reader, fn func(event string, data []byte) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || len(data) > 0 {
				if !fn(event, data) {
					return nil
				}
			}
			event, data = "", nil
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = append(data, line[6:]...)
		}
	}
	return sc.Err()
}

// finish retires the job. Idempotent: only the first call transitions.
func (s *Server) finish(j *fleetJob, status serve.Status, errMsg, worker string) {
	s.mu.Lock()
	if j.status.Terminal() {
		s.mu.Unlock()
		return
	}
	if j.status == serve.StatusRunning {
		s.runningCount--
	}
	wasStarted := !j.started.IsZero()
	j.status = status
	j.errMsg = errMsg
	if worker != "" {
		j.worker = worker
	}
	//simlint:ignore rngsource coordinator job timestamp, outside any simulation
	j.finished = time.Now()
	if !wasStarted {
		j.started = j.finished
	}
	s.statusCounts[status]++
	s.notifyLocked(j)
	close(j.doneCh)
	view := s.viewLocked(j)
	s.mu.Unlock()
	if j.trace != nil {
		j.trace.Root().Set("outcome", string(status))
		j.trace.End()
	}
	if errMsg != "" {
		j.log.Info("job finished", "status", status, "error", errMsg, "worker", view.Worker)
	} else {
		j.log.Info("job finished", "status", status, "source", view.Source, "worker", view.Worker)
	}
}

// notifyLocked pushes the job's current view to subscribers; Server.mu
// must be held. Sends never block.
func (s *Server) notifyLocked(j *fleetJob) {
	if len(j.subs) == 0 {
		return
	}
	ev := sseEvent{name: "status", data: s.viewLocked(j)}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]serve.JobView, 0, len(s.order))
	for _, j := range s.order {
		v := s.viewLocked(j)
		v.Result = nil // keep listings light; fetch the job for results
		views = append(views, v)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []serve.JobView `json:"jobs"`
	}{views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	view := s.viewLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if j.status.Terminal() {
		view := s.viewLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, view)
		return
	}
	s.mu.Unlock()
	j.cancel()
	// Give the dispatcher a moment to converge so the response usually
	// carries the terminal view; it finishes asynchronously regardless.
	select {
	case <-j.doneCh:
	case <-time.After(2 * time.Second):
	}
	s.mu.Lock()
	view := s.viewLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams the coordinator job's lifecycle as SSE in the
// same framing as a worker daemon: a "status" event on subscription
// and at every transition, proxied "progress" events while the job
// runs, and a final terminal "status" event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	f, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	ch := make(chan sseEvent, 8)
	s.mu.Lock()
	j.subs[ch] = struct{}{}
	s.sseSubs++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(j.subs, ch)
		s.sseSubs--
		s.mu.Unlock()
	}()

	emitView := func() (terminal bool, err error) {
		s.mu.Lock()
		view := s.viewLocked(j)
		s.mu.Unlock()
		return view.Status.Terminal(), writeSSE(w, f, sseEvent{name: "status", data: view})
	}
	if terminal, err := emitView(); terminal || err != nil {
		return
	}
	for {
		select {
		case ev := <-ch:
			if err := writeSSE(w, f, ev); err != nil {
				return
			}
			if view, ok := ev.data.(serve.JobView); ok && view.Status.Terminal() {
				return
			}
		case <-j.doneCh:
			_, _ = emitView()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, f http.Flusher, ev sseEvent) error {
	b, err := json.Marshal(ev.data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, b); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// handleTrace exports a fleet job's telemetry span tree (?format=tree
// for the nested form), mirroring the worker daemon's endpoint.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if j.trace == nil {
		writeError(w, http.StatusNotFound, "telemetry is disabled; start the coordinator with -telemetry")
		return
	}
	if r.URL.Query().Get("format") == "tree" {
		writeJSON(w, http.StatusOK, j.trace.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := j.trace.WriteChrome(w); err != nil {
		s.logger.WarnContext(r.Context(), "trace export failed", "job", j.id, "error", err)
	}
}

// Shutdown stops admission, cancels every live job, waits for their
// dispatchers, and stops the registry. If ctx expires first, Shutdown
// returns its error once the dispatchers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var live []*fleetJob
	for _, j := range s.order {
		if !j.status.Terminal() {
			live = append(live, j)
		}
	}
	s.mu.Unlock()
	for _, j := range live {
		j.cancel()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		<-done
	}
	s.reg.Close()
	return err
}
