// Package fleet scales simulation sweeps past one machine: a
// coordinator daemon (cmd/delrepfleet) that shards jobs across many
// delrepd worker daemons, plus the client used by delrepsim -remote
// and expdriver -remote.
//
// The design leans entirely on properties the single-node stack
// already guarantees:
//
//   - Simulations are deterministic and content-addressed: a spec's
//     runner.Key identifies its result bit-for-bit, wherever and
//     however often it runs. Replays are therefore idempotent, which
//     makes retry-with-failover trivially safe — a job rerun on a
//     survivor after a worker death returns byte-identical output.
//   - Specs route to workers by consistent hashing of runner.KeyHash,
//     so each worker's warm disk cache becomes one shard of a
//     distributed cache tier; the coordinator probes the shard
//     (GET /v1/cache/{key}) before spending a queue slot.
//   - The coordinator speaks the same /v1/jobs wire API as delrepd
//     (submit, wait, SSE progress, cancel), so every existing client
//     works against a fleet unchanged.
//
// The non-negotiable invariant: a fleet-served result is
// byte-comparable — same simspec.Result JSON, same digest — with a
// direct delrepsim -json run of the same spec, including after
// mid-sweep worker failures. DESIGN.md §13 has the full architecture.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultReplicas is the virtual-node count per worker on the ring:
// enough that removing one worker of a handful spreads its keyspace
// roughly evenly over the survivors, cheap enough that rebuilding the
// ring on membership change is negligible next to one simulation.
const defaultReplicas = 128

// Ring is a consistent-hash ring mapping content keys to worker names.
// It is immutable after construction — membership changes build a new
// Ring — so readers need no locking. The coordinator rebuilds it only
// on configured-membership change (which, today, is never at runtime);
// unhealthy workers stay on the ring and are skipped at lookup time,
// so a worker that comes back resumes owning exactly its old shard and
// its warm cache stays addressed.
type Ring struct {
	replicas int
	hashes   []uint64 // sorted virtual-node positions
	owner    map[uint64]string
	members  []string // distinct workers, sorted (for Members and tests)
}

// NewRing builds a ring over the named workers. replicas <= 0 selects
// the default virtual-node count.
func NewRing(workers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{replicas: replicas, owner: map[uint64]string{}}
	seen := map[string]bool{}
	for _, w := range workers {
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		r.members = append(r.members, w)
		for i := 0; i < replicas; i++ {
			h := ringHash(fmt.Sprintf("%s#%d", w, i))
			// A full-width hash collision between virtual nodes is
			// vanishingly unlikely; first writer wins keeps the ring
			// deterministic if it ever happens.
			if _, taken := r.owner[h]; !taken {
				r.owner[h] = w
				r.hashes = append(r.hashes, h)
			}
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	sort.Strings(r.members)
	return r
}

// Members returns the distinct workers on the ring, sorted.
func (r *Ring) Members() []string { return r.members }

// Sequence returns every worker in ring order starting at the key's
// position, each exactly once: the first element is the key's home
// worker (its cache shard), the rest are the failover order. The
// sequence depends only on ring membership and the key, so every
// coordinator instance — and a restarted one — routes identically.
func (r *Ring) Sequence(key string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, len(r.members))
	seen := map[string]bool{}
	for n := 0; n < len(r.hashes) && len(out) < len(r.members); n++ {
		w := r.owner[r.hashes[(i+n)%len(r.hashes)]]
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256, big-endian. SHA-256 (not FNV) so ring positions reuse the
// same well-mixed hash family as the cache addresses being routed.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
