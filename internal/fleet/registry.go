package fleet

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// probeDefaults tune the registry's health loop.
const (
	defaultProbeInterval = 2 * time.Second
	probeTimeout         = 3 * time.Second
	maxProbeBackoff      = 30 * time.Second
)

// WorkerInfo is a point-in-time snapshot of one worker's registry
// state, as rendered by GET /v1/workers and /metrics.
type WorkerInfo struct {
	URL   string `json:"url"`
	Ready bool   `json:"ready"`
	// Failures is the consecutive failed-probe count; the next probe of
	// a failing worker is delayed by an exponential backoff derived
	// from it.
	Failures  int    `json:"failures,omitempty"`
	LastError string `json:"last_error,omitempty"`
	// Slots, Queued and Running are scraped from the worker's /metrics
	// (delrepd_workers, delrepd_jobs_queued, delrepd_jobs_running);
	// zero until the first successful scrape.
	Slots   int `json:"slots,omitempty"`
	Queued  int `json:"queued,omitempty"`
	Running int `json:"running,omitempty"`
	// Outstanding is the coordinator's own count of jobs dispatched to
	// this worker and not yet terminal — fresher than any scrape, and
	// the primary load signal for routing and work stealing.
	Outstanding int `json:"outstanding"`
}

// worker is the registry's mutable record for one daemon.
type worker struct {
	url string

	mu          sync.Mutex
	ready       bool
	failures    int       // consecutive probe failures
	nextProbe   time.Time // backoff gate: skip probes before this
	lastErr     string
	slots       int
	queued      int
	running     int
	outstanding int
}

// Registry tracks worker health and load. Workers are probed on a
// fixed cadence via /readyz (with /metrics scraped on success for
// queue-depth observability); a failed probe — or a dispatch failure
// reported by the coordinator — marks the worker not ready and backs
// off its re-probe exponentially, so a dead machine costs a bounded
// trickle of connection attempts while it stays down.
type Registry struct {
	client   *http.Client
	interval time.Duration
	logger   *slog.Logger

	mu      sync.Mutex
	workers map[string]*worker

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewRegistry builds a registry over the worker base URLs and starts
// its probe loop. interval <= 0 selects the default cadence.
func NewRegistry(urls []string, interval time.Duration, client *http.Client, logger *slog.Logger) *Registry {
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	if client == nil {
		client = &http.Client{Timeout: probeTimeout}
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	r := &Registry{
		client:   client,
		interval: interval,
		logger:   logger,
		workers:  map[string]*worker{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range urls {
		u = strings.TrimRight(u, "/")
		if u == "" {
			continue
		}
		if _, dup := r.workers[u]; !dup {
			r.workers[u] = &worker{url: u}
		}
	}
	// Workers start not-ready and the first probe sweep runs
	// immediately, so a coordinator is routable as soon as its workers
	// answer /readyz once.
	go r.loop()
	return r
}

// Close stops the probe loop.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Registry) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	r.probeAll()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

func (r *Registry) probeAll() {
	var wg sync.WaitGroup
	for _, w := range r.snapshotWorkers() {
		w.mu.Lock()
		//simlint:ignore rngsource registry probe clock, outside any simulation
		skip := time.Now().Before(w.nextProbe)
		w.mu.Unlock()
		if skip {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			r.probe(w)
		}(w)
	}
	wg.Wait()
}

func (r *Registry) snapshotWorkers() []*worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*worker, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, w)
	}
	return out
}

// probe checks one worker's /readyz and, on success, scrapes its
// /metrics gauges.
func (r *Registry) probe(w *worker) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	err := r.checkReady(ctx, w.url)
	if err != nil {
		r.recordFailure(w, err.Error())
		return
	}
	slots, queued, running := r.scrapeMetrics(ctx, w.url)

	w.mu.Lock()
	wasReady := w.ready
	w.ready = true
	w.failures = 0
	w.nextProbe = time.Time{}
	w.lastErr = ""
	if slots > 0 {
		w.slots = slots
	}
	w.queued, w.running = queued, running
	w.mu.Unlock()
	if !wasReady {
		r.logger.InfoContext(ctx, "worker ready", "worker", w.url, "slots", slots)
	}
}

func (r *Registry) checkReady(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: status %d", resp.StatusCode)
	}
	return nil
}

// scrapeMetrics best-effort parses the worker's Prometheus text for
// the three load gauges. Scrape failures are ignored — readiness came
// from /readyz, and load falls back to the coordinator's own
// outstanding counts.
func (r *Registry) scrapeMetrics(ctx context.Context, url string) (slots, queued, running int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return 0, 0, 0
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, 0
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0, 0, 0
	}
	get := func(name string) int {
		for _, line := range strings.Split(string(body), "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				if n, err := strconv.Atoi(strings.TrimSpace(rest)); err == nil {
					return n
				}
			}
		}
		return 0
	}
	return get("delrepd_workers"), get("delrepd_jobs_queued"), get("delrepd_jobs_running")
}

// recordFailure marks a worker not ready and schedules its re-probe
// with exponential backoff (interval · 2^failures, capped).
func (r *Registry) recordFailure(w *worker, msg string) {
	w.mu.Lock()
	wasReady := w.ready
	w.ready = false
	w.failures++
	backoff := r.interval << min(w.failures, 10)
	if backoff > maxProbeBackoff {
		backoff = maxProbeBackoff
	}
	//simlint:ignore rngsource registry probe clock, outside any simulation
	w.nextProbe = time.Now().Add(backoff)
	w.lastErr = msg
	w.mu.Unlock()
	if wasReady {
		r.logger.Warn("worker down", "worker", w.url, "error", msg)
	}
}

// MarkFailed is the coordinator's fast path for dispatch-time
// failures: a connection error or 5xx while talking to the worker
// marks it not ready immediately, without waiting for the next probe
// cycle, so subsequent jobs fail over at once. The probe loop brings
// it back when /readyz answers again.
func (r *Registry) MarkFailed(url, msg string) {
	if w := r.lookup(url); w != nil {
		r.recordFailure(w, msg)
	}
}

func (r *Registry) lookup(url string) *worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.workers[url]
}

// Ready reports whether the worker is currently believed healthy.
func (r *Registry) Ready(url string) bool {
	w := r.lookup(url)
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ready
}

// AddOutstanding adjusts the coordinator-observed in-flight count for
// a worker (+1 at dispatch, -1 at terminal).
func (r *Registry) AddOutstanding(url string, d int) {
	if w := r.lookup(url); w != nil {
		w.mu.Lock()
		w.outstanding += d
		if w.outstanding < 0 {
			w.outstanding = 0
		}
		w.mu.Unlock()
	}
}

// Info snapshots one worker (zero value for unknown URLs).
func (r *Registry) Info(url string) WorkerInfo {
	w := r.lookup(url)
	if w == nil {
		return WorkerInfo{URL: url}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerInfo{
		URL: w.url, Ready: w.ready, Failures: w.failures, LastError: w.lastErr,
		Slots: w.slots, Queued: w.queued, Running: w.running, Outstanding: w.outstanding,
	}
}

// Infos snapshots every worker, sorted by URL order of the input is
// not preserved; callers sort as needed.
func (r *Registry) Infos() []WorkerInfo {
	out := make([]WorkerInfo, 0)
	for _, w := range r.snapshotWorkers() {
		out = append(out, r.Info(w.url))
	}
	return out
}

// ReadyCount returns how many workers are currently ready.
func (r *Registry) ReadyCount() int {
	n := 0
	for _, w := range r.snapshotWorkers() {
		if r.Ready(w.url) {
			n++
		}
	}
	return n
}
