package stats

import "math"

// fnv64 offset basis and prime (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest accumulates a 64-bit FNV-1a hash over typed observations. The
// determinism-audit harness folds every end-of-run counter and sampler
// into one Digest per run: two same-seed runs must produce bit-identical
// sums, so any nondeterminism anywhere in the simulated state surfaces
// as a one-line digest mismatch. The zero value is ready to use.
type Digest struct {
	h    uint64
	init bool
}

func (d *Digest) fold(b byte) {
	if !d.init {
		d.h = fnvOffset64
		d.init = true
	}
	d.h ^= uint64(b)
	d.h *= fnvPrime64
}

// Uint64 folds v into the digest.
func (d *Digest) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		d.fold(byte(v >> (8 * i)))
	}
}

// Int64 folds v into the digest.
func (d *Digest) Int64(v int64) { d.Uint64(uint64(v)) }

// Float64 folds the exact bit pattern of v into the digest; two runs
// that differ only in floating-point accumulation order are still a
// determinism violation.
func (d *Digest) Float64(v float64) { d.Uint64(math.Float64bits(v)) }

// String folds s into the digest.
func (d *Digest) String(s string) {
	for i := 0; i < len(s); i++ {
		d.fold(s[i])
	}
	d.fold(0xff) // terminator: "ab"+"c" != "a"+"bc"
}

// Sampler folds a sampler's complete internal state into the digest.
func (d *Digest) Sampler(s *Sampler) {
	d.Int64(s.count)
	d.Float64(s.sum)
	d.Float64(s.sumSq)
	d.Float64(s.min)
	d.Float64(s.max)
}

// Sum64 returns the current hash value.
func (d *Digest) Sum64() uint64 {
	if !d.init {
		return fnvOffset64
	}
	return d.h
}
