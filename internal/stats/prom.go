package stats

import (
	"fmt"
	"io"
)

// WriteProm writes the histogram in the Prometheus text exposition
// format under the given metric name: a `# TYPE` line, one cumulative
// `_bucket` sample per upper edge plus the `+Inf` bucket (which folds
// in the overflow count), then `_sum` and `_count`. The histogram's
// fixed-width buckets map directly onto `le` upper bounds, so a
// scraper reconstructs quantiles exactly as Percentile would.
func (h *Histogram) WriteProm(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	return h.WritePromLabeled(w, name, "")
}

// WritePromLabeled writes the histogram's samples with an extra label
// set merged into every sample (for example `priority="high"`), and no
// `# TYPE` header — the caller emits one TYPE line for the metric
// family and then one WritePromLabeled call per label value, which is
// how a family of per-class histograms shares a name. An empty labels
// string degenerates to WriteProm's sample format.
func (h *Histogram) WritePromLabeled(w io.Writer, name, labels string) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n",
			name, labels, sep, float64(i+1)*h.width, cum); err != nil {
			return err
		}
	}
	cum += h.overflow
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, brace, h.sampler.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, brace, cum)
	return err
}
