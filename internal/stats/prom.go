package stats

import (
	"fmt"
	"io"
)

// WriteProm writes the histogram in the Prometheus text exposition
// format under the given metric name: a `# TYPE` line, one cumulative
// `_bucket` sample per upper edge plus the `+Inf` bucket (which folds
// in the overflow count), then `_sum` and `_count`. The histogram's
// fixed-width buckets map directly onto `le` upper bounds, so a
// scraper reconstructs quantiles exactly as Percentile would.
func (h *Histogram) WriteProm(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n",
			name, float64(i+1)*h.width, cum); err != nil {
			return err
		}
	}
	cum += h.overflow
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, h.sampler.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}
