// Package stats provides lightweight counters, samplers, and table
// formatting used throughout the simulator. All types are plain values
// designed for single-threaded cycle-driven simulation; none of them
// are safe for concurrent use.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically adjustable event counter.
type Counter struct {
	n int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which may be negative) to the counter.
func (c *Counter) Add(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Sampler accumulates a stream of float64 observations and reports
// count, mean, min, max, and standard deviation. The zero value is
// ready to use.
type Sampler struct {
	count int64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Add records one observation.
func (s *Sampler) Add(v float64) {
	if s.count == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.count++
	s.sum += v
	s.sumSq += v * v
}

// Count returns the number of observations recorded.
func (s *Sampler) Count() int64 { return s.count }

// Sum returns the sum of all observations.
func (s *Sampler) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 if no observations exist.
func (s *Sampler) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest observation, or 0 if none exist.
func (s *Sampler) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 if none exist.
func (s *Sampler) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// StdDev returns the population standard deviation.
func (s *Sampler) StdDev() float64 {
	if s.count == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Reset discards all observations.
func (s *Sampler) Reset() { *s = Sampler{} }

// Histogram is a fixed-width bucketed histogram over [0, bucketWidth*len).
// Values past the last bucket land in the overflow bucket.
type Histogram struct {
	width    float64
	buckets  []int64
	overflow int64
	sampler  Sampler
}

// NewHistogram builds a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 {
		n = 1
	}
	if width <= 0 {
		width = 1
	}
	return &Histogram{width: width, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.sampler.Add(v)
	if v < 0 {
		v = 0
	}
	i := int(v / h.width)
	if i >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.sampler.Count() }

// Mean returns the mean of the recorded observations.
func (h *Histogram) Mean() float64 { return h.sampler.Mean() }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow returns the overflow-bucket count.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Percentile returns an approximate p-th percentile (p in [0,100]).
// Within the bucket containing the rank it interpolates assuming the
// bucket's observations are spread uniformly (midpoint convention), so
// a single observation reports the bucket midpoint rather than the
// lower edge — the lower-edge answer systematically underestimates by
// up to one bucket width.
func (h *Histogram) Percentile(p float64) float64 {
	total := h.sampler.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(total)))
	if rank <= 0 {
		rank = 1
	}
	var seen int64
	for i, b := range h.buckets {
		if b > 0 && seen+b >= rank {
			frac := (float64(rank) - 0.5 - float64(seen)) / float64(b)
			return (float64(i) + frac) * h.width
		}
		seen += b
	}
	return float64(len(h.buckets)) * h.width
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.overflow = 0
	h.sampler.Reset()
}

// Ratio returns a/b or 0 when b is zero; a convenience for rate metrics.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// HarmonicMean returns the harmonic mean of the values; zero or negative
// values are skipped (they would otherwise dominate or break the mean).
func HarmonicMean(vs []float64) float64 {
	var inv float64
	var n int
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		inv += 1 / v
		n++
	}
	if n == 0 || inv == 0 {
		return 0
	}
	return float64(n) / inv
}

// GeoMean returns the geometric mean of the positive values.
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of the values (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Table is a simple fixed-column text table used by the experiment
// driver to print figure/table reproductions.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns. Rows may carry more
// cells than there are headers (or fewer); the widths cover the widest
// row so no cell is ever out of range.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortRows sorts rows lexicographically by the given column index.
func (t *Table) SortRows(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		return t.rows[i][col] < t.rows[j][col]
	})
}
