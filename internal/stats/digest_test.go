package stats

import "testing"

func TestDigestDeterministic(t *testing.T) {
	mk := func() uint64 {
		var d Digest
		d.Int64(42)
		d.Float64(3.25)
		d.String("scheme=DelegatedReplies")
		var s Sampler
		s.Add(1.5)
		s.Add(-2)
		d.Sampler(&s)
		return d.Sum64()
	}
	if mk() != mk() {
		t.Fatal("identical observation streams produced different digests")
	}
}

func TestDigestSensitive(t *testing.T) {
	base := func(v int64) uint64 {
		var d Digest
		d.Int64(v)
		return d.Sum64()
	}
	if base(1) == base(2) {
		t.Fatal("digest did not change with its input")
	}
	var a, b Digest
	a.String("ab")
	a.String("c")
	b.String("a")
	b.String("bc")
	if a.Sum64() == b.Sum64() {
		t.Fatal("string framing is ambiguous: ab+c == a+bc")
	}
}
