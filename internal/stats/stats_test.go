package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Add(-2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
}

func TestSamplerBasics(t *testing.T) {
	var s Sampler
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sampler should report zeros")
	}
	for _, v := range []float64{2, 4, 6} {
		s.Add(v)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 4 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.StdDev(), want)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSamplerNegativeValues(t *testing.T) {
	var s Sampler
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("got min=%v max=%v mean=%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestSamplerInvariantsQuick(t *testing.T) {
	f := func(raw []int32) bool {
		var s Sampler
		ok := true
		for _, v := range raw {
			s.Add(float64(v))
		}
		if s.Count() > 0 {
			ok = ok && s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6
			ok = ok && s.StdDev() >= 0
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Bucket(0) != 10 {
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Overflow() != 0 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	h.Add(1e9)
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if p := h.Percentile(50); p < 40 || p > 60 {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(99); p < 80 {
		t.Fatalf("p99 = %v", p)
	}
	h.Reset()
	if h.Count() != 0 || h.Overflow() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramPercentileInterpolation(t *testing.T) {
	// 0..99 into width-10 buckets: interpolated percentiles land inside
	// the bucket instead of on its lower edge.
	h := NewHistogram(10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if p := h.Percentile(50); math.Abs(p-49.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 49.5", p)
	}
	if p := h.Percentile(99); math.Abs(p-98.5) > 1e-9 {
		t.Fatalf("p99 = %v, want 98.5", p)
	}
	// A single observation reports its bucket's midpoint, not the lower
	// edge (the old bias: any percentile of {5} came back as 0).
	s := NewHistogram(10, 10)
	s.Add(5)
	for _, p := range []float64{1, 50, 99} {
		if got := s.Percentile(p); math.Abs(got-5) > 1e-9 {
			t.Fatalf("p%v of single mid-bucket value = %v, want 5", p, got)
		}
	}
	// Percentiles stay within the observed bucket's bounds.
	if p := h.Percentile(0); p < 0 || p > 10 {
		t.Fatalf("p0 = %v, outside first bucket", p)
	}
	if p := h.Percentile(100); p < 90 || p > 100 {
		t.Fatalf("p100 = %v, outside last bucket", p)
	}
	// Empty histogram still reports 0.
	if NewHistogram(10, 10).Percentile(50) != 0 {
		t.Fatal("empty histogram percentile != 0")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(4, 1)
	h.Add(-3)
	if h.Bucket(0) != 1 {
		t.Fatal("negative value should land in bucket 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatalf("ratio = %v", Ratio(3, 4))
	}
}

func TestMeans(t *testing.T) {
	vs := []float64{1, 2, 4}
	if m := Mean(vs); math.Abs(m-7.0/3) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	if m := GeoMean(vs); math.Abs(m-2) > 1e-12 {
		t.Fatalf("geomean = %v", m)
	}
	hm := HarmonicMean(vs)
	want := 3.0 / (1 + 0.5 + 0.25)
	if math.Abs(hm-want) > 1e-12 {
		t.Fatalf("hmean = %v, want %v", hm, want)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 || HarmonicMean(nil) != 0 {
		t.Fatal("empty means should be 0")
	}
	// Non-positive values are skipped.
	if m := HarmonicMean([]float64{0, -1, 2}); m != 2 {
		t.Fatalf("hmean with nonpositives = %v", m)
	}
}

func TestMeanOrderingQuick(t *testing.T) {
	// HM <= GM <= AM for positive values.
	f := func(raw []uint16) bool {
		var vs []float64
		for _, v := range raw {
			vs = append(vs, float64(v)+1)
		}
		if len(vs) == 0 {
			return true
		}
		hm, gm, am := HarmonicMean(vs), GeoMean(vs), Mean(vs)
		return hm <= gm+1e-9 && gm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("title", "A", "BB")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer", "cell")
	out := tb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "1.500") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	tb.SortRows(0)
	out2 := tb.String()
	if strings.Index(out2, "longer") > strings.Index(out2, "x") {
		t.Fatalf("rows not sorted:\n%s", out2)
	}
}

func TestTableWideRow(t *testing.T) {
	// A row with more cells than headers must render instead of
	// panicking with an index out of range.
	tb := NewTable("", "A", "B")
	tb.AddRow("x", "y", "extra", "more")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "more") {
		t.Fatalf("wide row cells missing:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Fatalf("narrow row missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}
