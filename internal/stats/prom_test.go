package stats

import (
	"strings"
	"testing"
)

func TestHistogramWriteProm(t *testing.T) {
	h := NewHistogram(3, 0.5)
	for _, v := range []float64{0.1, 0.2, 0.6, 1.4, 9} { // 9 overflows
		h.Add(v)
	}
	var b strings.Builder
	if err := h.WriteProm(&b, "job_seconds"); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE job_seconds histogram
job_seconds_bucket{le="0.5"} 2
job_seconds_bucket{le="1"} 3
job_seconds_bucket{le="1.5"} 4
job_seconds_bucket{le="+Inf"} 5
job_seconds_sum 11.3
job_seconds_count 5
`
	if b.String() != want {
		t.Fatalf("WriteProm output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramWritePromLabeled(t *testing.T) {
	h := NewHistogram(2, 1)
	h.Add(0.5)
	h.Add(1.5)
	var b strings.Builder
	if err := h.WritePromLabeled(&b, "wait_seconds", `priority="high"`); err != nil {
		t.Fatal(err)
	}
	want := `wait_seconds_bucket{priority="high",le="1"} 1
wait_seconds_bucket{priority="high",le="2"} 2
wait_seconds_bucket{priority="high",le="+Inf"} 2
wait_seconds_sum{priority="high"} 2
wait_seconds_count{priority="high"} 2
`
	if b.String() != want {
		t.Fatalf("WritePromLabeled output:\n%s\nwant:\n%s", b.String(), want)
	}
	// Empty labels reproduce the unlabeled sample format.
	var plain strings.Builder
	if err := h.WritePromLabeled(&plain, "wait_seconds", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.String(), `wait_seconds_bucket{le="1"} 1`) ||
		!strings.Contains(plain.String(), "wait_seconds_count 2") {
		t.Fatalf("unlabeled output:\n%s", plain.String())
	}
}

func TestHistogramWritePromEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewHistogram(2, 10).WriteProm(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x_bucket{le="+Inf"} 0`) ||
		!strings.Contains(b.String(), "x_count 0") {
		t.Fatalf("empty histogram exposition:\n%s", b.String())
	}
}
