package cpu

import (
	"testing"
	"testing/quick"

	"delrep/internal/cache"
	"delrep/internal/workload"
)

// fakeSender records or refuses requests.
type fakeSender struct {
	accept bool
	lines  []cache.Addr
}

func (f *fakeSender) SendCPURead(node int, line cache.Addr) bool {
	if !f.accept {
		return false
	}
	f.lines = append(f.lines, line)
	return true
}

func prof(name string) workload.CPUProfile { return workload.CPUProfileByName(name) }

func TestInjectionRatePacing(t *testing.T) {
	s := &fakeSender{accept: true}
	p := prof("dedup") // high MLP so the gap is the limiter
	c := New(0, p, s, 1)
	cycles := 20000
	for i := 0; i < cycles; i++ {
		c.Tick()
		// Complete immediately: latency never throttles.
		for _, l := range s.lines {
			c.ReplyArrived(l)
		}
		s.lines = s.lines[:0]
	}
	rate := float64(c.Issued) / float64(cycles)
	if rate < p.InjRate*0.8 || rate > p.InjRate*1.2 {
		t.Fatalf("rate %.4f, want ~%.4f", rate, p.InjRate)
	}
}

func TestMLPThrottle(t *testing.T) {
	s := &fakeSender{accept: true}
	p := prof("vips") // MLP 2
	c := New(0, p, s, 1)
	for i := 0; i < 5000; i++ {
		c.Tick() // never complete anything
		if c.Outstanding() > p.MLP {
			t.Fatalf("outstanding %d exceeds MLP %d", c.Outstanding(), p.MLP)
		}
	}
	if c.Outstanding() != p.MLP {
		t.Fatalf("outstanding %d, want MLP %d", c.Outstanding(), p.MLP)
	}
	if c.ThrottleMLP == 0 {
		t.Fatal("no MLP throttle events")
	}
}

func TestLatencyRecorded(t *testing.T) {
	s := &fakeSender{accept: true}
	c := New(0, prof("vips"), s, 1)
	for i := 0; i < 200 && len(s.lines) == 0; i++ {
		c.Tick()
	}
	if len(s.lines) == 0 {
		t.Fatal("no request issued")
	}
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	c.ReplyArrived(s.lines[0])
	if c.Completed != 1 {
		t.Fatal("completion not counted")
	}
	if c.Lat.Mean() < 50 {
		t.Fatalf("latency %.1f, want >= 50", c.Lat.Mean())
	}
}

func TestReplyWithoutRequestPanics(t *testing.T) {
	c := New(0, prof("vips"), &fakeSender{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.ReplyArrived(12345)
}

func TestDuplicateLineRequests(t *testing.T) {
	// Two outstanding requests for the same line must complete in FIFO
	// order without losing either.
	s := &fakeSender{accept: true}
	p := prof("dedup")
	c := New(0, p, s, 1)
	for i := 0; i < 100000 && c.Outstanding() < 2; i++ {
		c.Tick()
		// Funnel all requests onto one line by completing none.
	}
	// Synthesize duplicates directly: the generator may not repeat, so
	// exercise ReplyArrived with stacked timestamps via the map.
	line := s.lines[0]
	c.sent[line] = append(c.sent[line], c.now)
	c.outstanding++
	before := c.Completed
	c.ReplyArrived(line)
	c.ReplyArrived(line)
	if c.Completed != before+2 {
		t.Fatal("duplicate completions lost")
	}
}

func TestRefusedSendRetries(t *testing.T) {
	s := &fakeSender{accept: false}
	c := New(0, prof("vips"), s, 1)
	for i := 0; i < 1000; i++ {
		c.Tick()
	}
	if c.Issued != 0 {
		t.Fatal("issued despite refusal")
	}
	s.accept = true
	for i := 0; i < 1000; i++ {
		c.Tick()
	}
	if c.Issued == 0 {
		t.Fatal("never issued after acceptance")
	}
}

func TestAddressesWithinRegion(t *testing.T) {
	s := &fakeSender{accept: true}
	node := 17
	c := New(node, prof("canneal"), s, 1)
	for i := 0; i < 50000; i++ {
		c.Tick()
		for _, l := range s.lines {
			base := cache.Addr(CPUBase + uint64(node)*RegionLines)
			if l < base || l >= base+RegionLines {
				t.Fatalf("address %d outside region [%d,%d)", l, base, base+RegionLines)
			}
			c.ReplyArrived(l)
		}
		s.lines = s.lines[:0]
	}
}

func TestOutstandingNeverNegativeQuick(t *testing.T) {
	f := func(seed int64, completeEvery uint8) bool {
		s := &fakeSender{accept: true}
		c := New(0, prof("ferret"), s, seed)
		step := int(completeEvery%7) + 1
		for i := 0; i < 2000; i++ {
			c.Tick()
			if i%step == 0 {
				for _, l := range s.lines {
					c.ReplyArrived(l)
				}
				s.lines = s.lines[:0]
			}
			if c.Outstanding() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputAndReset(t *testing.T) {
	s := &fakeSender{accept: true}
	c := New(0, prof("dedup"), s, 1)
	for i := 0; i < 1000; i++ {
		c.Tick()
		for _, l := range s.lines {
			c.ReplyArrived(l)
		}
		s.lines = s.lines[:0]
	}
	if c.Throughput(1000) <= 0 {
		t.Fatal("zero throughput")
	}
	c.ResetStats()
	if c.Completed != 0 || c.Issued != 0 || c.Lat.Count() != 0 {
		t.Fatal("stats not reset")
	}
}
