// Package cpu models the latency-sensitive CPU cores as
// dependency-throttled network trace injectors, following the paper's
// Netrace methodology: each core issues read requests at its
// benchmark's nominal rate, bounded by its memory-level parallelism,
// and performance is the achieved request throughput. A benchmark with
// small MLP becomes latency-bound as soon as the network latency
// exceeds MLP/rate, which reproduces the published spread between
// latency-sensitive (vips) and latency-tolerant (dedup) workloads.
package cpu

import (
	"math/rand"

	"delrep/internal/cache"
	"delrep/internal/stats"
	"delrep/internal/workload"
)

// CPUBase carves the CPU address region away from the GPU regions.
const CPUBase = 3 << 30

// RegionLines is the per-core footprint in 128 B lines, sized so CPU
// traffic sees a realistic LLC hit rate rather than streaming past it.
const RegionLines = 1 << 10

// Sender abstracts how the core hands a read request to the memory
// system (implemented by the core package's system wiring).
type Sender interface {
	// SendCPURead issues a read for the line from this core's node;
	// it reports whether the request was accepted this cycle.
	SendCPURead(node int, line cache.Addr) bool
}

// Core is one CPU core.
type Core struct {
	Node int
	prof workload.CPUProfile
	rng  *rand.Rand
	out  Sender

	gap         int64
	sinceIssue  int64
	outstanding int
	sent        map[cache.Addr][]int64 // line -> issue cycles (FIFO per line)
	seq         uint64
	now         int64

	// Statistics.
	Completed   int64
	Issued      int64
	Lat         stats.Sampler
	ThrottleMLP int64
}

// New builds a CPU core for the given node running the profile.
func New(node int, prof workload.CPUProfile, out Sender, seed int64) *Core {
	gap := int64(1)
	if prof.InjRate > 0 {
		gap = int64(1/prof.InjRate + 0.5)
	}
	if gap < 1 {
		gap = 1
	}
	return &Core{
		Node: node, prof: prof, out: out,
		rng:  rand.New(rand.NewSource(seed ^ int64(node)*0x51 + 7)),
		gap:  gap,
		sent: make(map[cache.Addr][]int64),
	}
}

// nextLine draws the next line address: a sequential walk with random
// jumps over the core's private region.
func (c *Core) nextLine() cache.Addr {
	if c.rng.Float64() < c.prof.SeqP {
		c.seq++
	} else {
		c.seq = uint64(c.rng.Intn(RegionLines))
	}
	c.seq %= RegionLines
	return cache.Addr(CPUBase + uint64(c.Node)*RegionLines + c.seq)
}

// Tick issues at most one request per cycle when the inter-arrival gap
// has elapsed and the MLP window has room.
func (c *Core) Tick() {
	c.now++
	c.sinceIssue++
	if c.sinceIssue < c.gap {
		return
	}
	if c.outstanding >= c.prof.MLP {
		c.ThrottleMLP++
		return
	}
	line := c.nextLine()
	if !c.out.SendCPURead(c.Node, line) {
		return // network interface full; retry next cycle
	}
	c.sent[line] = append(c.sent[line], c.now)
	c.outstanding++
	c.Issued++
	c.sinceIssue = 0
}

// ReplyArrived records the completion of an outstanding read.
func (c *Core) ReplyArrived(line cache.Addr) {
	times := c.sent[line]
	if len(times) == 0 {
		panic("cpu: reply for line with no outstanding request")
	}
	c.Lat.Add(float64(c.now - times[0]))
	if len(times) == 1 {
		delete(c.sent, line)
	} else {
		c.sent[line] = times[1:]
	}
	c.outstanding--
	c.Completed++
}

// Outstanding returns the in-flight request count.
func (c *Core) Outstanding() int { return c.outstanding }

// Throughput returns completed requests per cycle over the window.
func (c *Core) Throughput(cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(c.Completed) / float64(cycles)
}

// ResetStats zeroes the measurement counters (end of warmup).
func (c *Core) ResetStats() {
	c.Completed, c.Issued, c.ThrottleMLP = 0, 0, 0
	c.Lat.Reset()
}
