package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: each trace record becomes one track
// (tid = packet ID) of "X" complete events covering the packet's
// lifecycle phases — inject queueing, per-hop VC-allocation wait,
// switch wait, link serialization, wire flight, and ejection — in
// cycle units (the viewer's "us" are simulator cycles). The output
// loads directly into Perfetto / chrome://tracing.
//
// The encoder itself (Event, WriteChromeTrace) is exported so other
// layers — notably internal/telemetry's served-job span trees — emit
// the same format, and an in-sim packet trace and a served job's
// timeline open in the same viewer.

// Event is one Chrome trace-event object: a complete slice ("X"), an
// instant ("i"), or metadata ("M"). TS and Dur are in the viewer's
// microsecond unit; the simulator maps cycles onto it 1:1.
type Event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceDoc is the top-level Chrome trace JSON object.
type traceDoc struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events as a complete Chrome trace-event JSON
// document, loadable by Perfetto / chrome://tracing. A nil events
// slice produces a valid empty document.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	return json.NewEncoder(w).Encode(traceDoc{DisplayTimeUnit: "ns", TraceEvents: events})
}

// slice appends one complete event when both endpoints are stamped and
// the duration is non-negative.
func slice(evs []Event, name, cat string, from, to int64, tid uint64, args map[string]any) []Event {
	if from < 0 || to < from {
		return evs
	}
	return append(evs, Event{
		Name: name, Phase: "X", TS: from, Dur: to - from,
		PID: 0, TID: tid, Cat: cat, Args: args,
	})
}

// WriteTrace exports the retained lifecycle traces as Chrome
// trace-event JSON. Run-end only.
func (o *Observer) WriteTrace(w io.Writer) error {
	evs := []Event{}
	for i := range o.traces {
		evs = appendPacketEvents(evs, &o.traces[i])
	}
	return WriteChromeTrace(w, evs)
}

// appendPacketEvents renders one packet's lifecycle onto its track.
func appendPacketEvents(evs []Event, t *TraceRecord) []Event {
	tid := t.ID
	label := fmt.Sprintf("pkt %d %s %d->%d", t.ID, t.Class, t.Src, t.Dst)
	if t.Payload != "" {
		label += " " + t.Payload
	}
	if t.Aborted != "" {
		label += " [" + t.Aborted + "]"
	}
	evs = append(evs, Event{
		Name: "thread_name", Phase: "M", PID: 0, TID: tid,
		Args: map[string]any{"name": label},
	})

	meta := map[string]any{
		"id": t.ID, "src": t.Src, "dst": t.Dst,
		"class": t.Class.String(), "flits": t.Flits,
	}
	if t.Origin != 0 {
		meta["origin_pkt"] = t.Origin
	}
	if t.Aborted != "" {
		meta["aborted"] = t.Aborted
	}

	// Source-side queueing: from when the packet was both enqueued and
	// ready until its head flit entered the router.
	qStart := t.Enqueued
	if t.ReadyAt > qStart {
		qStart = t.ReadyAt
	}
	injected := t.Injected
	if injected <= 0 && t.Aborted != "" {
		// Never injected (delegated out of the queue): the whole life
		// is queueing, ending at the abort cycle.
		evs = slice(evs, "queue", "ni", qStart, t.Ejected, tid, meta)
		return evs
	}
	evs = slice(evs, "queue", "ni", qStart, injected, tid, meta)

	for i := range t.Hops {
		h := &t.Hops[i]
		at := fmt.Sprintf(" @r%d", h.Router)
		evs = slice(evs, "vc_wait"+at, "router", h.Arrive, h.VCAlloc, tid, nil)
		evs = slice(evs, "switch_wait"+at, "router", h.VCAlloc, h.Depart, tid, nil)
		evs = slice(evs, "serialize"+at, "router", h.Depart, h.TailDepart, tid, nil)
		if i+1 < len(t.Hops) && h.Depart >= 0 && t.Hops[i+1].Arrive > h.Depart {
			evs = slice(evs, "link", "wire", h.Depart, t.Hops[i+1].Arrive, tid, nil)
		}
	}
	if n := len(t.Hops); n > 0 && t.Ejected > 0 {
		last := &t.Hops[n-1]
		from := last.TailDepart
		if from < 0 {
			from = last.Depart
		}
		evs = slice(evs, "eject", "ni", from, t.Ejected, tid, nil)
	}
	return evs
}
