package obs

import (
	"fmt"
	"io"
)

// ClogSource describes one observation point for the clog detector —
// in practice a memory node's reply port: the links its replies leave
// on, the bounded injection queue behind them, and the node's blocked
// counter. All closures read cumulative or instantaneous simulator
// state and must be pure.
type ClogSource struct {
	Name string
	// Ports returns cumulative flits sent per outgoing link; the
	// detector differences them per window and takes the busiest link
	// as the port utilization.
	Ports []func() float64
	// QLen / QCap observe the bounded injection queue (packets).
	QLen func() int
	QCap int
	// Blocked returns the cumulative cycles the source could not push
	// a flit (optional; nil means unknown).
	Blocked func() float64
}

// ClogEvent is one flagged window: the source's busiest reply link ran
// above the utilization threshold while its injection queue grew (or
// sat full) — the paper's Figure-1 clogging signature.
type ClogEvent struct {
	Source      string
	Start, End  int64 // window bounds in cycles
	Util        float64
	QStart      int
	QEnd        int
	QCap        int
	BlockedFrac float64 // fraction of the window spent blocked (-1 unknown)
}

// clogState is the per-source differencing state.
type clogState struct {
	src       ClogSource
	lastSent  []float64
	lastQ     int
	lastBlock float64
}

// Detector watches registered sources at every window boundary and
// records clog events. Detection runs in the tick path (pure); the
// narrative rendering is run-end only.
type Detector struct {
	window    int64
	threshold float64
	maxEvents int

	sources []*clogState
	events  []ClogEvent
	dropped int64
	total   int64 // events observed including dropped
	lastEnd int64
}

func newDetector(window int64, threshold float64, maxEvents int) *Detector {
	return &Detector{
		window:    window,
		threshold: threshold,
		maxEvents: maxEvents,
		events:    make([]ClogEvent, 0, maxEvents),
	}
}

// Threshold returns the utilization threshold in effect.
func (d *Detector) Threshold() float64 { return d.threshold }

// AddSource registers an observation point. Call during wiring, before
// the run starts.
func (d *Detector) AddSource(s ClogSource) {
	d.sources = append(d.sources, &clogState{
		src:      s,
		lastSent: make([]float64, len(s.Ports)),
	})
}

// sample evaluates every source for the window ending at cycle.
func (d *Detector) sample(cycle int64) {
	start := d.lastEnd
	d.lastEnd = cycle
	for _, st := range d.sources {
		var maxUtil float64
		for i, port := range st.src.Ports {
			cur := port()
			delta := cur - st.lastSent[i]
			if delta < 0 {
				delta = cur // counter reset at the warm-up boundary
			}
			st.lastSent[i] = cur
			if u := delta / float64(d.window); u > maxUtil {
				maxUtil = u
			}
		}
		q := 0
		if st.src.QLen != nil {
			q = st.src.QLen()
		}
		blockedFrac := -1.0
		if st.src.Blocked != nil {
			cur := st.src.Blocked()
			delta := cur - st.lastBlock
			if delta < 0 {
				delta = cur
			}
			st.lastBlock = cur
			blockedFrac = delta / float64(d.window)
		}
		qStart := st.lastQ
		st.lastQ = q
		// Clog signature: the busiest reply link is saturated while the
		// bounded queue behind it grows or pins at capacity.
		if maxUtil >= d.threshold && (q > qStart || (st.src.QCap > 0 && q >= st.src.QCap)) {
			d.total++
			if len(d.events) >= d.maxEvents {
				d.dropped++
				continue
			}
			d.events = append(d.events, ClogEvent{
				Source: st.src.Name, Start: start, End: cycle,
				Util: maxUtil, QStart: qStart, QEnd: q, QCap: st.src.QCap,
				BlockedFrac: blockedFrac,
			})
		}
	}
}

// Events returns the retained clog events in detection order.
func (d *Detector) Events() []ClogEvent { return d.events }

// EventCount returns the total flagged windows, including any dropped
// beyond the retention bound.
func (d *Detector) EventCount() int64 { return d.total }

// Narrative writes a human-readable account of the detected clogging,
// grouping consecutive flagged windows of one source into episodes —
// a Figure-1-style story of when and where the reply path clogged.
// Run-end only.
func (d *Detector) Narrative(w io.Writer) error {
	if len(d.events) == 0 {
		_, err := fmt.Fprintf(w, "no clog episodes detected (threshold %.0f%% port utilization)\n", d.threshold*100)
		return err
	}
	type episode struct {
		source     string
		start, end int64
		windows    int
		peakUtil   float64
		peakQ      int
		qCap       int
		blocked    float64 // mean blocked fraction over windows with data
		blockedN   int
	}
	var eps []*episode
	open := map[string]*episode{}
	for _, ev := range d.events {
		e := open[ev.Source]
		if e == nil || ev.Start > e.end {
			e = &episode{source: ev.Source, start: ev.Start, end: ev.End, qCap: ev.QCap}
			open[ev.Source] = e
			eps = append(eps, e)
		}
		e.end = ev.End
		e.windows++
		if ev.Util > e.peakUtil {
			e.peakUtil = ev.Util
		}
		if ev.QEnd > e.peakQ {
			e.peakQ = ev.QEnd
		}
		if ev.BlockedFrac >= 0 {
			e.blocked += ev.BlockedFrac
			e.blockedN++
		}
	}
	if _, err := fmt.Fprintf(w, "%d clog episode(s) across %d flagged window(s) (threshold %.0f%%):\n",
		len(eps), d.total, d.threshold*100); err != nil {
		return err
	}
	for _, e := range eps {
		line := fmt.Sprintf("  %-10s cycles %7d..%-7d  %2d window(s)  peak util %5.1f%%  queue peak %d/%d",
			e.source, e.start, e.end, e.windows, e.peakUtil*100, e.peakQ, e.qCap)
		if e.blockedN > 0 {
			line += fmt.Sprintf("  blocked %4.1f%% of cycles", e.blocked/float64(e.blockedN)*100)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if d.dropped > 0 {
		if _, err := fmt.Fprintf(w, "  (%d flagged window(s) beyond the retention bound were dropped)\n", d.dropped); err != nil {
			return err
		}
	}
	return nil
}
