package obs

import (
	"strings"
	"testing"
)

// clogHarness drives a Detector through scripted windows.
type clogHarness struct {
	sent    float64
	qlen    int
	blocked float64
}

func newClogDetector(h *clogHarness, thr float64) *Detector {
	d := newDetector(100, thr, 16)
	d.AddSource(ClogSource{
		Name:    "mem0",
		Ports:   []func() float64{func() float64 { return h.sent }},
		QLen:    func() int { return h.qlen },
		QCap:    8,
		Blocked: func() float64 { return h.blocked },
	})
	return d
}

func TestClogDetection(t *testing.T) {
	h := &clogHarness{}
	d := newClogDetector(h, 0.85)

	// Window 1: light traffic, empty queue — no event.
	h.sent, h.qlen = 30, 0
	d.sample(100)
	// Window 2: saturated link but queue did not grow — no event.
	h.sent = 130
	d.sample(200)
	// Window 3: saturated link and the queue grew — clog.
	h.sent, h.qlen, h.blocked = 225, 4, 20
	d.sample(300)
	// Window 4: saturated and queue pinned at capacity — clog.
	h.sent, h.qlen, h.blocked = 320, 8, 60
	d.sample(400)
	// Window 5: traffic fell below threshold — no event.
	h.sent, h.qlen = 360, 8
	d.sample(500)

	evs := d.Events()
	if len(evs) != 2 || d.EventCount() != 2 {
		t.Fatalf("events = %d (total %d), want 2", len(evs), d.EventCount())
	}
	e := evs[0]
	if e.Source != "mem0" || e.Start != 200 || e.End != 300 {
		t.Fatalf("event window = %+v", e)
	}
	if e.Util != 0.95 {
		t.Fatalf("event util = %v, want 0.95", e.Util)
	}
	if e.QStart != 0 || e.QEnd != 4 || e.QCap != 8 {
		t.Fatalf("event queue = %+v", e)
	}
	if e.BlockedFrac != 0.2 {
		t.Fatalf("blocked frac = %v, want 0.2", e.BlockedFrac)
	}

	var b strings.Builder
	if err := d.Narrative(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "1 clog episode(s)") {
		t.Fatalf("expected one merged episode (consecutive windows), got:\n%s", out)
	}
	if !strings.Contains(out, "mem0") || !strings.Contains(out, "200..400") {
		t.Fatalf("narrative missing source/span:\n%s", out)
	}
}

func TestClogQuietNarrative(t *testing.T) {
	h := &clogHarness{}
	d := newClogDetector(h, 0.85)
	h.sent = 10
	d.sample(100)
	var b strings.Builder
	if err := d.Narrative(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no clog episodes") {
		t.Fatalf("quiet narrative = %q", b.String())
	}
}

func TestClogCounterResetGuard(t *testing.T) {
	h := &clogHarness{}
	d := newClogDetector(h, 0.85)
	h.sent, h.qlen = 100, 2
	d.sample(100)
	// ResetStats shrank the cumulative counter; the delta must
	// re-baseline instead of going negative.
	h.sent, h.qlen = 95, 5
	d.sample(200)
	evs := d.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2 (both windows saturated with growth)", len(evs))
	}
	if evs[1].Util != 0.95 {
		t.Fatalf("post-reset util = %v, want 0.95 (re-baselined)", evs[1].Util)
	}
}
