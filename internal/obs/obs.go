// Package obs is the simulator's observability layer: windowed metric
// time series, deterministic packet-lifecycle tracing, and online clog
// detection. It is strictly measurement-only — attaching an Observer
// must never change simulated behaviour — and zero-overhead when
// disabled (the hooks in noc/core are nil checks on untraced packets).
//
// Everything reachable from Tick obeys the simulator's tick-purity
// rule: no I/O, no wall-clock, no map iteration; samples and trace
// records accumulate in preallocated memory and are flushed by the
// caller after the run via WriteMetricsJSON / WriteTrace / Narrative.
package obs

import "delrep/internal/noc"

// Options configures an Observer. The zero value of each field selects
// a sensible default, except TraceSample where 0 disables tracing.
type Options struct {
	// Window is the metric sampling period in cycles (default 1000).
	Window int64
	// RingDepth is how many windows each probe retains (default 4096).
	RingDepth int
	// TraceSample enables lifecycle tracing of every N-th packet
	// (packet ID modulo N — deterministic, no RNG). 0 disables tracing.
	TraceSample uint64
	// MaxTraces bounds retained trace records (default 4096); further
	// sampled packets are counted as dropped, not traced.
	MaxTraces int
	// ClogUtil is the reply-port utilization threshold above which a
	// window with growing queue occupancy is flagged (default 0.85).
	ClogUtil float64
	// MaxClogEvents bounds retained clog events (default 4096).
	MaxClogEvents int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 1000
	}
	if o.RingDepth <= 0 {
		o.RingDepth = 4096
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = 4096
	}
	if o.ClogUtil <= 0 {
		o.ClogUtil = 0.85
	}
	if o.MaxClogEvents <= 0 {
		o.MaxClogEvents = 4096
	}
	return o
}

// TraceRecord is one completed packet lifecycle, flattened from the
// live noc.PacketTrace at ejection (or delegation) time.
type TraceRecord struct {
	ID       uint64
	Src, Dst int
	Class    noc.Class
	Prio     noc.Priority
	Flits    int
	Payload  string // human-readable payload tag (via Observer.Describe)

	Enqueued int64
	ReadyAt  int64
	Injected int64
	Ejected  int64

	Origin  uint64 // packet this one was derived from (delegation), 0 if none
	Aborted string // why the packet left the network without ejecting
	Hops    []noc.HopTrace
}

// Observer owns the metric registry, trace buffer, and clog detector
// for one simulated system.
type Observer struct {
	opts Options

	// Reg holds the windowed metric probes.
	Reg *Registry
	// Clog is the online clog detector (always present; it only fires
	// if sources are registered).
	Clog *Detector

	// Describe renders a packet payload for trace records. Set by the
	// wiring layer (core) which knows the payload type; must be pure.
	Describe func(payload any) string

	traces        []TraceRecord
	tracesDropped int64
	nextSample    int64
}

// New builds an Observer from options (zero fields take defaults).
func New(o Options) *Observer {
	o = o.withDefaults()
	return &Observer{
		opts:       o,
		Reg:        NewRegistry(o.Window, o.RingDepth),
		Clog:       newDetector(o.Window, o.ClogUtil, o.MaxClogEvents),
		traces:     make([]TraceRecord, 0, o.MaxTraces),
		nextSample: o.Window,
	}
}

// Options returns the effective (defaulted) options.
func (o *Observer) Options() Options { return o.opts }

// Tick advances the observer clock; at window boundaries it samples
// every probe and runs the clog detector. Pure: no I/O, no maps.
func (o *Observer) Tick(cycle int64) {
	if cycle < o.nextSample {
		return
	}
	o.Reg.sample(cycle)
	o.Clog.sample(cycle)
	o.nextSample += o.opts.Window
}

// TraceFor returns a fresh trace for packet id if tracing is enabled
// and the deterministic 1-in-N sampler selects it, else nil. The
// caller attaches the result to the packet.
func (o *Observer) TraceFor(id uint64) *noc.PacketTrace {
	if o.opts.TraceSample == 0 || id%o.opts.TraceSample != 0 {
		return nil
	}
	if len(o.traces) >= o.opts.MaxTraces {
		o.tracesDropped++
		return nil
	}
	return &noc.PacketTrace{}
}

// PacketCompleted flattens an ejected traced packet into the trace
// buffer. Installed as each network's TraceSink; runs in the tick
// path, so it only copies into preallocated memory.
func (o *Observer) PacketCompleted(p *noc.Packet) {
	if p.Trace == nil {
		return
	}
	if len(o.traces) >= cap(o.traces) {
		// Successor traces created outside TraceFor (delegation) can
		// overshoot MaxTraces; drop rather than grow the buffer.
		o.tracesDropped++
		return
	}
	rec := TraceRecord{
		ID: p.ID, Src: p.Src, Dst: p.Dst,
		Class: p.Class, Prio: p.Prio, Flits: p.SizeFlits,
		Enqueued: p.Enqueued, ReadyAt: p.ReadyAt,
		Injected: p.Injected, Ejected: p.Ejected,
		Origin: p.Trace.Origin, Aborted: p.Trace.Aborted,
	}
	rec.Hops = append(rec.Hops, p.Trace.Hops...)
	if o.Describe != nil {
		rec.Payload = o.Describe(p.Payload)
	}
	o.traces = append(o.traces, rec)
}

// PacketDropped records a traced packet that left the simulation
// without ejecting (a reply converted into a delegated request). The
// record's Ejected field carries the drop cycle.
func (o *Observer) PacketDropped(p *noc.Packet, reason string, cycle int64) {
	if p.Trace == nil {
		return
	}
	p.Trace.Aborted = reason
	p.Ejected = cycle
	o.PacketCompleted(p)
}

// TraceCount returns the number of retained trace records.
func (o *Observer) TraceCount() int { return len(o.traces) }

// TracesDropped returns how many sampled packets exceeded MaxTraces.
func (o *Observer) TracesDropped() int64 { return o.tracesDropped }

// Traces returns the retained trace records in completion order.
func (o *Observer) Traces() []TraceRecord { return o.traces }
