package obs_test

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/obs"
)

// ExampleObserver attaches the observability layer to a tiny run. The
// observer is measurement-only, so the attached run's statistics
// digest matches an identical unobserved run bit for bit.
func ExampleObserver() {
	cfg := config.Default()
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 600

	o := obs.New(obs.Options{Window: 100, TraceSample: 32, ClogUtil: 0.5})
	sys := core.NewSystem(cfg, "HS", "vips")
	sys.AttachObserver(o)
	sys.RunWorkload()

	plain := core.NewSystem(cfg, "HS", "vips")
	plain.RunWorkload()

	fmt.Println("windows sampled:", o.Reg.Samples() > 0)
	fmt.Println("metric probes registered:", len(o.Reg.Probes()) > 0)
	fmt.Println("digest unchanged by observer:", sys.StatsDigest() == plain.StatsDigest())
	// Output:
	// windows sampled: true
	// metric probes registered: true
	// digest unchanged by observer: true
}
