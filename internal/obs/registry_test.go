package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRegistryKinds(t *testing.T) {
	r := NewRegistry(100, 8)
	gauge := 0.0
	counter := 0.0
	num, den := 0.0, 0.0
	r.Gauge("g", func() float64 { return gauge })
	r.Rate("r", func() float64 { return counter })
	r.RatioDelta("q", func() float64 { return num }, func() float64 { return den })

	gauge, counter, num, den = 3, 50, 200, 4
	r.sample(100)
	gauge, counter, num, den = 7, 150, 500, 10
	r.sample(200)

	probes := r.Probes()
	if got := probes[0].Values(); got[0] != 3 || got[1] != 7 {
		t.Fatalf("gauge samples = %v", got)
	}
	if got := probes[1].Values(); got[0] != 0.5 || got[1] != 1.0 {
		t.Fatalf("rate samples = %v, want [0.5 1]", got)
	}
	// Window 1: 200/4 = 50. Window 2: (500-200)/(10-4) = 50.
	if got := probes[2].Values(); got[0] != 50 || got[1] != 50 {
		t.Fatalf("ratio samples = %v, want [50 50]", got)
	}
	if r.Samples() != 2 {
		t.Fatalf("Samples = %d", r.Samples())
	}
	if got := r.WindowEnds(); got[0] != 100 || got[1] != 200 {
		t.Fatalf("WindowEnds = %v", got)
	}
}

func TestRegistryResetGuard(t *testing.T) {
	r := NewRegistry(100, 8)
	counter := 0.0
	r.Rate("r", func() float64 { return counter })
	counter = 80
	r.sample(100)
	counter = 30 // warm-up ResetStats shrank the counter
	r.sample(200)
	got := r.Probes()[0].Values()
	if got[1] != 0.3 {
		t.Fatalf("post-reset rate = %v, want 0.3 (re-baselined)", got[1])
	}
}

func TestRegistryRingOverflow(t *testing.T) {
	r := NewRegistry(10, 4)
	v := 0.0
	r.Gauge("g", func() float64 { return v })
	for i := 1; i <= 6; i++ {
		v = float64(i)
		r.sample(int64(i * 10))
	}
	p := r.Probes()[0]
	if got := p.Values(); len(got) != 4 || got[0] != 3 || got[3] != 6 {
		t.Fatalf("ring values = %v, want [3 4 5 6]", got)
	}
	if p.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", p.Dropped())
	}
	if ends := r.WindowEnds(); ends[0] != 30 || ends[3] != 60 {
		t.Fatalf("window ends = %v", ends)
	}
}

func TestRegistryZeroDenominator(t *testing.T) {
	r := NewRegistry(100, 4)
	r.RatioDelta("q", func() float64 { return 0 }, func() float64 { return 0 })
	r.sample(100)
	got := r.Probes()[0].Values()[0]
	if got != 0 || math.IsNaN(got) {
		t.Fatalf("empty-window ratio = %v, want 0", got)
	}
}

func TestRegistryExports(t *testing.T) {
	r := NewRegistry(100, 4)
	v := 1.5
	r.Gauge("queue,depth", func() float64 { return v })
	r.sample(100)
	v = 2.5
	r.sample(200)

	var jb strings.Builder
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(jb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["window_cycles"].(float64) != 100 {
		t.Fatalf("window_cycles = %v", doc["window_cycles"])
	}

	var cb strings.Builder
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), cb.String())
	}
	if lines[0] != `window_end,"queue,depth"` {
		t.Fatalf("CSV header = %q (comma in name must be quoted)", lines[0])
	}
	if lines[1] != "100,1.5" || lines[2] != "200,2.5" {
		t.Fatalf("CSV rows = %q, %q", lines[1], lines[2])
	}
}
