package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// probeKind selects how a probe's closure is turned into a windowed
// sample.
type probeKind uint8

const (
	// kindGauge samples the closure's instantaneous value.
	kindGauge probeKind = iota
	// kindRate differences a cumulative counter across the window and
	// divides by the window length (events per cycle).
	kindRate
	// kindRatio differences two cumulative counters and reports
	// num-delta / den-delta (e.g. latency sum over sample count).
	kindRatio
)

func (k probeKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindRate:
		return "rate"
	case kindRatio:
		return "ratio"
	}
	return "???"
}

// Probe is one named time series. Closures read simulated state; they
// must be pure observers (no mutation, no I/O) because they run inside
// the tick path at every window boundary.
type Probe struct {
	Name string
	kind probeKind
	num  func() float64 // gauge/rate value, or ratio numerator
	den  func() float64 // ratio denominator (nil otherwise)

	lastNum float64
	lastDen float64

	samples []float64 // preallocated ring buffer
	head    int       // index of the oldest sample
	n       int       // samples currently held
	dropped int64     // samples overwritten after the ring filled
}

// push appends a sample, overwriting the oldest once the ring is full.
func (p *Probe) push(v float64) {
	if p.n < len(p.samples) {
		p.samples[(p.head+p.n)%len(p.samples)] = v
		p.n++
		return
	}
	p.samples[p.head] = v
	p.head = (p.head + 1) % len(p.samples)
	p.dropped++
}

// Values returns the retained samples in chronological order.
func (p *Probe) Values() []float64 {
	out := make([]float64, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = p.samples[(p.head+i)%len(p.samples)]
	}
	return out
}

// Dropped returns how many old samples were overwritten by the ring.
func (p *Probe) Dropped() int64 { return p.dropped }

// Registry samples named probes every window cycles into preallocated
// ring buffers. All probes are sampled together, so every series is
// aligned on the same window boundaries.
type Registry struct {
	window int64
	depth  int

	probes []*Probe

	ends    []int64 // window end cycles, same ring discipline as probes
	head, n int
	sampled int64 // windows sampled since construction
}

// NewRegistry builds a registry sampling every window cycles and
// retaining the most recent depth windows per probe.
func NewRegistry(window int64, depth int) *Registry {
	if window <= 0 {
		window = 1000
	}
	if depth <= 0 {
		depth = 4096
	}
	return &Registry{window: window, depth: depth, ends: make([]int64, depth)}
}

// Window returns the sampling window in cycles.
func (r *Registry) Window() int64 { return r.window }

// Samples returns how many windows have been sampled so far.
func (r *Registry) Samples() int64 { return r.sampled }

// Probes returns the registered probes in registration order.
func (r *Registry) Probes() []*Probe { return r.probes }

func (r *Registry) register(p *Probe) {
	p.samples = make([]float64, r.depth)
	r.probes = append(r.probes, p)
}

// Gauge registers a probe sampling fn's instantaneous value (queue
// occupancy, MSHR occupancy, ...).
func (r *Registry) Gauge(name string, fn func() float64) {
	r.register(&Probe{Name: name, kind: kindGauge, num: fn})
}

// Rate registers a probe over a cumulative counter; each sample is the
// counter's per-cycle rate within the window (flit rates, blocked-cycle
// fractions, ...). A counter that shrinks between windows (the warm-up
// ResetStats boundary) re-baselines at its new value.
func (r *Registry) Rate(name string, fn func() float64) {
	r.register(&Probe{Name: name, kind: kindRate, num: fn})
}

// RatioDelta registers a probe over two cumulative counters; each
// sample is the window's numerator delta divided by its denominator
// delta, or 0 for an empty window (windowed mean latency from a
// latency sum and a sample count, per-link utilization from busy
// cycles over elapsed port-cycles, ...).
func (r *Registry) RatioDelta(name string, num, den func() float64) {
	r.register(&Probe{Name: name, kind: kindRatio, num: num, den: den})
}

// sample records one window ending at the given cycle. Called from the
// per-cycle path: it must stay free of I/O and allocation beyond the
// preallocated rings (probe closures are invoked, nothing else).
func (r *Registry) sample(cycle int64) {
	if r.n < r.depth {
		r.ends[(r.head+r.n)%r.depth] = cycle
		r.n++
	} else {
		r.ends[r.head] = cycle
		r.head = (r.head + 1) % r.depth
	}
	r.sampled++
	for _, p := range r.probes {
		var v float64
		switch p.kind {
		case kindGauge:
			v = p.num()
		case kindRate:
			cur := p.num()
			d := cur - p.lastNum
			if d < 0 {
				d = cur // counter was reset at the warm-up boundary
			}
			p.lastNum = cur
			v = d / float64(r.window)
		case kindRatio:
			cn, cd := p.num(), p.den()
			dn, dd := cn-p.lastNum, cd-p.lastDen
			if dn < 0 || dd < 0 {
				dn, dd = cn, cd // counters reset at the warm-up boundary
			}
			p.lastNum, p.lastDen = cn, cd
			if dd > 0 {
				v = dn / dd
			}
		}
		p.push(v)
	}
}

// WindowEnds returns the end cycles of the retained windows in
// chronological order.
func (r *Registry) WindowEnds() []int64 {
	out := make([]int64, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ends[(r.head+i)%r.depth]
	}
	return out
}

// metricsJSON is the exported JSON shape of a registry.
type metricsJSON struct {
	WindowCycles int64        `json:"window_cycles"`
	Windows      int64        `json:"windows_sampled"`
	WindowEnds   []int64      `json:"window_ends"`
	Series       []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	Dropped int64     `json:"dropped_windows,omitempty"`
	Values  []float64 `json:"values"`
}

// WriteJSON exports every series as one JSON document. Run-end only —
// never call from the tick path.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := metricsJSON{
		WindowCycles: r.window,
		Windows:      r.sampled,
		WindowEnds:   r.WindowEnds(),
	}
	for _, p := range r.probes {
		doc.Series = append(doc.Series, seriesJSON{
			Name: p.Name, Kind: p.kind.String(), Dropped: p.dropped, Values: p.Values(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteCSV exports the series as a window-per-row table with one
// column per probe. Run-end only.
func (r *Registry) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("window_end")
	for _, p := range r.probes {
		b.WriteByte(',')
		b.WriteString(csvEscape(p.Name))
	}
	b.WriteByte('\n')
	ends := r.WindowEnds()
	cols := make([][]float64, len(r.probes))
	for i, p := range r.probes {
		cols[i] = p.Values()
	}
	for row, end := range ends {
		b.WriteString(strconv.FormatInt(end, 10))
		for _, col := range cols {
			b.WriteByte(',')
			if row < len(col) {
				b.WriteString(strconv.FormatFloat(col[row], 'g', -1, 64))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// csvEscape quotes a field when it contains a separator or quote.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return fmt.Sprintf("%q", s)
}
