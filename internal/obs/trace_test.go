package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"delrep/internal/noc"
)

func TestTraceSampling(t *testing.T) {
	o := New(Options{TraceSample: 4, MaxTraces: 2})
	if o.TraceFor(1) != nil || o.TraceFor(3) != nil {
		t.Fatal("non-multiples of 4 must not be sampled")
	}
	if o.TraceFor(0) == nil || o.TraceFor(4) == nil {
		t.Fatal("multiples of 4 must be sampled")
	}
	// Disabled tracing samples nothing.
	off := New(Options{})
	if off.TraceFor(0) != nil {
		t.Fatal("TraceSample=0 must disable tracing")
	}
}

func TestTraceBufferBound(t *testing.T) {
	o := New(Options{TraceSample: 1, MaxTraces: 2})
	for id := uint64(0); id < 5; id++ {
		tr := o.TraceFor(id)
		if tr == nil {
			continue
		}
		p := &noc.Packet{ID: id, SizeFlits: 1, Trace: tr, Enqueued: 1, Injected: 2, Ejected: 9}
		o.PacketCompleted(p)
	}
	if o.TraceCount() != 2 {
		t.Fatalf("TraceCount = %d, want 2", o.TraceCount())
	}
	if o.TracesDropped() == 0 {
		t.Fatal("expected dropped samples past MaxTraces")
	}
}

func TestWriteTraceChromeFormat(t *testing.T) {
	o := New(Options{TraceSample: 1, MaxTraces: 16})
	o.Describe = func(p any) string { return "READ" }

	tr := o.TraceFor(0)
	pkt := &noc.Packet{
		ID: 0, Src: 1, Dst: 5, Class: noc.ClassReply, SizeFlits: 5,
		Enqueued: 10, ReadyAt: 12, Injected: 20, Ejected: 48, Trace: tr,
	}
	// Two router hops with full phase stamps.
	tr.Hops = []noc.HopTrace{
		{Router: 1, Arrive: 20, VCAlloc: 21, Depart: 22, TailDepart: 26},
		{Router: 2, Arrive: 25, VCAlloc: 27, Depart: 28, TailDepart: 32},
	}
	o.PacketCompleted(pkt)

	// A delegated (aborted) packet that never injected.
	tr2 := o.TraceFor(1)
	stuck := &noc.Packet{ID: 1, Src: 5, Dst: 1, SizeFlits: 5, Enqueued: 30, Trace: tr2}
	o.PacketDropped(stuck, "delegated", 40)

	var b strings.Builder
	if err := o.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   int64          `json:"dur"`
			TID   uint64         `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	sawQueue := false
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		if ev.Name == "queue" && ev.TID == 0 {
			sawQueue = true
			// Queue wait starts at max(Enqueued, ReadyAt)=12, ends at inject=20.
			if ev.TS != 12 || ev.Dur != 8 {
				t.Fatalf("queue slice ts=%d dur=%d, want 12/8", ev.TS, ev.Dur)
			}
		}
	}
	if !sawQueue {
		t.Fatal("missing queue slice for packet 0")
	}
	if byName["thread_name"] != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2", byName["thread_name"])
	}
	if byName["vc_wait @r1"] != 1 || byName["switch_wait @r2"] != 1 || byName["serialize @r1"] != 1 {
		t.Fatalf("missing per-hop phases: %v", byName)
	}
	if byName["link"] != 1 {
		t.Fatalf("link slices = %d, want 1", byName["link"])
	}
	if byName["eject"] != 1 {
		t.Fatalf("eject slices = %d, want 1", byName["eject"])
	}
}
