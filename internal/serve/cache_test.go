package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"delrep/internal/runner"
)

// GET /v1/cache/{key} exposes the daemon's disk cache as a shard of
// the fleet's distributed cache tier: 200 with the stored results on a
// hit, 404 on a miss or when running uncached.
func TestCacheEndpoint(t *testing.T) {
	cache, err := runner.OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := runner.New(runner.Options{Workers: 1, Cache: cache})
	_, ts := newTestServer(t, Options{Engine: eng})

	spec := shortSpec(601)
	cfg, norm, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	addr := runner.CacheAddr(runner.Key(cfg, norm.GPU, norm.CPU))

	// Before any run: a miss.
	resp, err := http.Get(ts.URL + "/v1/cache/" + addr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold cache: status %d, want 404", resp.StatusCode)
	}

	view, _ := submit(t, ts, SubmitRequest{Spec: spec}, "?wait=1")
	if view.Status != StatusDone || view.Result == nil {
		t.Fatalf("job ended %s", view.Status)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm cache: status %d, want 200", resp.StatusCode)
	}
	var entry CacheEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.Results != view.Result.Results {
		t.Errorf("cache entry results differ from the job's")
	}
	if entry.Digest != view.Result.Digest {
		t.Errorf("cache digest %s != job digest %s", entry.Digest, view.Result.Digest)
	}

	// A bogus address is a plain miss, not an error.
	resp, err = http.Get(ts.URL + "/v1/cache/" + fmt.Sprintf("%064x", 0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus key: status %d, want 404", resp.StatusCode)
	}
}

// An uncached daemon reports every probe as a miss.
func TestCacheEndpointUncached(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/cache/" + fmt.Sprintf("%064x", 1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uncached daemon: status %d, want 404", resp.StatusCode)
	}
}
