// Package serve exposes the simulator as a long-lived HTTP service:
// simulation-as-a-service on top of the deterministic parallel engine
// in internal/runner.
//
// The daemon amortizes exactly what design-space sweeps need: many
// clients submitting overlapping configuration points against one warm
// content-addressed result cache. A job that hits the cache (on disk
// or deduplicated in-process) short-circuits execution and returns a
// result byte-identical — same stats digest, same float bit patterns —
// to a direct delrepsim run of the same spec.
//
// The API (all JSON unless noted):
//
//	POST   /v1/jobs             submit a spec; 202 with the job, or 429
//	                            (Retry-After) when admission control
//	                            rejects it. ?wait=1 blocks until the
//	                            job finishes; a client that disconnects
//	                            while waiting cancels its job.
//	GET    /v1/jobs             list jobs, newest last
//	GET    /v1/jobs/{id}        job status, progress, and result
//	GET    /v1/jobs/{id}/events server-sent events: status transitions
//	                            and cycle-level progress
//	GET    /v1/jobs/{id}/trace  the job's wall-clock span tree as Chrome
//	                            trace-event JSON (?format=tree for the
//	                            nested form); requires Options.Telemetry
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/cache/{key}      cached result by content address
//	                            (runner.CacheAddr); 404 on miss. Lets a
//	                            fleet coordinator use this daemon's warm
//	                            disk cache as one shard of a distributed
//	                            cache tier without enqueueing a job
//	GET    /healthz             liveness (always ok while serving)
//	GET    /readyz              readiness (503 once draining)
//	GET    /metrics             text exposition of queue depth, worker
//	                            utilization, cache hit ratio, admission
//	                            rejections, disk-cache outcomes, and
//	                            latency histograms per priority class
//	GET    /debug/jobs          flight recorder: the last N completed
//	                            jobs with their span trees (JSON)
//	GET    /debug/status        human-oriented HTML status page
//	GET    /debug/pprof/        net/http/pprof (Options.EnablePprof)
//
// Telemetry is strictly wall-clock instrumentation of the serving
// layers: span timestamps never enter the simulation, so a traced
// job's results and determinism digest are byte-identical to an
// untraced (or direct delrepsim) run of the same spec.
//
// Admission control is two-layered: a bounded queue (a full queue
// answers 429 with a Retry-After estimated from recent job latency)
// and a per-client in-flight cap, so one greedy sweep cannot starve
// interactive users. Scheduling is strict priority with FIFO order
// within each level.
//
// Cancellation is cooperative end to end: DELETE (or a dropped ?wait
// connection) cancels the job's context, the runner engine propagates
// it into the simulation's cycle-window checkpoints (core.RunControl),
// and the freed worker slot immediately dispatches the next queued
// job. Cancelling one job never disturbs another that shares its
// deduplicated future.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	netpprof "net/http/pprof"
	"strconv"
	"sync"
	"time"

	"delrep/internal/runner"
	"delrep/internal/simspec"
	"delrep/internal/stats"
	"delrep/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Engine runs the simulations. Required.
	Engine *runner.Engine
	// Workers bounds concurrently running jobs; <= 0 uses the engine's
	// worker count.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; a full queue rejects
	// submissions with 429. <= 0 selects 64.
	QueueDepth int
	// ClientInFlight caps one client's queued+running jobs; 0 disables
	// the cap.
	ClientInFlight int
	// CacheMaxBytes, when > 0, prunes the engine's disk cache (oldest
	// entries first) to this size after each executed job, bounding a
	// long-lived daemon's disk use.
	CacheMaxBytes int64
	// ProgressInterval is the SSE progress-event cadence for running
	// jobs; <= 0 selects 500ms.
	ProgressInterval time.Duration
	// Logger receives structured logs (one record per job transition,
	// admission rejection, prune, …); nil discards them. Every job
	// record carries job/client/spec-key attrs, so one job's lifecycle
	// greps out of a mixed stream.
	Logger *slog.Logger
	// Telemetry records a wall-clock span tree per job (exported by
	// GET /v1/jobs/{id}/trace) and feeds the flight recorder behind
	// /debug/jobs. Off by default: a nil trace costs one pointer check
	// per instrumentation site and nothing else.
	Telemetry bool
	// FlightSize bounds the flight recorder's ring of completed-job
	// summaries (<= 0 selects 128). Only meaningful with Telemetry.
	FlightSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ for live
	// CPU/heap/goroutine profiling of the daemon.
	EnablePprof bool
	// MaxRunParallel caps the intra-run tile parallelism a job's spec
	// may request ("parallel" field). <= 0 disables intra-run
	// parallelism entirely: every job runs serial, exactly as before
	// the tile tick existed. The cap is admission-aware — a requested
	// N is additionally clamped to the cap divided by the number of
	// running jobs at dispatch, so a busy daemon never oversubscribes
	// cores it is already using to run jobs side by side. Clamping is
	// behavior-neutral: results are bit-identical at any worker count,
	// so this knob trades wall time only.
	MaxRunParallel int
}

// Server is the simulation daemon. Create with New; serve its
// Handler; stop with Shutdown.
type Server struct {
	eng           *runner.Engine
	workers       int
	queueDepth    int
	clientCap     int
	maxParallel   int
	cacheMax      int64
	progressEvery time.Duration
	logger        *slog.Logger
	telemetry     bool
	flight        *telemetry.FlightRecorder // nil when telemetry is off
	started       time.Time
	mux           *http.ServeMux
	wg            sync.WaitGroup
	pruneMu       sync.Mutex

	mu           sync.Mutex
	cond         *sync.Cond
	jobs         map[string]*Job
	order        []*Job // submission order, for listing
	queue        [numPriorities][]*Job
	queuedCount  int
	runningCount int
	inflight     map[string]int // client -> queued+running jobs
	seq          int
	draining     bool
	sseSubs      int // live SSE subscriber channels

	latency      *stats.Histogram                // completed-job wall seconds (all priorities)
	queueWait    [numPriorities]*stats.Histogram // admission → dispatch, per priority
	execTime     [numPriorities]*stats.Histogram // dispatch → terminal, per priority
	totalTime    [numPriorities]*stats.Histogram // submit → terminal, per priority
	statusCounts map[Status]int64                // terminal outcomes
	rejects      map[string]int64                // admission rejections by reason
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Engine == nil {
		panic("serve: Options.Engine is required")
	}
	s := &Server{
		eng:           opts.Engine,
		workers:       opts.Workers,
		queueDepth:    opts.QueueDepth,
		clientCap:     opts.ClientInFlight,
		maxParallel:   opts.MaxRunParallel,
		cacheMax:      opts.CacheMaxBytes,
		progressEvery: opts.ProgressInterval,
		logger:        opts.Logger,
		telemetry:     opts.Telemetry,
		jobs:          map[string]*Job{},
		inflight:      map[string]int{},
		// 60 one-second buckets; sweeps that run longer land in +Inf.
		latency:      stats.NewHistogram(60, 1),
		statusCounts: map[Status]int64{},
		rejects:      map[string]int64{},
	}
	//simlint:ignore rngsource daemon start timestamp, outside any simulation
	s.started = time.Now()
	for p := 0; p < int(numPriorities); p++ {
		s.queueWait[p] = stats.NewHistogram(60, 1)
		s.execTime[p] = stats.NewHistogram(60, 1)
		s.totalTime[p] = stats.NewHistogram(60, 1)
	}
	if s.workers <= 0 {
		s.workers = opts.Engine.Workers()
	}
	if s.queueDepth <= 0 {
		s.queueDepth = 64
	}
	if s.progressEvery <= 0 {
		s.progressEvery = 500 * time.Millisecond
	}
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if s.telemetry {
		s.flight = telemetry.NewFlightRecorder(opts.FlightSize)
	}
	s.cond = sync.NewCond(&s.mu)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/jobs", s.handleDebugJobs)
	s.mux.HandleFunc("GET /debug/status", s.handleDebugStatus)
	if opts.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the concurrent-job bound.
func (s *Server) Workers() int { return s.workers }

// SubmitRequest is the POST /v1/jobs body — shared wire format:
// delrepd and the fleet coordinator accept the same shape, and the
// coordinator forwards it (spec as submitted, priority, client)
// verbatim to the worker it routes the job to.
type SubmitRequest struct {
	Spec     simspec.Spec `json:"spec"`
	Priority string       `json:"priority,omitempty"`
	Client   string       `json:"client,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The trace opens before decoding so http.receive covers the full
	// request-side cost; it is discarded again on any rejection path.
	var tr *telemetry.Trace
	var recv *telemetry.Span
	if s.telemetry {
		tr = telemetry.New("job")
		recv = tr.Root().Start("http.receive")
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	prio, err := ParsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, norm, err := req.Spec.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	client := req.Client
	if client == "" {
		client = r.Header.Get("X-Delrep-Client")
	}
	specKey := runner.KeyHash(cfg, norm.GPU, norm.CPU)
	recv.End()

	adm := tr.Root().Start("admission")
	s.mu.Lock()
	if s.draining {
		s.rejects["draining"]++
		s.mu.Unlock()
		s.logger.InfoContext(r.Context(), "submit rejected", "reason", "draining", "client", client, "spec_key", specKey)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.clientCap > 0 && s.inflight[client] >= s.clientCap {
		retry := s.retryAfterLocked()
		s.rejects["client_cap"]++
		s.mu.Unlock()
		s.logger.InfoContext(r.Context(), "submit rejected", "reason", "client_cap", "client", client, "spec_key", specKey)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			"client %q already has %d jobs in flight (cap %d)", client, s.clientCap, s.clientCap)
		return
	}
	if s.queuedCount >= s.queueDepth {
		retry := s.retryAfterLocked()
		s.rejects["queue_full"]++
		s.mu.Unlock()
		s.logger.InfoContext(r.Context(), "submit rejected", "reason", "queue_full", "client", client, "spec_key", specKey)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			"job queue is full (%d queued)", s.queueDepth)
		return
	}
	s.seq++
	//simlint:ignore ctxflow the job outlives the submitting request by design; cancellation comes from DELETE /jobs/{id} or drain, not the HTTP connection
	ctx, cancel := context.WithCancel(context.Background())
	//simlint:ignore rngsource daemon job timestamp, outside any simulation
	created := time.Now()
	j := &Job{
		id:      fmt.Sprintf("j%06d", s.seq),
		client:  client,
		prio:    prio,
		spec:    norm,
		cfg:     cfg,
		specKey: specKey,
		// Resolve zeroed norm.Parallel (execution hints are not
		// identity), so the request's hint is carried separately.
		reqParallel: req.Spec.Parallel,
		ctx:         ctx,
		cancel:      cancel,
		doneCh:      make(chan struct{}),
		status:      StatusQueued,
		created:     created,
		subs:        map[chan sseEvent]struct{}{},
		trace:       tr,
	}
	j.log = s.logger.With("job", j.id, "client", client, "spec_key", specKey)
	if tr != nil {
		tr.Root().Set("job", j.id)
		tr.Root().Set("client", client)
		tr.Root().Set("spec_key", specKey)
		tr.Root().Set("priority", prio.String())
		adm.End()
		j.spanQueue = tr.Root().Start("queue.wait")
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.queue[prio] = append(s.queue[prio], j)
	s.queuedCount++
	s.inflight[client]++
	view := j.viewLocked()
	s.cond.Signal()
	s.mu.Unlock()
	j.log.InfoContext(r.Context(), "job queued",
		"gpu", norm.GPU, "cpu", norm.CPU, "scheme", norm.Scheme, "priority", prio.String())

	if r.URL.Query().Has("wait") {
		select {
		case <-j.doneCh:
			s.mu.Lock()
			view = j.viewLocked()
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, view)
		case <-r.Context().Done():
			// The waiting client went away: its job goes with it, so a
			// dropped connection cannot pin a worker slot.
			s.cancelJob(j)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, view)
}

// retryAfterLocked estimates seconds until a queue slot frees up:
// recent mean job latency times the queue backlog per worker.
func (s *Server) retryAfterLocked() int {
	mean := s.latency.Mean()
	if s.latency.Count() == 0 || mean <= 0 {
		return 1
	}
	est := int(math.Ceil(mean * float64(s.queuedCount+1) / float64(s.workers)))
	if est < 1 {
		est = 1
	}
	if est > 600 {
		est = 600
	}
	return est
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, j := range s.order {
		v := j.viewLocked()
		v.Result = nil // keep listings light; fetch the job for results
		views = append(views, v)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	view := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if j.status.Terminal() {
		view := j.viewLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, view)
		return
	}
	s.mu.Unlock()
	s.cancelJob(j)
	s.mu.Lock()
	view := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// cancelJob cancels a job in any non-terminal state: a queued job
// finishes immediately as cancelled; a running job's context is
// cancelled and its worker completes the transition at the next
// simulation checkpoint.
func (s *Server) cancelJob(j *Job) {
	s.mu.Lock()
	if j.status == StatusQueued {
		s.finishQueuedLocked(j, "cancelled before start")
		s.mu.Unlock()
		j.cancel()
		return
	}
	s.mu.Unlock()
	// Running (or already terminal, in which case this is a no-op):
	// the worker owns the bookkeeping.
	j.cancel()
}

// finishQueuedLocked retires a job that never started. Callers hold
// s.mu and must call j.cancel() afterwards (outside the transition) to
// release the context's resources.
func (s *Server) finishQueuedLocked(j *Job, msg string) {
	j.status = StatusCancelled
	j.errMsg = msg
	//simlint:ignore rngsource daemon job timestamp, outside any simulation
	j.finished = time.Now()
	j.spanQueue.End()
	j.spanQueue = nil
	s.queuedCount--
	s.dropInflightLocked(j.client)
	s.statusCounts[StatusCancelled]++
	s.totalTime[j.prio].Add(j.finished.Sub(j.created).Seconds())
	s.notifyLocked(j)
	close(j.doneCh)
	s.retireTrace(j, j.viewLocked(), StatusCancelled)
	j.log.Info("job cancelled while queued", "reason", msg)
}

func (s *Server) dropInflightLocked(client string) {
	if s.inflight[client]--; s.inflight[client] <= 0 {
		delete(s.inflight, client)
	}
}

// worker dispatches queued jobs until shutdown drains the queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// next blocks until a job is dispatchable and marks it running.
// Highest priority wins; FIFO within a priority. Returns nil when the
// server is draining and the queue is empty.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for p := numPriorities - 1; p >= 0; p-- {
			for len(s.queue[p]) > 0 {
				j := s.queue[p][0]
				s.queue[p] = s.queue[p][1:]
				if j.status != StatusQueued {
					continue // cancelled while queued; already retired
				}
				if j.ctx.Err() != nil {
					// Cancelled through its context (a vanished ?wait
					// client) without going through cancelJob.
					s.finishQueuedLocked(j, "cancelled before start")
					continue
				}
				s.queuedCount--
				j.status = StatusRunning
				//simlint:ignore rngsource daemon job timestamp, outside any simulation
				j.started = time.Now()
				j.spanQueue.End()
				j.spanQueue = nil
				s.queueWait[j.prio].Add(j.started.Sub(j.created).Seconds())
				s.runningCount++
				j.parallel = s.effectiveParallelLocked(j.reqParallel)
				s.notifyLocked(j)
				return j
			}
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// effectiveParallelLocked clamps a job's requested intra-run
// parallelism against the server cap and the current load. The
// admission-aware term divides the cap by the number of running jobs
// (including the one being dispatched), so concurrent jobs share the
// tile-worker budget instead of each grabbing the full cap. Because
// results are bit-identical at any worker count, the clamp can never
// change what a job returns — only how fast.
func (s *Server) effectiveParallelLocked(requested int) int {
	if requested <= 1 || s.maxParallel <= 1 {
		return 1
	}
	eff := requested
	if eff > s.maxParallel {
		eff = s.maxParallel
	}
	if share := s.maxParallel / s.runningCount; eff > share {
		eff = share
	}
	if eff < 1 {
		eff = 1
	}
	return eff
}

// runJob executes one dispatched job on the engine and retires it.
func (s *Server) runJob(j *Job) {
	rspec := runner.Spec{Cfg: j.cfg, GPU: j.spec.GPU, CPU: j.spec.CPU}
	var root *telemetry.Span
	if j.trace != nil {
		root = j.trace.Root()
	}
	submitSpan := root.Start("runner.submit")
	runCtx := telemetry.ContextWithSpan(j.ctx, submitSpan)
	var run runner.Run
	for {
		// j.parallel was fixed at dispatch by the same goroutine (next
		// runs in this worker), so the unlocked read is ordered.
		fut := s.eng.SubmitCtxParallel(runCtx, rspec, j.parallel)
		s.mu.Lock()
		j.fut = fut
		s.mu.Unlock()
		run = fut.Wait()
		if run.Err == nil || j.ctx.Err() != nil || !errors.Is(run.Err, context.Canceled) {
			break
		}
		// The shared future was cancelled by a different job's waiter
		// between our submission and completion; this job is still
		// wanted, so resubmit (the failed future has left the memo).
	}
	submitSpan.Set("source", run.Source.String())
	submitSpan.End()

	//simlint:ignore rngsource daemon job timestamp, outside any simulation
	now := time.Now()
	s.mu.Lock()
	j.finished = now
	s.runningCount--
	s.dropInflightLocked(j.client)
	s.latency.Add(now.Sub(j.started).Seconds())
	s.execTime[j.prio].Add(now.Sub(j.started).Seconds())
	s.totalTime[j.prio].Add(now.Sub(j.created).Seconds())
	switch {
	case run.Err == nil:
		j.run = run
		j.status = StatusDone
	case j.ctx.Err() != nil && errors.Is(run.Err, context.Canceled):
		j.status = StatusCancelled
		j.errMsg = "cancelled"
	default:
		j.status = StatusFailed
		j.errMsg = run.Err.Error()
	}
	s.statusCounts[j.status]++
	// encode measures rendering the terminal job view — the bytes every
	// poller and ?wait response will receive from here on.
	if enc := root.Start("encode"); enc != nil {
		if b, err := json.Marshal(j.viewLocked()); err == nil {
			enc.Set("bytes", len(b))
		}
		enc.End()
	}
	reply := root.Start("reply")
	s.notifyLocked(j)
	close(j.doneCh)
	reply.End()
	status, errMsg := j.status, j.errMsg
	view := j.viewLocked()
	s.mu.Unlock()

	s.retireTrace(j, view, status)
	if errMsg != "" {
		j.log.InfoContext(runCtx, "job finished", "status", status, "error", errMsg,
			"seconds", now.Sub(j.started).Seconds())
	} else {
		j.log.InfoContext(runCtx, "job finished", "status", status, "source", run.Source.String(),
			"seconds", now.Sub(j.started).Seconds())
	}
	if status == StatusDone && run.Source == runner.SourceExecuted {
		s.maybePrune()
	}
}

// retireTrace closes a finished job's trace and files its flight-
// recorder entry. Callers may hold s.mu (lock order is s.mu →
// trace.mu, never reversed); the job fields read here are immutable
// once the job is terminal.
func (s *Server) retireTrace(j *Job, view JobView, status Status) {
	if j.trace == nil {
		return
	}
	j.trace.Root().Set("outcome", string(status))
	j.trace.End()
	rec := telemetry.JobRecord{
		ID:       j.id,
		Client:   j.client,
		Priority: j.prio.String(),
		Spec:     fmt.Sprintf("%s+%s %s", j.spec.GPU, j.spec.CPU, j.spec.Scheme),
		SpecKey:  j.specKey,
		Outcome:  string(status),
		Source:   view.Source,
		Error:    view.Error,
		Created:  j.created,
		TotalUS:  j.finished.Sub(j.created).Microseconds(),
		Trace:    j.trace.Snapshot(),
	}
	if !j.started.IsZero() {
		rec.QueueUS = j.started.Sub(j.created).Microseconds()
		rec.ExecUS = j.finished.Sub(j.started).Microseconds()
	} else {
		rec.QueueUS = rec.TotalUS // cancelled while queued
	}
	s.flight.Record(rec)
}

// maybePrune bounds the disk cache after an executed (cache-growing)
// run. Skipped when a prune is already in progress.
func (s *Server) maybePrune() {
	cache := s.eng.DiskCache()
	if s.cacheMax <= 0 || cache == nil {
		return
	}
	if !s.pruneMu.TryLock() {
		return
	}
	defer s.pruneMu.Unlock()
	removed, freed, err := cache.Prune(s.cacheMax)
	if err != nil {
		s.logger.Warn("cache prune failed", "error", err)
	} else if removed > 0 {
		s.logger.Info("cache pruned",
			"removed", removed, "freed_bytes", freed, "max_bytes", s.cacheMax)
	}
}

// handleTrace exports a job's telemetry span tree. The default format
// is Chrome trace-event JSON (load in chrome://tracing or Perfetto);
// ?format=tree answers the nested SpanView rendering instead. An
// unfinished job's open spans are snapshotted as running to "now".
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if j.trace == nil {
		writeError(w, http.StatusNotFound, "telemetry is disabled; start the daemon with -telemetry")
		return
	}
	if r.URL.Query().Get("format") == "tree" {
		writeJSON(w, http.StatusOK, j.trace.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := j.trace.WriteChrome(w); err != nil {
		s.logger.WarnContext(r.Context(), "trace export failed", "job", j.id, "error", err)
	}
}

// Shutdown stops admission, cancels every queued job, and drains
// running jobs. If ctx expires first, running jobs are cancelled at
// their next simulation checkpoint and Shutdown returns ctx's error
// once the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var retired []*Job
	for p := range s.queue {
		for _, j := range s.queue[p] {
			if j.status == StatusQueued {
				s.finishQueuedLocked(j, "server shutting down")
				retired = append(retired, j)
			}
		}
		s.queue[p] = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range retired {
		j.cancel()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.order {
			if j.status == StatusRunning {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
