package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"delrep/internal/runner"
	"delrep/internal/simspec"
)

// These tests pin the admission loop against batching bistability: a
// closed-loop system whose backoff feedback latches can fall into a
// stable low-throughput mode where clients back off together, the
// queue drains, workers idle, and the (stale, inflated) retry estimate
// keeps arrivals depressed — even though the high-throughput mode at
// the same offered load is also stable. The guard here is that
// Retry-After is computed from the *live* backlog (mean job latency ×
// (queued+1) / workers, clamped to [1, 600]), so the estimate shrinks
// as the queue drains and the feedback is proportional rather than
// latching. See DESIGN.md §13.

// The estimator must track the live backlog proportionally and clamp.
func TestRetryAfterTracksBacklog(t *testing.T) {
	s := New(Options{Engine: runner.New(runner.Options{Workers: 2}), Workers: 2})
	defer s.Shutdown(t.Context())

	// No completed jobs yet: the estimate is the 1-second floor, not a
	// guess that could latch high.
	s.mu.Lock()
	if got := s.retryAfterLocked(); got != 1 {
		t.Errorf("empty history: Retry-After = %d, want 1", got)
	}

	// Seed a known mean latency (4s) and grow the backlog: the estimate
	// must scale linearly with it — ceil(4 * (queued+1) / 2 workers).
	s.latency.Add(4)
	for _, tc := range []struct{ queued, want int }{
		{0, 2}, {1, 4}, {3, 8}, {9, 20},
	} {
		s.queuedCount = tc.queued
		if got := s.retryAfterLocked(); got != tc.want {
			t.Errorf("queued=%d: Retry-After = %d, want %d", tc.queued, got, tc.want)
		}
	}

	// And critically for recovery from a burst: when the queue drains,
	// the estimate falls back down instead of remembering the spike.
	s.queuedCount = 0
	if got := s.retryAfterLocked(); got != 2 {
		t.Errorf("drained queue: Retry-After = %d, want 2 (no latching)", got)
	}

	// The clamp bounds a pathological backlog estimate.
	s.queuedCount = 100_000
	if got := s.retryAfterLocked(); got != 600 {
		t.Errorf("huge backlog: Retry-After = %d, want the 600 clamp", got)
	}
	s.queuedCount = 0
	s.mu.Unlock()
}

// Closed-loop regression: more clients than queue+worker slots, held
// near the knee for a couple of seconds. The system must keep serving
// at a healthy rate (no collapse into the bistable low mode) and the
// Retry-After estimates handed to rejected clients must stay on the
// order of a real job latency, not inflate and latch.
func TestNoBistableCollapseNearKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop load test")
	}
	_, ts := newTestServer(t, Options{
		Engine:     runner.New(runner.Options{Workers: 2}),
		Workers:    2,
		QueueDepth: 2,
	})

	const (
		clients = 8
		runFor  = 2500 * time.Millisecond
	)
	var (
		done         atomic.Int64 // jobs completed
		rejected     atomic.Int64 // 429 responses observed
		maxRetry     atomic.Int64 // largest Retry-After seen
		lateDone     atomic.Int64 // completions in the second half
		halfway      = time.Now().Add(runFor / 2)
		deadline     = time.Now().Add(runFor)
		seed         atomic.Int64
		wg           sync.WaitGroup
		clientErr    error
		clientErrMu  sync.Mutex
		recordedBody = func(err error) {
			clientErrMu.Lock()
			if clientErr == nil {
				clientErr = err
			}
			clientErrMu.Unlock()
		}
	)
	seed.Store(700)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := "knee-client-" + strconv.Itoa(c)
			for time.Now().Before(deadline) {
				// Unique seeds defeat memoization: every accepted job is
				// real work, so the loop genuinely loads the workers.
				spec := simspec.Spec{GPU: "HS", CPU: "vips", Warmup: 200, Cycles: 2000,
					Seed: seed.Add(1)}
				body, err := json.Marshal(SubmitRequest{Spec: spec, Client: name})
				if err != nil {
					recordedBody(err)
					return
				}
				resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
					bytes.NewReader(body))
				if err != nil {
					recordedBody(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					resp.Body.Close()
					done.Add(1)
					if time.Now().After(halfway) {
						lateDone.Add(1)
					}
				case http.StatusTooManyRequests:
					rejected.Add(1)
					ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
					resp.Body.Close()
					for {
						cur := maxRetry.Load()
						if int64(ra) <= cur || maxRetry.CompareAndSwap(cur, int64(ra)) {
							break
						}
					}
					// Honor the protocol, but cap the nap at the remaining
					// test budget.
					nap := time.Duration(ra) * time.Second
					if rem := time.Until(deadline); nap > rem {
						nap = rem
					}
					time.Sleep(nap)
				default:
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()
	if clientErr != nil {
		t.Fatal(clientErr)
	}

	t.Logf("completed=%d rejected=%d maxRetryAfter=%ds lateCompleted=%d",
		done.Load(), rejected.Load(), maxRetry.Load(), lateDone.Load())

	// Near the knee the admission control must have fired at least once
	// — otherwise the test is not exercising the feedback loop at all.
	if rejected.Load() == 0 {
		t.Fatal("no 429s observed: the load never reached the knee")
	}
	// No collapse: the two workers can serve ~12 jobs/s of this spec;
	// even with backoff inefficiency the loop must clear a conservative
	// floor, and completions must continue into the second half (a
	// latched low mode serves a burst early and then starves).
	if done.Load() < 10 {
		t.Errorf("only %d completions in %v: throughput collapsed", done.Load(), runFor)
	}
	if lateDone.Load() == 0 {
		t.Error("no completions in the second half: the loop latched into the low mode")
	}
	// The retry estimate must stay on the order of a real job latency
	// (sub-second jobs, small queue): a latching estimator inflates far
	// beyond this bound under the same load.
	if maxRetry.Load() > 2 {
		t.Errorf("Retry-After reached %ds for sub-second jobs: estimator inflated", maxRetry.Load())
	}
}
