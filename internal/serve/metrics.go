package serve

import (
	"fmt"
	"net/http"
	"strings"

	"delrep/internal/stats"
)

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting jobs, 503 once
// draining so load balancers stop routing new submissions here.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics writes the daemon's state in the Prometheus text
// exposition format: queue and worker gauges, terminal-outcome and
// admission-rejection counters, the engine's cache accounting, and the
// job latency histogram.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.eng.Snapshot()
	cacheStats := s.eng.DiskCache().Stats()

	s.mu.Lock()
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE delrepd_jobs_queued gauge\ndelrepd_jobs_queued %d\n", s.queuedCount)
	fmt.Fprintf(&b, "# TYPE delrepd_jobs_running gauge\ndelrepd_jobs_running %d\n", s.runningCount)
	fmt.Fprintf(&b, "# TYPE delrepd_workers gauge\ndelrepd_workers %d\n", s.workers)
	fmt.Fprintf(&b, "# TYPE delrepd_worker_utilization gauge\ndelrepd_worker_utilization %g\n",
		float64(s.runningCount)/float64(s.workers))
	fmt.Fprintf(&b, "# TYPE delrepd_sse_subscribers gauge\ndelrepd_sse_subscribers %d\n", s.sseSubs)

	fmt.Fprintf(&b, "# TYPE delrepd_jobs_total counter\n")
	for _, st := range []Status{StatusDone, StatusFailed, StatusCancelled} {
		fmt.Fprintf(&b, "delrepd_jobs_total{status=%q} %d\n", st, s.statusCounts[st])
	}
	fmt.Fprintf(&b, "# TYPE delrepd_rejects_total counter\n")
	for _, reason := range []string{"queue_full", "client_cap", "draining"} {
		fmt.Fprintf(&b, "delrepd_rejects_total{reason=%q} %d\n", reason, s.rejects[reason])
	}

	fmt.Fprintf(&b, "# TYPE delrepd_engine_runs_total counter\n")
	fmt.Fprintf(&b, "delrepd_engine_runs_total{source=\"executed\"} %d\n", c.Executed)
	fmt.Fprintf(&b, "delrepd_engine_runs_total{source=\"memo\"} %d\n", c.MemoHits)
	fmt.Fprintf(&b, "delrepd_engine_runs_total{source=\"disk\"} %d\n", c.DiskHits)
	fmt.Fprintf(&b, "delrepd_engine_runs_total{source=\"failed\"} %d\n", c.Failed)
	// Hit ratio over resolved submissions: memo and disk hits per
	// submission that produced a result.
	if resolved := c.Executed + c.MemoHits + c.DiskHits; resolved > 0 {
		fmt.Fprintf(&b, "# TYPE delrepd_cache_hit_ratio gauge\ndelrepd_cache_hit_ratio %g\n",
			float64(c.MemoHits+c.DiskHits)/float64(resolved))
	} else {
		fmt.Fprintf(&b, "# TYPE delrepd_cache_hit_ratio gauge\ndelrepd_cache_hit_ratio 0\n")
	}
	fmt.Fprintf(&b, "# TYPE delrepd_disk_cache_total counter\n")
	fmt.Fprintf(&b, "delrepd_disk_cache_total{result=\"hit\"} %d\n", cacheStats.Hits)
	fmt.Fprintf(&b, "delrepd_disk_cache_total{result=\"miss\"} %d\n", cacheStats.Misses)
	fmt.Fprintf(&b, "delrepd_disk_cache_total{result=\"corrupt\"} %d\n", cacheStats.Corrupt)

	err := s.latency.WriteProm(&b, "delrepd_job_seconds")
	for _, fam := range []struct {
		name  string
		hists *[numPriorities]*stats.Histogram
	}{
		{"delrepd_job_queue_seconds", &s.queueWait},
		{"delrepd_job_exec_seconds", &s.execTime},
		{"delrepd_job_total_seconds", &s.totalTime},
	} {
		if err != nil {
			break
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam.name)
		for p := Priority(0); p < numPriorities && err == nil; p++ {
			err = fam.hists[p].WritePromLabeled(&b, fam.name, fmt.Sprintf("priority=%q", p))
		}
	}
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering metrics: %v", err)
		return
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
