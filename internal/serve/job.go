package serve

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"delrep/internal/config"
	"delrep/internal/runner"
	"delrep/internal/simspec"
	"delrep/internal/telemetry"
)

// Status is a job's lifecycle state. Transitions are monotonic:
// queued → running → {done, failed, cancelled}, with queued →
// cancelled allowed for jobs cancelled (or drained at shutdown) before
// a worker picked them up.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Priority orders jobs in the queue: all queued high-priority jobs
// dispatch before any normal one, and so on. Within a priority level
// dispatch is strictly FIFO.
type Priority int

const (
	PrioLow Priority = iota
	PrioNormal
	PrioHigh
	numPriorities
)

// ParsePriority parses a job priority ("" defaults to normal).
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PrioNormal, nil
	case "low":
		return PrioLow, nil
	case "high":
		return PrioHigh, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want low, normal, or high)", s)
}

func (p Priority) String() string {
	switch p {
	case PrioLow:
		return "low"
	case PrioHigh:
		return "high"
	}
	return "normal"
}

// Job is one submitted simulation. Identity fields are immutable after
// creation; mutable state is guarded by the owning Server's mutex.
type Job struct {
	id      string
	client  string
	prio    Priority
	spec    simspec.Spec // canonical form, echoed back to clients
	cfg     config.Config
	specKey string // short content hash of the resolved spec
	// reqParallel is the intra-run parallelism the submitted spec asked
	// for. Resolve strips it from the canonical spec (it is an
	// execution hint, not identity), so it is carried here verbatim and
	// clamped against the server's cap and load at dispatch.
	reqParallel int
	ctx         context.Context
	cancel      context.CancelFunc
	// doneCh closes when the job reaches a terminal status.
	doneCh chan struct{}
	// log carries the job's identity attrs (job/client/spec-key) on
	// every record. Immutable after creation.
	log *slog.Logger
	// trace is the job's telemetry span tree; nil when telemetry is
	// off. The Trace itself is safe for concurrent use.
	trace *telemetry.Trace

	// Guarded by Server.mu.
	status    Status
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	fut       *runner.Future
	run       runner.Run
	parallel  int // effective tile workers, fixed at dispatch
	subs      map[chan sseEvent]struct{}
	spanQueue *telemetry.Span // open queue.wait span, ended at dispatch
}

// ProgressView is the running-job progress fragment of a job view.
// Exported because it is wire format: the fleet coordinator
// (internal/fleet) re-emits it verbatim when proxying worker progress.
type ProgressView struct {
	CyclesDone  int64 `json:"cycles_done"`
	CyclesTotal int64 `json:"cycles_total"`
}

// JobView is the JSON rendering of a job returned by the API. It is
// the shared wire form of the /v1/jobs surface: delrepd serves it, the
// fleet coordinator serves the same shape (so every client works
// against either), and fleet clients decode it.
type JobView struct {
	ID       string       `json:"id"`
	Status   Status       `json:"status"`
	Priority string       `json:"priority"`
	Client   string       `json:"client,omitempty"`
	Spec     simspec.Spec `json:"spec"`
	Created  string       `json:"created"`
	Started  string       `json:"started,omitempty"`
	Finished string       `json:"finished,omitempty"`
	Source   string       `json:"source,omitempty"`
	Error    string       `json:"error,omitempty"`
	Parallel int          `json:"parallel,omitempty"` // server-granted intra-run workers (omitted when serial)
	// Workers is the engine-effective worker count the simulation
	// actually ticked with: Parallel after the core engine clamps it
	// to what the topology can use (runner.Run.Workers). It lives
	// here, not in Result — the canonical Result JSON must stay
	// byte-identical across worker counts. Omitted for memo/disk
	// hits, which ran elsewhere.
	Workers  int             `json:"workers,omitempty"`
	Progress *ProgressView   `json:"progress,omitempty"`
	Result   *simspec.Result `json:"result,omitempty"`
	// Worker is the base URL of the worker daemon that served the job.
	// Only the fleet coordinator sets it; a single delrepd leaves it
	// empty (it is its own worker).
	Worker string `json:"worker,omitempty"`
}

// viewLocked renders the job; the server's mutex must be held.
func (j *Job) viewLocked() JobView {
	v := JobView{
		ID:       j.id,
		Status:   j.status,
		Priority: j.prio.String(),
		Client:   j.client,
		Spec:     j.spec,
		Created:  j.created.UTC().Format(time.RFC3339Nano),
		Error:    j.errMsg,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.parallel > 1 {
		v.Parallel = j.parallel
	}
	if j.status == StatusRunning && j.fut != nil {
		done, total := j.fut.Progress()
		v.Progress = &ProgressView{CyclesDone: done, CyclesTotal: total}
	}
	if j.status == StatusDone {
		v.Source = j.run.Source.String()
		v.Workers = j.run.Workers
		r := simspec.NewResult(j.spec, j.run.Results, j.run.Digest)
		v.Result = &r
	}
	return v
}
