package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"delrep/internal/core"
	"delrep/internal/runner"
	"delrep/internal/simspec"
)

// shortSpec is a spec small enough to finish in well under a second.
// Vary the seed to defeat engine memoization between tests.
func shortSpec(seed int64) simspec.Spec {
	return simspec.Spec{GPU: "HS", CPU: "vips", Warmup: 200, Cycles: 2000, Seed: seed}
}

// longSpec runs effectively forever; it only ever ends by cancellation.
func longSpec(seed int64) simspec.Spec {
	return simspec.Spec{GPU: "HS", CPU: "vips", Warmup: 200, Cycles: 500_000_000, Seed: seed}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Engine == nil {
		opts.Engine = runner.New(runner.Options{Workers: 2})
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest, query string) (JobView, *http.Response) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return v, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollUntil polls the job until pred holds or the deadline passes.
func pollUntil(t *testing.T, ts *httptest.Server, id string, pred func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if pred(v) {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s: condition not reached before deadline (last: %+v)", id, getJob(t, ts, id))
	return JobView{}
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// A job's result must be byte-identical to a direct in-process run of
// the same spec: same canonical rendering, same digest. A second
// daemon sharing the disk cache must serve the identical bytes from
// disk without executing.
func TestEndToEndByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cache, err := runner.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := runner.New(runner.Options{Workers: 2, Cache: cache})
	_, ts := newTestServer(t, Options{Engine: eng})

	spec := shortSpec(11)
	cfg, norm, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	a := core.RunAudit(cfg, norm.GPU, norm.CPU)
	direct := simspec.NewResult(norm, a.Results, a.Digest)
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	v, resp := submit(t, ts, SubmitRequest{Spec: spec}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if v.Status != StatusQueued && v.Status != StatusRunning {
		t.Fatalf("fresh job status = %s", v.Status)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return v.Status.Terminal() })
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", done.Status, done.Error)
	}
	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	gotJSON, err := json.Marshal(*done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, directJSON) {
		t.Fatalf("daemon result differs from direct run:\n daemon: %s\n direct: %s", gotJSON, directJSON)
	}

	// A fresh daemon over the same cache dir serves identical bytes
	// from disk.
	cache2, err := runner.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := runner.New(runner.Options{Workers: 1, Cache: cache2})
	_, ts2 := newTestServer(t, Options{Engine: eng2})
	v2, _ := submit(t, ts2, SubmitRequest{Spec: spec}, "?wait=1")
	if v2.Status != StatusDone {
		t.Fatalf("cached job ended %s (%s)", v2.Status, v2.Error)
	}
	if v2.Source != "disk" {
		t.Fatalf("cached job source = %q, want disk", v2.Source)
	}
	got2, err := json.Marshal(*v2.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, directJSON) {
		t.Fatalf("disk-cache result differs from direct run:\n daemon: %s\n direct: %s", got2, directJSON)
	}
	if c := eng2.Counters(); c.Executed != 0 || c.DiskHits != 1 {
		t.Fatalf("second engine counters = %+v, want pure disk hit", c)
	}
}

// TestEffectiveParallelClamp pins the admission-aware clamp: requests
// are capped by MaxRunParallel, then by the per-running-job share of
// the cap, and never drop below serial.
func TestEffectiveParallelClamp(t *testing.T) {
	s := &Server{maxParallel: 8}
	cases := []struct{ req, running, want int }{
		{0, 1, 1},  // no hint: serial
		{1, 1, 1},  // explicit serial
		{16, 1, 8}, // capped by MaxRunParallel
		{3, 1, 3},  // under-cap request honored
		{8, 2, 4},  // two running jobs share the cap
		{8, 10, 1}, // heavy load floors at serial
	}
	for _, c := range cases {
		s.runningCount = c.running
		if got := s.effectiveParallelLocked(c.req); got != c.want {
			t.Errorf("effectiveParallel(req=%d, running=%d) = %d, want %d",
				c.req, c.running, got, c.want)
		}
	}
	s.maxParallel = 0
	s.runningCount = 1
	if got := s.effectiveParallelLocked(8); got != 1 {
		t.Errorf("cap disabled: effectiveParallel = %d, want 1", got)
	}
}

// TestSubmitParallelSpec submits a spec with a parallel hint and checks
// the full contract: the hint is clamped to the server cap, stripped
// from the canonical spec, and the tiled result is byte-comparable with
// a direct serial run.
func TestSubmitParallelSpec(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRunParallel: 4})
	spec := shortSpec(77)
	spec.Parallel = 8
	v, resp := submit(t, ts, SubmitRequest{Spec: spec}, "?wait")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if v.Status != StatusDone {
		t.Fatalf("job status %s, want done (error %q)", v.Status, v.Error)
	}
	if v.Parallel != 4 {
		t.Fatalf("effective parallel %d, want 4 (request 8 capped)", v.Parallel)
	}
	if v.Workers != 4 {
		t.Fatalf("engine-effective workers %d, want 4 (default mesh can use the full grant)", v.Workers)
	}
	if v.Spec.Parallel != 0 {
		t.Fatalf("canonical spec leaked the parallel hint: %d", v.Spec.Parallel)
	}
	cfg, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	a := core.RunAudit(cfg, spec.GPU, spec.CPU)
	if v.Result == nil || v.Result.Digest != fmt.Sprintf("%016x", a.Digest) {
		t.Fatalf("served tiled result diverged from direct serial run: %+v vs %016x",
			v.Result, a.Digest)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"bad json":      `{`,
		"unknown field": `{"spec":{"gpu":"HS","cpu":"vips","cyclez":5}}`,
		"bad spec":      `{"spec":{"gpu":"nope","cpu":"vips"}}`,
		"bad priority":  `{"spec":{"gpu":"HS","cpu":"vips"},"priority":"urgent"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// Cancelling a running job frees its worker slot for the next job.
func TestCancelRunningFreesWorker(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: runner.New(runner.Options{Workers: 1}), Workers: 1})

	long, resp := submit(t, ts, SubmitRequest{Spec: longSpec(21)}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	pollUntil(t, ts, long.ID, func(v JobView) bool { return v.Status == StatusRunning })

	short, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(22)}, "")

	if resp := cancelJob(t, ts, long.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	v := pollUntil(t, ts, long.ID, func(v JobView) bool { return v.Status.Terminal() })
	if v.Status != StatusCancelled {
		t.Fatalf("cancelled job ended %s", v.Status)
	}
	// The freed slot must run the short job to completion.
	v = pollUntil(t, ts, short.ID, func(v JobView) bool { return v.Status.Terminal() })
	if v.Status != StatusDone {
		t.Fatalf("follow-up job ended %s (%s)", v.Status, v.Error)
	}
	// Cancelling a terminal job conflicts.
	if resp := cancelJob(t, ts, long.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409", resp.StatusCode)
	}
}

// A parallel job's per-run worker pool (System.SetParallel owns N-1
// goroutines) must be released on every daemon lifecycle path:
// completion, mid-run cancellation, and server shutdown. The check is
// the process goroutine count returning to its pre-server baseline.
func TestParallelJobsReleaseWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Options{Engine: runner.New(runner.Options{Workers: 2}), MaxRunParallel: 4})
	ts := httptest.NewServer(s.Handler())

	par := func(spec simspec.Spec) simspec.Spec { spec.Parallel = 4; return spec }

	// Completed parallel job.
	v, _ := submit(t, ts, SubmitRequest{Spec: par(shortSpec(41))}, "?wait")
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if v.Workers != 4 {
		t.Fatalf("engine-effective workers %d, want 4", v.Workers)
	}

	// Cancelled mid-run.
	long, _ := submit(t, ts, SubmitRequest{Spec: par(longSpec(42))}, "")
	pollUntil(t, ts, long.ID, func(v JobView) bool { return v.Status == StatusRunning })
	if resp := cancelJob(t, ts, long.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	pollUntil(t, ts, long.ID, func(v JobView) bool { return v.Status.Terminal() })

	// Shutdown with a parallel job still running.
	run2, _ := submit(t, ts, SubmitRequest{Spec: par(longSpec(43))}, "")
	pollUntil(t, ts, run2.ID, func(v JobView) bool { return v.Status == StatusRunning })
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)

	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d alive, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Cancelling a queued job retires it without it ever running.
func TestCancelQueued(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: runner.New(runner.Options{Workers: 1}), Workers: 1})
	long, _ := submit(t, ts, SubmitRequest{Spec: longSpec(31)}, "")
	pollUntil(t, ts, long.ID, func(v JobView) bool { return v.Status == StatusRunning })
	queued, _ := submit(t, ts, SubmitRequest{Spec: longSpec(32)}, "")
	if resp := cancelJob(t, ts, queued.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d", resp.StatusCode)
	}
	v := getJob(t, ts, queued.ID)
	if v.Status != StatusCancelled || v.Started != "" {
		t.Fatalf("queued cancel: %+v", v)
	}
}

// A full queue answers 429 with a Retry-After hint; draining the
// backlog readmits.
func TestQueueOverflow429(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Engine: runner.New(runner.Options{Workers: 1}), Workers: 1, QueueDepth: 1,
	})
	running, _ := submit(t, ts, SubmitRequest{Spec: longSpec(41)}, "")
	pollUntil(t, ts, running.ID, func(v JobView) bool { return v.Status == StatusRunning })
	queued, resp := submit(t, ts, SubmitRequest{Spec: longSpec(42)}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d", resp.StatusCode)
	}
	_, resp = submit(t, ts, SubmitRequest{Spec: longSpec(43)}, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Free the queue slot: admission recovers.
	cancelJob(t, ts, queued.ID)
	third, resp := submit(t, ts, SubmitRequest{Spec: longSpec(44)}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d", resp.StatusCode)
	}
	cancelJob(t, ts, third.ID)
	cancelJob(t, ts, running.ID)
}

// The per-client cap rejects one client's overload without touching
// another client.
func TestClientCap429(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Engine: runner.New(runner.Options{Workers: 1}), Workers: 1, ClientInFlight: 1,
	})
	a1, _ := submit(t, ts, SubmitRequest{Spec: longSpec(51), Client: "alice"}, "")
	_, resp := submit(t, ts, SubmitRequest{Spec: longSpec(52), Client: "alice"}, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped submit: status %d, want 429", resp.StatusCode)
	}
	b1, resp := submit(t, ts, SubmitRequest{Spec: longSpec(53), Client: "bob"}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other client: status %d", resp.StatusCode)
	}
	// Alice's job finishing readmits her.
	cancelJob(t, ts, a1.ID)
	pollUntil(t, ts, a1.ID, func(v JobView) bool { return v.Status.Terminal() })
	a2, resp := submit(t, ts, SubmitRequest{Spec: longSpec(54), Client: "alice"}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("readmitted submit: status %d", resp.StatusCode)
	}
	cancelJob(t, ts, b1.ID)
	cancelJob(t, ts, a2.ID)
}

// Queued high-priority jobs dispatch before queued normal ones.
func TestPriorityDispatch(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: runner.New(runner.Options{Workers: 1}), Workers: 1})
	gate, _ := submit(t, ts, SubmitRequest{Spec: longSpec(61)}, "")
	pollUntil(t, ts, gate.ID, func(v JobView) bool { return v.Status == StatusRunning })
	low, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(62), Priority: "low"}, "")
	high, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(63), Priority: "high"}, "")
	cancelJob(t, ts, gate.ID)
	lv := pollUntil(t, ts, low.ID, func(v JobView) bool { return v.Status.Terminal() })
	hv := pollUntil(t, ts, high.ID, func(v JobView) bool { return v.Status.Terminal() })
	if lv.Status != StatusDone || hv.Status != StatusDone {
		t.Fatalf("jobs ended %s / %s", lv.Status, hv.Status)
	}
	ls, err1 := time.Parse(time.RFC3339Nano, lv.Started)
	hs, err2 := time.Parse(time.RFC3339Nano, hv.Started)
	if err1 != nil || err2 != nil {
		t.Fatalf("parsing start times: %v %v", err1, err2)
	}
	if !hs.Before(ls) {
		t.Fatalf("high started %s, low started %s: want high first", hv.Started, lv.Started)
	}
}

// A ?wait=1 client that disconnects abandons — and thereby cancels —
// its job.
func TestWaitDisconnectCancels(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: runner.New(runner.Options{Workers: 1}), Workers: 1})
	body, _ := json.Marshal(SubmitRequest{Spec: longSpec(71)})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	// Find the job via the listing, wait for it to run, then drop the
	// waiting connection.
	var id string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && id == "" {
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []JobView `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(list.Jobs) > 0 && list.Jobs[0].Status == StatusRunning {
			id = list.Jobs[0].ID
		}
		time.Sleep(10 * time.Millisecond)
	}
	if id == "" {
		t.Fatal("job never appeared as running")
	}
	cancel()
	<-errCh
	v := pollUntil(t, ts, id, func(v JobView) bool { return v.Status.Terminal() })
	if v.Status != StatusCancelled {
		t.Fatalf("abandoned job ended %s", v.Status)
	}
}

// Shutdown drains running jobs to completion and retires queued ones.
func TestShutdownDrains(t *testing.T) {
	s := New(Options{Engine: runner.New(runner.Options{Workers: 1}), Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(81)}, "")
	pollUntil(t, ts, running.ID, func(v JobView) bool { return v.Status != StatusQueued })
	queued, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(82)}, "")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if v := getJob(t, ts, running.ID); v.Status != StatusDone {
		t.Fatalf("running job ended %s, want done", v.Status)
	}
	if v := getJob(t, ts, queued.ID); v.Status != StatusCancelled {
		t.Fatalf("queued job ended %s, want cancelled", v.Status)
	}
	// Draining refuses new work and reports unready.
	_, resp := submit(t, ts, SubmitRequest{Spec: shortSpec(83)}, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: status %d, want 503", resp.StatusCode)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", rz.StatusCode)
	}
}

// A shutdown deadline cancels still-running jobs at their next
// checkpoint rather than hanging forever.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	s := New(Options{Engine: runner.New(runner.Options{Workers: 1}), Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	long, _ := submit(t, ts, SubmitRequest{Spec: longSpec(91)}, "")
	pollUntil(t, ts, long.ID, func(v JobView) bool { return v.Status == StatusRunning })

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil despite a running long job")
	}
	if v := getJob(t, ts, long.ID); v.Status != StatusCancelled {
		t.Fatalf("long job ended %s, want cancelled", v.Status)
	}
}

// The SSE stream delivers progress and ends with the terminal status
// carrying the result.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Options{ProgressInterval: 20 * time.Millisecond})
	v, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(101)}, "")
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if len(events) == 0 || events[len(events)-1] != "status" {
		t.Fatalf("events = %v, want trailing status", events)
	}
	var final JobView
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatalf("final event data: %v\n%s", err, lastData)
	}
	if final.Status != StatusDone || final.Result == nil {
		t.Fatalf("final event = %+v", final)
	}
}

// /metrics exposes queue gauges, outcome counters, engine accounting,
// and the latency histogram.
func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	v, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(111)}, "?wait=1")
	if v.Status != StatusDone {
		t.Fatalf("job ended %s", v.Status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"delrepd_jobs_queued 0",
		"delrepd_jobs_running 0",
		`delrepd_jobs_total{status="done"} 1`,
		`delrepd_engine_runs_total{source="executed"} 1`,
		"delrepd_job_seconds_count 1",
		"delrepd_cache_hit_ratio 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// The canonical spec is echoed back: submitting an alias-token spec
// returns the canonical form, and the result identity is preserved.
func TestCanonicalSpecEcho(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	v, _ := submit(t, ts, SubmitRequest{
		Spec: simspec.Spec{GPU: "HS", CPU: "vips", Scheme: "DelegatedReplies",
			Warmup: 200, Cycles: 2000, Seed: 121},
	}, "?wait=1")
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if v.Spec.Scheme != "delegated" {
		t.Fatalf("echoed scheme = %q, want canonical", v.Spec.Scheme)
	}
	if !reflect.DeepEqual(v.Result.Spec, v.Spec) {
		t.Fatalf("result spec %+v != job spec %+v", v.Result.Spec, v.Spec)
	}
	if len(v.Result.Digest) != 16 {
		t.Fatalf("digest = %q", v.Result.Digest)
	}
}
