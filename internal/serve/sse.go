package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// sseEvent is one server-sent event: a named payload pushed to a
// subscribed client.
type sseEvent struct {
	name string
	data any
}

// notifyLocked pushes the job's current view to every subscriber.
// Server.mu must be held. Sends never block: a subscriber that has
// fallen behind misses intermediate transitions but always receives
// the terminal one via its own doneCh wait.
func (s *Server) notifyLocked(j *Job) {
	if len(j.subs) == 0 {
		return
	}
	ev := sseEvent{name: "status", data: j.viewLocked()}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an event channel on the job; the returned func
// removes it.
func (s *Server) subscribe(j *Job) (chan sseEvent, func()) {
	ch := make(chan sseEvent, 8)
	s.mu.Lock()
	j.subs[ch] = struct{}{}
	s.sseSubs++
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(j.subs, ch)
		s.sseSubs--
		s.mu.Unlock()
	}
}

func writeSSE(w http.ResponseWriter, f http.Flusher, ev sseEvent) error {
	b, err := json.Marshal(ev.data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, b); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// handleEvents streams a job's lifecycle as server-sent events: a
// "status" event on subscription and at every transition, "progress"
// events at the configured interval while the job runs, and a final
// "status" event carrying the terminal view (including the result for
// completed jobs), after which the stream ends.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	f, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	ch, unsub := s.subscribe(j)
	defer unsub()

	ticker := time.NewTicker(s.progressEvery)
	defer ticker.Stop()

	emitView := func() (terminal bool, err error) {
		s.mu.Lock()
		view := j.viewLocked()
		s.mu.Unlock()
		return view.Status.Terminal(), writeSSE(w, f, sseEvent{name: "status", data: view})
	}
	if terminal, err := emitView(); terminal || err != nil {
		return
	}
	for {
		select {
		case ev := <-ch:
			if err := writeSSE(w, f, ev); err != nil {
				return
			}
			if view, ok := ev.data.(JobView); ok && view.Status.Terminal() {
				return
			}
		case <-ticker.C:
			s.mu.Lock()
			var pv *ProgressView
			if j.status == StatusRunning && j.fut != nil {
				done, total := j.fut.Progress()
				pv = &ProgressView{CyclesDone: done, CyclesTotal: total}
			}
			s.mu.Unlock()
			if pv == nil {
				continue
			}
			if err := writeSSE(w, f, sseEvent{name: "progress", data: pv}); err != nil {
				return
			}
		case <-j.doneCh:
			// Drain any buffered transition first so event order holds,
			// then emit the terminal view.
			for {
				select {
				case ev := <-ch:
					if err := writeSSE(w, f, ev); err != nil {
						return
					}
					if view, ok := ev.data.(JobView); ok && view.Status.Terminal() {
						return
					}
					continue
				default:
				}
				break
			}
			_, _ = emitView()
			return
		case <-r.Context().Done():
			return
		}
	}
}
