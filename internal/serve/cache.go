package serve

import (
	"fmt"
	"net/http"

	"delrep/internal/core"
)

// CacheEntry is the wire form of one cached result served by
// GET /v1/cache/{key}: the stored core.Results plus the
// determinism-audit digest in the same 16-hex-digit rendering as
// simspec.Result. The spec is deliberately absent — the caller
// addressed the entry by content, so it already holds the canonical
// spec the results belong to.
type CacheEntry struct {
	Results core.Results `json:"results"`
	Digest  string       `json:"digest"`
}

// handleCacheGet serves one cached result by content address
// (runner.CacheAddr of the full run key): 200 with a CacheEntry on a
// hit, 404 on a miss or when the daemon runs uncached. The fleet
// coordinator probes this before enqueueing a job, so a spec whose
// result already sits in this worker's cache shard is answered without
// consuming a queue slot or a worker goroutine — the warm disk caches
// of the fleet collectively form a distributed cache tier.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	cache := s.eng.DiskCache()
	if cache == nil {
		writeError(w, http.StatusNotFound, "this daemon runs uncached")
		return
	}
	addr := r.PathValue("key")
	res, digest, ok := cache.GetAddr(addr)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %q", addr)
		return
	}
	writeJSON(w, http.StatusOK, CacheEntry{
		Results: res,
		Digest:  fmt.Sprintf("%016x", digest),
	})
}
