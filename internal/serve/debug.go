package serve

import (
	"html/template"
	"net/http"
	"time"

	"delrep/internal/telemetry"
)

// handleDebugJobs dumps the flight recorder: summaries (with span
// trees) of the last N completed jobs, newest first. 404 when
// telemetry is off.
func (s *Server) handleDebugJobs(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "telemetry is disabled; start the daemon with -telemetry")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Total    int64                 `json:"total"`
		Capacity int                   `json:"capacity"`
		Jobs     []telemetry.JobRecord `json:"jobs"`
	}{s.flight.Total(), s.flight.Cap(), s.flight.Snapshot()})
}

// statusPage is the data fed to the /debug/status template.
type statusPage struct {
	Uptime       string
	Workers      int
	Queued       int
	Running      int
	Draining     bool
	SSESubs      int
	Done         int64
	Failed       int64
	Cancelled    int64
	CacheHits    int64
	CacheMisses  int64
	CacheCorrupt int64
	Recent       []telemetry.JobRecord
}

var statusTmpl = template.Must(template.New("status").Funcs(template.FuncMap{
	"seconds": func(us int64) float64 { return float64(us) / 1e6 },
}).Parse(`<!DOCTYPE html>
<html><head><title>delrepd status</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-top: 0.5em; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: left; }
th { background: #f0f0f0; }
.gauges span { margin-right: 2em; }
</style></head>
<body>
<h1>delrepd</h1>
<p class="gauges">
<span>uptime <b>{{.Uptime}}</b></span>
<span>workers <b>{{.Workers}}</b></span>
<span>queued <b>{{.Queued}}</b></span>
<span>running <b>{{.Running}}</b></span>
<span>sse subscribers <b>{{.SSESubs}}</b></span>
{{if .Draining}}<span><b>DRAINING</b></span>{{end}}
</p>
<p class="gauges">
<span>done <b>{{.Done}}</b></span>
<span>failed <b>{{.Failed}}</b></span>
<span>cancelled <b>{{.Cancelled}}</b></span>
<span>disk cache hit/miss/corrupt <b>{{.CacheHits}}/{{.CacheMisses}}/{{.CacheCorrupt}}</b></span>
</p>
{{if .Recent}}
<h2>recent jobs</h2>
<table>
<tr><th>id</th><th>client</th><th>prio</th><th>spec</th><th>outcome</th><th>source</th><th>queue</th><th>exec</th><th>total</th><th>trace</th></tr>
{{range .Recent}}
<tr>
<td>{{.ID}}</td><td>{{.Client}}</td><td>{{.Priority}}</td><td>{{.Spec}}</td>
<td>{{.Outcome}}</td><td>{{.Source}}</td>
<td>{{printf "%.3fs" (seconds .QueueUS)}}</td>
<td>{{printf "%.3fs" (seconds .ExecUS)}}</td>
<td>{{printf "%.3fs" (seconds .TotalUS)}}</td>
<td><a href="/v1/jobs/{{.ID}}/trace">chrome</a> <a href="/v1/jobs/{{.ID}}/trace?format=tree">tree</a></td>
</tr>
{{end}}
</table>
{{else}}
<p>no recent jobs (the flight recorder fills once telemetry-enabled jobs complete)</p>
{{end}}
</body></html>
`))

// handleDebugStatus renders a human-oriented HTML snapshot of the
// daemon: gauges, terminal counters, cache accounting, and the flight
// recorder's recent jobs with links to their traces.
func (s *Server) handleDebugStatus(w http.ResponseWriter, r *http.Request) {
	cacheStats := s.eng.DiskCache().Stats()
	s.mu.Lock()
	page := statusPage{
		Uptime:       time.Since(s.started).Round(time.Second).String(),
		Workers:      s.workers,
		Queued:       s.queuedCount,
		Running:      s.runningCount,
		Draining:     s.draining,
		SSESubs:      s.sseSubs,
		Done:         s.statusCounts[StatusDone],
		Failed:       s.statusCounts[StatusFailed],
		Cancelled:    s.statusCounts[StatusCancelled],
		CacheHits:    cacheStats.Hits,
		CacheMisses:  cacheStats.Misses,
		CacheCorrupt: cacheStats.Corrupt,
	}
	s.mu.Unlock()
	page.Recent = s.flight.Snapshot()
	if len(page.Recent) > 20 {
		page.Recent = page.Recent[:20]
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusTmpl.Execute(w, page); err != nil {
		s.logger.WarnContext(r.Context(), "status page render failed", "error", err)
	}
}
