package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"delrep/internal/runner"
	"delrep/internal/telemetry"
)

// Telemetry is inert: the result a client reads from a traced job is
// byte-identical to the result of the same spec served with telemetry
// off. The span layer records wall-clock times, which must never leak
// into the simulation or its digest.
func TestTelemetryInertness(t *testing.T) {
	spec := shortSpec(201)

	_, plain := newTestServer(t, Options{Engine: runner.New(runner.Options{Workers: 2})})
	_, traced := newTestServer(t, Options{
		Engine:    runner.New(runner.Options{Workers: 2}),
		Telemetry: true,
	})

	vp, _ := submit(t, plain, SubmitRequest{Spec: spec}, "?wait=1")
	vt, _ := submit(t, traced, SubmitRequest{Spec: spec}, "?wait=1")
	if vp.Status != StatusDone || vt.Status != StatusDone {
		t.Fatalf("jobs ended %s / %s", vp.Status, vt.Status)
	}
	if vp.Result == nil || vt.Result == nil {
		t.Fatal("missing results")
	}
	pj, err := json.Marshal(*vp.Result)
	if err != nil {
		t.Fatal(err)
	}
	tj, err := json.Marshal(*vt.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, tj) {
		t.Fatalf("telemetry changed the served result:\n  plain:  %s\n  traced: %s", pj, tj)
	}
	if vp.Result.Digest != vt.Result.Digest {
		t.Fatalf("digest differs: %s vs %s", vp.Result.Digest, vt.Result.Digest)
	}
}

// End-to-end telemetry walk for one job: submit, read the span tree,
// export the Chrome timeline, and find the same job in the flight
// recorder and on the status page.
func TestTelemetryEndToEnd(t *testing.T) {
	cache, err := runner.OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{
		Engine:    runner.New(runner.Options{Workers: 2, Cache: cache}),
		Telemetry: true,
	})

	v, vresp := submit(t, ts, SubmitRequest{Spec: shortSpec(211), Client: "tracer"}, "?wait=1")
	if vresp.StatusCode != http.StatusOK || v.Status != StatusDone {
		t.Fatalf("submit: status %d, job %s (%s)", vresp.StatusCode, v.Status, v.Error)
	}

	// The span tree covers the full lifecycle.
	tresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", tresp.StatusCode)
	}
	var root telemetry.SpanView
	if err := json.NewDecoder(tresp.Body).Decode(&root); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"http.receive", "admission", "queue.wait", "runner.submit",
		"cache.lookup", "engine.run", "window 0", "encode", "reply",
	} {
		if _, ok := root.Find(name); !ok {
			t.Errorf("span %q missing from trace:\n%+v", name, root)
		}
	}
	if root.Open {
		t.Error("terminal job's root span is still open")
	}
	if got := root.Attrs["outcome"]; got != "done" {
		t.Errorf("root outcome attr = %v, want done", got)
	}
	sub, _ := root.Find("runner.submit")
	if _, ok := sub.Find("engine.run"); !ok {
		t.Error("engine.run is not nested under runner.submit")
	}

	// The default export is a Chrome trace-event document.
	cresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			names[ev.Name] = true
		}
	}
	if !names["job"] || !names["engine.run"] {
		t.Fatalf("chrome export misses spans, got %v", names)
	}

	// The flight recorder holds the completed job, span tree included.
	dresp, err := http.Get(ts.URL + "/debug/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var flight struct {
		Total    int64                 `json:"total"`
		Capacity int                   `json:"capacity"`
		Jobs     []telemetry.JobRecord `json:"jobs"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&flight); err != nil {
		t.Fatal(err)
	}
	if flight.Total < 1 || len(flight.Jobs) == 0 {
		t.Fatalf("flight recorder empty: %+v", flight)
	}
	rec := flight.Jobs[0]
	if rec.ID != v.ID || rec.Client != "tracer" || rec.Outcome != "done" {
		t.Fatalf("flight record = %+v, want job %s by tracer", rec, v.ID)
	}
	if rec.SpecKey == "" || rec.TotalUS <= 0 {
		t.Fatalf("flight record lacks spec key or timing: %+v", rec)
	}
	if _, ok := rec.Trace.Find("queue.wait"); !ok {
		t.Fatalf("flight record trace misses queue.wait: %+v", rec.Trace)
	}

	// The HTML status page lists the job.
	sresp, err := http.Get(ts.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	page := readAll(t, sresp)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK || !strings.Contains(page, v.ID) {
		t.Fatalf("/debug/status (status %d) does not list %s:\n%s", sresp.StatusCode, v.ID, page)
	}

	// A job cancelled while queued also lands in the recorder.
	gate, _ := submit(t, ts, SubmitRequest{Spec: longSpec(212)}, "")
	pollUntil(t, ts, gate.ID, func(v JobView) bool { return v.Status == StatusRunning })
	gate2, _ := submit(t, ts, SubmitRequest{Spec: longSpec(213)}, "")
	pollUntil(t, ts, gate2.ID, func(v JobView) bool { return v.Status == StatusRunning })
	queued, _ := submit(t, ts, SubmitRequest{Spec: longSpec(214)}, "")
	cancelJob(t, ts, queued.ID)
	found := false
	for _, rec := range s.flight.Snapshot() {
		if rec.ID == queued.ID {
			found = true
			if rec.Outcome != "cancelled" {
				t.Fatalf("queued-cancel record outcome = %q", rec.Outcome)
			}
		}
	}
	if !found {
		t.Fatalf("queued-cancelled job %s missing from flight recorder", queued.ID)
	}
	cancelJob(t, ts, gate.ID)
	cancelJob(t, ts, gate2.ID)
}

// With telemetry off, the trace and flight endpoints answer 404 and
// jobs run untraced.
func TestTelemetryDisabledEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	v, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(221)}, "?wait=1")
	if v.Status != StatusDone {
		t.Fatalf("job ended %s", v.Status)
	}
	for _, path := range []string{"/v1/jobs/" + v.ID + "/trace", "/debug/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	// The status page still works, just without recent jobs.
	resp, err := http.Get(ts.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/status: status %d", resp.StatusCode)
	}
}

// The new metric families appear once jobs have flowed through.
func TestMetricsTelemetrySeries(t *testing.T) {
	_, ts := newTestServer(t, Options{Telemetry: true})
	if v, _ := submit(t, ts, SubmitRequest{Spec: shortSpec(231), Priority: "high"}, "?wait=1"); v.Status != StatusDone {
		t.Fatalf("job ended %s", v.Status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, resp)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE delrepd_job_queue_seconds histogram",
		`delrepd_job_queue_seconds_count{priority="high"} 1`,
		`delrepd_job_exec_seconds_count{priority="high"} 1`,
		`delrepd_job_total_seconds_count{priority="high"} 1`,
		`delrepd_job_total_seconds_count{priority="normal"} 0`,
		`delrepd_rejects_total{reason="draining"} 0`,
		`delrepd_disk_cache_total{result="hit"} 0`,
		"delrepd_sse_subscribers 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// sseEvents collects one SSE stream: event names in order plus the
// decoded last status payload.
func sseEvents(t *testing.T, resp *http.Response) (names []string, last JobView) {
	t.Helper()
	sc := bufio.NewScanner(resp.Body)
	var lastData string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			names = append(names, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if lastData != "" {
		_ = json.Unmarshal([]byte(lastData), &last)
	}
	return names, last
}

// Cancelling a running job still delivers the terminal status event to
// its SSE subscribers, and the stream then ends.
func TestEventsCancelTerminalDelivery(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Engine: runner.New(runner.Options{Workers: 1}), Workers: 1,
		ProgressInterval: 20 * time.Millisecond,
	})
	v, _ := submit(t, ts, SubmitRequest{Spec: longSpec(241)}, "")
	pollUntil(t, ts, v.ID, func(v JobView) bool { return v.Status == StatusRunning })

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan struct{})
	var names []string
	var final JobView
	go func() {
		defer close(done)
		names, final = sseEvents(t, resp)
	}()

	// Let at least one progress tick land before cancelling.
	time.Sleep(60 * time.Millisecond)
	if c := cancelJob(t, ts, v.ID); c.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", c.StatusCode)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not end after cancellation")
	}
	if len(names) == 0 || names[len(names)-1] != "status" {
		t.Fatalf("events = %v, want trailing status", names)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("final SSE status = %s, want cancelled", final.Status)
	}
	// status events never arrive after the terminal one ended the
	// stream; progress events never follow the last status.
	for i, n := range names[:len(names)-1] {
		if n != "status" && n != "progress" {
			t.Fatalf("unexpected event %q at %d in %v", n, i, names)
		}
	}
}

// A subscriber that disconnects mid-stream releases its subscription
// (the gauge drains to zero) without disturbing the job.
func TestEventsClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Engine: runner.New(runner.Options{Workers: 1}), Workers: 1,
		ProgressInterval: 10 * time.Millisecond,
	})
	v, _ := submit(t, ts, SubmitRequest{Spec: longSpec(251)}, "")
	pollUntil(t, ts, v.ID, func(v JobView) bool { return v.Status == StatusRunning })

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The subscription registers...
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		n := s.sseSubs
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sse subscriber gauge = %d, want 1", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...and a dropped connection releases it.
	cancel()
	for {
		s.mu.Lock()
		n := s.sseSubs
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sse subscriber gauge = %d after disconnect, want 0", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The job is untouched by its watcher vanishing.
	if got := getJob(t, ts, v.ID); got.Status != StatusRunning {
		t.Fatalf("job status after subscriber disconnect = %s, want running", got.Status)
	}
	cancelJob(t, ts, v.ID)
}
