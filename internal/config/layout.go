package config

import "fmt"

// Layout describes the placement of CPU cores, GPU cores, and memory
// nodes on the chip grid, plus the CDR dimension orders the paper pairs
// with each layout (Section V, Figure 1).
type Layout struct {
	Name     string
	Width    int
	Height   int
	Kinds    []NodeKind // row-major: id = y*Width + x
	ReqOrder DimOrder   // CDR dimension order for requests
	RepOrder DimOrder   // CDR dimension order for replies
}

// Nodes returns the total node count.
func (l Layout) Nodes() int { return l.Width * l.Height }

// Kind returns the node kind at the given node id.
func (l Layout) Kind(id int) NodeKind { return l.Kinds[id] }

// XY returns the grid coordinates of a node id.
func (l Layout) XY(id int) (x, y int) { return id % l.Width, id / l.Width }

// ID returns the node id at grid coordinates (x, y).
func (l Layout) ID(x, y int) int { return y*l.Width + x }

// NodesOf returns the node ids of the given kind, in increasing order.
func (l Layout) NodesOf(k NodeKind) []int {
	var ids []int
	for id, kind := range l.Kinds {
		if kind == k {
			ids = append(ids, id)
		}
	}
	return ids
}

// Counts returns the number of GPU, CPU, and memory nodes.
func (l Layout) Counts() (gpu, cpu, mem int) {
	for _, k := range l.Kinds {
		switch k {
		case KindGPU:
			gpu++
		case KindCPU:
			cpu++
		case KindMem:
			mem++
		}
	}
	return
}

// Validate checks grid consistency.
func (l Layout) Validate() error {
	if l.Width <= 0 || l.Height <= 0 {
		return fmt.Errorf("layout %q: non-positive dimensions %dx%d", l.Name, l.Width, l.Height)
	}
	if len(l.Kinds) != l.Width*l.Height {
		return fmt.Errorf("layout %q: %d kinds for %dx%d grid", l.Name, len(l.Kinds), l.Width, l.Height)
	}
	_, _, mem := l.Counts()
	if mem == 0 {
		return fmt.Errorf("layout %q: no memory nodes", l.Name)
	}
	return nil
}

// parseGrid converts rows of 'C'/'G'/'M' runes into a kind slice.
func parseGrid(rows []string) []NodeKind {
	var kinds []NodeKind
	for _, row := range rows {
		for _, r := range row {
			switch r {
			case 'C':
				kinds = append(kinds, KindCPU)
			case 'G':
				kinds = append(kinds, KindGPU)
			case 'M':
				kinds = append(kinds, KindMem)
			default:
				panic(fmt.Sprintf("layout: bad cell %q in row %q", r, row))
			}
		}
	}
	return kinds
}

// BaselineLayout is Figure 1a: CPU columns on the west edge, a full
// memory-node column between the CPUs and GPUs, GPU columns on the east.
// CDR uses YX order for requests and XY order for replies, isolating CPU
// and GPU traffic everywhere except the memory-node routers.
func BaselineLayout() Layout {
	rows := make([]string, 8)
	for i := range rows {
		rows[i] = "CCMGGGGG"
	}
	return Layout{
		Name: "Baseline", Width: 8, Height: 8,
		Kinds:    parseGrid(rows),
		ReqOrder: OrderYX, RepOrder: OrderXY,
	}
}

// LayoutB is Figure 1b: memory nodes on the top (die-edge) row, inspired
// by commercial APU die photos; XY requests, YX replies to avoid
// congestion in the memory row.
func LayoutB() Layout {
	rows := []string{
		"MMMMMMMM",
		"CCCGGGGG",
		"CCCGGGGG",
		"CCGGGGGG",
		"CCGGGGGG",
		"CCGGGGGG",
		"CCGGGGGG",
		"CCGGGGGG",
	}
	return Layout{
		Name: "B", Width: 8, Height: 8,
		Kinds:    parseGrid(rows),
		ReqOrder: OrderXY, RepOrder: OrderYX,
	}
}

// LayoutC is Figure 1c: CPU cores clustered in a 4x4 block to minimize
// inter-CPU hop count, memory nodes in a 2x4 block beside them; GPU
// vertical memory traffic is multiplexed onto few links.
func LayoutC() Layout {
	rows := []string{
		"CCCCMMGG",
		"CCCCMMGG",
		"CCCCMMGG",
		"CCCCMMGG",
		"GGGGGGGG",
		"GGGGGGGG",
		"GGGGGGGG",
		"GGGGGGGG",
	}
	return Layout{
		Name: "C", Width: 8, Height: 8,
		Kinds:    parseGrid(rows),
		ReqOrder: OrderXY, RepOrder: OrderYX,
	}
}

// LayoutD is Figure 1d (prior work [38], [46], [59]): core types spread
// across the chip to distribute traffic; XY order for both classes since
// different orders cannot separate the interleaved traffic.
func LayoutD() Layout {
	rows := []string{
		"GCGCGCGC",
		"MGGGMGGG",
		"GCGCGCGC",
		"MGGGMGGG",
		"GCGCGCGC",
		"MGGGMGGG",
		"GCGCGCGC",
		"MGGGMGGG",
	}
	return Layout{
		Name: "D", Width: 8, Height: 8,
		Kinds:    parseGrid(rows),
		ReqOrder: OrderXY, RepOrder: OrderXY,
	}
}

// AllLayouts returns the four Figure 1 layouts in paper order.
func AllLayouts() []Layout {
	return []Layout{BaselineLayout(), LayoutB(), LayoutC(), LayoutD()}
}

// LayoutFromCounts builds a baseline-style layout on a WxH grid with the
// given CPU and memory node counts: CPUs fill west columns, memory nodes
// the next column(s), GPUs the rest. Used for node-count and node-mix
// sensitivity studies (Section VII).
func LayoutFromCounts(name string, w, h, cpus, mems int) Layout {
	total := w * h
	if cpus+mems > total {
		panic(fmt.Sprintf("layout %s: %d CPUs + %d mems > %d nodes", name, cpus, mems, total))
	}
	kinds := make([]NodeKind, total)
	// Fill column-major: west columns CPU, then memory, then GPU.
	idx := 0
	fill := func(n int, k NodeKind) {
		for ; n > 0; n-- {
			x := idx / h
			y := idx % h
			kinds[y*w+x] = k
			idx++
		}
	}
	fill(cpus, KindCPU)
	fill(mems, KindMem)
	fill(total-cpus-mems, KindGPU)
	return Layout{
		Name: name, Width: w, Height: h,
		Kinds:    kinds,
		ReqOrder: OrderYX, RepOrder: OrderXY,
	}
}

// ScaledBaseline builds a baseline-style layout for larger meshes
// (10x10, 12x12) keeping roughly the 8x8 proportions: a quarter of the
// nodes are CPUs (rounded to whole columns) and one column is memory.
func ScaledBaseline(w, h int) Layout {
	cpuCols := w / 4
	return LayoutFromCounts(fmt.Sprintf("Baseline%dx%d", w, h), w, h, cpuCols*h, h)
}

// String renders the layout grid using C/G/M cells.
func (l Layout) String() string {
	s := l.Name + " (" + l.ReqOrder.String() + "-" + l.RepOrder.String() + ")\n"
	for y := 0; y < l.Height; y++ {
		for x := 0; x < l.Width; x++ {
			switch l.Kinds[l.ID(x, y)] {
			case KindCPU:
				s += "C"
			case KindGPU:
				s += "G"
			case KindMem:
				s += "M"
			}
		}
		s += "\n"
	}
	return s
}
