package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestLayoutCounts(t *testing.T) {
	for _, l := range AllLayouts() {
		gpu, cpu, mem := l.Counts()
		if gpu != 40 || cpu != 16 || mem != 8 {
			t.Errorf("layout %s: counts %d/%d/%d, want 40/16/8", l.Name, gpu, cpu, mem)
		}
		if err := l.Validate(); err != nil {
			t.Errorf("layout %s invalid: %v", l.Name, err)
		}
		if l.Nodes() != 64 {
			t.Errorf("layout %s: %d nodes", l.Name, l.Nodes())
		}
	}
}

func TestLayoutPaperRoutingOrders(t *testing.T) {
	// Section V pairs each layout with a specific CDR order.
	cases := map[string][2]DimOrder{
		"Baseline": {OrderYX, OrderXY},
		"B":        {OrderXY, OrderYX},
		"C":        {OrderXY, OrderYX},
		"D":        {OrderXY, OrderXY},
	}
	for _, l := range AllLayouts() {
		want := cases[l.Name]
		if l.ReqOrder != want[0] || l.RepOrder != want[1] {
			t.Errorf("layout %s: orders %v-%v, want %v-%v",
				l.Name, l.ReqOrder, l.RepOrder, want[0], want[1])
		}
	}
}

func TestBaselineLayoutIsolation(t *testing.T) {
	// Figure 1a: CPUs in columns 0-1, memory in column 2, GPUs east.
	l := BaselineLayout()
	for y := 0; y < l.Height; y++ {
		for x := 0; x < l.Width; x++ {
			k := l.Kind(l.ID(x, y))
			switch {
			case x < 2 && k != KindCPU:
				t.Fatalf("(%d,%d) = %v, want CPU", x, y, k)
			case x == 2 && k != KindMem:
				t.Fatalf("(%d,%d) = %v, want MEM", x, y, k)
			case x > 2 && k != KindGPU:
				t.Fatalf("(%d,%d) = %v, want GPU", x, y, k)
			}
		}
	}
}

func TestLayoutXYRoundTrip(t *testing.T) {
	l := BaselineLayout()
	for id := 0; id < l.Nodes(); id++ {
		x, y := l.XY(id)
		if l.ID(x, y) != id {
			t.Fatalf("XY/ID round trip failed for %d", id)
		}
	}
}

func TestNodesOf(t *testing.T) {
	l := BaselineLayout()
	if n := len(l.NodesOf(KindMem)); n != 8 {
		t.Fatalf("mem nodes = %d", n)
	}
	// NodesOf must return increasing ids.
	ids := l.NodesOf(KindGPU)
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("NodesOf not sorted")
		}
	}
}

func TestLayoutFromCounts(t *testing.T) {
	l := LayoutFromCounts("mix", 8, 8, 24, 8)
	gpu, cpu, mem := l.Counts()
	if cpu != 24 || mem != 8 || gpu != 32 {
		t.Fatalf("counts %d/%d/%d", gpu, cpu, mem)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaledBaseline(t *testing.T) {
	for _, n := range []int{10, 12} {
		l := ScaledBaseline(n, n)
		gpu, cpu, mem := l.Counts()
		if gpu+cpu+mem != n*n {
			t.Fatalf("%dx%d: %d nodes", n, n, gpu+cpu+mem)
		}
		if mem != n {
			t.Fatalf("%dx%d: %d mem nodes, want %d", n, n, mem, n)
		}
		if cpu != (n/4)*n {
			t.Fatalf("%dx%d: %d cpus", n, n, cpu)
		}
	}
}

func TestFlitsForData(t *testing.T) {
	n := NoC{ChannelBytes: 16}
	cases := []struct{ data, want int }{
		{0, 1}, {8, 2}, {64, 5}, {128, 9}, {129, 10},
	}
	for _, c := range cases {
		if got := n.FlitsForData(c.data); got != c.want {
			t.Errorf("FlitsForData(%d) = %d, want %d", c.data, got, c.want)
		}
	}
	wide := NoC{ChannelBytes: 32}
	if got := wide.FlitsForData(128); got != 5 {
		t.Errorf("32B channel FlitsForData(128) = %d, want 5", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := Default()
	c.NoC.ChannelBytes = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero channel width accepted")
	}
	c = Default()
	c.GPU.L1Bytes = 1000 // not divisible by assoc*line
	if err := c.Validate(); err == nil {
		t.Fatal("bad L1 geometry accepted")
	}
	c = Default()
	c.MeasureCycles = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero measure window accepted")
	}
	c = Default()
	c.NoC.SharedPhys = true
	if err := c.Validate(); err == nil {
		t.Fatal("shared phys without VC split accepted")
	}
}

func TestStringers(t *testing.T) {
	if SchemeDelegatedReplies.String() != "DelegatedReplies" {
		t.Fatal(SchemeDelegatedReplies.String())
	}
	if TopoFlattenedButterfly.String() != "FlattenedButterfly" {
		t.Fatal(TopoFlattenedButterfly.String())
	}
	if RoutingHARE.String() != "HARE" {
		t.Fatal(RoutingHARE.String())
	}
	if OrderYX.String() != "YX" || OrderXY.String() != "XY" {
		t.Fatal("dim order strings")
	}
	s := BaselineLayout().String()
	if !strings.Contains(s, "CCMGGGGG") {
		t.Fatalf("layout string:\n%s", s)
	}
}
