// Package config defines the simulated heterogeneous CPU-GPU architecture:
// the Table I machine parameters from the paper, the four chip layouts of
// Figure 1, and the enumerations that select schemes, topologies, routing
// policies, and L1 organisations across experiments.
package config

import "fmt"

// NodeKind classifies a NoC node.
type NodeKind uint8

const (
	// KindGPU is a GPU core node (SM + private L1).
	KindGPU NodeKind = iota
	// KindCPU is a CPU core node (latency-sensitive, prioritized traffic).
	KindCPU
	// KindMem is a memory node (LLC slice + memory controller).
	KindMem
)

func (k NodeKind) String() string {
	switch k {
	case KindGPU:
		return "GPU"
	case KindCPU:
		return "CPU"
	case KindMem:
		return "MEM"
	}
	return "???"
}

// Scheme selects the clogging-mitigation mechanism under evaluation.
type Scheme uint8

const (
	// SchemeBaseline is the carefully designed baseline (Section V).
	SchemeBaseline Scheme = iota
	// SchemeDelegatedReplies is the paper's contribution (Sections II, IV).
	SchemeDelegatedReplies
	// SchemeRP is Realistic Probing [31], the strongest prior approach.
	SchemeRP
)

func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "Baseline"
	case SchemeDelegatedReplies:
		return "DelegatedReplies"
	case SchemeRP:
		return "RP"
	}
	return "???"
}

// L1Org selects the GPU L1 cache organisation (Figure 15).
type L1Org uint8

const (
	// L1Private gives each SM its own L1 (baseline organisation).
	L1Private L1Org = iota
	// L1DCL1 statically shares one 4-slice L1 between 8 GPU cores [30].
	L1DCL1
	// L1DynEB dynamically chooses shared vs private per epoch [29].
	L1DynEB
)

func (o L1Org) String() string {
	switch o {
	case L1Private:
		return "Private"
	case L1DCL1:
		return "DC-L1"
	case L1DynEB:
		return "DynEB"
	}
	return "???"
}

// CTASched selects the CTA (thread block) scheduling policy.
type CTASched uint8

const (
	// CTARoundRobin assigns consecutive CTAs to consecutive SMs.
	CTARoundRobin CTASched = iota
	// CTADistributed assigns contiguous CTA chunks to each SM, improving
	// intra-SM locality (as in MCM-GPU distributed scheduling [8]).
	CTADistributed
)

func (c CTASched) String() string {
	if c == CTADistributed {
		return "Distributed"
	}
	return "RoundRobin"
}

// Topology selects the NoC topology.
type Topology uint8

const (
	// TopoMesh is the baseline 2D mesh.
	TopoMesh Topology = iota
	// TopoFlattenedButterfly fully connects rows and columns [41].
	TopoFlattenedButterfly
	// TopoDragonfly groups routers with all-to-all local and one global
	// link per router [42].
	TopoDragonfly
	// TopoCrossbar is a single-stage crossbar with core-to-core links.
	TopoCrossbar
)

func (t Topology) String() string {
	switch t {
	case TopoMesh:
		return "Mesh"
	case TopoFlattenedButterfly:
		return "FlattenedButterfly"
	case TopoDragonfly:
		return "Dragonfly"
	case TopoCrossbar:
		return "Crossbar"
	}
	return "???"
}

// DimOrder is a dimension order for DOR/CDR routing on the mesh.
type DimOrder uint8

const (
	// OrderXY routes along X first, then Y.
	OrderXY DimOrder = iota
	// OrderYX routes along Y first, then X.
	OrderYX
)

func (d DimOrder) String() string {
	if d == OrderYX {
		return "YX"
	}
	return "XY"
}

// RoutingAlg selects the routing algorithm on the mesh.
type RoutingAlg uint8

const (
	// RoutingCDR is class-based deterministic routing [3]: requests and
	// replies may use different dimension orders (the baseline policy).
	RoutingCDR RoutingAlg = iota
	// RoutingDyXY is proximity-congestion-aware adaptive routing [45].
	RoutingDyXY
	// RoutingFootprint regulates routing adaptiveness [22].
	RoutingFootprint
	// RoutingHARE is history-aware adaptive routing for endpoint
	// congestion [37].
	RoutingHARE
)

func (r RoutingAlg) String() string {
	switch r {
	case RoutingCDR:
		return "CDR"
	case RoutingDyXY:
		return "DyXY"
	case RoutingFootprint:
		return "Footprint"
	case RoutingHARE:
		return "HARE"
	}
	return "???"
}

// NoC holds network-on-chip parameters (Table I plus mechanism knobs).
type NoC struct {
	Topology     Topology
	Routing      RoutingAlg
	ReqOrder     DimOrder // dimension order for the request network (CDR)
	RepOrder     DimOrder // dimension order for the reply network (CDR)
	ChannelBytes int      // link/flit width in bytes (16 B baseline)
	VCsPerClass  int      // virtual channels per traffic class (2 baseline)
	FlitsPerVC   int      // VC buffer depth in flits (4 baseline)
	RouterDelay  int      // router pipeline depth in cycles (4 baseline)
	LinkDelay    int      // link traversal cycles (1 baseline)
	InjectionBuf int      // memory-node injection buffer, in packets
	SharedPhys   bool     // one physical network with virtual networks
	ReqVCs       int      // with SharedPhys: VCs for the request class
	RepVCs       int      // with SharedPhys: VCs for the reply class
	AdaptiveVCs  int      // extra adaptive VCs for adaptive routing
	CPUPriority  bool     // prioritize CPU packets in allocators
	RemotePrio   bool     // prioritize delegated/remote requests (deadlock rule)
}

// GPU holds GPU core parameters.
type GPU struct {
	WarpsPerSM   int // concurrent warps per SM (48)
	IssueWidth   int // instructions issued per cycle (2 GTO schedulers)
	L1Bytes      int // L1 data cache size (48 KB)
	L1Assoc      int
	L1LineBytes  int // 128 B
	L1MSHRs      int
	L1HitLatency int
	FRQEntries   int // forwarded request queue entries (8)
	MaxOutWrites int // outstanding write-through budget per SM
	Org          L1Org
	CTASched     CTASched
	DynEBEpoch   int // cycles per DynEB sampling epoch
	KernelCycles int // L1 flush period emulating kernel boundaries (0=off)
}

// CPU holds CPU core parameters.
type CPU struct {
	L1LineBytes int // 64 B
	MLP         int // max outstanding misses per core
}

// LLC holds shared last-level cache parameters.
type LLC struct {
	SliceBytes int // per memory node (1 MB)
	Assoc      int // 16
	LineBytes  int // 128 B
	MSHRs      int // outstanding DRAM misses per slice
	Latency    int // slice access latency in cycles
}

// DRAM holds GDDR5 memory controller parameters (per MC, Table I).
type DRAM struct {
	Banks    int
	TCL      int
	TRP      int
	TRC      int
	TRAS     int
	TRCD     int
	TRRD     int
	TCCD     int
	TWR      int
	BurstCyc int // data-bus cycles per 128 B line transfer
	QueueCap int
}

// RP holds Realistic Probing parameters.
type RP struct {
	ProbeFanout   int     // number of remote L1s probed per predicted-shared miss
	PredThreshold float64 // probe when EWMA success rate exceeds this
	SampleEvery   int     // always-probe sampling period for training
}

// DelRep holds Delegated Replies parameters. The extension/ablation
// knobs explore the design space around the paper's choices.
type DelRep struct {
	MaxDelegationsPerCycle int // delegation bandwidth at a memory node
	// AlwaysDelegate (ablation) delegates every delegatable reply
	// instead of only when the reply network cannot accept traffic; the
	// paper argues this needlessly exposes cores to delegation latency.
	AlwaysDelegate bool
	// FRQMerge (extension) merges delegated replies to the same line in
	// the FRQ, serving all requesters with one L1 access — the
	// idealized multicast the paper declines to build because only
	// 4.8% of FRQ entries share a line.
	FRQMerge bool
}

// Config is the complete simulated system configuration.
type Config struct {
	Layout        Layout
	Scheme        Scheme
	NoC           NoC
	GPU           GPU
	CPU           CPU
	LLC           LLC
	DRAM          DRAM
	RP            RP
	DelRep        DelRep
	Seed          int64
	WarmupCycles  int64
	MeasureCycles int64
}

// Default returns the Table I baseline configuration on the Figure 1a
// layout with CDR YX(request)/XY(reply) routing.
func Default() Config {
	return Config{
		Layout: BaselineLayout(),
		Scheme: SchemeBaseline,
		NoC: NoC{
			Topology:     TopoMesh,
			Routing:      RoutingCDR,
			ReqOrder:     OrderYX,
			RepOrder:     OrderXY,
			ChannelBytes: 16,
			VCsPerClass:  2,
			FlitsPerVC:   4,
			RouterDelay:  4,
			LinkDelay:    1,
			InjectionBuf: 8,
			AdaptiveVCs:  1,
			CPUPriority:  true,
			RemotePrio:   true,
		},
		GPU: GPU{
			WarpsPerSM:   48,
			IssueWidth:   2,
			L1Bytes:      48 * 1024,
			L1Assoc:      4,
			L1LineBytes:  128,
			L1MSHRs:      32,
			L1HitLatency: 4,
			FRQEntries:   8,
			MaxOutWrites: 16,
			Org:          L1Private,
			CTASched:     CTARoundRobin,
			DynEBEpoch:   4096,
		},
		CPU: CPU{
			L1LineBytes: 64,
			MLP:         4,
		},
		LLC: LLC{
			SliceBytes: 1 << 20,
			Assoc:      16,
			LineBytes:  128,
			MSHRs:      64,
			Latency:    20,
		},
		DRAM: DRAM{
			Banks:    16,
			TCL:      12,
			TRP:      12,
			TRC:      40,
			TRAS:     28,
			TRCD:     12,
			TRRD:     6,
			TCCD:     2,
			TWR:      12,
			BurstCyc: 6,
			QueueCap: 64,
		},
		RP: RP{
			ProbeFanout:   6,
			PredThreshold: 0.1,
			SampleEvery:   32,
		},
		DelRep: DelRep{
			MaxDelegationsPerCycle: 1,
		},
		Seed:          1,
		WarmupCycles:  20_000,
		MeasureCycles: 60_000,
	}
}

// FlitsForData returns the number of flits for a packet carrying the
// given payload bytes plus one header flit.
func (n NoC) FlitsForData(dataBytes int) int {
	if dataBytes <= 0 {
		return 1
	}
	return 1 + (dataBytes+n.ChannelBytes-1)/n.ChannelBytes
}

// Validate checks structural consistency and returns a descriptive error.
func (c Config) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if c.NoC.ChannelBytes <= 0 || c.NoC.VCsPerClass <= 0 || c.NoC.FlitsPerVC <= 0 {
		return fmt.Errorf("config: invalid NoC parameters %+v", c.NoC)
	}
	if c.NoC.SharedPhys && c.NoC.ReqVCs+c.NoC.RepVCs == 0 {
		return fmt.Errorf("config: shared physical network requires ReqVCs/RepVCs")
	}
	if c.GPU.L1Bytes%(c.GPU.L1Assoc*c.GPU.L1LineBytes) != 0 {
		return fmt.Errorf("config: GPU L1 geometry not divisible: %d/%d-way/%dB",
			c.GPU.L1Bytes, c.GPU.L1Assoc, c.GPU.L1LineBytes)
	}
	if c.LLC.SliceBytes%(c.LLC.Assoc*c.LLC.LineBytes) != 0 {
		return fmt.Errorf("config: LLC geometry not divisible")
	}
	if c.MeasureCycles <= 0 {
		return fmt.Errorf("config: MeasureCycles must be positive")
	}
	return nil
}
