package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"delrep/internal/fleet"
	"delrep/internal/serve"
	"delrep/internal/simspec"
)

// runRemote submits one spec to a delrepd or delrepfleet endpoint and
// prints the served result. With -json the output is the canonical
// simspec.Result — byte-identical to a local `delrepsim -json` run of
// the same spec, which is the fleet's core invariant and the easiest
// way to audit it:
//
//	delrepsim -gpu HS -cpu vips -json > local.json
//	delrepsim -gpu HS -cpu vips -json -remote http://fleet:9090 > served.json
//	cmp local.json served.json
func runRemote(base string, spec simspec.Spec, jsonOut bool) {
	// Resolve locally first: malformed specs fail fast with the usual
	// message, and the human report needs the resolved configuration.
	cfg, norm, err := spec.Resolve()
	if err != nil {
		fatalf("%v", err)
	}
	client := fleet.NewClient(base, "delrepsim", nil)
	ctx := context.Background()
	if err := client.Ping(ctx); err != nil {
		fatalf("%v", err)
	}
	view, err := client.Submit(ctx, spec)
	if err != nil {
		fatalf("%v", err)
	}
	if view.Status != serve.StatusDone {
		fatalf("remote job %s ended %s: %s", view.ID, view.Status, view.Error)
	}
	if view.Result == nil {
		fatalf("remote job %s: done without a result", view.ID)
	}
	// Stderr, so stdout stays exactly the result (or the canonical
	// Result bytes under -json).
	served := "remote"
	if view.Worker != "" {
		served = view.Worker
	}
	fmt.Fprintf(os.Stderr, "delrepsim: served by %s (source %s)\n", served, view.Source)

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(view.Result); err != nil {
			fatalf("encoding results: %v", err)
		}
		return
	}
	printResults(cfg, norm, view.Result.Results)
}
