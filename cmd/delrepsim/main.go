// Command delrepsim runs one simulation configuration and prints its
// results: GPU IPC, CPU latency/throughput, memory-node blocking, the
// L1 miss breakdown, and NoC statistics.
//
// Usage:
//
//	delrepsim -gpu HS -cpu vips -scheme delegated -warm 20000 -cycles 60000
//	delrepsim -sweep -gpu HS,BP,2DCON -cpu vips -scheme baseline,delegated -j 8
//	delrepsim -spec run.json -json
//	delrepsim -cache-prune 512M
//
// With -sweep, the -gpu, -cpu and -scheme flags accept comma-separated
// lists and the cross product runs concurrently on -j workers through
// the shared result cache (see internal/runner).
//
// With -spec, the run is described by a JSON spec (see internal/simspec;
// "-" reads stdin) — the same wire form the delrepd daemon accepts, so
// a spec can be replayed locally to verify a served result. -json
// prints the canonical simspec.Result (spec, results, determinism
// digest), byte-comparable with the daemon's "result" field.
//
// With -parallel N, the single run ticks in parallel on N workers —
// network tiles and node shards on one pool (see DESIGN.md §11–§12).
// Results and digests are bit-identical at every N, so -parallel
// composes with -json verification: the same spec run at different
// worker counts prints the same bytes. The engine clamps N to what the
// topology can use; when that happens the effective count is reported
// on stderr. -phase-profile prints the per-phase wall-time breakdown
// (the Amdahl view of the tick) to stderr after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/obs"
	"delrep/internal/prof"
	"delrep/internal/simspec"
	"delrep/internal/telemetry"
	"delrep/internal/workload"
)

func main() {
	var (
		gpuBench  = flag.String("gpu", "HS", "GPU benchmark (see -list); comma-separated list with -sweep")
		cpuBench  = flag.String("cpu", "vips", "CPU benchmark (see -list); comma-separated list with -sweep")
		scheme    = flag.String("scheme", "baseline", "baseline | delegated | rp; comma-separated list with -sweep")
		layout    = flag.String("layout", "Baseline", "Baseline | B | C | D")
		topo      = flag.String("topo", "mesh", "mesh | fbfly | dragonfly | crossbar")
		routing   = flag.String("routing", "cdr", "cdr | dyxy | footprint | hare")
		org       = flag.String("l1org", "private", "private | dcl1 | dyneb")
		channel   = flag.Int("channel", 16, "NoC channel width in bytes")
		warm      = flag.Int64("warm", 20000, "warmup cycles")
		cycles    = flag.Int64("cycles", 60000, "measured cycles")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Int("parallel", 0, "tick the system in parallel on this many workers (results are bit-identical at any value; 0/1 = serial)")
		phaseProf = flag.Bool("phase-profile", false, "print the per-phase wall-time breakdown of the tick to stderr after the run")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		heatmap   = flag.Bool("heatmap", false, "print link-utilization heatmaps (mesh only)")
		vcdepth   = flag.Int("vcdepth", 0, "override VC buffer depth in flits")
		jsonOut   = flag.Bool("json", false, "emit results as JSON")

		metricsOut    = flag.String("metrics-out", "", "write windowed metric time series (.csv extension selects CSV, else JSON)")
		metricsWindow = flag.Int64("metrics-window", 1000, "metric sampling window in cycles")
		traceOut      = flag.String("trace-out", "", "write Chrome trace-event JSON of sampled packet lifecycles")
		traceSample   = flag.Uint64("trace-sample", 64, "trace every Nth packet (with -trace-out)")
		telemOut      = flag.String("telemetry-out", "", "write Chrome trace-event JSON of the run's wall-clock phases (resolve, build, simulate, flush)")
		clogFlag      = flag.Bool("clog", false, "print the clog-detector narrative after the run")
		clogUtil      = flag.Float64("clog-util", 0.85, "clog-detector port-utilization threshold")

		specFile = flag.String("spec", "", `run one JSON simulation spec from this file ("-" reads stdin)`)
		remote   = flag.String("remote", "", "run via a delrepd or delrepfleet endpoint at this base URL instead of locally")

		sweep      = flag.Bool("sweep", false, "run the -gpu x -cpu x -scheme cross product in parallel")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (with -sweep)")
		cacheDir   = flag.String("cache", "auto", `on-disk result cache: directory path, "auto" (per-user dir), or "off"`)
		cachePrune = flag.String("cache-prune", "", `prune the result cache to this size (e.g. 512M, 2GiB) and exit`)

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	if *list {
		var g, c []string
		for _, p := range workload.GPUProfiles() {
			g = append(g, p.Name)
		}
		for _, p := range workload.CPUProfiles() {
			c = append(c, p.Name)
		}
		fmt.Println("GPU benchmarks:", strings.Join(g, " "))
		fmt.Println("CPU benchmarks:", strings.Join(c, " "))
		return
	}

	if *cachePrune != "" {
		pruneCache(*cacheDir, *cachePrune)
		return
	}

	if *sweep {
		if *specFile != "" {
			fatalf("-spec and -sweep are mutually exclusive")
		}
		cfg := config.Default()
		cfg.WarmupCycles = *warm
		cfg.MeasureCycles = *cycles
		cfg.Seed = *seed
		cfg.NoC.ChannelBytes = *channel
		if *vcdepth > 0 {
			cfg.NoC.FlitsPerVC = *vcdepth
		}
		if cfg.Layout, err = simspec.ParseLayout(*layout); err != nil {
			fatalf("%v", err)
		}
		cfg.NoC.ReqOrder = cfg.Layout.ReqOrder
		cfg.NoC.RepOrder = cfg.Layout.RepOrder
		if cfg.NoC.Topology, err = simspec.ParseTopo(*topo); err != nil {
			fatalf("%v", err)
		}
		if cfg.NoC.Routing, err = simspec.ParseRouting(*routing); err != nil {
			fatalf("%v", err)
		}
		if cfg.GPU.Org, err = simspec.ParseOrg(*org); err != nil {
			fatalf("%v", err)
		}
		runSweep(cfg, *gpuBench, *cpuBench, *scheme, *jobs, *cacheDir, *remote)
		return
	}

	// A single run is described by a spec — from -spec, or assembled
	// from the individual flags — so both paths share one validation
	// and one canonical rendering.
	var spec simspec.Spec
	if *specFile != "" {
		if spec, err = readSpecFile(*specFile); err != nil {
			fatalf("%v", err)
		}
	} else {
		spec = simspec.Spec{
			GPU: *gpuBench, CPU: *cpuBench, Scheme: *scheme, Layout: *layout,
			Topo: *topo, Routing: *routing, L1Org: *org, ChannelBytes: *channel,
			VCDepth: *vcdepth, Warmup: *warm, Cycles: *cycles, Seed: *seed,
			Parallel: *parallel,
		}
	}
	if *parallel > 0 {
		// The flag wins over a spec file's hint; both are pure
		// execution hints, so the override cannot change results.
		spec.Parallel = *parallel
	}
	if *remote != "" {
		// Everything observer- or instrumentation-shaped needs the
		// simulation in this process; the remote end runs headless.
		for _, bad := range []struct {
			name string
			set  bool
		}{
			{"-heatmap", *heatmap}, {"-phase-profile", *phaseProf}, {"-clog", *clogFlag},
			{"-metrics-out", *metricsOut != ""}, {"-trace-out", *traceOut != ""},
			{"-telemetry-out", *telemOut != ""},
		} {
			if bad.set {
				fatalf("%s needs a local simulation and cannot combine with -remote", bad.name)
			}
		}
		runRemote(*remote, spec, *jsonOut)
		return
	}

	// The phase trace is wall-clock instrumentation of the CLI itself —
	// the same span layer the daemon uses per job — and never touches
	// the simulation, so results and digests are identical with or
	// without -telemetry-out.
	var tr *telemetry.Trace
	if *telemOut != "" {
		tr = telemetry.New("delrepsim", telemetry.A("gpu", *gpuBench), telemetry.A("cpu", *cpuBench))
	}
	resolveSpan := tr.Root().Start("resolve")
	cfg, norm, err := spec.Resolve()
	if err != nil {
		fatalf("%v", err)
	}
	resolveSpan.End()

	buildSpan := tr.Root().Start("build")
	sys := core.NewSystem(cfg, norm.GPU, norm.CPU)
	if spec.Parallel > 1 {
		// Resolve stripped the hint from norm (execution hints are not
		// run identity), so read it from the submitted spec. Attaching
		// an observer below silently drops back to serial — its trace
		// hooks run inside the compute phase.
		sys.SetParallel(spec.Parallel)
		defer sys.Close()
		if eff := sys.Parallel(); eff != spec.Parallel {
			// The engine clamps to what the topology can use; say so
			// rather than silently running at a different width.
			fmt.Fprintf(os.Stderr, "delrepsim: -parallel %d clamped to %d effective workers\n",
				spec.Parallel, eff)
		}
	}
	var profile *core.PhaseProfile
	if *phaseProf {
		profile = &core.PhaseProfile{}
		sys.SetPhaseProfile(profile)
	}
	var observer *obs.Observer
	if *metricsOut != "" || *traceOut != "" || *clogFlag {
		sample := uint64(0)
		if *traceOut != "" {
			sample = *traceSample
		}
		observer = obs.New(obs.Options{
			Window:      *metricsWindow,
			TraceSample: sample,
			ClogUtil:    *clogUtil,
		})
		sys.AttachObserver(observer)
	}
	buildSpan.End()
	runSpan := tr.Root().Start("simulate")
	r := sys.RunWorkload()
	runSpan.Set("cycles", r.Cycles)
	runSpan.End()
	flushSpan := tr.Root().Start("flush")
	flushObserver(observer, *metricsOut, *traceOut)
	flushSpan.End()
	writePhaseTrace(tr, *telemOut)
	if profile != nil {
		// Stderr, so -json on stdout stays the canonical Result bytes.
		fmt.Fprint(os.Stderr, profile.String())
	}

	if *jsonOut {
		out := simspec.NewResult(norm, r, sys.StatsDigest())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("encoding results: %v", err)
		}
		return
	}

	printResults(cfg, norm, r)

	if *heatmap {
		printHeatmaps(sys)
	}
	if *clogFlag && observer != nil {
		fmt.Println()
		if err := observer.Clog.Narrative(os.Stdout); err != nil {
			fatalf("writing clog narrative: %v", err)
		}
	}
}

// printResults renders the human-readable report for one finished run.
// Shared by the local and -remote paths, so a remotely served result
// reads identically to a local one.
func printResults(cfg config.Config, norm simspec.Spec, r core.Results) {
	fmt.Printf("workload           %s + %s\n", norm.GPU, norm.CPU)
	fmt.Printf("scheme             %s  layout %s  topo %s  routing %s\n",
		cfg.Scheme, cfg.Layout.Name, cfg.NoC.Topology, cfg.NoC.Routing)
	fmt.Printf("cycles             %d (after %d warmup)\n", r.Cycles, cfg.WarmupCycles)
	fmt.Printf("GPU IPC            %.2f (%.0f insts)\n", r.GPUIPC, float64(r.GPUInsts))
	fmt.Printf("GPU recv rate      %.3f flits/cycle/core\n", r.GPURecvRate)
	fmt.Printf("GPU L1 miss rate   %.1f%%\n", 100*r.L1MissRate)
	fmt.Printf("inter-core local.  %.1f%%\n", 100*r.InterCoreLocal)
	bd := r.Breakdown
	fmt.Printf("miss breakdown     LLC-direct %.1f%%  remote-hit %.1f%%  remote-miss %.1f%%\n",
		100*frac(bd.LLCDirect, bd.Total()), 100*frac(bd.RemoteHit, bd.Total()), 100*frac(bd.RemoteMiss, bd.Total()))
	fmt.Printf("delegations        %d\n", r.Delegations)
	if r.ProbesSent > 0 {
		fmt.Printf("RP probes          %d sent, %.1f%% hit\n", r.ProbesSent, 100*frac(r.ProbeHits, r.ProbesSent))
	}
	fmt.Printf("CPU latency        %.1f cycles (max %.1f)\n", r.CPULatAvg, r.CPULatMax)
	fmt.Printf("CPU throughput     %.4f req/cycle\n", r.CPUThroughput)
	fmt.Printf("mem blocked rate   %.1f%%\n", 100*r.MemBlockedRate)
	fmt.Printf("mem reply util     %.1f%%\n", 100*r.MemReplyLinkUtil)
	fmt.Printf("LLC hit rate       %.1f%%\n", 100*r.LLCHitRate)
	fmt.Printf("NoC flits          req %d, rep %d, hops %d\n", r.ReqFlits, r.RepFlits, r.FlitHops)
	fmt.Printf("load latency       avg %.0f  llc %.0f  dram %.0f  remoteHit %.0f  remoteMiss %.0f\n",
		r.GPULoadLatAvg, r.LatLLCHit, r.LatDRAM, r.LatRemoteHit, r.LatRemoteMiss)
	fmt.Printf("DRAM               bus util %.1f%%  avg lat %.0f\n", 100*r.DRAMBusUtil, r.DRAMAvgLat)
	fmt.Printf("MSHR               allocs %d merges %d  primary miss %.1f%%\n", r.MSHRAllocs, r.MSHRMerges, 100*r.PrimaryMissRate)
	fmt.Printf("net transit (GPU)  request %.0f  reply %.0f cycles\n", r.ReqNetLatGPU, r.RepNetLatGPU)
	lb := r.LoadBreak
	if lb.Count > 0 {
		fmt.Printf("load breakdown     queue %.0f  transit %.0f  serialize %.0f  deleg-wait %.0f  service %.0f  (%.1f legs, %.1f hops)\n",
			lb.QueueAvg, lb.XferAvg, lb.SerAvg, lb.DelegWaitAvg, lb.ServiceAvg, lb.LegsAvg, lb.HopsAvg)
	}
}

// writePhaseTrace finalizes and writes the CLI phase trace; nil trace
// (no -telemetry-out) is a no-op.
func writePhaseTrace(tr *telemetry.Trace, path string) {
	if tr == nil {
		return
	}
	tr.End()
	f, err := os.Create(path)
	if err != nil {
		fatalf("creating %s: %v", path, err)
	}
	err = tr.WriteChrome(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

// readSpecFile reads one simulation spec from a file ("-" is stdin).
func readSpecFile(path string) (simspec.Spec, error) {
	if path == "-" {
		return simspec.Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return simspec.Spec{}, err
	}
	defer f.Close()
	return simspec.Read(f)
}

// flushObserver writes the metric and trace files after the run (file
// I/O stays outside the simulated tick path).
func flushObserver(o *obs.Observer, metricsOut, traceOut string) {
	if o == nil {
		return
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatalf("creating %s: %v", metricsOut, err)
		}
		if strings.HasSuffix(strings.ToLower(metricsOut), ".csv") {
			err = o.Reg.WriteCSV(f)
		} else {
			err = o.Reg.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("writing %s: %v", metricsOut, err)
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("creating %s: %v", traceOut, err)
		}
		err = o.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("writing %s: %v", traceOut, err)
		}
	}
}

// printHeatmaps renders per-link utilization of the mesh as ASCII
// shades; the clogged memory-node reply links stand out as the dark
// column next to the memory nodes.
func printHeatmaps(sys *core.System) {
	dirs := []struct {
		name string
		port int
	}{
		{"east", 1}, {"west", 2}, {"north", 3}, {"south", 4},
	}
	shades := []rune(" .:-=+*#%@")
	for _, net := range []struct {
		name  string
		reply bool
	}{{"request", false}, {"reply", true}} {
		for _, d := range dirs {
			grid := sys.MeshLinkUtil(net.reply, d.port)
			if grid == nil {
				fmt.Println("heatmaps are only available for the mesh topology")
				return
			}
			fmt.Printf("\n%s network, %s links (utilization, @=100%%):\n", net.name, d.name)
			for _, row := range grid {
				for _, u := range row {
					idx := int(u * float64(len(shades)-1))
					if idx >= len(shades) {
						idx = len(shades) - 1
					}
					fmt.Printf("%c", shades[idx])
				}
				fmt.Println()
			}
		}
	}
}

func frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delrepsim: "+format+"\n", args...)
	os.Exit(2)
}
