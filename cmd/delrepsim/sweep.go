package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"delrep/internal/config"
	"delrep/internal/fleet"
	"delrep/internal/runner"
	"delrep/internal/simspec"
	"delrep/internal/stats"
)

// openCache resolves the -cache flag: "off" disables the on-disk
// cache, "auto" selects the per-user default directory (degrading to
// no cache if unavailable), anything else is a directory path.
func openCache(flagVal string) *runner.DiskCache {
	switch flagVal {
	case "off":
		return nil
	case "auto":
		dir, err := runner.DefaultCacheDir()
		if err != nil {
			fmt.Fprintf(os.Stderr, "delrepsim: no user cache dir (%v); running uncached\n", err)
			return nil
		}
		c, err := runner.OpenDiskCache(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "delrepsim: opening cache %s: %v; running uncached\n", dir, err)
			return nil
		}
		return c
	default:
		c, err := runner.OpenDiskCache(flagVal)
		if err != nil {
			fatalf("opening cache %s: %v", flagVal, err)
		}
		return c
	}
}

// pruneCache implements -cache-prune: shrink the on-disk result cache
// to the given size budget (oldest entries first) and report what was
// evicted.
func pruneCache(cacheFlag, sizeSpec string) {
	maxBytes, err := runner.ParseSize(sizeSpec)
	if err != nil {
		fatalf("-cache-prune: %v", err)
	}
	cache := openCache(cacheFlag)
	if cache == nil {
		fatalf("-cache-prune needs a cache (-cache is %q)", cacheFlag)
	}
	before, err := cache.Size()
	if err != nil {
		fatalf("sizing cache %s: %v", cache.Dir(), err)
	}
	removed, freed, err := cache.Prune(maxBytes)
	if err != nil {
		fatalf("pruning cache %s: %v", cache.Dir(), err)
	}
	fmt.Printf("cache %s: %d -> %d bytes, %d entries removed (%d bytes freed)\n",
		cache.Dir(), before, before-freed, removed, freed)
}

// runSweep runs the cross product of comma-separated -gpu, -cpu and
// -scheme lists through the parallel engine and prints one row per
// run. Rows appear in declaration order (schemes outermost, then GPU,
// then CPU benchmarks), whatever order the simulations finish in, so
// the output is identical at any -j value and any cache state. With
// -remote, cache-missing points are delegated to the fleet instead of
// executed here; the table is byte-identical either way.
func runSweep(cfg config.Config, gpuList, cpuList, schemeList string, jobs int, cacheFlag, remote string) {
	var schemes []config.Scheme
	for _, s := range strings.Split(schemeList, ",") {
		sc, err := simspec.ParseScheme(strings.TrimSpace(s))
		if err != nil {
			fatalf("%v", err)
		}
		schemes = append(schemes, sc)
	}
	split := func(list string) []string {
		var out []string
		for _, s := range strings.Split(list, ",") {
			if s = strings.TrimSpace(s); s != "" {
				out = append(out, s)
			}
		}
		return out
	}
	gpus, cpus := split(gpuList), split(cpuList)
	if len(gpus) == 0 || len(cpus) == 0 {
		fatalf("-sweep needs at least one GPU and one CPU benchmark")
	}

	cache := openCache(cacheFlag)
	var resolver runner.Resolver
	if remote != "" {
		client := fleet.NewClient(remote, "delrepsim", nil)
		if err := client.Ping(context.Background()); err != nil {
			fatalf("%v", err)
		}
		resolver = client
	}
	eng := runner.New(runner.Options{Workers: jobs, Cache: cache, Progress: os.Stderr, Remote: resolver})
	batch := eng.NewBatch()
	for _, scheme := range schemes {
		for _, g := range gpus {
			for _, c := range cpus {
				sc := cfg
				sc.Scheme = scheme
				batch.Add(runner.Spec{Cfg: sc, GPU: g, CPU: c})
			}
		}
	}

	t := stats.NewTable(fmt.Sprintf("Sweep: %d runs", batch.Len()),
		"GPU", "CPU", "Scheme", "GPU IPC", "CPU lat", "CPU tput", "Blocked %", "RepUtil %", "Deleg")
	for _, run := range batch.Wait() {
		res := run.Results
		t.AddRow(run.Spec.GPU, run.Spec.CPU, run.Spec.Cfg.Scheme.String(),
			res.GPUIPC, res.CPULatAvg, res.CPUThroughput,
			100*res.MemBlockedRate, 100*res.MemReplyLinkUtil, res.Delegations)
	}
	fmt.Println(t)

	c := eng.Counters()
	where := "off"
	if cache != nil {
		where = cache.Dir()
	}
	fmt.Fprintf(os.Stderr, "delrepsim: %d simulations executed, %d disk-cache hits, %d in-process shares (cache %s)\n",
		c.Executed, c.DiskHits, c.MemoHits, where)
}
