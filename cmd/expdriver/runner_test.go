package main

import (
	"testing"

	"delrep/internal/config"
)

func TestKeyDistinguishesConfigs(t *testing.T) {
	base := BaseConfig(config.SchemeBaseline)
	mutations := []func(*config.Config){
		func(c *config.Config) { c.Scheme = config.SchemeDelegatedReplies },
		func(c *config.Config) { c.NoC.Topology = config.TopoCrossbar },
		func(c *config.Config) { c.NoC.Routing = config.RoutingDyXY },
		func(c *config.Config) { c.NoC.ChannelBytes = 32 },
		func(c *config.Config) { c.NoC.InjectionBuf = 16 },
		func(c *config.Config) { c.NoC.SharedPhys = true; c.NoC.ReqVCs, c.NoC.RepVCs = 1, 3 },
		func(c *config.Config) { c.GPU.L1Bytes = 64 * 1024 },
		func(c *config.Config) { c.GPU.Org = config.L1DynEB },
		func(c *config.Config) { c.GPU.CTASched = config.CTADistributed },
		func(c *config.Config) { c.GPU.FRQEntries = 2 },
		func(c *config.Config) { c.LLC.SliceBytes = 2 << 20 },
		func(c *config.Config) { c.Layout = config.LayoutB() },
		func(c *config.Config) { c.Layout = config.ScaledBaseline(10, 10) },
		func(c *config.Config) { c.DelRep.MaxDelegationsPerCycle = 4 },
		func(c *config.Config) { c.DelRep.AlwaysDelegate = true },
		func(c *config.Config) { c.DelRep.FRQMerge = true },
		func(c *config.Config) { c.Seed = 99 },
	}
	seen := map[string]int{key(base, "HS", "vips"): -1}
	for i, mut := range mutations {
		cfg := BaseConfig(config.SchemeBaseline)
		mut(&cfg)
		k := key(cfg, "HS", "vips")
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %d collides with %d: %s", i, prev, k)
		}
		seen[k] = i
	}
	if key(base, "HS", "vips") != key(base, "HS", "vips") {
		t.Error("key is not deterministic")
	}
	if key(base, "HS", "vips") == key(base, "NN", "vips") {
		t.Error("key ignores the GPU benchmark")
	}
	if key(base, "HS", "vips") == key(base, "HS", "dedup") {
		t.Error("key ignores the CPU benchmark")
	}
}

func TestRunnerBenchSets(t *testing.T) {
	full := NewRunner(false, 1)
	if got := len(full.GPUBenches()); got != 11 {
		t.Fatalf("full bench set = %d, want 11", got)
	}
	if got := len(full.SubsetBenches()); got != 5 {
		t.Fatalf("subset = %d, want 5", got)
	}
	if got := len(full.CoRunners("HS")); got != 3 {
		t.Fatalf("co-runners = %d, want 3", got)
	}
	quick := NewRunner(true, 1)
	if got := len(quick.GPUBenches()); got != 3 {
		t.Fatalf("quick bench set = %d, want 3", got)
	}
	if got := len(quick.CoRunners("HS")); got != 1 {
		t.Fatalf("quick co-runners = %d, want 1", got)
	}
	if quick.Warm >= full.Warm || quick.Measure >= full.Measure {
		t.Fatal("quick windows not smaller")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(true, 1)
	r.Warm, r.Measure = 500, 1000 // tiny: this test runs real simulations
	cfg := BaseConfig(config.SchemeBaseline)
	a := r.Run(cfg, "HS", "vips")
	if n := r.TakeRunCount(); n != 1 {
		t.Fatalf("first run count = %d", n)
	}
	b := r.Run(cfg, "HS", "vips")
	if n := r.TakeRunCount(); n != 0 {
		t.Fatalf("cached run re-executed (%d)", n)
	}
	if a != b {
		t.Fatal("cache returned different results")
	}
	cfg.Scheme = config.SchemeDelegatedReplies
	r.Run(cfg, "HS", "vips")
	if n := r.TakeRunCount(); n != 1 {
		t.Fatalf("different scheme not re-run (%d)", n)
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, e := range experiments() {
		if e.name == "" || e.about == "" || e.run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if names[e.name] {
			t.Errorf("duplicate experiment %s", e.name)
		}
		names[e.name] = true
	}
	for _, want := range []string{"tableI", "tableII", "fig2", "fig5", "fig6", "fig7",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "nodemix", "energy", "area", "ablation"} {
		if !names[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
}
