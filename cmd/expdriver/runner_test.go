package main

import (
	"testing"

	"delrep/internal/config"
	"delrep/internal/runner"
)

func newTestRunner(quick bool) *Runner {
	return NewRunner(quick, 1, runner.New(runner.Options{Workers: 1}))
}

func TestRunnerBenchSets(t *testing.T) {
	full := newTestRunner(false)
	if got := len(full.GPUBenches()); got != 11 {
		t.Fatalf("full bench set = %d, want 11", got)
	}
	if got := len(full.SubsetBenches()); got != 5 {
		t.Fatalf("subset = %d, want 5", got)
	}
	if got := len(full.CoRunners("HS")); got != 3 {
		t.Fatalf("co-runners = %d, want 3", got)
	}
	quick := newTestRunner(true)
	if got := len(quick.GPUBenches()); got != 3 {
		t.Fatalf("quick bench set = %d, want 3", got)
	}
	if got := len(quick.CoRunners("HS")); got != 1 {
		t.Fatalf("quick co-runners = %d, want 1", got)
	}
	if quick.Warm >= full.Warm || quick.Measure >= full.Measure {
		t.Fatal("quick windows not smaller")
	}
}

func TestRunnerSharesResults(t *testing.T) {
	r := newTestRunner(true)
	r.Warm, r.Measure = 500, 1000 // tiny: this test runs real simulations
	cfg := BaseConfig(config.SchemeBaseline)
	a := r.Run(cfg, "HS", "vips")
	if c := r.eng.Counters(); c.Executed != 1 {
		t.Fatalf("first run executed %d simulations, want 1", c.Executed)
	}
	b := r.Run(cfg, "HS", "vips")
	if c := r.eng.Counters(); c.Executed != 1 || c.MemoHits != 1 {
		t.Fatalf("repeat run not shared: %+v", c)
	}
	if a != b {
		t.Fatal("shared run returned different results")
	}
	cfg.Scheme = config.SchemeDelegatedReplies
	r.Run(cfg, "HS", "vips")
	if c := r.eng.Counters(); c.Executed != 2 {
		t.Fatalf("different scheme not re-run: %+v", c)
	}
}

// TestPrepStampsWindows guards the cache-key bugfix: the windows and
// seed the driver stamps must reach the engine's cache key, so -quick
// results can never alias full-window results in a shared cache.
func TestPrepStampsWindows(t *testing.T) {
	r := newTestRunner(false)
	r.Warm, r.Measure, r.Seed = 111, 222, 7
	cfg := r.prep(BaseConfig(config.SchemeBaseline))
	if cfg.WarmupCycles != 111 || cfg.MeasureCycles != 222 || cfg.Seed != 7 {
		t.Fatalf("prep did not stamp windows/seed: %+v", cfg)
	}
	k1 := runner.Key(cfg, "HS", "vips")
	r.Warm = 5_000
	k2 := runner.Key(r.prep(BaseConfig(config.SchemeBaseline)), "HS", "vips")
	if k1 == k2 {
		t.Fatal("cache key ignores warmup window")
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, e := range experiments() {
		if e.name == "" || e.about == "" || e.run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if names[e.name] {
			t.Errorf("duplicate experiment %s", e.name)
		}
		names[e.name] = true
	}
	for _, want := range []string{"tableI", "tableII", "fig2", "fig5", "fig6", "fig7",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "nodemix", "energy", "area", "ablation"} {
		if !names[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
}
