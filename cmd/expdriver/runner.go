package main

import (
	"fmt"
	"os"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/workload"
)

// Runner executes and memoizes simulations: several figures share the
// same underlying runs (e.g. Figures 10-14 all use the 33-workload
// three-scheme sweep), so repeated requests are served from cache.
type Runner struct {
	Warm    int64
	Measure int64
	Seed    int64
	Quick   bool

	cache map[string]core.Results
	runs  int
}

// NewRunner builds a runner; quick mode shrinks windows and workloads.
func NewRunner(quick bool, seed int64) *Runner {
	r := &Runner{Warm: 12_000, Measure: 30_000, Seed: seed, Quick: quick,
		cache: map[string]core.Results{}}
	if quick {
		r.Warm, r.Measure = 5_000, 12_000
	}
	return r
}

// GPUBenches returns the benchmark set (shrunk under -quick).
func (r *Runner) GPUBenches() []string {
	var names []string
	for _, p := range workload.GPUProfiles() {
		names = append(names, p.Name)
	}
	if r.Quick {
		return []string{"2DCON", "HS", "BP"}
	}
	return names
}

// SubsetBenches returns a five-benchmark set spanning the workload
// characters (dense stencil, remote-miss, low-miss, write-heavy,
// LLC-friendly), used by the wide sensitivity sweeps to keep the full
// evaluation tractable on one core.
func (r *Runner) SubsetBenches() []string {
	if r.Quick {
		return []string{"HS", "BP"}
	}
	return []string{"2DCON", "HS", "BT", "NN", "BP"}
}

// PrimaryCPU returns the first Table II co-runner of a GPU benchmark.
func PrimaryCPU(gpu string) string { return workload.TableII()[gpu][0] }

// CoRunners returns the Table II CPU benchmarks for a GPU benchmark
// (just the primary under -quick).
func (r *Runner) CoRunners(gpu string) []string {
	cpus := workload.TableII()[gpu]
	if r.Quick {
		return cpus[:1]
	}
	return cpus[:]
}

// key serializes the run-identifying configuration.
func key(cfg config.Config, gpu, cpu string) string {
	return fmt.Sprintf("%s|%s|s%d|%s|t%d|r%d|%v%v|ch%d|vc%d-%d|fb%d|ib%d|sh%v-%d-%d|L1:%d-%v-%v|LLC:%d|mesh%dx%d|k%d|dr%d-%v-%v|frq%d|seed%d",
		gpu, cpu, cfg.Scheme, cfg.Layout.Name,
		cfg.NoC.Topology, cfg.NoC.Routing, cfg.NoC.ReqOrder, cfg.NoC.RepOrder,
		cfg.NoC.ChannelBytes, cfg.NoC.VCsPerClass, cfg.NoC.AdaptiveVCs, cfg.NoC.FlitsPerVC,
		cfg.NoC.InjectionBuf, cfg.NoC.SharedPhys, cfg.NoC.ReqVCs, cfg.NoC.RepVCs,
		cfg.GPU.L1Bytes, cfg.GPU.Org, cfg.GPU.CTASched,
		cfg.LLC.SliceBytes, cfg.Layout.Width, cfg.Layout.Height,
		cfg.GPU.KernelCycles,
		cfg.DelRep.MaxDelegationsPerCycle, cfg.DelRep.AlwaysDelegate, cfg.DelRep.FRQMerge,
		cfg.GPU.FRQEntries, cfg.Seed)
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(cfg config.Config, gpu, cpu string) core.Results {
	cfg.WarmupCycles = r.Warm
	cfg.MeasureCycles = r.Measure
	cfg.Seed = r.Seed
	k := key(cfg, gpu, cpu)
	if res, ok := r.cache[k]; ok {
		return res
	}
	fmt.Fprintf(os.Stderr, "  run %-5s + %-12s %s %s %s...\n",
		gpu, cpu, cfg.Scheme, cfg.Layout.Name, cfg.NoC.Topology)
	sys := core.NewSystem(cfg, gpu, cpu)
	res := sys.RunWorkload()
	r.cache[k] = res
	r.runs++
	return res
}

// TakeRunCount returns and resets the simulation counter.
func (r *Runner) TakeRunCount() int {
	n := r.runs
	r.runs = 0
	return n
}

// BaseConfig returns the default configuration with scheme applied.
func BaseConfig(scheme config.Scheme) config.Config {
	cfg := config.Default()
	cfg.Scheme = scheme
	return cfg
}

// schemes in paper comparison order.
var allSchemes = []config.Scheme{
	config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies,
}
