package main

import (
	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/runner"
	"delrep/internal/workload"
)

// Runner fronts the shared parallel execution engine for the figure
// functions: it stamps the driver-wide windows and seed onto every
// declared configuration and tracks the observed (non-engine) runs
// some experiments perform. Figures declare their full run set up
// front (Defer / deferPairs / sweeps) and then consume the results in
// declaration order, so their printed output is byte-identical at any
// -j worker count and any cache state.
type Runner struct {
	Warm    int64
	Measure int64
	Seed    int64
	Quick   bool

	eng      *runner.Engine
	observed int // observer-attached replays delivered (simulated or cached)
	obsSims  int // observer-attached replays that actually simulated
}

// NewRunner builds a runner on an engine; quick mode shrinks windows
// and workloads.
func NewRunner(quick bool, seed int64, eng *runner.Engine) *Runner {
	r := &Runner{Warm: 12_000, Measure: 30_000, Seed: seed, Quick: quick, eng: eng}
	if quick {
		r.Warm, r.Measure = 5_000, 12_000
	}
	return r
}

// GPUBenches returns the benchmark set (shrunk under -quick).
func (r *Runner) GPUBenches() []string {
	var names []string
	for _, p := range workload.GPUProfiles() {
		names = append(names, p.Name)
	}
	if r.Quick {
		return []string{"2DCON", "HS", "BP"}
	}
	return names
}

// SubsetBenches returns a five-benchmark set spanning the workload
// characters (dense stencil, remote-miss, low-miss, write-heavy,
// LLC-friendly), used by the wide sensitivity sweeps to bound the
// number of simulations each sweep point costs.
func (r *Runner) SubsetBenches() []string {
	if r.Quick {
		return []string{"HS", "BP"}
	}
	return []string{"2DCON", "HS", "BT", "NN", "BP"}
}

// PrimaryCPU returns the first Table II co-runner of a GPU benchmark.
func PrimaryCPU(gpu string) string { return workload.TableII()[gpu][0] }

// CoRunners returns the Table II CPU benchmarks for a GPU benchmark
// (just the primary under -quick).
func (r *Runner) CoRunners(gpu string) []string {
	cpus := workload.TableII()[gpu]
	if r.Quick {
		return cpus[:1]
	}
	return cpus[:]
}

// prep stamps the driver-wide windows and seed onto a configuration.
func (r *Runner) prep(cfg config.Config) config.Config {
	cfg.WarmupCycles = r.Warm
	cfg.MeasureCycles = r.Measure
	cfg.Seed = r.Seed
	return cfg
}

// Defer declares one simulation on the engine and returns its future.
func (r *Runner) Defer(cfg config.Config, gpu, cpu string) *runner.Future {
	return r.eng.Submit(runner.Spec{Cfg: r.prep(cfg), GPU: gpu, CPU: cpu})
}

// Run executes (or recalls) one simulation synchronously. Figures that
// want parallelism declare futures with Defer instead and resolve them
// after the last declaration.
func (r *Runner) Run(cfg config.Config, gpu, cpu string) core.Results {
	return r.Defer(cfg, gpu, cpu).Results()
}

// resPair is one (variant, reference) result pair.
type resPair struct {
	a, b core.Results
}

// deferPairs declares, for every subset benchmark, the two
// configurations produced by mk (with the benchmark's primary CPU
// co-runner) and returns a resolver delivering the result pairs in
// benchmark order. The resolver pattern lets a figure declare many
// pair sets before blocking on any of them.
func deferPairs(r *Runner, mk func(bench string) (variant, ref config.Config)) func() []resPair {
	type futPair struct{ a, b *runner.Future }
	var futs []futPair
	for _, g := range r.SubsetBenches() {
		va, vb := mk(g)
		futs = append(futs, futPair{
			r.Defer(va, g, PrimaryCPU(g)),
			r.Defer(vb, g, PrimaryCPU(g)),
		})
	}
	return func() []resPair {
		out := make([]resPair, len(futs))
		for i, f := range futs {
			out[i] = resPair{f.a.Results(), f.b.Results()}
		}
		return out
	}
}

// BaseConfig returns the default configuration with scheme applied.
func BaseConfig(scheme config.Scheme) config.Config {
	cfg := config.Default()
	cfg.Scheme = scheme
	return cfg
}

// schemes in paper comparison order.
var allSchemes = []config.Scheme{
	config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies,
}
