package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/runner"
	"delrep/internal/stats"
	"delrep/internal/workload"
)

// tableI prints the simulated architecture (paper Table I).
func tableI(r *Runner) {
	cfg := config.Default()
	t := stats.NewTable("Table I: simulated CPU-GPU architecture", "Component", "Value")
	gpu, cpuN, mem := cfg.Layout.Counts()
	t.AddRow("GPU cores", fmt.Sprintf("%d SIMT cores, %d warps/core, %d-wide issue, %d KB L1 %d-way %d B lines, %d MSHRs",
		gpu, cfg.GPU.WarpsPerSM, cfg.GPU.IssueWidth, cfg.GPU.L1Bytes/1024, cfg.GPU.L1Assoc, cfg.GPU.L1LineBytes, cfg.GPU.L1MSHRs))
	t.AddRow("CPU cores", fmt.Sprintf("%d cores, %d B lines, MLP-throttled Netrace-style injectors", cpuN, cfg.CPU.L1LineBytes))
	t.AddRow("Shared LLC", fmt.Sprintf("%d MB total, %d MB/slice, %d-way, %d B lines, core pointers",
		mem*cfg.LLC.SliceBytes>>20, cfg.LLC.SliceBytes>>20, cfg.LLC.Assoc, cfg.LLC.LineBytes))
	t.AddRow("DRAM", fmt.Sprintf("%d MCs, FR-FCFS, %d banks/MC, GDDR5 tCL=%d tRP=%d tRC=%d tRAS=%d tRCD=%d tRRD=%d tCCD=%d tWR=%d",
		mem, cfg.DRAM.Banks, cfg.DRAM.TCL, cfg.DRAM.TRP, cfg.DRAM.TRC, cfg.DRAM.TRAS, cfg.DRAM.TRCD, cfg.DRAM.TRRD, cfg.DRAM.TCCD, cfg.DRAM.TWR))
	t.AddRow("NoC", fmt.Sprintf("%dx%d mesh, CDR %s(req)/%s(rep), %d B channels, %d VCs x %d flits, %d-cycle routers, CPU priority",
		cfg.Layout.Width, cfg.Layout.Height, cfg.NoC.ReqOrder, cfg.NoC.RepOrder,
		cfg.NoC.ChannelBytes, cfg.NoC.VCsPerClass, cfg.NoC.FlitsPerVC, cfg.NoC.RouterDelay))
	t.AddRow("Delegated Replies", fmt.Sprintf("FRQ %d entries/core, <=%d delegation/cycle/memnode, DNF remote-miss path",
		cfg.GPU.FRQEntries, cfg.DelRep.MaxDelegationsPerCycle))
	fmt.Println(t)
	fmt.Println(cfg.Layout)
}

// tableII prints the workload pairings (paper Table II).
func tableII(*Runner) {
	t := stats.NewTable("Table II: heterogeneous CPU-GPU workloads",
		"GPU bench", "Grid", "CPU bmk#1", "CPU bmk#2", "CPU bmk#3")
	pair := workload.TableII()
	for _, p := range workload.GPUProfiles() {
		c := pair[p.Name]
		t.AddRow(p.Name, fmt.Sprintf("(%d,%d,1)", p.GridX, p.GridY), c[0], c[1], c[2])
	}
	fmt.Println(t)
}

// fig2 measures inter-core locality on the baseline.
func fig2(r *Runner) {
	benches := r.GPUBenches()
	futs := make([]*runner.Future, len(benches))
	for i, g := range benches {
		futs[i] = r.Defer(BaseConfig(config.SchemeBaseline), g, PrimaryCPU(g))
	}
	t := stats.NewTable("Figure 2: fraction of L1 misses resident in a remote L1",
		"GPU bench", "Locality %", "L1 miss %")
	var loc []float64
	for i, g := range benches {
		res := futs[i].Results()
		t.AddRow(g, 100*res.InterCoreLocal, 100*res.L1MissRate)
		loc = append(loc, res.InterCoreLocal)
	}
	t.AddRow("MEAN", 100*stats.Mean(loc), "")
	fmt.Println(t)
	fmt.Println("paper: >57% of L1 misses are duplicated in remote L1s on average")
}

// fig5 compares topologies at nominal and doubled bandwidth, plus the
// memory-node blocking rates (Figure 5b).
func fig5(r *Runner) {
	type variant struct {
		name string
		topo config.Topology
		mult int
	}
	variants := []variant{
		{"mesh-1x", config.TopoMesh, 1},
		{"crossbar-1x", config.TopoCrossbar, 1},
		{"fbfly-1x", config.TopoFlattenedButterfly, 1},
		{"dragonfly-1x", config.TopoDragonfly, 1},
		{"mesh-2x", config.TopoMesh, 2},
		{"crossbar-2x", config.TopoCrossbar, 2},
		{"fbfly-2x", config.TopoFlattenedButterfly, 2},
		{"dragonfly-2x", config.TopoDragonfly, 2},
	}
	resolvers := make([]func() []resPair, len(variants))
	for i, v := range variants {
		v := v
		resolvers[i] = deferPairs(r, func(string) (config.Config, config.Config) {
			cfg := BaseConfig(config.SchemeBaseline)
			cfg.NoC.Topology = v.topo
			cfg.NoC.ChannelBytes *= v.mult
			return cfg, BaseConfig(config.SchemeBaseline)
		})
	}
	t := stats.NewTable("Figure 5a: GPU performance vs mesh baseline (HM across benchmarks)",
		"Config", "Rel. GPU perf", "Blocking % (5b)")
	for i, v := range variants {
		var rel []float64
		var blocked stats.Sampler
		for _, p := range resolvers[i]() {
			rel = append(rel, p.a.GPUIPC/p.b.GPUIPC)
			blocked.Add(p.a.MemBlockedRate)
		}
		t.AddRow(v.name, stats.HarmonicMean(rel), 100*blocked.Mean())
	}
	fmt.Println(t)
	fmt.Println("paper: changing topology hardly helps (blocking stays 72-79%); doubling bandwidth helps but costs 2.5x area")
}

// fig6 evaluates asymmetric VC partitioning on a shared physical
// network at equal aggregate bandwidth.
func fig6(r *Runner) {
	splits := []struct {
		name     string
		req, rep int
	}{
		{"AVCP-1:3", 1, 3},
		{"AVCP-2:2", 2, 2},
		{"AVCP-3:1", 3, 1},
	}
	resolvers := make([]func() []resPair, len(splits))
	for i, sp := range splits {
		sp := sp
		resolvers[i] = deferPairs(r, func(string) (config.Config, config.Config) {
			cfg := BaseConfig(config.SchemeBaseline)
			cfg.NoC.SharedPhys = true
			cfg.NoC.ChannelBytes *= 2 // one physical network, same aggregate bandwidth
			cfg.NoC.ReqVCs, cfg.NoC.RepVCs = sp.req, sp.rep
			return cfg, BaseConfig(config.SchemeBaseline)
		})
	}
	t := stats.NewTable("Figure 6: AVCP vs baseline (per benchmark, relative GPU perf)",
		append([]string{"Config"}, append(r.SubsetBenches(), "HM")...)...)
	for i, sp := range splits {
		row := []any{sp.name}
		var rel []float64
		for _, p := range resolvers[i]() {
			rel = append(rel, p.a.GPUIPC/p.b.GPUIPC)
			row = append(row, p.a.GPUIPC/p.b.GPUIPC)
		}
		row = append(row, stats.HarmonicMean(rel))
		t.AddRow(row...)
	}
	fmt.Println(t)
	fmt.Println("paper: AVCP is ineffective (<=3% best case, HM unchanged; BP hurt by request-network pressure)")
}

// fig7 evaluates the adaptive routing schemes against CDR.
func fig7(r *Runner) {
	algs := []config.RoutingAlg{config.RoutingDyXY, config.RoutingFootprint, config.RoutingHARE}
	resolvers := make([]func() []resPair, len(algs))
	for i, alg := range algs {
		alg := alg
		resolvers[i] = deferPairs(r, func(string) (config.Config, config.Config) {
			cfg := BaseConfig(config.SchemeBaseline)
			cfg.NoC.Routing = alg
			return cfg, BaseConfig(config.SchemeBaseline)
		})
	}
	t := stats.NewTable("Figure 7: adaptive routing vs CDR baseline (relative GPU perf)",
		"Routing", "Rel. GPU perf (HM)")
	for i, alg := range algs {
		var rel []float64
		for _, p := range resolvers[i]() {
			rel = append(rel, p.a.GPUIPC/p.b.GPUIPC)
		}
		t.AddRow(alg.String(), stats.HarmonicMean(rel))
	}
	fmt.Println(t)
	fmt.Println("paper: adaptive routing reduces performance; the limitation is link bandwidth, not path choice")
}

// fig9 studies layouts and CDR dimension orders.
func fig9(r *Runner) {
	type lc struct {
		layout   config.Layout
		req, rep config.DimOrder
	}
	variants := []lc{
		{config.BaselineLayout(), config.OrderYX, config.OrderXY},
		{config.BaselineLayout(), config.OrderXY, config.OrderXY},
		{config.LayoutB(), config.OrderXY, config.OrderYX},
		{config.LayoutB(), config.OrderXY, config.OrderXY},
		{config.LayoutC(), config.OrderXY, config.OrderYX},
		{config.LayoutC(), config.OrderXY, config.OrderXY},
		{config.LayoutD(), config.OrderXY, config.OrderXY},
	}
	futs := make([][]*runner.Future, len(variants))
	for i, v := range variants {
		for _, g := range r.SubsetBenches() {
			cfg := BaseConfig(config.SchemeBaseline)
			cfg.Layout = v.layout
			cfg.NoC.ReqOrder, cfg.NoC.RepOrder = v.req, v.rep
			futs[i] = append(futs[i], r.Defer(cfg, g, PrimaryCPU(g)))
		}
	}
	t := stats.NewTable("Figure 9: layouts and routing (normalized to Baseline YX-XY)",
		"Layout", "Routing", "GPU perf", "CPU perf")
	var baseGPU, baseCPU []float64
	for i, v := range variants {
		var gpuR, cpuR []float64
		for _, f := range futs[i] {
			res := f.Results()
			gpuR = append(gpuR, res.GPUIPC)
			cpuR = append(cpuR, res.CPUThroughput)
		}
		if i == 0 {
			baseGPU, baseCPU = gpuR, cpuR
		}
		var rg, rc []float64
		for j := range gpuR {
			rg = append(rg, gpuR[j]/baseGPU[j])
			if baseCPU[j] > 0 {
				rc = append(rc, cpuR[j]/baseCPU[j])
			}
		}
		t.AddRow(v.layout.Name, v.req.String()+"-"+v.rep.String(),
			stats.HarmonicMean(rg), stats.HarmonicMean(rc))
	}
	fmt.Println(t)
	fmt.Println("paper: only the Baseline layout provides both high CPU and GPU performance")
}
