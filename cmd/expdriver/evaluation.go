package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/runner"
	"delrep/internal/stats"
)

// sweeps declares the full Table II pairing sweep for every scheme up
// front — the engine runs them concurrently — and returns, per scheme,
// results keyed by GPU benchmark (one entry per CPU co-runner, in
// Table II order).
func sweeps(r *Runner, schemes ...config.Scheme) []map[string][]core.Results {
	futs := make([]map[string][]*runner.Future, len(schemes))
	for si, scheme := range schemes {
		futs[si] = map[string][]*runner.Future{}
		for _, g := range r.GPUBenches() {
			for _, c := range r.CoRunners(g) {
				futs[si][g] = append(futs[si][g], r.Defer(BaseConfig(scheme), g, c))
			}
		}
	}
	out := make([]map[string][]core.Results, len(schemes))
	for si := range schemes {
		out[si] = map[string][]core.Results{}
		for _, g := range r.GPUBenches() {
			for _, f := range futs[si][g] {
				out[si][g] = append(out[si][g], f.Results())
			}
		}
	}
	return out
}

// relStats computes mean/min/max of per-co-runner ratios.
func relStats(num, den []core.Results, metric func(core.Results) float64) (mean, min, max float64) {
	var s stats.Sampler
	for i := range num {
		d := metric(den[i])
		if d == 0 {
			continue
		}
		s.Add(metric(num[i]) / d)
	}
	return s.Mean(), s.Min(), s.Max()
}

// fig10 is the headline GPU performance comparison.
func fig10(r *Runner) {
	s := sweeps(r, config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies)
	base, rp, dr := s[0], s[1], s[2]
	t := stats.NewTable("Figure 10: GPU performance normalized to baseline (mean [min..max] across CPU co-runners)",
		"GPU bench", "RP", "DR", "DR min", "DR max")
	var rpAll, drAll []float64
	gpuIPC := func(res core.Results) float64 { return res.GPUIPC }
	for _, g := range r.GPUBenches() {
		rpM, _, _ := relStats(rp[g], base[g], gpuIPC)
		drM, drLo, drHi := relStats(dr[g], base[g], gpuIPC)
		t.AddRow(g, rpM, drM, drLo, drHi)
		rpAll = append(rpAll, rpM)
		drAll = append(drAll, drM)
	}
	t.AddRow("HM", stats.HarmonicMean(rpAll), stats.HarmonicMean(drAll), "", "")
	fmt.Println(t)
	fmt.Printf("paper: DR +25.7%% avg (up to 65.9%%) vs baseline; +14.2%% (up to 30.6%%) vs RP; RP +10.1%% vs baseline\n")
	fmt.Printf("measured: DR %+0.1f%%, RP %+0.1f%% vs baseline (HM)\n",
		100*(stats.HarmonicMean(drAll)-1), 100*(stats.HarmonicMean(rpAll)-1))
}

// fig11 reports the received data rate per GPU core.
func fig11(r *Runner) {
	s := sweeps(r, config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies)
	base, rp, dr := s[0], s[1], s[2]
	t := stats.NewTable("Figure 11: received data rate (reply flits/cycle/GPU core)",
		"GPU bench", "Baseline", "RP", "DR", "DR gain %")
	var gains []float64
	for _, g := range r.GPUBenches() {
		b := meanOf(base[g], recvRate)
		p := meanOf(rp[g], recvRate)
		d := meanOf(dr[g], recvRate)
		gain := 0.0
		if b > 0 {
			gain = 100 * (d/b - 1)
		}
		t.AddRow(g, b, p, d, gain)
		gains = append(gains, gain)
	}
	t.AddRow("MEAN", "", "", "", stats.Mean(gains))
	fmt.Println(t)
	fmt.Println("paper: DR improves effective NoC bandwidth by 26.5% on average (up to 70.9%); RP by 11.9%")
}

func recvRate(res core.Results) float64 { return res.GPURecvRate }

func meanOf(rs []core.Results, f func(core.Results) float64) float64 {
	var s stats.Sampler
	for _, r := range rs {
		s.Add(f(r))
	}
	return s.Mean()
}

// fig12 reports CPU network latency per CPU benchmark.
func fig12(r *Runner) {
	s := sweeps(r, config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies)
	base, rp, dr := s[0], s[1], s[2]
	t := stats.NewTable("Figure 12: CPU network latency, normalized to baseline (lower is better)",
		"CPU bench", "RP", "DR")
	perCPU := map[string][3]*stats.Sampler{}
	for _, g := range r.GPUBenches() {
		for i, c := range r.CoRunners(g) {
			e, ok := perCPU[c]
			if !ok {
				e = [3]*stats.Sampler{{}, {}, {}}
				perCPU[c] = e
			}
			if base[g][i].CPULatAvg > 0 {
				e[1].Add(rp[g][i].CPULatAvg / base[g][i].CPULatAvg)
				e[2].Add(dr[g][i].CPULatAvg / base[g][i].CPULatAvg)
			}
		}
	}
	var drAll []float64
	for _, c := range cpuNamesIn(perCPU) {
		e := perCPU[c]
		t.AddRow(c, e[1].Mean(), e[2].Mean())
		drAll = append(drAll, e[2].Mean())
	}
	t.AddRow("MEAN", "", stats.Mean(drAll))
	fmt.Println(t)
	fmt.Println("paper: DR reduces CPU network latency by 44.2% on average (up to 59.7%)")
}

// fig13 reports CPU performance (request throughput).
func fig13(r *Runner) {
	s := sweeps(r, config.SchemeBaseline, config.SchemeRP, config.SchemeDelegatedReplies)
	base, rp, dr := s[0], s[1], s[2]
	t := stats.NewTable("Figure 13: CPU performance normalized to baseline (mean [max] across GPU co-runners)",
		"CPU bench", "RP", "DR", "DR max")
	perCPU := map[string][3]*stats.Sampler{}
	for _, g := range r.GPUBenches() {
		for i, c := range r.CoRunners(g) {
			e, ok := perCPU[c]
			if !ok {
				e = [3]*stats.Sampler{{}, {}, {}}
				perCPU[c] = e
			}
			if base[g][i].CPUThroughput > 0 {
				e[1].Add(rp[g][i].CPUThroughput / base[g][i].CPUThroughput)
				e[2].Add(dr[g][i].CPUThroughput / base[g][i].CPUThroughput)
			}
		}
	}
	var drMax []float64
	for _, c := range cpuNamesIn(perCPU) {
		e := perCPU[c]
		t.AddRow(c, e[1].Mean(), e[2].Mean(), e[2].Max())
		drMax = append(drMax, e[2].Max())
	}
	t.AddRow("MEAN of max (clogged co-runs)", "", "", stats.Mean(drMax))
	fmt.Println(t)
	fmt.Println("paper: +3.8% avg across all co-runs; +8.8% avg (up to 19.8%) across clogged workloads")
}

func cpuNamesIn(m map[string][3]*stats.Sampler) []string {
	var names []string
	for _, p := range []string{"blackscholes", "bodytrack", "canneal", "dedup",
		"ferret", "fluidanimate", "swaptions", "vips", "x264"} {
		if _, ok := m[p]; ok {
			names = append(names, p)
		}
	}
	return names
}

// fig14 reports the Delegated Replies miss-service breakdown.
func fig14(r *Runner) {
	dr := sweeps(r, config.SchemeDelegatedReplies)[0]
	t := stats.NewTable("Figure 14: L1 miss breakdown under Delegated Replies (%)",
		"GPU bench", "LLC hit", "Remote hit", "Remote miss", "Forwarded", "RemoteHit/Fwd")
	var fwd, rh []float64
	for _, g := range r.GPUBenches() {
		var b core.Breakdown
		for _, res := range dr[g] {
			b.LLCDirect += res.Breakdown.LLCDirect
			b.RemoteHit += res.Breakdown.RemoteHit
			b.RemoteMiss += res.Breakdown.RemoteMiss
		}
		tot := b.Total()
		if tot == 0 {
			continue
		}
		t.AddRow(g,
			100*float64(b.LLCDirect)/float64(tot),
			100*float64(b.RemoteHit)/float64(tot),
			100*float64(b.RemoteMiss)/float64(tot),
			100*b.ForwardedFrac(), 100*b.RemoteHitFrac())
		fwd = append(fwd, b.ForwardedFrac())
		rh = append(rh, b.RemoteHitFrac())
	}
	t.AddRow("MEAN", "", "", "", 100*stats.Mean(fwd), 100*stats.Mean(rh))
	fmt.Println(t)
	fmt.Println("paper: 54.8% of misses forwarded on average; 74.4% of forwarded misses hit remotely")
}

// fig15 layers Delegated Replies on the shared-L1 organisations and
// CTA scheduling policies.
func fig15(r *Runner) {
	type variant struct {
		name   string
		org    config.L1Org
		sched  config.CTASched
		scheme config.Scheme
	}
	variants := []variant{
		{"DC-L1 rr", config.L1DCL1, config.CTARoundRobin, config.SchemeBaseline},
		{"DC-L1 dist", config.L1DCL1, config.CTADistributed, config.SchemeBaseline},
		{"DynEB rr", config.L1DynEB, config.CTARoundRobin, config.SchemeBaseline},
		{"DynEB dist", config.L1DynEB, config.CTADistributed, config.SchemeBaseline},
		{"DynEB rr + DR", config.L1DynEB, config.CTARoundRobin, config.SchemeDelegatedReplies},
		{"DynEB dist + DR", config.L1DynEB, config.CTADistributed, config.SchemeDelegatedReplies},
	}
	resolvers := make([]func() []resPair, len(variants))
	for i, v := range variants {
		v := v
		resolvers[i] = deferPairs(r, func(string) (config.Config, config.Config) {
			cfg := BaseConfig(v.scheme)
			cfg.GPU.Org = v.org
			cfg.GPU.CTASched = v.sched
			return cfg, BaseConfig(config.SchemeBaseline)
		})
	}
	t := stats.NewTable("Figure 15: shared L1 organisations, CTA scheduling, and DR (vs private-L1 baseline, HM)",
		"Config", "Rel. GPU perf")
	for i, v := range variants {
		var rel []float64
		for _, p := range resolvers[i]() {
			rel = append(rel, p.a.GPUIPC/p.b.GPUIPC)
		}
		t.AddRow(v.name, stats.HarmonicMean(rel))
	}
	fmt.Println(t)
	fmt.Println("paper: locality optimizations do not remove clogging; DR adds +23.5% on DynEB-rr, +9.9% on DynEB-dist")
}

// fig16 runs DR across topologies, normalized per topology.
func fig16(r *Runner) {
	topos := []config.Topology{config.TopoMesh, config.TopoFlattenedButterfly,
		config.TopoDragonfly, config.TopoCrossbar}
	resolvers := make([]func() []resPair, len(topos))
	for i, topo := range topos {
		topo := topo
		resolvers[i] = deferPairs(r, func(string) (config.Config, config.Config) {
			cd := BaseConfig(config.SchemeDelegatedReplies)
			cd.NoC.Topology = topo
			cb := BaseConfig(config.SchemeBaseline)
			cb.NoC.Topology = topo
			return cd, cb
		})
	}
	t := stats.NewTable("Figure 16: Delegated Replies across topologies (normalized per topology, HM)",
		"Topology", "DR gain %")
	for i, topo := range topos {
		var rel []float64
		for _, p := range resolvers[i]() {
			rel = append(rel, p.a.GPUIPC/p.b.GPUIPC)
		}
		t.AddRow(topo.String(), 100*(stats.HarmonicMean(rel)-1))
	}
	fmt.Println(t)
	fmt.Println("paper: +25.8% mesh, +21.9% fbfly, +23.9% dragonfly, +28.3% crossbar")
}

// layoutGains runs DR across layouts and returns GPU and CPU gains.
func layoutGains(r *Runner) *stats.Table {
	layouts := config.AllLayouts()
	resolvers := make([]func() []resPair, len(layouts))
	for i, l := range layouts {
		l := l
		resolvers[i] = deferPairs(r, func(string) (config.Config, config.Config) {
			cd := BaseConfig(config.SchemeDelegatedReplies)
			cd.Layout = l
			cd.NoC.ReqOrder, cd.NoC.RepOrder = l.ReqOrder, l.RepOrder
			cb := BaseConfig(config.SchemeBaseline)
			cb.Layout = l
			cb.NoC.ReqOrder, cb.NoC.RepOrder = l.ReqOrder, l.RepOrder
			return cd, cb
		})
	}
	t := stats.NewTable("Figures 17/18: Delegated Replies across chip layouts (normalized per layout, HM)",
		"Layout", "GPU gain %", "CPU gain %")
	for i, l := range layouts {
		var gr, cr []float64
		for _, p := range resolvers[i]() {
			gr = append(gr, p.a.GPUIPC/p.b.GPUIPC)
			if p.b.CPUThroughput > 0 {
				cr = append(cr, p.a.CPUThroughput/p.b.CPUThroughput)
			}
		}
		t.AddRow(l.Name, 100*(stats.HarmonicMean(gr)-1), 100*(stats.HarmonicMean(cr)-1))
	}
	return t
}

func fig17(r *Runner) {
	fmt.Println(layoutGains(r))
	fmt.Println("paper GPU gains: Baseline +25.8%, B +25.3%, C +29.0%, D +27.0%")
}

func fig18(r *Runner) {
	fmt.Println(layoutGains(r))
	fmt.Println("paper CPU gains: Baseline +3.8%, B +13.4%, C +2.2%, D +20.9% (interference-heavy layouts gain most)")
}
