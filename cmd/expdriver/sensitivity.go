package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/power"
	"delrep/internal/runner"
	"delrep/internal/stats"
)

// drGain declares baseline and Delegated Replies runs under a config
// mutation and returns a resolver for the harmonic-mean GPU gain in
// percent. Declaring first and resolving later lets a sweep submit
// every knob setting to the pool before blocking on any result.
func drGain(r *Runner, mutate func(*config.Config)) func() float64 {
	resolve := deferPairs(r, func(string) (config.Config, config.Config) {
		cd := BaseConfig(config.SchemeDelegatedReplies)
		mutate(&cd)
		cb := BaseConfig(config.SchemeBaseline)
		mutate(&cb)
		return cd, cb
	})
	return func() float64 {
		var rel []float64
		for _, p := range resolve() {
			if p.b.GPUIPC > 0 {
				rel = append(rel, p.a.GPUIPC/p.b.GPUIPC)
			}
		}
		return 100 * (stats.HarmonicMean(rel) - 1)
	}
}

// gainRow is one declared sensitivity sweep point.
type gainRow struct {
	knob, setting string
	gain          func() float64
}

// fig19 runs the sensitivity analyses.
func fig19(r *Runner) {
	var rows []gainRow
	add := func(knob, setting string, mutate func(*config.Config)) {
		rows = append(rows, gainRow{knob, setting, drGain(r, mutate)})
	}

	for _, kb := range []int{16, 32, 48, 64} {
		kb := kb
		add("L1 size", fmt.Sprintf("%d KB", kb), func(c *config.Config) {
			c.GPU.L1Bytes = kb * 1024
		})
	}
	for _, mb := range []int{4, 8, 16} {
		mb := mb
		add("LLC size", fmt.Sprintf("%d MB total", mb), func(c *config.Config) {
			c.LLC.SliceBytes = mb << 20 / 8
		})
	}
	for _, ch := range []int{8, 16, 24} {
		ch := ch
		add("NoC bandwidth", fmt.Sprintf("%d B channels", ch), func(c *config.Config) {
			c.NoC.ChannelBytes = ch
		})
	}
	for _, vc := range []int{1, 2} {
		vc := vc
		add("virtual networks", fmt.Sprintf("shared phys, %d VC/class", vc), func(c *config.Config) {
			c.NoC.SharedPhys = true
			c.NoC.ChannelBytes *= 2
			c.NoC.ReqVCs, c.NoC.RepVCs = vc, vc
		})
	}
	for _, n := range []int{8, 10, 12} {
		n := n
		add("node count", fmt.Sprintf("%dx%d mesh", n, n), func(c *config.Config) {
			if n != 8 {
				c.Layout = config.ScaledBaseline(n, n)
			}
		})
	}
	for _, ib := range []int{4, 8, 16, 32} {
		ib := ib
		add("injection buffer", fmt.Sprintf("%d packets", ib), func(c *config.Config) {
			c.NoC.InjectionBuf = ib
		})
	}

	t := stats.NewTable("Figure 19: Delegated Replies sensitivity (HM GPU gain %)",
		"Knob", "Setting", "DR gain %")
	for _, row := range rows {
		t.AddRow(row.knob, row.setting, row.gain())
	}
	fmt.Println(t)
	fmt.Println("paper: gains grow with L1 size (22.9->30.2%), insensitive to LLC size (25-26%) and injection buffers,")
	fmt.Println("       shrink with NoC bandwidth (still +13.9% at 537 GB/s), hold across VCs (23.4-26.9%) and mesh sizes")
}

// nodeMix varies the CPU/GPU/memory node ratios (Section VII).
func nodeMix(r *Runner) {
	type mix struct{ cpu, mem int }
	mixes := []mix{{8, 8}, {16, 8}, {24, 8}, {8, 4}, {8, 16}}
	gains := make([]func() float64, len(mixes))
	for i, m := range mixes {
		m := m
		gains[i] = drGain(r, func(c *config.Config) {
			c.Layout = config.LayoutFromCounts(
				fmt.Sprintf("mix%dc%dm", m.cpu, m.mem), 8, 8, m.cpu, m.mem)
		})
	}
	t := stats.NewTable("Node mix: Delegated Replies GPU gain across 64-node mixes (HM %)",
		"CPUs", "GPUs", "MemNodes", "DR gain %")
	for i, m := range mixes {
		t.AddRow(m.cpu, 64-m.cpu-m.mem, m.mem, gains[i]())
	}
	fmt.Println(t)
	fmt.Println("paper: +30.5/25.8/22.6% with 8/16/24 CPUs; +38.2/30.5/10.7% with 4/8/16 memory nodes")
}

// energy estimates NoC dynamic energy from measured flit-hop activity.
func energy(r *Runner) {
	cfg := config.Default()
	areaMM2 := power.MeshNoCArea(cfg.Layout.Width, cfg.Layout.Height, cfg.NoC)
	benches := r.GPUBenches()
	futs := make([][]*runner.Future, len(allSchemes)) // [scheme][bench]
	for si, scheme := range allSchemes {
		for _, g := range benches {
			futs[si] = append(futs[si], r.Defer(BaseConfig(scheme), g, PrimaryCPU(g)))
		}
	}
	perInstr := func(si, bi int) float64 {
		res := futs[si][bi].Results()
		a := power.Activity{
			FlitHops: res.FlitHops, BufferWrites: res.FlitHops,
			Cycles: res.Cycles, ChannelBits: cfg.NoC.ChannelBytes * 8,
			AreaMM2: areaMM2, ClockGHz: 1.4,
		}
		if res.GPUInsts == 0 {
			return 0
		}
		return power.DynamicEnergyPJ(a) / float64(res.GPUInsts)
	}
	t := stats.NewTable("NoC dynamic energy per unit work (pJ per GPU instruction), vs baseline",
		"GPU bench", "Baseline", "RP", "DR", "RP rel", "DR rel")
	var rpRel, drRel []float64
	for bi, g := range benches {
		b := perInstr(0, bi)
		p := perInstr(1, bi)
		d := perInstr(2, bi)
		t.AddRow(g, b, p, d, p/b, d/b)
		rpRel = append(rpRel, p/b)
		drRel = append(drRel, d/b)
	}
	t.AddRow("MEAN", "", "", "", stats.Mean(rpRel), stats.Mean(drRel))
	fmt.Println(t)
	fmt.Println("paper: DR reduces NoC dynamic energy 1.1% (shorter data paths); RP increases it 9.4% (probe traffic);")
	fmt.Println("       system energy falls 13.6% (DR) / 7.4% (RP) mostly from shorter execution time")
}

// area prints the DSENT/CACTI-analogue cost model (Section III/IV).
func area(*Runner) {
	cfg := config.Default()
	base := power.MeshNoCArea(cfg.Layout.Width, cfg.Layout.Height, cfg.NoC)
	double := cfg.NoC
	double.ChannelBytes *= 2
	dbl := power.MeshNoCArea(cfg.Layout.Width, cfg.Layout.Height, double)
	frq := power.FRQArea(40, cfg.GPU.FRQEntries)
	ptr := power.PointerArea(8<<20, cfg.LLC.LineBytes, 6)
	t := stats.NewTable("Area model (22 nm)", "Component", "mm^2", "Paper")
	t.AddRow("baseline mesh NoC (2 phys networks)", base, "2.27")
	t.AddRow("double-bandwidth mesh NoC", dbl, "5.76")
	t.AddRow("double/baseline ratio", dbl/base, "2.5x")
	t.AddRow("FRQs (40 cores x 8 entries)", frq, "0.092")
	t.AddRow("LLC/MSHR core pointers (6 bit)", ptr, "0.08")
	t.AddRow("Delegated Replies total", frq+ptr, "0.172")
	t.AddRow("DR / extra NoC-doubling area", (frq+ptr)/(dbl-base), "~0.05")
	fmt.Println(t)
}
