// Command expdriver regenerates every table and figure of the paper's
// evaluation. Each subcommand reproduces one experiment and prints an
// aligned table, including the paper's reference values where the paper
// states them, so shape can be compared directly.
//
// Usage:
//
//	expdriver [-quick] [-warm N] [-cycles N] <experiment> [...]
//	expdriver all            # every experiment in paper order
//	expdriver list           # list experiments
//
// -quick shrinks the simulation windows and the workload set; use it to
// validate the harness before a full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"
)

// experiment is one reproducible table/figure.
type experiment struct {
	name  string
	about string
	run   func(*Runner)
}

func experiments() []experiment {
	return []experiment{
		{"tableI", "simulated CPU-GPU architecture parameters", tableI},
		{"tableII", "heterogeneous CPU-GPU workload pairings", tableII},
		{"fig2", "inter-core locality of GPU benchmarks", fig2},
		{"fig5", "NoC topology and bandwidth study (+ blocking rates)", fig5},
		{"fig6", "asymmetric VC partitioning (AVCP)", fig6},
		{"fig7", "adaptive routing schemes", fig7},
		{"fig9", "chip layout and routing policy study", fig9},
		{"fig10", "GPU performance: Delegated Replies vs RP vs baseline", fig10},
		{"fig11", "received data rate per GPU core", fig11},
		{"fig12", "CPU network latency", fig12},
		{"fig13", "CPU performance", fig13},
		{"fig14", "L1 miss breakdown (LLC hit / remote hit / remote miss)", fig14},
		{"fig15", "Delegated Replies on shared-L1 organisations", fig15},
		{"fig16", "Delegated Replies across NoC topologies", fig16},
		{"fig17", "GPU performance across chip layouts", fig17},
		{"fig18", "CPU performance across chip layouts", fig18},
		{"fig19", "sensitivity: L1/LLC size, NoC bandwidth, VCs, nodes, buffers", fig19},
		{"breakdown", "load latency attribution by phase (Figure 4 analogue)", breakdown},
		{"clog", "Figure-1 clog-detector narrative: baseline vs Delegated Replies", clogExp},
		{"nodemix", "CPU/GPU/memory node mix study", nodeMix},
		{"ablation", "Delegated Replies design-space ablations", ablation},
		{"energy", "NoC dynamic energy and system energy", energy},
		{"area", "NoC and mechanism area model (DSENT/CACTI analogue)", area},
	}
}

func main() {
	var (
		quick  = flag.Bool("quick", false, "small windows and workload subset")
		warm   = flag.Int64("warm", 0, "override warmup cycles")
		cycles = flag.Int64("cycles", 0, "override measured cycles")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	r := NewRunner(*quick, *seed)
	if *warm > 0 {
		r.Warm = *warm
	}
	if *cycles > 0 {
		r.Measure = *cycles
	}

	if args[0] == "list" {
		for _, e := range experiments() {
			fmt.Printf("  %-8s %s\n", e.name, e.about)
		}
		return
	}

	want := map[string]bool{}
	if args[0] == "all" {
		for _, e := range experiments() {
			want[e.name] = true
		}
	} else {
		for _, a := range args {
			want[a] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments() {
		known[e.name] = true
	}
	var unknown []string
	for a := range want {
		if !known[a] {
			unknown = append(unknown, a)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "expdriver: unknown experiments: %v\n", unknown)
		usage()
		os.Exit(2)
	}
	for _, e := range experiments() {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.name, e.about)
		e.run(r)
		fmt.Printf("(%s, %d simulations, %s)\n\n", e.name, r.TakeRunCount(), time.Since(start).Round(time.Second))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: expdriver [-quick] [-warm N] [-cycles N] <experiment>|all|list ...")
}
