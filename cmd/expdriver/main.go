// Command expdriver regenerates every table and figure of the paper's
// evaluation. Each subcommand reproduces one experiment and prints an
// aligned table, including the paper's reference values where the paper
// states them, so shape can be compared directly.
//
// Usage:
//
//	expdriver [-quick] [-j N] [-cache DIR|auto|off] [-warm N] [-cycles N] <experiment> [...]
//	expdriver all            # every experiment in paper order
//	expdriver list           # list experiments
//
// -quick shrinks the simulation windows and the workload set; use it to
// validate the harness before a full run.
//
// Independent simulations run concurrently on -j workers (default
// GOMAXPROCS) and are memoized on disk, so a rerun with a warm cache
// performs zero simulations. -parallel N additionally ticks each
// simulation on N workers (network tiles + node shards, DESIGN.md
// §11–§12) — useful when a figure has fewer independent runs than the
// machine has cores. Everything printed to stdout is byte-identical at
// any -j or -parallel value and any cache state; progress, timing, and
// cache accounting go to stderr.
//
// -remote URL delegates cache-missing simulations to a delrepd daemon
// or a delrepfleet coordinator (see cmd/delrepfleet): points the wire
// spec can express run on the fleet, exotic sensitivity points run
// locally, and stdout remains byte-identical to a fully local run.
// On failure the exit summary names each failed spec, the worker that
// ran it, and the last error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"delrep/internal/fleet"
	"delrep/internal/prof"
	"delrep/internal/runner"
)

// experiment is one reproducible table/figure.
type experiment struct {
	name  string
	about string
	run   func(*Runner)
}

func experiments() []experiment {
	return []experiment{
		{"tableI", "simulated CPU-GPU architecture parameters", tableI},
		{"tableII", "heterogeneous CPU-GPU workload pairings", tableII},
		{"fig2", "inter-core locality of GPU benchmarks", fig2},
		{"fig5", "NoC topology and bandwidth study (+ blocking rates)", fig5},
		{"fig6", "asymmetric VC partitioning (AVCP)", fig6},
		{"fig7", "adaptive routing schemes", fig7},
		{"fig9", "chip layout and routing policy study", fig9},
		{"fig10", "GPU performance: Delegated Replies vs RP vs baseline", fig10},
		{"fig11", "received data rate per GPU core", fig11},
		{"fig12", "CPU network latency", fig12},
		{"fig13", "CPU performance", fig13},
		{"fig14", "L1 miss breakdown (LLC hit / remote hit / remote miss)", fig14},
		{"fig15", "Delegated Replies on shared-L1 organisations", fig15},
		{"fig16", "Delegated Replies across NoC topologies", fig16},
		{"fig17", "GPU performance across chip layouts", fig17},
		{"fig18", "CPU performance across chip layouts", fig18},
		{"fig19", "sensitivity: L1/LLC size, NoC bandwidth, VCs, nodes, buffers", fig19},
		{"breakdown", "load latency attribution by phase (Figure 4 analogue)", breakdown},
		{"clog", "Figure-1 clog-detector narrative: baseline vs Delegated Replies", clogExp},
		{"nodemix", "CPU/GPU/memory node mix study", nodeMix},
		{"ablation", "Delegated Replies design-space ablations", ablation},
		{"energy", "NoC dynamic energy and system energy", energy},
		{"area", "NoC and mechanism area model (DSENT/CACTI analogue)", area},
	}
}

// openCache resolves the -cache flag: "off" disables the on-disk
// cache, "auto" selects the per-user default directory (and degrades
// to no cache if unavailable), anything else is a directory path.
func openCache(flagVal string) *runner.DiskCache {
	switch flagVal {
	case "off":
		return nil
	case "auto":
		dir, err := runner.DefaultCacheDir()
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: no user cache dir (%v); running uncached\n", err)
			return nil
		}
		c, err := runner.OpenDiskCache(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: opening cache %s: %v; running uncached\n", dir, err)
			return nil
		}
		return c
	default:
		c, err := runner.OpenDiskCache(flagVal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: opening cache %s: %v\n", flagVal, err)
			os.Exit(2)
		}
		return c
	}
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "small windows and workload subset")
		warm     = flag.Int64("warm", 0, "override warmup cycles")
		cycles   = flag.Int64("cycles", 0, "override measured cycles")
		seed     = flag.Int64("seed", 1, "random seed")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations")
		parallel = flag.Int("parallel", 0, "intra-run workers per simulation (stdout is byte-identical at any value; 0/1 = serial)")
		cacheDir = flag.String("cache", "auto", `on-disk result cache: directory path, "auto" (per-user dir), or "off"`)
		remote   = flag.String("remote", "", "delegate cache-missing simulations to a delrepd or delrepfleet endpoint at this base URL")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if args[0] == "list" {
		for _, e := range experiments() {
			fmt.Printf("  %-8s %s\n", e.name, e.about)
		}
		return
	}

	cache := openCache(*cacheDir)
	var resolver runner.Resolver
	if *remote != "" {
		client := fleet.NewClient(*remote, "expdriver", nil)
		if err := client.Ping(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			os.Exit(2)
		}
		resolver = client
		fmt.Fprintf(os.Stderr, "expdriver: delegating cache misses to %s\n", *remote)
	}
	eng := runner.New(runner.Options{Workers: *jobs, RunParallel: *parallel, Cache: cache, Progress: os.Stderr, Remote: resolver})
	r := NewRunner(*quick, *seed, eng)
	if *warm > 0 {
		r.Warm = *warm
	}
	if *cycles > 0 {
		r.Measure = *cycles
	}

	want := map[string]bool{}
	if args[0] == "all" {
		for _, e := range experiments() {
			want[e.name] = true
		}
	} else {
		for _, a := range args {
			want[a] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments() {
		known[e.name] = true
	}
	var unknown []string
	for a := range want {
		if !known[a] {
			unknown = append(unknown, a)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "expdriver: unknown experiments: %v\n", unknown)
		usage()
		os.Exit(2)
	}
	// failureDetail pairs each figure with the failed runs it consumed,
	// for the exit summary: which spec failed, on which worker, and why.
	type figureFailures struct {
		figure string
		runs   []runner.Run
	}
	var failureDetail []figureFailures
	var failed int64
	for _, e := range experiments() {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		before := eng.Counters()
		failsBefore := len(eng.Failures())
		obsBefore, simsBefore := r.observed, r.obsSims

		fmt.Printf("### %s — %s\n\n", e.name, e.about)
		e.run(r)

		// The run count on stdout is the number of results the figure
		// consumed — identical however they were obtained — so stdout
		// stays byte-identical across -j values and cache states.
		// The variable accounting (simulated vs cached vs shared, and
		// wall-clock) goes to stderr.
		after := eng.Counters()
		delivered := int(after.Executed+after.DiskHits+after.MemoHits-
			before.Executed-before.DiskHits-before.MemoHits) + r.observed - obsBefore
		fmt.Printf("(%s, %d runs)\n\n", e.name, delivered)
		fmt.Fprintf(os.Stderr, "  %s: %d simulated, %d from disk cache, %d shared in-process, %s\n",
			e.name,
			after.Executed-before.Executed+int64(r.obsSims-simsBefore),
			after.DiskHits-before.DiskHits+int64((r.observed-obsBefore)-(r.obsSims-simsBefore)),
			after.MemoHits-before.MemoHits,
			time.Since(start).Round(time.Second))
		if d := after.Failed - before.Failed; d > 0 {
			failed += d
			fmt.Fprintf(os.Stderr, "  %s: %d simulation(s) FAILED\n", e.name, d)
		}
		if fails := eng.Failures(); len(fails) > failsBefore {
			failureDetail = append(failureDetail, figureFailures{e.name, fails[failsBefore:]})
		}
	}

	c := eng.Counters()
	where := "off"
	if cache != nil {
		where = cache.Dir()
	}
	fmt.Fprintf(os.Stderr, "expdriver: %d simulations executed, %d disk-cache hits, %d in-process shares (-j %d, cache %s)\n",
		c.Executed+int64(r.obsSims), c.DiskHits+int64(r.observed-r.obsSims), c.MemoHits,
		eng.Workers(), where)
	// A figure built on failed runs is quietly wrong; make the failure
	// impossible to miss in scripts and CI, and say exactly which spec
	// broke, where it ran, and why, so a fleet-wide sweep failure is
	// debuggable from the exit output alone.
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "expdriver: %d simulation(s) failed:\n", failed)
		for _, fd := range failureDetail {
			for _, run := range fd.runs {
				where := run.Worker
				if where == "" {
					where = "local"
				}
				fmt.Fprintf(os.Stderr, "  %s: %s+%s %s seed=%d (key %s) on %s: %v\n",
					fd.figure, run.Spec.GPU, run.Spec.CPU, run.Spec.Cfg.Scheme,
					run.Spec.Cfg.Seed,
					runner.KeyHash(run.Spec.Cfg, run.Spec.GPU, run.Spec.CPU),
					where, run.Err)
			}
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: expdriver [-quick] [-j N] [-parallel N] [-cache DIR|auto|off] [-warm N] [-cycles N] <experiment>|all|list ...")
}
