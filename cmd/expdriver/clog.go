package main

import (
	"fmt"
	"os"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/obs"
	"delrep/internal/stats"
)

// breakdown reproduces the Figure-4-style end-to-end load latency
// attribution: for each scheme, where do the cycles of a GPU load go —
// waiting in injection queues (the clogging symptom), head-flit transit,
// tail serialization, waiting stuck before delegation, or node service
// time. Under Delegated Replies the queue component should collapse
// while a small deleg-wait component appears in its place.
func breakdown(r *Runner) {
	t := stats.NewTable("Latency attribution: avg cycles of a GPU load per phase (Figure 4 analogue)",
		"GPU bench", "Scheme", "Total", "Queue", "Transit", "Serialize", "DelegWait", "Service", "Hops", "Legs")
	queueShare := map[config.Scheme][]float64{}
	for _, g := range r.SubsetBenches() {
		for _, scheme := range allSchemes {
			res := r.Run(BaseConfig(scheme), g, PrimaryCPU(g))
			lb := res.LoadBreak
			if lb.Count == 0 {
				continue
			}
			t.AddRow(g, scheme.String(), lb.TotalAvg, lb.QueueAvg, lb.XferAvg,
				lb.SerAvg, lb.DelegWaitAvg, lb.ServiceAvg, lb.HopsAvg, lb.LegsAvg)
			if lb.TotalAvg > 0 {
				queueShare[scheme] = append(queueShare[scheme], lb.QueueAvg/lb.TotalAvg)
			}
		}
	}
	fmt.Println(t)
	for _, scheme := range allSchemes {
		fmt.Printf("%-10s queueing share of load latency: %.1f%% (mean)\n",
			scheme, 100*stats.Mean(queueShare[scheme]))
	}
	fmt.Println("paper: reply queueing at the memory nodes dominates baseline load latency; Delegated Replies removes it")
}

// clogExp reruns the paper's Figure-1 motivation with the online clog
// detector attached: the baseline memory nodes saturate their reply
// ports while the reply queue keeps growing, and Delegated Replies makes
// the episodes disappear.
func clogExp(r *Runner) {
	for _, scheme := range []config.Scheme{config.SchemeBaseline, config.SchemeDelegatedReplies} {
		cfg := BaseConfig(scheme)
		cfg.WarmupCycles = r.Warm
		cfg.MeasureCycles = r.Measure
		cfg.Seed = r.Seed
		gpu, cpu := "2DCON", PrimaryCPU("2DCON")
		fmt.Fprintf(os.Stderr, "  run %-5s + %-12s %s (observed)...\n", gpu, cpu, cfg.Scheme)
		sys := core.NewSystem(cfg, gpu, cpu)
		o := obs.New(obs.Options{Window: 500, ClogUtil: 0.5})
		sys.AttachObserver(o)
		res := sys.RunWorkload()
		r.runs++
		fmt.Printf("--- %s (%s + %s) ---\n", cfg.Scheme, gpu, cpu)
		fmt.Printf("GPU IPC %.2f  mem blocked %.1f%%  reply-link util %.1f%%  delegations %d\n",
			res.GPUIPC, 100*res.MemBlockedRate, 100*res.MemReplyLinkUtil, res.Delegations)
		if err := o.Clog.Narrative(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: clog narrative: %v\n", err)
		}
		fmt.Println()
	}
	fmt.Println("paper: Figure 1 — memory-node reply ports clog under the baseline; Delegated Replies drains them")
}
