package main

import (
	"bytes"
	"fmt"
	"os"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/obs"
	"delrep/internal/runner"
	"delrep/internal/stats"
)

// breakdown reproduces the Figure-4-style end-to-end load latency
// attribution: for each scheme, where do the cycles of a GPU load go —
// waiting in injection queues (the clogging symptom), head-flit transit,
// tail serialization, waiting stuck before delegation, or node service
// time. Under Delegated Replies the queue component should collapse
// while a small deleg-wait component appears in its place.
func breakdown(r *Runner) {
	benches := r.SubsetBenches()
	futs := make([][]*runner.Future, len(benches)) // [bench][scheme]
	for i, g := range benches {
		for _, scheme := range allSchemes {
			futs[i] = append(futs[i], r.Defer(BaseConfig(scheme), g, PrimaryCPU(g)))
		}
	}
	t := stats.NewTable("Latency attribution: avg cycles of a GPU load per phase (Figure 4 analogue)",
		"GPU bench", "Scheme", "Total", "Queue", "Transit", "Serialize", "DelegWait", "Service", "Hops", "Legs")
	queueShare := map[config.Scheme][]float64{}
	for i, g := range benches {
		for si, scheme := range allSchemes {
			lb := futs[i][si].Results().LoadBreak
			if lb.Count == 0 {
				continue
			}
			t.AddRow(g, scheme.String(), lb.TotalAvg, lb.QueueAvg, lb.XferAvg,
				lb.SerAvg, lb.DelegWaitAvg, lb.ServiceAvg, lb.HopsAvg, lb.LegsAvg)
			if lb.TotalAvg > 0 {
				queueShare[scheme] = append(queueShare[scheme], lb.QueueAvg/lb.TotalAvg)
			}
		}
	}
	fmt.Println(t)
	for _, scheme := range allSchemes {
		fmt.Printf("%-10s queueing share of load latency: %.1f%% (mean)\n",
			scheme, 100*stats.Mean(queueShare[scheme]))
	}
	fmt.Println("paper: reply queueing at the memory nodes dominates baseline load latency; Delegated Replies removes it")
}

// clogExp reruns the paper's Figure-1 motivation with the online clog
// detector attached: the baseline memory nodes saturate their reply
// ports while the reply queue keeps growing, and Delegated Replies makes
// the episodes disappear.
//
// The observer hooks into the cycle loop, so these runs bypass the
// engine's core.Results cache; instead the rendered narrative itself is
// memoized in the cache's blob namespace, keeping warm reruns at zero
// simulations.
func clogExp(r *Runner) {
	for _, scheme := range []config.Scheme{config.SchemeBaseline, config.SchemeDelegatedReplies} {
		cfg := r.prep(BaseConfig(scheme))
		gpu, cpu := "2DCON", PrimaryCPU("2DCON")
		cache := r.eng.DiskCache()
		blobKey := runner.Key(cfg, gpu, cpu) + "|clog-narrative"

		r.observed++
		if cache != nil {
			if data, ok := cache.GetBlob(blobKey); ok {
				os.Stdout.Write(data)
				continue
			}
		}

		fmt.Fprintf(os.Stderr, "  run %-5s + %-12s %s (observed)...\n", gpu, cpu, cfg.Scheme)
		sys := core.NewSystem(cfg, gpu, cpu)
		o := obs.New(obs.Options{Window: 500, ClogUtil: 0.5})
		sys.AttachObserver(o)
		res := sys.RunWorkload()
		r.obsSims++

		var buf bytes.Buffer
		fmt.Fprintf(&buf, "--- %s (%s + %s) ---\n", cfg.Scheme, gpu, cpu)
		fmt.Fprintf(&buf, "GPU IPC %.2f  mem blocked %.1f%%  reply-link util %.1f%%  delegations %d\n",
			res.GPUIPC, 100*res.MemBlockedRate, 100*res.MemReplyLinkUtil, res.Delegations)
		if err := o.Clog.Narrative(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: clog narrative: %v\n", err)
		}
		fmt.Fprintln(&buf)

		if cache != nil {
			if err := cache.PutBlob(blobKey, buf.Bytes()); err != nil {
				fmt.Fprintf(os.Stderr, "expdriver: caching clog narrative: %v\n", err)
			}
		}
		os.Stdout.Write(buf.Bytes())
	}
	fmt.Println("paper: Figure 1 — memory-node reply ports clog under the baseline; Delegated Replies drains them")
}
