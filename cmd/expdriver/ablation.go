package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/stats"
)

// ablation explores the Delegated Replies design space around the
// paper's choices (DESIGN.md's ablation list):
//
//   - delegation trigger: only-when-blocked (paper) vs always
//   - delegation bandwidth per memory node per cycle
//   - FRQ size, including the 8-entry paper value
//   - FRQ same-line merging (the multicast extension the paper skips)
func ablation(r *Runner) {
	t := stats.NewTable("Delegated Replies ablations (HM GPU gain % over baseline)",
		"Knob", "Setting", "DR gain %")

	t.AddRow("trigger", "blocked-only (paper)", drGain(r, func(c *config.Config) {}))
	t.AddRow("trigger", "always-delegate", drGain(r, func(c *config.Config) {
		c.DelRep.AlwaysDelegate = true
	}))
	for _, n := range []int{1, 2, 4} {
		n := n
		t.AddRow("delegations/cycle", fmt.Sprint(n), drGain(r, func(c *config.Config) {
			c.DelRep.MaxDelegationsPerCycle = n
		}))
	}
	for _, e := range []int{2, 8, 32} {
		e := e
		t.AddRow("FRQ entries", fmt.Sprint(e), drGain(r, func(c *config.Config) {
			c.GPU.FRQEntries = e
		}))
	}
	t.AddRow("FRQ merging", "off (paper)", drGain(r, func(c *config.Config) {}))
	t.AddRow("FRQ merging", "on (idealized multicast)", drGain(r, func(c *config.Config) {
		c.DelRep.FRQMerge = true
	}))
	fmt.Println(t)
	fmt.Println("paper: delegates only when the reply network blocks (avoids needless latency);")
	fmt.Println("       FRQ = 8 entries; merging skipped because only 4.8% of entries share a line")
}
