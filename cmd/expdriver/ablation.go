package main

import (
	"fmt"

	"delrep/internal/config"
	"delrep/internal/stats"
)

// ablation explores the Delegated Replies design space around the
// paper's choices (DESIGN.md's ablation list):
//
//   - delegation trigger: only-when-blocked (paper) vs always
//   - delegation bandwidth per memory node per cycle
//   - FRQ size, including the 8-entry paper value
//   - FRQ same-line merging (the multicast extension the paper skips)
func ablation(r *Runner) {
	var rows []gainRow
	add := func(knob, setting string, mutate func(*config.Config)) {
		rows = append(rows, gainRow{knob, setting, drGain(r, mutate)})
	}

	add("trigger", "blocked-only (paper)", func(*config.Config) {})
	add("trigger", "always-delegate", func(c *config.Config) {
		c.DelRep.AlwaysDelegate = true
	})
	for _, n := range []int{1, 2, 4} {
		n := n
		add("delegations/cycle", fmt.Sprint(n), func(c *config.Config) {
			c.DelRep.MaxDelegationsPerCycle = n
		})
	}
	for _, e := range []int{2, 8, 32} {
		e := e
		add("FRQ entries", fmt.Sprint(e), func(c *config.Config) {
			c.GPU.FRQEntries = e
		})
	}
	add("FRQ merging", "off (paper)", func(*config.Config) {})
	add("FRQ merging", "on (idealized multicast)", func(c *config.Config) {
		c.DelRep.FRQMerge = true
	})

	t := stats.NewTable("Delegated Replies ablations (HM GPU gain % over baseline)",
		"Knob", "Setting", "DR gain %")
	for _, row := range rows {
		t.AddRow(row.knob, row.setting, row.gain())
	}
	fmt.Println(t)
	fmt.Println("paper: delegates only when the reply network blocks (avoids needless latency);")
	fmt.Println("       FRQ = 8 entries; merging skipped because only 4.8% of entries share a line")
}
