// Command digestdump prints the determinism-audit digest for every
// scheme × topology × seed point of the audit matrix (the same points
// internal/core/determinism_test.go replays). Its output is the
// digest-identity evidence for refactors that must not change
// simulated behaviour: capture the output before and after a change
// and diff — any drift means the change was not behaviour-preserving.
//
// Usage:
//
//	digestdump [-seeds 1,7,99] [-warm 200] [-cycles 450] [-parallel N]
//
// -parallel ticks every run tile-parallel on N workers; the output
// must be byte-identical to a serial dump (diff the two to certify the
// two-phase tick after touching internal/noc).
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"delrep/internal/config"
	"delrep/internal/core"
)

func main() {
	var (
		seeds    = flag.String("seeds", "1,7,99", "comma-separated seeds")
		warm     = flag.Int64("warm", 200, "warmup cycles")
		cycles   = flag.Int64("cycles", 450, "measured cycles")
		parallel = flag.Int("parallel", 0, "tile workers per run (output must match a serial dump byte for byte)")
	)
	flag.Parse()

	schemes := []config.Scheme{
		config.SchemeBaseline,
		config.SchemeDelegatedReplies,
		config.SchemeRP,
	}
	topologies := []config.Topology{
		config.TopoMesh,
		config.TopoCrossbar,
		config.TopoFlattenedButterfly,
		config.TopoDragonfly,
	}
	for _, s := range strings.Split(*seeds, ",") {
		seed, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			panic(err)
		}
		for _, scheme := range schemes {
			for _, topo := range topologies {
				cfg := config.Default()
				cfg.Scheme = scheme
				cfg.NoC.Topology = topo
				cfg.Seed = seed
				cfg.WarmupCycles = *warm
				cfg.MeasureCycles = *cycles
				cfg.GPU.KernelCycles = 300
				a, err := core.RunAuditCtrl(core.RunControl{Parallel: *parallel}, cfg, "NN", "vips")
				if err != nil {
					panic(err)
				}
				fmt.Printf("seed=%-3d %-10v %-10v cycles=%-6d digest=%#016x\n",
					seed, scheme, topo, a.Cycles, a.Digest)
			}
		}
		// Shared-L1 organisations (extra cluster state).
		for _, org := range []config.L1Org{config.L1DCL1, config.L1DynEB} {
			cfg := config.Default()
			cfg.Scheme = config.SchemeDelegatedReplies
			cfg.NoC.Topology = config.TopoMesh
			cfg.Seed = seed
			cfg.WarmupCycles = *warm
			cfg.MeasureCycles = *cycles
			cfg.GPU.KernelCycles = 300
			cfg.GPU.Org = org
			cfg.GPU.DynEBEpoch = 256
			a, err := core.RunAuditCtrl(core.RunControl{Parallel: *parallel}, cfg, "2DCON", "dedup")
			if err != nil {
				panic(err)
			}
			fmt.Printf("seed=%-3d %-10v %-10v cycles=%-6d digest=%#016x\n",
				seed, config.SchemeDelegatedReplies, org, a.Cycles, a.Digest)
		}
	}
}
