// Command delrepd serves the simulator over HTTP: a long-lived daemon
// with a bounded priority job queue, per-client admission control,
// cooperative cancellation, and the shared on-disk result cache, so
// many clients can sweep the design space against one warm cache.
//
// Usage:
//
//	delrepd -addr :8080 -j 8 -cache auto -cache-max 2G
//
// Submit a job and read it back:
//
//	curl -s localhost:8080/v1/jobs -d '{"spec":{"gpu":"HS","cpu":"vips"}}'
//	curl -s localhost:8080/v1/jobs/j000001
//
// Observability: logs are structured (logfmt on stderr; -log-json for
// JSON lines), every job carries a wall-clock span trace exported at
// /v1/jobs/{id}/trace (disable with -telemetry=false), the last
// -flight completed jobs sit behind /debug/jobs and /debug/status, and
// -pprof mounts net/http/pprof under /debug/pprof/. -cpuprofile and
// -memprofile write whole-process profiles; the heap snapshot is also
// written on SIGTERM, after the drain, so profiles survive a normal
// service stop.
//
// See internal/serve for the full API. On SIGINT/SIGTERM the daemon
// stops admitting jobs, cancels its queue, and drains running jobs for
// up to -drain before cancelling them at their next checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"delrep/internal/prof"
	"delrep/internal/runner"
	"delrep/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrently running simulations")
		cacheDir = flag.String("cache", "auto", `on-disk result cache: directory path, "auto" (per-user dir), or "off"`)
		cacheMax = flag.String("cache-max", "", "prune the cache to this size after runs (e.g. 2G; empty disables pruning)")
		queue    = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		maxPar   = flag.Int("max-parallel", 0, `cap on per-job intra-run tile workers (spec "parallel" field); 0 disables intra-run parallelism`)
		perCli   = flag.Int("client-inflight", 0, "max queued+running jobs per client (0 = unlimited)")
		drain    = flag.Duration("drain", 2*time.Minute, "how long shutdown waits for running jobs before cancelling them")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON lines instead of logfmt")
		telem    = flag.Bool("telemetry", true, "record per-job span traces (GET /v1/jobs/{id}/trace) and the flight recorder (/debug/jobs)")
		flight   = flag.Int("flight", 128, "completed-job summaries kept in the flight recorder ring")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// stopProf is safe to call from both the normal exit path and the
	// signal path; only the first call writes the heap profile, so a
	// SIGTERM-driven drain still produces -memprofile output.
	rawStop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal("starting profiler", "error", err)
	}
	stopProf := sync.OnceFunc(rawStop)
	defer stopProf()

	var maxBytes int64
	if *cacheMax != "" {
		if maxBytes, err = runner.ParseSize(*cacheMax); err != nil {
			fatal("parsing -cache-max", "error", err)
		}
	}
	cache := openCache(logger, *cacheDir)
	if cache != nil {
		logger.Info("result cache open", "dir", cache.Dir())
	} else if maxBytes > 0 {
		fatal("-cache-max set but the cache is disabled")
	}

	eng := runner.New(runner.Options{Workers: *jobs, Cache: cache})
	srv := serve.New(serve.Options{
		Engine:         eng,
		QueueDepth:     *queue,
		ClientInFlight: *perCli,
		MaxRunParallel: *maxPar,
		CacheMaxBytes:  maxBytes,
		Logger:         logger,
		Telemetry:      *telem,
		FlightSize:     *flight,
		EnablePprof:    *pprofOn,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "workers", srv.Workers(), "queue_depth", *queue,
		"telemetry", *telem, "pprof", *pprofOn)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "timeout", drain.String())
	case err := <-errCh:
		fatal("listening failed", "addr", *addr, "error", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.WarnContext(ctx, "drain deadline passed: running jobs cancelled", "error", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.WarnContext(ctx, "http shutdown", "error", err)
	}
	// Stop profiling inside the signal-driven path too: SIGTERM is the
	// normal way a service manager stops the daemon, and the -memprofile
	// snapshot should reflect the drained (quiescent) heap.
	stopProf()
	logger.InfoContext(ctx, "stopped")
}

// openCache resolves the -cache flag the same way delrepsim does:
// "off" disables it, "auto" selects the per-user default directory
// (honouring DELREP_CACHE_DIR), anything else is a directory path.
func openCache(logger *slog.Logger, flagVal string) *runner.DiskCache {
	switch flagVal {
	case "off":
		return nil
	case "auto":
		dir, err := runner.DefaultCacheDir()
		if err != nil {
			logger.Warn("no user cache dir; running uncached", "error", err)
			return nil
		}
		c, err := runner.OpenDiskCache(dir)
		if err != nil {
			logger.Warn("opening cache failed; running uncached", "dir", dir, "error", err)
			return nil
		}
		return c
	default:
		c, err := runner.OpenDiskCache(flagVal)
		if err != nil {
			logger.Error("opening cache failed", "dir", flagVal, "error", err)
			os.Exit(1)
		}
		return c
	}
}
