// Command delrepd serves the simulator over HTTP: a long-lived daemon
// with a bounded priority job queue, per-client admission control,
// cooperative cancellation, and the shared on-disk result cache, so
// many clients can sweep the design space against one warm cache.
//
// Usage:
//
//	delrepd -addr :8080 -j 8 -cache auto -cache-max 2G
//
// Submit a job and read it back:
//
//	curl -s localhost:8080/v1/jobs -d '{"spec":{"gpu":"HS","cpu":"vips"}}'
//	curl -s localhost:8080/v1/jobs/j000001
//
// See internal/serve for the full API. On SIGINT/SIGTERM the daemon
// stops admitting jobs, cancels its queue, and drains running jobs for
// up to -drain before cancelling them at their next checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"delrep/internal/runner"
	"delrep/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrently running simulations")
		cacheDir = flag.String("cache", "auto", `on-disk result cache: directory path, "auto" (per-user dir), or "off"`)
		cacheMax = flag.String("cache-max", "", "prune the cache to this size after runs (e.g. 2G; empty disables pruning)")
		queue    = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		perCli   = flag.Int("client-inflight", 0, "max queued+running jobs per client (0 = unlimited)")
		drain    = flag.Duration("drain", 2*time.Minute, "how long shutdown waits for running jobs before cancelling them")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "delrepd: ", log.LstdFlags)

	var maxBytes int64
	if *cacheMax != "" {
		var err error
		if maxBytes, err = runner.ParseSize(*cacheMax); err != nil {
			logger.Fatalf("-cache-max: %v", err)
		}
	}
	cache := openCache(logger, *cacheDir)
	if cache != nil {
		logger.Printf("result cache at %s", cache.Dir())
	} else if maxBytes > 0 {
		logger.Fatalf("-cache-max set but the cache is disabled")
	}

	eng := runner.New(runner.Options{Workers: *jobs, Cache: cache})
	srv := serve.New(serve.Options{
		Engine:         eng,
		QueueDepth:     *queue,
		ClientInFlight: *perCli,
		CacheMaxBytes:  maxBytes,
		Logf:           logger.Printf,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Printf("serving on %s with %d workers, queue depth %d", *addr, srv.Workers(), *queue)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("received %s: draining (up to %s)", sig, *drain)
	case err := <-errCh:
		logger.Fatalf("listening on %s: %v", *addr, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain deadline passed: running jobs cancelled (%v)", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("stopped")
}

// openCache resolves the -cache flag the same way delrepsim does:
// "off" disables it, "auto" selects the per-user default directory
// (honouring DELREP_CACHE_DIR), anything else is a directory path.
func openCache(logger *log.Logger, flagVal string) *runner.DiskCache {
	switch flagVal {
	case "off":
		return nil
	case "auto":
		dir, err := runner.DefaultCacheDir()
		if err != nil {
			logger.Printf("no user cache dir (%v); running uncached", err)
			return nil
		}
		c, err := runner.OpenDiskCache(dir)
		if err != nil {
			logger.Printf("opening cache %s: %v; running uncached", dir, err)
			return nil
		}
		return c
	default:
		c, err := runner.OpenDiskCache(flagVal)
		if err != nil {
			logger.Fatalf("opening cache %s: %v", flagVal, err)
		}
		return c
	}
}
