// Command delrepfleet coordinates a fleet of delrepd workers: it
// serves the same /v1/jobs API as a single daemon and shards submitted
// simulations across workers by content key, so every existing client
// (curl, delrepsim -remote, expdriver -remote) scales past one machine
// by pointing at the coordinator instead.
//
// Usage:
//
//	delrepfleet -addr :9090 \
//	    -worker http://sim1:8080 -worker http://sim2:8080
//
// Routing is consistent hashing over the run's content-addressed cache
// key, so repeated sweeps of overlapping configuration points land on
// the worker already holding the result in its warm disk cache — the
// coordinator probes that shard (GET /v1/cache/{key}) before spending
// a queue slot. Workers are health-checked via /readyz; a dead or
// draining worker's jobs fail over to the next worker on the ring, and
// because simulations are deterministic and content-addressed, the
// replayed job returns byte-identical output. Straggler queues are
// drained by work stealing: a job whose home worker is saturated is
// routed to an idle worker instead.
//
// On SIGINT/SIGTERM the coordinator stops admitting jobs, cancels
// in-flight ones (propagating the cancellation to workers), and exits.
// See internal/fleet and DESIGN.md §13 for the architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"delrep/internal/fleet"
)

// workerList collects repeated -worker flags and comma-separated
// -workers values into one slice.
type workerList []string

func (w *workerList) String() string { return strings.Join(*w, ",") }

func (w *workerList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("worker %q: URL must start with http:// or https://", u)
		}
		*w = append(*w, u)
	}
	return nil
}

func main() {
	var workers workerList
	var (
		addr    = flag.String("addr", ":9090", "listen address")
		probe   = flag.Duration("probe", 2*time.Second, "worker health-probe interval")
		retries = flag.Int("retries", 2, "extra failover rounds across the ready workers before a job fails")
		steal   = flag.Int("steal-margin", 2, "outstanding-over-slots margin that marks a worker a straggler (work stealing kicks in)")
		drain   = flag.Duration("drain", 30*time.Second, "how long shutdown waits while cancelling in-flight jobs")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON lines instead of logfmt")
		telem   = flag.Bool("telemetry", true, "record per-job span traces (GET /v1/jobs/{id}/trace)")
	)
	flag.Var(&workers, "worker", "worker base URL (repeatable)")
	flag.Var(&workers, "workers", "comma-separated worker base URLs")
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if len(workers) == 0 {
		fatal("no workers configured (use -worker URL, repeatable)")
	}

	srv, err := fleet.New(fleet.Options{
		Workers:       workers,
		ProbeInterval: *probe,
		Retries:       *retries,
		StealMargin:   *steal,
		Logger:        logger,
		Telemetry:     *telem,
	})
	if err != nil {
		fatal("starting coordinator", "error", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("coordinating", "addr", *addr, "workers", len(workers), "telemetry", *telem)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "timeout", drain.String())
	case err := <-errCh:
		fatal("listening failed", "addr", *addr, "error", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.WarnContext(ctx, "drain deadline passed", "error", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.WarnContext(ctx, "http shutdown", "error", err)
	}
	logger.InfoContext(ctx, "stopped")
}
