package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"delrep/internal/lint/analysis"
)

// withFinding is a package with exactly one ctxflow finding: a
// context parameter in scope while Background is used.
const withFinding = `package p

import "context"

type key struct{}

func Attach(ctx context.Context) context.Context {
	return context.WithValue(context.Background(), key{}, 1)
}
`

const secondFinding = `package p

import "context"

func Detach(ctx context.Context) context.Context {
	return context.WithValue(context.Background(), key{}, 2)
}
`

const clean = `package p

import "context"

type key struct{}

func Attach(ctx context.Context) context.Context {
	return context.WithValue(ctx, key{}, 1)
}
`

// setupModule creates a throwaway module with one package and chdirs
// into it; run() resolves its loader from the working directory.
func setupModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	must(t, os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmplint\n\ngo 1.22\n"), 0o644))
	must(t, os.MkdirAll(filepath.Join(dir, "p"), 0o755))
	must(t, os.WriteFile(filepath.Join(dir, "p", "p.go"), []byte(withFinding), 0o644))
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	must(t, os.Chdir(dir))
	t.Cleanup(func() { _ = os.Chdir(wd) })
	return dir
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestRatchetCycle drives the full baseline workflow: a dirty tree
// fails plain lint, freezing it passes, a deliberate regression fails
// against the frozen baseline, -update-baseline refuses to grow, and
// fixing ratchets the count down.
func TestRatchetCycle(t *testing.T) {
	dir := setupModule(t)
	basePath := filepath.Join(dir, "lint.baseline")

	// 1. Plain lint: the finding fails the run.
	if got := run(options{patterns: []string{"./..."}}); got != 1 {
		t.Fatalf("plain lint on dirty tree: status %d, want 1", got)
	}

	// 2. Adopt the ratchet: freeze the finding.
	if got := run(options{patterns: []string{"./..."}, baselinePath: basePath, updateBase: true}); got != 0 {
		t.Fatalf("creating baseline: status %d, want 0", got)
	}
	frozen, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(frozen), "ctxflow") {
		t.Fatalf("baseline lacks the frozen finding:\n%s", frozen)
	}

	// 3. Baselined tree passes.
	if got := run(options{patterns: []string{"./..."}, baselinePath: basePath}); got != 0 {
		t.Fatalf("baselined tree: status %d, want 0", got)
	}

	// 4. A deliberate regression fails against the baseline. The
	//    loader memoizes `go list` per process, so adding a file needs
	//    an explicit flush (a real simlint run is one process, one
	//    tree snapshot).
	must(t, os.WriteFile(filepath.Join(dir, "p", "q.go"), []byte(secondFinding), 0o644))
	analysis.FlushListCache()
	if got := run(options{patterns: []string{"./..."}, baselinePath: basePath}); got != 1 {
		t.Fatalf("regressed tree: status %d, want 1", got)
	}

	// 5. -update-baseline refuses to grow the count.
	if got := run(options{patterns: []string{"./..."}, baselinePath: basePath, updateBase: true}); got != 1 {
		t.Fatalf("growing update: status %d, want 1", got)
	}
	after, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(frozen) {
		t.Fatalf("refused update still rewrote the baseline:\n%s", after)
	}

	// 6. Fix both findings; the stale baseline still passes (warn-only)
	//    and the update ratchets the count to zero.
	must(t, os.Remove(filepath.Join(dir, "p", "q.go")))
	must(t, os.WriteFile(filepath.Join(dir, "p", "p.go"), []byte(clean), 0o644))
	analysis.FlushListCache()
	if got := run(options{patterns: []string{"./..."}, baselinePath: basePath}); got != 0 {
		t.Fatalf("fixed tree against stale baseline: status %d, want 0", got)
	}
	if got := run(options{patterns: []string{"./..."}, baselinePath: basePath, updateBase: true}); got != 0 {
		t.Fatalf("shrinking update: status %d, want 0", got)
	}
	shrunk, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(shrunk), "ctxflow") {
		t.Fatalf("baseline did not shrink:\n%s", shrunk)
	}
}

// TestFixRewrites drives `simlint -fix` end to end: the ctxflow fix
// substitutes the in-scope context and the rewritten tree lints clean.
func TestFixRewrites(t *testing.T) {
	dir := setupModule(t)

	if got := run(options{patterns: []string{"./..."}, fix: true}); got != 0 {
		t.Fatalf("-fix: status %d, want 0", got)
	}
	rewritten, err := os.ReadFile(filepath.Join(dir, "p", "p.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rewritten), "context.WithValue(ctx, key{}, 1)") {
		t.Fatalf("fix not applied:\n%s", rewritten)
	}
	if got := run(options{patterns: []string{"./..."}}); got != 0 {
		t.Fatalf("lint after -fix: status %d, want 0", got)
	}
}
